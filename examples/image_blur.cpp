// 3x3 box blur over an image — the multimedia side of the paper's
// motivation ("scientific, multimedia and other HPC applications"). Uses
// the 9-point Moore stencil with mirror boundaries (the standard image
// convention) and integer pixels; compares Smache against the baseline on
// cycles and traffic for several image sizes.
//
// Run: ./build/examples/image_blur [--size N --passes P]
#include <cstdio>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"

namespace {

// A deterministic synthetic "photo": smooth gradients plus speckle noise.
smache::grid::Grid<smache::word_t> synth_image(std::size_t n) {
  smache::Rng rng(0x1A6E);
  smache::grid::Grid<smache::word_t> img(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) {
      const auto base = static_cast<std::int32_t>((r * 255) / n);
      const auto noise = static_cast<std::int32_t>(rng.next_below(64));
      img.at(r, c) = smache::to_word(base + noise);
    }
  return img;
}

std::uint64_t checksum(const smache::grid::Grid<smache::word_t>& g) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < g.size(); ++i) {
    h ^= g[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const smache::CliArgs args(argc, argv);
  const auto size = static_cast<std::size_t>(args.get_int("size", 32));
  const auto passes = static_cast<std::size_t>(args.get_int("passes", 3));

  std::printf("3x3 box blur (Moore stencil, mirror boundaries)\n");
  std::printf("===============================================\n");

  smache::ProblemSpec problem;
  problem.height = size;
  problem.width = size;
  problem.shape = smache::grid::StencilShape::moore9();
  problem.bc = smache::grid::BoundarySpec::all_mirror();
  problem.kernel = smache::rtl::KernelSpec::average_int();
  problem.steps = passes;
  std::printf("problem: %s\n\n", problem.describe().c_str());

  const auto img = synth_image(size);

  const auto smache_run =
      smache::Engine(smache::EngineOptions::smache()).run(problem, img);
  const auto baseline_run =
      smache::Engine(smache::EngineOptions::baseline()).run(problem, img);
  const auto expected = smache::reference_run(problem, img);

  const bool ok = smache_run.output == expected &&
                  baseline_run.output == expected;
  std::printf("verification: %s (blurred checksum %016llx)\n\n",
              ok ? "both designs BIT-EXACT" : "MISMATCH",
              static_cast<unsigned long long>(checksum(*smache_run.output)));

  // A 9-point stencil is where buffering shines: the baseline re-reads
  // every pixel nine times.
  std::printf("cycles : baseline %8llu   smache %8llu  (x%.2f fewer)\n",
              static_cast<unsigned long long>(baseline_run.cycles),
              static_cast<unsigned long long>(smache_run.cycles),
              static_cast<double>(baseline_run.cycles) /
                  static_cast<double>(smache_run.cycles));
  std::printf("traffic: baseline %8.1f   smache %8.1f KiB (x%.2f less)\n",
              static_cast<double>(baseline_run.dram.total_bytes()) / 1024.0,
              static_cast<double>(smache_run.dram.total_bytes()) / 1024.0,
              static_cast<double>(baseline_run.dram.total_bytes()) /
                  static_cast<double>(smache_run.dram.total_bytes()));
  std::printf("note: mirror boundaries resolve inside the stream window — "
              "no static buffers needed (%zu planned)\n",
              smache_run.plan->static_buffers().size());
  return ok ? 0 : 1;
}

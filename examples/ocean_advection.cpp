// Tracer advection in a re-entrant ocean channel — the kind of scientific
// model the paper cites as motivation: "some scientific problems require
// stencil computations with circular boundary conditions that result in
// offsets as large as the entire grid-size itself".
//
// The channel is periodic along the flow direction (mapped to grid rows,
// so the wrap reach is (H-1)*W — served by Smache static buffers) and has
// open lateral walls. A first-order upwind scheme advects a tracer blob
// with the flow; after H steps at Courant number 1 the blob returns to its
// starting latitude — a strong end-to-end check of the circular boundary
// plumbing.
//
// Run: ./build/examples/ocean_advection [--height H --width W]
#include <cstdio>

#include "common/cli.hpp"
#include "core/engine.hpp"

namespace {

std::size_t blob_row(const smache::grid::Grid<smache::word_t>& g) {
  // Row with the largest tracer mass.
  std::size_t best_row = 0;
  float best = -1.0f;
  for (std::size_t r = 0; r < g.height(); ++r) {
    float mass = 0.0f;
    for (std::size_t c = 0; c < g.width(); ++c)
      mass += smache::from_word<float>(g.at(r, c));
    if (mass > best) {
      best = mass;
      best_row = r;
    }
  }
  return best_row;
}

}  // namespace

int main(int argc, char** argv) {
  const smache::CliArgs args(argc, argv);
  const auto height = static_cast<std::size_t>(args.get_int("height", 20));
  const auto width = static_cast<std::size_t>(args.get_int("width", 16));

  std::printf("Tracer advection in a re-entrant channel (Smache)\n");
  std::printf("=================================================\n");

  smache::ProblemSpec problem;
  problem.height = height;
  problem.width = width;
  // Upwind tuple {centre, west, north}; flow is along rows (northward),
  // so cy = 1 (Courant number 1 along the periodic axis), cx = 0.
  problem.shape = smache::grid::StencilShape::upwind3();
  problem.bc = {smache::grid::AxisBoundary::periodic(),
                smache::grid::AxisBoundary::open()};
  problem.kernel = smache::rtl::KernelSpec::upwind(0.0f, 1.0f);
  problem.steps = height;  // one full trip around the channel
  std::printf("problem: %s\n\n", problem.describe().c_str());

  smache::grid::Grid<smache::word_t> init(height, width,
                                          smache::to_word(0.0f));
  const std::size_t start_row = 3;
  for (std::size_t c = width / 4; c < 3 * width / 4; ++c)
    init.at(start_row, c) = smache::to_word(1.0f);

  const smache::Engine engine(smache::EngineOptions::smache());
  const auto plan = engine.plan_only(problem);
  std::printf("%s\n", plan.describe().c_str());

  const auto run = engine.run(problem, init);
  const auto expected = smache::reference_run(problem, init);
  const bool exact = run.output == expected;

  std::printf("simulated %llu cycles over %zu instances; DRAM read %.1f "
              "KiB, wrote %.1f KiB\n",
              static_cast<unsigned long long>(run.cycles), problem.steps,
              static_cast<double>(run.dram.bytes_read()) / 1024.0,
              static_cast<double>(run.dram.bytes_written()) / 1024.0);
  std::printf("hardware vs software reference: %s\n",
              exact ? "BIT-EXACT" : "MISMATCH");

  // At Courant 1, exact upwind advection translates the field by one row
  // per step; after `height` steps the blob is back where it started,
  // having crossed the circular boundary once.
  const std::size_t final_row = blob_row(*run.output);
  std::printf("tracer blob: started at row %zu, after a full circuit sits "
              "at row %zu (%s)\n",
              start_row, final_row,
              final_row == start_row ? "returned through the wrap"
                                     : "UNEXPECTED");
  return exact && final_row == start_row ? 0 : 1;
}

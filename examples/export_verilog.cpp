// Export the planned Smache architecture as synthesisable Verilog — the
// bridge toward the paper's "integrate our design with a commercial
// high-level FPGA programming tool" future work. The emitted module
// mirrors the simulated microarchitecture one-for-one (same window
// layout, FIFO segments, static banks, gather cases).
//
// Run: ./build/examples/export_verilog [--height H --width W --out FILE]
#include <cstdio>
#include <fstream>

#include "common/cli.hpp"
#include "core/engine.hpp"
#include "rtl/verilog_export.hpp"

int main(int argc, char** argv) {
  const smache::CliArgs args(argc, argv);
  smache::ProblemSpec problem = smache::ProblemSpec::paper_example();
  problem.height = static_cast<std::size_t>(args.get_int("height", 11));
  problem.width = static_cast<std::size_t>(args.get_int("width", 11));

  const auto plan =
      smache::Engine(smache::EngineOptions::smache()).plan_only(problem);
  smache::rtl::VerilogOptions vopt;
  vopt.module_name = "smache_top";
  const std::string verilog = smache::rtl::export_verilog(plan, vopt);

  const std::string out = args.get_string("out", "");
  if (!out.empty()) {
    std::ofstream f(out);
    f << verilog;
    std::printf("wrote %zu bytes of Verilog to %s\n", verilog.size(),
                out.c_str());
  } else {
    std::printf("%s", verilog.c_str());
  }
  std::fprintf(stderr, "\n// lint: %s\n",
               smache::rtl::lint_verilog(verilog).empty() ? "clean"
                                                          : "PROBLEMS");
  return 0;
}

// Design-space exploration with the cost model — the use-case §III gives
// for having an analytic model at all: trading BRAM bits against registers
// under device constraints, without synthesising anything.
//
// Sweeps Case-R and Case-H (several BRAM-segment thresholds) across grid
// sizes, prints estimated footprints, predicted Fmax and device fit, and
// marks the register/BRAM Pareto frontier.
//
// Run: ./build/examples/dse_explorer [--sizes 11,64,256,1024] [--threads N]
// (--threads 0 = one worker per hardware thread; the point table is
// identical for any thread count)
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "cost/dse.hpp"

int main(int argc, char** argv) {
  const smache::CliArgs args(argc, argv);
  std::vector<std::size_t> sizes;
  {
    std::stringstream ss(args.get_string("sizes", "11,64,256,1024"));
    for (std::string tok; std::getline(ss, tok, ',');)
      sizes.push_back(static_cast<std::size_t>(std::stoull(tok)));
  }
  const auto threads =
      static_cast<std::size_t>(args.get_int("threads", 1));

  std::printf("Smache design-space exploration (cost model only — no "
              "simulation)\n");
  std::printf("device: %s\n\n",
              smache::cost::DeviceModel::stratix_v().name.c_str());

  for (const std::size_t n : sizes) {
    smache::cost::DseRequest req;
    req.height = n;
    req.width = n;
    req.threads = threads;
    const auto points = smache::cost::explore(req);

    smache::TextTable t({"config", "Rtotal(bits)", "Btotal(bits)",
                         "Fmax(MHz)", "fits", "pareto"});
    for (const auto& p : points) {
      t.begin_row();
      t.add_cell(p.label());
      t.add_cell(p.memory.r_total());
      t.add_cell(p.memory.b_total());
      t.add_cell(p.timing.fmax_mhz, 1);
      t.add_cell(std::string(p.fit.fits ? "yes" : "NO"));
      t.add_cell(std::string(p.pareto ? "*" : ""));
    }
    std::printf("--- %zux%zu grid, 4-point stencil, circular/open "
                "boundaries ---\n%s\n",
                n, n, t.to_ascii().c_str());
  }

  std::printf("reading the table: Case-R burns registers to avoid BRAM; "
              "Case-H keeps only taps and stage registers. The knee of the "
              "frontier moves with grid width exactly as Table I of the "
              "paper shows.\n");
  return 0;
}

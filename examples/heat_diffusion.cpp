// Heat diffusion on a torus — the classic scientific stencil workload the
// paper's introduction motivates: an explicit 5-point diffusion step with
// periodic (circular) boundaries on BOTH axes, run for many time steps.
//
// The vertical wrap has a reach of (H-1)*W words — exactly the case where
// Smache's static buffers replace an impossibly large window. The run is
// float-typed and checked bit-exactly against the software reference.
//
// Run: ./build/examples/heat_diffusion [--size N --steps S --alpha A]
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "core/engine.hpp"

namespace {

float cell_temp(const smache::grid::Grid<smache::word_t>& g, std::size_t r,
                std::size_t c) {
  return smache::from_word<float>(g.at(r, c));
}

float total_heat(const smache::grid::Grid<smache::word_t>& g) {
  float sum = 0.0f;
  for (std::size_t i = 0; i < g.size(); ++i)
    sum += smache::from_word<float>(g[i]);
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  const smache::CliArgs args(argc, argv);
  const auto size = static_cast<std::size_t>(args.get_int("size", 24));
  const auto steps = static_cast<std::size_t>(args.get_int("steps", 50));
  const auto alpha = static_cast<float>(args.get_double("alpha", 0.15));

  std::printf("2D heat diffusion on a torus (Smache)\n");
  std::printf("=====================================\n");

  smache::ProblemSpec problem;
  problem.height = size;
  problem.width = size;
  problem.shape = smache::grid::StencilShape::plus5();
  problem.bc = smache::grid::BoundarySpec::all_periodic();
  problem.kernel = smache::rtl::KernelSpec::diffusion(alpha);
  problem.steps = steps;
  std::printf("problem: %s\n\n", problem.describe().c_str());

  // Hot spot in the middle of a cold plate.
  smache::grid::Grid<smache::word_t> init(size, size,
                                          smache::to_word(0.0f));
  init.at(size / 2, size / 2) = smache::to_word(1000.0f);
  const float heat_before = total_heat(init);

  const smache::Engine engine(smache::EngineOptions::smache());
  const auto plan = engine.plan_only(problem);
  std::printf("planned buffers: window %zu elems, %zu static row "
              "buffer(s)\n\n",
              plan.window_len(), plan.static_buffers().size());

  const auto run = engine.run(problem, init);
  const auto expected = smache::reference_run(problem, init);
  const bool exact = run.output == expected;

  std::printf("simulated %llu cycles (%.1f per cell-update), DRAM traffic "
              "%.1f KiB\n",
              static_cast<unsigned long long>(run.cycles),
              static_cast<double>(run.cycles) /
                  static_cast<double>(problem.cells() * steps),
              static_cast<double>(run.dram.total_bytes()) / 1024.0);
  std::printf("hardware vs software reference: %s\n\n",
              exact ? "BIT-EXACT" : "MISMATCH");

  // Physics sanity: explicit diffusion on a torus conserves total heat up
  // to float rounding, and the peak must decay monotonically.
  const float heat_after = total_heat(*run.output);
  const float peak = cell_temp(*run.output, size / 2, size / 2);
  std::printf("total heat: %.3f -> %.3f (conservation error %.4f%%)\n",
              static_cast<double>(heat_before),
              static_cast<double>(heat_after),
              std::fabs(heat_after - heat_before) / heat_before * 100.0);
  std::printf("hot-spot temperature after %zu steps: %.3f (from 1000)\n",
              steps, static_cast<double>(peak));

  // Print a coarse temperature profile through the hot row.
  std::printf("\nprofile through the hot row:\n  ");
  for (std::size_t c = 0; c < size; c += (size >= 24 ? 2 : 1))
    std::printf("%6.1f", static_cast<double>(
                             cell_temp(*run.output, size / 2, c)));
  std::printf("\n");
  return exact ? 0 : 1;
}

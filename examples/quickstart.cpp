// Quickstart: the paper's own evaluation problem, end to end.
//
//   1. describe the problem (grid, stencil, boundaries, kernel, steps);
//   2. let the planner derive the buffer architecture (window layout,
//      static buffers, gather table) — §II/§III of the paper;
//   3. run the cycle-accurate Smache simulation and the unbuffered
//      baseline on the same initial grid;
//   4. verify both against the software reference and print the
//      Figure-2-style comparison.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart [--height H --width W --steps S]
//                                    [--verbose]
#include <cstdio>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "core/engine.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  // `verbose` is declared boolean so it never swallows a token that
  // happens to follow it on the command line.
  const smache::CliArgs args(argc, argv, {"verbose"});
  if (args.get_bool("verbose", false))
    smache::Log::set_level(smache::LogLevel::Info);

  smache::ProblemSpec problem = smache::ProblemSpec::paper_example();
  problem.height = static_cast<std::size_t>(args.get_int("height", 11));
  problem.width = static_cast<std::size_t>(args.get_int("width", 11));
  problem.steps = static_cast<std::size_t>(args.get_int("steps", 100));

  std::printf("Smache quickstart\n=================\n");
  std::printf("problem: %s\n\n", problem.describe().c_str());

  // --- step 1: plan the buffer architecture -------------------------------
  const smache::Engine smache_engine(smache::EngineOptions::smache());
  const auto plan = smache_engine.plan_only(problem);
  std::printf("%s\n", plan.describe().c_str());

  // --- step 2: make an initial grid (a simple gradient) -------------------
  smache::grid::Grid<smache::word_t> init(problem.height, problem.width);
  for (std::size_t r = 0; r < problem.height; ++r)
    for (std::size_t c = 0; c < problem.width; ++c)
      init.at(r, c) = smache::to_word(
          static_cast<std::int32_t>(100 * r + c));

  // --- step 3: run hardware simulations ------------------------------------
  const auto smache_run = smache_engine.run(problem, init);
  const auto baseline_run =
      smache::Engine(smache::EngineOptions::baseline()).run(problem, init);

  // --- step 4: verify and report ------------------------------------------
  const auto expected = smache::reference_run(problem, init);
  const bool ok = smache_run.output == expected &&
                  baseline_run.output == expected;
  std::printf("verification vs software reference: %s\n\n",
              ok ? "BIT-EXACT MATCH" : "MISMATCH");

  std::printf("%s\n",
              smache::format_fig2(baseline_run, smache_run).c_str());
  std::printf("warm-up cost: %llu cycles, amortised over %zu instances\n",
              static_cast<unsigned long long>(smache_run.warmup_cycles),
              problem.steps);
  return ok ? 0 : 1;
}

#!/usr/bin/env bash
# Run every bench target and record machine-readable results.
#
# For the two Google-Benchmark-style targets the binary's own
# --benchmark_out JSON is used (per-benchmark ns/iter and items/s); the
# eight standalone paper-figure benches get a wall-clock wrapper JSON. One
# BENCH_<target>.json per target lands in $OUT_DIR, so CI can archive them
# and trajectory can be compared across commits (e.g. with `jq`).
#
# Usage: scripts/bench.sh [target...]        (default: all 11 targets)
#   BUILD_DIR  build tree holding bench/ binaries   (default: build)
#   OUT_DIR    where BENCH_*.json files are written (default:
#              $BUILD_DIR/bench_results)
#   REPS       wall-clock repetitions for standalone benches (default: 3;
#              the fastest repetition is reported to damp scheduler noise)
#   MINIBENCH_REPS      per-benchmark repetitions inside the minibenchmark
#                       targets (default: 3, best repetition reported)
#   MINIBENCH_MIN_TIME  minimum seconds per benchmark repetition
#                       (default: 0.1)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${OUT_DIR:-${BUILD_DIR}/bench_results}"
REPS="${REPS:-3}"
# The executor-driven benches (scaling_gridsize, ablation_hybrid_sweep)
# parallelise across scenarios; wall-clock snapshots must stay comparable
# to the committed serial baselines, so pin them to one worker unless the
# caller explicitly overrides.
export SMACHE_SWEEP_THREADS="${SMACHE_SWEEP_THREADS:-1}"

GBENCH_TARGETS=(algorithm1_bench micro_sim_primitives tiled_engine_bench)
STANDALONE_TARGETS=(ablation_bus_topology ablation_cascade
  ablation_dram_models ablation_hybrid_sweep ablation_warmup
  fig2_smache_vs_baseline scaling_gridsize table1_resources)

if [ "$#" -gt 0 ]; then
  TARGETS=("$@")
else
  TARGETS=("${GBENCH_TARGETS[@]}" "${STANDALONE_TARGETS[@]}")
fi

mkdir -p "${OUT_DIR}"

is_gbench() {
  local t
  for t in "${GBENCH_TARGETS[@]}"; do
    [ "$t" = "$1" ] && return 0
  done
  return 1
}

# Microseconds since epoch, without forking (EPOCHREALTIME is bash >= 5,
# "sec.usec" — dropping the dot yields integer microseconds).
now_us() {
  echo "${EPOCHREALTIME/./}"
}

for target in "${TARGETS[@]}"; do
  bin="${BUILD_DIR}/bench/${target}"
  if [ ! -x "${bin}" ]; then
    echo "bench.sh: missing ${bin} (build the '${target}' target first)" >&2
    exit 1
  fi
  out="${OUT_DIR}/BENCH_${target}.json"
  if is_gbench "${target}"; then
    "${bin}" "--benchmark_out=${out}" --benchmark_out_format=json \
      > /dev/null
    echo "wrote ${out} (minibenchmark report)"
  else
    best_us=""
    for _ in $(seq 1 "${REPS}"); do
      t0=$(now_us)
      "${bin}" > /dev/null
      t1=$(now_us)
      dt=$((t1 - t0))
      if [ -z "${best_us}" ] || [ "${dt}" -lt "${best_us}" ]; then
        best_us=${dt}
      fi
    done
    printf '{\n  "name": "%s",\n  "run_type": "wall_clock",\n  "repetitions": %s,\n  "wall_time_best_us": %s\n}\n' \
      "${target}" "${REPS}" "${best_us}" > "${out}"
    echo "wrote ${out} (wall ${best_us} us, best of ${REPS})"
  fi
done

#!/usr/bin/env python3
"""Perf regression gate over the bench JSON emitted by scripts/bench.sh.

Compares freshly produced BENCH_*.json files against a committed baseline
snapshot and fails (exit 1) when a gated throughput metric drops below
``--min-ratio`` (default 0.8) of its baseline value.

Gated metrics:
  * minibenchmark reports — every benchmark whose name matches
    ``--metrics`` (a regex, default ``^BM_EngineCyclesPerSecond$``) is
    compared on ``items_per_second`` (higher is better). The default gates
    only the whole-engine simulation rate: the primitive microbenches
    (fifo/bram/stream-shift) measure testbench-driven single elements and
    are too noisy on shared runners to gate hard — they are still printed
    for trajectory.
  * wall-clock reports (``run_type == "wall_clock"``) — compared on
    ``wall_time_best_us`` (lower is better) when ``--wall`` is passed;
    off by default for the same noise reason.

Usage:
  scripts/perf_gate.py --fresh build/bench_results [--baseline bench/results/after]
                       [--min-ratio 0.8] [--metrics REGEX] [--wall]

Only files present in BOTH directories are compared; a baseline without a
fresh counterpart (or vice versa) is reported and skipped — the gate guards
regressions, not bench-set drift (CI runs a subset of targets).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys


def load_json(path: pathlib.Path):
    with path.open() as f:
        return json.load(f)


def minibench_metrics(doc) -> dict[str, float]:
    """name -> items_per_second for every benchmark that reports one."""
    out = {}
    for bench in doc.get("benchmarks", []):
        ips = bench.get("items_per_second")
        if ips is not None:
            out[bench["name"]] = float(ips)
    return out


def compare(args) -> int:
    fresh_dir = pathlib.Path(args.fresh)
    base_dir = pathlib.Path(args.baseline)
    if not fresh_dir.is_dir():
        print(f"perf_gate: fresh dir {fresh_dir} does not exist", file=sys.stderr)
        return 2
    if not base_dir.is_dir():
        print(f"perf_gate: baseline dir {base_dir} does not exist", file=sys.stderr)
        return 2

    metric_re = re.compile(args.metrics)
    failures = []
    compared = 0

    for fresh_path in sorted(fresh_dir.glob("BENCH_*.json")):
        base_path = base_dir / fresh_path.name
        if not base_path.exists():
            print(f"  [skip] {fresh_path.name}: no baseline counterpart")
            continue
        fresh = load_json(fresh_path)
        base = load_json(base_path)

        if fresh.get("run_type") == "wall_clock":
            ratio = base["wall_time_best_us"] / fresh["wall_time_best_us"]
            gated = args.wall
            verdict = "GATED" if gated else "info"
            print(
                f"  [{verdict}] {fresh['name']}: wall "
                f"{base['wall_time_best_us']}us -> {fresh['wall_time_best_us']}us "
                f"(speed ratio {ratio:.3f}x)"
            )
            if gated:
                compared += 1
                if ratio < args.min_ratio:
                    failures.append((fresh["name"], ratio))
            continue

        base_metrics = minibench_metrics(base)
        for name, fresh_ips in sorted(minibench_metrics(fresh).items()):
            base_ips = base_metrics.get(name)
            if base_ips is None or base_ips <= 0:
                continue
            ratio = fresh_ips / base_ips
            gated = bool(metric_re.search(name))
            verdict = "GATED" if gated else "info"
            print(
                f"  [{verdict}] {name}: {base_ips:.3e} -> {fresh_ips:.3e} "
                f"items/s (ratio {ratio:.3f}x)"
            )
            if gated:
                compared += 1
                if ratio < args.min_ratio:
                    failures.append((name, ratio))

    if compared == 0:
        print("perf_gate: no gated metric had both fresh and baseline values",
              file=sys.stderr)
        return 2
    if failures:
        for name, ratio in failures:
            print(
                f"perf_gate: FAIL {name} at {ratio:.3f}x of baseline "
                f"(threshold {args.min_ratio}x)",
                file=sys.stderr,
            )
        return 1
    print(f"perf_gate: OK ({compared} gated metric(s) >= "
          f"{args.min_ratio}x baseline)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", default="build/bench_results",
                        help="directory with freshly produced BENCH_*.json")
    parser.add_argument("--baseline", default="bench/results/after",
                        help="committed snapshot directory to compare against")
    parser.add_argument("--min-ratio", type=float, default=0.8,
                        help="minimum fresh/baseline throughput ratio")
    parser.add_argument("--metrics", default=r"^BM_EngineCyclesPerSecond$",
                        help="regex of minibenchmark names to gate")
    parser.add_argument("--wall", action="store_true",
                        help="also gate wall-clock bench reports")
    return compare(parser.parse_args())


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Tier-1 verification wall: configure, build everything (library, all tests,
# benches, examples), and run the full CTest suite. Any failure is fatal.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BUILD_TYPE="${BUILD_TYPE:-Release}"
JOBS="${JOBS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)}"

./scripts/check_headers.sh

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE="${BUILD_TYPE}" "$@"
cmake --build "${BUILD_DIR}" -j "${JOBS}"
# (cd form rather than --test-dir keeps the CMake 3.16 floor honest)
# CTEST_ARGS narrows the run (e.g. CTEST_ARGS="-R test_sweep" for the
# ThreadSanitizer leg, where the full wall would be needlessly slow).
# shellcheck disable=SC2086  # CTEST_ARGS is intentionally word-split
(cd "${BUILD_DIR}" && ctest --output-on-failure -j "${JOBS}" ${CTEST_ARGS:-})

#!/usr/bin/env bash
# Header self-containment check: every public header under src/ must compile
# standalone (no reliance on includer-provided declarations). Keeps the
# layered library structure honest as the tree grows.
set -uo pipefail

cd "$(dirname "$0")/.."

CXX="${CXX:-g++}"
STD="${STD:-c++20}"

fails=0
for header in src/*/*.hpp; do
  if ! "${CXX}" -std="${STD}" -Isrc -Wall -Wextra -fsyntax-only \
       -x c++ "${header}" 2>/tmp/check_headers_err; then
    echo "NOT SELF-CONTAINED: ${header}"
    sed -n '1,5p' /tmp/check_headers_err
    fails=$((fails + 1))
  fi
done

if [ "${fails}" -ne 0 ]; then
  echo "${fails} header(s) failed the self-containment check"
  exit 1
fi
echo "all $(ls src/*/*.hpp | wc -l) headers are self-contained"

# Defines the INTERFACE target `smache_warnings` carrying the first-party
# warning policy. Layer libraries, tests, benches, and examples link it
# PRIVATE; third_party code never does, so vendored headers stay exempt
# from -Werror (they are also consumed as SYSTEM includes).

add_library(smache_warnings INTERFACE)

if(MSVC)
  target_compile_options(smache_warnings INTERFACE /W4)
  if(SMACHE_WERROR)
    target_compile_options(smache_warnings INTERFACE /WX)
  endif()
else()
  target_compile_options(smache_warnings INTERFACE
    -Wall -Wextra -Wpedantic -Wshadow)
  if(SMACHE_WERROR)
    target_compile_options(smache_warnings INTERFACE -Werror)
  endif()
  if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU"
     AND CMAKE_CXX_COMPILER_VERSION VERSION_GREATER_EQUAL 12
     AND CMAKE_CXX_COMPILER_VERSION VERSION_LESS 14)
    # GCC 12/13 emit false-positive -Wrestrict on std::string operator+
    # chains at -O2 (GCC PR105329).
    target_compile_options(smache_warnings INTERFACE -Wno-restrict)
  endif()
endif()

// smache-sweep — batch scenario execution over the named workload registry.
//
// Expands a cartesian SweepSpec (architecture x stream impl x grid x DRAM
// model x steps x cascade depth x tile mesh x stencil x boundary x kernel
// x input),
// runs every distinct scenario on a worker pool (one independent Engine
// per scenario), and writes deterministic JSON/CSV reports whose content
// is bit-identical for any thread count.
//
// Default sweep: 4 stencil shapes x 3 boundary families x 2 grids, 3
// work-instances each — 24 scenario points.
//
// Sweeps are reproducible from spec files: --save-spec writes the resolved
// spec as JSON, --spec re-runs exactly that experiment (same labels, same
// seeds, same digest). --spec replaces the whole spec, so combining it
// with any dimension flag is an error, not a silent merge.
//
// Examples:
//   smache-sweep                            # default sweep, auto threads
//   smache-sweep --threads 4 --verify-serial --out sweep.json
//   smache-sweep --stencils random8,moore9 --boundaries island,striped
//                --grids 11,16x24 --steps 2,5 --verify-reference
//   smache-sweep --boundaries open,island --steps 12 --depths 1,2,3,4
//   smache-sweep --mode elab --impls reg,hybrid --thresholds 3,4,16
//   smache-sweep --steps 6 --depths 1,2 --save-spec experiment.json
//   smache-sweep --spec experiment.json     # reproduce the digest above
//   smache-sweep --list                     # print the workload catalogue
#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>

#include "common/assert.hpp"
#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "sweep/emit.hpp"
#include "sweep/executor.hpp"
#include "sweep/spec.hpp"
#include "sweep/specio.hpp"
#include "sweep/store.hpp"
#include "sweep/workloads.hpp"

using namespace smache;

namespace {

/// SIGINT -> cooperative stop: scenarios not yet started are skipped, the
/// worker pool drains, and everything already completed is flushed to the
/// store and the reports before exit (code 130). A second Ctrl-C behaves
/// the same — the flag is already set, so shutdown stays graceful.
std::atomic<bool> g_stop{false};

void handle_sigint(int) { g_stop.store(true); }

void print_catalogue() {
  std::printf("registered workload families (one sweep dimension each):\n");
  TextTable stencils({"stencil", "dims", "summary"});
  for (const auto& f : sweep::stencil_catalogue()) {
    stencils.begin_row();
    stencils.add_cell(f.name + (f.seeded ? " (seeded)" : ""));
    // Dimensionality from the shape itself (seed 0 for seeded families —
    // the random families draw offsets on the 2D axes only).
    const grid::StencilShape shape = f.make(0);
    stencils.add_cell(shape.ds_min() != 0 || shape.ds_max() != 0 ? "3D"
                                                                 : "2D");
    stencils.add_cell(f.summary);
  }
  std::printf("%s\n", stencils.to_ascii().c_str());
  TextTable bounds({"boundary", "summary"});
  for (const auto& f : sweep::boundary_catalogue()) {
    bounds.begin_row();
    bounds.add_cell(f.name);
    bounds.add_cell(f.summary);
  }
  std::printf("%s\n", bounds.to_ascii().c_str());
  TextTable kernels({"kernel", "fields", "arity", "summary"});
  for (const auto& f : sweep::kernel_catalogue()) {
    kernels.begin_row();
    kernels.add_cell(f.name);
    kernels.add_cell(std::to_string(f.spec.fields()));
    kernels.add_cell(f.needs_moore9 ? "moore9" : "any");
    kernels.add_cell(f.summary);
  }
  std::printf("%s\n", kernels.to_ascii().c_str());
  TextTable inputs({"input", "fields", "summary"});
  for (const auto& f : sweep::input_catalogue()) {
    inputs.begin_row();
    inputs.add_cell(f.name);
    inputs.add_cell(std::to_string(f.fields));
    inputs.add_cell(f.summary);
  }
  std::printf("%s\n", inputs.to_ascii().c_str());
  TextTable drams({"dram", "summary"});
  for (const auto& f : sweep::dram_catalogue()) {
    drams.begin_row();
    drams.add_cell(f.name);
    drams.add_cell(f.summary);
  }
  std::printf("%s\n", drams.to_ascii().c_str());
}

template <typename Parse>
auto parse_dim(const CliArgs& args, const std::string& flag,
               const std::string& fallback, Parse parse) {
  const auto items = sweep::split_list(args.get_string(flag, fallback));
  std::vector<decltype(parse(items.front()))> out;
  out.reserve(items.size());
  for (const auto& item : items) out.push_back(parse(item));
  return out;
}

/// Every flag that shapes the SweepSpec. --spec replaces the whole spec,
/// so pairing it with any of these is rejected rather than silently
/// merged.
const char* const kSpecFlags[] = {
    "mode",  "archs",  "impls",    "thresholds", "grids",
    "drams", "dram",   "steps",    "depths",     "tiles",
    "stencils",        "boundaries",             "kernels",
    "inputs",          "seed",     "max-cycles"};

sweep::SweepSpec spec_from_args(const CliArgs& args) {
  sweep::SweepSpec spec;
  spec.mode = sweep::parse_mode(args.get_string("mode", "sim"));
  spec.archs = parse_dim(args, "archs", "smache",
                         [](const std::string& s) {
                           return sweep::parse_arch(s);
                         });
  spec.impls = parse_dim(args, "impls", "hybrid",
                         [](const std::string& s) {
                           return sweep::parse_impl(s);
                         });
  spec.thresholds = parse_dim(args, "thresholds", "4",
                              [](const std::string& s) {
                                return sweep::parse_count(s, "threshold");
                              });
  // The acceptance sweep: 4 stencil shapes x 3 boundary families x 2 grids.
  spec.grids = parse_dim(args, "grids", "11,16",
                         [](const std::string& s) {
                           return sweep::parse_grid(s);
                         });
  // --drams is the canonical spelling; the historical singular --dram is
  // kept as an accepted alias. Passing both is rejected, not resolved by
  // precedence — "reject loudly" beats "run something else".
  if (args.has("drams") && args.has("dram"))
    throw contract_error("--drams and its alias --dram are the same flag; "
                         "pass only one");
  spec.drams = sweep::split_list(
      args.has("drams") ? args.get_string("drams", "functional")
                        : args.get_string("dram", "functional"));
  spec.steps = parse_dim(args, "steps", "3", [](const std::string& s) {
    return sweep::parse_count(s, "step count");
  });
  spec.depths = parse_dim(args, "depths", "1", [](const std::string& s) {
    return sweep::parse_count(s, "cascade depth");
  });
  // "2x3" = 2 tile rows x 3 tile cols; a bare "2" is a 2x2 mesh (same
  // shorthand as --grids). 1 (the default) is the untiled engine.
  spec.tiles = parse_dim(args, "tiles", "1", [](const std::string& s) {
    return sweep::parse_grid(s);
  });
  spec.stencils = sweep::split_list(
      args.get_string("stencils", "vn4,moore9,diamond13,cross3"));
  spec.boundaries = sweep::split_list(
      args.get_string("boundaries", "paper,circular,island"));
  spec.kernels = sweep::split_list(args.get_string("kernels", "average"));
  spec.inputs = sweep::split_list(args.get_string("inputs", "random"));
  // Full 64-bit parses: get_int would funnel these through int64 and make
  // seeds/watchdogs above 2^63 unrepresentable.
  spec.base_seed = sweep::parse_u64(args.get_string("seed", "1"), "seed");
  spec.max_cycles = sweep::parse_u64(
      args.get_string("max-cycles", "200000000"), "max-cycles");
  if (spec.max_cycles == 0)
    throw contract_error("malformed max-cycles '0' (the simulation "
                         "watchdog must be >= 1)");
  return spec;
}

sweep::SweepSpec resolve_spec(const CliArgs& args) {
  const std::string spec_path = args.get_string("spec", "");
  // A present-but-valueless --spec (filename omitted or swallowed by the
  // next flag) must not silently fall back to the default sweep.
  if (args.has("spec") && spec_path.empty())
    throw contract_error("--spec needs a filename");
  if (spec_path.empty()) return spec_from_args(args);
  for (const char* flag : kSpecFlags)
    if (args.has(flag))
      throw contract_error("--spec replaces the whole sweep spec; drop "
                           "--" + std::string(flag) +
                           " (edit the spec file instead)");
  return sweep::load_spec_file(spec_path);
}

double run_wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "smache-sweep: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  out << content;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"list", "verify-serial", "verify-reference",
                      "no-wall", "quiet", "resume", "fail-on-error",
                      "metrics", "progress"});
  if (args.has("help")) {
    std::printf(
        "usage: smache-sweep [--threads N] [--mode sim|elab]\n"
        "  [--archs smache,baseline] [--impls hybrid,reg]\n"
        "  [--thresholds 4,...] [--grids 11,16x24,16x16x8,...]\n"
        "  [--drams functional,ddr,stall] [--steps 3,...]\n"
        "  [--depths 1,2,...] [--tiles 1,2x2,...] [--tile-threads N]\n"
        "  [--stencils ...] [--boundaries ...]\n"
        "  [--kernels ...] [--inputs ...] [--seed N] [--max-cycles N]\n"
        "  [--spec experiment.json] [--save-spec experiment.json]\n"
        "  [--out report.json] [--csv report.csv] [--no-wall]\n"
        "  [--store DIR] [--resume] [--timeout-ms N]\n"
        "  [--metrics] [--trace-out DIR] [--progress]\n"
        "  [--fail-on-error[=false]]\n"
        "  [--verify-serial] [--verify-reference] [--list] [--quiet]\n"
        "--depths sweeps the cascade (temporal-blocking) depth: each\n"
        "scenario fuses that many time steps per DRAM pass (depth 1 = the\n"
        "per-instance engine); every steps value must divide by every\n"
        "depth. --tiles sweeps the halo-exchange tile mesh (\"2x3\" = 2\n"
        "tile rows x 3 tile cols, \"2x2x2\" adds slice-axis tiles for 3D\n"
        "grids, bare \"2\" = 2x2, 1 = untiled) and\n"
        "--tile-threads sets the worker count INSIDE each tiled scenario\n"
        "(0 = all cores); outputs are bit-identical across meshes and\n"
        "thread counts. --save-spec writes the resolved spec as JSON;\n"
        "--spec re-runs exactly that experiment (exclusive with dimension\n"
        "flags).\n"
        "--store DIR journals every finished scenario into a crash-safe\n"
        "result store: re-running the same (or a widened) sweep skips\n"
        "everything already completed and executes only the delta, so a\n"
        "killed sweep resumes from its last finished scenario. --resume is\n"
        "the same plus a safety rail: the store directory must already\n"
        "exist (catches a mistyped path that would silently start cold).\n"
        "A spec file can carry its store via the \"store\" key; --store\n"
        "overrides it. --timeout-ms arms a per-scenario wall-clock\n"
        "watchdog (nondeterministic by nature: tripped scenarios are\n"
        "reported but never stored). --metrics profiles every executed\n"
        "scenario (cycle attribution, stall counters, FIFO high-water\n"
        "marks) and adds a metrics column to the reports — simulated\n"
        "results and digests are bit-identical with or without it. The\n"
        "metrics and store_hit columns are wall-class (store hits carry no\n"
        "snapshot), so --no-wall drops them too. --trace-out DIR writes a\n"
        "Chrome trace-event JSON (chrome://tracing / Perfetto) per\n"
        "executed untiled scenario. --progress prints a live done/total\n"
        "line with an ETA to stderr. --fail-on-error (default on) exits\n"
        "non-zero when any scenario captured an error; =false downgrades\n"
        "captured errors to report entries for sweeps that intentionally\n"
        "include invalid pairings. Ctrl-C stops gracefully: running\n"
        "scenarios finish, the rest are skipped, completed results are\n"
        "flushed to the store and reports, exit code 130.\n");
    return 0;
  }
  if (args.get_bool("list", false)) {
    print_catalogue();
    return 0;
  }

  sweep::SweepSpec spec;
  try {
    spec = resolve_spec(args);
    spec.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "smache-sweep: malformed sweep spec: %s\n",
                 e.what());
    return 2;
  }

  // The store location comes from the spec file (its "store" key) unless
  // --store overrides it; --resume additionally demands the directory
  // already exists, so a mistyped path fails loudly instead of silently
  // starting a cold store.
  if (args.has("store")) {
    spec.store_dir = args.get_string("store", "");
    if (spec.store_dir.empty()) {
      std::fprintf(stderr, "smache-sweep: --store needs a directory\n");
      return 2;
    }
  }
  const bool resume = args.get_bool("resume", false);
  if (resume && spec.store_dir.empty()) {
    std::fprintf(stderr,
                 "smache-sweep: --resume needs a store (--store DIR or a "
                 "spec with a \"store\" key)\n");
    return 2;
  }

  const std::string save_spec_path = args.get_string("save-spec", "");
  if (args.has("save-spec") && save_spec_path.empty()) {
    std::fprintf(stderr, "smache-sweep: --save-spec needs a filename\n");
    return 2;
  }
  if (!save_spec_path.empty()) {
    try {
      sweep::save_spec_file(spec, save_spec_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "smache-sweep: %s\n", e.what());
      return 2;
    }
    std::printf("wrote %s\n", save_spec_path.c_str());
  }

  sweep::ExecutorOptions opts;
  opts.threads =
      static_cast<std::size_t>(args.get_int("threads", 0));
  if (opts.threads == 0) opts.threads = hardware_threads();
  // Intra-scenario parallelism: workers for each tiled scenario's per-pass
  // tile loop. Defaults to 1 (serial tiles) so scenario-level parallelism
  // is not oversubscribed unless explicitly requested.
  opts.tile_threads =
      static_cast<std::size_t>(args.get_int("tile-threads", 1));
  if (opts.tile_threads == 0) opts.tile_threads = hardware_threads();
  opts.verify_reference = args.get_bool("verify-reference", false);
  opts.wall_timeout_ms = static_cast<std::uint32_t>(
      args.get_int("timeout-ms", 0));
  opts.metrics = args.get_bool("metrics", false);
  const std::string trace_dir = args.get_string("trace-out", "");
  if (args.has("trace-out") && trace_dir.empty()) {
    std::fprintf(stderr, "smache-sweep: --trace-out needs a directory\n");
    return 2;
  }
  opts.trace = !trace_dir.empty();
  if (args.get_bool("progress", false)) {
    opts.progress = [](const sweep::SweepProgress& p) {
      std::fprintf(stderr,
                   "\rsweep: %zu/%zu done (%zu store hit(s), %zu executed, "
                   "%zu failed, %zu skipped) eta %.1fs ",
                   p.done, p.total, p.store_hits, p.executed, p.failed,
                   p.skipped, p.eta_ms / 1000.0);
      std::fflush(stderr);
    };
  }

  std::unique_ptr<sweep::ResultStore> store;
  if (!spec.store_dir.empty()) {
    try {
      if (resume && !sweep::real_file_io().exists(spec.store_dir)) {
        std::fprintf(stderr,
                     "smache-sweep: --resume: store directory '%s' does "
                     "not exist (use --store to start a fresh one)\n",
                     spec.store_dir.c_str());
        return 2;
      }
      store = std::make_unique<sweep::ResultStore>(spec.store_dir);
    } catch (const sweep::store_io_error& e) {
      std::fprintf(stderr, "smache-sweep: %s\n", e.what());
      return 2;
    }
    opts.store = store.get();
    std::printf("store: %s — %zu cached result(s)",
                spec.store_dir.c_str(), store->size());
    if (store->dropped_records() != 0)
      std::printf(", %llu corrupt/torn record(s) dropped (those scenarios "
                  "re-execute)",
                  static_cast<unsigned long long>(store->dropped_records()));
    std::printf("\n");
  }

  opts.stop = &g_stop;
  std::signal(SIGINT, handle_sigint);

  const auto scenarios = spec.expand();
  std::printf("smache-sweep: %zu scenario point(s) (%zu cartesian), "
              "%zu thread(s)\n",
              scenarios.size(), spec.scenario_count(), opts.threads);

  std::vector<sweep::ScenarioResult> results;
  const double wall_ms = run_wall_ms(
      [&] { results = sweep::SweepExecutor(opts).run(scenarios); });
  if (opts.progress) std::fprintf(stderr, "\n");

  if (!trace_dir.empty()) {
    try {
      sweep::real_file_io().create_directories(trace_dir);
      std::size_t written = 0;
      for (const auto& r : results) {
        if (r.run.trace_json.empty()) continue;
        // Labels are filesystem-hostile by construction (they encode the
        // whole scenario); keep a conservative character set.
        std::string name = r.scenario.label;
        for (char& c : name)
          if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
              c != '.' && c != '_')
            c = '_';
        write_file(trace_dir + "/" + name + ".trace.json",
                   r.run.trace_json);
        ++written;
      }
      std::printf("wrote %zu trace file(s) to %s\n", written,
                  trace_dir.c_str());
    } catch (const sweep::store_io_error& e) {
      std::fprintf(stderr, "smache-sweep: %s\n", e.what());
      return 2;
    }
  }

  std::size_t failed = 0, mismatched = 0;
  if (!args.get_bool("quiet", false)) {
    TextTable t({"scenario", "ok", "cycles", "read KiB", "write KiB",
                 "mops", "wall ms"});
    for (const auto& r : results) {
      t.begin_row();
      t.add_cell(r.scenario.label);
      t.add_cell(std::string(r.ok ? "yes" : "FAIL"));
      t.add_cell(r.run.cycles);
      t.add_cell(format_kib(r.run.dram.bytes_read()));
      t.add_cell(format_kib(r.run.dram.bytes_written()));
      t.add_cell(r.run.mops, 1);
      t.add_cell(r.wall_ms, 2);
    }
    std::printf("%s", t.to_ascii().c_str());
  }
  std::size_t skipped = 0, from_store = 0;
  for (const auto& r : results) {
    if (r.skipped) {
      ++skipped;
    } else if (!r.ok) {
      ++failed;
      std::fprintf(stderr, "FAIL %s: %s\n", r.scenario.label.c_str(),
                   r.error.c_str());
    } else if (r.reference_checked && !r.reference_match) {
      ++mismatched;
      std::fprintf(stderr, "REFERENCE MISMATCH %s\n",
                   r.scenario.label.c_str());
    }
    if (r.from_store) ++from_store;
  }

  const std::uint64_t digest = sweep::SweepExecutor::digest(results);
  std::printf("digest %016llx  wall %.1f ms  failed %zu\n",
              static_cast<unsigned long long>(digest), wall_ms, failed);
  if (store != nullptr) {
    const sweep::StoreStats st = store->stats();
    std::printf("store: %zu hit(s), %zu executed, %zu record(s) now "
                "persisted\n",
                from_store, results.size() - from_store - skipped,
                store->size());
    std::printf("store counters: hits %llu, misses %llu, appends %llu, "
                "retries %llu, dropped %llu\n",
                static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.misses),
                static_cast<unsigned long long>(st.appends),
                static_cast<unsigned long long>(st.retries),
                static_cast<unsigned long long>(st.dropped));
  }

  const bool interrupted = g_stop.load();
  bool serial_diverged = false;
  // Serial verification is meaningless after an interrupt (the serial run
  // would skip everything, trivially diverging from the partial results).
  if (args.get_bool("verify-serial", false) && !interrupted) {
    sweep::ExecutorOptions serial = opts;
    serial.threads = 1;
    serial.tile_threads = 1;  // fully serial: tile pools off too
    std::vector<sweep::ScenarioResult> serial_results;
    const double serial_ms = run_wall_ms([&] {
      serial_results = sweep::SweepExecutor(serial).run(scenarios);
    });
    const sweep::EmitOptions strict;  // include_wall=false: byte comparison
    serial_diverged =
        sweep::SweepExecutor::digest(serial_results) != digest ||
        emit_json(serial_results, strict) != emit_json(results, strict) ||
        emit_csv(serial_results, strict) != emit_csv(results, strict);
    std::printf("verify-serial: %s  (parallel %.1f ms, serial %.1f ms, "
                "speedup %.2fx)\n",
                serial_diverged ? "DIVERGED" : "bit-identical", wall_ms,
                serial_ms, wall_ms > 0.0 ? serial_ms / wall_ms : 0.0);
  }

  sweep::EmitOptions emit;
  emit.include_wall = !args.get_bool("no-wall", false);
  // store_hit and metrics are wall-class columns (warm vs cold runs differ
  // there), so --no-wall keeps byte-compare reports free of both.
  emit.include_store_hit = store != nullptr && emit.include_wall;
  emit.include_metrics = opts.metrics && emit.include_wall;
  const std::string json_path = args.get_string("out", "");
  if (!json_path.empty()) {
    write_file(json_path, emit_json(results, emit));
    std::printf("wrote %s\n", json_path.c_str());
  }
  const std::string csv_path = args.get_string("csv", "");
  if (!csv_path.empty()) {
    write_file(csv_path, emit_csv(results, emit));
    std::printf("wrote %s\n", csv_path.c_str());
  }

  if (interrupted) {
    // Completed results are already journaled (the executor stores each
    // one as it finishes) and the reports above are flushed; the exit code
    // is the conventional 128 + SIGINT.
    std::fprintf(stderr,
                 "smache-sweep: interrupted — %zu scenario(s) skipped, "
                 "completed results flushed%s\n",
                 skipped,
                 store != nullptr ? " (resume with the same --store)" : "");
    return 130;
  }

  // Captured scenario errors fail the run unless explicitly downgraded
  // (--fail-on-error=false, for sweeps that intentionally include invalid
  // pairings as data points). Reference mismatches and serial divergence
  // are always fatal — those are correctness claims, not data.
  const bool fail_on_error = args.get_bool("fail-on-error", true);
  return ((fail_on_error && failed != 0) || mismatched != 0 ||
          serial_diverged)
             ? 1
             : 0;
}

// Activity-gated eval scheduling (PR 3 tentpole).
//
// Part 1 — unit tests of the scheduler machinery itself: sleep/wake via
// FIFO commit events, wake-at-cycle timers, explicit wake(), force-eval
// mode, tracer interaction, and the all-asleep fast-forward.
//
// Part 2 — the equivalence property: for randomized problem configurations
// with DRAM stall injection and tight (back-pressuring) channel depths,
// the gated scheduler must produce BIT-IDENTICAL results — cycle counts,
// DRAM counters, outputs — to force-eval-everything mode. Quiescence
// declarations are module contracts; this is the test that catches a wrong
// one.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "sim/fifo.hpp"
#include "sim/simulator.hpp"
#include "support/test_grids.hpp"

namespace smache {
namespace {

/// Consumer that drains a FIFO one element per cycle and sleeps whenever
/// the channel is empty, relying on the push-commit wake.
class SleepyConsumer : public sim::Module {
 public:
  SleepyConsumer(sim::Simulator& sim, sim::Fifo<int>& in) : in_(in) {
    in_.set_consumer(this);
    sim.add_module(this);
  }
  void eval() override {
    ++evals;
    if (!in_.can_pop()) {
      sleep();
      return;
    }
    values.push_back(in_.pop());
  }
  std::vector<int> values;
  std::uint64_t evals = 0;

 private:
  sim::Fifo<int>& in_;
};

TEST(Scheduler, ConsumerSleepsUntilPushCommit) {
  sim::Simulator sim;
  sim::Fifo<int> chan(sim, "chan", 4);
  SleepyConsumer consumer(sim, chan);

  // Cycle 0: empty channel -> consumer evals once and goes to sleep.
  sim.step();
  EXPECT_EQ(consumer.evals, 1u);
  EXPECT_TRUE(consumer.asleep());
  EXPECT_EQ(sim.awake_module_count(), 0u);

  // Idle cycles: the sleeping module is not evaluated at all.
  sim.step();
  sim.step();
  EXPECT_EQ(consumer.evals, 1u);

  // A push from the testbench commits at the end of this cycle and wakes
  // the consumer exactly when the value becomes poppable: it pops on the
  // NEXT cycle, one flip-flop stage after the push — the same cycle a
  // never-sleeping consumer would pop on.
  chan.push(7);
  sim.step();  // push commits here; consumer still asleep this cycle
  EXPECT_EQ(consumer.evals, 1u);
  sim.step();  // woken: pops the value
  EXPECT_EQ(consumer.values, std::vector<int>{7});

  // Nothing further arrives: one more eval (sees empty, sleeps), then
  // silence.
  sim.step();
  const std::uint64_t evals_after_drain = consumer.evals;
  sim.step();
  sim.step();
  EXPECT_EQ(consumer.evals, evals_after_drain);
}

/// Module that sleeps for a fixed interval and records the cycles at which
/// it was evaluated.
class TimerSleeper : public sim::Module {
 public:
  TimerSleeper(sim::Simulator& sim, std::uint64_t interval)
      : sim_(sim), interval_(interval) {
    sim.add_module(this);
  }
  void eval() override {
    eval_cycles.push_back(sim_.now());
    sleep_for(interval_);
  }
  std::vector<std::uint64_t> eval_cycles;

 private:
  sim::Simulator& sim_;
  std::uint64_t interval_;
};

TEST(Scheduler, SleepForWakesExactlyOnSchedule) {
  sim::Simulator sim;
  TimerSleeper mod(sim, 5);
  for (int i = 0; i < 16; ++i) sim.step();
  // Evaluated at cycle 0, then exactly every 5 cycles.
  EXPECT_EQ(mod.eval_cycles,
            (std::vector<std::uint64_t>{0, 5, 10, 15}));
}

TEST(Scheduler, RunUntilFastForwardsThroughAllAsleepStretch) {
  sim::Simulator sim;
  TimerSleeper mod(sim, 1000);
  // Between the timer wakes nothing is active and nothing is pending
  // commit, so the burst stepping jumps whole idle stretches in O(1) —
  // with unchanged cycle arithmetic: the run reports the exact same cycle
  // count per-cycle stepping would.
  const std::uint64_t stepped = sim.run_until_done(
      [&] { return mod.eval_cycles.size() >= 3; },
      // Sound lower bound: the third eval happens at cycle 2000, so done()
      // first holds once cycle 2000 has completed.
      [&] {
        return mod.eval_cycles.size() >= 3 ? 0 : 2001 - sim.now();
      },
      100000);
  EXPECT_EQ(stepped, 2001u);  // evals at 0, 1000, 2000
  EXPECT_EQ(sim.now(), 2001u);
  EXPECT_EQ(mod.eval_cycles, (std::vector<std::uint64_t>{0, 1000, 2000}));
}

TEST(Scheduler, ExplicitWakeCancelsTimerSleep) {
  sim::Simulator sim;
  TimerSleeper mod(sim, 100);
  sim.step();  // evals at 0, sleeps until 100
  EXPECT_TRUE(mod.asleep());
  mod.wake();
  sim.step();  // evals at 1 (re-arms its timer from there)
  EXPECT_EQ(mod.eval_cycles, (std::vector<std::uint64_t>{0, 1}));
}

TEST(Scheduler, ForceEvalAllDisablesSleeping) {
  sim::Simulator sim;
  sim.set_force_eval_all(true);
  sim::Fifo<int> chan(sim, "chan", 4);
  SleepyConsumer consumer(sim, chan);
  for (int i = 0; i < 10; ++i) sim.step();
  EXPECT_EQ(consumer.evals, 10u);  // sleep() was a no-op every time
  EXPECT_FALSE(consumer.asleep());
}

TEST(Scheduler, ForceEvalAllWakesCurrentSleepers) {
  sim::Simulator sim;
  sim::Fifo<int> chan(sim, "chan", 4);
  SleepyConsumer consumer(sim, chan);
  sim.step();
  EXPECT_TRUE(consumer.asleep());
  sim.set_force_eval_all(true);
  EXPECT_FALSE(consumer.asleep());
  sim.step();
  EXPECT_EQ(consumer.evals, 2u);
}

TEST(Scheduler, EnabledTracerDisablesGating) {
  // Trace rows are sampled inside eval(), so gating would drop samples of
  // quiescent modules; an enabled tracer therefore disables sleeping.
  sim::Simulator sim;
  sim.tracer().set_enabled(true);
  sim::Fifo<int> chan(sim, "chan", 4);
  SleepyConsumer consumer(sim, chan);
  for (int i = 0; i < 5; ++i) sim.step();
  EXPECT_EQ(consumer.evals, 5u);
}

// ---------------------------------------------------------------------------
// Part 2: gated vs force-eval equivalence property.
// ---------------------------------------------------------------------------

struct RunDigest {
  std::uint64_t cycles;
  std::uint64_t warmup;
  mem::DramStats dram;
  grid::Grid<word_t> output{1, 1};
};

RunDigest digest(const RunResult& r) {
  return RunDigest{r.cycles, r.warmup_cycles, r.dram, *r.output};
}

void expect_same(const RunDigest& gated, const RunDigest& forced,
                 const std::string& label) {
  EXPECT_EQ(gated.cycles, forced.cycles) << label;
  EXPECT_EQ(gated.warmup, forced.warmup) << label;
  EXPECT_EQ(gated.dram.read_requests, forced.dram.read_requests) << label;
  EXPECT_EQ(gated.dram.words_read, forced.dram.words_read) << label;
  EXPECT_EQ(gated.dram.words_written, forced.dram.words_written) << label;
  EXPECT_EQ(gated.dram.row_hits, forced.dram.row_hits) << label;
  EXPECT_EQ(gated.dram.row_misses, forced.dram.row_misses) << label;
  EXPECT_EQ(gated.dram.read_busy_cycles, forced.dram.read_busy_cycles)
      << label;
  EXPECT_EQ(gated.dram.injected_stall_cycles,
            forced.dram.injected_stall_cycles)
      << label;
  EXPECT_TRUE(gated.output == forced.output) << label;
}

TEST(SchedulerEquivalence, RandomizedStallAndBackpressureSweep) {
  Rng rng(0x5EED);
  const grid::StencilShape shapes[] = {grid::StencilShape::von_neumann4(),
                                       grid::StencilShape::moore9(),
                                       grid::StencilShape::upwind3()};
  const grid::BoundarySpec bcs[] = {
      grid::BoundarySpec::paper_example(), grid::BoundarySpec::all_open(),
      grid::BoundarySpec::all_mirror(),
      {grid::AxisBoundary::constant_halo(5), grid::AxisBoundary::open()}};

  for (int trial = 0; trial < 24; ++trial) {
    ProblemSpec p;
    p.height = 4 + rng.next_below(8);
    p.width = 4 + rng.next_below(8);
    p.shape = shapes[rng.next_below(3)];
    p.bc = bcs[rng.next_below(4)];
    p.steps = 1 + rng.next_below(3);
    const auto rspan = static_cast<std::size_t>(p.shape.dr_max() -
                                                p.shape.dr_min());
    const auto cspan = static_cast<std::size_t>(p.shape.dc_max() -
                                                p.shape.dc_min());
    if (p.height <= rspan || p.width <= cspan) continue;

    EngineOptions opts;
    opts.arch =
        rng.next_below(2) == 0 ? Architecture::Smache : Architecture::Baseline;
    // Randomized stall injection: periodic multi-cycle DRAM freezes.
    if (rng.next_below(2) == 0) {
      opts.dram.stall_every = 5 + rng.next_below(40);
      opts.dram.stall_cycles = 1 + rng.next_below(9);
    }
    // Randomized back-pressure: tight data/request queues and a deeper
    // read latency force every freeze/wake path in the DRAM and tops.
    opts.dram.read_latency = 1 + rng.next_below(8);
    opts.dram.data_queue_depth = 1 + rng.next_below(3);
    opts.dram.req_queue_depth = 1 + rng.next_below(3);
    opts.dram.write_queue_depth = 1 + rng.next_below(3);

    const auto init = test_support::random_grid(
        p.height, p.width, 7000 + static_cast<std::uint64_t>(trial));

    EngineOptions forced = opts;
    forced.force_eval_all = true;
    const std::string label =
        "trial " + std::to_string(trial) + " " + to_string(opts.arch) + " " +
        std::to_string(p.height) + "x" + std::to_string(p.width) +
        " stall_every=" + std::to_string(opts.dram.stall_every) +
        " lat=" + std::to_string(opts.dram.read_latency);

    expect_same(digest(Engine(opts).run(p, init)),
                digest(Engine(forced).run(p, init)), label);
  }
}

TEST(SchedulerEquivalence, CascadeGatedMatchesForced) {
  ProblemSpec p;
  p.height = 10;
  p.width = 10;
  p.shape = grid::StencilShape::von_neumann4();
  p.bc = grid::BoundarySpec::all_open();
  p.steps = 6;
  EngineOptions opts = EngineOptions::smache();
  opts.dram.stall_every = 13;
  opts.dram.stall_cycles = 4;
  opts.dram.data_queue_depth = 2;
  EngineOptions forced = opts;
  forced.force_eval_all = true;
  const auto init = test_support::random_grid(10, 10, 4711);
  expect_same(digest(Engine(opts).run_cascade(p, init, 3)),
              digest(Engine(forced).run_cascade(p, init, 3)), "cascade");
}

TEST(SchedulerEquivalence, DdrLikeRowModelGatedMatchesForced) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.height = 16;
  p.width = 16;
  p.steps = 4;
  EngineOptions opts = EngineOptions::smache();
  opts.dram = mem::DramConfig::ddr_like();
  EngineOptions forced = opts;
  forced.force_eval_all = true;
  const auto init = test_support::random_grid(16, 16, 99);
  expect_same(digest(Engine(opts).run(p, init)),
              digest(Engine(forced).run(p, init)), "ddr_like");
}

}  // namespace
}  // namespace smache

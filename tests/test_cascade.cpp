// Tests for the temporal-blocking cascade extension: K fused time steps
// per DRAM pass must match the K-step reference bit-exactly, cut traffic
// by ~K, and correctly reject configurations it cannot fuse.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "support/test_grids.hpp"

namespace smache {
namespace {

grid::Grid<word_t> random_grid(std::size_t h, std::size_t w,
                               std::uint64_t seed) {
  return test_support::random_grid(h, w, seed, 1 << 12);
}

ProblemSpec open_problem(std::size_t steps) {
  ProblemSpec p;
  p.height = 12;
  p.width = 10;
  p.shape = grid::StencilShape::von_neumann4();
  p.bc = grid::BoundarySpec::all_open();
  p.kernel = rtl::KernelSpec::average_int();
  p.steps = steps;
  return p;
}

class CascadeDepthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CascadeDepthSweep, MatchesReference) {
  const std::size_t depth = GetParam();
  const auto p = open_problem(12);  // divisible by 1,2,3,4,6
  const auto init = random_grid(p.height, p.width, depth);
  const auto res =
      Engine(EngineOptions::smache()).run_cascade(p, init, depth);
  EXPECT_EQ(res.output, reference_run(p, init)) << "depth " << depth;
}

INSTANTIATE_TEST_SUITE_P(Depths, CascadeDepthSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 12));

TEST(Cascade, MirrorBoundariesSupported) {
  ProblemSpec p = open_problem(8);
  p.bc = grid::BoundarySpec::all_mirror();
  p.shape = grid::StencilShape::moore9();
  const auto init = random_grid(p.height, p.width, 77);
  const auto res = Engine(EngineOptions::smache()).run_cascade(p, init, 4);
  EXPECT_EQ(res.output, reference_run(p, init));
}

TEST(Cascade, ConstantBoundariesSupported) {
  ProblemSpec p = open_problem(6);
  p.bc = {grid::AxisBoundary::constant_halo(to_word<std::int32_t>(11)),
          grid::AxisBoundary::constant_halo(to_word<std::int32_t>(-4))};
  const auto init = random_grid(p.height, p.width, 78);
  const auto res = Engine(EngineOptions::smache()).run_cascade(p, init, 3);
  EXPECT_EQ(res.output, reference_run(p, init));
}

TEST(Cascade, FloatDiffusionSupported) {
  ProblemSpec p = open_problem(10);
  p.shape = grid::StencilShape::plus5();
  p.kernel = rtl::KernelSpec::diffusion(0.2f);
  grid::Grid<word_t> init(p.height, p.width, to_word(0.0f));
  init.at(6, 5) = to_word(256.0f);
  const auto res = Engine(EngineOptions::smache()).run_cascade(p, init, 5);
  EXPECT_EQ(res.output, reference_run(p, init));
}

TEST(Cascade, PopulatesWarmupCycles) {
  // Cascade warmup = pipeline fill: the cycle the first result writes
  // back. It must be populated (the seed left it at 0 — reports showed
  // cascade rows with zero warmup) and grow with depth, since each fused
  // stage adds its own window-fill latency.
  const auto p = open_problem(12);
  const auto init = random_grid(p.height, p.width, 99);
  const Engine engine(EngineOptions::smache());
  const auto shallow = engine.run_cascade(p, init, 1);
  const auto deep = engine.run_cascade(p, init, 4);
  EXPECT_GT(shallow.warmup_cycles, 0u);
  EXPECT_LT(shallow.warmup_cycles, shallow.cycles);
  EXPECT_GT(deep.warmup_cycles, shallow.warmup_cycles);
  EXPECT_LT(deep.warmup_cycles, deep.cycles);
}

TEST(Cascade, TrafficDropsByDepth) {
  const auto p = open_problem(12);
  const auto init = random_grid(p.height, p.width, 80);
  const Engine engine(EngineOptions::smache());
  const auto flat = engine.run_cascade(p, init, 1);
  const auto fused = engine.run_cascade(p, init, 6);
  const std::uint64_t n = p.cells();
  EXPECT_EQ(flat.dram.words_read, n * 12);
  EXPECT_EQ(fused.dram.words_read, n * 2);
  EXPECT_EQ(fused.dram.words_written, n * 2);
  EXPECT_LT(fused.cycles, flat.cycles)
      << "fewer passes must also cost fewer cycles";
}

TEST(Cascade, ResourcesScaleWithDepth) {
  const auto p = open_problem(4);
  const auto init = random_grid(p.height, p.width, 81);
  const Engine engine(EngineOptions::smache());
  const auto d1 = engine.run_cascade(p, init, 1);
  const auto d4 = engine.run_cascade(p, init, 4);
  // Four windows and kernels on chip instead of one.
  EXPECT_GT(d4.resources.r_stream, 3 * d1.resources.r_stream);
  EXPECT_EQ(d4.estimate->r_stream, 4 * d1.estimate->r_stream);
}

TEST(Cascade, PeriodicBoundariesRejected) {
  ProblemSpec p = open_problem(4);
  p.bc = grid::BoundarySpec::paper_example();
  const auto init = random_grid(p.height, p.width, 82);
  EXPECT_THROW(
      Engine(EngineOptions::smache()).run_cascade(p, init, 2),
      contract_error)
      << "periodic wraps need data that does not exist yet within a pass";
}

TEST(Cascade, IndivisibleStepsRejected) {
  const auto p = open_problem(7);
  const auto init = random_grid(p.height, p.width, 83);
  EXPECT_THROW(Engine(EngineOptions::smache()).run_cascade(p, init, 2),
               contract_error);
}

TEST(Cascade, SurvivesDramStalls) {
  ProblemSpec p = open_problem(6);
  const auto init = random_grid(p.height, p.width, 84);
  EngineOptions opts = EngineOptions::smache();
  opts.dram.stall_every = 5;
  opts.dram.stall_cycles = 3;
  const auto res = Engine(opts).run_cascade(p, init, 3);
  EXPECT_EQ(res.output, reference_run(p, init));
}

TEST(Cascade, OneDimensionalFirChain) {
  // 1D moving-average FIR over a long line, fused 4 deep — exercises the
  // degenerate-height path end to end.
  ProblemSpec p;
  p.height = 1;
  p.width = 64;
  p.shape = grid::StencilShape::custom("fir3", {{0, -1}, {0, 0}, {0, 1}});
  p.bc = grid::BoundarySpec::all_open();
  p.kernel = rtl::KernelSpec::average_int();
  p.steps = 4;
  const auto init = random_grid(1, 64, 85);
  const auto res = Engine(EngineOptions::smache()).run_cascade(p, init, 4);
  EXPECT_EQ(res.output, reference_run(p, init));
}

}  // namespace
}  // namespace smache

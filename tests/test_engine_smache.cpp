// End-to-end Smache engine tests: the simulated hardware must reproduce the
// golden software reference bit-exactly, including the paper's exact
// evaluation problem (11x11, 4-point average, circular+open boundaries).
#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "support/test_grids.hpp"

namespace smache {
namespace {

grid::Grid<word_t> random_grid(std::size_t h, std::size_t w,
                               std::uint64_t seed) {
  return test_support::random_grid(h, w, seed, 1000);
}

TEST(SmacheEngine, PaperProblemSingleStepMatchesReference) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 1;
  const auto init = random_grid(11, 11, 1);
  const auto ref = reference_run(p, init);
  const auto res = Engine(EngineOptions::smache()).run(p, init);
  EXPECT_EQ(res.output, ref);
}

TEST(SmacheEngine, PaperProblemHundredStepsMatchesReference) {
  const ProblemSpec p = ProblemSpec::paper_example();
  const auto init = random_grid(11, 11, 2);
  const auto ref = reference_run(p, init);
  const auto res = Engine(EngineOptions::smache()).run(p, init);
  EXPECT_EQ(res.output, ref);
}

TEST(SmacheEngine, RegisterOnlyMatchesHybrid) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 3;
  const auto init = random_grid(11, 11, 3);
  const auto hybrid =
      Engine(EngineOptions::smache(model::StreamImpl::Hybrid)).run(p, init);
  const auto regs =
      Engine(EngineOptions::smache(model::StreamImpl::RegisterOnly))
          .run(p, init);
  EXPECT_EQ(hybrid.output, regs.output);
  EXPECT_EQ(hybrid.cycles, regs.cycles)
      << "hybridisation trades resources, never cycles";
}

TEST(SmacheEngine, PaperCycleCountShape) {
  // The paper reports 14039 cycles for 100 instances of the 11x11 problem
  // (~139/instance plus warm-up). Our microarchitecture should land in the
  // same regime: between N+fill and 1.5x that per instance.
  const ProblemSpec p = ProblemSpec::paper_example();
  const auto res =
      Engine(EngineOptions::smache()).run(p, random_grid(11, 11, 4));
  const double per_instance =
      static_cast<double>(res.cycles) / static_cast<double>(p.steps);
  EXPECT_GE(per_instance, 121.0);
  EXPECT_LE(per_instance, 121.0 * 1.6);
}

TEST(SmacheEngine, DramTrafficIsReadOnceWriteOnce) {
  // Smache's whole point: each input word read once per instance (plus the
  // warm-up rows), each output word written once.
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 10;
  const auto res =
      Engine(EngineOptions::smache()).run(p, random_grid(11, 11, 5));
  const std::uint64_t n = p.cells();
  const std::uint64_t warm_words = 2 * p.width;  // two boundary rows
  EXPECT_EQ(res.dram.words_read, n * p.steps + warm_words);
  EXPECT_EQ(res.dram.words_written, n * p.steps);
}

TEST(SmacheEngine, WarmupHappensOnceAndIsShort) {
  const ProblemSpec p = ProblemSpec::paper_example();
  const auto res =
      Engine(EngineOptions::smache()).run(p, random_grid(11, 11, 6));
  EXPECT_GT(res.warmup_cycles, 0u);
  EXPECT_LT(res.warmup_cycles, 100u);
}

TEST(SmacheEngine, AllPeriodicBoundariesMatchReference) {
  ProblemSpec p;
  p.height = 9;
  p.width = 13;
  p.shape = grid::StencilShape::von_neumann4();
  p.bc = grid::BoundarySpec::all_periodic();
  p.kernel = rtl::KernelSpec::average_int();
  p.steps = 4;
  const auto init = random_grid(9, 13, 7);
  EXPECT_EQ(Engine(EngineOptions::smache()).run(p, init).output,
            reference_run(p, init));
}

TEST(SmacheEngine, MirrorBoundariesMatchReference) {
  ProblemSpec p;
  p.height = 8;
  p.width = 8;
  p.shape = grid::StencilShape::plus5();
  p.bc = grid::BoundarySpec::all_mirror();
  p.steps = 3;
  const auto init = random_grid(8, 8, 8);
  EXPECT_EQ(Engine(EngineOptions::smache()).run(p, init).output,
            reference_run(p, init));
}

TEST(SmacheEngine, ConstantBoundariesMatchReference) {
  ProblemSpec p;
  p.height = 7;
  p.width = 9;
  p.shape = grid::StencilShape::von_neumann4();
  p.bc = {grid::AxisBoundary::constant_halo(to_word<std::int32_t>(50)),
          grid::AxisBoundary::constant_halo(to_word<std::int32_t>(-3))};
  p.steps = 2;
  const auto init = random_grid(7, 9, 9);
  EXPECT_EQ(Engine(EngineOptions::smache()).run(p, init).output,
            reference_run(p, init));
}

TEST(SmacheEngine, Moore9PeriodicRowsMatchesReference) {
  ProblemSpec p;
  p.height = 10;
  p.width = 12;
  p.shape = grid::StencilShape::moore9();
  p.bc = {grid::AxisBoundary::periodic(), grid::AxisBoundary::open()};
  p.steps = 3;
  const auto init = random_grid(10, 12, 10);
  EXPECT_EQ(Engine(EngineOptions::smache()).run(p, init).output,
            reference_run(p, init));
}

TEST(SmacheEngine, FloatDiffusionMatchesReferenceBitExactly) {
  ProblemSpec p;
  p.height = 12;
  p.width = 10;
  p.shape = grid::StencilShape::plus5();
  p.bc = grid::BoundarySpec::all_periodic();
  p.kernel = rtl::KernelSpec::diffusion(0.15f);
  p.steps = 5;
  grid::Grid<word_t> init(12, 10, to_word(0.0f));
  init.at(6, 5) = to_word(100.0f);
  EXPECT_EQ(Engine(EngineOptions::smache()).run(p, init).output,
            reference_run(p, init));
}

TEST(SmacheEngine, EstimateAndPlanArePopulated) {
  const ProblemSpec p = ProblemSpec::paper_example();
  const auto res =
      Engine(EngineOptions::smache()).run(p, random_grid(11, 11, 11));
  ASSERT_TRUE(res.estimate.has_value());
  ASSERT_TRUE(res.plan.has_value());
  EXPECT_GT(res.timing.fmax_mhz, 0.0);
  EXPECT_GT(res.mops, 0.0);
  EXPECT_EQ(res.ops, 121ull * 100 * 4);
}

TEST(SmacheEngine, ElaborateOnlySkipsSimulation) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.height = 64;
  p.width = 64;
  const auto res = Engine(EngineOptions::smache()).elaborate_only(p);
  EXPECT_EQ(res.cycles, 0u);
  EXPECT_GT(res.resources.b_total, 0u);
  ASSERT_TRUE(res.estimate.has_value());
}

TEST(SmacheEngine, RejectsMismatchedInitialGrid) {
  const ProblemSpec p = ProblemSpec::paper_example();
  grid::Grid<word_t> wrong(5, 5);
  EXPECT_THROW(Engine(EngineOptions::smache()).run(p, wrong),
               contract_error);
}

TEST(SmacheEngine, RejectsGridDimensionsThatOverflowSizeT) {
  // height * width must stay representable; validate() refuses the pair
  // before any allocation is attempted.
  ProblemSpec p = ProblemSpec::paper_example();
  p.height = std::numeric_limits<std::size_t>::max() / 2;
  p.width = 3;
  try {
    p.validate();
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("overflow"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace smache

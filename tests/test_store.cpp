// ResultStore contract wall — the durability layer under crash-safe
// sweeps:
//   * record encoding round-trips exactly and rejects malformed payloads;
//   * the journal survives reopen, rotation and compaction with
//     last-writer-wins semantics;
//   * every corruption mode (torn tail, flipped byte, foreign header,
//     short read) is detected by the length/checksum framing, dropped,
//     counted — and never aborts recovery of the intact prefix or other
//     segments;
//   * the FaultyFileIo harness can script torn/failed appends at exact
//     operation indices, and a failed put retries into a FRESH segment
//     (never after a possibly-torn tail);
//   * concurrent put() is safe (this file is in the TSan CI leg).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "sweep/faults.hpp"
#include "sweep/spec.hpp"
#include "sweep/store.hpp"

namespace smache::sweep {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction. Relative to
/// the per-test CWD, like the spec-file round-trip tests.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name) : path_("store_tmp_" + name) {
    fs::remove_all(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

StoredResult sample_record(std::uint64_t key) {
  StoredResult r;
  r.key = key;
  r.label = "sim/smache/hyb-t4/11x11/functional/s" + std::to_string(key);
  r.ok = true;
  r.cycles = 1000 + key;
  r.warmup_cycles = 17;
  r.dram.read_requests = 3 * key;
  r.dram.words_read = 400 + key;
  r.dram.words_written = 121;
  r.dram.row_hits = 9;
  r.dram.row_misses = 2;
  r.dram.injected_stall_cycles = 5;
  r.dram.injected_delay_cycles = 4;
  r.dram.read_busy_cycles = 400;
  r.output_hash = 0xDEADBEEFCAFEF00Dull ^ key;
  r.reference_checked = true;
  r.reference_match = true;
  r.r_total = 120;
  r.b_total = 9001;
  r.r_static = 40;
  r.b_static = 3000;
  r.r_stream = 80;
  r.b_stream = 6001;
  r.m20k_blocks = 7;
  r.fmax_mhz = 287.25;
  r.ops = 121 * 5;
  r.exec_time_us = 3.4875;
  r.mops = 173.5;
  return r;
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void write_all(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

std::vector<std::string> segments(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().extension() == ".smr") out.push_back(e.path().string());
  std::sort(out.begin(), out.end());
  return out;
}

// ---- encoding ------------------------------------------------------------

TEST(StoreEncoding, RoundTripsEveryField) {
  const StoredResult r = sample_record(42);
  const StoredResult back = ResultStore::decode(ResultStore::encode(r));
  EXPECT_EQ(back, r);

  StoredResult failed;
  failed.key = 7;
  failed.label = "sim/x";
  failed.ok = false;
  failed.error = "cascade depth 2 needs in-stream boundaries";
  EXPECT_EQ(ResultStore::decode(ResultStore::encode(failed)), failed);
}

TEST(StoreEncoding, RejectsTruncatedAndOversizedPayloads) {
  const std::string payload = ResultStore::encode(sample_record(1));
  for (const std::size_t cut : {std::size_t{0}, std::size_t{4},
                                payload.size() - 1})
    EXPECT_THROW((void)ResultStore::decode(
                     std::string_view(payload).substr(0, cut)),
                 store_io_error);
  EXPECT_THROW((void)ResultStore::decode(payload + "x"), store_io_error);
}

// ---- journal persistence -------------------------------------------------

TEST(Store, PutFindSurviveReopen) {
  const ScratchDir dir("reopen");
  {
    ResultStore store(dir.path());
    EXPECT_EQ(store.size(), 0u);
    for (std::uint64_t k : {1ull, 2ull, 3ull}) store.put(sample_record(k));
    EXPECT_EQ(store.size(), 3u);
    EXPECT_TRUE(store.contains(2));
    EXPECT_FALSE(store.contains(99));
  }
  ResultStore reopened(dir.path());
  EXPECT_EQ(reopened.size(), 3u);
  EXPECT_EQ(reopened.dropped_records(), 0u);
  StoredResult out;
  ASSERT_TRUE(reopened.find(3, &out));
  EXPECT_EQ(out, sample_record(3));
}

TEST(Store, LastWriterWinsWithinAndAcrossReopens) {
  const ScratchDir dir("lww");
  StoredResult v1 = sample_record(5);
  StoredResult v2 = v1;
  v2.cycles = 999999;
  {
    ResultStore store(dir.path());
    store.put(v1);
    store.put(v2);
    EXPECT_EQ(store.size(), 1u);
    StoredResult out;
    ASSERT_TRUE(store.find(5, &out));
    EXPECT_EQ(out.cycles, 999999u);
  }
  ResultStore reopened(dir.path());
  EXPECT_EQ(reopened.size(), 1u);
  StoredResult out;
  ASSERT_TRUE(reopened.find(5, &out));
  EXPECT_EQ(out, v2);
}

TEST(Store, RotatesSegmentsAndLoadsThemAll) {
  const ScratchDir dir("rotate");
  StoreOptions tiny;
  tiny.max_segment_bytes = 1;  // every put rotates
  {
    ResultStore store(dir.path(), tiny);
    for (std::uint64_t k = 0; k < 5; ++k) store.put(sample_record(k));
  }
  EXPECT_EQ(segments(dir.path()).size(), 5u);
  ResultStore reopened(dir.path());
  EXPECT_EQ(reopened.size(), 5u);
  EXPECT_EQ(reopened.dropped_records(), 0u);
}

TEST(Store, CompactionMergesToOneSegmentPreservingContents) {
  const ScratchDir dir("compact");
  StoreOptions tiny;
  tiny.max_segment_bytes = 1;
  {
    ResultStore store(dir.path(), tiny);
    for (std::uint64_t k = 0; k < 4; ++k) store.put(sample_record(k));
    StoredResult overwrite = sample_record(2);
    overwrite.cycles = 1;
    store.put(overwrite);
    store.compact();
    EXPECT_EQ(store.size(), 4u);
    // Compaction must not break a store that keeps appending afterwards.
    store.put(sample_record(77));
  }
  ResultStore reopened(dir.path());
  EXPECT_EQ(reopened.size(), 5u);
  StoredResult out;
  ASSERT_TRUE(reopened.find(2, &out));
  EXPECT_EQ(out.cycles, 1u);
  ASSERT_TRUE(reopened.find(77, &out));
  EXPECT_EQ(out, sample_record(77));
}

TEST(Store, LeftoverTmpFilesRemovedOnOpen) {
  const ScratchDir dir("tmpclean");
  { ResultStore store(dir.path()); store.put(sample_record(1)); }
  const std::string stray = dir.path() + "/seg-000099.smr.tmp";
  write_all(stray, "half-written rotation");
  ResultStore reopened(dir.path());
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_FALSE(fs::exists(stray));
}

// ---- corruption recovery -------------------------------------------------

TEST(StoreRecovery, TornTailIsDroppedAndCounted) {
  const ScratchDir dir("torn");
  {
    ResultStore store(dir.path());
    store.put(sample_record(1));
    store.put(sample_record(2));
  }
  const std::string seg = segments(dir.path()).at(0);
  const std::string bytes = read_all(seg);
  // Cut mid-way through the second record (well past the first).
  const std::size_t rec1_end =
      8 + 4 + ResultStore::frame(sample_record(1)).size();
  write_all(seg, bytes.substr(0, rec1_end + 10));

  ResultStore reopened(dir.path());
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_TRUE(reopened.contains(1));
  EXPECT_FALSE(reopened.contains(2));
  EXPECT_EQ(reopened.dropped_records(), 1u);
  // The store stays writable after recovery; re-putting the lost record
  // restores it durably.
  reopened.put(sample_record(2));
  ResultStore again(dir.path());
  EXPECT_EQ(again.size(), 2u);
}

TEST(StoreRecovery, FlippedByteAbandonsRestOfThatSegmentOnly) {
  const ScratchDir dir("flip");
  StoreOptions tiny;
  tiny.max_segment_bytes = 1;  // record 1 and records 2..3 in own segments
  {
    ResultStore store(dir.path(), tiny);
    for (std::uint64_t k = 1; k <= 3; ++k) store.put(sample_record(k));
  }
  const auto segs = segments(dir.path());
  ASSERT_EQ(segs.size(), 3u);
  // Flip one payload byte in the SECOND segment: its checksum fails, the
  // segment's remainder is abandoned, but segments 1 and 3 are untouched.
  std::string bytes = read_all(segs[1]);
  bytes[8 + 4 + 20] ^= 0x40;
  write_all(segs[1], bytes);

  ResultStore reopened(dir.path());
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_TRUE(reopened.contains(1));
  EXPECT_FALSE(reopened.contains(2));
  EXPECT_TRUE(reopened.contains(3));
  EXPECT_EQ(reopened.dropped_records(), 1u);
}

TEST(StoreRecovery, ForeignHeaderSegmentIgnoredWholesale) {
  const ScratchDir dir("foreign");
  { ResultStore store(dir.path()); store.put(sample_record(4)); }
  write_all(dir.path() + "/seg-000050.smr", "NOTMAGIC-garbage-bytes");
  ResultStore reopened(dir.path());
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_GE(reopened.dropped_records(), 1u);
}

TEST(StoreRecovery, UnusableDirectoryIsACleanError) {
  const ScratchDir dir("notadir");
  write_all(dir.path(), "a regular file where the store dir should be");
  // Opening a store rooted at (or under) a regular file must surface as
  // store_io_error with the path in the message — never a raw
  // std::filesystem exception from deep inside.
  try {
    ResultStore store(dir.path());
    FAIL() << "expected store_io_error";
  } catch (const store_io_error& e) {
    EXPECT_NE(std::string(e.what()).find(dir.path()), std::string::npos);
  }
  EXPECT_THROW(ResultStore(dir.path() + "/sub"), store_io_error);
}

// ---- scenario keys -------------------------------------------------------

TEST(StoreKey, DistinguishesEverythingThatChangesTheResult) {
  SweepSpec spec;
  spec.boundaries = {"open"};
  const Scenario base = spec.expand().at(0);
  const std::uint64_t key = ResultStore::scenario_key(base, false);
  EXPECT_EQ(ResultStore::scenario_key(base, false), key);  // stable

  Scenario other = base;
  other.label += "!";
  EXPECT_NE(ResultStore::scenario_key(other, false), key);
  other = base;
  other.seed ^= 1;
  EXPECT_NE(ResultStore::scenario_key(other, false), key);
  other = base;
  other.engine.max_cycles += 1;
  EXPECT_NE(ResultStore::scenario_key(other, false), key);
  EXPECT_NE(ResultStore::scenario_key(base, true), key);  // verify flag
}

// ---- fault-injection harness (IO side) -----------------------------------

TEST(StoreFaults, TornAppendThrowsAndRetryLandsInFreshSegment) {
  const ScratchDir dir("faulty_torn");
  FaultyFileIo io(real_file_io());
  // Op 0 is the header rotation append? No: rotation uses
  // write_file_atomic; append op 0 is the first record. Tear it at byte 7.
  IoFault torn;
  torn.kind = IoFaultKind::TornAppend;
  torn.op_index = 0;
  torn.offset = 7;
  io.add(torn);
  StoreOptions opts;
  opts.io = &io;
  ResultStore store(dir.path(), opts);
  EXPECT_THROW(store.put(sample_record(1)), store_io_error);
  // Retry (the executor's put_with_retry does this): must succeed and land
  // in a NEW segment, leaving the torn tail behind for recovery to drop.
  store.put(sample_record(1));
  EXPECT_EQ(segments(dir.path()).size(), 2u);

  ResultStore reopened(dir.path());
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(reopened.dropped_records(), 1u);  // the torn 7-byte tail
  StoredResult out;
  ASSERT_TRUE(reopened.find(1, &out));
  EXPECT_EQ(out, sample_record(1));
}

TEST(StoreFaults, TransientFailAppendSucceedsOnRetry) {
  const ScratchDir dir("faulty_fail");
  FaultyFileIo io(real_file_io());
  IoFault fail;
  fail.kind = IoFaultKind::FailAppend;
  fail.op_index = 0;
  io.add(fail);
  StoreOptions opts;
  opts.io = &io;
  ResultStore store(dir.path(), opts);
  EXPECT_THROW(store.put(sample_record(9)), store_io_error);
  store.put(sample_record(9));
  EXPECT_TRUE(store.contains(9));
  EXPECT_EQ(ResultStore(dir.path()).size(), 1u);
}

TEST(StoreFaults, BitFlipAppendIsCaughtByChecksumAtReopen) {
  const ScratchDir dir("faulty_flip");
  FaultyFileIo io(real_file_io());
  IoFault flip;
  flip.kind = IoFaultKind::BitFlipAppend;
  flip.op_index = 1;  // second record
  flip.offset = 15;
  flip.mask = 0x20;
  io.add(flip);
  StoreOptions opts;
  opts.io = &io;
  {
    ResultStore store(dir.path(), opts);
    store.put(sample_record(1));
    store.put(sample_record(2));  // silently corrupted on disk
    store.put(sample_record(3));
    EXPECT_EQ(store.size(), 3u);  // in-memory index is still intact
  }
  ResultStore reopened(dir.path());
  EXPECT_TRUE(reopened.contains(1));
  EXPECT_FALSE(reopened.contains(2));
  EXPECT_EQ(reopened.dropped_records(), 1u);
}

TEST(StoreFaults, ShortReadDropsOnlyTheTruncatedTail) {
  const ScratchDir dir("faulty_short");
  std::size_t full_size = 0;
  {
    ResultStore store(dir.path());
    store.put(sample_record(1));
    store.put(sample_record(2));
    full_size = read_all(segments(dir.path()).at(0)).size();
  }
  FaultyFileIo io(real_file_io());
  IoFault short_read;
  short_read.kind = IoFaultKind::ShortRead;
  short_read.op_index = 0;
  short_read.offset = full_size - 5;  // lose the 2nd record's checksum tail
  io.add(short_read);
  StoreOptions opts;
  opts.io = &io;
  ResultStore reopened(dir.path(), opts);
  EXPECT_TRUE(reopened.contains(1));
  EXPECT_FALSE(reopened.contains(2));
  EXPECT_EQ(reopened.dropped_records(), 1u);
}

// ---- concurrency ---------------------------------------------------------

TEST(Store, ConcurrentPutsAreSerializedAndAllDurable) {
  const ScratchDir dir("concurrent");
  StoreOptions small;
  small.max_segment_bytes = 512;  // force rotations under contention
  {
    ResultStore store(dir.path(), small);
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t)
      workers.emplace_back([&store, t] {
        for (std::uint64_t k = 0; k < 8; ++k)
          store.put(sample_record(static_cast<std::uint64_t>(t) * 100 + k));
      });
    for (auto& w : workers) w.join();
    EXPECT_EQ(store.size(), 32u);
  }
  ResultStore reopened(dir.path());
  EXPECT_EQ(reopened.size(), 32u);
  EXPECT_EQ(reopened.dropped_records(), 0u);
  for (int t = 0; t < 4; ++t)
    for (std::uint64_t k = 0; k < 8; ++k)
      EXPECT_TRUE(
          reopened.contains(static_cast<std::uint64_t>(t) * 100 + k));
}

}  // namespace
}  // namespace smache::sweep

// Property tests for the DRAM traffic invariants — the quantities behind
// the paper's Figure 2 traffic row:
//   Smache:   reads = N*steps + warm-up rows, writes = N*steps;
//   Baseline: reads = tuple * N * steps,      writes = N*steps.
// And the headline consequence: Smache traffic ~= (2/(tuple+1)) of
// baseline, i.e. ~40% for the 4-point stencil.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "support/test_grids.hpp"

namespace smache {
namespace {

grid::Grid<word_t> random_grid(std::size_t h, std::size_t w,
                               std::uint64_t seed) {
  return test_support::random_grid(h, w, seed, 1 << 20);
}

class TrafficSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(TrafficSweep, SmacheReadsEachWordOncePerInstance) {
  const auto [dim, steps] = GetParam();
  ProblemSpec p = ProblemSpec::paper_example();
  p.height = dim;
  p.width = dim;
  p.steps = steps;
  const auto res =
      Engine(EngineOptions::smache()).run(p, random_grid(dim, dim, dim));
  const std::uint64_t n = p.cells();
  ASSERT_TRUE(res.plan.has_value());
  std::uint64_t warm_words = 0;
  for (const auto& b : res.plan->static_buffers())
    warm_words += b.length;
  EXPECT_EQ(res.dram.words_read, n * steps + warm_words);
  EXPECT_EQ(res.dram.words_written, n * steps);
}

TEST_P(TrafficSweep, BaselineReadsTupleWordsPerPoint) {
  const auto [dim, steps] = GetParam();
  ProblemSpec p = ProblemSpec::paper_example();
  p.height = dim;
  p.width = dim;
  p.steps = steps;
  const auto res =
      Engine(EngineOptions::baseline()).run(p, random_grid(dim, dim, dim));
  EXPECT_EQ(res.dram.words_read, p.cells() * steps * p.shape.size());
  EXPECT_EQ(res.dram.words_written, p.cells() * steps);
}

TEST_P(TrafficSweep, TrafficRatioApproachesFortyPercent) {
  const auto [dim, steps] = GetParam();
  ProblemSpec p = ProblemSpec::paper_example();
  p.height = dim;
  p.width = dim;
  p.steps = steps;
  const auto init = random_grid(dim, dim, dim * 7 + steps);
  const auto s = Engine(EngineOptions::smache()).run(p, init);
  const auto b = Engine(EngineOptions::baseline()).run(p, init);
  const double ratio = static_cast<double>(s.dram.total_bytes()) /
                       static_cast<double>(b.dram.total_bytes());
  // 2N / 5N = 0.4 exactly, plus the warm-up rows (2W words once), which
  // for the smallest single-step case contributes up to 0.05.
  EXPECT_GT(ratio, 0.38);
  EXPECT_LE(ratio, 0.46);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, TrafficSweep,
    ::testing::Combine(::testing::Values(8, 11, 16, 24),
                       ::testing::Values(1, 5, 10)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, std::size_t>>&
           i) {
      return "d" + std::to_string(std::get<0>(i.param)) + "_s" +
             std::to_string(std::get<1>(i.param));
    });

TEST(TrafficShape, SmacheCycleAdvantageGrowsWithTupleSize) {
  // Moore (9 points) makes the baseline read 9 words/point while Smache
  // still reads one: the cycle gap must widen vs the 4-point stencil.
  const auto run_ratio = [](const grid::StencilShape& shape) {
    ProblemSpec p;
    p.height = 12;
    p.width = 12;
    p.shape = shape;
    p.bc = grid::BoundarySpec::paper_example();
    p.steps = 5;
    const auto init = random_grid(12, 12, 99);
    const auto s = Engine(EngineOptions::smache()).run(p, init);
    const auto b = Engine(EngineOptions::baseline()).run(p, init);
    return static_cast<double>(s.cycles) / static_cast<double>(b.cycles);
  };
  const double vn4 = run_ratio(grid::StencilShape::von_neumann4());
  const double moore = run_ratio(grid::StencilShape::moore9());
  EXPECT_LT(moore, vn4)
      << "a denser stencil must favour Smache even more strongly";
}

TEST(TrafficShape, SmacheStreamsSequentially) {
  // One burst request per instance (plus warm-up rows), not per word.
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 10;
  const auto res =
      Engine(EngineOptions::smache()).run(p, random_grid(11, 11, 5));
  ASSERT_TRUE(res.plan.has_value());
  EXPECT_EQ(res.dram.read_requests,
            p.steps + res.plan->static_buffers().size());
}

TEST(TrafficShape, BaselineIssuesOneRequestPerWord) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 2;
  const auto res =
      Engine(EngineOptions::baseline()).run(p, random_grid(11, 11, 6));
  EXPECT_EQ(res.dram.read_requests, res.dram.words_read);
}

}  // namespace
}  // namespace smache

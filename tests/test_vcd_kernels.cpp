// Tests for the VCD waveform writer and the weighted 3x3 convolution
// kernels (Gaussian / Laplacian), including end-to-end engine runs.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "sim/vcd.hpp"

namespace smache {
namespace {

TEST(Vcd, HeaderScopesAndChanges) {
  sim::Tracer tracer(true);
  tracer.sample(0, "smache.state", 0);
  tracer.sample(0, "dram.busy", 1);
  tracer.sample(1, "smache.state", 2);
  tracer.sample(2, "smache.state", 2);  // unchanged: must not re-emit
  tracer.sample(3, "smache.state", 1);
  const std::string vcd = sim::to_vcd(tracer);
  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module smache $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module dram $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 64"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  // Timestamps present, change-only semantics: #2 never appears.
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("#1"), std::string::npos);
  EXPECT_EQ(vcd.find("#2"), std::string::npos);
  EXPECT_NE(vcd.find("#3"), std::string::npos);
  // Binary value encoding: state 2 = b10.
  EXPECT_NE(vcd.find("b10 "), std::string::npos);
}

TEST(Vcd, SignalWithoutDotLandsInTopScope) {
  sim::Tracer tracer(true);
  tracer.sample(0, "plain", 7);
  const std::string vcd = sim::to_vcd(tracer);
  EXPECT_NE(vcd.find("$scope module top $end"), std::string::npos);
  EXPECT_NE(vcd.find(" plain $end"), std::string::npos);
  EXPECT_NE(vcd.find("b111 "), std::string::npos);
}

TEST(Vcd, FullEngineTraceRendersNonTrivially) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 2;

  sim::Tracer tracer(true);
  // Run through the engine path indirectly: use a white-box bench here
  // because Engine owns its simulator. A short manual run suffices.
  // (The engine-level trace integration is exercised in
  // test_smache_whitebox.)
  tracer.sample(0, "smache.top_state", 0);
  tracer.sample(1, "smache.top_state", 1);
  const std::string vcd = sim::to_vcd(tracer);
  EXPECT_GT(vcd.size(), 100u);
}

TEST(TraceCsv, HeaderAndRowsRoundTrip) {
  sim::Tracer tracer(true);
  tracer.sample(0, "smache.state", 3);
  tracer.sample(7, "dram.busy", 1);
  EXPECT_EQ(tracer.to_csv(),
            "cycle,signal,value\n0,smache.state,3\n7,dram.busy,1\n");
  ASSERT_EQ(tracer.rows().size(), 2u);
  tracer.clear();
  EXPECT_EQ(tracer.to_csv(), "cycle,signal,value\n");
}

TEST(TraceCsv, SignalNamesQuotePerRfc4180) {
  // Signal names are caller-chosen strings; commas, quotes and newlines
  // must not corrupt the row structure (same quoting rules as
  // sweep::emit_csv).
  sim::Tracer tracer(true);
  tracer.sample(1, "a,b", 2);
  tracer.sample(2, "say \"hi\"", 3);
  tracer.sample(3, "line\nbreak", 4);
  tracer.sample(4, "plain", 5);
  EXPECT_EQ(tracer.to_csv(),
            "cycle,signal,value\n"
            "1,\"a,b\",2\n"
            "2,\"say \"\"hi\"\"\",3\n"
            "3,\"line\nbreak\",4\n"
            "4,plain,5\n");
}

TEST(TraceCsv, DisabledTracerEmitsHeaderOnly) {
  sim::Tracer tracer(false);
  tracer.sample(0, "ignored", 1);
  EXPECT_TRUE(tracer.rows().empty());
  EXPECT_EQ(tracer.to_csv(), "cycle,signal,value\n");
}

grid::Grid<word_t> random_image(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  grid::Grid<word_t> g(n, n);
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = to_word(static_cast<std::int32_t>(rng.next_below(256)));
  return g;
}

TEST(WeightedKernels, GaussianUniformFieldIsFixedPoint) {
  // Sum of weights = 16, >>4: a constant field maps to itself.
  std::vector<grid::TupleElem> tuple(9);
  for (auto& e : tuple) e = {to_word<std::int32_t>(100), true};
  EXPECT_EQ(from_word<std::int32_t>(
                rtl::apply_kernel(rtl::KernelSpec::gaussian3x3(), tuple)),
            100);
}

TEST(WeightedKernels, LaplacianFlatFieldIsZero) {
  std::vector<grid::TupleElem> tuple(9);
  for (auto& e : tuple) e = {to_word<std::int32_t>(37), true};
  EXPECT_EQ(from_word<std::int32_t>(
                rtl::apply_kernel(rtl::KernelSpec::laplacian3x3(), tuple)),
            0);
}

TEST(WeightedKernels, LaplacianDetectsPointEdge) {
  std::vector<grid::TupleElem> tuple(9);
  for (auto& e : tuple) e = {to_word<std::int32_t>(0), true};
  tuple[4] = {to_word<std::int32_t>(10), true};  // bright centre pixel
  EXPECT_EQ(from_word<std::int32_t>(
                rtl::apply_kernel(rtl::KernelSpec::laplacian3x3(), tuple)),
            80);
}

TEST(WeightedKernels, MissingElementsExtendTheCentre) {
  std::vector<grid::TupleElem> tuple(9);
  for (auto& e : tuple) e = {0, false};
  tuple[4] = {to_word<std::int32_t>(50), true};
  // All neighbours replaced by the centre -> Gaussian fixed point,
  // Laplacian zero.
  EXPECT_EQ(from_word<std::int32_t>(
                rtl::apply_kernel(rtl::KernelSpec::gaussian3x3(), tuple)),
            50);
  EXPECT_EQ(from_word<std::int32_t>(
                rtl::apply_kernel(rtl::KernelSpec::laplacian3x3(), tuple)),
            0);
}

TEST(WeightedKernels, GaussianEndToEndMatchesReference) {
  ProblemSpec p;
  p.height = 12;
  p.width = 12;
  p.shape = grid::StencilShape::moore9();
  p.bc = grid::BoundarySpec::all_mirror();
  p.kernel = rtl::KernelSpec::gaussian3x3();
  p.steps = 3;
  const auto img = random_image(12, 61);
  for (auto arch : {Architecture::Smache, Architecture::Baseline}) {
    EngineOptions opts;
    opts.arch = arch;
    EXPECT_EQ(Engine(opts).run(p, img).output, reference_run(p, img))
        << to_string(arch);
  }
}

TEST(WeightedKernels, LaplacianEndToEndMatchesReference) {
  ProblemSpec p;
  p.height = 10;
  p.width = 14;
  p.shape = grid::StencilShape::moore9();
  p.bc = grid::BoundarySpec::all_open();
  p.kernel = rtl::KernelSpec::laplacian3x3();
  p.steps = 2;
  const auto img = random_image(14, 62);
  grid::Grid<word_t> init(10, 14);
  for (std::size_t r = 0; r < 10; ++r)
    for (std::size_t c = 0; c < 14; ++c) init.at(r, c) = img.at(r, c);
  EXPECT_EQ(Engine(EngineOptions::smache()).run(p, init).output,
            reference_run(p, init));
}

TEST(WeightedKernels, RejectsNonMooreTuples) {
  std::vector<grid::TupleElem> tuple(4);
  EXPECT_THROW(rtl::apply_kernel(rtl::KernelSpec::gaussian3x3(), tuple),
               contract_error);
}

TEST(WeightedKernels, NamesAreDescriptive) {
  EXPECT_EQ(rtl::KernelSpec::gaussian3x3().name(), "gaussian3x3/i32");
  EXPECT_EQ(rtl::KernelSpec::laplacian3x3().name(), "laplacian3x3/i32");
}

}  // namespace
}  // namespace smache

// Meta-tests for the vendored minigtest harness: the build-and-verify wall
// is only trustworthy if the harness itself demonstrably reports failures,
// propagates non-zero exit codes, honours --gtest_filter, and instantiates
// parameterized suites. In-process tests exercise the generator and filter
// internals directly; subprocess tests re-execute this binary to observe
// end-to-end behaviour exactly as CTest does.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#if defined(__linux__)
#include <sys/wait.h>
#include <unistd.h>
#endif
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Child-mode tests: inert under CTest (the env var is unset), activated by
// the subprocess meta-tests below.
// ---------------------------------------------------------------------------
TEST(SelfTestChild, DeliberateFailure) {
  if (std::getenv("MINIGTEST_SELFTEST_CHILD") == nullptr) return;
  EXPECT_EQ(1, 2) << "deliberate failure for exit-code propagation";
}

TEST(SelfTestChild, DeliberateFatalFailure) {
  if (std::getenv("MINIGTEST_SELFTEST_CHILD") == nullptr) return;
  ASSERT_TRUE(false) << "fatal stop";
  std::fprintf(stdout, "UNREACHABLE_AFTER_FATAL\n");
}

TEST(SelfTestChild, AlwaysPasses) { EXPECT_TRUE(true); }

class SelfTestChildParam : public ::testing::TestWithParam<int> {};

TEST_P(SelfTestChildParam, ParamIsOdd) {
  // All instantiated values are odd; proves GetParam() delivers the values
  // the generator produced.
  EXPECT_EQ(GetParam() % 2, 1);
}

INSTANTIATE_TEST_SUITE_P(Odds, SelfTestChildParam,
                         ::testing::Values(1, 3, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "v" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Subprocess driver
// ---------------------------------------------------------------------------
struct RunOutput {
  int exit_code;
  std::string output;
};

RunOutput RunSelf(const std::string& args, bool child_mode) {
#if defined(__linux__)
  // /proc/self/exe must be resolved here: inside `sh -c` it would name the
  // shell, not this binary.
  std::array<char, 4096> exe_path{};
  const auto len =
      readlink("/proc/self/exe", exe_path.data(), exe_path.size() - 1);
  if (len <= 0) throw std::runtime_error("readlink(/proc/self/exe) failed");
  std::string cmd;
  if (child_mode) cmd += "MINIGTEST_SELFTEST_CHILD=1 ";
  cmd += "'" + std::string(exe_path.data(), static_cast<std::size_t>(len)) +
         "' " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) throw std::runtime_error("popen failed");
  std::string output;
  std::array<char, 4096> buffer;
  std::size_t n;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0)
    output.append(buffer.data(), n);
  const int status = pclose(pipe);
  const int exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return {exit_code, output};
#else
  (void)args;
  (void)child_mode;
  return {-1, ""};
#endif
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::size_t CountOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t count = 0;
  for (auto pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

#if defined(__linux__)

TEST(MinigtestSelfTest, FailingAssertionYieldsNonZeroExit) {
  const auto run =
      RunSelf("--gtest_filter=SelfTestChild.DeliberateFailure", true);
  EXPECT_NE(run.exit_code, 0);
  EXPECT_TRUE(Contains(run.output, "[  FAILED  ]"));
  EXPECT_TRUE(Contains(run.output,
                       "deliberate failure for exit-code propagation"));
  EXPECT_TRUE(Contains(run.output, "SelfTestChild.DeliberateFailure"));
}

TEST(MinigtestSelfTest, FatalAssertionStopsTestBody) {
  const auto run =
      RunSelf("--gtest_filter=SelfTestChild.DeliberateFatalFailure", true);
  EXPECT_NE(run.exit_code, 0);
  EXPECT_FALSE(Contains(run.output, "UNREACHABLE_AFTER_FATAL"));
}

TEST(MinigtestSelfTest, PassingRunExitsZero) {
  const auto run = RunSelf("--gtest_filter=SelfTestChild.AlwaysPasses", true);
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_TRUE(Contains(run.output, "[       OK ] SelfTestChild.AlwaysPasses"));
  EXPECT_TRUE(Contains(run.output, "[  PASSED  ] 1 tests."));
}

TEST(MinigtestSelfTest, FilterExcludesFailingTest) {
  // The deliberately failing test exists in the child binary, but a filter
  // selecting only the passing test must keep the run green.
  const auto run = RunSelf("--gtest_filter=SelfTestChild.AlwaysPasses", true);
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_FALSE(Contains(run.output, "DeliberateFailure"));
}

TEST(MinigtestSelfTest, NegativeFilterPatternWorks) {
  const auto run =
      RunSelf("--gtest_filter=SelfTestChild.*-SelfTestChild.Deliberate*",
              true);
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_TRUE(Contains(run.output, "SelfTestChild.AlwaysPasses"));
  EXPECT_FALSE(Contains(run.output, "[ RUN      ] SelfTestChild.Deliberate"));
}

TEST(MinigtestSelfTest, ParameterizedSuiteInstantiatesAllValues) {
  const auto run = RunSelf("--gtest_filter=Odds/SelfTestChildParam.*", false);
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(CountOccurrences(run.output, "[       OK ]"), 3u);
  EXPECT_TRUE(Contains(run.output, "Odds/SelfTestChildParam.ParamIsOdd/v1"));
  EXPECT_TRUE(Contains(run.output, "Odds/SelfTestChildParam.ParamIsOdd/v3"));
  EXPECT_TRUE(Contains(run.output, "Odds/SelfTestChildParam.ParamIsOdd/v5"));
}

TEST(MinigtestSelfTest, ListTestsShowsParameterizedInstances) {
  const auto run = RunSelf("--gtest_list_tests", false);
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_TRUE(Contains(run.output, "Odds/SelfTestChildParam."));
  EXPECT_TRUE(Contains(run.output, "ParamIsOdd/v5"));
  // Listing must not execute any test body.
  EXPECT_FALSE(Contains(run.output, "[ RUN      ]"));
}

#endif  // defined(__linux__)

// ---------------------------------------------------------------------------
// In-process checks of the harness building blocks.
// ---------------------------------------------------------------------------
TEST(MinigtestInternals, GeneratorValuesProducesAllElements) {
  const ::testing::ParamGenerator<std::size_t> gen =
      ::testing::Values(8, 11, 32);
  ASSERT_EQ(gen.values.size(), 3u);
  EXPECT_EQ(gen.values[0], 8u);
  EXPECT_EQ(gen.values[2], 32u);
}

TEST(MinigtestInternals, GeneratorCombineProducesCartesianProduct) {
  const ::testing::ParamGenerator<std::tuple<int, int>> gen =
      ::testing::Combine(::testing::Values(1, 2, 3),
                         ::testing::Values(10, 20));
  ASSERT_EQ(gen.values.size(), 6u);
  EXPECT_EQ(std::get<0>(gen.values.front()), 1);
  EXPECT_EQ(std::get<1>(gen.values.front()), 10);
  EXPECT_EQ(std::get<0>(gen.values.back()), 3);
  EXPECT_EQ(std::get<1>(gen.values.back()), 20);
}

TEST(MinigtestInternals, GeneratorValuesInAcceptsContainersAndArrays) {
  const std::vector<int> v{4, 5, 6};
  const ::testing::ParamGenerator<int> from_vec = ::testing::ValuesIn(v);
  EXPECT_EQ(from_vec.values.size(), 3u);

  static const int arr[] = {7, 8};
  const ::testing::ParamGenerator<int> from_arr = ::testing::ValuesIn(arr);
  ASSERT_EQ(from_arr.values.size(), 2u);
  EXPECT_EQ(from_arr.values[1], 8);
}

TEST(MinigtestInternals, FilterSyntaxMatchesLikeGoogleTest) {
  using ::testing::internal::FilterMatches;
  EXPECT_TRUE(FilterMatches("*", "Suite.Name"));
  EXPECT_TRUE(FilterMatches("Suite.*", "Suite.Name"));
  EXPECT_FALSE(FilterMatches("Other.*", "Suite.Name"));
  EXPECT_TRUE(FilterMatches("A.*:B.*", "B.Case"));
  EXPECT_FALSE(FilterMatches("A.*-A.Bad", "A.Bad"));
  EXPECT_TRUE(FilterMatches("A.*-A.Bad", "A.Good"));
  EXPECT_TRUE(FilterMatches("*Param*/v?", "Odds/P.ParamIsOdd/v1"));
}

TEST(MinigtestInternals, ExpectationMacrosSupportExceptionChecks) {
  EXPECT_THROW(throw std::runtime_error("boom"), std::runtime_error);
  EXPECT_THROW({ throw std::logic_error("block form"); }, std::logic_error);
  EXPECT_NO_THROW(static_cast<void>(0));
}

TEST(MinigtestInternals, NumericComparisonsBehave) {
  EXPECT_NEAR(1.0, 1.05, 0.1);
  EXPECT_DOUBLE_EQ(0.1 + 0.2, 0.3);  // 4-ULP tolerance absorbs the rounding.
  EXPECT_STREQ("abc", "abc");
}

}  // namespace

// Unit tests for boundary resolution: open, periodic, mirror, constant, on
// both axes and combined.
#include <gtest/gtest.h>

#include "grid/boundary.hpp"

namespace smache::grid {
namespace {

TEST(AxisResolve, InRangeNeedsNoBoundary) {
  for (auto kind : {BoundaryKind::Open, BoundaryKind::Periodic,
                    BoundaryKind::Mirror, BoundaryKind::Constant}) {
    const AxisBoundary b{kind, 7};
    const auto r = resolve_axis(3, 2, 10, b);
    EXPECT_EQ(r.kind, AxisResolved::Kind::Coord);
    EXPECT_EQ(r.coord, 5u);
  }
}

TEST(AxisResolve, OpenMisses) {
  const auto lo = resolve_axis(0, -1, 10, AxisBoundary::open());
  EXPECT_EQ(lo.kind, AxisResolved::Kind::Missing);
  const auto hi = resolve_axis(9, 2, 10, AxisBoundary::open());
  EXPECT_EQ(hi.kind, AxisResolved::Kind::Missing);
}

TEST(AxisResolve, PeriodicWrapsBothWays) {
  EXPECT_EQ(resolve_axis(0, -1, 11, AxisBoundary::periodic()).coord, 10u);
  EXPECT_EQ(resolve_axis(10, 1, 11, AxisBoundary::periodic()).coord, 0u);
  EXPECT_EQ(resolve_axis(10, 3, 11, AxisBoundary::periodic()).coord, 2u);
  EXPECT_EQ(resolve_axis(1, -13, 11, AxisBoundary::periodic()).coord, 10u);
}

TEST(AxisResolve, MirrorReflectsWithoutRepeatingEdge) {
  EXPECT_EQ(resolve_axis(0, -1, 5, AxisBoundary::mirror()).coord, 1u);
  EXPECT_EQ(resolve_axis(0, -2, 5, AxisBoundary::mirror()).coord, 2u);
  EXPECT_EQ(resolve_axis(4, 1, 5, AxisBoundary::mirror()).coord, 3u);
  EXPECT_EQ(resolve_axis(4, 2, 5, AxisBoundary::mirror()).coord, 2u);
}

TEST(AxisResolve, ConstantMarks) {
  const auto r = resolve_axis(0, -1, 5, AxisBoundary::constant_halo(42));
  EXPECT_EQ(r.kind, AxisResolved::Kind::Constant);
}

TEST(Resolve2D, InteriorCell) {
  const BoundarySpec bc = BoundarySpec::paper_example();
  const Resolved r = resolve(5, 5, -1, 0, 11, 11, bc);
  ASSERT_EQ(r.kind, Resolved::Kind::Cell);
  EXPECT_EQ(r.r, 4u);
  EXPECT_EQ(r.c, 5u);
}

TEST(Resolve2D, PaperTopRowWrapsToBottom) {
  // Figure 1(a): the N neighbour of cell 5 (row 0) is cell 115 (row 10).
  const BoundarySpec bc = BoundarySpec::paper_example();
  const Resolved r = resolve(0, 5, -1, 0, 11, 11, bc);
  ASSERT_EQ(r.kind, Resolved::Kind::Cell);
  EXPECT_EQ(r.r, 10u);
  EXPECT_EQ(r.c, 5u);
}

TEST(Resolve2D, PaperLeftColumnIsOpen) {
  const BoundarySpec bc = BoundarySpec::paper_example();
  EXPECT_EQ(resolve(5, 0, 0, -1, 11, 11, bc).kind, Resolved::Kind::Missing);
  EXPECT_EQ(resolve(5, 10, 0, 1, 11, 11, bc).kind, Resolved::Kind::Missing);
}

TEST(Resolve2D, MissingBeatsConstant) {
  // If one axis is open-missing the element is missing, even when the
  // other axis would supply a constant.
  const BoundarySpec bc{AxisBoundary::constant_halo(9),
                        AxisBoundary::open()};
  EXPECT_EQ(resolve(0, 0, -1, -1, 5, 5, bc).kind, Resolved::Kind::Missing);
}

TEST(Resolve2D, RowConstantTakesPrecedence) {
  const BoundarySpec bc{AxisBoundary::constant_halo(1),
                        AxisBoundary::constant_halo(2)};
  const Resolved r = resolve(0, 0, -1, -1, 5, 5, bc);
  ASSERT_EQ(r.kind, Resolved::Kind::Constant);
  EXPECT_EQ(r.constant, 1u);
}

TEST(Resolve2D, DiagonalDoubleWrap) {
  const BoundarySpec bc = BoundarySpec::all_periodic();
  const Resolved r = resolve(0, 0, -1, -1, 4, 6, bc);
  ASSERT_EQ(r.kind, Resolved::Kind::Cell);
  EXPECT_EQ(r.r, 3u);
  EXPECT_EQ(r.c, 5u);
}

TEST(BoundaryNames, Stringify) {
  EXPECT_STREQ(to_string(BoundaryKind::Open), "open");
  EXPECT_STREQ(to_string(BoundaryKind::Periodic), "periodic");
  EXPECT_STREQ(to_string(BoundaryKind::Mirror), "mirror");
  EXPECT_STREQ(to_string(BoundaryKind::Constant), "constant");
}

}  // namespace
}  // namespace smache::grid

// 3D stencil family end-to-end: the depth axis through Grid (checked
// sizes, slice-major addressing, shape-separating hashes), three-axis
// tiling (gather/stitch round-trips, threaded-vs-serial bit-identity
// including a periodic slice axis under fused steps), engine equivalence
// (smache vs baseline vs the slice-iterating reference for both 3D
// application workloads at cascade depths 1 and 2), and the sweep layer
// (HxWxD parsing with full-token errors, depth-folding labels/keys only
// when D > 1, spec round-trips, warm store reuse across a 2D-shaped
// segment).
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <tuple>

#include "common/assert.hpp"
#include "core/engine.hpp"
#include "grid/tiling.hpp"
#include "sweep/executor.hpp"
#include "sweep/spec.hpp"
#include "sweep/specio.hpp"
#include "sweep/store.hpp"
#include "sweep/workloads.hpp"

namespace smache {
namespace {

using grid::AxisBoundary;
using grid::BoundarySpec;
using grid::StencilShape;
using grid::TileGeometry;
using grid::TilingLayout;

grid::Grid<word_t> counting_grid(std::size_t h, std::size_t w,
                                 std::size_t d) {
  grid::Grid<word_t> g(h, w, d, CellLayout{});
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = static_cast<word_t>(i * 2654435761u + 12345u);
  return g;
}

// ---- grid layer: checked sizes, addressing, hashing ----

TEST(Grid3D, CheckedCellsCountsAndRejectsOverflow) {
  EXPECT_EQ(grid::Grid<word_t>::checked_cells(8, 8, 2), 128u);
  EXPECT_EQ(grid::Grid<word_t>::checked_words(8, 8, 2, 3), 384u);
  const std::size_t big = std::numeric_limits<std::size_t>::max() / 2;
  EXPECT_THROW(grid::Grid<word_t>::checked_cells(big, 3, 5),
               contract_error);
  EXPECT_THROW(grid::Grid<word_t>::checked_cells(3, big, 5),
               contract_error);
  // The plane fits; multiplying in the depth overflows.
  EXPECT_THROW(grid::Grid<word_t>::checked_cells(1u << 20, 1u << 20,
                                                 1u << 30),
               contract_error);
  // The cells fit; multiplying in the fields overflows.
  EXPECT_THROW(grid::Grid<word_t>::checked_words(1u << 20, 1u << 20,
                                                 1u << 20, 16),
               contract_error);
}

TEST(Grid3D, ValidateRejectsOverflowBeforeAllocation) {
  ProblemSpec p;
  p.height = 1u << 21;
  p.width = 1u << 21;
  p.depth = 1u << 22;  // h * w * d overflows 64-bit
  p.steps = 1;
  EXPECT_THROW(p.validate(), contract_error);
}

TEST(Grid3D, AtIndexesSliceMajor) {
  const std::size_t H = 3, W = 4, D = 2;
  const auto g = counting_grid(H, W, D);
  for (std::size_t s = 0; s < D; ++s)
    for (std::size_t r = 0; r < H; ++r)
      for (std::size_t c = 0; c < W; ++c) {
        EXPECT_EQ(g.at(s, r, c, 0), g[(s * H + r) * W + c]);
        // The 2D accessor addresses the same cell by its global row.
        EXPECT_EQ(g.at(s, r, c, 0), g.at(s * H + r, c));
      }
  EXPECT_EQ(g.global_rows(), D * H);
}

TEST(Grid3D, HashSeparatesDepthFromWidth) {
  // 8x8x2 and 8x16x1 carry identical word sequences; only the shape fold
  // can tell them apart.
  grid::Grid<word_t> a(8, 8, 2, CellLayout{});
  grid::Grid<word_t> b(8, 16, 1, CellLayout{});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<word_t>(i);
    b[i] = static_cast<word_t>(i);
  }
  EXPECT_NE(sweep::hash_grid(a), sweep::hash_grid(b));
  // D = 1 folds nothing extra: the hash equals the plain 2D grid's.
  grid::Grid<word_t> c(8, 16, CellLayout{});
  for (std::size_t i = 0; i < c.size(); ++i)
    c[i] = static_cast<word_t>(i);
  EXPECT_EQ(sweep::hash_grid(b), sweep::hash_grid(c));
}

// ---- three-axis tiling ----

TEST(Tiling3D, GatherStitchRoundTripsAllAxes) {
  const std::size_t H = 6, W = 5, D = 4;
  const auto global = counting_grid(H, W, D);
  for (const BoundarySpec& bc :
       {BoundarySpec::all_open(), BoundarySpec::all_periodic(),
        BoundarySpec::all_mirror()}) {
    const TilingLayout layout = grid::plan_tiling(
        H, W, D, 2, 2, 2, StencilShape::star7(), bc, 1);
    ASSERT_EQ(layout.tiles.size(), 8u);
    grid::Grid<word_t> rebuilt(H, W, D, CellLayout{});
    for (const TileGeometry& t : layout.tiles) {
      const auto sub = grid::gather_tile(global, t, bc);
      EXPECT_EQ(sub.height(), t.sub_height());
      EXPECT_EQ(sub.width(), t.sub_width());
      EXPECT_EQ(sub.depth(), t.sub_depth());
      // Every interior cell of the gathered subgrid is the global cell.
      for (std::size_t s = 0; s < t.slices; ++s)
        for (std::size_t r = 0; r < t.rows; ++r)
          for (std::size_t c = 0; c < t.cols; ++c)
            EXPECT_EQ(sub.at(t.halo_front + s, t.halo_top + r,
                             t.halo_left + c, 0),
                      global.at(t.s0 + s, t.r0 + r, t.c0 + c, 0));
      grid::stitch_interior(rebuilt, t, sub);
    }
    EXPECT_EQ(rebuilt, global) << grid::to_string(bc.rows.kind);
  }
}

TEST(Tiling3D, PeriodicSliceHalosWrapAtGather) {
  const std::size_t H = 4, W = 4, D = 4;
  const auto global = counting_grid(H, W, D);
  BoundarySpec bc = BoundarySpec::all_open();
  bc.slices = AxisBoundary::periodic();
  const TilingLayout layout = grid::plan_tiling(
      H, W, D, 1, 1, 2, StencilShape::star7(), bc, 1);
  ASSERT_EQ(layout.tiles.size(), 2u);
  const TileGeometry& front = layout.tiles[0];
  ASSERT_EQ(front.s0, 0u);
  ASSERT_GE(front.halo_front, 1u);
  const auto sub = grid::gather_tile(global, front, bc);
  // The front halo slice of tile 0 wraps to the last global slice.
  for (std::size_t r = 0; r < H; ++r)
    for (std::size_t c = 0; c < W; ++c)
      EXPECT_EQ(sub.at(front.halo_front - 1, front.halo_top + r,
                       front.halo_left + c, 0),
                global.at(D - 1, r, c, 0));
}

TEST(Tiling3D, ThreadedMatchesSerialIncludingPeriodicSliceDepth2) {
  ProblemSpec p;
  p.height = 8;
  p.width = 8;
  p.depth = 6;
  p.shape = StencilShape::star7();
  p.bc = {AxisBoundary::open(), AxisBoundary::open(),
          AxisBoundary::periodic()};
  p.kernel = sweep::make_kernel("jacobi");
  p.steps = 4;
  const auto init = sweep::make_input("jacobi-init", 8, 8, 6, 77);
  // Splitting the slice axis turns the periodic wrap into halo exchange,
  // which is what makes depth 2 legal here at all (untiled it is a
  // validated rejection, same as a 2D periodic row axis).
  TilingSpec serial;
  serial.tiles_s = 2;
  serial.depth = 2;
  serial.threads = 1;
  TilingSpec threaded = serial;
  threaded.tiles_r = 2;
  threaded.threads = 4;
  const Engine engine(EngineOptions::smache());
  const RunResult a = engine.run_tiled(p, init, serial);
  const RunResult b = engine.run_tiled(p, init, threaded);
  ASSERT_TRUE(a.output.has_value());
  ASSERT_TRUE(b.output.has_value());
  EXPECT_EQ(*a.output, *b.output);
  EXPECT_EQ(*a.output, reference_run(p, init));
  EXPECT_THROW(engine.run_cascade(p, init, 2), contract_error);
}

TEST(Engine3D, WorkloadsMatchReferenceAcrossArchsAndDepths) {
  struct Case {
    const char* kernel;
    const char* input;
  };
  for (const Case& w : {Case{"jacobi", "jacobi-init"},
                        Case{"hotspot", "hotspot-chip"}}) {
    ProblemSpec p;
    p.height = 8;
    p.width = 7;
    p.depth = 4;
    p.shape = StencilShape::star7();
    p.bc = sweep::make_boundary("island");
    p.kernel = sweep::make_kernel(w.kernel);
    p.steps = 4;
    p.validate();
    const auto init = sweep::make_input(w.input, 8, 7, 4, 99);
    const auto golden = reference_run(p, init);
    const RunResult sm = Engine(EngineOptions::smache()).run(p, init);
    ASSERT_TRUE(sm.output.has_value());
    EXPECT_EQ(*sm.output, golden) << w.kernel << " smache d1";
    const RunResult cas =
        Engine(EngineOptions::smache()).run_cascade(p, init, 2);
    ASSERT_TRUE(cas.output.has_value());
    EXPECT_EQ(*cas.output, golden) << w.kernel << " smache d2";
    const RunResult bl = Engine(EngineOptions::baseline()).run(p, init);
    ASSERT_TRUE(bl.output.has_value());
    EXPECT_EQ(*bl.output, golden) << w.kernel << " baseline";
  }
}

// ---- sweep layer: parsing, labels, keys, round-trips ----

TEST(Parse3D, GridParsesAllForms) {
  EXPECT_EQ(sweep::parse_grid("16"), (sweep::GridDim{16, 16, 1}));
  EXPECT_EQ(sweep::parse_grid("16x32"), (sweep::GridDim{16, 32, 1}));
  EXPECT_EQ(sweep::parse_grid("16x32x8"), (sweep::GridDim{16, 32, 8}));
}

TEST(Parse3D, ErrorsNameTheFullToken) {
  for (const char* bad : {"16x0x8", "0", "0x4", "4x4x0", "axb", "4x4x4x4",
                          "16x", "x16", "16xx8", ""}) {
    try {
      sweep::parse_grid(bad);
      FAIL() << "expected contract_error for '" << bad << "'";
    } catch (const contract_error& e) {
      EXPECT_NE(std::string(e.what()).find("'" + std::string(bad) + "'"),
                std::string::npos)
          << "error for '" << bad << "' does not quote the token: "
          << e.what();
    }
  }
}

TEST(Sweep3D, LabelsFoldDepthOnlyWhenAboveOne) {
  // A 2D point's label never mentions the slice axis — byte-identical to
  // the pre-3D label grammar.
  sweep::SweepSpec flat;
  flat.grids = {{8, 8}};
  flat.steps = {2};
  const sweep::Scenario s2d = flat.scenario_at(0);
  EXPECT_EQ(s2d.label.find("8x8x"), std::string::npos) << s2d.label;
  EXPECT_NE(s2d.label.find("/8x8/"), std::string::npos) << s2d.label;

  sweep::SweepSpec deep;
  deep.grids = {{8, 8, 4}};
  deep.tiles = {{1, 1}, {2, 2, 2}};
  deep.stencils = {"star7"};
  deep.boundaries = {"island"};
  deep.kernels = {"jacobi"};
  deep.inputs = {"jacobi-init"};
  deep.steps = {2};
  std::set<std::string> labels;
  bool saw_tiles3d = false;
  for (std::size_t i = 0; i < deep.scenario_count(); ++i) {
    const sweep::Scenario s = deep.scenario_at(i);
    labels.insert(s.label);
    EXPECT_NE(s.label.find("8x8x4"), std::string::npos) << s.label;
    if (s.tiles.depth > 1) {
      EXPECT_NE(s.label.find("t2x2x2"), std::string::npos) << s.label;
      saw_tiles3d = true;
    }
  }
  EXPECT_TRUE(saw_tiles3d);
  EXPECT_EQ(labels.size(), deep.scenario_count());  // all distinct
}

TEST(Sweep3D, SliceTilesOverA2DGridAreRejected) {
  sweep::SweepSpec spec;
  spec.grids = {{8, 8}};
  spec.tiles = {{1, 1, 2}};
  try {
    spec.validate();
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds the grid extent"),
              std::string::npos)
        << e.what();
  }
}

TEST(Sweep3D, ScenarioKeySeparatesDepthButNotDepthOne) {
  sweep::SweepSpec spec;
  spec.grids = {{8, 8, 4}};
  spec.stencils = {"star7"};
  spec.boundaries = {"island"};
  spec.kernels = {"jacobi"};
  spec.inputs = {"jacobi-init"};
  spec.steps = {2};
  sweep::Scenario s3 = spec.scenario_at(0);
  ASSERT_EQ(s3.problem.depth, 4u);
  // Same label/seed with the depth forced back to 1 must key differently:
  // the fold is not just riding on the label.
  sweep::Scenario s2 = s3;
  s2.problem.depth = 1;
  EXPECT_NE(sweep::ResultStore::scenario_key(s3, false),
            sweep::ResultStore::scenario_key(s2, false));
  // And a D=1 scenario's key ignores the depth member entirely (the
  // pre-3D fold had no such branch, so old segments stay addressable).
  sweep::Scenario s1 = s2;
  s1.problem.depth = 1;
  EXPECT_EQ(sweep::ResultStore::scenario_key(s2, false),
            sweep::ResultStore::scenario_key(s1, false));
}

TEST(Sweep3D, SpecioRoundTrips3DGridsAndTiles) {
  sweep::SweepSpec spec;
  spec.grids = {{16, 16, 8}, {11, 11}};
  spec.tiles = {{1, 1}, {2, 2, 2}};
  spec.stencils = {"star7"};
  spec.boundaries = {"island"};
  spec.kernels = {"jacobi"};
  spec.inputs = {"jacobi-init"};
  const std::string json = sweep::emit_spec_json(spec);
  // 2D dims keep the two-axis token, 3D dims gain the third.
  EXPECT_NE(json.find("\"16x16x8\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"11x11\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"2x2x2\""), std::string::npos) << json;
  const sweep::SweepSpec back = sweep::parse_spec_json(json);
  EXPECT_EQ(back.grids, spec.grids);
  EXPECT_EQ(back.tiles, spec.tiles);
  EXPECT_EQ(sweep::emit_spec_json(back), json);
}

TEST(Sweep3D, WarmStoreServes2DSegmentAnd3DPointsAppend) {
  namespace fs = std::filesystem;
  const std::string dir = "store_tmp_3d_warm";
  fs::remove_all(dir);
  sweep::SweepSpec spec2d;
  spec2d.grids = {{8, 8}};
  spec2d.stencils = {"vn4"};
  spec2d.boundaries = {"island"};
  spec2d.steps = {2};
  {
    sweep::ResultStore store(dir);
    sweep::ExecutorOptions opts;
    opts.store = &store;
    const auto first = sweep::SweepExecutor(opts).run(spec2d);
    for (const auto& r : first) EXPECT_FALSE(r.from_store);
  }
  // Widen the same sweep with a 3D grid: the 2D points must be served
  // from the existing (pre-3D-shaped) segment, the 3D points execute.
  sweep::SweepSpec mixed = spec2d;
  mixed.grids = {{8, 8}, {8, 8, 4}};
  {
    sweep::ResultStore store(dir);
    sweep::ExecutorOptions opts;
    opts.store = &store;
    const auto second = sweep::SweepExecutor(opts).run(mixed);
    for (const auto& r : second)
      EXPECT_EQ(r.from_store, r.scenario.problem.depth == 1)
          << r.scenario.label;
  }
  // Resume replays everything — 2D and 3D — from the store.
  {
    sweep::ResultStore store(dir);
    sweep::ExecutorOptions opts;
    opts.store = &store;
    const auto third = sweep::SweepExecutor(opts).run(mixed);
    for (const auto& r : third)
      EXPECT_TRUE(r.from_store) << r.scenario.label;
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace smache

// Unit tests for the kernels and the pipelined kernel wrapper.
#include <gtest/gtest.h>

#include "rtl/kernel.hpp"
#include "rtl/kernel_pipeline.hpp"
#include "sim/simulator.hpp"

namespace smache::rtl {
namespace {

grid::TupleElem elem_i32(std::int32_t v, bool valid = true) {
  return {to_word(v), valid};
}
grid::TupleElem elem_f32(float v, bool valid = true) {
  return {to_word(v), valid};
}

TEST(Kernel, AverageIntTruncatesTowardZero) {
  const auto spec = KernelSpec::average_int();
  EXPECT_EQ(from_word<std::int32_t>(apply_kernel(
                spec, {elem_i32(1), elem_i32(2), elem_i32(3), elem_i32(5)})),
            2);  // 11/4
  EXPECT_EQ(from_word<std::int32_t>(apply_kernel(
                spec, {elem_i32(-1), elem_i32(-2), elem_i32(-4)})),
            -2);  // -7/3 truncates to -2
}

TEST(Kernel, AverageSkipsInvalid) {
  const auto spec = KernelSpec::average_int();
  EXPECT_EQ(from_word<std::int32_t>(apply_kernel(
                spec, {elem_i32(10), elem_i32(999, false), elem_i32(20)})),
            15);
}

TEST(Kernel, AverageAllInvalidIsZero) {
  const auto spec = KernelSpec::average_int();
  EXPECT_EQ(apply_kernel(spec, {elem_i32(1, false), elem_i32(2, false)}),
            0u);
}

TEST(Kernel, AverageIntNoOverflowAtExtremes) {
  const auto spec = KernelSpec::average_int();
  const std::int32_t big = 2'000'000'000;
  EXPECT_EQ(from_word<std::int32_t>(apply_kernel(
                spec, {elem_i32(big), elem_i32(big), elem_i32(big),
                       elem_i32(big)})),
            big)
      << "the wide accumulator must not overflow on tuple sums";
}

TEST(Kernel, AverageFloat) {
  const auto spec = KernelSpec::average_float();
  EXPECT_EQ(from_word<float>(apply_kernel(
                spec, {elem_f32(1.0f), elem_f32(2.0f)})),
            1.5f);
}

TEST(Kernel, SumWrapsLikeHardware) {
  KernelSpec spec{KernelKind::Sum, ValueType::Int32, 0, 0};
  EXPECT_EQ(apply_kernel(spec, {{0xFFFFFFFFu, true}, {2u, true}}), 1u);
}

TEST(Kernel, MaxIgnoresInvalid) {
  KernelSpec spec{KernelKind::Max, ValueType::Int32, 0, 0};
  EXPECT_EQ(from_word<std::int32_t>(apply_kernel(
                spec, {elem_i32(3), elem_i32(100, false), elem_i32(-2)})),
            3);
}

TEST(Kernel, IdentityPassesFirst) {
  KernelSpec spec{KernelKind::Identity, ValueType::Int32, 0, 0};
  EXPECT_EQ(apply_kernel(spec, {elem_i32(42), elem_i32(1)}),
            to_word<std::int32_t>(42));
}

TEST(Kernel, DiffusionConservesUniformField) {
  const auto spec = KernelSpec::diffusion(0.2f);
  const auto out = apply_kernel(
      spec, {elem_f32(3.0f), elem_f32(3.0f), elem_f32(3.0f), elem_f32(3.0f),
             elem_f32(3.0f)});
  EXPECT_EQ(from_word<float>(out), 3.0f);
}

TEST(Kernel, DiffusionMovesTowardNeighbourMean) {
  // centre 0, four neighbours at 10: out = 0 + 0.1*(40 - 4*0) = 4.
  const auto spec = KernelSpec::diffusion(0.1f);
  const auto out = apply_kernel(
      spec, {elem_f32(0.0f), elem_f32(10.0f), elem_f32(10.0f),
             elem_f32(10.0f), elem_f32(10.0f)});
  EXPECT_EQ(from_word<float>(out), 4.0f);
}

TEST(Kernel, UpwindUsesMissingAsCentre) {
  // Missing west/north fall back to the centre: zero gradient.
  const auto spec = KernelSpec::upwind(0.5f, 0.5f);
  const auto out = apply_kernel(
      spec, {elem_f32(8.0f), elem_f32(0.0f, false), elem_f32(0.0f, false)});
  EXPECT_EQ(from_word<float>(out), 8.0f);
}

TEST(Kernel, NamesAreDescriptive) {
  EXPECT_EQ(KernelSpec::average_int().name(), "average/i32");
  EXPECT_EQ(KernelSpec::diffusion(0.1f).name(), "diffusion/f32");
}

TEST(KernelPipeline, FixedLatencyAndOrder) {
  sim::Simulator sim;
  KernelPipeline kp(sim, "k", KernelSpec::average_int(), 4, 1000, 3);
  // Feed three tuples; results must come out in order, each = average.
  for (std::uint64_t i = 0; i < 3; ++i) {
    TupleMsg m;
    m.index = i;
    m.count = 4;
    for (std::size_t j = 0; j < 4; ++j)
      m.elems[j] = elem_i32(static_cast<std::int32_t>(4 * i));
    ASSERT_TRUE(kp.in().can_push());
    kp.in().push(m);
    sim.step();
  }
  std::vector<ResultMsg> results;
  for (int c = 0; c < 20 && results.size() < 3; ++c) {
    if (kp.out().can_pop()) results.push_back(kp.out().pop());
    sim.step();
  }
  ASSERT_EQ(results.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(from_word<std::int32_t>(results[i].values[0]),
              static_cast<std::int32_t>(4 * i));
  }
}

TEST(KernelPipeline, BackpressureFreezesWithoutLoss) {
  sim::Simulator sim;
  KernelPipeline kp(sim, "k", KernelSpec::average_int(), 1, 100, 3);
  // Push 6 tuples while never draining: out fifo (2) + stages (3) fill up;
  // input fifo backs up; nothing is lost once we drain.
  std::uint64_t pushed = 0;
  for (int c = 0; c < 30; ++c) {
    if (pushed < 6 && kp.in().can_push()) {
      TupleMsg m;
      m.index = pushed;
      m.count = 1;
      m.elems[0] = elem_i32(static_cast<std::int32_t>(pushed));
      kp.in().push(m);
      ++pushed;
    }
    sim.step();
  }
  EXPECT_EQ(pushed, 6u);
  std::vector<std::uint64_t> order;
  for (int c = 0; c < 40 && order.size() < 6; ++c) {
    if (kp.out().can_pop()) order.push_back(kp.out().pop().index);
    sim.step();
  }
  ASSERT_EQ(order.size(), 6u);
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(order[i], i);
  EXPECT_TRUE(kp.empty());
}

TEST(KernelPipeline, EmptyReflectsInFlightWork) {
  sim::Simulator sim;
  KernelPipeline kp(sim, "k", KernelSpec::average_int(), 1, 10, 2);
  EXPECT_TRUE(kp.empty());
  TupleMsg m;
  m.index = 0;
  m.count = 1;
  m.elems[0] = elem_i32(1);
  kp.in().push(m);
  sim.step();
  EXPECT_FALSE(kp.empty());
}

}  // namespace
}  // namespace smache::rtl

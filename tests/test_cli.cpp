// CliArgs regression wall for the PR-3 parser bugfixes:
//   * strict numeric parsing — `--width=abc` / `--width=12abc` / overflow
//     used to silently yield 0 / 12 / a saturated value; they now warn and
//     fall back to the caller's default;
//   * declared boolean flags — `--verbose out.json` used to swallow
//     `out.json` as the value of `--verbose`; declared booleans never bind
//     the following token.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"

namespace smache {
namespace {

/// Captures warnings emitted through the global log for the test's scope.
class WarnCapture {
 public:
  WarnCapture() {
    previous_level_ = Log::level();
    Log::set_level(LogLevel::Warn);
    Log::set_sink([this](LogLevel level, const std::string& m) {
      if (level == LogLevel::Warn) warnings_.push_back(m);
    });
  }
  ~WarnCapture() {
    Log::set_sink(nullptr);
    Log::set_level(previous_level_);
  }
  const std::vector<std::string>& warnings() const { return warnings_; }

 private:
  std::vector<std::string> warnings_;
  LogLevel previous_level_;
};

TEST(CliInt, GarbageValueFallsBackWithWarning) {
  WarnCapture capture;
  const char* argv[] = {"prog", "--width=abc"};
  CliArgs args(2, argv);
  EXPECT_EQ(args.get_int("width", 17), 17);
  ASSERT_EQ(capture.warnings().size(), 1u);
  EXPECT_NE(capture.warnings()[0].find("--width=abc"), std::string::npos);
}

TEST(CliInt, PartialNumberFallsBack) {
  // strtoll would stop at "12" and silently return 12; strict parsing
  // demands the whole token.
  WarnCapture capture;
  const char* argv[] = {"prog", "--width=12abc"};
  CliArgs args(2, argv);
  EXPECT_EQ(args.get_int("width", 17), 17);
  EXPECT_EQ(capture.warnings().size(), 1u);
}

TEST(CliInt, OverflowFallsBack) {
  WarnCapture capture;
  const char* argv[] = {"prog", "--width=99999999999999999999999"};
  CliArgs args(2, argv);
  EXPECT_EQ(args.get_int("width", 17), 17);
  EXPECT_EQ(capture.warnings().size(), 1u);
}

TEST(CliInt, ValidValuesParseBothForms) {
  const char* argv[] = {"prog", "--a=123", "--b", "456"};
  CliArgs args(4, argv);
  EXPECT_EQ(args.get_int("a", 0), 123);
  EXPECT_EQ(args.get_int("b", 0), 456);
}

TEST(CliInt, NegativeAndExtremeValuesParse) {
  const auto min64 = std::numeric_limits<std::int64_t>::min();
  const auto max64 = std::numeric_limits<std::int64_t>::max();
  const std::string min_s = "--min=" + std::to_string(min64);
  const std::string max_s = "--max=" + std::to_string(max64);
  const char* argv[] = {"prog", "--neg=-42", min_s.c_str(), max_s.c_str()};
  CliArgs args(4, argv);
  EXPECT_EQ(args.get_int("neg", 0), -42);
  EXPECT_EQ(args.get_int("min", 0), min64);
  EXPECT_EQ(args.get_int("max", 0), max64);
}

TEST(CliInt, PresenceFlagYieldsFallbackSilently) {
  WarnCapture capture;
  const char* argv[] = {"prog", "--width"};
  CliArgs args(2, argv);
  EXPECT_EQ(args.get_int("width", 17), 17);
  EXPECT_TRUE(capture.warnings().empty());
}

TEST(CliDouble, GarbageValueFallsBackWithWarning) {
  WarnCapture capture;
  const char* argv[] = {"prog", "--alpha=fast"};
  CliArgs args(2, argv);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.5), 0.5);
  EXPECT_EQ(capture.warnings().size(), 1u);
}

TEST(CliDouble, PartialNumberFallsBack) {
  WarnCapture capture;
  const char* argv[] = {"prog", "--alpha=1.5x"};
  CliArgs args(2, argv);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.5), 0.5);
  EXPECT_EQ(capture.warnings().size(), 1u);
}

TEST(CliDouble, OverflowFallsBack) {
  WarnCapture capture;
  const char* argv[] = {"prog", "--alpha=1e999"};
  CliArgs args(2, argv);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.5), 0.5);
  EXPECT_EQ(capture.warnings().size(), 1u);
}

TEST(CliDouble, ValidFormsParse) {
  const char* argv[] = {"prog", "--a=2.25", "--b", "-1e3", "--c=4"};
  CliArgs args(5, argv);
  EXPECT_DOUBLE_EQ(args.get_double("a", 0.0), 2.25);
  EXPECT_DOUBLE_EQ(args.get_double("b", 0.0), -1000.0);
  EXPECT_DOUBLE_EQ(args.get_double("c", 0.0), 4.0);
}

TEST(CliBool, DeclaredBooleanDoesNotSwallowPositional) {
  const char* argv[] = {"prog", "--verbose", "out.json"};
  CliArgs args(3, argv, {"verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "out.json");
}

TEST(CliBool, UndeclaredFlagStillBindsNextToken) {
  // Without a declaration the greedy `--name value` form is unchanged —
  // existing invocations like `--steps 5` keep working.
  const char* argv[] = {"prog", "--verbose", "out.json"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.get_string("verbose", ""), "out.json");
  EXPECT_TRUE(args.positional().empty());
}

TEST(CliBool, DeclaredBooleanAcceptsEqualsForm) {
  const char* argv[] = {"prog", "--verbose=false", "--debug=1"};
  CliArgs args(3, argv, {"verbose", "debug"});
  EXPECT_FALSE(args.get_bool("verbose", true));
  EXPECT_TRUE(args.get_bool("debug", false));
}

TEST(CliBool, BooleanThenFlagThenPositionalOrdering) {
  const char* argv[] = {"prog", "--verbose", "--steps", "5", "run.json"};
  CliArgs args(5, argv, {"verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_int("steps", 0), 5);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "run.json");
}

TEST(CliBool, DeclaredBooleanBeforeNegativeNumberFlag) {
  // A declared boolean must not eat a following token even when that token
  // is not itself a flag; mixing with negative-valued flags stays intact.
  const char* argv[] = {"prog", "--verbose", "-7"};
  CliArgs args(3, argv, {"verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "-7");
}

}  // namespace
}  // namespace smache

// Unit tests for the on-chip memory primitives: BramBank (synchronous
// read, physical rounding) and RegFile (combinational read).
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "mem/bram.hpp"
#include "mem/regfile.hpp"
#include "sim/simulator.hpp"

namespace smache::mem {
namespace {

TEST(Bram, SynchronousReadLatencyOne) {
  sim::Simulator sim;
  BramBank b(sim, "b", 8, 32, BramBank::Mode::Ram);
  b.write(3, 99);
  sim.step();
  b.read(3);
  EXPECT_EQ(b.rdata(), 0u) << "read data must not appear combinationally";
  sim.step();
  EXPECT_EQ(b.rdata(), 99u);
}

TEST(Bram, RdataHoldsUntilNextRead) {
  sim::Simulator sim;
  BramBank b(sim, "b", 4, 32, BramBank::Mode::Ram);
  b.write(0, 5);
  sim.step();
  b.read(0);
  sim.step();
  sim.step();
  sim.step();
  EXPECT_EQ(b.rdata(), 5u);
}

TEST(Bram, ReadDuringWriteReturnsOldData) {
  sim::Simulator sim;
  BramBank b(sim, "b", 4, 32, BramBank::Mode::Ram);
  b.poke(1, 10);
  b.read(1);
  b.write(1, 20);
  sim.step();
  EXPECT_EQ(b.rdata(), 10u) << "read-before-write semantics";
  EXPECT_EQ(b.peek(1), 20u);
}

TEST(Bram, PortLimitsEnforced) {
  sim::Simulator sim;
  BramBank b(sim, "b", 4, 32, BramBank::Mode::Ram);
  b.read(0);
  EXPECT_THROW(b.read(1), contract_error);
  b.write(0, 1);
  EXPECT_THROW(b.write(1, 2), contract_error);
  EXPECT_THROW(b.read(4), contract_error);
}

TEST(Bram, WidthMasking) {
  sim::Simulator sim;
  BramBank b(sim, "b", 4, 8, BramBank::Mode::Ram);
  b.write(0, 0x1FF);
  sim.step();
  EXPECT_EQ(b.peek(0), 0xFFu);
}

TEST(Bram, RamModePhysicalRounding) {
  // Calibrated against the paper's Table I actuals: depth + 1.
  sim::Simulator sim;
  BramBank a(sim, "a", 11, 32, BramBank::Mode::Ram);
  EXPECT_EQ(a.physical_depth(), 12u);
  EXPECT_EQ(a.physical_bits(), 384u);
  BramBank b(sim, "b", 1024, 32, BramBank::Mode::Ram);
  EXPECT_EQ(b.physical_depth(), 1025u);
}

TEST(Bram, FifoModePhysicalRounding) {
  // depth + 1 rounded to a multiple of 4: 7 -> 8, 1020 -> 1024.
  sim::Simulator sim;
  BramBank a(sim, "a", 7, 32, BramBank::Mode::Fifo);
  EXPECT_EQ(a.physical_depth(), 8u);
  BramBank b(sim, "b", 1020, 32, BramBank::Mode::Fifo);
  EXPECT_EQ(b.physical_depth(), 1024u);
}

TEST(Bram, LedgerChargesPhysicalBitsAndBlocks) {
  sim::Simulator sim;
  BramBank b(sim, "grp/bank", 1024, 32, BramBank::Mode::Ram);
  EXPECT_EQ(sim.ledger().total(sim::ResKind::BramBits, "grp"),
            1025u * 32);
  EXPECT_EQ(sim.ledger().total(sim::ResKind::BramBlocks, "grp"),
            (1025u * 32 + kM20kBits - 1) / kM20kBits);
}

TEST(RegFile, CombinationalRead) {
  sim::Simulator sim;
  RegFile rf(sim, "rf", 4, 32);
  rf.write(2, 7);
  EXPECT_EQ(rf.read(2), 0u) << "write is clocked";
  sim.step();
  EXPECT_EQ(rf.read(2), 7u) << "read is combinational after commit";
}

TEST(RegFile, MultipleWritesPerCycleAllowed) {
  sim::Simulator sim;
  RegFile rf(sim, "rf", 4, 32);
  rf.write(0, 1);
  rf.write(1, 2);
  rf.write(2, 3);
  sim.step();
  EXPECT_EQ(rf.read(0), 1u);
  EXPECT_EQ(rf.read(1), 2u);
  EXPECT_EQ(rf.read(2), 3u);
}

TEST(RegFile, ChargesRegisterBits) {
  sim::Simulator sim;
  RegFile rf(sim, "rf", 16, 32);
  EXPECT_EQ(sim.ledger().total(sim::ResKind::RegisterBits, "rf"), 512u);
  EXPECT_EQ(sim.ledger().total(sim::ResKind::BramBits, "rf"), 0u);
}

}  // namespace
}  // namespace smache::mem

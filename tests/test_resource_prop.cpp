// Property tests for the resource model: across many configurations the
// analytic estimate must track the elaborated "actual" within a small
// tolerance — the claim Table I exists to support ("our predicted cost very
// closely tracks the actual resource utilization").
#include <gtest/gtest.h>

#include <tuple>

#include "common/bits.hpp"
#include "core/engine.hpp"

namespace smache {
namespace {

class ResourceSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, model::StreamImpl>> {};

TEST_P(ResourceSweep, EstimateTracksElaboratedActual) {
  const auto [dim, impl] = GetParam();
  ProblemSpec p = ProblemSpec::paper_example();
  p.height = dim;
  p.width = dim;
  p.steps = 1;
  const auto res = Engine(EngineOptions::smache(impl)).elaborate_only(p);
  ASSERT_TRUE(res.estimate.has_value());
  const auto& e = *res.estimate;
  const auto& a = res.resources;

  // Stream-buffer datapath registers are estimated exactly; the elaborated
  // value adds only the FIFO pointer registers.
  std::uint64_t ptr_bits = 0;
  for (const auto& seg : res.plan->fifo_segments())
    ptr_bits += addr_bits(seg.bram_len);
  EXPECT_EQ(a.r_stream, e.r_stream + ptr_bits);
  // BRAM actuals exceed estimates only by physical rounding, bounded by
  // one padded word row per bank plus alignment.
  EXPECT_GE(a.b_stream, e.b_stream);
  EXPECT_GE(a.b_static, e.b_static);
  EXPECT_LE(a.b_stream, e.b_stream + 32ull * 8 *
                                         (res.plan->fifo_segments().size() +
                                          1));
  EXPECT_LE(a.b_static,
            e.b_static + 32ull * 2 * (res.plan->static_buffers().size() + 1) *
                             2);
  // Controller overhead exists but stays small in absolute terms.
  EXPECT_GE(a.r_total, e.r_total());
  EXPECT_LE(a.r_total - a.r_stream - a.r_static, 400u)
      << "controller registers should be bounded";
}

INSTANTIATE_TEST_SUITE_P(
    Dims, ResourceSweep,
    ::testing::Combine(::testing::Values(8, 11, 32, 64, 256, 1024),
                       ::testing::Values(model::StreamImpl::Hybrid,
                                         model::StreamImpl::RegisterOnly)),
    [](const ::testing::TestParamInfo<
        std::tuple<std::size_t, model::StreamImpl>>& i) {
      return "d" + std::to_string(std::get<0>(i.param)) +
             (std::get<1>(i.param) == model::StreamImpl::Hybrid ? "h" : "r");
    });

TEST(ResourceExact, TableIBramActualsMatchPaperExactly) {
  // Our elaboration reproduces the paper's BRAM "actual" numbers exactly
  // (the register actuals depend on controller details and only match in
  // regime — see EXPERIMENTS.md).
  struct Row {
    std::size_t dim;
    model::StreamImpl impl;
    std::uint64_t b_static, b_stream, b_total;
  };
  const Row rows[] = {
      {11, model::StreamImpl::RegisterOnly, 1536, 0, 1536},
      {11, model::StreamImpl::Hybrid, 1536, 512, 2048},
      {1024, model::StreamImpl::RegisterOnly, 131200, 0, 131200},
      {1024, model::StreamImpl::Hybrid, 131200, 65536, 196736},
  };
  for (const auto& row : rows) {
    ProblemSpec p = ProblemSpec::paper_example();
    p.height = row.dim;
    p.width = row.dim;
    p.steps = 1;
    const auto res =
        Engine(EngineOptions::smache(row.impl)).elaborate_only(p);
    EXPECT_EQ(res.resources.b_static, row.b_static) << row.dim;
    EXPECT_EQ(res.resources.b_stream, row.b_stream) << row.dim;
    EXPECT_EQ(res.resources.b_total, row.b_total) << row.dim;
  }
}

TEST(ResourceExact, StreamRegisterEstimateIsExact) {
  // The datapath window registers are fully determined by the plan, so
  // estimate == actual for the r_stream datapath portion up to the FIFO
  // pointer registers.
  for (auto impl :
       {model::StreamImpl::Hybrid, model::StreamImpl::RegisterOnly}) {
    ProblemSpec p = ProblemSpec::paper_example();
    p.steps = 1;
    const auto res = Engine(EngineOptions::smache(impl)).elaborate_only(p);
    const auto& e = *res.estimate;
    // Pointer registers: addr_bits(7)=3 per FIFO segment.
    const std::uint64_t ptr_bits =
        impl == model::StreamImpl::Hybrid ? 2 * 3 : 0;
    EXPECT_EQ(res.resources.r_stream, e.r_stream + ptr_bits);
  }
}

TEST(ResourceExact, HybridTradeoffAtScale) {
  // The paper's 1M-element headline: Case-R ~66K registers + 131K BRAM
  // bits vs Case-H ~1.5K registers(+ctrl) + 196K BRAM bits.
  ProblemSpec p = ProblemSpec::paper_example();
  p.height = 1024;
  p.width = 1024;
  p.steps = 1;
  const auto r = Engine(EngineOptions::smache(model::StreamImpl::RegisterOnly))
                     .elaborate_only(p);
  const auto h =
      Engine(EngineOptions::smache(model::StreamImpl::Hybrid))
          .elaborate_only(p);
  EXPECT_GT(r.resources.r_total, 65000u);
  EXPECT_LT(h.resources.r_total, 2000u);
  EXPECT_GT(h.resources.b_total, r.resources.b_total);
}

TEST(ResourceExact, BaselineRegisterFootprintIsTiny) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 1;
  const auto res = Engine(EngineOptions::baseline()).elaborate_only(p);
  // The paper reports 262 registers for its baseline; ours is the same
  // regime: tuple regs (4x32) plus counters.
  EXPECT_LT(res.resources.r_total, 400u);
  EXPECT_GT(res.resources.r_total, 100u);
}

}  // namespace
}  // namespace smache

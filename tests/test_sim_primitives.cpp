// Unit tests for the two-phase simulation substrate: Reg, RegArray, Fifo,
// FsmState, ResourceLedger, Simulator scheduling semantics.
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "sim/fifo.hpp"
#include "sim/fsm.hpp"
#include "sim/reg.hpp"
#include "sim/resources.hpp"
#include "sim/ring_buffer.hpp"
#include "sim/simulator.hpp"

namespace smache::sim {
namespace {

TEST(Reg, HoldsUntilCommitted) {
  Simulator sim;
  Reg<int> r(sim, "r", 7);
  EXPECT_EQ(r.q(), 7);
  r.d(42);
  EXPECT_EQ(r.q(), 7) << "write must not be visible before the clock edge";
  sim.step();
  EXPECT_EQ(r.q(), 42);
}

TEST(Reg, HoldsValueWithoutWrite) {
  Simulator sim;
  Reg<int> r(sim, "r", 5);
  sim.step();
  sim.step();
  EXPECT_EQ(r.q(), 5);
}

TEST(Reg, LastWriteInCycleWins) {
  Simulator sim;
  Reg<int> r(sim, "r", 0);
  r.d(1);
  r.d(2);
  sim.step();
  EXPECT_EQ(r.q(), 2);
}

TEST(Reg, ChargesExplicitBits) {
  Simulator sim;
  Reg<int> a(sim, "grp/a", 0, 7);
  Reg<bool> b(sim, "grp/b", false);
  EXPECT_EQ(sim.ledger().total(ResKind::RegisterBits, "grp"), 8u);
}

TEST(RegArray, ShiftInMovesEveryElement) {
  Simulator sim;
  RegArray<int> w(sim, "w", 4, 0);
  w.shift_in(10);
  sim.step();
  w.shift_in(20);
  sim.step();
  EXPECT_EQ(w.q(0), 20);
  EXPECT_EQ(w.q(1), 10);
  EXPECT_EQ(w.q(2), 0);
}

TEST(RegArray, SparseWritesCommitTogether) {
  Simulator sim;
  RegArray<int> w(sim, "w", 3, 0);
  w.d(0, 1);
  w.d(2, 3);
  EXPECT_EQ(w.q(0), 0);
  sim.step();
  EXPECT_EQ(w.q(0), 1);
  EXPECT_EQ(w.q(1), 0);
  EXPECT_EQ(w.q(2), 3);
}

TEST(RegArray, ChargesCountTimesBits) {
  Simulator sim;
  RegArray<std::uint32_t> w(sim, "arr", 25, 0u, 32);
  EXPECT_EQ(sim.ledger().total(ResKind::RegisterBits, "arr"), 800u);
}

TEST(Fifo, PushVisibleNextCycle) {
  Simulator sim;
  Fifo<int> f(sim, "f", 4);
  EXPECT_FALSE(f.can_pop());
  f.push(1);
  EXPECT_FALSE(f.can_pop()) << "pushed data must not be poppable same cycle";
  sim.step();
  ASSERT_TRUE(f.can_pop());
  EXPECT_EQ(f.front(), 1);
}

TEST(Fifo, SinglePushPerCycleEnforced) {
  Simulator sim;
  Fifo<int> f(sim, "f", 4);
  f.push(1);
  EXPECT_FALSE(f.can_push());
  EXPECT_THROW(f.push(2), contract_error);
}

TEST(Fifo, SinglePopPerCycleEnforced) {
  Simulator sim;
  Fifo<int> f(sim, "f", 4);
  f.push(1);
  sim.step();
  f.push(2);
  sim.step();
  EXPECT_EQ(f.pop(), 1);
  EXPECT_FALSE(f.can_pop());
  EXPECT_THROW(f.pop(), contract_error);
}

TEST(Fifo, RegisteredFullSemantics) {
  // A pop in the same cycle does NOT free space for a push (full flag is
  // registered), keeping producer/consumer order irrelevant.
  Simulator sim;
  Fifo<int> f(sim, "f", 1);
  f.push(1);
  sim.step();
  EXPECT_FALSE(f.can_push());
  EXPECT_EQ(f.pop(), 1);
  EXPECT_FALSE(f.can_push()) << "same-cycle pop must not unlock can_push";
  sim.step();
  EXPECT_TRUE(f.can_push());
}

TEST(Fifo, FifoOrderPreserved) {
  Simulator sim;
  Fifo<int> f(sim, "f", 8);
  for (int i = 0; i < 5; ++i) {
    f.push(i);
    sim.step();
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(f.can_pop());
    EXPECT_EQ(f.pop(), i);
    sim.step();
  }
  EXPECT_TRUE(f.empty());
}

TEST(Fifo, ConcurrentPushPopSteadyState) {
  Simulator sim;
  Fifo<int> f(sim, "f", 2);
  f.push(0);
  sim.step();
  // Push and pop every cycle: occupancy stays put, data flows in order.
  for (int i = 1; i < 20; ++i) {
    ASSERT_TRUE(f.can_pop());
    EXPECT_EQ(f.pop(), i - 1);
    ASSERT_TRUE(f.can_push());
    f.push(i);
    sim.step();
  }
}

enum class St { A, B, C };

TEST(FsmState, TransitionNextCycle) {
  Simulator sim;
  FsmState<St> fsm(sim, "fsm", St::A, 3);
  EXPECT_TRUE(fsm.is(St::A));
  fsm.go(St::B);
  EXPECT_TRUE(fsm.is(St::A));
  sim.step();
  EXPECT_TRUE(fsm.is(St::B));
}

TEST(FsmState, LogRecordsTransitions) {
  Simulator sim;
  FsmState<St> fsm(sim, "fsm", St::A, 3);
  fsm.enable_log();
  fsm.go(St::B);
  sim.step();
  fsm.go(St::C);
  sim.step();
  ASSERT_EQ(fsm.log().size(), 2u);
  EXPECT_EQ(fsm.log()[0].to, St::B);
  EXPECT_EQ(fsm.log()[1].from, St::B);
  EXPECT_EQ(fsm.log()[1].cycle, 1u);
}

TEST(FsmState, ChargesBinaryEncodingBits) {
  Simulator sim;
  FsmState<St> fsm(sim, "fsm3", St::A, 3);
  EXPECT_EQ(sim.ledger().total(ResKind::RegisterBits, "fsm3"), 2u);
}

TEST(Ledger, PrefixMatchingIsSegmentAware) {
  ResourceLedger ledger;
  ledger.add("a/b", ResKind::RegisterBits, 1);
  ledger.add("a/bc", ResKind::RegisterBits, 2);
  ledger.add("a/b/c", ResKind::RegisterBits, 4);
  EXPECT_EQ(ledger.total(ResKind::RegisterBits, "a/b"), 5u);
  EXPECT_EQ(ledger.total(ResKind::RegisterBits, "a"), 7u);
  EXPECT_EQ(ledger.total(ResKind::RegisterBits), 7u);
}

TEST(Ledger, SeparatesKinds) {
  ResourceLedger ledger;
  ledger.add("x", ResKind::RegisterBits, 10);
  ledger.add("x", ResKind::BramBits, 20);
  EXPECT_EQ(ledger.total(ResKind::RegisterBits, "x"), 10u);
  EXPECT_EQ(ledger.total(ResKind::BramBits, "x"), 20u);
}

TEST(Simulator, RunUntilStopsOnPredicate) {
  Simulator sim;
  Reg<int> r(sim, "r", 0);
  struct Counter : Module {
    Reg<int>& r;
    explicit Counter(Reg<int>& reg) : r(reg) {}
    void eval() override { r.d(r.q() + 1); }
  } counter(r);
  sim.add_module(&counter);
  const auto cycles = sim.run_until([&] { return r.q() == 10; }, 100);
  EXPECT_EQ(cycles, 10u);
  EXPECT_EQ(sim.now(), 10u);
}

TEST(Simulator, RunUntilThrowsOnBudgetExhaustion) {
  Simulator sim;
  EXPECT_THROW(sim.run_until([] { return false; }, 5), contract_error);
}

TEST(RingBuffer, WrapsAroundManyTimes) {
  RingBuffer<int> rb(3);
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 50; ++round) {
    while (!rb.full()) rb.push_back(next_in++);
    EXPECT_EQ(rb.size(), 3u);
    EXPECT_EQ(rb.at(0), next_out);
    EXPECT_EQ(rb.at(2), next_out + 2);
    rb.pop_front();
    ++next_out;
    EXPECT_EQ(rb.front(), next_out);
  }
  EXPECT_THROW(rb.at(3), smache::contract_error);
}

TEST(RingBuffer, StagingBackSurvivesSameCyclePop) {
  // The slot index handed out by staging_back() must stay the published
  // back slot when a pop commits first — the FIFO's commit order.
  RingBuffer<int> rb(2);
  rb.push_back(10);
  rb.push_back(11);
  rb.pop_front();          // room opens...
  rb.staging_back() = 12;  // ...and the staged slot lands right behind 11
  rb.commit_back();
  EXPECT_EQ(rb.front(), 11);
  rb.pop_front();
  EXPECT_EQ(rb.front(), 12);
}

TEST(Fifo, PushSlotAndDropMatchPushAndPop) {
  // The zero-copy producer/consumer calls must be cycle-for-cycle
  // equivalent to push()/pop().
  Simulator sim;
  Fifo<int> copy(sim, "copy", 2);
  Fifo<int> zero(sim, "zero", 2);
  int popped_copy = -1, popped_zero = -1;
  for (int cycle = 0; cycle < 40; ++cycle) {
    EXPECT_EQ(copy.can_pop(), zero.can_pop());
    EXPECT_EQ(copy.can_push(), zero.can_push());
    if (copy.can_pop() && cycle % 3 != 0) {
      popped_copy = copy.pop();
      popped_zero = zero.front();
      zero.drop();
      EXPECT_EQ(popped_copy, popped_zero);
    }
    if (copy.can_push() && cycle % 2 == 0) {
      copy.push(cycle);
      zero.push_slot() = cycle;
    }
    sim.step();
    EXPECT_EQ(copy.size(), zero.size());
  }
}

TEST(RegArray, NextAllMatchesPerIndexWrites) {
  // A whole-array producer (next_all) must commit exactly like the same
  // writes issued through d().
  Simulator sim;
  RegArray<int> a(sim, "a", 5, 0);
  RegArray<int> b(sim, "b", 5, 0);
  for (int cycle = 1; cycle <= 8; ++cycle) {
    int* next = a.next_all();
    for (std::size_t i = 0; i < a.size(); ++i) {
      next[i] = cycle * 10 + static_cast<int>(i);
      b.d(i, cycle * 10 + static_cast<int>(i));
    }
    sim.step();
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.q(i), b.q(i));
  }
}

TEST(Simulator, RunUntilDoneMatchesPerCycleChecking) {
  // With a sound lower bound the burst-stepping driver must return the
  // exact cycle count of the per-cycle-checked loop.
  struct Counter : Module {
    Reg<int>& r;
    explicit Counter(Reg<int>& reg) : r(reg) {}
    void eval() override { r.d(r.q() + 1); }
  };
  const int target = 37;
  Simulator per_cycle;
  Reg<int> r1(per_cycle, "r", 0);
  Counter c1(r1);
  per_cycle.add_module(&c1);
  const auto cycles_a =
      per_cycle.run_until([&] { return r1.q() == target; }, 1000);

  Simulator batched;
  Reg<int> r2(batched, "r", 0);
  Counter c2(r2);
  batched.add_module(&c2);
  const auto cycles_b = batched.run_until_done(
      [&] { return r2.q() == target; },
      [&] { return static_cast<std::uint64_t>(target - r2.q()); }, 1000);
  EXPECT_EQ(cycles_a, cycles_b);
  EXPECT_EQ(per_cycle.now(), batched.now());
  EXPECT_EQ(r1.q(), r2.q());
}

TEST(Simulator, RunUntilDoneThrowsOnBudgetExhaustion) {
  // The bound must never let a run sail past max_cycles: a bound larger
  // than the remaining budget is clamped, and the throw happens exactly
  // at the budget like the per-cycle loop.
  Simulator sim;
  Reg<int> r(sim, "r", 0);
  struct Counter : Module {
    Reg<int>& r;
    explicit Counter(Reg<int>& reg) : r(reg) {}
    void eval() override { r.d(r.q() + 1); }
  } counter(r);
  sim.add_module(&counter);
  EXPECT_THROW(sim.run_until_done([] { return false; },
                                  [] { return std::uint64_t{1000000}; }, 5),
               contract_error);
  EXPECT_EQ(sim.now(), 5u) << "budget overrun: stepped past max_cycles";
}

TEST(Simulator, ModuleOrderIrrelevantForRegComms) {
  // Two modules exchange values through registers; whichever order they
  // are registered in, after a step both see the other's PREVIOUS value.
  struct Echo : Module {
    Reg<int>&mine, &theirs;
    Echo(Reg<int>& m, Reg<int>& t) : mine(m), theirs(t) {}
    void eval() override { mine.d(theirs.q() + 1); }
  };
  for (int order = 0; order < 2; ++order) {
    Simulator sim;
    Reg<int> a(sim, "a", 0), b(sim, "b", 100);
    Echo ea(a, b), eb(b, a);
    if (order == 0) {
      sim.add_module(&ea);
      sim.add_module(&eb);
    } else {
      sim.add_module(&eb);
      sim.add_module(&ea);
    }
    sim.step();
    EXPECT_EQ(a.q(), 101);
    EXPECT_EQ(b.q(), 1);
  }
}

}  // namespace
}  // namespace smache::sim

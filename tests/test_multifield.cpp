// Multi-field cell layouts end-to-end: the CellLayout guards (overflow,
// field-count bounds, kernel x layout pairing), hash separation between
// layouts, F>1 gather/stitch round-trips, the threaded-vs-serial
// bit-identity wall extended to application workloads (including a
// periodic depth>1 tiled case), smache-vs-baseline-vs-reference agreement
// for FDTD / hotspot / Jacobi across depths, store warm/cold reuse for an
// F>1 scenario, and the conditional fields emission in JSON/CSV reports.
#include <gtest/gtest.h>

#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "core/engine.hpp"
#include "grid/tiling.hpp"
#include "rtl/kernel.hpp"
#include "sweep/emit.hpp"
#include "sweep/executor.hpp"
#include "sweep/spec.hpp"
#include "sweep/store.hpp"
#include "sweep/workloads.hpp"

namespace smache {
namespace {

using grid::BoundarySpec;
using grid::StencilShape;
using grid::TileGeometry;
using grid::TilingLayout;
using grid::TupleElem;
using rtl::KernelSpec;
using sweep::SweepSpec;

constexpr std::size_t kSizeMax = std::numeric_limits<std::size_t>::max();

TupleElem elem(float v) { return {to_word(v), true}; }

/// One registered application workload: kernel + matching input family.
struct AppCase {
  const char* kernel;
  const char* input;
  std::size_t fields;
};

std::vector<AppCase> app_cases() {
  return {{"jacobi", "jacobi-init", 1},
          {"hotspot", "hotspot-chip", 2},
          {"fdtd", "fdtd-cavity", 3}};
}

ProblemSpec app_problem(const AppCase& app, std::size_t h, std::size_t w,
                        BoundarySpec bc, std::size_t steps) {
  ProblemSpec p;
  p.height = h;
  p.width = w;
  p.shape = sweep::make_stencil("star5");
  p.bc = bc;
  p.kernel = sweep::make_kernel(app.kernel);
  p.steps = steps;
  return p;
}

// ---- satellite 1: cells x F overflow guard ----

TEST(MultiFieldGuards, CheckedWordsValidatesFieldCountAndOverflow) {
  EXPECT_EQ((grid::Grid<word_t>::checked_words(3, 4, 2)), 24u);
  EXPECT_EQ((grid::Grid<word_t>::checked_words(5, 7, kMaxFields)),
            5u * 7u * kMaxFields);
  EXPECT_THROW((void)grid::Grid<word_t>::checked_words(3, 4, 0),
               contract_error);
  EXPECT_THROW(
      (void)grid::Grid<word_t>::checked_words(3, 4, kMaxFields + 1),
      contract_error);
  // cells alone fits std::size_t, cells x F wraps — the silent
  // short-allocation this guard exists for.
  EXPECT_THROW(
      (void)grid::Grid<word_t>::checked_words(1, kSizeMax / 2 + 1, 2),
      contract_error);
  // And the plain-cells guard still fires first when h x w itself wraps.
  EXPECT_THROW((void)grid::Grid<word_t>::checked_words(kSizeMax / 2, 3, 1),
               contract_error);
}

TEST(MultiFieldGuards, ProblemValidateRejectsFieldOverflowAndArity) {
  // cells x 3 (fdtd) wraps before the DRAM sizing multiply could.
  ProblemSpec huge = app_problem(app_cases()[2], 1, 2, BoundarySpec::all_open(), 1);
  huge.width = kSizeMax / 2;
  EXPECT_THROW(huge.validate(), contract_error);

  // 13 taps x 3 fields = 39 tuple words > kMaxTuple (32).
  ProblemSpec wide = app_problem(app_cases()[2], 8, 8, BoundarySpec::all_open(), 1);
  wide.shape = sweep::make_stencil("diamond13");
  EXPECT_THROW(wide.validate(), contract_error);

  // Application kernels demand a centre-first tuple; vn4 has no centre.
  ProblemSpec off = app_problem(app_cases()[0], 8, 8, BoundarySpec::all_open(), 1);
  off.shape = StencilShape::von_neumann4();
  EXPECT_THROW(off.validate(), contract_error);
}

TEST(MultiFieldGuards, EngineRejectsLayoutMismatchedInitialGrid) {
  const ProblemSpec p =
      app_problem(app_cases()[1], 6, 6, BoundarySpec::all_open(), 1);
  const auto wrong = sweep::make_input("random", 6, 6, 1, 3);  // F=1 vs F=2
  EXPECT_THROW((void)Engine(EngineOptions::smache()).run(p, wrong),
               contract_error);
  EXPECT_THROW((void)reference_run(p, wrong), contract_error);
}

// ---- satellite 2: hash_grid folds the field count ----

TEST(MultiFieldHash, FieldCountSeparatesLayoutsWithIdenticalWords) {
  std::vector<word_t> words(6 * 8);
  for (std::size_t i = 0; i < words.size(); ++i)
    words[i] = static_cast<word_t>(i * 2654435761u);
  const auto flat = grid::Grid<word_t>::from_words(6, 8, words);
  const auto paired =
      grid::Grid<word_t>::from_words(6, 4, CellLayout{2}, words);
  const auto quads =
      grid::Grid<word_t>::from_words(6, 2, CellLayout{4}, words);
  EXPECT_NE(sweep::hash_grid(flat), sweep::hash_grid(paired));
  EXPECT_NE(sweep::hash_grid(flat), sweep::hash_grid(quads));
  EXPECT_NE(sweep::hash_grid(paired), sweep::hash_grid(quads));
  // Same layout, same words: still deterministic.
  const auto paired2 =
      grid::Grid<word_t>::from_words(6, 4, CellLayout{2}, words);
  EXPECT_EQ(sweep::hash_grid(paired), sweep::hash_grid(paired2));
}

// ---- kernel cell semantics ----

TEST(MultiFieldKernels, HotspotStepAndPowerPassThrough) {
  const KernelSpec spec = KernelSpec::hotspot(0.5f, 0.25f);
  // Tap-major {t, p}: centre {10, 2}, one neighbour {14, 9}.
  const std::vector<TupleElem> tuple = {elem(10.0f), elem(2.0f),
                                        elem(14.0f), elem(9.0f)};
  word_t out[2] = {0, 0};
  rtl::apply_kernel_cells(spec, tuple, 2, out);
  EXPECT_EQ(from_word<float>(out[0]), 10.0f + 0.5f * 4.0f + 0.25f * 2.0f);
  EXPECT_EQ(from_word<float>(out[1]), 2.0f);  // power is static state

  // Invalid neighbours drop out of the Laplacian sum entirely.
  const std::vector<TupleElem> edge = {elem(10.0f), elem(2.0f),
                                       {0, false}, {0, false}};
  rtl::apply_kernel_cells(spec, edge, 2, out);
  EXPECT_EQ(from_word<float>(out[0]), 10.0f + 0.25f * 2.0f);
}

TEST(MultiFieldKernels, FdtdWaveLeapfrogsAndCarriesState) {
  const KernelSpec spec = KernelSpec::fdtd_wave(0.5f);
  // Tap-major {u, u_prev, c2}: centre {1, 0.5, 4}, one neighbour u=3.
  const std::vector<TupleElem> tuple = {elem(1.0f), elem(0.5f), elem(4.0f),
                                        elem(3.0f), elem(7.0f), elem(9.0f)};
  word_t out[3] = {0, 0, 0};
  rtl::apply_kernel_cells(spec, tuple, 3, out);
  // u' = 2u - u_prev + alpha*c2*lap, lap = (3 - 1) = 2.
  EXPECT_EQ(from_word<float>(out[0]), 2.0f - 0.5f + 0.5f * 4.0f * 2.0f);
  EXPECT_EQ(from_word<float>(out[1]), 1.0f);  // u_prev' = u
  EXPECT_EQ(from_word<float>(out[2]), 4.0f);  // material is static
}

TEST(MultiFieldKernels, JacobiAveragesNeighboursWithCentreFallback) {
  const KernelSpec spec = KernelSpec::jacobi();
  const std::vector<TupleElem> tuple = {elem(5.0f), elem(2.0f), elem(4.0f)};
  EXPECT_EQ(from_word<float>(rtl::apply_kernel(spec, tuple)), 3.0f);
  const std::vector<TupleElem> lone = {elem(5.0f), {0, false}, {0, false}};
  EXPECT_EQ(from_word<float>(rtl::apply_kernel(spec, lone)), 5.0f);
}

// ---- satellite 3: tiling x multi-field ----

TEST(MultiFieldTiling, GatherStitchRoundTripsF2AndF3) {
  const struct {
    const char* input;
  } cases[] = {{"hotspot-chip"}, {"fdtd-cavity"}};
  const BoundarySpec bcs[] = {BoundarySpec::all_open(),
                              BoundarySpec::all_periodic(),
                              BoundarySpec::all_mirror()};
  for (const auto& c : cases) {
    const auto src = sweep::make_input(c.input, 9, 7, 1, 77);
    for (const BoundarySpec& bc : bcs) {
      const TilingLayout layout = grid::plan_tiling(
          9, 7, 2, 2, sweep::make_stencil("star5"), bc, 1);
      grid::Grid<word_t> dst(9, 7, src.layout(), 0);
      for (const TileGeometry& t : layout.tiles) {
        const auto sub = grid::gather_tile(src, t, bc);
        EXPECT_EQ(sub.fields(), src.fields());
        grid::stitch_interior(dst, t, sub);
      }
      EXPECT_EQ(dst, src) << c.input;
    }
  }
}

TEST(MultiFieldTiling, ThreadedMatchesSerialIncludingPeriodicDepth2) {
  // Periodic wraps at depth 2 are exactly the pairing CascadeTop rejects
  // standalone — halo tiling is what makes them legal, so the F>1
  // bit-identity wall must cover it.
  const AppCase hotspot = app_cases()[1];
  const ProblemSpec p =
      app_problem(hotspot, 12, 12, BoundarySpec::all_periodic(), 4);
  const auto init = sweep::make_input(hotspot.input, 12, 12, 1, 901);
  const auto golden = reference_run(p, init);
  Engine engine(EngineOptions::smache());
  const TilingSpec serial{2, 2, 1, 2};
  const TilingSpec threaded{2, 2, 4, 2};
  const auto a = engine.run_tiled(p, init, serial);
  const auto b = engine.run_tiled(p, init, threaded);
  ASSERT_TRUE(a.output && b.output);
  EXPECT_EQ(*a.output, *b.output);
  EXPECT_EQ(*a.output, golden);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(MultiFieldTiling, Fdtd2x2MeshMatchesReferenceAtBothDepths) {
  const AppCase fdtd = app_cases()[2];
  for (const std::size_t depth : {std::size_t{1}, std::size_t{2}}) {
    const ProblemSpec p =
        app_problem(fdtd, 10, 12, BoundarySpec::all_open(), 4);
    const auto init = sweep::make_input(fdtd.input, 10, 12, 1, 31 + depth);
    const auto golden = reference_run(p, init);
    const auto tiled = Engine(EngineOptions::smache())
                           .run_tiled(p, init, TilingSpec{2, 2, 1, depth});
    ASSERT_TRUE(tiled.output.has_value());
    EXPECT_EQ(*tiled.output, golden) << "depth " << depth;
  }
}

// ---- application workloads vs the golden reference, both archs ----

TEST(MultiFieldEngine, WorkloadsMatchReferenceAcrossArchsAndDepths) {
  for (const AppCase& app : app_cases()) {
    const auto init = sweep::make_input(app.input, 10, 12, 1, 4242);
    ASSERT_EQ(init.fields(), app.fields);

    // Depth 1 through both architectures, with the paper's mixed boundary.
    const ProblemSpec p1 =
        app_problem(app, 10, 12, BoundarySpec::paper_example(), 4);
    const auto golden1 = reference_run(p1, init);
    for (const auto& opts :
         {EngineOptions::smache(), EngineOptions::baseline()}) {
      const auto run = Engine(opts).run(p1, init);
      ASSERT_TRUE(run.output.has_value());
      EXPECT_EQ(*run.output, golden1)
          << app.kernel << " via " << to_string(opts.arch);
    }

    // Depth 2 through the cascade (in-stream boundaries only).
    const ProblemSpec p2 =
        app_problem(app, 10, 12, BoundarySpec::all_open(), 4);
    const auto golden2 = reference_run(p2, init);
    const auto cascade =
        Engine(EngineOptions::smache()).run_cascade(p2, init, 2);
    ASSERT_TRUE(cascade.output.has_value());
    EXPECT_EQ(*cascade.output, golden2) << app.kernel << " cascade d2";
  }
}

// ---- sweep integration: pairing validation, store reuse, emission ----

SweepSpec hotspot_spec() {
  SweepSpec spec;
  spec.grids = {{8, 8}};
  spec.steps = {2};
  spec.stencils = {"star5"};
  spec.boundaries = {"open"};
  spec.kernels = {"hotspot"};
  spec.inputs = {"hotspot-chip"};
  return spec;
}

TEST(MultiFieldSweep, RejectsMismatchedKernelInputLayouts) {
  SweepSpec spec = hotspot_spec();
  spec.inputs = {"random"};  // F=1 input under an F=2 kernel
  EXPECT_THROW((void)spec.expand(), contract_error);
  spec.kernels = {"average"};
  spec.inputs = {"fdtd-cavity"};  // F=3 input under an F=1 kernel
  EXPECT_THROW((void)spec.expand(), contract_error);
}

TEST(MultiFieldSweep, StoreWarmRunReusesF2Scenario) {
  const std::string dir = "sweep_store_tmp_multifield";
  std::filesystem::remove_all(dir);
  sweep::ExecutorOptions opts;
  opts.verify_reference = true;
  {
    sweep::ResultStore store(dir);
    opts.store = &store;
    const auto cold = sweep::SweepExecutor(opts).run(hotspot_spec());
    ASSERT_EQ(cold.size(), 1u);
    EXPECT_TRUE(cold[0].ok) << cold[0].error;
    EXPECT_TRUE(cold[0].reference_match);
    EXPECT_FALSE(cold[0].from_store);
    const auto warm = sweep::SweepExecutor(opts).run(hotspot_spec());
    ASSERT_EQ(warm.size(), 1u);
    EXPECT_TRUE(warm[0].from_store);
    EXPECT_EQ(sweep::SweepExecutor::digest(cold),
              sweep::SweepExecutor::digest(warm));
    EXPECT_EQ(emit_json(cold), emit_json(warm));
    EXPECT_EQ(emit_csv(cold), emit_csv(warm));
  }
  std::filesystem::remove_all(dir);
}

TEST(MultiFieldEmit, FieldsAppearOnlyForMultiFieldScenarios) {
  SweepSpec flat;
  flat.grids = {{8, 8}};
  flat.steps = {1};
  const auto f1 = sweep::SweepExecutor().run(flat);
  EXPECT_EQ(emit_json(f1).find("\"fields\""), std::string::npos);
  const std::string csv1 = emit_csv(f1);
  EXPECT_EQ(csv1.substr(0, csv1.find('\n')).find("fields"),
            std::string::npos);

  const auto f2 = sweep::SweepExecutor().run(hotspot_spec());
  EXPECT_NE(emit_json(f2).find("\"fields\": 2"), std::string::npos);
  const std::string csv2 = emit_csv(f2);
  const std::string header2 = csv2.substr(0, csv2.find('\n'));
  EXPECT_EQ(header2.rfind(",fields"), header2.size() - 7);
  // Every data row carries the kernel's field count as its last column.
  for (std::size_t pos = csv2.find('\n'); pos + 1 < csv2.size();) {
    const std::size_t end = csv2.find('\n', pos + 1);
    EXPECT_EQ(csv2.substr(end - 2, 2), ",2");
    pos = end;
  }
}

}  // namespace
}  // namespace smache

// Unit tests for the golden reference executor: tuple gathering through
// boundaries and hand-computed stencil steps.
#include <gtest/gtest.h>

#include "grid/reference.hpp"
#include "rtl/kernel.hpp"

namespace smache::grid {
namespace {

Grid<word_t> iota_grid(std::size_t h, std::size_t w) {
  Grid<word_t> g(h, w);
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = to_word(static_cast<std::int32_t>(i));
  return g;
}

TEST(Reference, GatherInterior) {
  const auto g = iota_grid(11, 11);
  const auto t = gather_tuple(g, StencilShape::von_neumann4(),
                              BoundarySpec::paper_example(), 5, 5);
  ASSERT_EQ(t.size(), 4u);
  // N, W, E, S of linear index 60.
  EXPECT_EQ(from_word<std::int32_t>(t[0].value), 49);
  EXPECT_EQ(from_word<std::int32_t>(t[1].value), 59);
  EXPECT_EQ(from_word<std::int32_t>(t[2].value), 61);
  EXPECT_EQ(from_word<std::int32_t>(t[3].value), 71);
  for (const auto& e : t) EXPECT_TRUE(e.valid);
}

TEST(Reference, GatherPaperCornerCases) {
  // Figure 1(a): for cell 0 (top-left), N wraps to 110, W is open-missing.
  const auto g = iota_grid(11, 11);
  const auto t = gather_tuple(g, StencilShape::von_neumann4(),
                              BoundarySpec::paper_example(), 0, 0);
  EXPECT_TRUE(t[0].valid);
  EXPECT_EQ(from_word<std::int32_t>(t[0].value), 110);  // N -> bottom row
  EXPECT_FALSE(t[1].valid);                             // W open
  EXPECT_TRUE(t[2].valid);
  EXPECT_EQ(from_word<std::int32_t>(t[2].value), 1);    // E
  EXPECT_TRUE(t[3].valid);
  EXPECT_EQ(from_word<std::int32_t>(t[3].value), 11);   // S
}

TEST(Reference, GatherConstantHalo) {
  const auto g = iota_grid(4, 4);
  const BoundarySpec bc{AxisBoundary::constant_halo(to_word<std::int32_t>(99)),
                        AxisBoundary::open()};
  const auto t = gather_tuple(g, StencilShape::von_neumann4(), bc, 0, 1);
  EXPECT_TRUE(t[0].valid);
  EXPECT_EQ(from_word<std::int32_t>(t[0].value), 99);
}

TEST(Reference, AverageStepHandComputed) {
  // 3x3 all-open grid, 4-point average at the centre: (1+3+5+7)/4 = 4.
  Grid<word_t> g(3, 3);
  const std::int32_t vals[9] = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  for (std::size_t i = 0; i < 9; ++i) g[i] = to_word(vals[i]);
  const auto kernel = [](const std::vector<TupleElem>& t) {
    return rtl::apply_kernel(rtl::KernelSpec::average_int(), t);
  };
  const auto out = apply_stencil(g, StencilShape::von_neumann4(),
                                 BoundarySpec::all_open(), kernel);
  EXPECT_EQ(from_word<std::int32_t>(out.at(1, 1)), 4);
  // Corner (0,0): neighbours E=1, S=3 -> (1+3)/2 = 2.
  EXPECT_EQ(from_word<std::int32_t>(out.at(0, 0)), 2);
  // Edge (0,1): W=0, E=2, S=4 -> 6/3 = 2.
  EXPECT_EQ(from_word<std::int32_t>(out.at(0, 1)), 2);
}

TEST(Reference, PeriodicUniformGridIsFixedPoint) {
  // With all-periodic boundaries, a constant grid is a fixed point of the
  // averaging kernel at every step.
  Grid<word_t> g(6, 7, to_word<std::int32_t>(5));
  const auto kernel = [](const std::vector<TupleElem>& t) {
    return rtl::apply_kernel(rtl::KernelSpec::average_int(), t);
  };
  const auto out = run_steps(g, StencilShape::von_neumann4(),
                             BoundarySpec::all_periodic(), kernel, 10);
  EXPECT_EQ(out, g);
}

TEST(Reference, SumKernelConservesTotalUnderPeriodicShift) {
  // An identity-like check: shifting stencil {(0,1)} under all-periodic
  // boundaries is a circular shift, preserving the multiset of values.
  Grid<word_t> g = iota_grid(3, 4);
  const auto kernel = [](const std::vector<TupleElem>& t) {
    return t[0].value;
  };
  const auto out = apply_stencil(g, StencilShape::custom("e", {{0, 1}}),
                                 BoundarySpec::all_periodic(), kernel);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_EQ(out.at(r, c), g.at(r, (c + 1) % 4));
}

TEST(Reference, StepsComposeSequentially) {
  const auto g = iota_grid(5, 5);
  const auto kernel = [](const std::vector<TupleElem>& t) {
    return rtl::apply_kernel(rtl::KernelSpec::average_int(), t);
  };
  const auto two_steps = run_steps(g, StencilShape::von_neumann4(),
                                   BoundarySpec::paper_example(), kernel, 2);
  const auto one = apply_stencil(g, StencilShape::von_neumann4(),
                                 BoundarySpec::paper_example(), kernel);
  const auto one_more = apply_stencil(one, StencilShape::von_neumann4(),
                                      BoundarySpec::paper_example(), kernel);
  EXPECT_EQ(two_steps, one_more);
}

}  // namespace
}  // namespace smache::grid

// Observability contract wall — the PR-9 profiler, metrics registry and
// trace export:
//   * MetricsRegistry: slot registration is unconditional (deterministic
//     key sets), value updates are gated by the enabled flag, snapshots
//     are sorted-by-path with zero-valued entries included, kind
//     mismatches are contract violations, and merge_samples folds
//     counters by sum and gauges/watermarks by max;
//   * cycle attribution: for every profiled engine path (smache,
//     baseline, cascade depth>1, tiled, multi-field) the scheduler
//     invariant holds — eval + idle + fastforward == total, and per
//     module awake + asleep + fastforward == total;
//   * profiling and span capture NEVER perturb the simulation: cycles,
//     DRAM counters and the output grid are bit-identical on/off;
//   * Perfetto/Chrome trace-event export is well-formed, deterministic
//     JSON with one metadata event per lane and one "X" event per span;
//   * sweep telemetry: ExecutorOptions::metrics populates per-scenario
//     snapshots without moving the digest, progress callbacks count every
//     scenario exactly once, ResultStore keeps hit/miss/append counters,
//     and the store_hit / metrics report columns appear only on request.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"
#include "core/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/spans.hpp"
#include "support/test_grids.hpp"
#include "sweep/emit.hpp"
#include "sweep/executor.hpp"
#include "sweep/spec.hpp"
#include "sweep/store.hpp"
#include "sweep/workloads.hpp"

namespace smache {
namespace {

using obs::MetricKind;
using obs::MetricSample;
using obs::MetricsRegistry;
using obs::SpanLog;
using sweep::EmitOptions;
using sweep::ExecutorOptions;
using sweep::ScenarioResult;
using sweep::SweepExecutor;
using sweep::SweepProgress;
using sweep::SweepSpec;

// ---- helpers ----

std::uint64_t mval(const std::vector<MetricSample>& m, std::string_view path) {
  for (const MetricSample& s : m)
    if (s.path == path) return s.value;
  ADD_FAILURE() << "metric not found: " << path;
  return 0;
}

bool mhas(const std::vector<MetricSample>& m, std::string_view path) {
  for (const MetricSample& s : m)
    if (s.path == path) return true;
  return false;
}

/// The profiler's core invariant: scheduler totals attribute exactly, both
/// globally and per module, and the snapshot is sorted by path. Holds
/// additively for tiled runs because every tile contributes its own total.
void expect_attribution(const std::vector<MetricSample>& m) {
  ASSERT_FALSE(m.empty());
  for (std::size_t i = 1; i < m.size(); ++i)
    EXPECT_LT(m[i - 1].path, m[i].path) << "snapshot not sorted";
  const std::uint64_t total = mval(m, "sched/cycles/total");
  EXPECT_GT(total, 0u);
  EXPECT_EQ(mval(m, "sched/cycles/eval") + mval(m, "sched/cycles/idle") +
                mval(m, "sched/cycles/fastforward"),
            total);
  constexpr std::string_view kPrefix = "sched/module/";
  constexpr std::string_view kAwake = "/awake";
  bool any_module = false;
  for (const MetricSample& s : m) {
    const std::string_view p = s.path;
    if (p.substr(0, kPrefix.size()) != kPrefix) continue;
    if (p.size() < kAwake.size() ||
        p.substr(p.size() - kAwake.size()) != kAwake)
      continue;
    any_module = true;
    const std::string base(p.substr(0, p.size() - kAwake.size()));
    EXPECT_EQ(s.value + mval(m, base + "/asleep") +
                  mval(m, base + "/fastforward"),
              total)
        << "module attribution broken for " << base;
  }
  EXPECT_TRUE(any_module) << "no sched/module/* entries in snapshot";
}

/// Structural JSON sanity without a parser: every quote/escape resolves
/// and braces/brackets balance outside string literals.
void expect_balanced_json(const std::string& s) {
  long depth = 0;
  bool in_str = false, esc = false;
  for (const char c : s) {
    if (in_str) {
      if (esc) esc = false;
      else if (c == '\\') esc = true;
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') in_str = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_FALSE(in_str) << "unterminated string literal";
  EXPECT_EQ(depth, 0) << "unbalanced braces/brackets";
}

std::size_t count_substr(const std::string& hay, std::string_view needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

ProblemSpec small_problem(std::size_t n, std::size_t steps) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.height = n;
  p.width = n;
  p.steps = steps;
  return p;
}

// ---- MetricsRegistry units ----

TEST(MetricsRegistry, DisabledTouchesAreNoOpsButSlotsRegister) {
  MetricsRegistry reg;
  EXPECT_FALSE(reg.enabled());
  const auto c = reg.slot("a/count", MetricKind::Counter);
  const auto g = reg.slot("a/gauge", MetricKind::Gauge);
  const auto w = reg.slot("a/hwm", MetricKind::MaxWatermark);
  reg.count(c, 5);
  reg.set(g, 9);
  reg.watermark(w, 3);
  EXPECT_EQ(reg.value(c), 0u);
  EXPECT_EQ(reg.value(g), 0u);
  EXPECT_EQ(reg.value(w), 0u);
  // Registration happened anyway: the snapshot key set is independent of
  // when (or whether) profiling was enabled.
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].path, "a/count");
  EXPECT_EQ(snap[1].path, "a/gauge");
  EXPECT_EQ(snap[2].path, "a/hwm");
  for (const MetricSample& s : snap) EXPECT_EQ(s.value, 0u);
}

TEST(MetricsRegistry, EnabledCountsGaugesAndWatermarks) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  const auto c = reg.slot("x/count", MetricKind::Counter);
  const auto g = reg.slot("x/gauge", MetricKind::Gauge);
  const auto w = reg.slot("x/hwm", MetricKind::MaxWatermark);
  reg.count(c);
  reg.count(c, 4);
  reg.set(g, 7);
  reg.set(g, 2);  // gauge: last write wins
  reg.watermark(w, 5);
  reg.watermark(w, 3);  // below the mark: must not regress
  reg.watermark(w, 9);
  EXPECT_EQ(reg.value(c), 5u);
  EXPECT_EQ(reg.value(g), 2u);
  EXPECT_EQ(reg.value(w), 9u);
  EXPECT_EQ(reg.value("x/hwm"), 9u);
  EXPECT_EQ(reg.value("never/registered"), 0u);
}

TEST(MetricsRegistry, ReregistrationReturnsSameSlotAndChecksKind) {
  MetricsRegistry reg;
  const auto a = reg.slot("dup/path", MetricKind::Counter);
  const auto b = reg.slot("dup/path", MetricKind::Counter);
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.slot_count(), 1u);
  EXPECT_THROW((void)reg.slot("dup/path", MetricKind::MaxWatermark),
               contract_error);
}

TEST(MetricsRegistry, TwoPartSlotJoinsBaseAndSuffix) {
  MetricsRegistry reg;
  const auto joined = reg.slot("top/fifo", "/hwm", MetricKind::MaxWatermark);
  const auto whole = reg.slot("top/fifo/hwm", MetricKind::MaxWatermark);
  EXPECT_EQ(joined, whole);
  EXPECT_EQ(reg.slot_count(), 1u);
}

TEST(MetricsRegistry, ClearValuesKeepsRegistrations) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  const auto c = reg.slot("k/c", MetricKind::Counter);
  reg.count(c, 11);
  reg.clear_values();
  EXPECT_EQ(reg.value(c), 0u);
  EXPECT_EQ(reg.slot_count(), 1u);
  reg.count(c, 2);  // slot id stays valid after the clear
  EXPECT_EQ(reg.value(c), 2u);
}

TEST(MetricsRegistry, InternPathIsStableAcrossCalls) {
  const std::string* a = obs::intern_path("obs/test/interned-path");
  const std::string* b = obs::intern_path("obs/test/interned-path");
  EXPECT_EQ(a, b);
  EXPECT_EQ(*a, "obs/test/interned-path");
}

TEST(MergeSamples, CountersSumGaugesAndWatermarksMax) {
  std::vector<MetricSample> into = {
      {"a/count", MetricKind::Counter, 3},
      {"b/gauge", MetricKind::Gauge, 9},
      {"c/hwm", MetricKind::MaxWatermark, 4},
  };
  const std::vector<MetricSample> from = {
      {"a/count", MetricKind::Counter, 5},
      {"b/gauge", MetricKind::Gauge, 2},
      {"c/hwm", MetricKind::MaxWatermark, 7},
      {"d/new", MetricKind::Counter, 1},  // disjoint key joins the union
  };
  merge_samples(into, from);
  ASSERT_EQ(into.size(), 4u);
  for (std::size_t i = 1; i < into.size(); ++i)
    EXPECT_LT(into[i - 1].path, into[i].path);
  EXPECT_EQ(mval(into, "a/count"), 8u);   // sum
  EXPECT_EQ(mval(into, "b/gauge"), 9u);   // max
  EXPECT_EQ(mval(into, "c/hwm"), 7u);     // max
  EXPECT_EQ(mval(into, "d/new"), 1u);
}

// ---- SpanLog + Perfetto export ----

TEST(SpanLog, LaneDedupAndGatedAdd) {
  SpanLog log;
  const auto a = log.lane("smache", "awake");
  const auto b = log.lane("smache", "awake");
  const auto c = log.lane("dram", "read txn");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(log.lanes().size(), 2u);
  log.add(a, 0, 5);  // disabled: dropped behind the one branch
  EXPECT_TRUE(log.spans().empty());
  log.set_enabled(true);
  log.add(a, 0, 5);
  log.add(c, 2, 2);  // empty interval: dropped
  log.add(c, 7, 3);  // inverted interval: dropped
  ASSERT_EQ(log.spans().size(), 1u);
  EXPECT_EQ(log.spans()[0].lane, a);
  EXPECT_EQ(log.spans()[0].end, 5u);
}

TEST(TraceJson, WellFormedDeterministicAndComplete) {
  SpanLog log;
  log.set_enabled(true);
  const auto m0 = log.lane("smache", "awake");
  const auto m1 = log.lane("dram", "read txn");
  log.add(m0, 0, 10);
  log.add(m1, 3, 8);
  log.add(m0, 12, 15);
  const std::string json = obs::to_trace_json(log);
  expect_balanced_json(json);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"smache-sim\""), std::string::npos);
  // One thread_name metadata event per lane, one X event per span.
  EXPECT_EQ(count_substr(json, "\"thread_name\""), log.lanes().size());
  EXPECT_EQ(count_substr(json, "\"ph\": \"X\""), log.spans().size());
  // ts/dur in cycle-microseconds: the 3-cycle dram span renders exactly.
  EXPECT_NE(json.find("\"ts\": 3, \"dur\": 5"), std::string::npos);
  EXPECT_EQ(obs::to_trace_json(log), json);  // byte-deterministic
}

TEST(TraceJson, EscapesLaneNames) {
  SpanLog log;
  log.set_enabled(true);
  const auto lane = log.lane("we\"ird", "ev\\ent\n");
  log.add(lane, 1, 2);
  const std::string json = obs::to_trace_json(log);
  expect_balanced_json(json);
  EXPECT_NE(json.find("we\\\"ird"), std::string::npos);
  EXPECT_NE(json.find("ev\\\\ent\\n"), std::string::npos);
}

// ---- engine-level cycle attribution ----

TEST(Profile, SmacheAttributionSumsToTotal) {
  const auto init = test_support::random_grid(8, 8, 11);
  EngineOptions opts = EngineOptions::smache();
  opts.profile = true;
  const auto res = Engine(opts).run(small_problem(8, 3), init);
  expect_attribution(res.metrics);
  EXPECT_TRUE(mhas(res.metrics, "sched/module/smache/awake"));
  EXPECT_TRUE(mhas(res.metrics, "sched/module/dram/awake"));
  EXPECT_TRUE(mhas(res.metrics, "sched/module/kernel/awake"));
}

TEST(Profile, BaselineAttributionSumsToTotal) {
  const auto init = test_support::random_grid(8, 8, 12);
  EngineOptions opts = EngineOptions::baseline();
  opts.profile = true;
  const auto res = Engine(opts).run(small_problem(8, 3), init);
  expect_attribution(res.metrics);
  EXPECT_TRUE(mhas(res.metrics, "sched/module/baseline/awake"));
}

TEST(Profile, CascadeDepthTwoAttributionSumsToTotal) {
  ProblemSpec p = small_problem(9, 4);
  p.bc = grid::BoundarySpec::all_open();  // periodic cannot cascade
  const auto init = test_support::random_grid(9, 9, 13);
  EngineOptions opts = EngineOptions::smache();
  opts.profile = true;
  const auto res = Engine(opts).run_cascade(p, init, 2);
  expect_attribution(res.metrics);
  // Cascade registers one kernel module per stage.
  EXPECT_TRUE(mhas(res.metrics, "sched/module/kernel/stage0/awake"));
  EXPECT_TRUE(mhas(res.metrics, "sched/module/kernel/stage1/awake"));
}

TEST(Profile, TiledRunFoldsPerTileSnapshotsDeterministically) {
  ProblemSpec p = small_problem(10, 2);
  p.bc = grid::BoundarySpec::all_open();
  const auto init = test_support::random_grid(10, 10, 14);
  EngineOptions opts = EngineOptions::smache();
  opts.profile = true;
  TilingSpec serial{2, 2, 1, 1};
  TilingSpec threaded{2, 2, 2, 1};
  const auto a = Engine(opts).run_tiled(p, init, serial);
  const auto b = Engine(opts).run_tiled(p, init, threaded);
  // Each tile sub-run satisfies the invariant, so the folded counters
  // (sums across tiles and passes) satisfy it additively.
  expect_attribution(a.metrics);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].path, b.metrics[i].path);
    EXPECT_EQ(a.metrics[i].value, b.metrics[i].value)
        << "thread-count-dependent metric: " << a.metrics[i].path;
  }
}

TEST(Profile, MultiFieldHotspotAttributionSumsToTotal) {
  ProblemSpec p;
  p.height = 8;
  p.width = 8;
  p.shape = sweep::make_stencil("star5");
  p.bc = grid::BoundarySpec::all_open();
  p.kernel = sweep::make_kernel("hotspot");
  p.steps = 2;
  const auto init = sweep::make_input("hotspot-chip", 8, 8, 1, 15);
  EngineOptions opts = EngineOptions::smache();
  opts.profile = true;
  const auto res = Engine(opts).run(p, init);
  expect_attribution(res.metrics);
}

TEST(Profile, ObservabilityNeverPerturbsTheSimulation) {
  const auto init = test_support::random_grid(8, 8, 16);
  const ProblemSpec p = small_problem(8, 3);
  const auto plain = Engine(EngineOptions::smache()).run(p, init);
  EngineOptions opts = EngineOptions::smache();
  opts.profile = true;
  opts.trace = true;
  const auto obs_run = Engine(opts).run(p, init);
  EXPECT_EQ(plain.cycles, obs_run.cycles);
  EXPECT_EQ(plain.warmup_cycles, obs_run.warmup_cycles);
  EXPECT_EQ(plain.dram.read_requests, obs_run.dram.read_requests);
  EXPECT_EQ(plain.dram.words_read, obs_run.dram.words_read);
  EXPECT_EQ(plain.dram.words_written, obs_run.dram.words_written);
  EXPECT_EQ(plain.dram.row_hits, obs_run.dram.row_hits);
  EXPECT_EQ(plain.dram.row_misses, obs_run.dram.row_misses);
  EXPECT_EQ(plain.output, obs_run.output);
  // And the unprofiled run carries no observability payload at all.
  EXPECT_TRUE(plain.metrics.empty());
  EXPECT_TRUE(plain.trace_json.empty());
  EXPECT_FALSE(obs_run.metrics.empty());
  EXPECT_FALSE(obs_run.trace_json.empty());
}

TEST(Profile, WakeReasonsStallsAndWatermarksPopulate) {
  const auto init = test_support::random_grid(8, 8, 17);
  EngineOptions opts = EngineOptions::smache();
  opts.profile = true;
  const auto res = Engine(opts).run(small_problem(8, 2), init);
  const auto& m = res.metrics;
  // Activity gating puts starved modules to sleep, so channel wakes must
  // have happened on any real run.
  EXPECT_GT(mval(m, "sched/wakes/channel"), 0u);
  EXPECT_TRUE(mhas(m, "sched/wakes/timer"));
  EXPECT_TRUE(mhas(m, "sched/wakes/explicit"));
  // Stall attribution at the choke points: the gather FSM waits on DRAM
  // data early in every pass.
  EXPECT_GT(mval(m, "smache/stall/dram_wait"), 0u);
  EXPECT_TRUE(mhas(m, "smache/stall/kernel_backpressure"));
  EXPECT_TRUE(mhas(m, "dram/stall/backpressure"));
  // FIFO high-water marks: the kernel input queue saw at least one word.
  EXPECT_GT(mval(m, "kernel/in/hwm"), 0u);
  EXPECT_GT(mval(m, "dram/read_req/hwm"), 0u);
}

// ---- engine-level trace export ----

TEST(Trace, EngineTraceJsonIsWellFormed) {
  const auto init = test_support::random_grid(8, 8, 18);
  EngineOptions opts = EngineOptions::smache();
  opts.trace = true;
  const auto res = Engine(opts).run(small_problem(8, 2), init);
  ASSERT_FALSE(res.trace_json.empty());
  expect_balanced_json(res.trace_json);
  EXPECT_NE(res.trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(res.trace_json.find("\"smache-sim\""), std::string::npos);
  EXPECT_NE(res.trace_json.find("read txn"), std::string::npos);
  EXPECT_GT(count_substr(res.trace_json, "\"ph\": \"X\""), 0u);
}

TEST(Trace, TiledRunsRejectSpanExport) {
  ProblemSpec p = small_problem(10, 1);
  p.bc = grid::BoundarySpec::all_open();
  const auto init = test_support::random_grid(10, 10, 19);
  EngineOptions opts = EngineOptions::smache();
  opts.trace = true;
  EXPECT_THROW((void)Engine(opts).run_tiled(p, init, TilingSpec{2, 2, 1, 1}),
               contract_error);
}

// ---- sweep telemetry ----

SweepSpec tiny_sweep() {
  SweepSpec spec;
  spec.grids = {{8, 8}, {9, 9}};
  spec.steps = {2};
  return spec;
}

TEST(SweepTelemetry, MetricsOptionPopulatesSnapshotsWithoutMovingDigest) {
  const SweepSpec spec = tiny_sweep();
  const auto plain = SweepExecutor(ExecutorOptions{}).run(spec);
  ExecutorOptions with;
  with.metrics = true;
  const auto profiled = SweepExecutor(with).run(spec);
  EXPECT_EQ(SweepExecutor::digest(plain), SweepExecutor::digest(profiled));
  ASSERT_EQ(profiled.size(), plain.size());
  for (const ScenarioResult& r : profiled) {
    ASSERT_TRUE(r.ok) << r.error;
    expect_attribution(r.run.metrics);
  }
  for (const ScenarioResult& r : plain) EXPECT_TRUE(r.run.metrics.empty());
}

TEST(SweepTelemetry, TraceOptionSkipsTiledScenarios) {
  SweepSpec spec = tiny_sweep();
  spec.grids = {{8, 8}};
  spec.tiles = {{1, 1}, {2, 2}};
  spec.boundaries = {"open"};
  ExecutorOptions opts;
  opts.trace = true;
  const auto results = SweepExecutor(opts).run(spec);
  ASSERT_EQ(results.size(), 2u);
  for (const ScenarioResult& r : results) {
    ASSERT_TRUE(r.ok) << r.error;
    const bool untiled = r.scenario.tiles.height == 1 &&
                         r.scenario.tiles.width == 1;
    EXPECT_EQ(!r.run.trace_json.empty(), untiled) << r.scenario.label;
    if (untiled) expect_balanced_json(r.run.trace_json);
  }
}

TEST(SweepTelemetry, ProgressCallbackCountsEveryScenarioOnce) {
  std::vector<SweepProgress> seen;
  ExecutorOptions opts;
  opts.progress = [&seen](const SweepProgress& p) { seen.push_back(p); };
  const auto results = SweepExecutor(opts).run(tiny_sweep());
  // Once after the (empty) prefill, then once per finished scenario.
  ASSERT_EQ(seen.size(), results.size() + 1);
  EXPECT_EQ(seen.front().done, 0u);
  EXPECT_EQ(seen.front().total, results.size());
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].done, seen[i - 1].done + 1);
    EXPECT_EQ(seen[i].total, results.size());
    EXPECT_GE(seen[i].eta_ms, 0.0);
  }
  EXPECT_EQ(seen.back().done, results.size());
  EXPECT_EQ(seen.back().executed, results.size());
  EXPECT_EQ(seen.back().store_hits, 0u);
  EXPECT_EQ(seen.back().failed, 0u);
  EXPECT_EQ(seen.back().skipped, 0u);
}

TEST(SweepTelemetry, StoreCountersTrackHitsMissesAndAppends) {
  namespace fs = std::filesystem;
  const std::string dir = "obs_store_tmp";
  fs::remove_all(dir);
  const SweepSpec spec = tiny_sweep();
  {
    sweep::ResultStore store(dir);
    ExecutorOptions opts;
    opts.store = &store;
    // Cold run: every scenario misses, executes and is journaled.
    (void)SweepExecutor(opts).run(spec);
    auto s = store.stats();
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.appends, 2u);
    EXPECT_EQ(s.hits, 0u);
    // Warm rerun against the same store: pure hits, nothing appended.
    (void)SweepExecutor(opts).run(spec);
    s = store.stats();
    EXPECT_EQ(s.hits, 2u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.appends, 2u);
    EXPECT_EQ(s.retries, 0u);
    EXPECT_EQ(s.dropped, 0u);
  }
  fs::remove_all(dir);
}

TEST(SweepTelemetry, StoreHitAndMetricsColumnsAppearOnlyWhenRequested) {
  ExecutorOptions opts;
  opts.metrics = true;
  const auto results = SweepExecutor(opts).run(tiny_sweep());

  const EmitOptions off;  // defaults: wall-class columns all excluded
  EXPECT_EQ(sweep::emit_json(results, off).find("store_hit"),
            std::string::npos);
  EXPECT_EQ(sweep::emit_json(results, off).find("\"metrics\""),
            std::string::npos);
  EXPECT_EQ(sweep::emit_csv(results, off).find("store_hit"),
            std::string::npos);

  EmitOptions on;
  on.include_wall = true;
  on.include_store_hit = true;
  on.include_metrics = true;
  const std::string json = sweep::emit_json(results, on);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"store_hit\": false"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\": {"), std::string::npos);
  EXPECT_NE(json.find("sched/cycles/total"), std::string::npos);
  const std::string csv = sweep::emit_csv(results, on);
  EXPECT_NE(csv.find(",wall_ms,store_hit,metrics"), std::string::npos);
  EXPECT_NE(csv.find("sched/cycles/total="), std::string::npos);
}

}  // namespace
}  // namespace smache

// Exhaustive cross-validation of the planner's gather table against the
// boundary resolver: for EVERY cell of EVERY case and EVERY stencil
// offset, the gather source must denote exactly the element that
// grid::resolve says the stencil references. This is the strongest static
// check on the zone/case machinery: if any zone were not truly uniform,
// some cell would disagree.
#include <gtest/gtest.h>

#include "grid/boundary.hpp"
#include "model/planner.hpp"

namespace smache::model {
namespace {

struct Config {
  const char* name;
  std::size_t h, w;
  grid::StencilShape shape;
  grid::BoundarySpec bc;
};

class GatherCrossVal : public ::testing::TestWithParam<Config> {};

TEST_P(GatherCrossVal, EveryCellEveryOffset) {
  const Config& cfg = GetParam();
  for (auto impl : {StreamImpl::Hybrid, StreamImpl::RegisterOnly}) {
    PlannerOptions opts;
    opts.stream_impl = impl;
    const BufferPlan plan =
        Planner(opts).plan(cfg.h, cfg.w, cfg.shape, cfg.bc);
    const auto W = static_cast<std::int64_t>(cfg.w);

    for (std::size_t r = 0; r < cfg.h; ++r) {
      for (std::size_t c = 0; c < cfg.w; ++c) {
        const std::size_t case_id = plan.cases().case_of(r, c);
        const auto& sources = plan.gather(case_id);
        ASSERT_EQ(sources.size(), cfg.shape.size());
        for (std::size_t j = 0; j < cfg.shape.size(); ++j) {
          const grid::Offset2 o = cfg.shape.offsets()[j];
          const grid::Resolved res =
              grid::resolve(r, c, o.dr, o.dc, cfg.h, cfg.w, cfg.bc);
          const GatherSource& g = sources[j];
          SCOPED_TRACE(std::string(cfg.name) + " cell(" +
                       std::to_string(r) + "," + std::to_string(c) +
                       ") offset " + std::to_string(j));
          switch (res.kind) {
            case grid::Resolved::Kind::Missing:
              EXPECT_EQ(g.kind, SourceKind::Skip);
              break;
            case grid::Resolved::Kind::Constant:
              ASSERT_EQ(g.kind, SourceKind::Constant);
              EXPECT_EQ(g.constant, res.constant);
              break;
            case grid::Resolved::Kind::Cell: {
              const std::int64_t d =
                  (static_cast<std::int64_t>(res.r) -
                   static_cast<std::int64_t>(r)) *
                      W +
                  (static_cast<std::int64_t>(res.c) -
                   static_cast<std::int64_t>(c));
              if (g.kind == SourceKind::Window) {
                // The tap age must encode exactly the stream distance.
                EXPECT_EQ(static_cast<std::int64_t>(plan.center_age()) -
                              static_cast<std::int64_t>(g.window_age),
                          d);
              } else {
                ASSERT_EQ(g.kind, SourceKind::Static);
                const auto& bank =
                    plan.static_buffers()[g.static_index];
                EXPECT_EQ(bank.grid_row, res.r);
                EXPECT_EQ(static_cast<std::int64_t>(c) + g.col_shift,
                          static_cast<std::int64_t>(res.c));
              }
              break;
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GatherCrossVal,
    ::testing::Values(
        Config{"paper", 11, 11, grid::StencilShape::von_neumann4(),
               grid::BoundarySpec::paper_example()},
        Config{"moore_torus", 9, 12, grid::StencilShape::moore9(),
               grid::BoundarySpec::all_periodic()},
        Config{"cross2_periodic_rows", 16, 8, grid::StencilShape::cross(2),
               {grid::AxisBoundary::periodic(), grid::AxisBoundary::open()}},
        Config{"mirror_plus", 7, 7, grid::StencilShape::plus5(),
               grid::BoundarySpec::all_mirror()},
        Config{"const_halo", 8, 10, grid::StencilShape::von_neumann4(),
               {grid::AxisBoundary::constant_halo(5),
                grid::AxisBoundary::constant_halo(9)}},
        Config{"upwind_channel", 12, 6, grid::StencilShape::upwind3(),
               {grid::AxisBoundary::periodic(),
                grid::AxisBoundary::mirror()}},
        Config{"tiny_periodic", 3, 11, grid::StencilShape::von_neumann4(),
               {grid::AxisBoundary::periodic(), grid::AxisBoundary::open()}},
        Config{"one_row_fir", 1, 24,
               grid::StencilShape::custom("fir", {{0, -2}, {0, 0}, {0, 2}}),
               {grid::AxisBoundary::open(), grid::AxisBoundary::periodic()}}),
    [](const ::testing::TestParamInfo<Config>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace smache::model

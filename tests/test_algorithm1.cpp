// Tests for Algorithm 1 (optimal buffer size calculation): the paper's
// worked intuition, optimality of the interval variant against exhaustive
// subset enumeration, and the outer max/sum composition.
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "model/algorithm1.hpp"

namespace smache::model {
namespace {

RangeSpec make_range(std::vector<std::int64_t> offsets,
                     std::uint64_t length) {
  RangeSpec r;
  r.start = 0;
  r.length = length;
  r.tuple.offsets = std::move(offsets);
  return r;
}

TEST(TupleSpec, ReachMatchesPaperExample) {
  // Paper: tuple (m[i], m[i-1], m[i+1], m[i-k], m[i+k]) has reach 2k.
  const std::int64_t k = 1000;
  TupleSpec t{{0, -1, 1, -k, k}};
  EXPECT_EQ(t.reach(), 2 * k);
  EXPECT_EQ(t.min_offset(), -k);
  EXPECT_EQ(t.max_offset(), k);
}

TEST(Algorithm1, SmallRangePrefersStaticForFarOffsets) {
  // Range of 11 elements (one grid row), tuple with a whole-grid offset:
  // moving the far element to a static buffer costs 11, keeping it in the
  // stream costs ~110 of reach.
  const auto r = make_range({-1, 0, 1, 110}, 11);
  const auto s = calc_opt_sz(r, Algo1Mode::OptimalInterval);
  EXPECT_EQ(s.static_offsets, (std::vector<std::int64_t>{110}));
  EXPECT_EQ(s.stream_reach, 2u);
  EXPECT_EQ(s.static_elems, 11u);
  EXPECT_EQ(s.total(), 13u);
}

TEST(Algorithm1, LargeRangePrefersStream) {
  // Same tuple over a huge range: static buffering one element costs the
  // whole range; the window wins.
  const auto r = make_range({-1, 0, 1, 110}, 100000);
  const auto s = calc_opt_sz(r, Algo1Mode::OptimalInterval);
  EXPECT_TRUE(s.static_offsets.empty());
  EXPECT_EQ(s.stream_reach, 111u);
}

TEST(Algorithm1, PaperPrefixMatchesIntervalOnSymmetricTuples) {
  // For symmetric tuples the farthest-first prefix order IS the optimal
  // interval shrink order, so the variants agree.
  for (std::uint64_t len : {1u, 5u, 40u, 1000u}) {
    const auto r = make_range({-50, -1, 0, 1, 50}, len);
    const auto a = calc_opt_sz(r, Algo1Mode::PaperPrefix);
    const auto b = calc_opt_sz(r, Algo1Mode::OptimalInterval);
    EXPECT_EQ(a.total(), b.total()) << "range length " << len;
  }
}

TEST(Algorithm1, IntervalNeverWorseThanPaperPrefix) {
  Rng rng(0xA160);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::int64_t> offs;
    const auto n = 1 + rng.next_below(7);
    for (std::uint64_t i = 0; i < n; ++i)
      offs.push_back(rng.next_in(-200, 200));
    // Deduplicate (tuples are sets of offsets).
    std::sort(offs.begin(), offs.end());
    offs.erase(std::unique(offs.begin(), offs.end()), offs.end());
    const auto r = make_range(offs, 1 + rng.next_below(300));
    const auto paper = calc_opt_sz(r, Algo1Mode::PaperPrefix);
    const auto opt = calc_opt_sz(r, Algo1Mode::OptimalInterval);
    EXPECT_LE(opt.total(), paper.total());
  }
}

TEST(Algorithm1, IntervalMatchesExhaustiveOracle) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::int64_t> offs;
    const auto n = 1 + rng.next_below(10);
    for (std::uint64_t i = 0; i < n; ++i)
      offs.push_back(rng.next_in(-500, 500));
    std::sort(offs.begin(), offs.end());
    offs.erase(std::unique(offs.begin(), offs.end()), offs.end());
    const auto r = make_range(offs, 1 + rng.next_below(400));
    const auto opt = calc_opt_sz(r, Algo1Mode::OptimalInterval);
    const auto oracle = exhaustive_best_split(r);
    EXPECT_EQ(opt.total(), oracle.total())
        << "interval variant must be subset-optimal";
  }
}

TEST(Algorithm1, SplitPartitionsTheTuple) {
  const auto r = make_range({-7, -2, 0, 3, 9, 40}, 13);
  for (auto mode : {Algo1Mode::PaperPrefix, Algo1Mode::OptimalInterval}) {
    const auto s = calc_opt_sz(r, mode);
    EXPECT_EQ(s.stream_offsets.size() + s.static_offsets.size(),
              r.tuple.offsets.size());
    EXPECT_EQ(s.static_elems, s.static_offsets.size() * r.length);
  }
}

TEST(Algorithm1, SingleOffsetTuple) {
  const auto r = make_range({5}, 100);
  const auto s = calc_opt_sz(r, Algo1Mode::OptimalInterval);
  EXPECT_EQ(s.stream_reach, 0u);
  EXPECT_TRUE(s.static_offsets.empty());
}

TEST(Algorithm1, EmptyTupleRejected) {
  const auto r = make_range({}, 10);
  EXPECT_THROW(calc_opt_sz(r, Algo1Mode::OptimalInterval),
               smache::contract_error);
}

TEST(Algorithm1, OuterLoopMaxStreamPlusSumStatic) {
  // Paper: tot = max_j(stream) + sum_j(static). Two ranges: one keeps a
  // wide window, one pushes an element static; the totals compose.
  std::vector<RangeSpec> ranges;
  ranges.push_back(make_range({-1, 0, 1}, 1000));        // reach 2, no static
  ranges.push_back(make_range({-1, 0, 1, 500}, 4));      // static wins: 4
  ranges.push_back(make_range({-30, 0, 30}, 100000));    // reach 60
  const auto sizes =
      optimal_buffer_sizes(ranges, Algo1Mode::OptimalInterval);
  EXPECT_EQ(sizes.stream_buffer_reach, 60u);
  EXPECT_EQ(sizes.static_total_elems, 4u);
  EXPECT_EQ(sizes.total(), 64u);
  ASSERT_EQ(sizes.per_range.size(), 3u);
}

TEST(Algorithm1, PaperGridScenario) {
  // The paper's 11x11 circular-boundary problem expressed in the formal
  // model: top row (range of 11) has a tuple element (H-1)*W away; the
  // optimiser should place exactly that element in a static buffer and
  // keep the +/-W window for the mid range.
  const std::int64_t W = 11;
  std::vector<RangeSpec> ranges;
  ranges.push_back(make_range({-1, 1, W, 10 * W}, 11));        // top row
  ranges.push_back(make_range({-W, -1, 1, W}, 9 * 11));        // middle
  ranges.push_back(make_range({-10 * W, -W, -1, 1}, 11));      // bottom row
  const auto sizes =
      optimal_buffer_sizes(ranges, Algo1Mode::OptimalInterval);
  EXPECT_EQ(sizes.per_range[0].static_offsets,
            (std::vector<std::int64_t>{10 * W}));
  EXPECT_EQ(sizes.per_range[2].static_offsets,
            (std::vector<std::int64_t>{-10 * W}));
  EXPECT_TRUE(sizes.per_range[1].static_offsets.empty());
  EXPECT_EQ(sizes.stream_buffer_reach, 2u * W);
  EXPECT_EQ(sizes.static_total_elems, 22u);  // the T and B buffers
}

}  // namespace
}  // namespace smache::model

// Unit tests for Grid<T>: indexing, conversions, equality.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/assert.hpp"
#include "grid/grid.hpp"

namespace smache::grid {
namespace {

TEST(Grid, RowMajorLayout) {
  Grid<int> g(3, 4);
  int v = 0;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) g.at(r, c) = v++;
  EXPECT_EQ(g[0], 0);
  EXPECT_EQ(g[5], g.at(1, 1));
  EXPECT_EQ(g.linear(2, 3), 11u);
  EXPECT_EQ(g.row_of(7), 1u);
  EXPECT_EQ(g.col_of(7), 3u);
}

TEST(Grid, FillConstructor) {
  Grid<int> g(2, 2, 9);
  EXPECT_EQ(g.at(0, 0), 9);
  EXPECT_EQ(g.at(1, 1), 9);
  EXPECT_EQ(g.size(), 4u);
}

TEST(Grid, BoundsChecked) {
  Grid<int> g(2, 3);
  EXPECT_THROW(g.at(2, 0), contract_error);
  EXPECT_THROW(g.at(0, 3), contract_error);
  EXPECT_THROW(g[6], contract_error);
  EXPECT_THROW(Grid<int>(0, 3), contract_error);
}

TEST(Grid, WordRoundTripInt) {
  Grid<std::int32_t> g(2, 2);
  g.at(0, 0) = -7;
  g.at(1, 1) = 123456;
  const auto words = g.to_words();
  const auto back = Grid<std::int32_t>::from_words(2, 2, words);
  EXPECT_EQ(back, g);
}

TEST(Grid, WordRoundTripFloat) {
  Grid<float> g(1, 3);
  g.at(0, 0) = 1.5f;
  g.at(0, 1) = -0.25f;
  g.at(0, 2) = 1e-20f;
  EXPECT_EQ(Grid<float>::from_words(1, 3, g.to_words()), g);
}

TEST(Grid, FromWordsRejectsWrongSize) {
  std::vector<word_t> w(5);
  EXPECT_THROW((Grid<word_t>::from_words(2, 3, w)), contract_error);
}

TEST(Grid, RejectsDimensionsThatOverflowSizeT) {
  // height * width would wrap around std::size_t: the constructor and
  // from_words must refuse the pair BEFORE sizing the cell vector (a
  // wrapped product would silently allocate a tiny grid).
  constexpr std::size_t big = std::numeric_limits<std::size_t>::max() / 2;
  EXPECT_THROW((Grid<word_t>(big, 3)), contract_error);
  EXPECT_THROW((Grid<word_t>(3, big)), contract_error);
  std::vector<word_t> w(6);
  EXPECT_THROW((Grid<word_t>::from_words(big, 3, w)), contract_error);
  // The largest non-overflowing shapes are still accepted in principle:
  // the check is exact, not a heuristic bound (1 x N always fits).
  EXPECT_NO_THROW((Grid<word_t>(1, 6), Grid<word_t>(6, 1)));
}

TEST(Grid, EqualityIncludesShape) {
  Grid<int> a(2, 3, 1), b(3, 2, 1);
  EXPECT_FALSE(a == b);
  Grid<int> c(2, 3, 1);
  EXPECT_TRUE(a == c);
  c.at(1, 2) = 2;
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace smache::grid

// End-to-end baseline (unbuffered) design tests: correctness against the
// reference, the paper's traffic accounting (tuple-size reads per point),
// and the cycle regime the comparison relies on.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "support/test_grids.hpp"

namespace smache {
namespace {

grid::Grid<word_t> random_grid(std::size_t h, std::size_t w,
                               std::uint64_t seed) {
  return test_support::random_grid(h, w, seed, 1000);
}

TEST(BaselineEngine, PaperProblemMatchesReference) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 5;
  const auto init = random_grid(11, 11, 21);
  EXPECT_EQ(Engine(EngineOptions::baseline()).run(p, init).output,
            reference_run(p, init));
}

TEST(BaselineEngine, HundredStepsMatchesReference) {
  const ProblemSpec p = ProblemSpec::paper_example();
  const auto init = random_grid(11, 11, 22);
  EXPECT_EQ(Engine(EngineOptions::baseline()).run(p, init).output,
            reference_run(p, init));
}

TEST(BaselineEngine, ReadsTupleSizeWordsPerPoint) {
  // The paper counts 4 reads per grid point for the baseline (even at
  // boundaries, where a dummy read is issued) plus one write per point.
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 7;
  const auto res =
      Engine(EngineOptions::baseline()).run(p, random_grid(11, 11, 23));
  const std::uint64_t n = p.cells();
  EXPECT_EQ(res.dram.words_read, n * p.steps * 4);
  EXPECT_EQ(res.dram.words_written, n * p.steps);
}

TEST(BaselineEngine, CycleRegimeAroundFivePerPoint) {
  // Shared-bus accounting: 4 read issues + 1 write drain per point, plus
  // pipeline bubbles — the paper reports 5.29 cycles/point.
  const ProblemSpec p = ProblemSpec::paper_example();
  const auto res =
      Engine(EngineOptions::baseline()).run(p, random_grid(11, 11, 24));
  const double per_point = static_cast<double>(res.cycles) /
                           static_cast<double>(p.cells() * p.steps);
  EXPECT_GE(per_point, 4.5);
  EXPECT_LE(per_point, 7.0);
}

TEST(BaselineEngine, MirrorAndConstantBoundariesMatchReference) {
  ProblemSpec p;
  p.height = 9;
  p.width = 7;
  p.shape = grid::StencilShape::von_neumann4();
  p.bc = {grid::AxisBoundary::mirror(),
          grid::AxisBoundary::constant_halo(to_word<std::int32_t>(9))};
  p.steps = 3;
  const auto init = random_grid(9, 7, 25);
  EXPECT_EQ(Engine(EngineOptions::baseline()).run(p, init).output,
            reference_run(p, init));
}

TEST(BaselineEngine, Moore9MatchesReference) {
  ProblemSpec p;
  p.height = 8;
  p.width = 9;
  p.shape = grid::StencilShape::moore9();
  p.bc = grid::BoundarySpec::all_periodic();
  p.steps = 2;
  const auto init = random_grid(8, 9, 26);
  EXPECT_EQ(Engine(EngineOptions::baseline()).run(p, init).output,
            reference_run(p, init));
}

TEST(BaselineEngine, UsesNoBram) {
  const ProblemSpec p = ProblemSpec::paper_example();
  const auto res =
      Engine(EngineOptions::baseline()).run(p, random_grid(11, 11, 27));
  EXPECT_EQ(res.resources.b_total, 0u)
      << "the unbuffered baseline must not instantiate BRAM";
  EXPECT_GT(res.resources.r_total, 0u);
}

TEST(BaselineEngine, FasterClockThanSmache) {
  // The paper's baseline synthesises at 372.9 MHz vs Smache's 235.3 MHz:
  // less gather logic means a shorter critical path.
  const ProblemSpec p = ProblemSpec::paper_example();
  const auto b = Engine(EngineOptions::baseline()).elaborate_only(p);
  const auto s = Engine(EngineOptions::smache()).elaborate_only(p);
  EXPECT_GT(b.timing.fmax_mhz, s.timing.fmax_mhz);
}

}  // namespace
}  // namespace smache

// Unit tests for the boundary-case enumeration (AxisZones / CaseMap),
// including the paper's nine-case example.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/assert.hpp"
#include "grid/zones.hpp"

namespace smache::grid {
namespace {

TEST(AxisZones, FourPointStencilAxis) {
  // offsets -1..+1 on an 11-long axis: zones {0, Mid, 10}.
  AxisZones z(11, -1, 1);
  EXPECT_EQ(z.count(), 3u);
  EXPECT_EQ(z.lo_span(), 1u);
  EXPECT_EQ(z.hi_span(), 1u);
  EXPECT_EQ(z.zone_of(0), 0u);
  EXPECT_EQ(z.zone_of(1), z.mid());
  EXPECT_EQ(z.zone_of(9), z.mid());
  EXPECT_EQ(z.zone_of(10), 2u);
  EXPECT_TRUE(z.is_exact(0));
  EXPECT_FALSE(z.is_exact(z.mid()));
  EXPECT_EQ(z.exact_coord(2), 10u);
  EXPECT_EQ(z.population(z.mid()), 9u);
  EXPECT_EQ(z.population(0), 1u);
}

TEST(AxisZones, AsymmetricOffsets) {
  // offsets -3..+1 on a 10-long axis: zones {0,1,2, Mid, 9}.
  AxisZones z(10, -3, 1);
  EXPECT_EQ(z.count(), 5u);
  EXPECT_EQ(z.zone_of(2), 2u);
  EXPECT_EQ(z.zone_of(3), z.mid());
  EXPECT_EQ(z.zone_of(8), z.mid());
  EXPECT_EQ(z.zone_of(9), 4u);
  EXPECT_EQ(z.exact_coord(4), 9u);
}

TEST(AxisZones, PurePositiveOffsets) {
  // offsets 0..+2: no low zones.
  AxisZones z(8, 0, 2);
  EXPECT_EQ(z.count(), 3u);
  EXPECT_EQ(z.mid(), 0u);
  EXPECT_EQ(z.zone_of(0), 0u);
  EXPECT_EQ(z.zone_of(5), 0u);
  EXPECT_EQ(z.zone_of(6), 1u);
  EXPECT_EQ(z.zone_of(7), 2u);
}

TEST(AxisZones, TooShortAxisRejected) {
  EXPECT_THROW(AxisZones(2, -1, 1), smache::contract_error);
  EXPECT_NO_THROW(AxisZones(3, -1, 1));
}

TEST(AxisZones, RepresentativeIsInZone) {
  AxisZones z(11, -2, 2);
  for (std::size_t zone = 0; zone < z.count(); ++zone)
    EXPECT_EQ(z.zone_of(z.representative(zone)), zone);
}

TEST(CaseMap, PaperExampleHasNineCases) {
  const CaseMap cm(11, 11, StencilShape::von_neumann4());
  EXPECT_EQ(cm.case_count(), 9u);
  // Count distinct cases over the whole grid and their populations:
  // 4 corners (pop 1), 4 edges (pop 9), 1 interior (pop 81).
  std::map<std::size_t, std::size_t> pop;
  for (std::size_t r = 0; r < 11; ++r)
    for (std::size_t c = 0; c < 11; ++c) ++pop[cm.case_of(r, c)];
  EXPECT_EQ(pop.size(), 9u);
  std::multiset<std::size_t> sizes;
  for (const auto& [id, n] : pop) {
    sizes.insert(n);
    EXPECT_EQ(n, cm.population(id));
  }
  EXPECT_EQ(sizes.count(1), 4u);
  EXPECT_EQ(sizes.count(9), 4u);
  EXPECT_EQ(sizes.count(81), 1u);
}

TEST(CaseMap, RoundTripIds) {
  const CaseMap cm(10, 12, StencilShape::moore9());
  for (std::size_t zr = 0; zr < cm.rows().count(); ++zr)
    for (std::size_t zc = 0; zc < cm.cols().count(); ++zc) {
      const auto id = cm.case_id(zr, zc);
      EXPECT_EQ(cm.zone_r_of(id), zr);
      EXPECT_EQ(cm.zone_c_of(id), zc);
    }
}

TEST(CaseMap, LabelsAreDistinct) {
  const CaseMap cm(11, 11, StencilShape::von_neumann4());
  std::set<std::string> labels;
  for (std::size_t id = 0; id < cm.case_count(); ++id)
    labels.insert(cm.label(id));
  EXPECT_EQ(labels.size(), cm.case_count());
  EXPECT_EQ(cm.label(cm.case_of(5, 5)), "rowMid/colMid");
  EXPECT_EQ(cm.label(cm.case_of(0, 0)), "row0/col0");
}

TEST(CaseMap, CenterOnlyStencilHasOneCase) {
  const CaseMap cm(5, 5, StencilShape::custom("c", {{0, 0}}));
  EXPECT_EQ(cm.case_count(), 1u);
  EXPECT_EQ(cm.case_of(0, 0), cm.case_of(4, 4));
}

}  // namespace
}  // namespace smache::grid

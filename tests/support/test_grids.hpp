// Shared test fixtures: seeded random grid generation. Every engine-level
// test seeds its own Rng so runs are reproducible; the bound parameter
// controls the value range (0 = full 64-bit words truncated to word_t),
// matching the ranges the individual suites historically used.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"
#include "common/word.hpp"
#include "grid/grid.hpp"

namespace smache::test_support {

inline grid::Grid<word_t> random_grid(std::size_t h, std::size_t w,
                                      std::uint64_t seed,
                                      std::uint64_t bound = 0) {
  Rng rng(seed);
  grid::Grid<word_t> g(h, w);
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = static_cast<word_t>(bound == 0 ? rng.next_u64()
                                          : rng.next_below(bound));
  return g;
}

}  // namespace smache::test_support

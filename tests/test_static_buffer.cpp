// Unit tests for static buffers: synchronous reads, double-buffer swap
// semantics, write-through capture, replica coherence.
#include <gtest/gtest.h>

#include "model/planner.hpp"
#include "rtl/static_buffer.hpp"
#include "sim/simulator.hpp"

namespace smache::rtl {
namespace {

model::StaticBufferSpec make_spec(std::size_t row, std::size_t len,
                                  std::size_t replicas) {
  model::StaticBufferSpec s;
  s.name = "row" + std::to_string(row);
  s.grid_row = row;
  s.length = len;
  s.replicas = replicas;
  s.write_through = true;
  return s;
}

TEST(StaticBuffer, ActiveWriteThenReadBack) {
  sim::Simulator sim;
  StaticBufferBank bank(sim, "b", make_spec(0, 8, 1));
  bank.active_write(3, 77);
  sim.step();
  bank.read(0, 3);
  sim.step();
  EXPECT_EQ(bank.rdata(0), 77u);
}

TEST(StaticBuffer, ShadowInvisibleUntilSwap) {
  sim::Simulator sim;
  StaticBufferBank bank(sim, "b", make_spec(0, 4, 1));
  bank.active_write(0, 1);
  sim.step();
  bank.shadow_write(0, 2);
  sim.step();
  bank.read(0, 0);
  sim.step();
  EXPECT_EQ(bank.rdata(0), 1u) << "shadow data must be hidden before swap";
  bank.swap();
  sim.step();
  bank.read(0, 0);
  sim.step();
  EXPECT_EQ(bank.rdata(0), 2u) << "swap exposes the captured copy";
}

TEST(StaticBuffer, DoubleSwapRestoresOriginal) {
  sim::Simulator sim;
  StaticBufferBank bank(sim, "b", make_spec(0, 4, 1));
  bank.active_write(1, 10);
  sim.step();
  bank.shadow_write(1, 20);
  sim.step();
  bank.swap();
  sim.step();
  bank.swap();
  sim.step();
  bank.read(0, 1);
  sim.step();
  EXPECT_EQ(bank.rdata(0), 10u);
}

TEST(StaticBuffer, ReplicasStayCoherent) {
  sim::Simulator sim;
  StaticBufferBank bank(sim, "b", make_spec(0, 4, 3));
  bank.active_write(2, 5);
  sim.step();
  for (std::size_t rep = 0; rep < 3; ++rep) bank.read(rep, 2);
  sim.step();
  for (std::size_t rep = 0; rep < 3; ++rep)
    EXPECT_EQ(bank.rdata(rep), 5u) << "replica " << rep;
}

TEST(StaticBuffer, ReplicasAllowConcurrentDistinctReads) {
  sim::Simulator sim;
  StaticBufferBank bank(sim, "b", make_spec(0, 4, 2));
  bank.active_write(0, 100);  // one write port per copy: one write/cycle
  sim.step();
  bank.active_write(1, 101);
  sim.step();
  bank.read(0, 0);
  bank.read(1, 1);  // same cycle, different replica: legal
  sim.step();
  EXPECT_EQ(bank.rdata(0), 100u);
  EXPECT_EQ(bank.rdata(1), 101u);
}

TEST(StaticBuffer, ResourceChargeIsTwoCopiesPerReplica) {
  sim::Simulator sim;
  StaticBufferBank bank(sim, "top/static/row0", make_spec(0, 11, 1));
  // 2 copies x physical depth 12 x 32 bits.
  EXPECT_EQ(sim.ledger().total(sim::ResKind::BramBits, "top/static"),
            2u * 12 * 32);
}

TEST(StaticBufferSet, CaptureRoutesByRow) {
  sim::Simulator sim;
  model::PlannerOptions o;
  const auto plan = model::Planner(o).plan(
      11, 11, grid::StencilShape::von_neumann4(),
      grid::BoundarySpec::paper_example());
  StaticBufferSet set(sim, "top", plan);
  ASSERT_EQ(set.count(), 2u);
  // Capture into row 0 and row 10 and an uninteresting row.
  set.capture_output(0, 4, 111);
  sim.step();
  set.capture_output(10, 4, 222);
  sim.step();
  set.capture_output(5, 4, 999);  // no bank holds row 5: must be a no-op
  sim.step();
  set.swap_all();
  sim.step();
  for (std::size_t b = 0; b < set.count(); ++b) {
    set.bank(b).read(0, 4);
  }
  sim.step();
  for (std::size_t b = 0; b < set.count(); ++b) {
    const auto row = set.bank(b).spec().grid_row;
    EXPECT_EQ(set.bank(b).rdata(0), row == 0 ? 111u : 222u);
  }
}

}  // namespace
}  // namespace smache::rtl

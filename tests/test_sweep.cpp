// The sweep subsystem's contract wall:
//   * registry round-trips — every catalogued family resolves by name,
//     seeded families are bit-reproducible, unknown names throw;
//   * cursor/expansion logic — cartesian counts, alias collapsing
//     (baseline ignores impl/threshold, Case-R ignores threshold,
//     elaboration ignores DRAM/input);
//   * malformed-spec rejection — every parser and validator refuses bad
//     input with contract_error instead of guessing;
//   * concurrency determinism — an N-thread sweep over mixed workloads is
//     BYTE-identical (digest, JSON, CSV) to the same sweep at threads=1,
//     including when scenarios fail; this is the executor's core claim.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>

#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "cost/dse.hpp"
#include "sweep/emit.hpp"
#include "sweep/executor.hpp"
#include "sweep/faults.hpp"
#include "sweep/spec.hpp"
#include "sweep/specio.hpp"
#include "sweep/store.hpp"
#include "sweep/workloads.hpp"

namespace smache::sweep {
namespace {

// ---- workload registry ---------------------------------------------------

TEST(WorkloadRegistry, CataloguesAreNonEmptyAndResolvable) {
  EXPECT_GE(stencil_catalogue().size(), 4u);
  EXPECT_GE(boundary_catalogue().size(), 3u);
  EXPECT_GE(input_catalogue().size(), 2u);
  EXPECT_GE(kernel_catalogue().size(), 3u);
  EXPECT_GE(dram_catalogue().size(), 2u);
  for (const auto& f : stencil_catalogue())
    EXPECT_EQ(find_stencil(f.name).name, f.name);
  for (const auto& f : boundary_catalogue())
    EXPECT_EQ(find_boundary(f.name).spec, f.spec);
  for (const auto& f : input_catalogue())
    EXPECT_EQ(find_input(f.name).name, f.name);
  for (const auto& f : kernel_catalogue())
    EXPECT_EQ(find_kernel(f.name).spec.kind, f.spec.kind);
  for (const auto& f : dram_catalogue())
    EXPECT_EQ(find_dram(f.name).name, f.name);
}

TEST(WorkloadRegistry, UnknownNamesThrow) {
  EXPECT_THROW(make_stencil("nope"), contract_error);
  EXPECT_THROW(make_boundary("nope"), contract_error);
  EXPECT_THROW(make_input("nope", 4, 4, 1, 1), contract_error);
  EXPECT_THROW(make_kernel("nope"), contract_error);
  EXPECT_THROW(make_dram("nope"), contract_error);
}

TEST(WorkloadRegistry, StencilFamiliesProduceValidShapes) {
  for (const auto& f : stencil_catalogue()) {
    const grid::StencilShape shape = make_stencil(f.name, 123);
    EXPECT_GE(shape.size(), 3u) << f.name;
    std::set<std::tuple<std::int64_t, std::int64_t, std::int64_t>> seen;
    for (const auto& o : shape.offsets()) seen.insert({o.ds, o.dr, o.dc});
    EXPECT_EQ(seen.size(), shape.size()) << f.name << " has duplicate "
                                            "offsets";
    // Every family fits an 11x11 problem (radius <= 3 by construction);
    // 3D families additionally need a few slices.
    ProblemSpec p;
    p.height = 11;
    p.width = 11;
    if (shape.ds_min() != 0 || shape.ds_max() != 0) p.depth = 4;
    p.shape = shape;
    p.steps = 1;
    EXPECT_NO_THROW(p.validate()) << f.name;
  }
}

TEST(WorkloadRegistry, SeededFamiliesAreReproducible) {
  const auto a = make_stencil("random8", 7);
  const auto b = make_stencil("random8", 7);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), 8u);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.offsets()[i], b.offsets()[i]);
  EXPECT_TRUE(a.contains({0, 0}));

  const auto g1 = make_input("random", 6, 6, 1, 42);
  const auto g2 = make_input("random", 6, 6, 1, 42);
  EXPECT_EQ(g1, g2);
  const auto g3 = make_input("random", 6, 6, 1, 43);
  EXPECT_NE(g1, g3);
}

// ---- cursor / expansion --------------------------------------------------

TEST(SweepSpec, CursorDecodesEveryIndexDistinctly) {
  SweepSpec spec;
  spec.archs = {Architecture::Baseline, Architecture::Smache};
  spec.grids = {{8, 8}, {11, 9}};
  spec.stencils = {"vn4", "moore9"};
  spec.boundaries = {"paper", "island"};
  spec.steps = {1, 2};
  EXPECT_EQ(spec.scenario_count(), 32u);
  std::set<std::string> labels;
  for (std::size_t i = 0; i < spec.scenario_count(); ++i) {
    const Scenario s = spec.scenario_at(i);
    EXPECT_EQ(s.index, i);
    labels.insert(s.label);
  }
  EXPECT_EQ(labels.size(), 32u);  // no aliases in this spec
  EXPECT_EQ(spec.expand().size(), 32u);
  EXPECT_THROW(spec.scenario_at(32), contract_error);
}

TEST(SweepSpec, ExpansionCollapsesAliases) {
  // Baseline ignores impl AND threshold; Case-R ignores threshold: the
  // 2 x 2 x 3 = 12-point cartesian space holds 1 + 1 + 3 distinct runs.
  SweepSpec spec;
  spec.archs = {Architecture::Baseline, Architecture::Smache};
  spec.impls = {model::StreamImpl::RegisterOnly, model::StreamImpl::Hybrid};
  spec.thresholds = {3, 4, 16};
  EXPECT_EQ(spec.scenario_count(), 12u);
  const auto scenarios = spec.expand();
  EXPECT_EQ(scenarios.size(), 5u);
  std::set<std::string> labels;
  for (const auto& s : scenarios) labels.insert(s.label);
  EXPECT_EQ(labels.size(), scenarios.size());
}

TEST(SweepSpec, ElaborationIgnoresDramAndInput) {
  SweepSpec spec;
  spec.mode = Mode::ElaborateOnly;
  spec.drams = {"functional", "ddr"};
  spec.inputs = {"random", "impulse"};
  EXPECT_EQ(spec.scenario_count(), 4u);
  EXPECT_EQ(spec.expand().size(), 1u);
}

TEST(SweepSpec, DepthAliasesToOneForBaselineAndElaboration) {
  // The baseline has no cascade and elaboration runs no passes, so every
  // depth collapses onto the depth-1 point there; only simulated Smache
  // scenarios fan out, and their depth-1 label matches the pre-depth
  // labelling exactly (no /d segment).
  SweepSpec spec;
  spec.archs = {Architecture::Baseline, Architecture::Smache};
  spec.steps = {4};
  spec.depths = {1, 2, 4};
  EXPECT_EQ(spec.scenario_count(), 6u);
  const auto scenarios = spec.expand();
  ASSERT_EQ(scenarios.size(), 4u);  // baseline + smache d1/d2/d4
  for (const auto& s : scenarios) {
    if (s.engine.arch == Architecture::Baseline) {
      EXPECT_EQ(s.depth, 1u);
    }
    if (s.depth > 1)
      EXPECT_NE(s.label.find("/d" + std::to_string(s.depth)),
                std::string::npos)
          << s.label;
    else
      EXPECT_EQ(s.label.find("/d"), std::string::npos) << s.label;
    // Depth is an architecture knob, not part of the workload identity:
    // every depth processes the identical input data.
    EXPECT_EQ(s.seed, scenarios[0].seed) << s.label;
  }

  SweepSpec elab = spec;
  elab.mode = Mode::ElaborateOnly;
  elab.archs = {Architecture::Smache};
  EXPECT_EQ(elab.expand().size(), 1u);
}

TEST(SweepSpec, TilesFanOutForSimulationAndAliasForElaboration) {
  // A tile mesh changes how a simulated scenario executes (both archs run
  // per-tile engine instances), so it fans out there; elaboration runs no
  // passes, so every mesh collapses onto the 1x1 point. The mesh is not
  // part of the workload identity: every tiling sees the same input data.
  SweepSpec spec;
  spec.archs = {Architecture::Baseline, Architecture::Smache};
  spec.steps = {4};
  spec.tiles = {{1, 1}, {2, 2}, {1, 3}};
  EXPECT_EQ(spec.scenario_count(), 6u);
  const auto scenarios = spec.expand();
  ASSERT_EQ(scenarios.size(), 6u);
  for (const auto& s : scenarios) {
    if (s.tiles.height > 1 || s.tiles.width > 1) {
      const std::string seg = "/t" + std::to_string(s.tiles.height) + 'x' +
                              std::to_string(s.tiles.width);
      EXPECT_NE(s.label.find(seg), std::string::npos) << s.label;
    } else {
      EXPECT_EQ(s.label.find("/t"), std::string::npos) << s.label;
    }
    EXPECT_EQ(s.seed, scenarios[0].seed) << s.label;
  }

  SweepSpec elab = spec;
  elab.mode = Mode::ElaborateOnly;
  elab.archs = {Architecture::Smache};
  EXPECT_EQ(elab.expand().size(), 1u);
}

TEST(SweepSpec, RejectsTilesExceedingTheGrid) {
  // More tiles than cells along an axis can never plan, for any boundary
  // or stencil — that is a spec-shape error, rejected up front (geometry
  // failures that depend on the stencil stay per-scenario runtime errors).
  SweepSpec spec;
  spec.grids = {{8, 8}};
  spec.tiles = {{9, 1}};
  try {
    spec.expand();
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds the grid extent"),
              std::string::npos)
        << e.what();
  }
}

TEST(SweepSpec, RejectsIndivisibleStepsDepthPairings) {
  SweepSpec spec;
  spec.steps = {3};
  spec.depths = {2};
  try {
    spec.validate();
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("not a multiple of cascade depth"),
              std::string::npos)
        << e.what();
  }
  // The check applies to the RAW pairing even where depth would alias
  // away (baseline-only sweeps included): a malformed spec is rejected,
  // never reinterpreted.
  spec.archs = {Architecture::Baseline};
  EXPECT_THROW(spec.validate(), contract_error);
  {
    SweepSpec zero;
    zero.depths = {0};
    EXPECT_THROW(zero.validate(), contract_error);
  }
  {
    SweepSpec mixed;  // every steps x depths pairing must divide
    mixed.steps = {4, 6};
    mixed.depths = {1, 2, 4};
    EXPECT_THROW(mixed.validate(), contract_error);  // 6 % 4 != 0
    mixed.steps = {4, 8};
    EXPECT_NO_THROW(mixed.validate());
  }
}

TEST(SweepSpec, SeedsAreLabelStableAndDistinct) {
  SweepSpec spec;
  spec.stencils = {"vn4", "moore9"};
  const auto a = spec.expand();
  // Adding an unrelated dimension entry must not change existing seeds.
  SweepSpec wider = spec;
  wider.stencils = {"vn4", "moore9", "diamond13"};
  const auto b = wider.expand();
  ASSERT_GE(b.size(), a.size());
  for (const auto& s : a) {
    const auto match =
        std::find_if(b.begin(), b.end(), [&](const Scenario& w) {
          return w.label == s.label;
        });
    ASSERT_NE(match, b.end()) << s.label;
    EXPECT_EQ(match->seed, s.seed) << s.label;
  }
  EXPECT_NE(b[0].seed, b[1].seed);
  // A different base seed moves every scenario seed.
  SweepSpec reseeded = spec;
  reseeded.base_seed = 999;
  EXPECT_NE(reseeded.expand()[0].seed, a[0].seed);
}

TEST(SweepSpec, SeedsAreWorkloadIdentityScoped) {
  // Scenarios that differ only in architecture / impl / threshold / DRAM
  // model run the IDENTICAL workload: same seed (so the same input grid)
  // and, for seeded stencil families, the same materialised shape.
  SweepSpec spec;
  spec.archs = {Architecture::Baseline, Architecture::Smache};
  spec.thresholds = {3, 16};
  spec.drams = {"functional", "ddr"};
  spec.stencils = {"random8"};
  const auto scenarios = spec.expand();
  ASSERT_GE(scenarios.size(), 3u);  // baseline, hyb-t3, hyb-t16 x drams
  for (const auto& s : scenarios) {
    EXPECT_EQ(s.seed, scenarios[0].seed) << s.label;
    ASSERT_EQ(s.problem.shape.size(), scenarios[0].problem.shape.size());
    for (std::size_t i = 0; i < s.problem.shape.size(); ++i)
      EXPECT_EQ(s.problem.shape.offsets()[i],
                scenarios[0].problem.shape.offsets()[i])
          << s.label;
  }
}

// ---- malformed specs -----------------------------------------------------

TEST(SweepSpec, RejectsMalformedSpecs) {
  {
    SweepSpec s;
    s.stencils = {"does-not-exist"};
    EXPECT_THROW(s.validate(), contract_error);
  }
  {
    SweepSpec s;
    s.boundaries.clear();
    EXPECT_THROW(s.validate(), contract_error);
  }
  {
    SweepSpec s;
    s.thresholds = {2};  // unplannable
    EXPECT_THROW(s.validate(), contract_error);
  }
  {
    SweepSpec s;
    s.steps = {0};
    EXPECT_THROW(s.validate(), contract_error);
  }
  {
    SweepSpec s;  // Moore-layout kernel with a non-Moore shape
    s.kernels = {"gaussian3x3"};
    s.stencils = {"vn4"};
    EXPECT_THROW(s.validate(), contract_error);
  }
  {
    SweepSpec s;  // grid smaller than the stencil's span
    s.stencils = {"cross3"};
    s.grids = {{6, 6}};
    EXPECT_THROW(s.validate(), contract_error);
  }
  {
    SweepSpec s;  // Moore kernel paired correctly is fine
    s.kernels = {"gaussian3x3"};
    s.stencils = {"moore9"};
    EXPECT_NO_THROW(s.validate());
  }
}

TEST(SweepSpec, ParsersRejectMalformedTokens) {
  EXPECT_THROW(split_list("a,,b"), contract_error);
  EXPECT_THROW(split_list("a,"), contract_error);
  EXPECT_EQ(split_list("").size(), 0u);
  EXPECT_EQ(split_list("a,b,c").size(), 3u);
  EXPECT_THROW(parse_arch("fpga"), contract_error);
  EXPECT_THROW(parse_impl("bram"), contract_error);
  EXPECT_THROW(parse_mode("fast"), contract_error);
  EXPECT_THROW(parse_count("0", "count"), contract_error);
  EXPECT_THROW(parse_count("-3", "count"), contract_error);
  EXPECT_THROW(parse_count("12abc", "count"), contract_error);
  EXPECT_THROW(parse_grid("4x"), contract_error);
  EXPECT_THROW(parse_grid("x4"), contract_error);
  EXPECT_THROW(parse_grid("abc"), contract_error);
  EXPECT_EQ(parse_grid("16").height, 16u);
  EXPECT_EQ(parse_grid("16x24").width, 24u);
}

TEST(SweepSpec, ParseU64CoversTheFullDomain) {
  // Seeds use all 64 bits (zero included) — the CLI must not funnel them
  // through a signed or narrower type.
  EXPECT_EQ(parse_u64("0", "seed"), 0u);
  EXPECT_EQ(parse_u64("1", "seed"), 1u);
  EXPECT_EQ(parse_u64("9223372036854775808", "seed"),
            0x8000000000000000ull);  // 2^63: overflows int64
  EXPECT_EQ(parse_u64("18446744073709551615", "seed"), ~0ull);
  EXPECT_THROW(parse_u64("18446744073709551616", "seed"), contract_error);
  EXPECT_THROW(parse_u64("", "seed"), contract_error);
  EXPECT_THROW(parse_u64("-1", "seed"), contract_error);
  EXPECT_THROW(parse_u64("+3", "seed"), contract_error);
  EXPECT_THROW(parse_u64("12 ", "seed"), contract_error);
  EXPECT_THROW(parse_u64("0x10", "seed"), contract_error);
}

// ---- spec save/load ------------------------------------------------------

TEST(SpecIo, EmitParseRoundTripsExactly) {
  SweepSpec spec;
  spec.archs = {Architecture::Smache, Architecture::Baseline};
  spec.impls = {model::StreamImpl::Hybrid, model::StreamImpl::RegisterOnly};
  spec.thresholds = {3, 4};
  spec.grids = {{11, 11}, {16, 24}};
  spec.drams = {"functional", "stall"};
  spec.steps = {4};
  spec.depths = {1, 2, 4};
  spec.tiles = {{1, 1}, {2, 3}};
  spec.stencils = {"vn4", "random5"};
  spec.boundaries = {"open", "island"};
  spec.kernels = {"average", "max"};
  spec.inputs = {"impulse"};
  spec.base_seed = 0xDEADBEEFCAFEF00Dull;   // needs the full u64 domain
  spec.max_cycles = 3'000'000'000ull;       // above 2^31
  const std::string json = emit_spec_json(spec);
  const SweepSpec loaded = parse_spec_json(json);
  // Byte-exact re-emission, and the same expansion: labels, seeds, depths.
  EXPECT_EQ(emit_spec_json(loaded), json);
  const auto a = spec.expand();
  const auto b = loaded.expand();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].depth, b[i].depth);
    EXPECT_EQ(a[i].tiles.height, b[i].tiles.height);
    EXPECT_EQ(a[i].tiles.width, b[i].tiles.width);
  }
}

TEST(SpecIo, ReloadedSpecReproducesTheDigest) {
  SweepSpec spec;
  spec.grids = {{8, 8}};
  spec.steps = {2};
  spec.depths = {1, 2};
  spec.boundaries = {"open"};
  const auto original = SweepExecutor().run(spec);
  const auto reloaded =
      SweepExecutor().run(parse_spec_json(emit_spec_json(spec)));
  EXPECT_EQ(SweepExecutor::digest(original),
            SweepExecutor::digest(reloaded));
  EXPECT_EQ(emit_json(original), emit_json(reloaded));
  EXPECT_EQ(emit_csv(original), emit_csv(reloaded));
}

TEST(SpecIo, OmittedKeysKeepDefaults) {
  const SweepSpec defaults;
  EXPECT_EQ(emit_spec_json(parse_spec_json("{}")),
            emit_spec_json(defaults));
  const SweepSpec partial =
      parse_spec_json("{\"steps\": [6], \"depths\": [2, 3]}");
  EXPECT_EQ(partial.steps, (std::vector<std::size_t>{6}));
  EXPECT_EQ(partial.depths, (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(partial.stencils, defaults.stencils);
  EXPECT_EQ(partial.base_seed, defaults.base_seed);
}

TEST(SpecIo, RejectsMalformedSpecJson) {
  EXPECT_THROW(parse_spec_json(""), contract_error);
  EXPECT_THROW(parse_spec_json("[]"), contract_error);
  EXPECT_THROW(parse_spec_json("{\"nope\": 1}"), contract_error);
  EXPECT_THROW(parse_spec_json("{\"mode\": \"sim\", \"mode\": \"sim\"}"),
               contract_error);  // duplicate key
  EXPECT_THROW(parse_spec_json("{\"mode\": \"fast\"}"), contract_error);
  EXPECT_THROW(parse_spec_json("{\"steps\": [0]}"), contract_error);
  EXPECT_THROW(parse_spec_json("{\"steps\": [-1]}"), contract_error);
  EXPECT_THROW(parse_spec_json("{\"steps\": [1,]}"), contract_error);
  EXPECT_THROW(parse_spec_json("{\"steps\": 3}"), contract_error);
  EXPECT_THROW(parse_spec_json("{\"grids\": [\"4x\"]}"), contract_error);
  EXPECT_THROW(parse_spec_json("{\"base_seed\": 18446744073709551616}"),
               contract_error);  // overflow
  EXPECT_THROW(parse_spec_json("{\"max_cycles\": 0}"), contract_error);
  EXPECT_THROW(parse_spec_json("{\"smache_sweep_spec\": 2}"),
               contract_error);  // unsupported version
  EXPECT_THROW(parse_spec_json("{} trailing"), contract_error);
  EXPECT_THROW(parse_spec_json("{\"mode\": \"si"), contract_error);
  EXPECT_THROW(parse_spec_json("{\"mode\": \"s\\im\"}"), contract_error);
}

TEST(SpecIo, FileRoundTripThroughDisk) {
  SweepSpec spec;
  spec.steps = {6};
  spec.depths = {1, 3};
  spec.boundaries = {"open"};
  const std::string path = "specio_roundtrip_tmp.json";
  save_spec_file(spec, path);
  const SweepSpec loaded = load_spec_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(emit_spec_json(loaded), emit_spec_json(spec));
  try {
    (void)load_spec_file("does/not/exist.json");
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("does/not/exist.json"),
              std::string::npos);
  }
}

TEST(SpecIo, StoreKeyRoundTripsAndValidates) {
  SweepSpec spec;
  spec.store_dir = "results/store";
  const std::string json = emit_spec_json(spec);
  EXPECT_NE(json.find("\"store\": \"results/store\""), std::string::npos);
  EXPECT_EQ(parse_spec_json(json).store_dir, "results/store");
  // Store-less specs omit the key entirely (byte-compatible with files
  // saved before it existed), and an empty value is rejected, not treated
  // as "no store".
  spec.store_dir.clear();
  EXPECT_EQ(emit_spec_json(spec).find("\"store\""), std::string::npos);
  EXPECT_THROW(parse_spec_json("{\"store\": \"\"}"), contract_error);
}

// ---- executor determinism ------------------------------------------------

SweepSpec mixed_spec() {
  SweepSpec spec;
  spec.grids = {{8, 8}, {11, 9}};
  spec.steps = {2};
  spec.stencils = {"vn4", "moore9", "random5"};
  spec.boundaries = {"paper", "striped", "quadrant", "island"};
  return spec;  // 2 x 3 x 4 = 24 scenario points
}

TEST(SweepExecutor, ThreadedSweepIsBitIdenticalToSerial) {
  const SweepSpec spec = mixed_spec();
  const auto serial = SweepExecutor({.threads = 1}).run(spec);
  const auto threaded = SweepExecutor({.threads = 4}).run(spec);
  ASSERT_EQ(serial.size(), 24u);
  ASSERT_EQ(threaded.size(), 24u);
  EXPECT_EQ(SweepExecutor::digest(serial), SweepExecutor::digest(threaded));
  // Byte-level: the emitted reports (wall times excluded) must be equal.
  EXPECT_EQ(emit_json(serial), emit_json(threaded));
  EXPECT_EQ(emit_csv(serial), emit_csv(threaded));
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].ok) << serial[i].error;
    EXPECT_EQ(serial[i].scenario.label, threaded[i].scenario.label);
    EXPECT_EQ(serial[i].run.cycles, threaded[i].run.cycles);
    EXPECT_EQ(serial[i].output_hash, threaded[i].output_hash);
  }
}

TEST(SweepExecutor, MatchesADirectEngineRun) {
  SweepSpec spec;
  spec.grids = {{11, 11}};
  spec.steps = {3};
  const auto results = SweepExecutor().run(spec);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok) << results[0].error;
  const Scenario& s = results[0].scenario;
  const auto init =
      make_input(s.input, s.problem.height, s.problem.width,
                 s.problem.depth, s.seed);
  const RunResult direct = Engine(s.engine).run(s.problem, init);
  EXPECT_EQ(results[0].run.cycles, direct.cycles);
  EXPECT_EQ(results[0].run.dram.words_read, direct.dram.words_read);
  EXPECT_EQ(results[0].output_hash, hash_grid(*direct.output));
  // Bulky per-scenario state is dropped by default and kept on request —
  // the drop is unambiguous (an empty optional, not a placeholder grid a
  // consumer could mistake for a real 1x1 result).
  EXPECT_FALSE(results[0].run.output.has_value());
  EXPECT_FALSE(results[0].run.plan.has_value());
  ExecutorOptions keep;
  keep.keep_outputs = true;
  const auto kept = SweepExecutor(keep).run(spec);
  EXPECT_EQ(kept[0].run.output, direct.output);
}

TEST(SweepExecutor, DepthSweepIsBitIdenticalToSerial) {
  // Threaded-vs-serial bit-identity with cascade depth in the grid: the
  // executor's core contract must hold when scenarios route through
  // Engine::run_cascade.
  SweepSpec spec;
  spec.grids = {{8, 8}, {10, 10}};
  spec.steps = {4};
  spec.depths = {1, 2, 4};
  spec.stencils = {"vn4", "random5"};
  spec.boundaries = {"open", "island", "quadrant"};
  const auto serial = SweepExecutor({.threads = 1}).run(spec);
  const auto threaded = SweepExecutor({.threads = 4}).run(spec);
  ASSERT_EQ(serial.size(), 36u);  // 2 x 3 x 2 x 3, no aliases
  EXPECT_EQ(SweepExecutor::digest(serial), SweepExecutor::digest(threaded));
  EXPECT_EQ(emit_json(serial), emit_json(threaded));
  EXPECT_EQ(emit_csv(serial), emit_csv(threaded));
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].ok) << serial[i].error;
    EXPECT_EQ(serial[i].run.cycles, threaded[i].run.cycles);
    EXPECT_EQ(serial[i].output_hash, threaded[i].output_hash);
  }
}

TEST(SweepExecutor, DepthScenarioMatchesDirectCascadeRun) {
  SweepSpec spec;
  spec.grids = {{10, 10}};
  spec.steps = {4};
  spec.depths = {2};
  spec.boundaries = {"open"};
  const auto results = SweepExecutor().run(spec);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok) << results[0].error;
  const Scenario& s = results[0].scenario;
  EXPECT_EQ(s.depth, 2u);
  const auto init =
      make_input(s.input, s.problem.height, s.problem.width,
                 s.problem.depth, s.seed);
  const RunResult direct = Engine(s.engine).run_cascade(s.problem, init, 2);
  EXPECT_EQ(results[0].run.cycles, direct.cycles);
  EXPECT_EQ(results[0].run.dram.words_read, direct.dram.words_read);
  EXPECT_EQ(results[0].run.dram.words_written, direct.dram.words_written);
  EXPECT_EQ(results[0].output_hash, hash_grid(*direct.output));
  // The cascade populates warmup (pipeline fill), and the sweep carries it.
  EXPECT_GT(direct.warmup_cycles, 0u);
  EXPECT_EQ(results[0].run.warmup_cycles, direct.warmup_cycles);
  // The fused passes still compute the same answer as the K-step engine.
  const RunResult flat = Engine(s.engine).run(s.problem, init);
  EXPECT_EQ(hash_grid(*flat.output), results[0].output_hash);
}

TEST(SweepExecutor, TiledScenarioMatchesDirectTiledRun) {
  SweepSpec spec;
  spec.grids = {{12, 12}};
  spec.steps = {4};
  spec.tiles = {{2, 2}};
  spec.boundaries = {"open"};
  const auto results = SweepExecutor().run(spec);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok) << results[0].error;
  const Scenario& s = results[0].scenario;
  EXPECT_EQ(s.tiles.height, 2u);
  EXPECT_EQ(s.tiles.width, 2u);
  const auto init =
      make_input(s.input, s.problem.height, s.problem.width,
                 s.problem.depth, s.seed);
  TilingSpec tiling;
  tiling.tiles_r = 2;
  tiling.tiles_c = 2;
  const RunResult direct = Engine(s.engine).run_tiled(s.problem, init, tiling);
  EXPECT_EQ(results[0].run.cycles, direct.cycles);
  EXPECT_EQ(results[0].run.dram.words_read, direct.dram.words_read);
  EXPECT_EQ(results[0].output_hash, hash_grid(*direct.output));
  // Tiling redundantly recomputes halos but never changes the answer: the
  // tiled scenario hashes identically to the untiled one.
  SweepSpec flat = spec;
  flat.tiles = {{1, 1}};
  const auto untiled = SweepExecutor().run(flat);
  ASSERT_EQ(untiled.size(), 1u);
  EXPECT_EQ(untiled[0].output_hash, results[0].output_hash);
}

TEST(SweepExecutor, TiledSweepIsBitIdenticalToSerial) {
  // Threaded-vs-serial bit-identity with the tile mesh in the grid AND
  // intra-scenario tile threads enabled: nesting the executor pool with
  // per-scenario tile pools must stay deterministic.
  SweepSpec spec;
  spec.grids = {{11, 11}};
  spec.steps = {4};
  spec.depths = {1, 2};
  spec.tiles = {{1, 1}, {2, 2}};
  spec.stencils = {"vn4", "moore9"};
  spec.boundaries = {"open", "circular"};
  ExecutorOptions serial_opts;
  serial_opts.threads = 1;
  ExecutorOptions threaded_opts;
  threaded_opts.threads = 4;
  threaded_opts.tile_threads = 2;
  const auto serial = SweepExecutor(serial_opts).run(spec);
  const auto threaded = SweepExecutor(threaded_opts).run(spec);
  ASSERT_EQ(serial.size(), 16u);  // 2 depths x 2 tiles x 2 x 2
  EXPECT_EQ(SweepExecutor::digest(serial), SweepExecutor::digest(threaded));
  EXPECT_EQ(emit_json(serial), emit_json(threaded));
  EXPECT_EQ(emit_csv(serial), emit_csv(threaded));
  // circular (periodic) at depth 2 is a validated rejection untiled and
  // when the mesh leaves an axis unsplit; 2x2 tiling makes it RUN — the
  // headline capability. Both legs must agree on every ok/error.
  bool saw_tiled_periodic_depth = false;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].ok, threaded[i].ok);
    EXPECT_EQ(serial[i].error, threaded[i].error);
    EXPECT_EQ(serial[i].output_hash, threaded[i].output_hash);
    const Scenario& s = serial[i].scenario;
    if (s.boundary == "circular" && s.depth == 2 && s.tiles.height == 2) {
      EXPECT_TRUE(serial[i].ok) << serial[i].error;
      saw_tiled_periodic_depth = true;
    }
  }
  EXPECT_TRUE(saw_tiled_periodic_depth);
}

TEST(SweepExecutor, DepthVerifiesAgainstTheReferenceAcrossFusedPasses) {
  SweepSpec spec;
  spec.grids = {{8, 8}};
  spec.steps = {6};
  spec.depths = {2, 3};
  spec.stencils = {"vn4", "moore9"};
  spec.boundaries = {"open", "island"};
  ExecutorOptions opts;
  opts.threads = 2;
  opts.verify_reference = true;
  const auto results = SweepExecutor(opts).run(spec);
  ASSERT_EQ(results.size(), 8u);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok) << r.scenario.label << ": " << r.error;
    EXPECT_TRUE(r.reference_checked);
    EXPECT_TRUE(r.reference_match) << r.scenario.label;
  }
}

TEST(SweepExecutor, PeriodicBoundaryWithDepthFailsDeterministically) {
  // Periodic wraps cannot fuse within a pass (their data does not exist
  // yet); such scenarios are captured as per-scenario errors — the sweep
  // completes, stays deterministic, and the error text explains the why.
  SweepSpec spec;
  spec.grids = {{8, 8}};
  spec.steps = {2};
  spec.depths = {2};
  spec.boundaries = {"paper", "circular", "open"};
  const auto serial = SweepExecutor({.threads = 1}).run(spec);
  const auto threaded = SweepExecutor({.threads = 3}).run(spec);
  ASSERT_EQ(serial.size(), 3u);
  for (const auto& r : serial) {
    if (r.scenario.boundary == "open") {
      EXPECT_TRUE(r.ok) << r.error;
    } else {
      EXPECT_FALSE(r.ok) << r.scenario.label;
      EXPECT_NE(r.error.find("in-stream"), std::string::npos) << r.error;
    }
  }
  EXPECT_EQ(SweepExecutor::digest(serial), SweepExecutor::digest(threaded));
  EXPECT_EQ(emit_json(serial), emit_json(threaded));
}

TEST(SweepExecutor, VerifiesAgainstTheGoldenReference) {
  SweepSpec spec = mixed_spec();
  spec.grids = {{8, 8}};  // trim: 12 scenarios are plenty here
  ExecutorOptions opts;
  opts.threads = 2;
  opts.verify_reference = true;
  for (const auto& r : SweepExecutor(opts).run(spec)) {
    ASSERT_TRUE(r.ok) << r.scenario.label << ": " << r.error;
    EXPECT_TRUE(r.reference_checked);
    EXPECT_TRUE(r.reference_match) << r.scenario.label;
  }
}

TEST(SweepExecutor, CapturesFailuresDeterministically) {
  SweepSpec spec = mixed_spec();
  spec.max_cycles = 10;  // watchdog trips every scenario
  const auto serial = SweepExecutor({.threads = 1}).run(spec);
  const auto threaded = SweepExecutor({.threads = 4}).run(spec);
  for (const auto& r : serial) {
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("max_cycles"), std::string::npos) << r.error;
  }
  EXPECT_EQ(SweepExecutor::digest(serial), SweepExecutor::digest(threaded));
  EXPECT_EQ(emit_json(serial), emit_json(threaded));
}

TEST(SweepExecutor, ElaborationSweepRunsThreaded) {
  SweepSpec spec;
  spec.mode = Mode::ElaborateOnly;
  spec.impls = {model::StreamImpl::RegisterOnly, model::StreamImpl::Hybrid};
  spec.thresholds = {3, 4, 16};
  spec.grids = {{11, 11}, {64, 64}};
  const auto serial = SweepExecutor({.threads = 1}).run(spec);
  const auto threaded = SweepExecutor({.threads = 3}).run(spec);
  ASSERT_EQ(serial.size(), 8u);  // (reg + 3 hybrid) x 2 grids
  EXPECT_EQ(SweepExecutor::digest(serial), SweepExecutor::digest(threaded));
  for (const auto& r : serial) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.run.cycles, 0u);
    EXPECT_GT(r.run.resources.r_total, 0u);
  }
}

TEST(SweepEmit, ReportsCarryTheCatalogueFields) {
  SweepSpec spec;
  spec.grids = {{8, 8}};
  const auto results = SweepExecutor().run(spec);
  const std::string json = emit_json(results);
  EXPECT_NE(json.find("\"run_type\": \"sweep\""), std::string::npos);
  EXPECT_NE(json.find("\"stencil\": \"vn4\""), std::string::npos);
  EXPECT_NE(json.find("\"output_hash\": \"0x"), std::string::npos);
  EXPECT_EQ(json.find("wall_ms"), std::string::npos);
  EmitOptions wall;
  wall.include_wall = true;
  EXPECT_NE(emit_json(results, wall).find("wall_ms"), std::string::npos);
  const std::string csv = emit_csv(results);
  EXPECT_EQ(csv.find("wall_ms"), std::string::npos);
  EXPECT_NE(csv.find("label,mode,arch"), std::string::npos);
}

TEST(SweepEmit, ReportsCarryTheDepthColumn) {
  SweepSpec spec;
  spec.grids = {{8, 8}};
  spec.steps = {2};
  spec.depths = {2};
  spec.boundaries = {"open"};
  const auto results = SweepExecutor().run(spec);
  const std::string json = emit_json(results);
  EXPECT_NE(json.find("\"depth\": 2"), std::string::npos);
  EXPECT_NE(json.find("/d2/"), std::string::npos);  // label segment
  const std::string csv = emit_csv(results);
  // Header pin updated when the tiles column landed between depth and
  // stencil (PR 6).
  EXPECT_NE(
      csv.find("label,mode,arch,height,width,steps,depth,tiles,stencil"),
      std::string::npos);
}

TEST(SweepEmit, ReportsCarryTheTilesColumn) {
  SweepSpec spec;
  spec.grids = {{8, 8}};
  spec.steps = {2};
  spec.tiles = {{2, 2}};
  spec.boundaries = {"open"};
  const auto results = SweepExecutor().run(spec);
  const std::string json = emit_json(results);
  EXPECT_NE(json.find("\"tiles\": \"2x2\""), std::string::npos);
  EXPECT_NE(json.find("/t2x2"), std::string::npos);  // label segment
  const std::string csv = emit_csv(results);
  const auto header_end = csv.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  EXPECT_NE(csv.find(",2x2,", header_end), std::string::npos);
}

TEST(HashGrid, TransposedShapesHashDifferently) {
  // hash_grid folds the shape as well as the words: a 2x8 and an 8x2 grid
  // with the same word sequence are different grids and must not collide.
  // Property-tested over random shapes since the bug class is systematic,
  // not shape-specific.
  Rng rng(0x7113u);
  for (int trial = 0; trial < 32; ++trial) {
    const std::size_t h = 1 + rng.next_below(9);
    const std::size_t w = 1 + rng.next_below(9);
    grid::Grid<word_t> a(h, w);
    for (std::size_t r = 0; r < h; ++r)
      for (std::size_t c = 0; c < w; ++c)
        a.at(r, c) = static_cast<word_t>(rng.next_u64());
    const auto b = grid::Grid<word_t>::from_words(w, h, a.to_words());
    if (h != w) {
      EXPECT_NE(hash_grid(a), hash_grid(b)) << h << 'x' << w;
    } else {
      EXPECT_EQ(hash_grid(a), hash_grid(b));
    }
  }
}

TEST(SweepEmit, DoublesRoundTripExactly) {
  // Committed sweep JSON must lose no bits: fmt_double emits the shortest
  // decimal that parses back to the identical double.
  const double cases[] = {0.0,
                          1.0,
                          0.1,
                          1.0 / 3.0,
                          0.1 + 0.2,  // 0.30000000000000004: needs 17 digits
                          238.27862595419847,
                          1e-300,
                          1e300,
                          5e-324,  // smallest denormal
                          123456789.123456789};
  for (const double v : cases) {
    const std::string s = fmt_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
  // Property sweep over random bit patterns (finite doubles only — the
  // report never emits NaN/inf).
  Rng rng(0xF17Aull);
  std::size_t checked = 0;
  while (checked < 2000) {
    const double v = std::bit_cast<double>(rng.next_u64());
    if (!std::isfinite(v)) continue;
    ++checked;
    const std::string s = fmt_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(SweepEmit, QuotesEveryStringValuedCsvColumn) {
  // Registry names are plain identifiers today, but the CSV writer must
  // not corrupt rows if a future family name carries a comma or quote.
  std::vector<ScenarioResult> results(1);
  ScenarioResult& r = results[0];
  r.scenario.label = "li,ne";
  r.scenario.stencil = "st,encil";
  r.scenario.boundary = "bo\"und";
  r.scenario.kernel = "ker,nel";
  r.scenario.input = "in,put";
  r.scenario.dram = "dr,am";
  r.ok = false;
  r.error = "an error, with commas";
  const std::string csv = emit_csv(results);
  EXPECT_NE(csv.find("\"li,ne\""), std::string::npos);
  EXPECT_NE(csv.find("\"st,encil\""), std::string::npos);
  EXPECT_NE(csv.find("\"bo\"\"und\""), std::string::npos);
  EXPECT_NE(csv.find("\"ker,nel\""), std::string::npos);
  EXPECT_NE(csv.find("\"in,put\""), std::string::npos);
  EXPECT_NE(csv.find("\"dr,am\""), std::string::npos);
  EXPECT_NE(csv.find("\"an error, with commas\""), std::string::npos);
  // Column count survives: the data row holds exactly as many unquoted
  // commas as the header row.
  const auto commas_outside_quotes = [](std::string_view line) {
    std::size_t n = 0;
    bool in_quotes = false;
    for (const char c : line) {
      if (c == '"') in_quotes = !in_quotes;
      else if (c == ',' && !in_quotes) ++n;
    }
    return n;
  };
  const std::size_t header_end = csv.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  const std::string_view all = csv;
  const std::string_view header = all.substr(0, header_end);
  const std::string_view row = all.substr(
      header_end + 1, csv.find('\n', header_end + 1) - header_end - 1);
  EXPECT_EQ(commas_outside_quotes(row), commas_outside_quotes(header));
}

// ---- crash-safe store-backed sweeps --------------------------------------

/// Fresh scratch store directory per test, removed on destruction.
class SweepScratch {
 public:
  explicit SweepScratch(const std::string& name)
      : path_("sweep_store_tmp_" + name) {
    std::filesystem::remove_all(path_);
  }
  ~SweepScratch() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

SweepSpec small_store_spec() {
  SweepSpec spec;
  spec.grids = {{8, 8}};
  spec.steps = {2};
  spec.stencils = {"vn4"};
  spec.boundaries = {"paper", "open", "island"};
  return spec;  // 3 scenarios
}

TEST(SweepStore, WarmRunIsAllHitsAndByteIdentical) {
  const SweepScratch dir("warm");
  ResultStore store(dir.path());
  ExecutorOptions opts;
  opts.store = &store;
  const auto cold = SweepExecutor(opts).run(small_store_spec());
  ASSERT_EQ(cold.size(), 3u);
  for (const auto& r : cold) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.from_store);
  }
  EXPECT_EQ(store.size(), 3u);

  // Same executor, same store: every scenario is reconstructed without
  // running, and the reports are byte-identical — the memoization claim.
  const auto warm = SweepExecutor(opts).run(small_store_spec());
  for (const auto& r : warm) EXPECT_TRUE(r.from_store) << r.scenario.label;
  EXPECT_EQ(SweepExecutor::digest(cold), SweepExecutor::digest(warm));
  EXPECT_EQ(emit_json(cold), emit_json(warm));
  EXPECT_EQ(emit_csv(cold), emit_csv(warm));

  // A REOPENED store (fresh process, journal read back from disk) must be
  // just as good — this is the resume path.
  ResultStore reopened(dir.path());
  ExecutorOptions resumed_opts;
  resumed_opts.store = &reopened;
  const auto resumed = SweepExecutor(resumed_opts).run(small_store_spec());
  for (const auto& r : resumed) EXPECT_TRUE(r.from_store);
  EXPECT_EQ(emit_json(cold), emit_json(resumed));
}

TEST(SweepStore, WidenedSpecExecutesOnlyTheDelta) {
  const SweepScratch dir("widen");
  ResultStore store(dir.path());
  ExecutorOptions opts;
  opts.store = &store;
  SweepSpec narrow = small_store_spec();
  narrow.boundaries = {"paper"};
  (void)SweepExecutor(opts).run(narrow);
  EXPECT_EQ(store.size(), 1u);

  const auto widened = SweepExecutor(opts).run(small_store_spec());
  std::size_t hits = 0, executed = 0;
  for (const auto& r : widened) (r.from_store ? hits : executed)++;
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(store.size(), 3u);

  // And the widened warm report equals a cold run of the widened spec.
  const auto cold = SweepExecutor().run(small_store_spec());
  EXPECT_EQ(emit_json(cold), emit_json(widened));
  EXPECT_EQ(SweepExecutor::digest(cold), SweepExecutor::digest(widened));
}

TEST(SweepStore, CorruptedRecordReexecutesOnlyAffectedScenarios) {
  const SweepScratch dir("corrupt");
  std::string baseline_json;
  {
    ResultStore store(dir.path());
    ExecutorOptions opts;
    opts.store = &store;
    opts.threads = 1;  // serial: journal order == scenario order
    baseline_json = emit_json(SweepExecutor(opts).run(small_store_spec()));
    EXPECT_EQ(store.size(), 3u);
  }
  // Flip one byte in the LAST journaled record's payload: recovery drops
  // exactly that record (tail abandonment — nothing follows it).
  std::string seg;
  for (const auto& e : std::filesystem::directory_iterator(dir.path()))
    if (e.path().extension() == ".smr") seg = e.path().string();
  ASSERT_FALSE(seg.empty());
  {
    std::ifstream in(seg, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes[bytes.size() - 20] ^= 0x04;  // inside the final payload/checksum
    std::ofstream out(seg, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  ResultStore recovered(dir.path());
  EXPECT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered.dropped_records(), 1u);
  ExecutorOptions opts;
  opts.store = &recovered;
  const auto rerun = SweepExecutor(opts).run(small_store_spec());
  std::size_t executed = 0;
  for (const auto& r : rerun) executed += r.from_store ? 0 : 1;
  // Only the dropped scenario re-executes, and the final report is
  // byte-identical to the pre-corruption run.
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(emit_json(rerun), baseline_json);
  EXPECT_EQ(recovered.size(), 3u);  // re-journaled durably
}

TEST(SweepStore, DeterministicFailuresAreStoredAndReused) {
  // A captured scenario error is a result too: resume must reproduce the
  // failed row byte-for-byte without re-running it.
  const SweepScratch dir("failres");
  SweepSpec spec;
  spec.grids = {{8, 8}};
  spec.steps = {2};
  spec.depths = {2};
  spec.boundaries = {"circular", "open"};  // periodic x depth>1 -> error
  ResultStore store(dir.path());
  ExecutorOptions opts;
  opts.store = &store;
  const auto cold = SweepExecutor(opts).run(spec);
  ASSERT_EQ(cold.size(), 2u);
  EXPECT_EQ(store.size(), 2u);  // failure journaled alongside the success
  const auto warm = SweepExecutor(opts).run(spec);
  bool saw_failure = false;
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_TRUE(warm[i].from_store);
    EXPECT_EQ(warm[i].ok, cold[i].ok);
    EXPECT_EQ(warm[i].error, cold[i].error);
    saw_failure |= !warm[i].ok;
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_EQ(emit_json(cold), emit_json(warm));
}

TEST(SweepStore, IncompatibleOptionCombinationsAreRejected) {
  const SweepScratch dir("reject");
  ResultStore store(dir.path());
  ExecutorOptions opts;
  opts.store = &store;
  opts.keep_outputs = true;
  EXPECT_THROW((void)SweepExecutor(opts).run(small_store_spec()),
               contract_error);
  const FaultPlan plan = FaultPlan::seeded(1, 2);
  ExecutorOptions faulted;
  faulted.store = &store;
  faulted.fault_plan = &plan;
  EXPECT_THROW((void)SweepExecutor(faulted).run(small_store_spec()),
               contract_error);
  EXPECT_EQ(store.size(), 0u);  // rejection happens before any execution
}

TEST(SweepStop, StopFlagSkipsScenariosAndStoresNothing) {
  const SweepScratch dir("stop");
  ResultStore store(dir.path());
  std::atomic<bool> stop{true};  // pre-set: every scenario must skip
  ExecutorOptions opts;
  opts.store = &store;
  opts.stop = &stop;
  opts.threads = 2;
  const auto results = SweepExecutor(opts).run(small_store_spec());
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.skipped);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("skipped"), std::string::npos);
  }
  EXPECT_EQ(store.size(), 0u);  // skipped scenarios are never journaled
}

TEST(SweepWatchdog, WallTimeoutIsCapturedAndNeverStored) {
  const SweepScratch dir("watchdog");
  SweepSpec spec;
  spec.grids = {{128, 128}};
  spec.steps = {10};
  spec.stencils = {"moore9"};
  spec.boundaries = {"open"};
  ResultStore store(dir.path());
  ExecutorOptions opts;
  opts.store = &store;
  opts.wall_timeout_ms = 1;  // a 128x128 10-step run takes far longer
  const auto results = SweepExecutor(opts).run(spec);
  ASSERT_EQ(results.size(), 1u);
  const ScenarioResult& r = results[0];
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.run.timed_out);
  EXPECT_NE(r.error.find("watchdog"), std::string::npos) << r.error;
  // Partial progress is surfaced for triage...
  EXPECT_GT(r.run.cycles, 0u);
  // ...but a nondeterministic abandon must never be journaled: a resume
  // re-executes it (possibly without the timeout) instead of trusting it.
  EXPECT_EQ(store.size(), 0u);
}

// ---- the shared parallel substrate --------------------------------------

TEST(ParallelForIndex, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {0u, 1u, 3u, 16u}) {
    std::vector<std::atomic<int>> hits(37);
    parallel_for_index(hits.size(), threads,
                       [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
  parallel_for_index(0, 4, [](std::size_t) { FAIL(); });
}

TEST(ParallelForIndex, RethrowsTheLowestIndexFailure) {
  // The exception contract holds at EVERY thread count, including serial:
  // all indices run, the lowest-index failure is rethrown afterwards.
  for (const std::size_t threads : {1u, 4u}) {
    std::vector<std::atomic<int>> hits(16);
    try {
      parallel_for_index(hits.size(), threads, [&](std::size_t i) {
        ++hits[i];
        if (i == 3 || i == 11)
          throw contract_error("boom at " + std::to_string(i));
      });
      FAIL() << "expected contract_error";
    } catch (const contract_error& e) {
      EXPECT_NE(std::string(e.what()).find("boom at 3"), std::string::npos);
    }
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForIndex, ThreadsFromEnvParsesStrictly) {
  ::setenv("SMACHE_TEST_THREADS", "3", 1);
  EXPECT_EQ(threads_from_env("SMACHE_TEST_THREADS", 1), 3u);
  ::setenv("SMACHE_TEST_THREADS", "0", 1);
  EXPECT_EQ(threads_from_env("SMACHE_TEST_THREADS", 1),
            hardware_threads());
  const LogLevel level = Log::level();
  Log::set_level(LogLevel::Off);  // the malformed case warns by contract
  ::setenv("SMACHE_TEST_THREADS", "4cores", 1);
  EXPECT_EQ(threads_from_env("SMACHE_TEST_THREADS", 7), 7u);
  Log::set_level(level);
  ::unsetenv("SMACHE_TEST_THREADS");
  EXPECT_EQ(threads_from_env("SMACHE_TEST_THREADS", 5), 5u);
}

TEST(DseExplore, ThreadedExplorationMatchesSerial) {
  cost::DseRequest req;
  req.height = 64;
  req.width = 64;
  const auto serial = cost::explore(req);
  req.threads = 4;
  const auto threaded = cost::explore(req);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].label(), threaded[i].label());
    EXPECT_EQ(serial[i].memory.r_total(), threaded[i].memory.r_total());
    EXPECT_EQ(serial[i].memory.b_total(), threaded[i].memory.b_total());
    EXPECT_EQ(serial[i].pareto, threaded[i].pareto);
  }
}

}  // namespace
}  // namespace smache::sweep

// Property tests: for EVERY combination of grid shape x stencil x boundary
// conditions x architecture x stream-buffer implementation, the simulated
// hardware must reproduce the golden software reference bit-exactly.
// This is the paper's correctness claim ("validated for a 2D grid, 4-point
// stencil with circular boundaries") generalised to the whole configuration
// space the library supports.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "support/test_grids.hpp"

namespace smache {
namespace {

struct GridDim {
  std::size_t h, w;
};

struct BcCase {
  const char* name;
  grid::BoundarySpec bc;
};

struct ShapeCase {
  const char* name;
  grid::StencilShape shape;
};

using Param = std::tuple<GridDim, ShapeCase, BcCase, Architecture,
                         model::StreamImpl>;

class EquivalenceSweep : public ::testing::TestWithParam<Param> {};

grid::Grid<word_t> random_grid(std::size_t h, std::size_t w,
                               std::uint64_t seed) {
  return test_support::random_grid(h, w, seed, 100000);
}

TEST_P(EquivalenceSweep, HardwareMatchesReference) {
  const auto& [dim, shape, bc, arch, impl] = GetParam();
  // Skip configurations the zone analysis correctly rejects (grid smaller
  // than the stencil span) — those are covered by validation tests.
  const auto rspan = static_cast<std::size_t>(shape.shape.dr_max() -
                                              shape.shape.dr_min());
  const auto cspan = static_cast<std::size_t>(shape.shape.dc_max() -
                                              shape.shape.dc_min());
  if (dim.h <= rspan || dim.w <= cspan) GTEST_SKIP();

  ProblemSpec p;
  p.height = dim.h;
  p.width = dim.w;
  p.shape = shape.shape;
  p.bc = bc.bc;
  p.kernel = rtl::KernelSpec::average_int();
  p.steps = 2;

  EngineOptions opts;
  opts.arch = arch;
  opts.stream_impl = impl;

  const auto init =
      random_grid(dim.h, dim.w, dim.h * 1000003 + dim.w * 977 +
                                    static_cast<std::uint64_t>(arch));
  const auto expected = reference_run(p, init);
  const auto result = Engine(opts).run(p, init);
  EXPECT_EQ(result.output, expected)
      << dim.h << "x" << dim.w << " " << shape.name << " " << bc.name
      << " " << to_string(arch);
}

const GridDim kDims[] = {{4, 4}, {5, 9}, {11, 11}, {9, 5}, {16, 12}};

const ShapeCase kShapes[] = {
    {"vn4", grid::StencilShape::von_neumann4()},
    {"plus5", grid::StencilShape::plus5()},
    {"moore9", grid::StencilShape::moore9()},
    {"upwind3", grid::StencilShape::upwind3()},
};

const BcCase kBcs[] = {
    {"paper", grid::BoundarySpec::paper_example()},
    {"open", grid::BoundarySpec::all_open()},
    {"periodic", grid::BoundarySpec::all_periodic()},
    {"mirror", grid::BoundarySpec::all_mirror()},
    {"mixed", {grid::AxisBoundary::mirror(), grid::AxisBoundary::periodic()}},
    {"const", {grid::AxisBoundary::constant_halo(7),
               grid::AxisBoundary::constant_halo(3)}},
};

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto& [dim, shape, bc, arch, impl] = info.param;
  return std::to_string(dim.h) + "x" + std::to_string(dim.w) + "_" +
         shape.name + "_" + bc.name + "_" + to_string(arch) + "_" +
         (impl == model::StreamImpl::Hybrid ? "h" : "r");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceSweep,
    ::testing::Combine(::testing::ValuesIn(kDims),
                       ::testing::ValuesIn(kShapes),
                       ::testing::ValuesIn(kBcs),
                       ::testing::Values(Architecture::Smache,
                                         Architecture::Baseline),
                       ::testing::Values(model::StreamImpl::Hybrid,
                                         model::StreamImpl::RegisterOnly)),
    param_name);

// Long-range stencils deserve their own sweep: cross(k) exercises multiple
// static buffers per side under periodic rows.
class LongRangeSweep
    : public ::testing::TestWithParam<std::tuple<int, Architecture>> {};

TEST_P(LongRangeSweep, CrossKMatchesReference) {
  const auto [k, arch] = GetParam();
  ProblemSpec p;
  p.height = 16;
  p.width = 16;
  p.shape = grid::StencilShape::cross(k);
  p.bc = {grid::AxisBoundary::periodic(), grid::AxisBoundary::open()};
  p.steps = 2;
  EngineOptions opts;
  opts.arch = arch;
  const auto init = random_grid(16, 16, 100 + static_cast<unsigned>(k));
  EXPECT_EQ(Engine(opts).run(p, init).output, reference_run(p, init));
}

INSTANTIATE_TEST_SUITE_P(
    Cross, LongRangeSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(Architecture::Smache,
                                         Architecture::Baseline)),
    [](const ::testing::TestParamInfo<std::tuple<int, Architecture>>& i) {
      return "k" + std::to_string(std::get<0>(i.param)) + "_" +
             to_string(std::get<1>(i.param));
    });

// Multi-step runs must chain instance state correctly (double-buffer swaps,
// region ping-pong) for several step counts including odd/even parity.
class StepSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StepSweep, PaperProblemAtStepCount) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = GetParam();
  const auto init = random_grid(11, 11, 4242 + GetParam());
  EXPECT_EQ(Engine(EngineOptions::smache()).run(p, init).output,
            reference_run(p, init));
}

INSTANTIATE_TEST_SUITE_P(Steps, StepSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 16, 33));

}  // namespace
}  // namespace smache

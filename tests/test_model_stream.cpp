// Tests for the formal stream model (§II): iteration patterns and stream
// views s[i] = m[p(i)].
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "model/stream_model.hpp"

namespace smache::model {
namespace {

TEST(IterationPattern, Contiguous) {
  const auto p = IterationPattern::contiguous(5);
  EXPECT_EQ(p.size(), 5u);
  EXPECT_TRUE(p.is_contiguous());
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(p.at(i), i);
  EXPECT_THROW(p.at(5), smache::contract_error);
}

TEST(IterationPattern, Strided) {
  const auto p = IterationPattern::strided(3, 4, 4);
  EXPECT_FALSE(p.is_contiguous());
  EXPECT_TRUE(p.is_affine());
  EXPECT_EQ(p.stride(), 4u);
  EXPECT_EQ(p.at(0), 3u);
  EXPECT_EQ(p.at(3), 15u);
  EXPECT_THROW(IterationPattern::strided(0, 0, 4), smache::contract_error);
}

TEST(IterationPattern, Permutation) {
  const auto p = IterationPattern::permutation({4, 2, 0, 9});
  EXPECT_EQ(p.size(), 4u);
  EXPECT_FALSE(p.is_affine());
  EXPECT_EQ(p.at(0), 4u);
  EXPECT_EQ(p.at(3), 9u);
}

TEST(StreamView, AccessesThroughPattern) {
  // The paper's defining equation: s[i] = m[p(i)].
  std::vector<word_t> m = {10, 11, 12, 13, 14, 15};
  const auto p = IterationPattern::permutation({5, 0, 3});
  StreamView s(m, p);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.at(0), 15u);
  EXPECT_EQ(s.at(1), 10u);
  EXPECT_EQ(s.at(2), 13u);
}

TEST(StreamView, RejectsEscapingPattern) {
  std::vector<word_t> m(4);
  const auto p = IterationPattern::permutation({0, 4});
  EXPECT_THROW(StreamView(m, p), smache::contract_error);
}

TEST(StreamView, ContiguousIsIdentity) {
  std::vector<word_t> m = {7, 8, 9};
  const auto p = IterationPattern::contiguous(3);
  StreamView s(m, p);
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(s.at(i), m[i]);
}

}  // namespace
}  // namespace smache::model

// Halo-exchange spatial tiling: geometry planning (tile rectangles, halo
// clipping, per-axis sub-boundaries, validated rejections), gather/stitch
// round-trips, and the engine-level bit-identity wall — run_tiled must
// match the golden reference (and thus the untiled engine, which the
// equivalence suites pin to the same oracle) for every supported boundary
// x stencil x depth x mesh x thread-count pairing.
#include <gtest/gtest.h>

#include <string>

#include "core/engine.hpp"
#include "grid/tiling.hpp"
#include "support/test_grids.hpp"

namespace smache {
namespace {

using grid::AxisBoundary;
using grid::BoundaryKind;
using grid::BoundarySpec;
using grid::StencilShape;
using grid::TileGeometry;
using grid::TilingLayout;

grid::Grid<word_t> random_grid(std::size_t h, std::size_t w,
                               std::uint64_t seed) {
  return test_support::random_grid(h, w, seed, 1 << 12);
}

// ---- geometry ----

TEST(TilingGeometry, InteriorsPartitionTheGrid) {
  const TilingLayout layout =
      grid::plan_tiling(11, 13, 3, 2, StencilShape::von_neumann4(),
                        BoundarySpec::all_open(), 1);
  ASSERT_EQ(layout.tiles.size(), 6u);
  grid::Grid<int> covered(11, 13, 0);
  for (const TileGeometry& t : layout.tiles)
    for (std::size_t r = 0; r < t.rows; ++r)
      for (std::size_t c = 0; c < t.cols; ++c)
        covered.at(t.r0 + r, t.c0 + c) += 1;
  for (std::size_t i = 0; i < covered.size(); ++i)
    EXPECT_EQ(covered[i], 1) << "cell " << i;
  // Balanced split: 11 rows over 3 tiles = 4,4,3; 13 cols over 2 = 7,6.
  EXPECT_EQ(layout.tiles[0].rows, 4u);
  EXPECT_EQ(layout.tiles[4].rows, 3u);
  EXPECT_EQ(layout.tiles[0].cols, 7u);
  EXPECT_EQ(layout.tiles[1].cols, 6u);
}

TEST(TilingGeometry, HalosClipAtTrueEdgesAndKeepTheGlobalFamily) {
  // Open boundaries, depth 2, vn4 (reach 1 per side): interior cuts want
  // 2-cell halos, true edges clip to 0, and every tile keeps the open
  // family so its edge resolves exactly like the untiled grid's.
  const TilingLayout layout =
      grid::plan_tiling(12, 12, 3, 1, StencilShape::von_neumann4(),
                        BoundarySpec::all_open(), 2);
  ASSERT_EQ(layout.tiles.size(), 3u);
  EXPECT_EQ(layout.tiles[0].halo_top, 0u);
  EXPECT_EQ(layout.tiles[0].halo_bottom, 2u);
  EXPECT_EQ(layout.tiles[1].halo_top, 2u);
  EXPECT_EQ(layout.tiles[1].halo_bottom, 2u);
  EXPECT_EQ(layout.tiles[2].halo_top, 2u);
  EXPECT_EQ(layout.tiles[2].halo_bottom, 0u);
  for (const TileGeometry& t : layout.tiles) {
    EXPECT_EQ(t.sub_bc.rows.kind, BoundaryKind::Open);
    EXPECT_EQ(t.halo_left, 0u);  // unsplit axis: no halo
    EXPECT_EQ(t.halo_right, 0u);
  }
}

TEST(TilingGeometry, SplitPeriodicAxisBecomesOpenWithFullHalos) {
  // Both periodic axes split (an unsplit periodic axis cannot carry
  // depth > 1 — see RejectsUnsplitPeriodicAxisAtDepth).
  const TilingLayout layout =
      grid::plan_tiling(10, 10, 2, 2, StencilShape::von_neumann4(),
                        BoundarySpec::all_periodic(), 3);
  for (const TileGeometry& t : layout.tiles) {
    // Un-clipped halos even at the true edge (they wrap at gather time)...
    EXPECT_EQ(t.halo_top, 3u);
    EXPECT_EQ(t.halo_bottom, 3u);
    EXPECT_EQ(t.halo_left, 3u);
    EXPECT_EQ(t.halo_right, 3u);
    // ...and the sub-problems see open axes: the wrap has been turned
    // into halo exchange.
    EXPECT_EQ(t.sub_bc.rows.kind, BoundaryKind::Open);
    EXPECT_EQ(t.sub_bc.cols.kind, BoundaryKind::Open);
  }
  EXPECT_LT(layout.tiles[0].origin_r(), 0);  // wraps above the grid origin

  // At depth 1 an unsplit periodic axis is fine and survives untouched.
  const TilingLayout flat =
      grid::plan_tiling(10, 10, 2, 1, StencilShape::von_neumann4(),
                        BoundarySpec::all_periodic(), 1);
  EXPECT_EQ(flat.tiles[0].sub_bc.rows.kind, BoundaryKind::Open);
  EXPECT_EQ(flat.tiles[0].sub_bc.cols.kind, BoundaryKind::Periodic);
  EXPECT_EQ(flat.tiles[0].halo_top, 1u);
}

TEST(TilingGeometry, AsymmetricReachGivesAsymmetricHalos) {
  // upwind3 = {(0,0),(0,-1),(-1,0)}: reach 1 up/left, 0 down/right. An
  // interior tile needs a halo only on the sides data flows FROM.
  const TilingLayout layout =
      grid::plan_tiling(9, 9, 3, 3, StencilShape::upwind3(),
                        BoundarySpec::all_open(), 1);
  const TileGeometry& mid = layout.tiles[4];
  EXPECT_EQ(mid.halo_top, 1u);
  EXPECT_EQ(mid.halo_bottom, 0u);
  EXPECT_EQ(mid.halo_left, 1u);
  EXPECT_EQ(mid.halo_right, 0u);
}

TEST(TilingGeometry, ConstantFamilySurvivesTheSplit) {
  const BoundarySpec bc{AxisBoundary::constant_halo(7),
                        AxisBoundary::constant_halo(9)};
  const TilingLayout layout = grid::plan_tiling(
      8, 8, 2, 2, StencilShape::von_neumann4(), bc, 1);
  for (const TileGeometry& t : layout.tiles) {
    EXPECT_EQ(t.sub_bc.rows.kind, BoundaryKind::Constant);
    EXPECT_EQ(t.sub_bc.rows.constant, 7u);
    EXPECT_EQ(t.sub_bc.cols.constant, 9u);
  }
}

TEST(TilingGeometry, RejectsMoreTilesThanCells) {
  EXPECT_THROW(grid::plan_tiling(4, 8, 5, 1, StencilShape::von_neumann4(),
                                 BoundarySpec::all_open(), 1),
               contract_error);
}

TEST(TilingGeometry, RejectsPaddedExtentBelowTheStencilSpan) {
  // cross(3) spans 6 on each axis: an 11-row grid split 3 ways leaves a
  // 3-row bottom tile whose clipped padded extent is 6 — too small.
  try {
    grid::plan_tiling(11, 11, 3, 1, StencilShape::cross(3),
                      BoundarySpec::all_open(), 1);
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("stencil's span"),
              std::string::npos)
        << e.what();
  }
}

TEST(TilingGeometry, RejectsMirrorTilesSmallerThanTheReflectedReach) {
  // Asymmetric reach (2 up, 1 down), mirror rows, depth 3: a 1-row top
  // tile pads to 1 + 3*1 = 4 rows — above the stencil span (3) but not
  // above the reflected reach 2 + 2*1 = 4, so the fold at the true top
  // edge would read cells the bottom cut's error front already consumed.
  const StencilShape updown =
      StencilShape::custom("updown", {{-2, 0}, {0, 0}, {1, 0}});
  try {
    grid::plan_tiling(6, 6, 6, 1, updown,
                      {AxisBoundary::mirror(), AxisBoundary::open()}, 3);
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("mirror"), std::string::npos)
        << e.what();
  }
  // The same mesh tiles fine once the boundary is open (no reflection).
  EXPECT_NO_THROW(grid::plan_tiling(
      6, 6, 6, 1, updown, {AxisBoundary::open(), AxisBoundary::open()}, 3));
}

TEST(TilingGeometry, RejectsUnsplitPeriodicAxisAtDepth) {
  // Fusing across a periodic wrap needs the axis split (halo exchange) —
  // an unsplit periodic axis at depth > 1 is a descriptive rejection.
  try {
    grid::plan_tiling(10, 10, 1, 2, StencilShape::von_neumann4(),
                      BoundarySpec::paper_example(), 2);
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsplit periodic"),
              std::string::npos)
        << e.what();
  }
  // Splitting that axis makes the same pairing plannable.
  EXPECT_NO_THROW(grid::plan_tiling(10, 10, 2, 2,
                                    StencilShape::von_neumann4(),
                                    BoundarySpec::paper_example(), 2));
}

TEST(TilingGeometry, GatherStitchRoundTripsWithoutComputation) {
  // Stitching ungathered tiles back must reproduce the source grid exactly
  // for every boundary family (halo cells are read-only by construction).
  const auto src = random_grid(9, 7, 41);
  for (const BoundarySpec bc :
       {BoundarySpec::all_open(), BoundarySpec::all_periodic(),
        BoundarySpec::all_mirror(), BoundarySpec::paper_example()}) {
    const TilingLayout layout = grid::plan_tiling(
        9, 7, 3, 2, StencilShape::von_neumann4(), bc, 1);
    grid::Grid<word_t> rebuilt(9, 7);
    for (const TileGeometry& t : layout.tiles)
      grid::stitch_interior(rebuilt, t, grid::gather_tile(src, t, bc));
    EXPECT_EQ(rebuilt, src);
  }
}

TEST(TilingGeometry, PeriodicGatherWrapsHalosFromTheOppositeEdge) {
  const auto src = random_grid(6, 6, 42);
  const TilingLayout layout =
      grid::plan_tiling(6, 6, 2, 1, StencilShape::von_neumann4(),
                        BoundarySpec::all_periodic(), 1);
  const TileGeometry& top = layout.tiles[0];
  const auto sub = grid::gather_tile(src, top, BoundarySpec::all_periodic());
  // Subgrid row 0 is the halo row above global row 0 — i.e. global row 5.
  for (std::size_t c = 0; c < 6; ++c)
    EXPECT_EQ(sub.at(0, c), src.at(5, c));
}

// ---- engine-level bit-identity wall ----

struct TiledCase {
  const char* name;
  BoundarySpec bc;
  StencilShape shape;
  std::size_t depth;
};

// Boundary x stencil x depth pairings covering all four families (incl.
// asymmetric reaches against mirror/periodic edges) — every one must be
// bit-identical to the reference through any mesh.
std::vector<TiledCase> tiled_cases() {
  const BoundarySpec constant{AxisBoundary::constant_halo(5),
                              AxisBoundary::constant_halo(12)};
  return {
      {"open-vn4-d1", BoundarySpec::all_open(),
       StencilShape::von_neumann4(), 1},
      {"open-moore9-d2", BoundarySpec::all_open(), StencilShape::moore9(),
       2},
      {"periodic-vn4-d1", BoundarySpec::all_periodic(),
       StencilShape::von_neumann4(), 1},
      {"periodic-moore9-d2", BoundarySpec::all_periodic(),
       StencilShape::moore9(), 2},
      {"paper-vn4-d1", BoundarySpec::paper_example(),
       StencilShape::von_neumann4(), 1},
      {"mirror-vn4-d1", BoundarySpec::all_mirror(),
       StencilShape::von_neumann4(), 1},
      {"mirror-moore9-d2", BoundarySpec::all_mirror(),
       StencilShape::moore9(), 2},
      {"constant-plus5-d1", constant, StencilShape::plus5(), 1},
      {"open-upwind3-d1", BoundarySpec::all_open(),
       StencilShape::upwind3(), 1},
      {"periodic-upwind3-d2", BoundarySpec::all_periodic(),
       StencilShape::upwind3(), 2},
      {"mirror-upwind3-d1", BoundarySpec::all_mirror(),
       StencilShape::upwind3(), 1},
  };
}

TEST(TiledEngine, BitIdenticalToReferenceAcrossMeshes) {
  const struct {
    std::size_t tiles_r, tiles_c;
  } meshes[] = {{1, 2}, {2, 1}, {2, 2}, {3, 3}, {1, 4}};
  for (const TiledCase& tc : tiled_cases()) {
    ProblemSpec p;
    p.height = 12;
    p.width = 12;
    p.shape = tc.shape;
    p.bc = tc.bc;
    p.steps = 4;
    const auto init = random_grid(p.height, p.width, 1000 + tc.depth);
    const auto golden = reference_run(p, init);
    for (const auto& m : meshes) {
      TilingSpec tiling;
      tiling.tiles_r = m.tiles_r;
      tiling.tiles_c = m.tiles_c;
      tiling.depth = tc.depth;
      // Depth > 1 across an UNSPLIT periodic axis is a documented
      // validated rejection (the wrap can't ride inside one fused pass);
      // every other pairing must be bit-identical to the reference.
      const bool rejected =
          tc.depth > 1 &&
          ((tc.bc.rows.kind == BoundaryKind::Periodic && m.tiles_r == 1) ||
           (tc.bc.cols.kind == BoundaryKind::Periodic && m.tiles_c == 1));
      if (rejected) {
        try {
          Engine(EngineOptions::smache()).run_tiled(p, init, tiling);
          ADD_FAILURE() << tc.name << " @ " << m.tiles_r << 'x'
                        << m.tiles_c << ": expected contract_error";
        } catch (const contract_error& e) {
          EXPECT_NE(std::string(e.what()).find("unsplit periodic"),
                    std::string::npos)
              << e.what();
        }
        continue;
      }
      const auto res =
          Engine(EngineOptions::smache()).run_tiled(p, init, tiling);
      EXPECT_EQ(res.output, golden)
          << tc.name << " @ " << m.tiles_r << 'x' << m.tiles_c;
    }
  }
}

TEST(TiledEngine, ThreadCountNeverChangesTheResult) {
  ProblemSpec p;
  p.height = 16;
  p.width = 16;
  p.shape = grid::StencilShape::moore9();
  p.bc = BoundarySpec::paper_example();
  p.steps = 6;
  const auto init = random_grid(p.height, p.width, 7);
  const Engine engine(EngineOptions::smache());
  TilingSpec serial{3, 3, 1, 2};
  TilingSpec threaded{3, 3, 4, 2};
  const auto a = engine.run_tiled(p, init, serial);
  const auto b = engine.run_tiled(p, init, threaded);
  // The FULL result must match, not just the grid: cycles, warmup, DRAM
  // counters, resources — aggregation is tile-order-deterministic.
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.warmup_cycles, b.warmup_cycles);
  EXPECT_EQ(a.dram.read_requests, b.dram.read_requests);
  EXPECT_EQ(a.dram.words_read, b.dram.words_read);
  EXPECT_EQ(a.dram.words_written, b.dram.words_written);
  EXPECT_EQ(a.resources.r_total, b.resources.r_total);
  EXPECT_EQ(a.resources.b_total, b.resources.b_total);
  EXPECT_EQ(a.timing.fmax_mhz, b.timing.fmax_mhz);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.output, reference_run(p, init));
}

TEST(TiledEngine, BaselineArchitectureTilesToo) {
  ProblemSpec p;
  p.height = 10;
  p.width = 10;
  p.shape = grid::StencilShape::von_neumann4();
  p.bc = BoundarySpec::all_open();
  p.steps = 3;
  const auto init = random_grid(p.height, p.width, 21);
  TilingSpec tiling{2, 2, 2, 1};
  const auto res =
      Engine(EngineOptions::baseline()).run_tiled(p, init, tiling);
  EXPECT_EQ(res.output, reference_run(p, init));
  EXPECT_FALSE(res.estimate.has_value());  // baseline has no estimate
}

TEST(TiledEngine, TrivialMeshFallsBackToTheUntiledEngine) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 5;
  const auto init = random_grid(11, 11, 90);
  const Engine engine(EngineOptions::smache());
  const auto plain = engine.run(p, init);
  const auto tiled = engine.run_tiled(p, init, TilingSpec{1, 1, 4, 1});
  // Not merely the same answer — the identical RunResult (cycles, warmup,
  // traffic), because 1x1 routes through the very same code path.
  EXPECT_EQ(tiled.output, plain.output);
  EXPECT_EQ(tiled.cycles, plain.cycles);
  EXPECT_EQ(tiled.warmup_cycles, plain.warmup_cycles);
  EXPECT_EQ(tiled.dram.words_read, plain.dram.words_read);
}

TEST(TiledEngine, EnablesDepthAcrossPeriodicBoundaries) {
  // The headline capability: untiled depth>1 rejects periodic wraps, but
  // splitting the periodic axes turns the wrap into halo exchange and the
  // fused cascade runs — still bit-identical to the reference.
  ProblemSpec p;
  p.height = 12;
  p.width = 12;
  p.shape = grid::StencilShape::von_neumann4();
  p.bc = BoundarySpec::all_periodic();
  p.steps = 6;
  const auto init = random_grid(p.height, p.width, 33);
  const Engine engine(EngineOptions::smache());
  EXPECT_THROW(engine.run_cascade(p, init, 3), contract_error);
  const auto res = engine.run_tiled(p, init, TilingSpec{2, 2, 1, 3});
  EXPECT_EQ(res.output, reference_run(p, init));
}

TEST(TiledEngine, RejectsIndivisibleSteps) {
  ProblemSpec p;
  p.height = 10;
  p.width = 10;
  p.bc = BoundarySpec::all_open();
  p.steps = 5;
  const auto init = random_grid(10, 10, 3);
  try {
    Engine(EngineOptions::smache())
        .run_tiled(p, init, TilingSpec{2, 2, 1, 2});
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("multiple of the tiling depth"),
              std::string::npos)
        << e.what();
  }
}

TEST(TiledEngine, AggregatesTileCostsHonestly) {
  ProblemSpec p;
  p.height = 12;
  p.width = 12;
  p.shape = grid::StencilShape::von_neumann4();
  p.bc = BoundarySpec::all_open();
  p.steps = 4;
  const auto init = random_grid(p.height, p.width, 55);
  const Engine engine(EngineOptions::smache());
  const auto plain = engine.run(p, init);
  const auto tiled = engine.run_tiled(p, init, TilingSpec{2, 2, 1, 1});
  // Four replicated datapaths: more total resources than one...
  EXPECT_GT(tiled.resources.r_total, plain.resources.r_total);
  // ...and halo redundancy costs extra DRAM traffic, honestly charged.
  EXPECT_GT(tiled.dram.words_read, plain.dram.words_read);
  // Logical ops are tiling-invariant (redundant halo compute is a cost,
  // not output).
  EXPECT_EQ(tiled.ops, plain.ops);
  // Per-pass concurrency: a pass costs its slowest tile, so the total is
  // below the untiled serial cycle count for a same-size problem split 4
  // ways (each tile streams ~1/4 of the cells per pass).
  EXPECT_LT(tiled.cycles, plain.cycles);
}

}  // namespace
}  // namespace smache

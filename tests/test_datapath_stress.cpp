// Datapath stress: hostile bit patterns (NaN, infinities, denormals,
// all-ones, sign edge cases) must travel through the full simulated
// pipeline bit-exactly, and extreme grid geometries must work.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "core/engine.hpp"

namespace smache {
namespace {

TEST(DatapathStress, HostileFloatPatternsPassThroughIdentity) {
  // Identity kernel: every word must come out exactly as it went in,
  // whatever IEEE class its bits encode.
  ProblemSpec p;
  p.height = 4;
  p.width = 8;
  p.shape = grid::StencilShape::custom("c", {{0, 0}});
  p.bc = grid::BoundarySpec::all_open();
  p.kernel = rtl::KernelSpec{rtl::KernelKind::Identity,
                             rtl::ValueType::Float32, 0, 0};
  p.steps = 3;

  grid::Grid<word_t> init(4, 8);
  const word_t patterns[] = {
      0x7FC00000u,  // quiet NaN
      0x7F800000u,  // +inf
      0xFF800000u,  // -inf
      0x00000001u,  // smallest denormal
      0x807FFFFFu,  // largest negative denormal
      0x80000000u,  // -0.0
      0xFFFFFFFFu,  // NaN with payload
      0x3F800000u,  // 1.0
  };
  for (std::size_t i = 0; i < init.size(); ++i)
    init[i] = patterns[i % 8];

  const auto res = Engine(EngineOptions::smache()).run(p, init);
  EXPECT_EQ(res.output, init) << "identity must preserve every bit";
}

TEST(DatapathStress, NaNPropagatesIdenticallyToReference) {
  // Float averaging with NaNs present: hardware and reference must agree
  // bit-for-bit (NaN payload canonicalisation happens in both or neither,
  // since they share the arithmetic functor).
  ProblemSpec p;
  p.height = 6;
  p.width = 6;
  p.shape = grid::StencilShape::von_neumann4();
  p.bc = grid::BoundarySpec::all_periodic();
  p.kernel = rtl::KernelSpec::average_float();
  p.steps = 2;
  grid::Grid<word_t> init(6, 6, to_word(1.0f));
  init.at(2, 3) = 0x7FC00000u;  // NaN seed
  init.at(4, 1) = 0x7F800000u;  // +inf seed
  const auto res = Engine(EngineOptions::smache()).run(p, init);
  EXPECT_EQ(res.output, reference_run(p, init));
}

TEST(DatapathStress, IntExtremesThroughAverage) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 3;
  grid::Grid<word_t> init(11, 11);
  Rng rng(0x5712E55);
  const std::int32_t extremes[] = {
      std::numeric_limits<std::int32_t>::max(),
      std::numeric_limits<std::int32_t>::min(),
      -1,
      0,
      1,
  };
  for (std::size_t i = 0; i < init.size(); ++i)
    init[i] = to_word(extremes[rng.next_below(5)]);
  for (auto arch : {Architecture::Smache, Architecture::Baseline}) {
    EngineOptions opts;
    opts.arch = arch;
    EXPECT_EQ(Engine(opts).run(p, init).output, reference_run(p, init))
        << to_string(arch);
  }
}

TEST(DatapathStress, TallThinGrid) {
  ProblemSpec p;
  p.height = 64;
  p.width = 3;
  p.shape = grid::StencilShape::von_neumann4();
  p.bc = grid::BoundarySpec::paper_example();
  p.steps = 2;
  Rng rng(1);
  grid::Grid<word_t> init(64, 3);
  for (std::size_t i = 0; i < init.size(); ++i)
    init[i] = static_cast<word_t>(rng.next_below(999));
  EXPECT_EQ(Engine(EngineOptions::smache()).run(p, init).output,
            reference_run(p, init));
}

TEST(DatapathStress, ShortWideGrid) {
  ProblemSpec p;
  p.height = 3;
  p.width = 64;
  p.shape = grid::StencilShape::von_neumann4();
  p.bc = grid::BoundarySpec::paper_example();
  p.steps = 2;
  Rng rng(2);
  grid::Grid<word_t> init(3, 64);
  for (std::size_t i = 0; i < init.size(); ++i)
    init[i] = static_cast<word_t>(rng.next_below(999));
  EXPECT_EQ(Engine(EngineOptions::smache()).run(p, init).output,
            reference_run(p, init));
}

TEST(DatapathStress, MinimumViableGrid) {
  // The smallest grid the 4-point stencil admits: 3x3.
  ProblemSpec p;
  p.height = 3;
  p.width = 3;
  p.shape = grid::StencilShape::von_neumann4();
  p.bc = grid::BoundarySpec::all_periodic();
  p.steps = 4;
  grid::Grid<word_t> init(3, 3);
  for (std::size_t i = 0; i < 9; ++i)
    init[i] = static_cast<word_t>(i * 11 + 1);
  for (auto arch : {Architecture::Smache, Architecture::Baseline}) {
    EngineOptions opts;
    opts.arch = arch;
    EXPECT_EQ(Engine(opts).run(p, init).output, reference_run(p, init))
        << to_string(arch);
  }
}

TEST(DatapathStress, LargeGridLongRun) {
  // A heavier integration point: 96x96, 8 instances (~75k cells updated).
  ProblemSpec p = ProblemSpec::paper_example();
  p.height = 96;
  p.width = 96;
  p.steps = 8;
  Rng rng(3);
  grid::Grid<word_t> init(96, 96);
  for (std::size_t i = 0; i < init.size(); ++i)
    init[i] = static_cast<word_t>(rng.next_below(1 << 16));
  const auto res = Engine(EngineOptions::smache()).run(p, init);
  EXPECT_EQ(res.output, reference_run(p, init));
  // Streaming-rate sanity: ~1.05 cycles/point at this size.
  EXPECT_LT(static_cast<double>(res.cycles) /
                static_cast<double>(p.cells() * p.steps),
            1.2);
}

}  // namespace
}  // namespace smache

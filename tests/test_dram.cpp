// Unit tests for the DRAM model: burst streaming, pipelined latency,
// random-access throughput, row-buffer penalties, shared-bus contention,
// back-pressure, stall injection, traffic accounting.
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "mem/dram.hpp"
#include "sim/simulator.hpp"

namespace smache::mem {
namespace {

void load_iota(DramModel& d, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    d.poke(i, static_cast<word_t>(i + 100));
}

TEST(Dram, BurstStreamsOneWordPerCycle) {
  sim::Simulator sim;
  DramModel d(sim, "dram", 64, DramConfig::functional());
  load_iota(d, 64);
  d.read_req().push({0, 16});
  std::size_t got = 0;
  std::uint64_t first_cycle = 0, last_cycle = 0;
  for (int cycle = 0; cycle < 64 && got < 16; ++cycle) {
    sim.step();
    if (d.read_data().can_pop()) {
      const word_t v = d.read_data().pop();
      EXPECT_EQ(v, 100u + got);
      if (got == 0) first_cycle = sim.now();
      last_cycle = sim.now();
      ++got;
    }
  }
  ASSERT_EQ(got, 16u);
  // One word per cycle once streaming starts.
  EXPECT_EQ(last_cycle - first_cycle, 15u);
  EXPECT_EQ(d.stats().words_read, 16u);
  EXPECT_EQ(d.stats().read_requests, 1u);
}

TEST(Dram, BackToBackSingleWordRequestsSustainFullRate) {
  // The pipelined controller must not serialise latency per request.
  sim::Simulator sim;
  DramConfig cfg = DramConfig::functional();
  cfg.req_queue_depth = 8;
  DramModel d(sim, "dram", 64, cfg);
  load_iota(d, 64);
  std::size_t pushed = 0, got = 0;
  std::uint64_t first_cycle = 0, last_cycle = 0;
  for (int cycle = 0; cycle < 100 && got < 20; ++cycle) {
    if (pushed < 20 && d.read_req().can_push()) {
      d.read_req().push({pushed, 1});
      ++pushed;
    }
    sim.step();
    if (d.read_data().can_pop()) {
      d.read_data().pop();
      if (got == 0) first_cycle = sim.now();
      last_cycle = sim.now();
      ++got;
    }
  }
  ASSERT_EQ(got, 20u);
  EXPECT_EQ(last_cycle - first_cycle, 19u)
      << "random single-word requests must stream 1 word/cycle under the "
         "functional preset";
}

TEST(Dram, ReadLatencyIsPipelineDepth) {
  sim::Simulator sim;
  DramConfig cfg = DramConfig::functional();
  cfg.read_latency = 5;
  DramModel d(sim, "dram", 16, cfg);
  load_iota(d, 16);
  d.read_req().push({0, 1});
  sim.step();  // request becomes visible to the DRAM
  std::uint64_t cycles_to_data = 0;
  while (!d.read_data().can_pop()) {
    sim.step();
    ++cycles_to_data;
    ASSERT_LT(cycles_to_data, 50u);
  }
  // request pop + 5 transit stages + fifo stage.
  EXPECT_GE(cycles_to_data, 5u);
  EXPECT_LE(cycles_to_data, 8u);
}

TEST(Dram, WritesApplyAndCount) {
  sim::Simulator sim;
  DramModel d(sim, "dram", 16, DramConfig::functional());
  d.write_req().push({3, 42});
  sim.step();
  sim.step();
  EXPECT_EQ(d.peek(3), 42u);
  EXPECT_EQ(d.stats().words_written, 1u);
  EXPECT_EQ(d.stats().bytes_written(), 4u);
}

TEST(Dram, IndependentChannelsOverlapReadsAndWrites) {
  sim::Simulator sim;
  DramConfig cfg = DramConfig::functional();
  cfg.shared_bus = false;
  DramModel d(sim, "dram", 64, cfg);
  load_iota(d, 64);
  d.read_req().push({0, 20});
  std::size_t got = 0, written = 0;
  for (int cycle = 0; cycle < 60 && (got < 20 || written < 20); ++cycle) {
    if (written < 20 && d.write_req().can_push()) {
      d.write_req().push({32 + written, static_cast<word_t>(written)});
      ++written;
    }
    sim.step();
    if (d.read_data().can_pop()) {
      d.read_data().pop();
      ++got;
    }
  }
  EXPECT_EQ(got, 20u);
  EXPECT_EQ(d.stats().words_written, 20u);
}

TEST(Dram, SharedBusMakesWritesStealReadSlots) {
  auto run = [](bool shared) {
    sim::Simulator sim;
    DramConfig cfg = DramConfig::functional();
    cfg.shared_bus = shared;
    cfg.write_queue_depth = 64;
    DramModel d(sim, "dram", 256, cfg);
    d.read_req().push({0, 64});
    std::size_t got = 0, written = 0;
    std::uint64_t cycles = 0;
    while (got < 64 && cycles < 1000) {
      if (written < 64 && d.write_req().can_push()) {
        d.write_req().push({128 + written, 1});
        ++written;
      }
      sim.step();
      ++cycles;
      if (d.read_data().can_pop()) {
        d.read_data().pop();
        ++got;
      }
    }
    return cycles;
  };
  const auto independent = run(false);
  const auto shared = run(true);
  EXPECT_GT(shared, independent + 30)
      << "with a shared bus, 64 writes must delay the 64-word read burst";
}

TEST(Dram, RowModelPenalisesRandomAccess) {
  auto run = [](bool sequential) {
    sim::Simulator sim;
    DramConfig cfg = DramConfig::ddr_like();
    cfg.req_queue_depth = 8;
    DramModel d(sim, "dram", 8192, cfg);
    std::size_t pushed = 0, got = 0;
    std::uint64_t cycles = 0;
    while (got < 32 && cycles < 5000) {
      if (pushed < 32 && d.read_req().can_push()) {
        // Sequential: one row. Random: hop rows every request.
        const std::uint64_t addr =
            sequential ? pushed : (pushed * 1024 + 17) % 8000;
        d.read_req().push({addr, 1});
        ++pushed;
      }
      sim.step();
      ++cycles;
      if (d.read_data().can_pop()) {
        d.read_data().pop();
        ++got;
      }
    }
    return cycles;
  };
  const auto seq = run(true);
  const auto rnd = run(false);
  EXPECT_GT(rnd, seq * 3) << "row misses must dominate random access";
}

TEST(Dram, RowStatsCountHitsAndMisses) {
  sim::Simulator sim;
  DramConfig cfg = DramConfig::ddr_like();
  DramModel d(sim, "dram", 4096, cfg);
  d.read_req().push({0, 2048});  // crosses one row boundary at 1024
  std::size_t got = 0;
  while (got < 2048) {
    sim.step();
    if (d.read_data().can_pop()) {
      d.read_data().pop();
      ++got;
    }
    ASSERT_LT(sim.now(), 5000u);
  }
  EXPECT_EQ(d.stats().row_misses, 2u);  // initial activate + one crossing
}

TEST(Dram, BackpressureHoldsBurst) {
  sim::Simulator sim;
  DramConfig cfg = DramConfig::functional();
  cfg.data_queue_depth = 2;
  DramModel d(sim, "dram", 64, cfg);
  load_iota(d, 64);
  d.read_req().push({0, 10});
  // Never pop: the data fifo fills, the burst must hold without loss.
  for (int i = 0; i < 30; ++i) sim.step();
  EXPECT_EQ(d.read_data().size(), 2u);
  // Now drain and check sequence integrity.
  std::size_t got = 0;
  while (got < 10) {
    if (d.read_data().can_pop()) {
      EXPECT_EQ(d.read_data().pop(), 100u + got);
      ++got;
    }
    sim.step();
    ASSERT_LT(sim.now(), 200u);
  }
}

TEST(Dram, StallInjectionAddsCyclesNotErrors) {
  auto run = [](std::uint32_t every, std::uint32_t len) {
    sim::Simulator sim;
    DramConfig cfg = DramConfig::functional();
    cfg.stall_every = every;
    cfg.stall_cycles = len;
    DramModel d(sim, "dram", 128, cfg);
    for (std::size_t i = 0; i < 128; ++i)
      d.poke(i, static_cast<word_t>(i));
    d.read_req().push({0, 100});
    std::size_t got = 0;
    std::uint64_t cycles = 0;
    while (got < 100) {
      sim.step();
      ++cycles;
      if (d.read_data().can_pop()) {
        EXPECT_EQ(d.read_data().pop(), got);
        ++got;
      }
      EXPECT_LT(cycles, 3000u);
    }
    return std::pair{cycles, d.stats().injected_stall_cycles};
  };
  const auto [clean_cycles, clean_stalls] = run(0, 0);
  const auto [stall_cycles, stalls] = run(10, 5);
  EXPECT_EQ(clean_stalls, 0u);
  EXPECT_EQ(stalls, 50u);
  EXPECT_GE(stall_cycles, clean_cycles + 45);
}

TEST(Dram, OutOfRangeRequestsRejected) {
  sim::Simulator sim;
  DramModel d(sim, "dram", 16, DramConfig::functional());
  d.read_req().push({10, 10});  // runs past the end
  EXPECT_THROW(
      {
        for (int i = 0; i < 10; ++i) sim.step();
      },
      contract_error);
}

TEST(Dram, IdleReflectsInFlightWork) {
  sim::Simulator sim;
  DramModel d(sim, "dram", 32, DramConfig::functional());
  EXPECT_TRUE(d.idle());
  d.read_req().push({0, 4});
  sim.step();
  EXPECT_FALSE(d.idle());
  std::size_t got = 0;
  while (got < 4) {
    sim.step();
    if (d.read_data().can_pop()) {
      d.read_data().pop();
      ++got;
    }
    ASSERT_LT(sim.now(), 100u);
  }
  while (!d.idle()) {
    sim.step();
    ASSERT_LT(sim.now(), 120u);
  }
  EXPECT_TRUE(d.idle());
}

}  // namespace
}  // namespace smache::mem

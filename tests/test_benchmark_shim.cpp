// Meta-tests for the vendored minibenchmark shim: the bench targets only
// produce trustworthy numbers if State's iteration protocol, argument
// plumbing, and registration chaining behave like Google Benchmark's.
#include <gtest/gtest.h>

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

namespace {

TEST(BenchmarkShim, StateRunsExactlyRequestedIterations) {
  benchmark::State state(17, {});
  std::int64_t count = 0;
  for (auto _ : state) ++count;
  EXPECT_EQ(count, 17);
  EXPECT_EQ(state.iterations(), 17);
}

TEST(BenchmarkShim, StateWithZeroIterationsRunsNoBody) {
  benchmark::State state(0, {});
  bool entered = false;
  for (auto _ : state) entered = true;
  EXPECT_FALSE(entered);
}

TEST(BenchmarkShim, RangeDeliversArgumentsPositionally) {
  benchmark::State state(1, {11, 256});
  EXPECT_EQ(state.range(0), 11);
  EXPECT_EQ(state.range(1), 256);
  EXPECT_EQ(state.range(7), 0);  // out of range → benign zero
}

TEST(BenchmarkShim, CountersAndLabelAreRecorded) {
  benchmark::State state(4, {});
  for (auto _ : state) {
  }
  state.SetItemsProcessed(400);
  state.SetBytesProcessed(1600);
  state.SetLabel("label text");
  EXPECT_EQ(state.items_processed(), 400);
  EXPECT_EQ(state.bytes_processed(), 1600);
  EXPECT_STREQ(state.label().c_str(), "label text");
}

TEST(BenchmarkShim, RegistrationChainingAccumulatesArgSets) {
  auto* b = ::benchmark::internal::RegisterBenchmark(
      "BM_ShimSelfTest", [](benchmark::State& s) {
        for (auto _ : s) {
        }
      });
  b->Arg(4)->Arg(9)->Arg(16);
  ASSERT_EQ(b->arg_sets().size(), 3u);
  EXPECT_EQ(b->arg_sets()[1].front(), 9);
  EXPECT_STREQ(b->name().c_str(), "BM_ShimSelfTest");
}

TEST(BenchmarkShim, DoNotOptimizeAcceptsArbitraryValues) {
  const int x = 42;
  const std::string s = "sink";
  benchmark::DoNotOptimize(x);
  benchmark::DoNotOptimize(s);
  benchmark::ClobberMemory();
  SUCCEED();
}

}  // namespace

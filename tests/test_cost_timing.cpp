// Tests for the cost model (Table I estimate formulas), the device model,
// the calibrated timing model, and the DSE sweep.
#include <gtest/gtest.h>

#include <set>

#include "cost/cost_model.hpp"
#include "cost/device.hpp"
#include "cost/dse.hpp"
#include "cost/timing.hpp"
#include "model/planner.hpp"

namespace smache::cost {
namespace {

model::BufferPlan plan_for(std::size_t dim, model::StreamImpl impl) {
  model::PlannerOptions o;
  o.stream_impl = impl;
  return model::Planner(o).plan(dim, dim,
                                grid::StencilShape::von_neumann4(),
                                grid::BoundarySpec::paper_example());
}

TEST(CostModel, TableIEstimates11x11r) {
  const auto e =
      estimate_memory(plan_for(11, model::StreamImpl::RegisterOnly));
  EXPECT_EQ(e.r_stream, 800u);
  EXPECT_EQ(e.b_stream, 0u);
  EXPECT_EQ(e.b_static, 1408u);
  EXPECT_EQ(e.r_static, 0u);
}

TEST(CostModel, TableIEstimates11x11h) {
  const auto e = estimate_memory(plan_for(11, model::StreamImpl::Hybrid));
  EXPECT_EQ(e.r_stream, 352u);
  EXPECT_EQ(e.b_stream, 448u);
  EXPECT_EQ(e.b_static, 1408u);
}

TEST(CostModel, TableIEstimates1024r) {
  const auto e =
      estimate_memory(plan_for(1024, model::StreamImpl::RegisterOnly));
  EXPECT_EQ(e.r_stream, 65632u);
  EXPECT_EQ(e.b_static, 131072u);
}

TEST(CostModel, TableIEstimates1024h) {
  const auto e = estimate_memory(plan_for(1024, model::StreamImpl::Hybrid));
  EXPECT_EQ(e.r_stream, 352u);
  EXPECT_EQ(e.b_stream, 65280u);
  EXPECT_EQ(e.b_static, 131072u);
}

TEST(CostModel, ReplicasMultiplyStaticBits) {
  model::PlannerOptions o;
  const auto plan = model::Planner(o).plan(
      16, 16, grid::StencilShape::moore9(),
      {grid::AxisBoundary::periodic(), grid::AxisBoundary::open()});
  const auto e = estimate_memory(plan);
  // 2 banks x 3 replicas x 2 copies x 16 elems x 32 bits.
  EXPECT_EQ(e.b_static, 2u * 3 * 2 * 16 * 32);
}

TEST(Device, StratixVFitsThePaperDesigns) {
  const auto dev = DeviceModel::stratix_v();
  const auto e = estimate_memory(plan_for(1024, model::StreamImpl::Hybrid));
  const auto fit = check_fit(dev, e.r_total(), e.b_total());
  EXPECT_TRUE(fit.fits);
  EXPECT_LT(fit.bram_utilisation, 0.01);
}

TEST(Device, SmallDeviceRejectsRegisterHeavyDesign) {
  const auto dev = DeviceModel::small_device();
  const auto e =
      estimate_memory(plan_for(1024, model::StreamImpl::RegisterOnly));
  EXPECT_FALSE(check_fit(dev, e.r_total(), e.b_total()).fits);
}

TEST(Timing, CalibratedNearPaperSynthesisPoints) {
  // Baseline 372.9 MHz, Smache 235.3 MHz on the 11x11 problem; the model
  // is calibrated to land within 5% of both.
  const auto b = estimate_baseline_timing(4, 9);
  EXPECT_NEAR(b.fmax_mhz, 372.9, 372.9 * 0.05);
  const auto s = estimate_smache_timing(plan_for(11, model::StreamImpl::Hybrid));
  EXPECT_NEAR(s.fmax_mhz, 235.3, 235.3 * 0.05);
}

TEST(Timing, BaselineClocksFasterThanSmache) {
  const auto b = estimate_baseline_timing(4, 9);
  const auto s =
      estimate_smache_timing(plan_for(11, model::StreamImpl::Hybrid));
  EXPECT_GT(b.fmax_mhz, s.fmax_mhz);
}

TEST(Timing, MoreCasesLowerFmax) {
  // Moore (9 offsets) on all-periodic boundaries has the same 9 cases but
  // a deeper kernel tree; compare case growth instead with cross(2):
  // 5x5 = 25 cases vs 9 -> deeper case mux -> slower gather path.
  model::PlannerOptions o;
  const auto small_cases = model::Planner(o).plan(
      32, 32, grid::StencilShape::von_neumann4(),
      grid::BoundarySpec::paper_example());
  const auto many_cases = model::Planner(o).plan(
      32, 32, grid::StencilShape::cross(2),
      grid::BoundarySpec::paper_example());
  EXPECT_GT(many_cases.cases().case_count(),
            small_cases.cases().case_count());
  EXPECT_LT(estimate_smache_timing(many_cases).fmax_mhz,
            estimate_smache_timing(small_cases).fmax_mhz);
}

TEST(Timing, HugeRegisterWindowSlowsTheShiftEnable) {
  const auto small = plan_for(11, model::StreamImpl::RegisterOnly);
  const auto large = plan_for(1024, model::StreamImpl::RegisterOnly);
  EXPECT_LT(estimate_smache_timing(large).fmax_mhz,
            estimate_smache_timing(small).fmax_mhz);
}

TEST(Timing, ReportsDominantPath) {
  const auto s =
      estimate_smache_timing(plan_for(11, model::StreamImpl::Hybrid));
  EXPECT_FALSE(s.critical_path.empty());
  EXPECT_GT(s.critical_path_ns, 0.0);
}

TEST(Dse, SweepsBothCasesAndMarksPareto) {
  DseRequest req;
  req.height = 64;
  req.width = 64;
  const auto points = explore(req);
  ASSERT_GE(points.size(), 3u);
  bool saw_reg_only = false, any_pareto = false;
  for (const auto& p : points) {
    if (p.impl == model::StreamImpl::RegisterOnly) saw_reg_only = true;
    if (p.pareto) any_pareto = true;
  }
  EXPECT_TRUE(saw_reg_only);
  EXPECT_TRUE(any_pareto);
}

TEST(Dse, HybridDominatesOnRegistersAtScale) {
  DseRequest req;
  req.height = 512;
  req.width = 512;
  const auto points = explore(req);
  const DsePoint* reg_only = nullptr;
  const DsePoint* hybrid = nullptr;
  for (const auto& p : points) {
    if (p.impl == model::StreamImpl::RegisterOnly) reg_only = &p;
    else if (!hybrid) hybrid = &p;
  }
  ASSERT_NE(reg_only, nullptr);
  ASSERT_NE(hybrid, nullptr);
  // The paper's §IV trade-off: hybrid slashes registers, costs BRAM.
  EXPECT_LT(hybrid->memory.r_total(), reg_only->memory.r_total() / 50);
  EXPECT_GT(hybrid->memory.b_total(), reg_only->memory.b_total());
}

TEST(Dse, LabelsAreDistinct) {
  DseRequest req;
  req.height = 32;
  req.width = 32;
  const auto points = explore(req);
  std::set<std::string> labels;
  for (const auto& p : points) labels.insert(p.label());
  EXPECT_EQ(labels.size(), points.size());
}

}  // namespace
}  // namespace smache::cost

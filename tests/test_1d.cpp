// 1D stencil problems (height-1 grids): FIR filters and circular delay
// lines. Exercises the degenerate row axis through the planner, the
// engines, and the reference executor.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/engine.hpp"

namespace smache {
namespace {

grid::Grid<word_t> random_line(std::size_t w, std::uint64_t seed) {
  Rng rng(seed);
  grid::Grid<word_t> g(1, w);
  for (std::size_t i = 0; i < w; ++i)
    g[i] = static_cast<word_t>(rng.next_below(1 << 10));
  return g;
}

ProblemSpec fir_problem(std::size_t w, grid::AxisBoundary cols,
                        std::size_t steps) {
  ProblemSpec p;
  p.height = 1;
  p.width = w;
  p.shape = grid::StencilShape::custom("fir3", {{0, -1}, {0, 0}, {0, 1}});
  p.bc = {grid::AxisBoundary::open(), cols};
  p.kernel = rtl::KernelSpec::average_int();
  p.steps = steps;
  return p;
}

TEST(OneD, OpenFirMatchesReference) {
  const auto p = fir_problem(48, grid::AxisBoundary::open(), 3);
  const auto init = random_line(48, 1);
  for (auto arch : {Architecture::Smache, Architecture::Baseline}) {
    EngineOptions opts;
    opts.arch = arch;
    EXPECT_EQ(Engine(opts).run(p, init).output, reference_run(p, init))
        << to_string(arch);
  }
}

TEST(OneD, PeriodicRingMatchesReference) {
  // A circular 1D domain: the wrap distance is W-1 — inside the window,
  // so even periodic 1D needs no static buffers.
  const auto p = fir_problem(32, grid::AxisBoundary::periodic(), 4);
  const auto init = random_line(32, 2);
  const auto res = Engine(EngineOptions::smache()).run(p, init);
  EXPECT_EQ(res.output, reference_run(p, init));
  ASSERT_TRUE(res.plan.has_value());
  EXPECT_TRUE(res.plan->static_buffers().empty());
}

TEST(OneD, MirrorFirMatchesReference) {
  const auto p = fir_problem(20, grid::AxisBoundary::mirror(), 5);
  const auto init = random_line(20, 3);
  EXPECT_EQ(Engine(EngineOptions::smache()).run(p, init).output,
            reference_run(p, init));
}

TEST(OneD, WideFirTap5) {
  ProblemSpec p;
  p.height = 1;
  p.width = 40;
  p.shape = grid::StencilShape::custom(
      "fir5", {{0, -2}, {0, -1}, {0, 0}, {0, 1}, {0, 2}});
  p.bc = {grid::AxisBoundary::open(), grid::AxisBoundary::mirror()};
  p.kernel = rtl::KernelSpec::average_int();
  p.steps = 2;
  const auto init = random_line(40, 4);
  EXPECT_EQ(Engine(EngineOptions::smache()).run(p, init).output,
            reference_run(p, init));
}

TEST(OneD, PlannerBuildsMinimalWindow) {
  const auto p = fir_problem(100, grid::AxisBoundary::open(), 1);
  const auto plan = Engine(EngineOptions::smache()).plan_only(p);
  // Offsets -1..+1 linearise to -1..+1: window = reach + 3 = 5.
  EXPECT_EQ(plan.window_len(), 5u);
  EXPECT_EQ(plan.cases().case_count(), 3u);  // left edge, mid, right edge
}

TEST(OneD, IdentityShiftIsExact) {
  // Stencil {(0,1)} under periodic cols = circular left-shift per step.
  ProblemSpec p;
  p.height = 1;
  p.width = 16;
  p.shape = grid::StencilShape::custom("shift", {{0, 1}});
  p.bc = {grid::AxisBoundary::open(), grid::AxisBoundary::periodic()};
  p.kernel = rtl::KernelSpec{rtl::KernelKind::Identity,
                             rtl::ValueType::Int32, 0, 0};
  p.steps = 16;  // a full revolution restores the input
  const auto init = random_line(16, 5);
  const auto res = Engine(EngineOptions::smache()).run(p, init);
  EXPECT_EQ(res.output, init);
}

}  // namespace
}  // namespace smache

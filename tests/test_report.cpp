// Tests for the report formatting (the Figure 2 / Table I presentation
// layer) and the engine API surface (validation, option factories,
// summaries).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/report.hpp"

namespace smache {
namespace {

RunResult quick(Architecture arch) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 3;
  Rng rng(1);
  grid::Grid<word_t> init(11, 11);
  for (std::size_t i = 0; i < init.size(); ++i)
    init[i] = static_cast<word_t>(rng.next_below(100));
  EngineOptions opts;
  opts.arch = arch;
  return Engine(opts).run(p, init);
}

TEST(Report, Fig2ContainsAllFiveMetricRows) {
  const auto b = quick(Architecture::Baseline);
  const auto s = quick(Architecture::Smache);
  const std::string fig = format_fig2(b, s);
  EXPECT_NE(fig.find("Cycle-count"), std::string::npos);
  EXPECT_NE(fig.find("Freq (MHz)"), std::string::npos);
  EXPECT_NE(fig.find("DRAM Traffic (KiB)"), std::string::npos);
  EXPECT_NE(fig.find("Sim. Exec. Time (us)"), std::string::npos);
  EXPECT_NE(fig.find("Performance (MOPS)"), std::string::npos);
  EXPECT_NE(fig.find("speed-up"), std::string::npos);
}

TEST(Report, Table1RowsHaveEstimateAndActual) {
  const auto s = quick(Architecture::Smache);
  const std::string rows = format_table1_rows("11x11h", s);
  EXPECT_NE(rows.find("Estimate"), std::string::npos);
  EXPECT_NE(rows.find("Actual"), std::string::npos);
  EXPECT_NE(rows.find("Rsm"), std::string::npos);
  EXPECT_NE(rows.find("Btotal"), std::string::npos);
  EXPECT_NE(rows.find("11x11h"), std::string::npos);
}

TEST(Report, Table1RejectsBaselineResults) {
  const auto b = quick(Architecture::Baseline);
  EXPECT_THROW(format_table1_rows("x", b), contract_error);
}

TEST(EngineApi, SummaryMentionsKeyNumbers) {
  const auto s = quick(Architecture::Smache);
  const std::string sum = s.summary();
  EXPECT_NE(sum.find("smache"), std::string::npos);
  EXPECT_NE(sum.find("cycles="), std::string::npos);
  EXPECT_NE(sum.find("mops="), std::string::npos);
}

TEST(EngineApi, OptionFactories) {
  EXPECT_EQ(EngineOptions::baseline().arch, Architecture::Baseline);
  EXPECT_EQ(EngineOptions::smache().arch, Architecture::Smache);
  EXPECT_EQ(EngineOptions::smache(model::StreamImpl::RegisterOnly)
                .stream_impl,
            model::StreamImpl::RegisterOnly);
}

TEST(EngineApi, ValidationErrorsAreDescriptive) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 0;
  grid::Grid<word_t> init(11, 11);
  try {
    Engine(EngineOptions::smache()).run(p, init);
    FAIL() << "should have thrown";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("work-instance"),
              std::string::npos);
  }
}

TEST(EngineApi, DescribeIsHumanReadable) {
  const ProblemSpec p = ProblemSpec::paper_example();
  const std::string d = p.describe();
  EXPECT_NE(d.find("11x11"), std::string::npos);
  EXPECT_NE(d.find("von_neumann4"), std::string::npos);
  EXPECT_NE(d.find("periodic"), std::string::npos);
  EXPECT_NE(d.find("100 work-instance"), std::string::npos);
}

TEST(EngineApi, MaxCyclesWatchdogFires) {
  ProblemSpec p = ProblemSpec::paper_example();
  grid::Grid<word_t> init(11, 11, 0);
  EngineOptions opts = EngineOptions::smache();
  opts.max_cycles = 10;  // cannot possibly finish
  EXPECT_THROW(Engine(opts).run(p, init), contract_error);
}

TEST(EngineApi, ArchitectureNames) {
  EXPECT_STREQ(to_string(Architecture::Smache), "smache");
  EXPECT_STREQ(to_string(Architecture::Baseline), "baseline");
  EXPECT_STREQ(model::to_string(model::StreamImpl::Hybrid),
               "hybrid (Case-H)");
}

}  // namespace
}  // namespace smache

// Failure-injection tests: DRAM stall bursts, realistic latencies, tiny
// channel queues, and shared-bus contention must change CYCLE COUNTS only —
// never results. This validates the stall/back-pressure integration the
// paper's AXI4-Stream interface provides.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "support/test_grids.hpp"

namespace smache {
namespace {

grid::Grid<word_t> random_grid(std::size_t h, std::size_t w,
                               std::uint64_t seed) {
  return test_support::random_grid(h, w, seed, 1 << 16);
}

ProblemSpec small_problem() {
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 5;
  return p;
}

TEST(FailureInjection, DramStallsDoNotChangeResults) {
  const auto p = small_problem();
  const auto init = random_grid(11, 11, 31);
  const auto expected = reference_run(p, init);

  EngineOptions clean = EngineOptions::smache();
  const auto clean_res = Engine(clean).run(p, init);

  EngineOptions stalled = EngineOptions::smache();
  stalled.dram.stall_every = 7;
  stalled.dram.stall_cycles = 3;
  const auto stalled_res = Engine(stalled).run(p, init);

  EXPECT_EQ(clean_res.output, expected);
  EXPECT_EQ(stalled_res.output, expected);
  EXPECT_GT(stalled_res.cycles, clean_res.cycles)
      << "stalls must cost time";
  EXPECT_GT(stalled_res.dram.injected_stall_cycles, 0u);
}

TEST(FailureInjection, StallsEveryWordWorstCase) {
  const auto p = small_problem();
  const auto init = random_grid(11, 11, 32);
  EngineOptions brutal = EngineOptions::smache();
  brutal.dram.stall_every = 1;
  brutal.dram.stall_cycles = 2;
  const auto res = Engine(brutal).run(p, init);
  EXPECT_EQ(res.output, reference_run(p, init));
}

TEST(FailureInjection, BaselineSurvivesStallsToo) {
  const auto p = small_problem();
  const auto init = random_grid(11, 11, 33);
  EngineOptions stalled = EngineOptions::baseline();
  stalled.dram.stall_every = 5;
  stalled.dram.stall_cycles = 4;
  const auto res = Engine(stalled).run(p, init);
  EXPECT_EQ(res.output, reference_run(p, init));
}

TEST(FailureInjection, TinyQueuesOnlyCostCycles) {
  const auto p = small_problem();
  const auto init = random_grid(11, 11, 34);
  const auto expected = reference_run(p, init);
  for (auto arch : {Architecture::Smache, Architecture::Baseline}) {
    EngineOptions opts;
    opts.arch = arch;
    opts.dram.req_queue_depth = 1;
    opts.dram.data_queue_depth = 1;
    opts.dram.write_queue_depth = 1;
    const auto res = Engine(opts).run(p, init);
    EXPECT_EQ(res.output, expected) << to_string(arch);
  }
}

TEST(FailureInjection, DdrLikeTimingPreservesResults) {
  const auto p = small_problem();
  const auto init = random_grid(11, 11, 35);
  const auto expected = reference_run(p, init);
  for (auto arch : {Architecture::Smache, Architecture::Baseline}) {
    EngineOptions opts;
    opts.arch = arch;
    opts.dram = mem::DramConfig::ddr_like();
    const auto res = Engine(opts).run(p, init);
    EXPECT_EQ(res.output, expected) << to_string(arch);
  }
}

TEST(FailureInjection, SharedBusSmacheStillCorrect) {
  // Force the ablation topology: Smache on a shared single port.
  const auto p = small_problem();
  const auto init = random_grid(11, 11, 36);
  EngineOptions opts = EngineOptions::smache();
  opts.auto_bus = false;
  opts.dram.shared_bus = true;
  const auto res = Engine(opts).run(p, init);
  EXPECT_EQ(res.output, reference_run(p, init));
}

TEST(FailureInjection, IndependentBusBaselineStillCorrect) {
  const auto p = small_problem();
  const auto init = random_grid(11, 11, 37);
  EngineOptions opts = EngineOptions::baseline();
  opts.auto_bus = false;
  opts.dram.shared_bus = false;
  const auto res = Engine(opts).run(p, init);
  EXPECT_EQ(res.output, reference_run(p, init));
}

TEST(FailureInjection, DdrLikeWidensTheGap) {
  // Under realistic row-miss penalties the baseline's random accesses get
  // slower while Smache's sequential burst barely notices — the MP-STREAM
  // argument from the paper's introduction. The grid must span several
  // DRAM rows for row misses to exist at all, so use 32x32 with 64-word
  // rows (the 11x11 grid fits inside a single row and sees no misses).
  ProblemSpec p = ProblemSpec::paper_example();
  p.height = 32;
  p.width = 32;
  p.steps = 3;
  const auto init = random_grid(32, 32, 38);

  const auto cyc = [&](Architecture arch, bool realistic) {
    EngineOptions opts;
    opts.arch = arch;
    opts.dram = realistic ? mem::DramConfig::ddr_like()
                          : mem::DramConfig::functional();
    if (realistic) opts.dram.row_words = 64;
    return Engine(opts).run(p, init).cycles;
  };
  const double func_ratio =
      static_cast<double>(cyc(Architecture::Smache, false)) /
      static_cast<double>(cyc(Architecture::Baseline, false));
  const double ddr_ratio =
      static_cast<double>(cyc(Architecture::Smache, true)) /
      static_cast<double>(cyc(Architecture::Baseline, true));
  EXPECT_LT(ddr_ratio, func_ratio)
      << "realistic DRAM must favour Smache even more";
}

}  // namespace
}  // namespace smache

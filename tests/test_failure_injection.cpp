// Failure-injection tests: DRAM stall bursts, realistic latencies, tiny
// channel queues, and shared-bus contention must change CYCLE COUNTS only —
// never results. This validates the stall/back-pressure integration the
// paper's AXI4-Stream interface provides.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "support/test_grids.hpp"
#include "sweep/executor.hpp"
#include "sweep/faults.hpp"
#include "sweep/spec.hpp"

namespace smache {
namespace {

grid::Grid<word_t> random_grid(std::size_t h, std::size_t w,
                               std::uint64_t seed) {
  return test_support::random_grid(h, w, seed, 1 << 16);
}

ProblemSpec small_problem() {
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 5;
  return p;
}

TEST(FailureInjection, DramStallsDoNotChangeResults) {
  const auto p = small_problem();
  const auto init = random_grid(11, 11, 31);
  const auto expected = reference_run(p, init);

  EngineOptions clean = EngineOptions::smache();
  const auto clean_res = Engine(clean).run(p, init);

  EngineOptions stalled = EngineOptions::smache();
  stalled.dram.stall_every = 7;
  stalled.dram.stall_cycles = 3;
  const auto stalled_res = Engine(stalled).run(p, init);

  EXPECT_EQ(clean_res.output, expected);
  EXPECT_EQ(stalled_res.output, expected);
  EXPECT_GT(stalled_res.cycles, clean_res.cycles)
      << "stalls must cost time";
  EXPECT_GT(stalled_res.dram.injected_stall_cycles, 0u);
}

TEST(FailureInjection, StallsEveryWordWorstCase) {
  const auto p = small_problem();
  const auto init = random_grid(11, 11, 32);
  EngineOptions brutal = EngineOptions::smache();
  brutal.dram.stall_every = 1;
  brutal.dram.stall_cycles = 2;
  const auto res = Engine(brutal).run(p, init);
  EXPECT_EQ(res.output, reference_run(p, init));
}

TEST(FailureInjection, BaselineSurvivesStallsToo) {
  const auto p = small_problem();
  const auto init = random_grid(11, 11, 33);
  EngineOptions stalled = EngineOptions::baseline();
  stalled.dram.stall_every = 5;
  stalled.dram.stall_cycles = 4;
  const auto res = Engine(stalled).run(p, init);
  EXPECT_EQ(res.output, reference_run(p, init));
}

TEST(FailureInjection, TinyQueuesOnlyCostCycles) {
  const auto p = small_problem();
  const auto init = random_grid(11, 11, 34);
  const auto expected = reference_run(p, init);
  for (auto arch : {Architecture::Smache, Architecture::Baseline}) {
    EngineOptions opts;
    opts.arch = arch;
    opts.dram.req_queue_depth = 1;
    opts.dram.data_queue_depth = 1;
    opts.dram.write_queue_depth = 1;
    const auto res = Engine(opts).run(p, init);
    EXPECT_EQ(res.output, expected) << to_string(arch);
  }
}

TEST(FailureInjection, DdrLikeTimingPreservesResults) {
  const auto p = small_problem();
  const auto init = random_grid(11, 11, 35);
  const auto expected = reference_run(p, init);
  for (auto arch : {Architecture::Smache, Architecture::Baseline}) {
    EngineOptions opts;
    opts.arch = arch;
    opts.dram = mem::DramConfig::ddr_like();
    const auto res = Engine(opts).run(p, init);
    EXPECT_EQ(res.output, expected) << to_string(arch);
  }
}

TEST(FailureInjection, SharedBusSmacheStillCorrect) {
  // Force the ablation topology: Smache on a shared single port.
  const auto p = small_problem();
  const auto init = random_grid(11, 11, 36);
  EngineOptions opts = EngineOptions::smache();
  opts.auto_bus = false;
  opts.dram.shared_bus = true;
  const auto res = Engine(opts).run(p, init);
  EXPECT_EQ(res.output, reference_run(p, init));
}

TEST(FailureInjection, IndependentBusBaselineStillCorrect) {
  const auto p = small_problem();
  const auto init = random_grid(11, 11, 37);
  EngineOptions opts = EngineOptions::baseline();
  opts.auto_bus = false;
  opts.dram.shared_bus = false;
  const auto res = Engine(opts).run(p, init);
  EXPECT_EQ(res.output, reference_run(p, init));
}

TEST(FailureInjection, DdrLikeWidensTheGap) {
  // Under realistic row-miss penalties the baseline's random accesses get
  // slower while Smache's sequential burst barely notices — the MP-STREAM
  // argument from the paper's introduction. The grid must span several
  // DRAM rows for row misses to exist at all, so use 32x32 with 64-word
  // rows (the 11x11 grid fits inside a single row and sees no misses).
  ProblemSpec p = ProblemSpec::paper_example();
  p.height = 32;
  p.width = 32;
  p.steps = 3;
  const auto init = random_grid(32, 32, 38);

  const auto cyc = [&](Architecture arch, bool realistic) {
    EngineOptions opts;
    opts.arch = arch;
    opts.dram = realistic ? mem::DramConfig::ddr_like()
                          : mem::DramConfig::functional();
    if (realistic) opts.dram.row_words = 64;
    return Engine(opts).run(p, init).cycles;
  };
  const double func_ratio =
      static_cast<double>(cyc(Architecture::Smache, false)) /
      static_cast<double>(cyc(Architecture::Baseline, false));
  const double ddr_ratio =
      static_cast<double>(cyc(Architecture::Smache, true)) /
      static_cast<double>(cyc(Architecture::Baseline, true));
  EXPECT_LT(ddr_ratio, func_ratio)
      << "realistic DRAM must favour Smache even more";
}

// ---- injected fault hooks (stall storms, delayed completions) ------------

TEST(FaultInjection, StallStormsCostCyclesNeverCorrectness) {
  const auto p = small_problem();
  const auto init = random_grid(11, 11, 41);
  const auto expected = reference_run(p, init);

  const auto clean = Engine(EngineOptions::smache()).run(p, init);
  EngineOptions stormy = EngineOptions::smache();
  stormy.dram.storm_every = 13;
  stormy.dram.storm_cycles = 9;
  const auto res = Engine(stormy).run(p, init);

  EXPECT_EQ(res.output, expected);
  EXPECT_GT(res.cycles, clean.cycles) << "storms must cost time";
  EXPECT_GT(res.dram.injected_stall_cycles, 0u);
  // Determinism: the trip points are word counts, so the injected run is
  // bit-reproducible cycle for cycle.
  EXPECT_EQ(Engine(stormy).run(p, init).cycles, res.cycles);
}

TEST(FaultInjection, StormsComposeWithPeriodicStalls) {
  const auto p = small_problem();
  const auto init = random_grid(11, 11, 42);
  EngineOptions both = EngineOptions::smache();
  both.dram.stall_every = 7;
  both.dram.stall_cycles = 3;
  both.dram.storm_every = 7;  // storms land ON stall cycles: must extend,
  both.dram.storm_cycles = 5; // not overwrite
  EngineOptions stalls_only = both;
  stalls_only.dram.storm_every = 0;
  const auto combined = Engine(both).run(p, init);
  const auto stalls = Engine(stalls_only).run(p, init);
  EXPECT_EQ(combined.output, reference_run(p, init));
  EXPECT_GT(combined.cycles, stalls.cycles);
  EXPECT_GT(combined.dram.injected_stall_cycles,
            stalls.dram.injected_stall_cycles);
}

TEST(FaultInjection, DelayedCompletionsCostCyclesNeverCorrectness) {
  const auto p = small_problem();
  const auto init = random_grid(11, 11, 43);
  const auto expected = reference_run(p, init);

  const auto clean = Engine(EngineOptions::smache()).run(p, init);
  EngineOptions delayed = EngineOptions::smache();
  delayed.dram.delay_every = 11;
  delayed.dram.delay_cycles = 6;
  const auto res = Engine(delayed).run(p, init);

  EXPECT_EQ(res.output, expected);
  EXPECT_GT(res.cycles, clean.cycles) << "held completions must cost time";
  EXPECT_GT(res.dram.injected_delay_cycles, 0u);
  EXPECT_EQ(res.dram.words_read, clean.dram.words_read)
      << "a delay holds words, it must not drop or duplicate them";
  EXPECT_EQ(Engine(delayed).run(p, init).cycles, res.cycles);

  // The baseline architecture survives the same treatment.
  EngineOptions base = EngineOptions::baseline();
  base.dram.delay_every = 5;
  base.dram.delay_cycles = 4;
  EXPECT_EQ(Engine(base).run(p, init).output, expected);
}

TEST(FaultInjection, DelayEveryWordWorstCase) {
  const auto p = small_problem();
  const auto init = random_grid(11, 11, 44);
  EngineOptions brutal = EngineOptions::smache();
  brutal.dram.delay_every = 1;
  brutal.dram.delay_cycles = 3;
  brutal.dram.storm_every = 1;
  brutal.dram.storm_cycles = 2;
  const auto res = Engine(brutal).run(p, init);
  EXPECT_EQ(res.output, reference_run(p, init));
  EXPECT_GT(res.dram.injected_delay_cycles, 0u);
  EXPECT_GT(res.dram.injected_stall_cycles, 0u);
}

TEST(FaultInjection, FaultPlanAppliesByLabelSubstring) {
  sweep::FaultPlan plan;
  sweep::DramFault storm;
  storm.label_contains = "moore9";
  storm.storm_every = 50;
  storm.storm_cycles = 4;
  plan.dram.push_back(storm);
  sweep::DramFault delay;  // empty label_contains: matches everything
  delay.delay_every = 80;
  delay.delay_cycles = 2;
  plan.dram.push_back(delay);

  mem::DramConfig vn4_config = mem::DramConfig::functional();
  EXPECT_TRUE(plan.apply("sim/smache/8x8/vn4/open", &vn4_config));
  EXPECT_EQ(vn4_config.storm_every, 0u);   // moore9 fault did not match
  EXPECT_EQ(vn4_config.delay_every, 80u);  // match-all fault did

  mem::DramConfig moore_config = mem::DramConfig::functional();
  EXPECT_TRUE(plan.apply("sim/smache/8x8/moore9/open", &moore_config));
  EXPECT_EQ(moore_config.storm_every, 50u);
  EXPECT_EQ(moore_config.storm_cycles, 4u);
  EXPECT_EQ(moore_config.delay_every, 80u);

  const sweep::FaultPlan none;
  mem::DramConfig untouched = mem::DramConfig::functional();
  EXPECT_FALSE(none.apply("anything", &untouched));
}

TEST(FaultInjection, SeededPlansAreReproducibleAndSeedSensitive) {
  const sweep::FaultPlan a = sweep::FaultPlan::seeded(1234, 8);
  const sweep::FaultPlan b = sweep::FaultPlan::seeded(1234, 8);
  const sweep::FaultPlan c = sweep::FaultPlan::seeded(1235, 8);
  ASSERT_EQ(a.dram.size(), 8u);
  bool differs = false;
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(a.dram[i].storm_every, b.dram[i].storm_every);
    EXPECT_EQ(a.dram[i].storm_cycles, b.dram[i].storm_cycles);
    EXPECT_EQ(a.dram[i].delay_every, b.dram[i].delay_every);
    EXPECT_EQ(a.dram[i].delay_cycles, b.dram[i].delay_cycles);
    differs |= a.dram[i].storm_every != c.dram[i].storm_every ||
               a.dram[i].delay_every != c.dram[i].delay_every;
    // Bounds contract: periods in [64, 1087], magnitudes in [1, 8].
    const auto every =
        a.dram[i].storm_every != 0 ? a.dram[i].storm_every
                                   : a.dram[i].delay_every;
    const auto cycles =
        a.dram[i].storm_every != 0 ? a.dram[i].storm_cycles
                                   : a.dram[i].delay_cycles;
    EXPECT_GE(every, 64u);
    EXPECT_LE(every, 1087u);
    EXPECT_GE(cycles, 1u);
    EXPECT_LE(cycles, 8u);
  }
  EXPECT_TRUE(differs) << "different seeds must give different plans";
}

TEST(FaultInjection, FaultedSweepDegradesGracefullyAndDeterministically) {
  // End-to-end: a seeded plan injected through the executor slows matching
  // scenarios down without changing a single output bit, and the faulted
  // sweep is itself bit-reproducible (same digest on re-run).
  sweep::SweepSpec spec;
  spec.grids = {{8, 8}};
  spec.steps = {2};
  spec.stencils = {"vn4", "moore9"};
  spec.boundaries = {"open"};
  const auto clean = sweep::SweepExecutor().run(spec);

  sweep::FaultPlan plan = sweep::FaultPlan::seeded(99, 2);
  for (auto& f : plan.dram) {  // tighten periods so tiny runs see faults
    if (f.storm_every != 0) f.storm_every = 16;
    if (f.delay_every != 0) f.delay_every = 16;
  }
  sweep::ExecutorOptions opts;
  opts.fault_plan = &plan;
  opts.threads = 2;
  const auto faulted = sweep::SweepExecutor(opts).run(spec);
  const auto faulted_again = sweep::SweepExecutor(opts).run(spec);
  ASSERT_EQ(faulted.size(), clean.size());
  EXPECT_EQ(sweep::SweepExecutor::digest(faulted),
            sweep::SweepExecutor::digest(faulted_again));
  for (std::size_t i = 0; i < clean.size(); ++i) {
    ASSERT_TRUE(faulted[i].ok) << faulted[i].error;
    EXPECT_EQ(faulted[i].output_hash, clean[i].output_hash)
        << "faults must never change results";
    EXPECT_GT(faulted[i].run.cycles, clean[i].run.cycles)
        << faulted[i].scenario.label;
  }
}

}  // namespace
}  // namespace smache

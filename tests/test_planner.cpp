// Tests for the Planner: window geometry, the register/BRAM hybrid split,
// static-buffer derivation, and the gather table — including the exact
// microarchitectural constants Table I of the paper is built on.
#include <gtest/gtest.h>

#include <set>

#include "common/assert.hpp"
#include "model/planner.hpp"

namespace smache::model {
namespace {

Planner hybrid_planner(std::size_t threshold = 4) {
  PlannerOptions o;
  o.stream_impl = StreamImpl::Hybrid;
  o.bram_segment_threshold = threshold;
  return Planner(o);
}

Planner regonly_planner() {
  PlannerOptions o;
  o.stream_impl = StreamImpl::RegisterOnly;
  return Planner(o);
}

TEST(Planner, PaperWindowGeometry) {
  // 11x11, 4-point stencil: window = 2W+3 = 25 elements, centre age W+2.
  const auto plan = hybrid_planner().plan(
      11, 11, grid::StencilShape::von_neumann4(),
      grid::BoundarySpec::paper_example());
  EXPECT_EQ(plan.window_len(), 25u);
  EXPECT_EQ(plan.center_age(), 13u);
}

TEST(Planner, PaperHybridSplitMatchesTableI) {
  // Table I's estimate rows encode: 11 window registers, 14 BRAM elements
  // (two FIFO segments of W-4 = 7).
  const auto plan = hybrid_planner().plan(
      11, 11, grid::StencilShape::von_neumann4(),
      grid::BoundarySpec::paper_example());
  EXPECT_EQ(plan.reg_window_elems(), 11u);
  EXPECT_EQ(plan.bram_window_elems(), 14u);
  ASSERT_EQ(plan.fifo_segments().size(), 2u);
  EXPECT_EQ(plan.fifo_segments()[0].bram_len, 7u);
  EXPECT_EQ(plan.fifo_segments()[1].bram_len, 7u);
}

TEST(Planner, PaperHybridSplitScalesTo1024) {
  const auto plan = hybrid_planner().plan(
      1024, 1024, grid::StencilShape::von_neumann4(),
      grid::BoundarySpec::paper_example());
  EXPECT_EQ(plan.window_len(), 2051u);
  EXPECT_EQ(plan.reg_window_elems(), 11u);
  EXPECT_EQ(plan.bram_window_elems(), 2040u);
}

TEST(Planner, RegisterOnlyPutsEverythingInRegs) {
  const auto plan = regonly_planner().plan(
      11, 11, grid::StencilShape::von_neumann4(),
      grid::BoundarySpec::paper_example());
  EXPECT_EQ(plan.reg_window_elems(), 25u);
  EXPECT_EQ(plan.bram_window_elems(), 0u);
  EXPECT_TRUE(plan.fifo_segments().empty());
}

TEST(Planner, PaperStaticBuffersAreTopAndBottomRows) {
  const auto plan = hybrid_planner().plan(
      11, 11, grid::StencilShape::von_neumann4(),
      grid::BoundarySpec::paper_example());
  ASSERT_EQ(plan.static_buffers().size(), 2u);
  std::set<std::size_t> rows;
  for (const auto& b : plan.static_buffers()) {
    rows.insert(b.grid_row);
    EXPECT_EQ(b.length, 11u);
    EXPECT_EQ(b.replicas, 1u);
    EXPECT_TRUE(b.write_through);
  }
  EXPECT_EQ(rows, (std::set<std::size_t>{0, 10}));
  EXPECT_TRUE(plan.needs_warmup());
}

TEST(Planner, OpenBoundariesNeedNoStaticBuffers) {
  const auto plan = hybrid_planner().plan(
      11, 11, grid::StencilShape::von_neumann4(),
      grid::BoundarySpec::all_open());
  EXPECT_TRUE(plan.static_buffers().empty());
  EXPECT_FALSE(plan.needs_warmup());
}

TEST(Planner, MirrorBoundariesResolveInWindow) {
  const auto plan = hybrid_planner().plan(
      11, 11, grid::StencilShape::von_neumann4(),
      grid::BoundarySpec::all_mirror());
  EXPECT_TRUE(plan.static_buffers().empty());
}

TEST(Planner, TinyPeriodicGridPrefersWindowExtension) {
  // H=3: the wrap target is only 2W away; extending the window (+W each
  // side) is cheaper than two double-buffered row banks (4W).
  const auto plan = hybrid_planner().plan(
      3, 11, grid::StencilShape::von_neumann4(),
      {grid::AxisBoundary::periodic(), grid::AxisBoundary::open()});
  EXPECT_TRUE(plan.static_buffers().empty());
  EXPECT_EQ(plan.window_len(), 2u * 22 + 3);
}

TEST(Planner, FivePointCrossGetsFourStaticBuffers) {
  // cross(2) with periodic rows: rows 0,1 and H-2,H-1 are all both far
  // targets; four banks, all write-through.
  const auto plan = hybrid_planner().plan(
      64, 64, grid::StencilShape::cross(2),
      {grid::AxisBoundary::periodic(), grid::AxisBoundary::open()});
  std::set<std::size_t> rows;
  for (const auto& b : plan.static_buffers()) rows.insert(b.grid_row);
  EXPECT_EQ(rows, (std::set<std::size_t>{0, 1, 62, 63}));
}

TEST(Planner, MoorePeriodicRowsReplicatesBanks) {
  // Moore's three upper offsets all hit the bottom-row bank in the top-row
  // cases -> 3 concurrent reads -> 3 replicas (the paper's multi-port
  // observation).
  const auto plan = hybrid_planner().plan(
      16, 16, grid::StencilShape::moore9(),
      {grid::AxisBoundary::periodic(), grid::AxisBoundary::open()});
  ASSERT_EQ(plan.static_buffers().size(), 2u);
  for (const auto& b : plan.static_buffers()) EXPECT_EQ(b.replicas, 3u);
}

TEST(Planner, GatherTableCoversEveryCaseAndOffset) {
  const auto plan = hybrid_planner().plan(
      11, 11, grid::StencilShape::von_neumann4(),
      grid::BoundarySpec::paper_example());
  EXPECT_EQ(plan.cases().case_count(), 9u);
  for (std::size_t id = 0; id < 9; ++id)
    EXPECT_EQ(plan.gather(id).size(), 4u);
}

TEST(Planner, GatherMidCaseIsAllWindow) {
  const auto plan = hybrid_planner().plan(
      11, 11, grid::StencilShape::von_neumann4(),
      grid::BoundarySpec::paper_example());
  const auto mid = plan.cases().case_of(5, 5);
  for (const auto& g : plan.gather(mid))
    EXPECT_EQ(g.kind, SourceKind::Window);
  // Tap ages for N,W,E,S at centre age 13: 13+11=24, 14, 12, 13-11=2.
  EXPECT_EQ(plan.gather(mid)[0].window_age, 24u);
  EXPECT_EQ(plan.gather(mid)[1].window_age, 14u);
  EXPECT_EQ(plan.gather(mid)[2].window_age, 12u);
  EXPECT_EQ(plan.gather(mid)[3].window_age, 2u);
}

TEST(Planner, GatherCornerCaseMixesSources) {
  const auto plan = hybrid_planner().plan(
      11, 11, grid::StencilShape::von_neumann4(),
      grid::BoundarySpec::paper_example());
  const auto corner = plan.cases().case_of(0, 0);
  const auto& g = plan.gather(corner);
  EXPECT_EQ(g[0].kind, SourceKind::Static);  // N wraps to bottom row
  EXPECT_EQ(g[0].col_shift, 0);
  EXPECT_EQ(g[1].kind, SourceKind::Skip);    // W open
  EXPECT_EQ(g[2].kind, SourceKind::Window);  // E
  EXPECT_EQ(g[3].kind, SourceKind::Window);  // S
}

TEST(Planner, ConstantBoundaryProducesConstantSources) {
  const auto plan = hybrid_planner().plan(
      8, 8, grid::StencilShape::von_neumann4(),
      {grid::AxisBoundary::constant_halo(77), grid::AxisBoundary::open()});
  const auto top = plan.cases().case_of(0, 3);
  EXPECT_EQ(plan.gather(top)[0].kind, SourceKind::Constant);
  EXPECT_EQ(plan.gather(top)[0].constant, 77u);
}

TEST(Planner, WindowTapsAreRegisterMapped) {
  for (auto impl : {StreamImpl::RegisterOnly, StreamImpl::Hybrid}) {
    PlannerOptions o;
    o.stream_impl = impl;
    const auto plan = Planner(o).plan(
        10, 12, grid::StencilShape::moore9(),
        grid::BoundarySpec::all_periodic());
    std::set<std::size_t> regs(plan.reg_ages().begin(),
                               plan.reg_ages().end());
    for (auto age : plan.tap_ages())
      EXPECT_TRUE(regs.count(age)) << "tap age " << age
                                   << " must be a register";
  }
}

TEST(Planner, WindowAccountingIsExhaustive) {
  // Every window age is either a register or inside exactly one BRAM
  // segment.
  const auto plan = hybrid_planner().plan(
      32, 32, grid::StencilShape::von_neumann4(),
      grid::BoundarySpec::paper_example());
  std::vector<int> owner(plan.window_len() + 1, 0);
  for (auto age : plan.reg_ages()) owner[age] += 1;
  for (const auto& s : plan.fifo_segments())
    for (std::size_t a = s.in_stage_age + 1; a < s.out_stage_age; ++a)
      owner[a] += 1;
  for (std::size_t age = 1; age <= plan.window_len(); ++age)
    EXPECT_EQ(owner[age], 1) << "age " << age;
  EXPECT_EQ(plan.reg_window_elems() + plan.bram_window_elems(),
            plan.window_len());
}

TEST(Planner, ThresholdBelowThreeRejected) {
  PlannerOptions o;
  o.bram_segment_threshold = 2;
  EXPECT_THROW(Planner(o).plan(11, 11, grid::StencilShape::von_neumann4(),
                               grid::BoundarySpec::paper_example()),
               smache::contract_error);
}

TEST(Planner, LargeThresholdDegeneratesToRegisterOnly) {
  PlannerOptions o;
  o.stream_impl = StreamImpl::Hybrid;
  o.bram_segment_threshold = 1000;
  const auto plan = Planner(o).plan(11, 11,
                                    grid::StencilShape::von_neumann4(),
                                    grid::BoundarySpec::paper_example());
  EXPECT_EQ(plan.reg_window_elems(), plan.window_len());
  EXPECT_TRUE(plan.fifo_segments().empty());
}

TEST(Planner, BudgetEnforced) {
  PlannerOptions o;
  o.onchip_budget_bits = 100;  // absurdly small
  EXPECT_THROW(Planner(o).plan(11, 11, grid::StencilShape::von_neumann4(),
                               grid::BoundarySpec::paper_example()),
               smache::contract_error);
  PlannerOptions generous;
  generous.onchip_budget_bits = 10'000'000;
  EXPECT_NO_THROW(Planner(generous).plan(
      11, 11, grid::StencilShape::von_neumann4(),
      grid::BoundarySpec::paper_example()));
}

TEST(Planner, GridTooSmallForStencilRejected) {
  EXPECT_THROW(hybrid_planner().plan(2, 11,
                                     grid::StencilShape::von_neumann4(),
                                     grid::BoundarySpec::all_open()),
               smache::contract_error);
}

TEST(Planner, DescribeMentionsKeyFacts) {
  const auto plan = hybrid_planner().plan(
      11, 11, grid::StencilShape::von_neumann4(),
      grid::BoundarySpec::paper_example());
  const std::string d = plan.describe();
  EXPECT_NE(d.find("window: 25"), std::string::npos);
  EXPECT_NE(d.find("static buffers: 2"), std::string::npos);
  EXPECT_NE(d.find("cases: 9"), std::string::npos);
}

}  // namespace
}  // namespace smache::model

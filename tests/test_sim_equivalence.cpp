// Semantic-equivalence wall for the simulator hot-path overhaul (dirty-list
// commits, ring-buffer FIFOs, batched completion polling): every value here
// was captured from the PRE-overhaul per-cycle-checked simulator (the PR-1
// seed semantics) and must stay bit-identical forever. A drift in any cycle
// count, DRAM counter, output hash or rendered summary means the refactored
// substrate changed observable behaviour, not just speed.
//
// Configurations cover the three tops (smache, baseline, cascade), both
// stream implementations, the ddr-like row model, and DRAM stall injection
// — i.e. every scheduling path the overhaul touched.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "support/test_grids.hpp"

namespace smache {
namespace {

std::uint64_t fnv1a(const grid::Grid<word_t>& g) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < g.size(); ++i) {
    h ^= static_cast<std::uint64_t>(g[i]);
    h *= 1099511628211ull;
  }
  return h;
}

struct Golden {
  std::uint64_t cycles;
  std::uint64_t warmup;
  std::uint64_t read_requests;
  std::uint64_t words_read;
  std::uint64_t words_written;
  std::uint64_t row_hits;
  std::uint64_t row_misses;
  std::uint64_t read_busy_cycles;
  std::uint64_t output_hash;
  const char* summary;
};

void expect_matches(const RunResult& r, const Golden& g) {
  EXPECT_EQ(r.cycles, g.cycles);
  EXPECT_EQ(r.warmup_cycles, g.warmup);
  EXPECT_EQ(r.dram.read_requests, g.read_requests);
  EXPECT_EQ(r.dram.words_read, g.words_read);
  EXPECT_EQ(r.dram.words_written, g.words_written);
  EXPECT_EQ(r.dram.row_hits, g.row_hits);
  EXPECT_EQ(r.dram.row_misses, g.row_misses);
  EXPECT_EQ(r.dram.read_busy_cycles, g.read_busy_cycles);
  EXPECT_EQ(fnv1a(*r.output), g.output_hash);
  EXPECT_EQ(r.summary(), g.summary);
}

// Grid used by the seed capture: full-width random words, same as
// test_support::random_grid's default bound.
grid::Grid<word_t> seed_grid(std::size_t h, std::size_t w,
                             std::uint64_t seed) {
  return test_support::random_grid(h, w, seed);
}

TEST(SimEquivalence, SmacheHybridPaperExample) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 7;
  const auto r =
      Engine(EngineOptions::smache()).run(p, seed_grid(11, 11, 90));
  expect_matches(r, Golden{1045, 30, 9, 869, 847, 0, 0, 869,
                           5932556407641113847ull,
                           "smache: cycles=1045 fmax=238.279MHz "
                           "dram_read=3476B dram_write=3388B "
                           "time=4.38561us mops=772.527"});
}

TEST(SimEquivalence, SmacheRegisterOnlyPaperExample) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 7;
  const auto r = Engine(EngineOptions::smache(model::StreamImpl::RegisterOnly))
                     .run(p, seed_grid(11, 11, 90));
  // Same cycles/traffic/output as the hybrid plan; only the timing model
  // (and thus the derived us/mops fields) differs.
  expect_matches(r, Golden{1045, 30, 9, 869, 847, 0, 0, 869,
                           5932556407641113847ull,
                           "smache: cycles=1045 fmax=233.018MHz "
                           "dram_read=3476B dram_write=3388B "
                           "time=4.48463us mops=755.47"});
}

TEST(SimEquivalence, BaselinePaperExample) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 4;
  const auto r =
      Engine(EngineOptions::baseline()).run(p, seed_grid(11, 11, 91));
  expect_matches(r, Golden{2439, 0, 1936, 1936, 484, 0, 0, 1936,
                           4518992472128534969ull,
                           "baseline: cycles=2439 fmax=381.679MHz "
                           "dram_read=7744B dram_write=1936B "
                           "time=6.39018us mops=302.965"});
}

TEST(SimEquivalence, CascadeOpenBoundaries) {
  ProblemSpec p;
  p.height = 10;
  p.width = 10;
  p.shape = grid::StencilShape::von_neumann4();
  p.bc = grid::BoundarySpec::all_open();
  p.steps = 6;
  const auto r = Engine(EngineOptions::smache())
                     .run_cascade(p, seed_grid(10, 10, 92), 3);
  // warmup=57 is the one intentional drift from the seed capture: the seed
  // left RunResult::warmup_cycles at 0 for cascade runs (a reporting bug —
  // the smache path populates it), so this pins the cascade's pipeline-fill
  // warmup (CascadeTop::warmup_end_cycle) instead. Every other field is
  // the seed value.
  expect_matches(r, Golden{317, 57, 2, 200, 200, 0, 0, 200,
                           17733085793374785782ull,
                           "smache: cycles=317 fmax=238.279MHz "
                           "dram_read=800B dram_write=800B "
                           "time=1.33037us mops=1804.01"});
}

// 32x32 sweep configuration (the scaling bench's shape), bounded values.
grid::Grid<word_t> scaling_grid32() {
  Rng rng(32);
  grid::Grid<word_t> init(32, 32);
  for (std::size_t i = 0; i < init.size(); ++i)
    init[i] = static_cast<word_t>(rng.next_below(1000));
  return init;
}

TEST(SimEquivalence, SmacheScaling32) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.height = 32;
  p.width = 32;
  p.steps = 5;
  const auto r = Engine(EngineOptions::smache()).run(p, scaling_grid32());
  expect_matches(r, Golden{5417, 72, 7, 5184, 5120, 0, 0, 5184,
                           2350172435106772504ull,
                           "smache: cycles=5417 fmax=238.279MHz "
                           "dram_read=20736B dram_write=20480B "
                           "time=22.7338us mops=900.861"});
}

TEST(SimEquivalence, BaselineScaling32) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.height = 32;
  p.width = 32;
  p.steps = 5;
  const auto r = Engine(EngineOptions::baseline()).run(p, scaling_grid32());
  expect_matches(r, Golden{25624, 0, 20480, 20480, 5120, 0, 0, 20480,
                           2350172435106772504ull,
                           "baseline: cycles=25624 fmax=381.679MHz "
                           "dram_read=81920B dram_write=20480B "
                           "time=67.1349us mops=305.058"});
}

TEST(SimEquivalence, SmacheDdrLikeRowModel) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.height = 32;
  p.width = 32;
  p.steps = 5;
  EngineOptions o = EngineOptions::smache();
  o.dram = mem::DramConfig::ddr_like();
  const auto r = Engine(o).run(p, scaling_grid32());
  expect_matches(r, Golden{5510, 93, 7, 5184, 5120, 2, 5, 5184,
                           2350172435106772504ull,
                           "smache: cycles=5510 fmax=238.279MHz "
                           "dram_read=20736B dram_write=20480B "
                           "time=23.1241us mops=885.655"});
}

TEST(SimEquivalence, SmacheWithInjectedStalls) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 3;
  EngineOptions o = EngineOptions::smache();
  o.dram.stall_every = 17;
  o.dram.stall_cycles = 5;
  const auto r = Engine(o).run(p, seed_grid(11, 11, 94));
  expect_matches(r, Golden{575, 35, 5, 385, 363, 0, 0, 385,
                           4831052284388615388ull,
                           "smache: cycles=575 fmax=238.279MHz "
                           "dram_read=1540B dram_write=1452B "
                           "time=2.41313us mops=601.707"});
}

}  // namespace
}  // namespace smache

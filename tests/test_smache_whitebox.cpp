// White-box tests of SmacheTop internals: FSM-1 warm-up contents, FSM-3
// write-through capture, double-buffer swap timing, region ping-pong, and
// the cycle tracer.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "mem/dram.hpp"
#include "model/planner.hpp"
#include "rtl/smache_top.hpp"
#include "sim/simulator.hpp"

namespace smache {
namespace {

grid::Grid<word_t> iota_grid(std::size_t h, std::size_t w) {
  grid::Grid<word_t> g(h, w);
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = static_cast<word_t>(i + 1);
  return g;
}

struct Bench {
  sim::Simulator sim;
  std::unique_ptr<mem::DramModel> dram;
  std::unique_ptr<rtl::SmacheTop> top;
  model::BufferPlan plan;

  Bench(std::size_t h, std::size_t w, std::size_t steps,
        const grid::Grid<word_t>& init)
      : plan(model::Planner().plan(h, w,
                                   grid::StencilShape::von_neumann4(),
                                   grid::BoundarySpec::paper_example())) {
    dram = std::make_unique<mem::DramModel>(
        sim, "dram", 2 * h * w, mem::DramConfig::functional());
    const auto words = init.to_words();
    for (std::size_t i = 0; i < words.size(); ++i) dram->poke(i, words[i]);
    top = std::make_unique<rtl::SmacheTop>(
        sim, "smache", plan, rtl::KernelSpec::average_int(), *dram, steps);
  }
};

TEST(SmacheWhitebox, WarmupFillsActiveCopiesWithBoundaryRows) {
  const auto init = iota_grid(8, 8);
  Bench b(8, 8, 1, init);
  // Run until the warm-up completes (warmup_end_cycle becomes non-zero).
  b.sim.run_until([&] { return b.top->warmup_end_cycle() != 0; }, 1000);
  // Find the banks for rows 0 and 7 and verify their active contents.
  ASSERT_EQ(b.plan.static_buffers().size(), 2u);
  // Access through the engine-level backdoor is not exposed; rerun the
  // whole instance instead and rely on correctness tests. Here we check
  // the warm-up cost shape: two rows of 8 plus request overhead.
  EXPECT_GE(b.top->warmup_end_cycle(), 16u);
  EXPECT_LE(b.top->warmup_end_cycle(), 40u);
}

TEST(SmacheWhitebox, DoneImpliesAllWritesRetired) {
  const auto init = iota_grid(8, 8);
  Bench b(8, 8, 2, init);
  b.sim.run_until([&] { return b.top->done() && b.dram->idle(); }, 10000);
  EXPECT_EQ(b.dram->stats().words_written, 2u * 64);
  // Output region for 2 steps is region 0.
  EXPECT_EQ(b.top->output_base(), 0u);
}

TEST(SmacheWhitebox, OutputRegionAlternatesWithParity) {
  for (const std::size_t steps : {1u, 2u, 3u, 4u}) {
    const auto init = iota_grid(8, 8);
    Bench b(8, 8, steps, init);
    EXPECT_EQ(b.top->output_base(), steps % 2 == 0 ? 0u : 64u);
  }
}

TEST(SmacheWhitebox, TracerRecordsControllerSignals) {
  const auto init = iota_grid(8, 8);
  Bench b(8, 8, 1, init);
  b.sim.tracer().set_enabled(true);
  b.sim.run_until([&] { return b.top->done() && b.dram->idle(); }, 10000);
  const auto& rows = b.sim.tracer().rows();
  ASSERT_FALSE(rows.empty());
  bool saw_state = false, saw_shifts = false;
  for (const auto& r : rows) {
    if (r.signal == "smache.top_state") saw_state = true;
    if (r.signal == "smache.shifts" && r.value > 0) saw_shifts = true;
  }
  EXPECT_TRUE(saw_state);
  EXPECT_TRUE(saw_shifts);
  // CSV rendering includes the header and the sampled signal names.
  const std::string csv = b.sim.tracer().to_csv();
  EXPECT_NE(csv.find("cycle,signal,value"), std::string::npos);
  EXPECT_NE(csv.find("smache.top_state"), std::string::npos);
}

TEST(SmacheWhitebox, TracerDisabledCollectsNothing) {
  const auto init = iota_grid(8, 8);
  Bench b(8, 8, 1, init);
  b.sim.run_until([&] { return b.top->done() && b.dram->idle(); }, 10000);
  EXPECT_TRUE(b.sim.tracer().rows().empty());
}

TEST(SmacheWhitebox, RejectsUndersizedDram) {
  sim::Simulator sim;
  mem::DramModel dram(sim, "dram", 100,  // < 2 * 64
                      mem::DramConfig::functional());
  const auto plan = model::Planner().plan(
      8, 8, grid::StencilShape::von_neumann4(),
      grid::BoundarySpec::paper_example());
  EXPECT_THROW(rtl::SmacheTop(sim, "smache", plan,
                              rtl::KernelSpec::average_int(), dram, 1),
               contract_error);
}

TEST(SmacheWhitebox, ResourceHierarchyHasExpectedGroups) {
  const auto init = iota_grid(8, 8);
  Bench b(8, 8, 1, init);
  const auto& ledger = b.sim.ledger();
  EXPECT_GT(ledger.total(sim::ResKind::RegisterBits, "smache/stream"), 0u);
  EXPECT_GT(ledger.total(sim::ResKind::BramBits, "smache/static"), 0u);
  EXPECT_GT(ledger.total(sim::ResKind::RegisterBits, "smache/ctrl"), 0u);
  // The kernel lives OUTSIDE the smache module (Figure 1b).
  EXPECT_GT(ledger.total(sim::ResKind::RegisterBits, "kernel"), 0u);
  EXPECT_EQ(ledger.total(sim::ResKind::RegisterBits, "smache/kernel"), 0u);
  const std::string report = ledger.report();
  EXPECT_NE(report.find("smache"), std::string::npos);
  EXPECT_NE(report.find("dram"), std::string::npos);
}

TEST(SmacheWhitebox, NoWarmupWhenNoStaticBuffers) {
  // Open boundaries need no static buffers, so the design goes straight
  // to Run and warmup_end stays 0 cycles.
  sim::Simulator sim;
  mem::DramModel dram(sim, "dram", 128, mem::DramConfig::functional());
  const auto init = iota_grid(8, 8).to_words();
  for (std::size_t i = 0; i < init.size(); ++i) dram.poke(i, init[i]);
  const auto plan = model::Planner().plan(
      8, 8, grid::StencilShape::von_neumann4(),
      grid::BoundarySpec::all_open());
  rtl::SmacheTop top(sim, "smache", plan, rtl::KernelSpec::average_int(),
                     dram, 1);
  sim.run_until([&] { return top.done() && dram.idle(); }, 10000);
  EXPECT_EQ(top.warmup_end_cycle(), 0u);
}

}  // namespace
}  // namespace smache

// Unit tests for stencil shapes: factories, extents, reach, validation.
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "grid/stencil.hpp"

namespace smache::grid {
namespace {

TEST(Stencil, VonNeumann4HasNoCentre) {
  const auto s = StencilShape::von_neumann4();
  EXPECT_EQ(s.size(), 4u);
  EXPECT_FALSE(s.contains({0, 0}));
  EXPECT_TRUE(s.contains({-1, 0}));
  EXPECT_TRUE(s.contains({1, 0}));
  EXPECT_TRUE(s.contains({0, -1}));
  EXPECT_TRUE(s.contains({0, 1}));
}

TEST(Stencil, Plus5AddsCentre) {
  const auto s = StencilShape::plus5();
  EXPECT_EQ(s.size(), 5u);
  EXPECT_TRUE(s.contains({0, 0}));
}

TEST(Stencil, Moore9Extents) {
  const auto s = StencilShape::moore9();
  EXPECT_EQ(s.size(), 9u);
  EXPECT_EQ(s.dr_min(), -1);
  EXPECT_EQ(s.dr_max(), 1);
  EXPECT_EQ(s.dc_min(), -1);
  EXPECT_EQ(s.dc_max(), 1);
}

TEST(Stencil, CrossKExtents) {
  const auto s = StencilShape::cross(3);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.dr_min(), -3);
  EXPECT_EQ(s.dc_max(), 3);
  EXPECT_THROW(StencilShape::cross(0), smache::contract_error);
}

TEST(Stencil, ReachOnRowMajorGrid) {
  // Paper §II: reach = max linear offset - min linear offset.
  const auto vn = StencilShape::von_neumann4();
  EXPECT_EQ(vn.reach(11), 22);    // -11 .. +11
  EXPECT_EQ(vn.reach(1024), 2048);
  const auto m = StencilShape::moore9();
  EXPECT_EQ(m.reach(10), 22);     // -11 .. +11
  const auto up = StencilShape::upwind3();
  EXPECT_EQ(up.reach(8), 8);      // -8 .. 0
}

TEST(Stencil, DuplicateOffsetsRejected) {
  EXPECT_THROW(StencilShape::custom("dup", {{0, 0}, {0, 0}}),
               smache::contract_error);
}

TEST(Stencil, EmptyRejected) {
  EXPECT_THROW(StencilShape::custom("empty", {}), smache::contract_error);
}

TEST(Stencil, OrderIsPreserved) {
  // Tuple order is a contract between gather and kernel.
  const auto s = StencilShape::von_neumann4();
  EXPECT_EQ(s.offsets()[0], (Offset2{-1, 0}));  // N
  EXPECT_EQ(s.offsets()[1], (Offset2{0, -1}));  // W
  EXPECT_EQ(s.offsets()[2], (Offset2{0, 1}));   // E
  EXPECT_EQ(s.offsets()[3], (Offset2{1, 0}));   // S
}

TEST(Stencil, SingleOffsetReachZeroIsFine) {
  const auto s = StencilShape::custom("one", {{0, 0}});
  EXPECT_EQ(s.reach(100), 0);
}

}  // namespace
}  // namespace smache::grid

// Determinism guarantees: repeated runs of any configuration must produce
// identical cycle counts, traffic counters, resource ledgers, plans and
// outputs. The simulator is single-threaded and all communication is
// clocked, so any divergence would reveal hidden state or unordered
// iteration leaking into results.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/report.hpp"
#include "rtl/verilog_export.hpp"
#include "support/test_grids.hpp"

namespace smache {
namespace {

grid::Grid<word_t> random_grid(std::size_t h, std::size_t w,
                               std::uint64_t seed) {
  return test_support::random_grid(h, w, seed);
}

TEST(Determinism, RepeatedSmacheRunsAreIdentical) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 7;
  const auto init = random_grid(11, 11, 90);
  const Engine engine(EngineOptions::smache());
  const auto a = engine.run(p, init);
  const auto b = engine.run(p, init);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.dram.words_read, b.dram.words_read);
  EXPECT_EQ(a.dram.words_written, b.dram.words_written);
  EXPECT_EQ(a.resources.r_total, b.resources.r_total);
  EXPECT_EQ(a.resources.b_total, b.resources.b_total);
  EXPECT_EQ(a.timing.fmax_mhz, b.timing.fmax_mhz);
}

TEST(Determinism, RepeatedBaselineRunsAreIdentical) {
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 4;
  const auto init = random_grid(11, 11, 91);
  const Engine engine(EngineOptions::baseline());
  const auto a = engine.run(p, init);
  const auto b = engine.run(p, init);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.output, b.output);
}

TEST(Determinism, PlansAreStructurallyStable) {
  // Repeated planning of a configuration with tie-heavy far entries must
  // produce identical bank order, tap ages and gather tables.
  const auto plan_once = [] {
    return model::Planner().plan(
        16, 16, grid::StencilShape::cross(2),
        {grid::AxisBoundary::periodic(), grid::AxisBoundary::periodic()});
  };
  const auto a = plan_once();
  const auto b = plan_once();
  ASSERT_EQ(a.static_buffers().size(), b.static_buffers().size());
  for (std::size_t i = 0; i < a.static_buffers().size(); ++i) {
    EXPECT_EQ(a.static_buffers()[i].grid_row,
              b.static_buffers()[i].grid_row);
    EXPECT_EQ(a.static_buffers()[i].replicas,
              b.static_buffers()[i].replicas);
  }
  EXPECT_EQ(a.reg_ages(), b.reg_ages());
  EXPECT_EQ(a.tap_ages(), b.tap_ages());
  for (std::size_t id = 0; id < a.cases().case_count(); ++id) {
    const auto& ga = a.gather(id);
    const auto& gb = b.gather(id);
    ASSERT_EQ(ga.size(), gb.size());
    for (std::size_t j = 0; j < ga.size(); ++j) {
      EXPECT_EQ(ga[j].kind, gb[j].kind);
      EXPECT_EQ(ga[j].window_age, gb[j].window_age);
      EXPECT_EQ(ga[j].static_index, gb[j].static_index);
      EXPECT_EQ(ga[j].replica, gb[j].replica);
      EXPECT_EQ(ga[j].col_shift, gb[j].col_shift);
    }
  }
}

TEST(Determinism, GeneratedVerilogIsStableAcrossPlans) {
  const auto gen = [] {
    const auto plan = model::Planner().plan(
        12, 12, grid::StencilShape::moore9(),
        {grid::AxisBoundary::periodic(), grid::AxisBoundary::mirror()});
    return rtl::export_verilog(plan);
  };
  EXPECT_EQ(gen(), gen());
}

TEST(Determinism, RenderedReportsAreIdentical) {
  // Two back-to-back engine runs must agree not just on individual counters
  // but on the entire rendered report (summary text, Figure-2 block and
  // Table-I rows) — the strongest whole-report guard for future batching
  // or async refactors, since any field drifting shows up in the text.
  ProblemSpec p = ProblemSpec::paper_example();
  p.steps = 5;
  const auto init = random_grid(11, 11, 93);
  const Engine baseline(EngineOptions::baseline());
  const Engine smache(EngineOptions::smache());
  const auto base_a = baseline.run(p, init);
  const auto base_b = baseline.run(p, init);
  const auto sm_a = smache.run(p, init);
  const auto sm_b = smache.run(p, init);
  EXPECT_EQ(base_a.summary(), base_b.summary());
  EXPECT_EQ(sm_a.summary(), sm_b.summary());
  EXPECT_EQ(format_fig2(base_a, sm_a), format_fig2(base_b, sm_b));
  EXPECT_EQ(format_table1_rows("11x11", sm_a),
            format_table1_rows("11x11", sm_b));
}

TEST(Determinism, CascadeRunsAreIdentical) {
  ProblemSpec p;
  p.height = 10;
  p.width = 10;
  p.shape = grid::StencilShape::von_neumann4();
  p.bc = grid::BoundarySpec::all_open();
  p.steps = 6;
  const auto init = random_grid(10, 10, 92);
  const Engine engine(EngineOptions::smache());
  const auto a = engine.run_cascade(p, init, 3);
  const auto b = engine.run_cascade(p, init, 3);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.output, b.output);
}

}  // namespace
}  // namespace smache

// Unit tests for the common utility layer: bit math, tables, stats, RNG,
// CLI parsing, logging, contracts.
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/word.hpp"

namespace smache {
namespace {

TEST(Bits, AddrBits) {
  EXPECT_EQ(addr_bits(0), 0u);
  EXPECT_EQ(addr_bits(1), 1u);
  EXPECT_EQ(addr_bits(2), 1u);
  EXPECT_EQ(addr_bits(121), 7u);
  EXPECT_EQ(addr_bits(128), 7u);
  EXPECT_EQ(addr_bits(129), 8u);
  EXPECT_EQ(addr_bits(1u << 20), 20u);
}

TEST(Bits, CountBits) {
  EXPECT_EQ(count_bits(0), 1u);
  EXPECT_EQ(count_bits(1), 1u);
  EXPECT_EQ(count_bits(2), 2u);
  EXPECT_EQ(count_bits(255), 8u);
  EXPECT_EQ(count_bits(256), 9u);
}

TEST(Bits, RoundingHelpers) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(9), 16u);
  EXPECT_EQ(round_up(0, 4), 0u);
  EXPECT_EQ(round_up(13, 4), 16u);
  EXPECT_EQ(ceil_div(0, 7), 0u);
  EXPECT_EQ(ceil_div(7, 7), 1u);
  EXPECT_EQ(ceil_div(8, 7), 2u);
}

TEST(Bits, FloorModNegatives) {
  EXPECT_EQ(floor_mod(-1, 11), 10);
  EXPECT_EQ(floor_mod(-11, 11), 0);
  EXPECT_EQ(floor_mod(-12, 11), 10);
  EXPECT_EQ(floor_mod(22, 11), 0);
  EXPECT_EQ(floor_mod(5, 11), 5);
}

TEST(Bits, MirrorIndexPattern) {
  // m = 4: ... 2 1 | 0 1 2 3 | 2 1 0 ...
  EXPECT_EQ(mirror_index(-2, 4), 2);
  EXPECT_EQ(mirror_index(-1, 4), 1);
  EXPECT_EQ(mirror_index(0, 4), 0);
  EXPECT_EQ(mirror_index(3, 4), 3);
  EXPECT_EQ(mirror_index(4, 4), 2);
  EXPECT_EQ(mirror_index(5, 4), 1);
  EXPECT_EQ(mirror_index(6, 4), 0);
  EXPECT_EQ(mirror_index(0, 1), 0);
}

TEST(Word, RoundTripInt32AndFloat) {
  EXPECT_EQ(from_word<std::int32_t>(to_word<std::int32_t>(-42)), -42);
  EXPECT_EQ(from_word<float>(to_word(3.25f)), 3.25f);
  // A negative int's bit pattern survives the word layer untouched.
  EXPECT_EQ(to_word<std::int32_t>(-1), 0xFFFFFFFFu);
}

TEST(Contracts, RequireThrowsWithLocation) {
  try {
    SMACHE_REQUIRE_MSG(false, "extra detail");
    FAIL() << "should have thrown";
  } catch (const contract_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
    EXPECT_NE(what.find("extra detail"), std::string::npos);
  }
}

TEST(Table, AlignsAndRules) {
  TextTable t({"name", "v"});
  t.begin_row();
  t.add_cell(std::string("a"));
  t.add_cell(std::uint64_t{12345});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("name"), std::string::npos);
  EXPECT_NE(ascii.find("12345"), std::string::npos);
  EXPECT_NE(ascii.find("-----"), std::string::npos);
}

TEST(Table, CsvQuotesSpecials) {
  TextTable t({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RowOverflowRejected) {
  TextTable t({"only"});
  t.begin_row();
  t.add_cell(std::string("1"));
  EXPECT_THROW(t.add_cell(std::string("2")), contract_error);
  EXPECT_THROW(t.add_row({"a", "b"}), contract_error);
}

TEST(Table, FixedFormatting) {
  EXPECT_EQ(format_fixed(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_kib(242000), "236.3");  // the paper's baseline traffic
}

TEST(Stats, WelfordMeanVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, RoughUniformity) {
  Rng rng(99);
  int buckets[10] = {};
  for (int i = 0; i < 10000; ++i) ++buckets[rng.next_below(10)];
  for (int b : buckets) {
    EXPECT_GT(b, 800);
    EXPECT_LT(b, 1200);
  }
}

TEST(Cli, ParsesAllForms) {
  // Note: an UNDECLARED bare `--flag` followed by a non-flag token still
  // consumes it as a value (`--name value` form); declared boolean flags
  // never do — tests/test_cli.cpp covers both behaviours.
  const char* argv[] = {"prog", "pos1", "--a", "1",
                        "--b=two", "--c", "3.5", "--flag"};
  CliArgs args(8, argv);
  EXPECT_EQ(args.get_int("a", 0), 1);
  EXPECT_EQ(args.get_string("b", ""), "two");
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_DOUBLE_EQ(args.get_double("c", 0.0), 3.5);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.get_int("missing", 42), 42);
  EXPECT_FALSE(args.has("missing"));
}

TEST(Log, SinkCapturesAtLevel) {
  std::vector<std::string> captured;
  Log::set_sink([&](LogLevel, const std::string& m) {
    captured.push_back(m);
  });
  Log::set_level(LogLevel::Warn);
  Log::debug("nope");
  Log::warn("yes");
  Log::error("also");
  Log::set_sink(nullptr);
  Log::set_level(LogLevel::Warn);
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0], "yes");
}

}  // namespace
}  // namespace smache

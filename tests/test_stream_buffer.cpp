// Unit tests for the StreamBuffer: the delay-line invariant (every tap age
// sees the stream delayed by exactly that many shifts), the hybrid
// register/BRAM equivalence, and stall robustness.
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "model/planner.hpp"
#include "rtl/stream_buffer.hpp"
#include "sim/simulator.hpp"

namespace smache::rtl {
namespace {

model::BufferPlan make_plan(std::size_t h, std::size_t w,
                            model::StreamImpl impl,
                            std::size_t threshold = 4) {
  model::PlannerOptions o;
  o.stream_impl = impl;
  o.bram_segment_threshold = threshold;
  return model::Planner(o).plan(h, w, grid::StencilShape::von_neumann4(),
                                grid::BoundarySpec::paper_example());
}

TEST(StreamBuffer, DelayLineInvariantRegisterOnly) {
  sim::Simulator sim;
  const auto plan = make_plan(11, 11, model::StreamImpl::RegisterOnly);
  StreamBuffer sb(sim, "sb", plan);
  // Feed the sequence 1000, 1001, ...; after n shifts, the tap at age a
  // must hold element n - a.
  const std::size_t total = 3 * plan.window_len();
  for (std::size_t n = 1; n <= total; ++n) {
    sb.shift(static_cast<word_t>(1000 + n - 1));
    sim.step();
    for (std::size_t age = 1; age <= plan.window_len(); ++age) {
      if (n >= age) {
        EXPECT_EQ(sb.tap(age), 1000 + n - age)
            << "n=" << n << " age=" << age;
      }
    }
  }
}

TEST(StreamBuffer, DelayLineInvariantHybridTaps) {
  sim::Simulator sim;
  const auto plan = make_plan(11, 11, model::StreamImpl::Hybrid);
  StreamBuffer sb(sim, "sb", plan);
  const std::size_t total = 4 * plan.window_len();
  for (std::size_t n = 1; n <= total; ++n) {
    sb.shift(static_cast<word_t>(5000 + n - 1));
    sim.step();
    for (std::size_t age : plan.tap_ages()) {
      if (n >= age + plan.window_len()) {  // past any warm-fill garbage
        EXPECT_EQ(sb.tap(age), 5000 + n - age)
            << "n=" << n << " age=" << age;
      }
    }
  }
}

TEST(StreamBuffer, HybridMatchesRegisterOnlyAtEveryTap) {
  sim::Simulator sim;
  const auto plan_h = make_plan(16, 16, model::StreamImpl::Hybrid);
  const auto plan_r = make_plan(16, 16, model::StreamImpl::RegisterOnly);
  StreamBuffer h(sim, "h", plan_h), r(sim, "r", plan_r);
  Rng rng(42);
  for (int n = 1; n <= 300; ++n) {
    const auto v = static_cast<word_t>(rng.next_u64());
    h.shift(v);
    r.shift(v);
    sim.step();
    if (n > static_cast<int>(plan_h.window_len())) {
      for (std::size_t age : plan_h.tap_ages())
        EXPECT_EQ(h.tap(age), r.tap(age)) << "age " << age;
    }
  }
}

TEST(StreamBuffer, StallsPreserveContents) {
  sim::Simulator sim;
  const auto plan = make_plan(11, 11, model::StreamImpl::Hybrid);
  StreamBuffer sb(sim, "sb", plan);
  Rng rng(7);
  std::size_t n = 0;
  std::vector<word_t> fed;
  // Interleave shifts with random stalls; the delay-line property must be
  // unaffected by when the stalls happen (BRAM rdata holds).
  while (n < 200) {
    if (rng.chance(1, 3)) {
      sim.step();  // stall cycle: no shift
      continue;
    }
    const auto v = static_cast<word_t>(rng.next_u64() & 0xFFFF);
    fed.push_back(v);
    sb.shift(v);
    sim.step();
    ++n;
    if (n >= plan.window_len()) {
      for (std::size_t age : plan.tap_ages())
        ASSERT_EQ(sb.tap(age), fed[n - age]) << "n=" << n << " age=" << age;
    }
  }
}

TEST(StreamBuffer, TapOnBramAgeRejected) {
  sim::Simulator sim;
  const auto plan = make_plan(11, 11, model::StreamImpl::Hybrid);
  StreamBuffer sb(sim, "sb", plan);
  // Age 5 lies inside the first BRAM segment for the 11-wide plan.
  ASSERT_FALSE(sb.is_reg_age(5));
  EXPECT_THROW(sb.tap(5), contract_error);
}

TEST(StreamBuffer, ResourceChargesSplitRegAndBram) {
  sim::Simulator sim;
  const auto plan = make_plan(11, 11, model::StreamImpl::Hybrid);
  StreamBuffer sb(sim, "top", plan);
  // 11 register stages * 32 bits.
  EXPECT_EQ(sim.ledger().total(sim::ResKind::RegisterBits,
                               "top/stream/window_regs"),
            352u);
  // Two FIFO segments of 7, physically rounded to 8 words each.
  EXPECT_EQ(sim.ledger().total(sim::ResKind::BramBits, "top/stream"), 512u);
}

TEST(StreamBuffer, WiderThresholdMovesElementsToRegisters) {
  sim::Simulator sim;
  const auto plan = make_plan(32, 32, model::StreamImpl::Hybrid, 16);
  // Gap of 30 interior elements still exceeds threshold 16 -> FIFOs; but
  // with threshold 40 everything is registers.
  const auto plan_all = make_plan(32, 32, model::StreamImpl::Hybrid, 40);
  EXPECT_GT(plan.bram_window_elems(), 0u);
  EXPECT_EQ(plan_all.bram_window_elems(), 0u);
  EXPECT_EQ(plan_all.reg_window_elems(), plan_all.window_len());
}

}  // namespace
}  // namespace smache::rtl

// Tests for the Verilog exporter: structural integrity (lint), and that
// the emitted module mirrors the plan — one register per window stage,
// one memory per FIFO segment and static-buffer copy, one case arm per
// boundary case.
#include <gtest/gtest.h>

#include "model/planner.hpp"
#include "rtl/verilog_export.hpp"

namespace smache::rtl {
namespace {

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++n;
  return n;
}

model::BufferPlan paper_plan(model::StreamImpl impl) {
  model::PlannerOptions o;
  o.stream_impl = impl;
  return model::Planner(o).plan(11, 11,
                                grid::StencilShape::von_neumann4(),
                                grid::BoundarySpec::paper_example());
}

TEST(VerilogExport, LintCleanForPaperPlan) {
  const auto text = export_verilog(paper_plan(model::StreamImpl::Hybrid));
  EXPECT_EQ(lint_verilog(text), "");
  EXPECT_NE(text.find("module smache_top"), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);
}

TEST(VerilogExport, WindowRegistersMatchPlan) {
  const auto plan = paper_plan(model::StreamImpl::Hybrid);
  const auto text = export_verilog(plan);
  // One declaration per register-mapped age.
  EXPECT_EQ(count_occurrences(text, "reg [WIDTH-1:0] win_age"),
            plan.reg_window_elems());
  // Two BRAM FIFO memories with block-RAM attributes.
  EXPECT_EQ(count_occurrences(text, "fifo0_mem"), 3u);  // decl + rd + wr
  EXPECT_EQ(count_occurrences(text, "fifo1_mem"), 3u);
  EXPECT_EQ(count_occurrences(text, "(* ram_style = \"block\" *)"),
            plan.fifo_segments().size() +
                2 * 2);  // fifos + 2 banks x ping/pong
}

TEST(VerilogExport, RegisterOnlyPlanHasNoFifos) {
  const auto text =
      export_verilog(paper_plan(model::StreamImpl::RegisterOnly));
  EXPECT_EQ(count_occurrences(text, "fifo0_mem"), 0u);
  EXPECT_EQ(count_occurrences(text, "reg [WIDTH-1:0] win_age"), 25u);
  EXPECT_EQ(lint_verilog(text), "");
}

TEST(VerilogExport, CaseArmsMatchBoundaryCases) {
  const auto plan = paper_plan(model::StreamImpl::Hybrid);
  const auto text = export_verilog(plan);
  // Nine annotated case arms plus the case header itself.
  EXPECT_EQ(count_occurrences(text, "// trace: case "), 9u);
  EXPECT_NE(text.find("case (case_id)"), std::string::npos);
  EXPECT_NE(text.find("endcase"), std::string::npos);
}

TEST(VerilogExport, StaticBuffersEmitPingPongAndWriteThrough) {
  const auto text = export_verilog(paper_plan(model::StreamImpl::Hybrid));
  EXPECT_NE(text.find("static0_r0_ping"), std::string::npos);
  EXPECT_NE(text.find("static0_r0_pong"), std::string::npos);
  EXPECT_NE(text.find("static1_r0_ping"), std::string::npos);
  EXPECT_NE(text.find("wb_valid"), std::string::npos);
  EXPECT_NE(text.find("bank_sel"), std::string::npos);
}

TEST(VerilogExport, OpenBoundariesSkipStaticSection) {
  const auto plan = model::Planner().plan(
      8, 8, grid::StencilShape::von_neumann4(),
      grid::BoundarySpec::all_open());
  const auto text = export_verilog(plan);
  EXPECT_NE(text.find("no static buffers needed"), std::string::npos);
  EXPECT_EQ(count_occurrences(text, "_ping"), 0u);
  EXPECT_EQ(lint_verilog(text), "");
}

TEST(VerilogExport, ConstantSourcesBecomeLiterals) {
  const auto plan = model::Planner().plan(
      8, 8, grid::StencilShape::von_neumann4(),
      {grid::AxisBoundary::constant_halo(0xAB),
       grid::AxisBoundary::open()});
  const auto text = export_verilog(plan);
  EXPECT_NE(text.find("32'hab"), std::string::npos);
}

TEST(VerilogExport, StallHandshakePresent) {
  const auto text = export_verilog(paper_plan(model::StreamImpl::Hybrid));
  EXPECT_NE(text.find("assign s_tready"), std::string::npos);
  EXPECT_NE(text.find("m_tready"), std::string::npos);
  EXPECT_NE(text.find("shift_en = s_tvalid && s_tready"),
            std::string::npos);
}

TEST(VerilogExport, CustomModuleNameAndNoAnnotations) {
  VerilogOptions opt;
  opt.module_name = "my_cache";
  opt.annotate = false;
  const auto text =
      export_verilog(paper_plan(model::StreamImpl::Hybrid), opt);
  EXPECT_NE(text.find("module my_cache"), std::string::npos);
  EXPECT_EQ(count_occurrences(text, "// trace:"), 0u);
  EXPECT_EQ(lint_verilog(text), "");
}

TEST(VerilogExport, MoorePeriodicWithReplicasLints) {
  const auto plan = model::Planner().plan(
      16, 16, grid::StencilShape::moore9(),
      {grid::AxisBoundary::periodic(), grid::AxisBoundary::open()});
  const auto text = export_verilog(plan);
  EXPECT_EQ(lint_verilog(text), "");
  // Three replicas of each of two banks, each with two copies.
  EXPECT_NE(text.find("static0_r2_ping"), std::string::npos);
  EXPECT_NE(text.find("static1_r2_pong"), std::string::npos);
}

TEST(VerilogExport, LintCatchesBrokenText) {
  EXPECT_NE(lint_verilog("module m; begin end endmodule begin"), "");
  EXPECT_NE(lint_verilog("module m; endmodule endmodule"), "");
  EXPECT_NE(lint_verilog("module m; TODO endmodule"), "");
  EXPECT_EQ(lint_verilog("module m; always @(posedge clk) begin end "
                         "endmodule"),
            "");
}

TEST(VerilogExport, DeterministicOutput) {
  const auto a = export_verilog(paper_plan(model::StreamImpl::Hybrid));
  const auto b = export_verilog(paper_plan(model::StreamImpl::Hybrid));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace smache::rtl

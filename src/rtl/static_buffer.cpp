#include "rtl/static_buffer.hpp"

#include "common/assert.hpp"

namespace smache::rtl {

StaticBufferBank::StaticBufferBank(sim::Simulator& sim,
                                   const std::string& path,
                                   const model::StaticBufferSpec& spec)
    : spec_(spec), active_(sim, path + "/active_sel", false, 1) {
  SMACHE_REQUIRE(spec.length >= 1);
  SMACHE_REQUIRE(spec.replicas >= 1);
  for (std::size_t r = 0; r < spec.replicas; ++r) {
    for (int phase = 0; phase < 2; ++phase) {
      copies_.push_back(std::make_unique<mem::BramBank>(
          sim,
          path + "/rep" + std::to_string(r) + (phase == 0 ? "/ping" : "/pong"),
          spec.length, kWordBits, mem::BramBank::Mode::Ram));
    }
  }
}

mem::BramBank& StaticBufferBank::bank(std::size_t replica,
                                      bool shadow) const {
  SMACHE_REQUIRE(replica < spec_.replicas);
  const bool phase = active_.q() ^ shadow;
  return *copies_[replica * 2 + (phase ? 1 : 0)];
}

void StaticBufferBank::read(std::size_t replica, std::size_t index) {
  bank(replica, /*shadow=*/false).read(index);
}

word_t StaticBufferBank::rdata(std::size_t replica) const {
  return static_cast<word_t>(bank(replica, /*shadow=*/false).rdata());
}

void StaticBufferBank::shadow_write(std::size_t index, word_t value) {
  for (std::size_t r = 0; r < spec_.replicas; ++r)
    bank(r, /*shadow=*/true).write(index, value);
}

void StaticBufferBank::active_write(std::size_t index, word_t value) {
  for (std::size_t r = 0; r < spec_.replicas; ++r)
    bank(r, /*shadow=*/false).write(index, value);
}

void StaticBufferBank::swap() { active_.d(!active_.q()); }

word_t StaticBufferBank::peek_active(std::size_t index) const {
  return static_cast<word_t>(bank(0, /*shadow=*/false).peek(index));
}

StaticBufferSet::StaticBufferSet(sim::Simulator& sim, const std::string& path,
                                 const model::BufferPlan& plan) {
  for (const auto& spec : plan.static_buffers())
    banks_.push_back(std::make_unique<StaticBufferBank>(
        sim, path + "/static/" + spec.name, spec));
}

StaticBufferBank& StaticBufferSet::bank(std::size_t i) {
  SMACHE_REQUIRE(i < banks_.size());
  return *banks_[i];
}

const StaticBufferBank& StaticBufferSet::bank(std::size_t i) const {
  SMACHE_REQUIRE(i < banks_.size());
  return *banks_[i];
}

void StaticBufferSet::capture_output(std::size_t row, std::size_t col,
                                     word_t value) {
  for (auto& b : banks_)
    if (b->spec().write_through && b->spec().grid_row == row)
      b->shadow_write(col, value);
}

void StaticBufferSet::swap_all() {
  for (auto& b : banks_) b->swap();
}

}  // namespace smache::rtl

#include "rtl/static_buffer.hpp"

#include "common/assert.hpp"

namespace smache::rtl {

StaticBufferBank::StaticBufferBank(sim::Simulator& sim,
                                   const std::string& path,
                                   const model::StaticBufferSpec& spec,
                                   std::size_t fields)
    : spec_(spec),
      fields_(fields),
      active_(sim, path + "/active_sel", false, 1) {
  SMACHE_REQUIRE(spec.length >= 1);
  SMACHE_REQUIRE(spec.replicas >= 1);
  SMACHE_REQUIRE(fields >= 1 && fields <= kMaxFields);
  for (std::size_t r = 0; r < spec.replicas; ++r) {
    for (int phase = 0; phase < 2; ++phase) {
      const std::string base = path + "/rep" + std::to_string(r) +
                               (phase == 0 ? "/ping" : "/pong");
      // Field 0 keeps the original bank path (F = 1 ledger unchanged);
      // extra fields get parallel banks under a /f<k> suffix.
      for (std::size_t f = 0; f < fields_; ++f) {
        const std::string fpath =
            f == 0 ? base : base + "/f" + std::to_string(f);
        copies_.push_back(std::make_unique<mem::BramBank>(
            sim, fpath, spec.length, kWordBits, mem::BramBank::Mode::Ram));
      }
    }
  }
}

mem::BramBank& StaticBufferBank::bank(std::size_t replica, bool shadow,
                                      std::size_t field) const {
  SMACHE_REQUIRE(replica < spec_.replicas && field < fields_);
  const bool phase = active_.q() ^ shadow;
  return *copies_[(replica * 2 + (phase ? 1 : 0)) * fields_ + field];
}

void StaticBufferBank::read(std::size_t replica, std::size_t index) {
  for (std::size_t f = 0; f < fields_; ++f)
    bank(replica, /*shadow=*/false, f).read(index);
}

word_t StaticBufferBank::rdata(std::size_t replica,
                               std::size_t field) const {
  return static_cast<word_t>(bank(replica, /*shadow=*/false, field).rdata());
}

void StaticBufferBank::shadow_write(std::size_t index, word_t value) {
  const std::size_t cell = index / fields_;
  const std::size_t field = index % fields_;
  for (std::size_t r = 0; r < spec_.replicas; ++r)
    bank(r, /*shadow=*/true, field).write(cell, value);
}

void StaticBufferBank::shadow_write_cell(std::size_t cell_index,
                                         const word_t* cell) {
  for (std::size_t r = 0; r < spec_.replicas; ++r)
    for (std::size_t f = 0; f < fields_; ++f)
      bank(r, /*shadow=*/true, f).write(cell_index, cell[f]);
}

void StaticBufferBank::active_write(std::size_t index, word_t value) {
  const std::size_t cell = index / fields_;
  const std::size_t field = index % fields_;
  for (std::size_t r = 0; r < spec_.replicas; ++r)
    bank(r, /*shadow=*/false, field).write(cell, value);
}

void StaticBufferBank::swap() { active_.d(!active_.q()); }

word_t StaticBufferBank::peek_active(std::size_t index) const {
  return static_cast<word_t>(
      bank(0, /*shadow=*/false, index % fields_).peek(index / fields_));
}

StaticBufferSet::StaticBufferSet(sim::Simulator& sim, const std::string& path,
                                 const model::BufferPlan& plan,
                                 std::size_t fields) {
  for (const auto& spec : plan.static_buffers())
    banks_.push_back(std::make_unique<StaticBufferBank>(
        sim, path + "/static/" + spec.name, spec, fields));
}

StaticBufferBank& StaticBufferSet::bank(std::size_t i) {
  SMACHE_REQUIRE(i < banks_.size());
  return *banks_[i];
}

const StaticBufferBank& StaticBufferSet::bank(std::size_t i) const {
  SMACHE_REQUIRE(i < banks_.size());
  return *banks_[i];
}

void StaticBufferSet::capture_output(std::size_t row, std::size_t col,
                                     word_t value) {
  for (auto& b : banks_)
    if (b->spec().write_through && b->spec().grid_row == row)
      b->shadow_write(col, value);
}

void StaticBufferSet::capture_output_cell(std::size_t row, std::size_t col,
                                          const word_t* cell) {
  for (auto& b : banks_)
    if (b->spec().write_through && b->spec().grid_row == row)
      b->shadow_write_cell(col, cell);
}

void StaticBufferSet::swap_all() {
  for (auto& b : banks_) b->swap();
}

}  // namespace smache::rtl

// Helpers shared by the three top-level designs (Smache, baseline,
// cascade): the completion lower bound that drives batched polling, and
// the behavioural cell -> case lookup table.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/zones.hpp"

namespace smache::rtl {

/// Sound lower bound on cycles until a top's done() can become true, used
/// by Simulator::run_until_done. All three tops share the same argument:
/// at most one write-back retires per cycle, Done is entered together with
/// the final one, and `wb_count` resets per instance — so the outstanding
/// write-back count across all remaining work-instances
/// (`remaining_instances * cells - clamped(wb_count)`) can never be
/// undershot. Warm-up or fence cycles only add to it.
inline std::uint64_t outstanding_writeback_bound(
    std::uint64_t instances_total, std::uint64_t instances_done,
    std::uint64_t cells, std::uint64_t wb_count) noexcept {
  const std::uint64_t remaining = (instances_total - instances_done) * cells;
  const std::uint64_t written = wb_count < cells ? wb_count : cells;
  return remaining - written;
}

/// Flatten a CaseMap into a cell-indexed table. case_of() resolves zones
/// with a per-axis walk — far too slow to repeat for every cell touch of
/// every cycle. Behavioural lookup only: charges nothing to the ledger.
/// Tops build it lazily on their first eval so elaborate-only flows
/// (Table I's 1024x1024 rows) never pay O(cells).
inline std::vector<std::uint32_t> build_case_table(const grid::CaseMap& cases,
                                                   std::size_t height,
                                                   std::size_t width) {
  std::vector<std::uint32_t> table;
  table.reserve(height * width);
  for (std::size_t r = 0; r < height; ++r)
    for (std::size_t c = 0; c < width; ++c)
      table.push_back(static_cast<std::uint32_t>(cases.case_of(r, c)));
  return table;
}

}  // namespace smache::rtl

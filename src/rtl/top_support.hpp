// Helpers shared by the three top-level designs (Smache, baseline,
// cascade): the completion lower bound that drives batched polling, the
// behavioural cell -> case lookup table, and the pre-resolved per-case
// gather plans the stream-fed tops emit from.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "grid/zones.hpp"
#include "model/planner.hpp"
#include "rtl/static_buffer.hpp"
#include "rtl/stream_buffer.hpp"

namespace smache::rtl {

/// Sound lower bound on cycles until a top's done() can become true, used
/// by Simulator::run_until_done. All three tops share the same argument:
/// at most one write-back retires per cycle, Done is entered together with
/// the final one, and `wb_count` resets per instance — so the outstanding
/// write-back count across all remaining work-instances
/// (`remaining_instances * cells - clamped(wb_count)`) can never be
/// undershot. Warm-up or fence cycles only add to it.
inline std::uint64_t outstanding_writeback_bound(
    std::uint64_t instances_total, std::uint64_t instances_done,
    std::uint64_t cells, std::uint64_t wb_count) noexcept {
  const std::uint64_t remaining = (instances_total - instances_done) * cells;
  const std::uint64_t written = wb_count < cells ? wb_count : cells;
  return remaining - written;
}

/// Flatten a CaseMap into a cell-indexed table (slice-major stream order).
/// case_of() resolves zones with a per-axis walk — far too slow to repeat
/// for every cell touch of every cycle. Behavioural lookup only: charges
/// nothing to the ledger. Tops build it lazily on their first eval so
/// elaborate-only flows (Table I's 1024x1024 rows) never pay O(cells).
inline std::vector<std::uint32_t> build_case_table(const grid::CaseMap& cases,
                                                   std::size_t height,
                                                   std::size_t width,
                                                   std::size_t depth = 1) {
  std::vector<std::uint32_t> table;
  table.reserve(height * width * depth);
  for (std::size_t s = 0; s < depth; ++s)
    for (std::size_t r = 0; r < height; ++r)
      for (std::size_t c = 0; c < width; ++c)
        table.push_back(static_cast<std::uint32_t>(cases.case_of(s, r, c)));
  return table;
}

/// One tuple element of one stencil case, pre-resolved at table-build time
/// (window age -> register slot, static index -> bank pointer) so the
/// per-cycle gather is a tight switch with no map lookups.
struct EmitOp {
  enum class Kind : std::uint8_t { Window, Static, Constant, Skip };
  Kind kind = Kind::Skip;
  std::uint32_t slot = 0;     // Window: stream-buffer register slot
  std::uint32_t replica = 0;  // Static: read-port replica
  StaticBufferBank* bank = nullptr;
  word_t constant = 0;
};

/// One static-buffer pre-issue of one case (SmacheTop FSM-2c). Cases
/// without static sources (the grid interior) have an empty list and skip
/// the pre-issue loop entirely.
struct StaticIssue {
  StaticBufferBank* bank = nullptr;
  std::uint32_t replica = 0;
  std::int64_t col_shift = 0;
};

struct CasePlan {
  std::vector<EmitOp> ops;
  std::vector<StaticIssue> statics;
};

/// Pre-resolve every case's gather sources against a stream buffer's
/// register layout. `statics` is null for designs whose plans cannot
/// contain static sources (the cascade — enforced here); all stage windows
/// of a cascade share one layout, so one table serves all.
inline std::vector<CasePlan> build_case_plans(const model::BufferPlan& plan,
                                              const StreamBuffer& window,
                                              StaticBufferSet* statics) {
  std::vector<CasePlan> plans(plan.cases().case_count());
  for (std::size_t id = 0; id < plans.size(); ++id) {
    CasePlan& cp = plans[id];
    for (const model::GatherSource& g : plan.gather(id)) {
      EmitOp op;
      switch (g.kind) {
        case model::SourceKind::Window:
          op.kind = EmitOp::Kind::Window;
          op.slot =
              static_cast<std::uint32_t>(window.slot_of_age(g.window_age));
          break;
        case model::SourceKind::Static:
          SMACHE_ASSERT_MSG(statics != nullptr,
                            "this design's plans never contain static "
                            "sources");
          op.kind = EmitOp::Kind::Static;
          op.bank = &statics->bank(g.static_index);
          op.replica = static_cast<std::uint32_t>(g.replica);
          cp.statics.push_back({op.bank, op.replica, g.col_shift});
          break;
        case model::SourceKind::Constant:
          op.kind = EmitOp::Kind::Constant;
          op.constant = g.constant;
          break;
        case model::SourceKind::Skip:
          op.kind = EmitOp::Kind::Skip;
          break;
      }
      cp.ops.push_back(op);
    }
  }
  return plans;
}

}  // namespace smache::rtl

#include "rtl/stream_buffer.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace smache::rtl {

StreamBuffer::StreamBuffer(sim::Simulator& sim, const std::string& path,
                           const model::BufferPlan& plan, std::size_t fields)
    : window_len_(plan.window_len()), fields_(fields) {
  SMACHE_REQUIRE(fields >= 1 && fields <= kMaxFields);
  reg_ages_ = plan.reg_ages();
  std::sort(reg_ages_.begin(), reg_ages_.end());
  SMACHE_REQUIRE(!reg_ages_.empty() && reg_ages_.front() == 1);
  age_to_slot_.assign(window_len_ + 1, kNoSlot);
  for (std::size_t slot = 0; slot < reg_ages_.size(); ++slot) {
    SMACHE_REQUIRE(reg_ages_[slot] <= window_len_);
    age_to_slot_[reg_ages_[slot]] = slot;
  }

  // One cell = F interleaved words; register slot i backs words
  // [i*F, (i+1)*F). F = 1 keeps the original count and charge.
  regs_ = std::make_unique<sim::RegArray<word_t>>(
      sim, path + "/stream/window_regs", reg_ages_.size() * fields_,
      word_t{0}, kWordBits);

  for (std::size_t s = 0; s < plan.fifo_segments().size(); ++s) {
    const model::FifoSegment& fs = plan.fifo_segments()[s];
    SMACHE_REQUIRE_MSG(fs.bram_len >= 2,
                       "BRAM FIFO segments need >= 2 slots for the pointer "
                       "discipline");
    Segment seg;
    seg.in_stage_age = fs.in_stage_age;
    seg.out_stage_age = fs.out_stage_age;
    seg.bram_len = fs.bram_len;
    SMACHE_REQUIRE(is_reg_age(fs.in_stage_age));
    seg.in_slot = age_to_slot_[fs.in_stage_age] * fields_;
    const std::string spath = path + "/stream/fifo" + std::to_string(s);
    // Field 0 keeps the original bank path (F = 1 ledger unchanged);
    // extra fields get their own parallel banks under a /f<k> suffix.
    for (std::size_t f = 0; f < fields_; ++f) {
      const std::string fpath =
          f == 0 ? spath : spath + "/f" + std::to_string(f);
      seg.brams.push_back(std::make_unique<mem::BramBank>(
          sim, fpath, fs.bram_len, kWordBits, mem::BramBank::Mode::Fifo));
    }
    seg.ptr = std::make_unique<sim::Reg<std::uint32_t>>(
        sim, spath + "/ptr", 0u, smache::addr_bits(fs.bram_len));
    segments_.push_back(std::move(seg));
  }

  // Precompute each register slot's feed. Slot for age 1 takes the shift
  // input; a slot whose age is an out_stage takes the segment's BRAM
  // output; every other slot takes the register at age-1 (which must
  // exist: BRAM interiors are always bounded by stage registers).
  feeds_.resize(reg_ages_.size());
  for (std::size_t slot = 0; slot < reg_ages_.size(); ++slot) {
    const std::size_t age = reg_ages_[slot];
    if (age == 1) {
      feeds_[slot] = {Feed::Input, 0};
      continue;
    }
    bool fed = false;
    for (std::size_t s = 0; s < segments_.size(); ++s) {
      if (segments_[s].out_stage_age == age) {
        feeds_[slot] = {Feed::Bram, s};
        fed = true;
        break;
      }
    }
    if (fed) continue;
    SMACHE_REQUIRE_MSG(is_reg_age(age - 1),
                       "window layout broken: register at age " +
                           std::to_string(age) +
                           " has no register or BRAM feeding it");
    feeds_[slot] = {Feed::PrevReg, age_to_slot_[age - 1]};
  }

  // Run-compress the feeds into chains (see header). Sorted distinct ages
  // make every PrevReg feed source slot - 1, verified here.
  for (std::size_t slot = 0; slot < feeds_.size(); ++slot) {
    if (feeds_[slot].kind == Feed::PrevReg) {
      SMACHE_ASSERT(feeds_[slot].arg == slot - 1);
      ++chains_.back().len;
      continue;
    }
    Chain ch;
    ch.start = slot;
    ch.len = 1;
    ch.from_input = feeds_[slot].kind == Feed::Input;
    ch.segment = ch.from_input ? 0 : feeds_[slot].arg;
    chains_.push_back(ch);
  }
}

void StreamBuffer::shift(word_t in) {
  SMACHE_ASSERT(fields_ == 1);
  shift_cell(&in);
}

void StreamBuffer::shift_cell(const word_t* cell) {
  // Schedule all register updates (non-blocking; the committed-state reads
  // below see start-of-cycle values, so ordering across chains is
  // irrelevant). Every slot has a feed, so the whole next-state array is
  // written and committed as one block copy. Chains turn the per-slot feed
  // switch into one head write plus one bulk copy each; widths scale by
  // the cell's F interleaved words.
  const std::size_t F = fields_;
  word_t* next_state = regs_->next_all();
  const word_t* q = regs_->q_data();
  if (F == 1) {
    // Single-word cells are the overwhelmingly common layout and the
    // hottest loop in the whole simulator — keep the scalar body free of
    // the per-field loops so F = 1 costs exactly what it did before
    // multi-field cells existed.
    for (const Chain& ch : chains_) {
      next_state[ch.start] =
          ch.from_input
              ? cell[0]
              : static_cast<word_t>(segments_[ch.segment].brams[0]->rdata());
      if (ch.len > 1)
        std::memcpy(next_state + ch.start + 1, q + ch.start,
                    (ch.len - 1) * sizeof(word_t));
    }
    for (auto& seg : segments_) {
      const std::uint32_t p = seg.ptr->q();
      const std::uint32_t next = p + 1 == seg.bram_len ? 0u : p + 1;
      mem::BramBank& bram = *seg.brams[0];
      bram.write(p, regs_->q(seg.in_slot));
      bram.read(next);
      seg.ptr->d(next);
    }
    return;
  }
  for (const Chain& ch : chains_) {
    word_t* head = next_state + ch.start * F;
    if (ch.from_input) {
      for (std::size_t f = 0; f < F; ++f) head[f] = cell[f];
    } else {
      const Segment& seg = segments_[ch.segment];
      for (std::size_t f = 0; f < F; ++f)
        head[f] = static_cast<word_t>(seg.brams[f]->rdata());
    }
    if (ch.len > 1)
      std::memcpy(next_state + (ch.start + 1) * F, q + ch.start * F,
                  (ch.len - 1) * F * sizeof(word_t));
  }
  // Advance every BRAM segment. The pointer wrap is a compare, not a
  // modulo — an integer divide per segment per cycle is the single most
  // expensive scalar op in the shift. All field banks share the pointer.
  for (auto& seg : segments_) {
    const std::uint32_t p = seg.ptr->q();
    const std::uint32_t next =
        p + 1 == seg.bram_len ? 0u : p + 1;
    for (std::size_t f = 0; f < F; ++f) {
      seg.brams[f]->write(p, regs_->q(seg.in_slot + f));
      seg.brams[f]->read(next);
    }
    seg.ptr->d(next);
  }
}

word_t StreamBuffer::tap(std::size_t age) const {
  SMACHE_REQUIRE_MSG(is_reg_age(age),
                     "tap(" + std::to_string(age) +
                         ") is not a register-mapped window position");
  return regs_->q(age_to_slot_[age] * fields_);
}

}  // namespace smache::rtl

#include "rtl/stream_buffer.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace smache::rtl {

StreamBuffer::StreamBuffer(sim::Simulator& sim, const std::string& path,
                           const model::BufferPlan& plan)
    : window_len_(plan.window_len()) {
  reg_ages_ = plan.reg_ages();
  std::sort(reg_ages_.begin(), reg_ages_.end());
  SMACHE_REQUIRE(!reg_ages_.empty() && reg_ages_.front() == 1);
  for (std::size_t slot = 0; slot < reg_ages_.size(); ++slot)
    reg_index_[reg_ages_[slot]] = slot;

  regs_ = std::make_unique<sim::RegArray<word_t>>(
      sim, path + "/stream/window_regs", reg_ages_.size(), word_t{0},
      kWordBits);

  for (std::size_t s = 0; s < plan.fifo_segments().size(); ++s) {
    const model::FifoSegment& fs = plan.fifo_segments()[s];
    SMACHE_REQUIRE_MSG(fs.bram_len >= 2,
                       "BRAM FIFO segments need >= 2 slots for the pointer "
                       "discipline");
    Segment seg;
    seg.in_stage_age = fs.in_stage_age;
    seg.out_stage_age = fs.out_stage_age;
    seg.bram_len = fs.bram_len;
    const std::string spath = path + "/stream/fifo" + std::to_string(s);
    seg.bram = std::make_unique<mem::BramBank>(
        sim, spath, fs.bram_len, kWordBits, mem::BramBank::Mode::Fifo);
    seg.ptr = std::make_unique<sim::Reg<std::uint32_t>>(
        sim, spath + "/ptr", 0u, smache::addr_bits(fs.bram_len));
    segments_.push_back(std::move(seg));
  }

  // Precompute each register slot's feed. Slot for age 1 takes the shift
  // input; a slot whose age is an out_stage takes the segment's BRAM
  // output; every other slot takes the register at age-1 (which must
  // exist: BRAM interiors are always bounded by stage registers).
  feeds_.resize(reg_ages_.size());
  for (std::size_t slot = 0; slot < reg_ages_.size(); ++slot) {
    const std::size_t age = reg_ages_[slot];
    if (age == 1) {
      feeds_[slot] = {Feed::Input, 0};
      continue;
    }
    bool fed = false;
    for (std::size_t s = 0; s < segments_.size(); ++s) {
      if (segments_[s].out_stage_age == age) {
        feeds_[slot] = {Feed::Bram, s};
        fed = true;
        break;
      }
    }
    if (fed) continue;
    const auto prev = reg_index_.find(age - 1);
    SMACHE_REQUIRE_MSG(prev != reg_index_.end(),
                       "window layout broken: register at age " +
                           std::to_string(age) +
                           " has no register or BRAM feeding it");
    feeds_[slot] = {Feed::PrevReg, prev->second};
  }
}

void StreamBuffer::shift(word_t in) {
  // Schedule all register updates (non-blocking; reads see committed
  // state, so ordering across slots is irrelevant).
  for (std::size_t slot = 0; slot < feeds_.size(); ++slot) {
    switch (feeds_[slot].kind) {
      case Feed::Input:
        regs_->d(slot, in);
        break;
      case Feed::PrevReg:
        regs_->d(slot, regs_->q(feeds_[slot].arg));
        break;
      case Feed::Bram:
        regs_->d(slot,
                 static_cast<word_t>(segments_[feeds_[slot].arg]
                                         .bram->rdata()));
        break;
    }
  }
  // Advance every BRAM segment.
  for (auto& seg : segments_) {
    const std::uint32_t p = seg.ptr->q();
    const std::uint32_t next =
        static_cast<std::uint32_t>((p + 1) % seg.bram_len);
    const std::size_t in_slot = reg_index_.at(seg.in_stage_age);
    seg.bram->write(p, regs_->q(in_slot));
    seg.bram->read(next);
    seg.ptr->d(next);
  }
}

word_t StreamBuffer::tap(std::size_t age) const {
  const auto it = reg_index_.find(age);
  SMACHE_REQUIRE_MSG(it != reg_index_.end(),
                     "tap(" + std::to_string(age) +
                         ") is not a register-mapped window position");
  return regs_->q(it->second);
}

}  // namespace smache::rtl

// Pipelined computation kernel. The Smache module (Figure 1b) connects to
// an external kernel through stall-capable streams; this models that kernel
// as a fixed-latency arithmetic pipeline:
//
//   tuple in (FIFO) -> [stage 0: adder tree] -> [stage 1] -> [stage 2]
//                      -> result out (FIFO)
//
// The whole pipeline freezes when the output FIFO is full (all-or-nothing
// shift), propagating back-pressure to the gather unit. Results are
// computed with the shared apply_kernel functor at entry and carried with
// progressively narrower payloads; the register charge per stage mirrors
// what a real pipeline would hold (partial sums, then a single word).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/word.hpp"
#include "grid/stencil.hpp"
#include "rtl/kernel.hpp"
#include "sim/fifo.hpp"
#include "sim/reg.hpp"
#include "sim/simulator.hpp"

namespace smache::rtl {

/// Maximum tuple arity supported by the fixed message layout.
inline constexpr std::size_t kMaxTuple = 32;

/// Gathered tuple heading into the kernel.
struct TupleMsg {
  std::uint64_t index = 0;  // linear output cell index
  std::uint32_t count = 0;  // tuple arity in use
  std::array<grid::TupleElem, kMaxTuple> elems{};
};

/// Kernel result heading to write-back.
struct ResultMsg {
  std::uint64_t index = 0;
  word_t value = 0;
};

class KernelPipeline : public sim::Module {
 public:
  /// `grid_cells` sizes the index counters; `latency` >= 1.
  KernelPipeline(sim::Simulator& sim, const std::string& path,
                 KernelSpec spec, std::size_t tuple_size,
                 std::size_t grid_cells, std::uint32_t latency = 3);

  sim::Fifo<TupleMsg>& in() noexcept { return in_; }
  sim::Fifo<ResultMsg>& out() noexcept { return out_; }

  const KernelSpec& spec() const noexcept { return spec_; }
  std::uint32_t latency() const noexcept { return latency_; }

  /// True when no tuple is in flight (used by drain checks).
  bool empty() const noexcept;

  void eval() override;

 private:
  struct Stage {
    bool valid = false;
    std::uint64_t index = 0;
    word_t value = 0;
  };

  KernelSpec spec_;
  std::size_t tuple_size_;
  std::uint32_t latency_;
  sim::Fifo<TupleMsg> in_;
  sim::Fifo<ResultMsg> out_;
  std::vector<sim::Reg<Stage>*> stages_;
  std::vector<std::unique_ptr<sim::Reg<Stage>>> stage_storage_;
  // Valid tuples currently in the stage registers (behavioural bookkeeping,
  // private to eval): when zero with no input waiting, a cycle would only
  // shift bubbles into bubbles, so eval skips the stage writes entirely.
  std::uint32_t occupancy_ = 0;
};

}  // namespace smache::rtl

// Pipelined computation kernel. The Smache module (Figure 1b) connects to
// an external kernel through stall-capable streams; this models that kernel
// as a fixed-latency arithmetic pipeline:
//
//   tuple in (FIFO) -> [stage 0: adder tree] -> [stage 1] -> [stage 2]
//                      -> result out (FIFO)
//
// The whole pipeline freezes when the output FIFO is full (all-or-nothing
// shift), propagating back-pressure to the gather unit. Results are
// computed with the shared apply_kernel functor at entry and carried with
// progressively narrower payloads; the register charge per stage mirrors
// what a real pipeline would hold (partial sums, then a single word).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/bits.hpp"
#include "common/word.hpp"
#include "grid/stencil.hpp"
#include "rtl/kernel.hpp"
#include "sim/fifo.hpp"
#include "sim/reg.hpp"
#include "sim/simulator.hpp"

namespace smache::rtl {

/// Maximum tuple arity supported by the fixed message layout.
inline constexpr std::size_t kMaxTuple = 32;

/// Gathered tuple heading into the kernel. For multi-field cells the
/// elements are tap-major (elems[t * F + f]) and count == taps * F; the
/// taps * F product must fit kMaxTuple.
struct TupleMsg {
  std::uint64_t index = 0;  // linear output cell index
  std::uint32_t count = 0;  // tuple arity in use (taps * fields)
  std::array<grid::TupleElem, kMaxTuple> elems{};
};

/// Kernel result heading to write-back: the output cell's F words
/// (values[0..fields) in use; F = 1 uses values[0] only).
struct ResultMsg {
  std::uint64_t index = 0;
  std::array<word_t, kMaxFields> values{};
};

class KernelPipeline : public sim::Module {
 public:
  /// `tuple_size` is the stencil arity in TAPS (cells); the cell field
  /// count comes from spec.fields(). `grid_cells` sizes the index
  /// counters; `latency` >= 1.
  KernelPipeline(sim::Simulator& sim, const std::string& path,
                 KernelSpec spec, std::size_t tuple_size,
                 std::size_t grid_cells, std::uint32_t latency = 3);

  sim::Fifo<TupleMsg>& in() noexcept { return in_; }
  sim::Fifo<ResultMsg>& out() noexcept { return out_; }

  const KernelSpec& spec() const noexcept { return spec_; }
  std::uint32_t latency() const noexcept { return latency_; }

  /// True when no tuple is in flight (used by drain checks).
  bool empty() const noexcept;

  void eval() override;

 private:
  struct Stage {
    bool valid = false;
    std::uint64_t index = 0;
    std::array<word_t, kMaxFields> value{};
  };

  /// All pipeline stages as ONE state element: the whole-pipe shift is a
  /// single next-state write and a single block-copy commit, instead of a
  /// dirty-list entry per stage register. Ledger charges stay per stage
  /// (the KernelPipeline constructor adds them with the same paths and
  /// widths as the discrete Reg<Stage> elements this replaces).
  class StagePipe : public sim::Clocked {
   public:
    StagePipe(sim::Simulator& sim, std::uint32_t latency)
        : q_(latency), next_(latency) {
      static_assert(std::is_trivially_copyable_v<Stage>,
                    "StagePipe's block-copy commit needs a trivially "
                    "copyable Stage");
      sim.register_clocked(this);
      set_copy_commit(q_.data(), next_.data(),
                      static_cast<std::uint32_t>(latency * sizeof(Stage)));
    }
    const Stage& q(std::size_t s) const noexcept { return q_[s]; }
    /// Next-state array; the caller writes every stage, then the commit is
    /// one memcpy.
    Stage* next_all() {
      mark_dirty();
      return next_.data();
    }
    void commit() override { q_ = next_; }

   private:
    std::vector<Stage> q_;
    std::vector<Stage> next_;
  };

  KernelSpec spec_;
  std::size_t tuple_size_;  // taps (cells), NOT words
  std::size_t fields_;      // words per cell (spec_.fields())
  std::uint32_t latency_;
  sim::Fifo<TupleMsg> in_;
  sim::Fifo<ResultMsg> out_;
  StagePipe pipe_;
  // Valid tuples currently in the stage registers (behavioural bookkeeping,
  // private to eval): when zero with no input waiting, the pipeline is
  // quiescent — eval sleeps until the input channel's push commit wakes it.
  std::uint32_t occupancy_ = 0;

  // -- observability: stalled-eval counter for a full output channel --
  obs::MetricsRegistry* mreg_;
  obs::MetricsRegistry::Slot s_out_bp_;
};

}  // namespace smache::rtl

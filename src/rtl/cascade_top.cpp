#include "rtl/cascade_top.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace smache::rtl {

CascadeTop::CascadeTop(sim::Simulator& sim, const std::string& path,
                       const model::BufferPlan& plan,
                       const KernelSpec& kernel_spec, mem::DramModel& dram,
                       std::size_t depth, std::size_t passes)
    : plan_(plan),
      dram_(dram),
      cells_(plan.height() * plan.width()),
      passes_(passes),
      sim_(sim),
      top_(sim, path + "/ctrl/top_fsm", Top::Run, 3),
      ctrl_(sim, Ctrl{},
            {{path + "/ctrl/pass", smache::count_bits(passes)},
             {path + "/ctrl/req_issued", 1},
             {path + "/ctrl/wb_count", smache::count_bits(cells_)}}) {
  SMACHE_REQUIRE(depth >= 1 && passes >= 1);
  SMACHE_REQUIRE_MSG(plan.static_buffers().empty(),
                     "cascading requires boundaries whose tuples resolve "
                     "in-stream (open/mirror/constant); periodic wraps need "
                     "SmacheTop's double-buffered static buffers");
  SMACHE_REQUIRE(dram.size_words() >= 2 * cells_);

  for (std::size_t k = 0; k < depth; ++k) {
    const std::string stage_id = "stage" + std::to_string(k);
    Stage st;
    // Windows charge under <path>/stream/... (entries accumulate across
    // stages, so the ledger's stream totals cover the whole cascade);
    // kernels sit outside the module root, as in SmacheTop.
    st.window = std::make_unique<StreamBuffer>(sim, path, plan);
    st.kernel = std::make_unique<KernelPipeline>(
        sim, "kernel/" + stage_id, kernel_spec, plan.shape().size(),
        cells_);
    st.ctrl = std::make_unique<sim::RegGroup<StageCtrl>>(
        sim, StageCtrl{},
        std::initializer_list<sim::RegGroup<StageCtrl>::FieldCharge>{
            {path + "/ctrl/" + stage_id + "/shifts",
             smache::count_bits(cells_ + plan.window_len())},
            {path + "/ctrl/" + stage_id + "/emit_next",
             smache::count_bits(cells_)}});
    st.input = k == 0 ? nullptr
                      : std::make_unique<sim::Fifo<word_t>>(
                            sim, path + "/ctrl/" + stage_id + "/input", 4,
                            kWordBits);
    // Activity gating: every stage's channel events can unblock the single
    // controller module, so all stage channels wake it.
    st.kernel->in().set_producer(this);
    st.kernel->out().set_consumer(this);
    if (st.input) {
      st.input->set_consumer(this);
      st.input->set_producer(this);
    }
    stages_.push_back(std::move(st));
  }
  dram_.read_req().set_producer(this);
  dram_.read_data().set_consumer(this);
  dram_.write_req().set_producer(this);
  sim.add_module(this);
}

bool CascadeTop::done() const noexcept { return top_.is(Top::Done); }

std::uint64_t CascadeTop::in_base() const noexcept {
  return (ctrl_.q().pass % 2 == 0) ? 0 : cells_;
}
std::uint64_t CascadeTop::out_base() const noexcept {
  return (ctrl_.q().pass % 2 == 0) ? cells_ : 0;
}
std::uint64_t CascadeTop::output_base() const noexcept {
  return (passes_ % 2 == 0) ? 0 : cells_;
}

bool CascadeTop::eval_stage(std::size_t k) {
  Stage& st = stages_[k];
  const StageCtrl& sc = st.ctrl->q();
  const std::uint64_t n = sc.shifts;
  const std::uint64_t emit_i = sc.emit_next;
  const std::size_t center = plan_.center_age();
  bool did_work = false;

  // -- tuple emission into this stage's kernel --
  bool emitting = false;
  if (emit_i < cells_ && n >= emit_i + center &&
      st.kernel->in().can_push()) {
    const auto& ops = case_plans_[case_of_cell_[emit_i]].ops;
    // Staged in place; every elems[0..count) field is written below.
    TupleMsg& msg = st.kernel->in().push_slot();
    msg.index = emit_i;
    msg.count = static_cast<std::uint32_t>(ops.size());
    for (std::size_t j = 0; j < ops.size(); ++j) {
      const EmitOp& op = ops[j];
      switch (op.kind) {
        case EmitOp::Kind::Window:
          msg.elems[j] =
              grid::TupleElem{st.window->tap_slot(op.slot), true};
          break;
        case EmitOp::Kind::Constant:
          msg.elems[j] = grid::TupleElem{op.constant, true};
          break;
        case EmitOp::Kind::Skip:
          msg.elems[j] = grid::TupleElem{0, false};
          break;
        case EmitOp::Kind::Static:
          SMACHE_ASSERT_MSG(false, "cascade plans never contain static "
                                   "sources");
          break;
      }
    }
    st.ctrl->d().emit_next = emit_i + 1;
    emitting = true;
    did_work = true;
  }

  // -- window shift from this stage's input channel --
  const std::uint64_t emit_eff = emitting ? emit_i + 1 : emit_i;
  const bool more_shifts = n < cells_ - 1 + center;
  const bool window_room = n < emit_eff + center;
  bool data_ok = true;
  if (n < cells_) {
    data_ok = k == 0 ? dram_.read_data().can_pop() : st.input->can_pop();
  }
  if (more_shifts && window_room && data_ok) {
    word_t in = 0;
    if (n < cells_)
      in = k == 0 ? dram_.read_data().pop() : st.input->pop();
    st.window->shift(in);
    st.ctrl->d().shifts = n + 1;
    did_work = true;
  }

  // -- drain this stage's kernel into the next stage / DRAM --
  const bool last = k + 1 == stages_.size();
  if (last) {
    if (st.kernel->out().can_pop() && dram_.write_req().can_push()) {
      const ResultMsg res = st.kernel->out().pop();
      if (warmup_end_ == 0) warmup_end_ = sim_.now();
      dram_.write_req().push(
          mem::DramWriteReq{out_base() + res.index, res.value});
      const Ctrl& c = ctrl_.q();
      ctrl_.d().wb_count = c.wb_count + 1;
      did_work = true;
      if (c.wb_count + 1 == cells_) {
        top_.go(c.pass + 1 == passes_ ? Top::Done : Top::Gap);
      }
    }
  } else {
    sim::Fifo<word_t>& next_in = *stages_[k + 1].input;
    if (st.kernel->out().can_pop() && next_in.can_push()) {
      next_in.push(st.kernel->out().pop().value);
      did_work = true;
    }
  }
  return did_work;
}

void CascadeTop::eval() {
  if (case_of_cell_.empty()) {
    case_of_cell_ =
        build_case_table(plan_.cases(), plan_.height(), plan_.width());
    // Pre-resolve every case's gather sources (window ages to register
    // slots); the stage windows share one layout, so one table serves all.
    // No statics by construction (enforced in the constructor and again in
    // build_case_plans).
    case_plans_ = build_case_plans(plan_, *stages_.front().window, nullptr);
  }
  switch (top_.state()) {
    case Top::Run: {
      bool did_work = false;
      const Ctrl& c = ctrl_.q();
      if (!c.req_issued && dram_.read_req().can_push()) {
        dram_.read_req().push(
            mem::DramReadReq{in_base(), static_cast<std::uint32_t>(cells_)});
        ctrl_.d().req_issued = true;
        did_work = true;
      }
      for (std::size_t k = 0; k < stages_.size(); ++k)
        did_work |= eval_stage(k);
      // Starved: every stage is blocked on a channel condition subscribed
      // to in the constructor.
      if (!did_work) sleep();
      break;
    }
    case Top::Gap:
      if (dram_.write_req().empty() && dram_.idle()) {
        const Ctrl& c = ctrl_.q();
        Ctrl& d = ctrl_.d();
        d.pass = c.pass + 1;
        d.req_issued = false;
        d.wb_count = 0;
        for (auto& st : stages_) {
          st.ctrl->d().shifts = 0;
          st.ctrl->d().emit_next = 0;
        }
        top_.go(Top::Run);
      } else {
        // Sound lower bound on the first cycle the fence can pass; write
        // drains also wake us early via the write_req subscription.
        sleep_for(dram_.min_cycles_to_idle());
      }
      break;
    case Top::Done:
      // Terminal: nothing can ever change again.
      sleep();
      break;
  }
}

}  // namespace smache::rtl

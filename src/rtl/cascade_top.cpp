#include "rtl/cascade_top.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace smache::rtl {

CascadeTop::CascadeTop(sim::Simulator& sim, const std::string& path,
                       const model::BufferPlan& plan,
                       const KernelSpec& kernel_spec, mem::DramModel& dram,
                       std::size_t depth, std::size_t passes)
    : plan_(plan),
      dram_(dram),
      cells_(plan.cells()),
      fields_(kernel_spec.fields()),
      words_(cells_ * kernel_spec.fields()),
      passes_(passes),
      sim_(sim),
      top_(sim, path + "/ctrl/top_fsm", Top::Run, 3),
      ctrl_(sim, Ctrl{},
            [&] {
              // F = 1 keeps the original charge list byte-identical; F > 1
              // appends the write-back staging a multi-word drain holds.
              std::vector<sim::RegGroup<Ctrl>::FieldCharge> charges = {
                  {path + "/ctrl/pass", smache::count_bits(passes)},
                  {path + "/ctrl/req_issued", 1},
                  {path + "/ctrl/wb_count", smache::count_bits(cells_)}};
              if (kernel_spec.fields() > 1) {
                charges.push_back({path + "/ctrl/wb_field",
                                   smache::count_bits(kernel_spec.fields())});
                charges.push_back(
                    {path + "/ctrl/wb_index", smache::count_bits(cells_)});
                charges.push_back(
                    {path + "/ctrl/wb_vals",
                     static_cast<std::uint32_t>(
                         (kernel_spec.fields() - 1) * kWordBits)});
              }
              return charges;
            }()),
      mreg_(&sim.metrics()),
      s_req_bp_(mreg_->slot(path, "/stall/request_backpressure",
                            obs::MetricKind::Counter)),
      s_dram_wait_(
          mreg_->slot(path, "/stall/dram_wait", obs::MetricKind::Counter)),
      s_kernel_bp_(mreg_->slot(path, "/stall/kernel_backpressure",
                               obs::MetricKind::Counter)),
      s_interstage_bp_(mreg_->slot(path, "/stall/interstage_backpressure",
                                   obs::MetricKind::Counter)),
      s_wb_bp_(mreg_->slot(path, "/stall/writeback_backpressure",
                           obs::MetricKind::Counter)),
      s_gather_staging_(mreg_->slot(path, "/gather_staging_cycles",
                                    obs::MetricKind::Counter)),
      s_wb_drain_(mreg_->slot(path, "/writeback_drain_cycles",
                              obs::MetricKind::Counter)) {
  SMACHE_REQUIRE(depth >= 1 && passes >= 1);
  set_obs_name(path);
  SMACHE_REQUIRE_MSG(plan.static_buffers().empty(),
                     "cascading requires boundaries whose tuples resolve "
                     "in-stream (open/mirror/constant); periodic wraps need "
                     "SmacheTop's double-buffered static buffers");
  SMACHE_REQUIRE(dram.size_words() >= 2 * words_);

  for (std::size_t k = 0; k < depth; ++k) {
    const std::string stage_id = "stage" + std::to_string(k);
    Stage st;
    // Windows charge under <path>/stream/... (entries accumulate across
    // stages, so the ledger's stream totals cover the whole cascade);
    // kernels sit outside the module root, as in SmacheTop.
    st.window = std::make_unique<StreamBuffer>(sim, path, plan, fields_);
    st.kernel = std::make_unique<KernelPipeline>(
        sim, "kernel/" + stage_id, kernel_spec, plan.shape().size(),
        cells_);
    {
      std::vector<sim::RegGroup<StageCtrl>::FieldCharge> scharges = {
          {path + "/ctrl/" + stage_id + "/shifts",
           smache::count_bits(cells_ + plan.window_len())},
          {path + "/ctrl/" + stage_id + "/emit_next",
           smache::count_bits(cells_)}};
      // Stage 0 assembles cells from the DRAM word stream; later stages
      // receive whole cells on the inter-stage channel and stage nothing.
      if (fields_ > 1 && k == 0) {
        scharges.push_back({path + "/ctrl/" + stage_id + "/in_fill",
                            smache::count_bits(fields_)});
        scharges.push_back(
            {path + "/ctrl/" + stage_id + "/in_cell",
             static_cast<std::uint32_t>((fields_ - 1) * kWordBits)});
      }
      st.ctrl = std::make_unique<sim::RegGroup<StageCtrl>>(sim, StageCtrl{},
                                                           scharges);
    }
    st.input = k == 0 ? nullptr
                      : std::make_unique<sim::Fifo<CellMsg>>(
                            sim, path + "/ctrl/" + stage_id + "/input", 4,
                            static_cast<std::uint32_t>(kWordBits * fields_));
    // Activity gating: every stage's channel events can unblock the single
    // controller module, so all stage channels wake it.
    st.kernel->in().set_producer(this);
    st.kernel->out().set_consumer(this);
    if (st.input) {
      st.input->set_consumer(this);
      st.input->set_producer(this);
    }
    stages_.push_back(std::move(st));
  }
  dram_.read_req().set_producer(this);
  dram_.read_data().set_consumer(this);
  dram_.write_req().set_producer(this);
  sim.add_module(this);
}

bool CascadeTop::done() const noexcept { return top_.is(Top::Done); }

std::uint64_t CascadeTop::in_base() const noexcept {
  return (ctrl_.q().pass % 2 == 0) ? 0 : words_;
}
std::uint64_t CascadeTop::out_base() const noexcept {
  return (ctrl_.q().pass % 2 == 0) ? words_ : 0;
}
std::uint64_t CascadeTop::output_base() const noexcept {
  return (passes_ % 2 == 0) ? 0 : words_;
}

bool CascadeTop::eval_stage(std::size_t k) {
  Stage& st = stages_[k];
  const StageCtrl& sc = st.ctrl->q();
  const std::uint64_t n = sc.shifts;
  const std::uint64_t emit_i = sc.emit_next;
  const std::size_t center = plan_.center_age();
  bool did_work = false;

  // -- tuple emission into this stage's kernel --
  bool emitting = false;
  if (emit_i < cells_ && n >= emit_i + center) {
    if (!st.kernel->in().can_push()) {
      mreg_->count(s_kernel_bp_);
    } else {
      const auto& ops = case_plans_[case_of_cell_[emit_i]].ops;
      // Staged in place; every elems[0..count) field is written below.
      TupleMsg& msg = st.kernel->in().push_slot();
      msg.index = emit_i;
      msg.count = static_cast<std::uint32_t>(ops.size() * fields_);
      for (std::size_t j = 0; j < ops.size(); ++j) {
        const EmitOp& op = ops[j];
        grid::TupleElem* dst = msg.elems.data() + j * fields_;
        switch (op.kind) {
          case EmitOp::Kind::Window:
            // op.slot is the cell's field-0 register slot; fields are
            // adjacent (see StreamBuffer::slot_of_age).
            for (std::size_t f = 0; f < fields_; ++f)
              dst[f] =
                  grid::TupleElem{st.window->tap_slot(op.slot + f), true};
            break;
          case EmitOp::Kind::Constant:
            for (std::size_t f = 0; f < fields_; ++f)
              dst[f] = grid::TupleElem{op.constant, true};
            break;
          case EmitOp::Kind::Skip:
            for (std::size_t f = 0; f < fields_; ++f)
              dst[f] = grid::TupleElem{0, false};
            break;
          case EmitOp::Kind::Static:
            SMACHE_ASSERT_MSG(false, "cascade plans never contain static "
                                     "sources");
            break;
        }
      }
      st.ctrl->d().emit_next = emit_i + 1;
      emitting = true;
      did_work = true;
    }
  }

  // -- window shift from this stage's input channel --
  const std::uint64_t emit_eff = emitting ? emit_i + 1 : emit_i;
  const bool more_shifts = n < cells_ - 1 + center;
  const bool window_room = n < emit_eff + center;
  if (more_shifts && window_room) {
    if (n >= cells_) {
      // Flush region past the last real cell: shift a zero cell.
      const word_t zero[kMaxFields] = {};
      st.window->shift_cell(zero);
      st.ctrl->d().shifts = n + 1;
      did_work = true;
    } else if (k == 0) {
      // Stage 0 assembles one cell from the DRAM word stream. For F = 1
      // the word IS the cell and shifts the same cycle it arrives (the
      // original timing); F > 1 stages F-1 words, then shifts on the Fth.
      if (dram_.read_data().can_pop()) {
        const word_t v = dram_.read_data().pop();
        const std::uint32_t fill = sc.in_fill;
        if (fill + 1 == fields_) {
          word_t cell[kMaxFields] = {};
          for (std::uint32_t f = 0; f < fill; ++f) cell[f] = sc.in_cell[f];
          cell[fill] = v;
          st.window->shift_cell(cell);
          st.ctrl->d().shifts = n + 1;
          st.ctrl->d().in_fill = 0;
        } else {
          st.ctrl->d().in_cell[fill] = v;
          st.ctrl->d().in_fill = fill + 1;
          mreg_->count(s_gather_staging_);
        }
        did_work = true;
      } else {
        mreg_->count(s_dram_wait_);
      }
    } else if (st.input->can_pop()) {
      // Later stages receive whole cells on the inter-stage channel.
      st.window->shift_cell(st.input->pop().w.data());
      st.ctrl->d().shifts = n + 1;
      did_work = true;
    } else {
      mreg_->count(s_interstage_bp_);
    }
  }

  // -- drain this stage's kernel into the next stage / DRAM --
  const bool last = k + 1 == stages_.size();
  if (last) {
    const Ctrl& c = ctrl_.q();
    if (fields_ == 1) {
      if (st.kernel->out().can_pop()) {
        if (dram_.write_req().can_push()) {
          const ResultMsg res = st.kernel->out().pop();
          if (warmup_end_ == 0) warmup_end_ = sim_.now();
          dram_.write_req().push(
              mem::DramWriteReq{out_base() + res.index, res.values[0]});
          ctrl_.d().wb_count = c.wb_count + 1;
          did_work = true;
          if (c.wb_count + 1 == cells_) {
            top_.go(c.pass + 1 == passes_ ? Top::Done : Top::Gap);
          }
        } else {
          mreg_->count(s_wb_bp_);
        }
      }
    } else if (c.wb_field > 0) {
      // Drain the staged result cell, one word per cycle (fields
      // 1..F-1; field 0 went out on the pop cycle).
      if (dram_.write_req().can_push()) {
        dram_.write_req().push(
            mem::DramWriteReq{out_base() + c.wb_index * fields_ + c.wb_field,
                              c.wb_vals[c.wb_field]});
        mreg_->count(s_wb_drain_);
        did_work = true;
        if (c.wb_field + 1 == static_cast<std::uint32_t>(fields_)) {
          ctrl_.d().wb_field = 0;
          ctrl_.d().wb_count = c.wb_count + 1;
          if (c.wb_count + 1 == cells_)
            top_.go(c.pass + 1 == passes_ ? Top::Done : Top::Gap);
        } else {
          ctrl_.d().wb_field = c.wb_field + 1;
        }
      } else {
        mreg_->count(s_wb_bp_);
      }
    } else if (st.kernel->out().can_pop()) {
      if (dram_.write_req().can_push()) {
        const ResultMsg res = st.kernel->out().pop();
        if (warmup_end_ == 0) warmup_end_ = sim_.now();
        dram_.write_req().push(
            mem::DramWriteReq{out_base() + res.index * fields_,
                              res.values[0]});
        Ctrl& d = ctrl_.d();
        d.wb_index = res.index;
        d.wb_vals = res.values;
        d.wb_field = 1;
        did_work = true;
      } else {
        mreg_->count(s_wb_bp_);
      }
    }
  } else {
    sim::Fifo<CellMsg>& next_in = *stages_[k + 1].input;
    if (st.kernel->out().can_pop()) {
      if (next_in.can_push()) {
        const ResultMsg res = st.kernel->out().pop();
        next_in.push_slot().w = res.values;
        did_work = true;
      } else {
        mreg_->count(s_interstage_bp_);
      }
    }
  }
  return did_work;
}

void CascadeTop::eval() {
  if (case_of_cell_.empty()) {
    case_of_cell_ = build_case_table(plan_.cases(), plan_.height(),
                                     plan_.width(), plan_.depth());
    // Pre-resolve every case's gather sources (window ages to register
    // slots); the stage windows share one layout, so one table serves all.
    // No statics by construction (enforced in the constructor and again in
    // build_case_plans).
    case_plans_ = build_case_plans(plan_, *stages_.front().window, nullptr);
  }
  switch (top_.state()) {
    case Top::Run: {
      bool did_work = false;
      const Ctrl& c = ctrl_.q();
      if (!c.req_issued) {
        if (dram_.read_req().can_push()) {
          dram_.read_req().push(
              mem::DramReadReq{in_base(),
                               static_cast<std::uint32_t>(words_)});
          ctrl_.d().req_issued = true;
          did_work = true;
        } else {
          mreg_->count(s_req_bp_);
        }
      }
      for (std::size_t k = 0; k < stages_.size(); ++k)
        did_work |= eval_stage(k);
      // Starved: every stage is blocked on a channel condition subscribed
      // to in the constructor.
      if (!did_work) sleep();
      break;
    }
    case Top::Gap:
      if (dram_.write_req().empty() && dram_.idle()) {
        const Ctrl& c = ctrl_.q();
        Ctrl& d = ctrl_.d();
        d.pass = c.pass + 1;
        d.req_issued = false;
        d.wb_count = 0;
        d.wb_field = 0;
        for (auto& st : stages_) {
          st.ctrl->d().shifts = 0;
          st.ctrl->d().emit_next = 0;
          st.ctrl->d().in_fill = 0;
        }
        top_.go(Top::Run);
      } else {
        // Sound lower bound on the first cycle the fence can pass; write
        // drains also wake us early via the write_req subscription.
        sleep_for(dram_.min_cycles_to_idle());
      }
      break;
    case Top::Done:
      // Terminal: nothing can ever change again.
      sleep();
      break;
  }
}

}  // namespace smache::rtl

#include "rtl/cascade_top.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace smache::rtl {

CascadeTop::CascadeTop(sim::Simulator& sim, const std::string& path,
                       const model::BufferPlan& plan,
                       const KernelSpec& kernel_spec, mem::DramModel& dram,
                       std::size_t depth, std::size_t passes)
    : plan_(plan),
      dram_(dram),
      cells_(plan.height() * plan.width()),
      passes_(passes),
      sim_(sim),
      top_(sim, path + "/ctrl/top_fsm", Top::Run, 3),
      pass_(sim, path + "/ctrl/pass", 0u, smache::count_bits(passes)),
      req_issued_(sim, path + "/ctrl/req_issued", false, 1),
      wb_count_(sim, path + "/ctrl/wb_count", 0,
                smache::count_bits(cells_)) {
  SMACHE_REQUIRE(depth >= 1 && passes >= 1);
  SMACHE_REQUIRE_MSG(plan.static_buffers().empty(),
                     "cascading requires boundaries whose tuples resolve "
                     "in-stream (open/mirror/constant); periodic wraps need "
                     "SmacheTop's double-buffered static buffers");
  SMACHE_REQUIRE(dram.size_words() >= 2 * cells_);

  for (std::size_t k = 0; k < depth; ++k) {
    const std::string stage_id = "stage" + std::to_string(k);
    Stage st;
    // Windows charge under <path>/stream/... (entries accumulate across
    // stages, so the ledger's stream totals cover the whole cascade);
    // kernels sit outside the module root, as in SmacheTop.
    st.window = std::make_unique<StreamBuffer>(sim, path, plan);
    st.kernel = std::make_unique<KernelPipeline>(
        sim, "kernel/" + stage_id, kernel_spec, plan.shape().size(),
        cells_);
    st.shifts = std::make_unique<sim::Reg<std::uint64_t>>(
        sim, path + "/ctrl/" + stage_id + "/shifts", 0,
        smache::count_bits(cells_ + plan.window_len()));
    st.emit_next = std::make_unique<sim::Reg<std::uint64_t>>(
        sim, path + "/ctrl/" + stage_id + "/emit_next", 0,
        smache::count_bits(cells_));
    st.input = k == 0 ? nullptr
                      : std::make_unique<sim::Fifo<word_t>>(
                            sim, path + "/ctrl/" + stage_id + "/input", 4,
                            kWordBits);
    stages_.push_back(std::move(st));
  }
  sim.add_module(this);
}

bool CascadeTop::done() const noexcept { return top_.is(Top::Done); }

std::uint64_t CascadeTop::in_base() const noexcept {
  return (pass_.q() % 2 == 0) ? 0 : cells_;
}
std::uint64_t CascadeTop::out_base() const noexcept {
  return (pass_.q() % 2 == 0) ? cells_ : 0;
}
std::uint64_t CascadeTop::output_base() const noexcept {
  return (passes_ % 2 == 0) ? 0 : cells_;
}

void CascadeTop::eval_stage(std::size_t k) {
  Stage& st = stages_[k];
  const std::uint64_t n = st.shifts->q();
  const std::uint64_t emit_i = st.emit_next->q();
  const std::size_t center = plan_.center_age();

  // -- tuple emission into this stage's kernel --
  bool emitting = false;
  if (emit_i < cells_ && n >= emit_i + center &&
      st.kernel->in().can_push()) {
    const std::size_t case_id = case_of_cell_[emit_i];
    const auto& sources = plan_.gather(case_id);
    // Staged in place; every elems[0..count) field is written below.
    TupleMsg& msg = st.kernel->in().push_slot();
    msg.index = emit_i;
    msg.count = static_cast<std::uint32_t>(sources.size());
    for (std::size_t j = 0; j < sources.size(); ++j) {
      const model::GatherSource& g = sources[j];
      switch (g.kind) {
        case model::SourceKind::Window:
          msg.elems[j] = grid::TupleElem{st.window->tap(g.window_age), true};
          break;
        case model::SourceKind::Constant:
          msg.elems[j] = grid::TupleElem{g.constant, true};
          break;
        case model::SourceKind::Skip:
          msg.elems[j] = grid::TupleElem{0, false};
          break;
        case model::SourceKind::Static:
          SMACHE_ASSERT_MSG(false, "cascade plans never contain static "
                                   "sources");
          break;
      }
    }
    st.emit_next->d(emit_i + 1);
    emitting = true;
  }

  // -- window shift from this stage's input channel --
  const std::uint64_t emit_eff = emitting ? emit_i + 1 : emit_i;
  const bool more_shifts = n < cells_ - 1 + center;
  const bool window_room = n < emit_eff + center;
  bool data_ok = true;
  if (n < cells_) {
    data_ok = k == 0 ? dram_.read_data().can_pop() : st.input->can_pop();
  }
  if (more_shifts && window_room && data_ok) {
    word_t in = 0;
    if (n < cells_)
      in = k == 0 ? dram_.read_data().pop() : st.input->pop();
    st.window->shift(in);
    st.shifts->d(n + 1);
  }

  // -- drain this stage's kernel into the next stage / DRAM --
  const bool last = k + 1 == stages_.size();
  if (last) {
    if (st.kernel->out().can_pop() && dram_.write_req().can_push()) {
      const ResultMsg res = st.kernel->out().pop();
      dram_.write_req().push(
          mem::DramWriteReq{out_base() + res.index, res.value});
      wb_count_.d(wb_count_.q() + 1);
      if (wb_count_.q() + 1 == cells_) {
        top_.go(pass_.q() + 1 == passes_ ? Top::Done : Top::Gap);
      }
    }
  } else {
    sim::Fifo<word_t>& next_in = *stages_[k + 1].input;
    if (st.kernel->out().can_pop() && next_in.can_push()) {
      next_in.push(st.kernel->out().pop().value);
    }
  }
}

void CascadeTop::eval() {
  if (case_of_cell_.empty())
    case_of_cell_ =
        build_case_table(plan_.cases(), plan_.height(), plan_.width());
  switch (top_.state()) {
    case Top::Run: {
      if (!req_issued_.q() && dram_.read_req().can_push()) {
        dram_.read_req().push(
            mem::DramReadReq{in_base(), static_cast<std::uint32_t>(cells_)});
        req_issued_.d(true);
      }
      for (std::size_t k = 0; k < stages_.size(); ++k) eval_stage(k);
      break;
    }
    case Top::Gap:
      if (dram_.write_req().empty() && dram_.idle()) {
        pass_.d(pass_.q() + 1);
        req_issued_.d(false);
        wb_count_.d(0);
        for (auto& st : stages_) {
          st.shifts->d(0);
          st.emit_next->d(0);
        }
        top_.go(Top::Run);
      }
      break;
    case Top::Done:
      break;
  }
}

}  // namespace smache::rtl

#include "rtl/smache_top.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace smache::rtl {

std::vector<sim::RegGroup<SmacheTop::Ctrl>::FieldCharge>
SmacheTop::ctrl_charges(const std::string& path,
                        const model::BufferPlan& plan, std::size_t steps,
                        std::size_t cells, std::size_t fields) {
  // For F = 1 this list is byte-identical to the original charge set (the
  // warm_idx width is count_bits(width * 1)); F > 1 widens warm_idx to the
  // row's word count. The gather/write-back staging registers F > 1 also
  // needs live in their own state element (CellStage, constructed right
  // after ctrl_) so the F = 1 commit stays the original width.
  std::vector<sim::RegGroup<Ctrl>::FieldCharge> charges = {
      {path + "/ctrl/instance", smache::count_bits(steps)},
      {path + "/ctrl/shifts", smache::count_bits(cells + plan.window_len())},
      {path + "/ctrl/emit_next", smache::count_bits(cells)},
      {path + "/ctrl/rdata_center", smache::count_bits(cells) + 1},
      {path + "/ctrl/req_issued", 1},
      {path + "/ctrl/wb_count", smache::count_bits(cells)},
      {path + "/ctrl/warm_bank",
       smache::count_bits(plan.static_buffers().size() + 1)},
      {path + "/ctrl/warm_idx", smache::count_bits(plan.width() * fields)},
      {path + "/ctrl/warm_req", 1}};
  return charges;
}

SmacheTop::SmacheTop(sim::Simulator& sim, const std::string& path,
                     const model::BufferPlan& plan,
                     const KernelSpec& kernel_spec, mem::DramModel& dram,
                     std::size_t steps)
    : plan_(plan),
      dram_(dram),
      steps_(steps),
      cells_(plan.cells()),
      fields_(kernel_spec.fields()),
      words_(cells_ * kernel_spec.fields()),
      center_(plan.center_age()),
      sim_(sim),
      window_(sim, path, plan, kernel_spec.fields()),
      statics_(sim, path, plan, kernel_spec.fields()),
      // The kernel sits OUTSIDE the Smache module (Figure 1b), so its
      // resources are charged under their own hierarchy root.
      kernel_(sim, "kernel", kernel_spec, plan.shape().size(), cells_),
      top_(sim, path + "/ctrl/top_fsm",
           plan.needs_warmup() ? Top::Warmup : Top::Run, 4),
      ctrl_(sim, Ctrl{},
            ctrl_charges(path, plan, steps, cells_, kernel_spec.fields())),
      mreg_(&sim.metrics()),
      s_req_bp_(mreg_->slot(path, "/stall/request_backpressure",
                            obs::MetricKind::Counter)),
      s_dram_wait_(
          mreg_->slot(path, "/stall/dram_wait", obs::MetricKind::Counter)),
      s_kernel_bp_(mreg_->slot(path, "/stall/kernel_backpressure",
                               obs::MetricKind::Counter)),
      s_wb_bp_(mreg_->slot(path, "/stall/writeback_backpressure",
                           obs::MetricKind::Counter)),
      s_gather_staging_(mreg_->slot(path, "/gather_staging_cycles",
                                    obs::MetricKind::Counter)),
      s_wb_drain_(mreg_->slot(path, "/writeback_drain_cycles",
                              obs::MetricKind::Counter)) {
  SMACHE_REQUIRE(steps >= 1);
  set_obs_name(path);
  SMACHE_REQUIRE_MSG(dram.size_words() >= 2 * words_,
                     "DRAM must hold two grid regions (ping-pong)");
  if (fields_ > 1) {
    const auto stage_bits =
        static_cast<std::uint32_t>((fields_ - 1) * kWordBits);
    stage_ = std::make_unique<sim::RegGroup<CellStage>>(
        sim, CellStage{},
        std::vector<sim::RegGroup<CellStage>::FieldCharge>{
            {path + "/ctrl/in_fill", smache::count_bits(fields_)},
            {path + "/ctrl/in_cell", stage_bits},
            {path + "/ctrl/wb_field", smache::count_bits(fields_)},
            {path + "/ctrl/wb_index", smache::count_bits(cells_)},
            {path + "/ctrl/wb_vals", stage_bits}});
  }
  for (std::size_t b = 0; b < plan_.static_buffers().size(); ++b)
    warm_order_.push_back(b);
  // Activity gating: these channel commits are the only external events
  // that can unblock a starved Run/Warmup state (data arriving, space
  // freeing), so a quiescent controller sleeps on them.
  dram_.read_req().set_producer(this);
  dram_.read_data().set_consumer(this);
  dram_.write_req().set_producer(this);
  kernel_.in().set_producer(this);
  kernel_.out().set_consumer(this);
  sim.add_module(this);
}

void SmacheTop::build_cell_tables() {
  case_of_cell_ = build_case_table(plan_.cases(), plan_.height(),
                                   plan_.width(), plan_.depth());
  row_of_cell_.reserve(cells_);
  col_of_cell_.reserve(cells_);
  // row_of_cell_ holds GLOBAL rows (s * height + r): static banks, the
  // capture path and the DRAM layout all speak the slice-major stream.
  for (std::size_t s = 0; s < plan_.depth(); ++s) {
    for (std::size_t r = 0; r < plan_.height(); ++r) {
      for (std::size_t c = 0; c < plan_.width(); ++c) {
        row_of_cell_.push_back(
            static_cast<std::uint32_t>(s * plan_.height() + r));
        col_of_cell_.push_back(static_cast<std::uint32_t>(c));
      }
    }
  }
  // Pre-resolve every case's gather sources: window ages to register
  // slots, static indices to bank pointers. The per-cycle emit loop then
  // touches no plan/map structures at all, and interior cases skip the
  // static pre-issue loop outright.
  case_plans_ = build_case_plans(plan_, window_, &statics_);
  capture_row_.assign(plan_.global_rows(), 0);
  for (std::size_t b = 0; b < plan_.static_buffers().size(); ++b) {
    const auto& spec = plan_.static_buffers()[b];
    if (spec.write_through) capture_row_[spec.grid_row] = 1;
  }
}

bool SmacheTop::done() const noexcept { return top_.is(Top::Done); }

std::uint64_t SmacheTop::in_base() const noexcept {
  return (ctrl_.q().instance % 2 == 0) ? 0 : words_;
}

std::uint64_t SmacheTop::out_base() const noexcept {
  return (ctrl_.q().instance % 2 == 0) ? words_ : 0;
}

std::uint64_t SmacheTop::output_base() const noexcept {
  return (steps_ % 2 == 0) ? 0 : words_;
}

void SmacheTop::eval() {
  if (case_of_cell_.empty()) build_cell_tables();
  if (sim_.tracer().enabled()) {
    sim_.tracer().sample(sim_.now(), "smache.top_state",
                         static_cast<std::uint64_t>(top_.state()));
    sim_.tracer().sample(sim_.now(), "smache.shifts", ctrl_.q().shifts);
    sim_.tracer().sample(sim_.now(), "smache.emit_next",
                         ctrl_.q().emit_next);
    sim_.tracer().sample(sim_.now(), "smache.wb_count", ctrl_.q().wb_count);
  }
  switch (top_.state()) {
    case Top::Warmup: eval_warmup(); break;
    case Top::Run: eval_run(); break;
    case Top::Swap: eval_swap(); break;
    case Top::Done:
      // Terminal: nothing can ever change again.
      sleep();
      break;
  }
}

// ---------------------------------------------------------------------------
// FSM-1: warm-up prefetch of static buffers.
// ---------------------------------------------------------------------------
void SmacheTop::eval_warmup() {
  const Ctrl& c = ctrl_.q();
  if (c.warm_bank >= warm_order_.size()) {
    warmup_end_ = sim_.now();
    top_.go(Top::Run);
    return;
  }
  StaticBufferBank& bank = statics_.bank(warm_order_[c.warm_bank]);
  // One row = width cells = width * F DRAM words; active_write is
  // word-indexed, so the burst streams straight into the field banks.
  const std::size_t w = plan_.width() * fields_;
  if (!c.warm_req) {
    if (dram_.read_req().can_push()) {
      dram_.read_req().push(mem::DramReadReq{
          in_base() + bank.spec().grid_row * w,
          static_cast<std::uint32_t>(w)});
      ctrl_.d().warm_req = true;
    } else {
      mreg_->count(s_req_bp_);
      sleep();  // wake: read_req pop commit frees a request slot
    }
    return;
  }
  if (dram_.read_data().can_pop()) {
    const word_t v = dram_.read_data().pop();
    bank.active_write(c.warm_idx, v);
    if (c.warm_idx + 1 == w) {
      ctrl_.d().warm_idx = 0;
      ctrl_.d().warm_req = false;
      ctrl_.d().warm_bank = c.warm_bank + 1;
    } else {
      ctrl_.d().warm_idx = c.warm_idx + 1;
    }
  } else {
    mreg_->count(s_dram_wait_);
    sleep();  // wake: read_data push commit delivers the next burst word
  }
}

// ---------------------------------------------------------------------------
// FSM-2 (gather) + FSM-3 (write-back), concurrent within Run.
// ---------------------------------------------------------------------------
void SmacheTop::issue_static_reads(std::uint64_t cell) {
  const CasePlan& cp = case_plans_[case_of_cell_[cell]];
  if (cp.statics.empty()) return;  // interior case: nothing to pre-issue
  const std::size_t w = plan_.width();
  const std::size_t c = col_of_cell_[cell];
  for (const StaticIssue& s : cp.statics) {
    const auto idx = static_cast<std::int64_t>(c) + s.col_shift;
    SMACHE_ASSERT(idx >= 0 && idx < static_cast<std::int64_t>(w));
    s.bank->read(s.replica, static_cast<std::size_t>(idx));
  }
}

void SmacheTop::emit_tuple(std::uint64_t cell) {
  const CasePlan& cp = case_plans_[case_of_cell_[cell]];

  // Assemble the (wide) tuple directly in the channel's staging slot; the
  // consumer reads exactly elems[0..count), which this loop fully writes.
  // Tap-major layout: tap j's F fields land at elems[j*F .. j*F+F).
  // Window slots are word bases (slot_of_age scales by F); static reads
  // were issued cell-wide, so every field bank's rdata is live; constants
  // and skips replicate across the cell's fields.
  const std::size_t F = fields_;
  TupleMsg& msg = kernel_.in().push_slot();
  msg.index = cell;
  msg.count = static_cast<std::uint32_t>(cp.ops.size() * F);
  if (F == 1) {
    // Single-word cells: per-cell hot loop, kept free of the field loops.
    for (std::size_t j = 0; j < cp.ops.size(); ++j) {
      const EmitOp& op = cp.ops[j];
      switch (op.kind) {
        case EmitOp::Kind::Window:
          msg.elems[j] = grid::TupleElem{window_.tap_slot(op.slot), true};
          break;
        case EmitOp::Kind::Static:
          msg.elems[j] = grid::TupleElem{op.bank->rdata(op.replica), true};
          break;
        case EmitOp::Kind::Constant:
          msg.elems[j] = grid::TupleElem{op.constant, true};
          break;
        case EmitOp::Kind::Skip:
          msg.elems[j] = grid::TupleElem{0, false};
          break;
      }
    }
    return;
  }
  for (std::size_t j = 0; j < cp.ops.size(); ++j) {
    const EmitOp& op = cp.ops[j];
    grid::TupleElem* e = msg.elems.data() + j * F;
    switch (op.kind) {
      case EmitOp::Kind::Window:
        for (std::size_t f = 0; f < F; ++f)
          e[f] = grid::TupleElem{window_.tap_slot(op.slot + f), true};
        break;
      case EmitOp::Kind::Static:
        for (std::size_t f = 0; f < F; ++f)
          e[f] = grid::TupleElem{op.bank->rdata(op.replica, f), true};
        break;
      case EmitOp::Kind::Constant:
        for (std::size_t f = 0; f < F; ++f)
          e[f] = grid::TupleElem{op.constant, true};
        break;
      case EmitOp::Kind::Skip:
        for (std::size_t f = 0; f < F; ++f)
          e[f] = grid::TupleElem{0, false};
        break;
    }
  }
}

void SmacheTop::eval_run() {
  const Ctrl& c = ctrl_.q();
  const std::uint64_t n = c.shifts;
  const std::uint64_t emit_i = c.emit_next;
  const std::size_t center = center_;
  bool did_work = false;

  // -- FSM-2a: whole-grid burst request, once per instance --
  if (!c.req_issued) {
    if (dram_.read_req().can_push()) {
      dram_.read_req().push(
          mem::DramReadReq{in_base(), static_cast<std::uint32_t>(words_)});
      ctrl_.d().req_issued = true;
      did_work = true;
    } else {
      mreg_->count(s_req_bp_);
    }
  }

  // -- FSM-2b: tuple emission --
  bool emitting = false;
  if (emit_i < cells_ && n >= emit_i + center &&
      c.rdata_center == static_cast<std::int64_t>(emit_i)) {
    if (kernel_.in().can_push()) {
      emit_tuple(emit_i);
      ctrl_.d().emit_next = emit_i + 1;
      emitting = true;
      did_work = true;
    } else {
      mreg_->count(s_kernel_bp_);
    }
  }

  // -- FSM-2c: pre-issue static reads for the next centre. Re-issues for
  // a centre the token already points at are skipped: BRAM read data holds
  // between issues and the statics' active copies are not written during
  // Run, so re-latching would republish identical values --
  const std::uint64_t next_center = emitting ? emit_i + 1 : emit_i;
  if (next_center < cells_ &&
      c.rdata_center != static_cast<std::int64_t>(next_center)) {
    issue_static_reads(next_center);
    ctrl_.d().rdata_center = static_cast<std::int64_t>(next_center);
    did_work = true;
  }

  // -- FSM-2d: window shift. A shift moves one whole CELL into the
  // window; for F > 1 the cell's words arrive from DRAM one per cycle and
  // stage in ctrl.in_cell until the F-th word completes the cell (the
  // shift fires on that word's arrival cycle). F = 1 degenerates to the
  // original pop-and-shift-same-cycle datapath, bit- and cycle-exact. --
  const std::uint64_t emit_eff = emitting ? emit_i + 1 : emit_i;
  const bool more_shifts = n < cells_ - 1 + center;
  const bool window_room = n < emit_eff + center;
  if (more_shifts && window_room) {
    if (fields_ == 1) {
      // Single-word cells: the original pop-and-shift-same-cycle datapath.
      const bool data_ok = n < cells_ ? dram_.read_data().can_pop() : true;
      if (data_ok) {
        const word_t in = n < cells_ ? dram_.read_data().pop() : word_t{0};
        window_.shift_cell(&in);
        ctrl_.d().shifts = n + 1;
        did_work = true;
      } else {
        mreg_->count(s_dram_wait_);
      }
    } else if (n < cells_) {
      if (dram_.read_data().can_pop()) {
        const word_t v = dram_.read_data().pop();
        const CellStage& st = stage_->q();
        const std::uint32_t fill = st.in_fill;
        if (fill + 1 == fields_) {
          word_t cell[kMaxFields];
          for (std::uint32_t f = 0; f < fill; ++f) cell[f] = st.in_cell[f];
          cell[fill] = v;
          window_.shift_cell(cell);
          ctrl_.d().shifts = n + 1;
          stage_->d().in_fill = 0;
        } else {
          stage_->d().in_cell[fill] = v;
          stage_->d().in_fill = fill + 1;
          mreg_->count(s_gather_staging_);
        }
        did_work = true;
      } else {
        mreg_->count(s_dram_wait_);
      }
    } else {
      // Post-data flush: push zero cells until the window drains.
      const word_t zero_cell[kMaxFields] = {};
      window_.shift_cell(zero_cell);
      ctrl_.d().shifts = n + 1;
      did_work = true;
    }
  }

  // -- FSM-3: write-back + shadow capture. The kernel retires one result
  // CELL per pop; DRAM takes one word per cycle, so F > 1 stages the cell
  // in ctrl.wb_* and drains fields 1..F-1 on the following cycles (the
  // capture path stores the whole cell on the pop cycle — on-chip banks
  // are word-parallel). wb_count counts completed cells. --
  if (fields_ == 1) {
    if (kernel_.out().can_pop()) {
      if (dram_.write_req().can_push()) {
        const ResultMsg res = kernel_.out().pop();
        dram_.write_req().push(
            mem::DramWriteReq{out_base() + res.index, res.values[0]});
        const std::uint32_t row = row_of_cell_[res.index];
        if (capture_row_[row])
          statics_.capture_output(row, col_of_cell_[res.index],
                                  res.values[0]);
        ctrl_.d().wb_count = c.wb_count + 1;
        did_work = true;
        if (c.wb_count + 1 == cells_) {
          top_.go(c.instance + 1 == steps_ ? Top::Done : Top::Swap);
        }
      } else {
        mreg_->count(s_wb_bp_);
      }
    }
  } else if (stage_->q().wb_field > 0) {
    if (dram_.write_req().can_push()) {
      const CellStage& st = stage_->q();
      dram_.write_req().push(mem::DramWriteReq{
          out_base() + st.wb_index * fields_ + st.wb_field,
          st.wb_vals[st.wb_field]});
      mreg_->count(s_wb_drain_);
      did_work = true;
      if (st.wb_field + 1 == fields_) {
        stage_->d().wb_field = 0;
        ctrl_.d().wb_count = c.wb_count + 1;
        if (c.wb_count + 1 == cells_) {
          top_.go(c.instance + 1 == steps_ ? Top::Done : Top::Swap);
        }
      } else {
        stage_->d().wb_field = st.wb_field + 1;
      }
    } else {
      mreg_->count(s_wb_bp_);
    }
  } else if (kernel_.out().can_pop()) {
    if (dram_.write_req().can_push()) {
      const ResultMsg res = kernel_.out().pop();
      dram_.write_req().push(mem::DramWriteReq{
          out_base() + res.index * fields_, res.values[0]});
      const std::uint32_t row = row_of_cell_[res.index];
      if (capture_row_[row])
        statics_.capture_output_cell(row, col_of_cell_[res.index],
                                     res.values.data());
      stage_->d().wb_index = res.index;
      stage_->d().wb_vals = res.values;
      stage_->d().wb_field = 1;
      did_work = true;
    } else {
      mreg_->count(s_wb_bp_);
    }
  }

  // Starved: every blocker above is an external channel condition (data
  // not yet delivered, space not yet freed), and each is subscribed to in
  // the constructor, so the controller can sleep until one commits.
  if (!did_work) sleep();
}

// ---------------------------------------------------------------------------
// Instance boundary: drain writes, swap buffers and regions.
// ---------------------------------------------------------------------------
void SmacheTop::eval_swap() {
  // Memory fence: the next instance reads the region we just wrote.
  if (!dram_.write_req().empty() || !dram_.idle()) {
    // Exact re-check scheduling: min_cycles_to_idle is a sound lower bound
    // on the first cycle the fence can pass (same argument as
    // run_until_done), so sleeping until then never overshoots. Write
    // drains additionally wake us early through the write_req producer
    // subscription; the re-check simply goes back to sleep.
    sleep_for(dram_.min_cycles_to_idle());
    return;
  }
  const Ctrl& c = ctrl_.q();
  statics_.swap_all();
  Ctrl& d = ctrl_.d();
  d.instance = c.instance + 1;
  d.shifts = 0;
  d.emit_next = 0;
  d.rdata_center = -1;
  d.req_issued = false;
  d.wb_count = 0;
  if (stage_) {
    stage_->d().in_fill = 0;
    stage_->d().wb_field = 0;
  }
  top_.go(Top::Run);
}

}  // namespace smache::rtl

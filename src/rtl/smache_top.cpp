#include "rtl/smache_top.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace smache::rtl {

SmacheTop::SmacheTop(sim::Simulator& sim, const std::string& path,
                     const model::BufferPlan& plan,
                     const KernelSpec& kernel_spec, mem::DramModel& dram,
                     std::size_t steps)
    : plan_(plan),
      dram_(dram),
      steps_(steps),
      cells_(plan.height() * plan.width()),
      sim_(sim),
      window_(sim, path, plan),
      statics_(sim, path, plan),
      // The kernel sits OUTSIDE the Smache module (Figure 1b), so its
      // resources are charged under their own hierarchy root.
      kernel_(sim, "kernel", kernel_spec, plan.shape().size(), cells_),
      top_(sim, path + "/ctrl/top_fsm",
           plan.needs_warmup() ? Top::Warmup : Top::Run, 4),
      instance_(sim, path + "/ctrl/instance", 0u,
                smache::count_bits(steps)),
      shifts_(sim, path + "/ctrl/shifts", 0,
              smache::count_bits(cells_ + plan.window_len())),
      emit_next_(sim, path + "/ctrl/emit_next", 0,
                 smache::count_bits(cells_)),
      rdata_center_(sim, path + "/ctrl/rdata_center", -1,
                    smache::count_bits(cells_) + 1),
      req_issued_(sim, path + "/ctrl/req_issued", false, 1),
      wb_count_(sim, path + "/ctrl/wb_count", 0,
                smache::count_bits(cells_)),
      warm_bank_(sim, path + "/ctrl/warm_bank", 0u,
                 smache::count_bits(plan.static_buffers().size() + 1)),
      warm_idx_(sim, path + "/ctrl/warm_idx", 0u,
                smache::count_bits(plan.width())),
      warm_req_(sim, path + "/ctrl/warm_req", false, 1) {
  SMACHE_REQUIRE(steps >= 1);
  SMACHE_REQUIRE_MSG(dram.size_words() >= 2 * cells_,
                     "DRAM must hold two grid regions (ping-pong)");
  for (std::size_t b = 0; b < plan_.static_buffers().size(); ++b)
    warm_order_.push_back(b);
  sim.add_module(this);
}

void SmacheTop::build_cell_tables() {
  case_of_cell_ =
      build_case_table(plan_.cases(), plan_.height(), plan_.width());
  row_of_cell_.reserve(cells_);
  col_of_cell_.reserve(cells_);
  for (std::size_t r = 0; r < plan_.height(); ++r) {
    for (std::size_t c = 0; c < plan_.width(); ++c) {
      row_of_cell_.push_back(static_cast<std::uint32_t>(r));
      col_of_cell_.push_back(static_cast<std::uint32_t>(c));
    }
  }
}

bool SmacheTop::done() const noexcept { return top_.is(Top::Done); }

std::uint64_t SmacheTop::in_base() const noexcept {
  return (instance_.q() % 2 == 0) ? 0 : cells_;
}

std::uint64_t SmacheTop::out_base() const noexcept {
  return (instance_.q() % 2 == 0) ? cells_ : 0;
}

std::uint64_t SmacheTop::output_base() const noexcept {
  return (steps_ % 2 == 0) ? 0 : cells_;
}

void SmacheTop::eval() {
  if (case_of_cell_.empty()) build_cell_tables();
  sim_.tracer().sample(sim_.now(), "smache.top_state",
                       static_cast<std::uint64_t>(top_.state()));
  sim_.tracer().sample(sim_.now(), "smache.shifts", shifts_.q());
  sim_.tracer().sample(sim_.now(), "smache.emit_next", emit_next_.q());
  sim_.tracer().sample(sim_.now(), "smache.wb_count", wb_count_.q());
  switch (top_.state()) {
    case Top::Warmup: eval_warmup(); break;
    case Top::Run: eval_run(); break;
    case Top::Swap: eval_swap(); break;
    case Top::Done: break;
  }
}

// ---------------------------------------------------------------------------
// FSM-1: warm-up prefetch of static buffers.
// ---------------------------------------------------------------------------
void SmacheTop::eval_warmup() {
  if (warm_bank_.q() >= warm_order_.size()) {
    warmup_end_ = sim_.now();
    top_.go(Top::Run);
    return;
  }
  StaticBufferBank& bank = statics_.bank(warm_order_[warm_bank_.q()]);
  const std::size_t w = plan_.width();
  if (!warm_req_.q()) {
    if (dram_.read_req().can_push()) {
      dram_.read_req().push(mem::DramReadReq{
          in_base() + bank.spec().grid_row * w,
          static_cast<std::uint32_t>(w)});
      warm_req_.d(true);
    }
    return;
  }
  if (dram_.read_data().can_pop()) {
    const word_t v = dram_.read_data().pop();
    bank.active_write(warm_idx_.q(), v);
    if (warm_idx_.q() + 1 == w) {
      warm_idx_.d(0);
      warm_req_.d(false);
      warm_bank_.d(warm_bank_.q() + 1);
    } else {
      warm_idx_.d(warm_idx_.q() + 1);
    }
  }
}

// ---------------------------------------------------------------------------
// FSM-2 (gather) + FSM-3 (write-back), concurrent within Run.
// ---------------------------------------------------------------------------
void SmacheTop::issue_static_reads(std::uint64_t cell) {
  const std::size_t w = plan_.width();
  const std::size_t c = col_of_cell_[cell];
  const std::size_t case_id = case_of_cell_[cell];
  for (const auto& g : plan_.gather(case_id)) {
    if (g.kind != model::SourceKind::Static) continue;
    const auto idx = static_cast<std::int64_t>(c) + g.col_shift;
    SMACHE_ASSERT(idx >= 0 && idx < static_cast<std::int64_t>(w));
    statics_.bank(g.static_index)
        .read(g.replica, static_cast<std::size_t>(idx));
  }
}

void SmacheTop::emit_tuple(std::uint64_t cell) {
  const std::size_t case_id = case_of_cell_[cell];
  const auto& sources = plan_.gather(case_id);

  // Assemble the (wide) tuple directly in the channel's staging slot; the
  // consumer reads exactly elems[0..count), which this loop fully writes.
  TupleMsg& msg = kernel_.in().push_slot();
  msg.index = cell;
  msg.count = static_cast<std::uint32_t>(sources.size());
  for (std::size_t j = 0; j < sources.size(); ++j) {
    const model::GatherSource& g = sources[j];
    switch (g.kind) {
      case model::SourceKind::Window:
        msg.elems[j] = grid::TupleElem{window_.tap(g.window_age), true};
        break;
      case model::SourceKind::Static:
        msg.elems[j] = grid::TupleElem{
            statics_.bank(g.static_index).rdata(g.replica), true};
        break;
      case model::SourceKind::Constant:
        msg.elems[j] = grid::TupleElem{g.constant, true};
        break;
      case model::SourceKind::Skip:
        msg.elems[j] = grid::TupleElem{0, false};
        break;
    }
  }
}

void SmacheTop::eval_run() {
  const std::uint64_t n = shifts_.q();
  const std::uint64_t emit_i = emit_next_.q();
  const std::size_t center = plan_.center_age();

  // -- FSM-2a: whole-grid burst request, once per instance --
  if (!req_issued_.q() && dram_.read_req().can_push()) {
    dram_.read_req().push(
        mem::DramReadReq{in_base(), static_cast<std::uint32_t>(cells_)});
    req_issued_.d(true);
  }

  // -- FSM-2b: tuple emission --
  bool emitting = false;
  if (emit_i < cells_ && n >= emit_i + center &&
      rdata_center_.q() == static_cast<std::int64_t>(emit_i) &&
      kernel_.in().can_push()) {
    emit_tuple(emit_i);
    emit_next_.d(emit_i + 1);
    emitting = true;
  }

  // -- FSM-2c: pre-issue static reads for the next centre --
  const std::uint64_t next_center = emitting ? emit_i + 1 : emit_i;
  if (next_center < cells_) {
    issue_static_reads(next_center);
    rdata_center_.d(static_cast<std::int64_t>(next_center));
  }

  // -- FSM-2d: window shift --
  const std::uint64_t emit_eff = emitting ? emit_i + 1 : emit_i;
  const bool more_shifts = n < cells_ - 1 + center;
  const bool window_room = n < emit_eff + center;
  const bool data_ok = n < cells_ ? dram_.read_data().can_pop() : true;
  if (more_shifts && window_room && data_ok) {
    const word_t in = n < cells_ ? dram_.read_data().pop() : word_t{0};
    window_.shift(in);
    shifts_.d(n + 1);
  }

  // -- FSM-3: write-back + shadow capture --
  if (kernel_.out().can_pop() && dram_.write_req().can_push()) {
    const ResultMsg res = kernel_.out().pop();
    dram_.write_req().push(
        mem::DramWriteReq{out_base() + res.index, res.value});
    statics_.capture_output(row_of_cell_[res.index], col_of_cell_[res.index],
                            res.value);
    wb_count_.d(wb_count_.q() + 1);
    if (wb_count_.q() + 1 == cells_) {
      top_.go(instance_.q() + 1 == steps_ ? Top::Done : Top::Swap);
    }
  }
}

// ---------------------------------------------------------------------------
// Instance boundary: drain writes, swap buffers and regions.
// ---------------------------------------------------------------------------
void SmacheTop::eval_swap() {
  // Memory fence: the next instance reads the region we just wrote.
  if (!dram_.write_req().empty() || !dram_.idle()) return;
  statics_.swap_all();
  instance_.d(instance_.q() + 1);
  shifts_.d(0);
  emit_next_.d(0);
  rdata_center_.d(-1);
  req_issued_.d(false);
  wb_count_.d(0);
  top_.go(Top::Run);
}

}  // namespace smache::rtl

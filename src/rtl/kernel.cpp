#include "rtl/kernel.hpp"

#include "common/assert.hpp"

namespace smache::rtl {

std::string KernelSpec::name() const {
  std::string base;
  switch (kind) {
    case KernelKind::Average: base = "average"; break;
    case KernelKind::Sum: base = "sum"; break;
    case KernelKind::Max: base = "max"; break;
    case KernelKind::Identity: base = "identity"; break;
    case KernelKind::Diffusion: base = "diffusion"; break;
    case KernelKind::Upwind: base = "upwind"; break;
    case KernelKind::Gaussian3x3: base = "gaussian3x3"; break;
    case KernelKind::Laplacian3x3: base = "laplacian3x3"; break;
    case KernelKind::Jacobi: base = "jacobi"; break;
    case KernelKind::Hotspot: base = "hotspot"; break;
    case KernelKind::FdtdWave: base = "fdtd-wave"; break;
  }
  return base + (value_type == ValueType::Int32 ? "/i32" : "/f32");
}

namespace {

template <typename T>
word_t apply_typed(const KernelSpec& spec, TupleView tuple) {
  switch (spec.kind) {
    case KernelKind::Average: {
      // Sum in a wide/exact accumulator, then divide by the valid count.
      // Integer division truncates toward zero, matching what a hardware
      // divider-by-small-constant would produce.
      double facc = 0.0;
      std::int64_t iacc = 0;
      std::uint32_t n = 0;
      for (const auto& e : tuple) {
        if (!e.valid) continue;
        ++n;
        if constexpr (std::is_same_v<T, float>) facc += from_word<float>(e.value);
        else iacc += from_word<std::int32_t>(e.value);
      }
      if (n == 0) return 0;
      if constexpr (std::is_same_v<T, float>) {
        return to_word(static_cast<float>(facc / n));
      } else {
        // The divisor is the valid-element count: a handful of values for
        // any realistic stencil. Dispatching the common ones lets the
        // compiler emit multiply-shift sequences instead of a hardware
        // divide — this runs once per emitted cell, squarely in the
        // simulation hot loop. Results are exactly the truncating
        // division either way.
        std::int64_t q;
        switch (n) {
          case 1: q = iacc; break;
          case 2: q = iacc / 2; break;
          case 3: q = iacc / 3; break;
          case 4: q = iacc / 4; break;
          case 5: q = iacc / 5; break;
          case 6: q = iacc / 6; break;
          case 7: q = iacc / 7; break;
          case 8: q = iacc / 8; break;
          case 9: q = iacc / 9; break;
          default: q = iacc / static_cast<std::int64_t>(n); break;
        }
        return to_word(static_cast<std::int32_t>(q));
      }
    }
    case KernelKind::Sum: {
      if constexpr (std::is_same_v<T, float>) {
        float acc = 0.0f;
        for (const auto& e : tuple)
          if (e.valid) acc += from_word<float>(e.value);
        return to_word(acc);
      } else {
        // Wrapping 32-bit sum, like a hardware adder.
        std::uint32_t acc = 0;
        for (const auto& e : tuple)
          if (e.valid) acc += e.value;
        return acc;
      }
    }
    case KernelKind::Max: {
      bool any = false;
      T best{};
      for (const auto& e : tuple) {
        if (!e.valid) continue;
        const T v = from_word<T>(e.value);
        if (!any || v > best) {
          best = v;
          any = true;
        }
      }
      return any ? to_word(best) : 0;
    }
    case KernelKind::Identity:
      return tuple.empty() || !tuple[0].valid ? 0 : tuple[0].value;
    case KernelKind::Diffusion: {
      SMACHE_REQUIRE_MSG(!tuple.empty(), "diffusion needs a centre element");
      const float centre =
          tuple[0].valid ? from_word<float>(tuple[0].value) : 0.0f;
      float nsum = 0.0f;
      float n = 0.0f;
      for (std::size_t i = 1; i < tuple.size(); ++i) {
        if (!tuple[i].valid) continue;
        nsum += from_word<float>(tuple[i].value);
        n += 1.0f;
      }
      return to_word(centre + spec.alpha * (nsum - n * centre));
    }
    case KernelKind::Upwind: {
      SMACHE_REQUIRE_MSG(tuple.size() >= 3,
                         "upwind needs {centre, west, north}");
      const float c = tuple[0].valid ? from_word<float>(tuple[0].value) : 0.0f;
      const float w = tuple[1].valid ? from_word<float>(tuple[1].value) : c;
      const float nv = tuple[2].valid ? from_word<float>(tuple[2].value) : c;
      return to_word(c - spec.alpha * (c - w) - spec.beta * (c - nv));
    }
    case KernelKind::Gaussian3x3:
    case KernelKind::Laplacian3x3: {
      // Moore-ordered tuple (row-major, centre at index 4). Missing
      // elements (open boundaries) reuse the centre value.
      SMACHE_REQUIRE_MSG(tuple.size() == 9,
                         "3x3 convolution kernels need a Moore tuple");
      static constexpr std::int64_t kGauss[9] = {1, 2, 1, 2, 4, 2, 1, 2, 1};
      static constexpr std::int64_t kLap[9] = {-1, -1, -1, -1, 8,
                                               -1, -1, -1, -1};
      const std::int64_t centre =
          tuple[4].valid ? from_word<std::int32_t>(tuple[4].value) : 0;
      std::int64_t acc = 0;
      const std::int64_t* weights =
          spec.kind == KernelKind::Gaussian3x3 ? kGauss : kLap;
      for (std::size_t i = 0; i < 9; ++i) {
        const std::int64_t v =
            tuple[i].valid ? from_word<std::int32_t>(tuple[i].value)
                           : centre;
        acc += weights[i] * v;
      }
      if (spec.kind == KernelKind::Gaussian3x3) acc >>= 4;
      return to_word(static_cast<std::int32_t>(acc));
    }
    case KernelKind::Jacobi: {
      SMACHE_REQUIRE_MSG(!tuple.empty(), "jacobi needs a centre element");
      const float centre =
          tuple[0].valid ? from_word<float>(tuple[0].value) : 0.0f;
      float acc = 0.0f;
      float n = 0.0f;
      for (std::size_t i = 1; i < tuple.size(); ++i) {
        if (!tuple[i].valid) continue;
        acc += from_word<float>(tuple[i].value);
        n += 1.0f;
      }
      return to_word(n == 0.0f ? centre : acc / n);
    }
    case KernelKind::Hotspot:
    case KernelKind::FdtdWave:
      SMACHE_REQUIRE_MSG(false,
                         "multi-field kernel applied through the "
                         "single-word path; use apply_kernel_cells");
  }
  return 0;
}

/// Hotspot thermal step over tap-major {temperature, power} tuples.
void apply_hotspot(const KernelSpec& spec, TupleView tuple, word_t* out) {
  SMACHE_REQUIRE_MSG(tuple.size() >= 2 && tuple.size() % 2 == 0,
                     "hotspot needs taps x 2 tuple elements");
  const std::size_t taps = tuple.size() / 2;
  const float t0 = tuple[0].valid ? from_word<float>(tuple[0].value) : 0.0f;
  const float p0 = tuple[1].valid ? from_word<float>(tuple[1].value) : 0.0f;
  float acc = 0.0f;
  for (std::size_t t = 1; t < taps; ++t) {
    const grid::TupleElem& e = tuple[t * 2];
    if (!e.valid) continue;
    acc += from_word<float>(e.value) - t0;
  }
  out[0] = to_word(t0 + spec.alpha * acc + spec.beta * p0);
  out[1] = to_word(p0);
}

/// Scalar-wave FDTD step over tap-major {u, u_prev, c2} tuples.
void apply_fdtd_wave(const KernelSpec& spec, TupleView tuple, word_t* out) {
  SMACHE_REQUIRE_MSG(tuple.size() >= 3 && tuple.size() % 3 == 0,
                     "fdtd-wave needs taps x 3 tuple elements");
  const std::size_t taps = tuple.size() / 3;
  const float u = tuple[0].valid ? from_word<float>(tuple[0].value) : 0.0f;
  const float u_prev =
      tuple[1].valid ? from_word<float>(tuple[1].value) : 0.0f;
  const float c2 = tuple[2].valid ? from_word<float>(tuple[2].value) : 0.0f;
  float lap = 0.0f;
  for (std::size_t t = 1; t < taps; ++t) {
    const grid::TupleElem& e = tuple[t * 3];
    if (!e.valid) continue;
    lap += from_word<float>(e.value) - u;
  }
  out[0] = to_word(2.0f * u - u_prev + spec.alpha * c2 * lap);
  out[1] = to_word(u);
  out[2] = to_word(c2);
}

}  // namespace

word_t apply_kernel(const KernelSpec& spec, TupleView tuple) {
  return spec.value_type == ValueType::Float32
             ? apply_typed<float>(spec, tuple)
             : apply_typed<std::int32_t>(spec, tuple);
}

void apply_kernel_cells(const KernelSpec& spec, TupleView tuple,
                        std::size_t fields, word_t* out) {
  SMACHE_REQUIRE_MSG(fields == spec.fields(),
                     "cell field count does not match the kernel's layout");
  if (fields == 1) {
    out[0] = apply_kernel(spec, tuple);
    return;
  }
  switch (spec.kind) {
    case KernelKind::Hotspot:
      apply_hotspot(spec, tuple, out);
      return;
    case KernelKind::FdtdWave:
      apply_fdtd_wave(spec, tuple, out);
      return;
    default:
      SMACHE_REQUIRE_MSG(false, "kernel kind has no multi-field layout");
  }
}

}  // namespace smache::rtl

// SmacheTop — the complete smart-cache module of Figure 1(b), connected to
// a DRAM model and a kernel pipeline, sequencing work-instances.
//
// Three concurrent FSMs (all evaluated every cycle, communicating only
// through registers and FIFOs, exactly like the paper's three concurrent
// Verilog state machines):
//
//   FSM-1 (prefetch): during the one-off WARM-UP pass it burst-reads the
//     grid rows held by write-through static buffers into their ACTIVE
//     copies (non-write-through buffers would be refetched every
//     instance). This is the "additional warm-up work-instance" of §III,
//     amortised over all later instances.
//
//   FSM-2 (gather): issues one whole-grid burst read per instance, shifts
//     the arriving words through the stream buffer, and emits one stencil
//     tuple per cycle to the kernel: window taps are combinational register
//     reads; static-buffer taps were issued one cycle earlier (synchronous
//     BRAM read) by the same FSM's pre-issue stage; constants and skips
//     come from the gather table. Back-pressure from the kernel freezes
//     shifting so tap alignment is never lost.
//
//   FSM-3 (write-back): drains kernel results to the DRAM write channel
//     and write-through-captures results landing in static-buffer rows
//     into the SHADOW copies, so the next instance's boundary data is
//     already on chip when the buffers swap.
//
// Work-instances ping-pong between two DRAM regions (in/out). The SWAP
// state waits for the write channel to drain (a memory fence) before
// flipping regions and double buffers.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/word.hpp"
#include "grid/zones.hpp"
#include "mem/dram.hpp"
#include "model/planner.hpp"
#include "rtl/kernel_pipeline.hpp"
#include "rtl/static_buffer.hpp"
#include "rtl/stream_buffer.hpp"
#include "rtl/top_support.hpp"
#include "sim/fsm.hpp"
#include "sim/reg.hpp"
#include "sim/simulator.hpp"

namespace smache::rtl {

class SmacheTop : public sim::Module {
 public:
  /// `steps` = number of work-instances. Region 0 of `dram` must hold the
  /// initial grid; after completion the result is in region (steps % 2).
  SmacheTop(sim::Simulator& sim, const std::string& path,
            const model::BufferPlan& plan, const KernelSpec& kernel_spec,
            mem::DramModel& dram, std::size_t steps);

  /// All instances complete (results may still be draining to DRAM; pair
  /// with DramModel::idle()).
  bool done() const noexcept;

  /// Lower bound on cycles until done() can become true, for
  /// Simulator::run_until_done (see outstanding_writeback_bound; FSM-3
  /// retires at most one write-back per cycle, and the warm-up pass only
  /// adds cycles on top of the bound).
  std::uint64_t min_cycles_to_done() const noexcept {
    if (top_.is(Top::Done)) return 0;
    return outstanding_writeback_bound(steps_, ctrl_.q().instance, cells_,
                                       ctrl_.q().wb_count);
  }

  /// Cycle at which the warm-up pass completed (for amortisation reports).
  std::uint64_t warmup_end_cycle() const noexcept { return warmup_end_; }

  /// DRAM word offset of the final output region.
  std::uint64_t output_base() const noexcept;

  const model::BufferPlan& plan() const noexcept { return plan_; }
  KernelPipeline& kernel() noexcept { return kernel_; }

  void eval() override;

 private:
  enum class Top : std::uint8_t { Warmup, Run, Swap, Done };

  /// All controller registers as one state element (single commit per
  /// cycle). Field paths/widths are charged to the ledger exactly like the
  /// discrete Regs they replace; hold semantics are identical (see
  /// sim::RegGroup). The multi-field staging fields (in_*, wb_*) are only
  /// exercised — and only charged — when the cell layout has F > 1.
  struct Ctrl {
    std::uint64_t shifts = 0;
    std::uint64_t emit_next = 0;
    std::int64_t rdata_center = -1;
    std::uint64_t wb_count = 0;
    std::uint32_t instance = 0;
    std::uint32_t warm_bank = 0;
    std::uint32_t warm_idx = 0;
    bool req_issued = false;
    bool warm_req = false;
  };

  /// F > 1 cell staging, a SEPARATE state element from Ctrl so the F = 1
  /// controller's per-cycle block-copy commit keeps its original width
  /// (this runs every cycle of every simulation — single-word cells must
  /// not pay for multi-word state they never hold).
  struct CellStage {
    // Gather staging: words of the partially-arrived input cell.
    std::uint32_t in_fill = 0;
    std::array<word_t, kMaxFields> in_cell{};
    // Write-back staging: the popped result cell drains to DRAM one word
    // per cycle (fields 1..F-1 after the pop cycle's field 0).
    std::uint32_t wb_field = 0;
    std::uint64_t wb_index = 0;
    std::array<word_t, kMaxFields> wb_vals{};
  };

  static std::vector<sim::RegGroup<Ctrl>::FieldCharge> ctrl_charges(
      const std::string& path, const model::BufferPlan& plan,
      std::size_t steps, std::size_t cells, std::size_t fields);

  std::uint64_t in_base() const noexcept;
  std::uint64_t out_base() const noexcept;
  void build_cell_tables();
  void eval_warmup();
  void eval_run();
  void eval_swap();
  void emit_tuple(std::uint64_t cell);
  void issue_static_reads(std::uint64_t cell);

  const model::BufferPlan plan_;
  mem::DramModel& dram_;
  std::size_t steps_;
  std::size_t cells_;   // grid height * width * depth
  std::size_t fields_;  // words per cell (kernel spec's layout)
  std::size_t words_;   // cells_ * fields_ (one DRAM region)
  std::size_t center_;  // plan_.center_age(), hoisted for the cycle loop
  sim::Simulator& sim_;

  StreamBuffer window_;
  StaticBufferSet statics_;
  KernelPipeline kernel_;

  // Controller state (all charged under <path>/ctrl).
  sim::FsmState<Top> top_;
  sim::RegGroup<Ctrl> ctrl_;
  // Cell staging registers, only instantiated for multi-word cells.
  std::unique_ptr<sim::RegGroup<CellStage>> stage_;

  std::uint64_t warmup_end_ = 0;
  // Warm-up bank order (indices into statics_, write-through first).
  std::vector<std::size_t> warm_order_;
  // cell -> case id / global row / column, precomputed (behavioural lookups,
  // nothing charged): the gather, pre-issue and write-through stages each
  // resolve them every cycle, and div/mod is the costliest scalar op in
  // the loop. Built lazily on the first eval — elaborate-only flows
  // (Table I's 1024x1024 rows) construct the top without ever stepping it
  // and must not pay O(cells).
  std::vector<std::uint32_t> case_of_cell_;
  std::vector<std::uint32_t> row_of_cell_;
  std::vector<std::uint32_t> col_of_cell_;
  // case id -> pre-resolved gather/pre-issue plan (see rtl::EmitOp).
  std::vector<CasePlan> case_plans_;
  // row -> 1 iff some write-through static buffer captures it (FSM-3 skips
  // the capture call for every other row).
  std::vector<std::uint8_t> capture_row_;

  // -- observability: stalled-eval / staging-cycle counters. With gating
  // on, a fully starved controller sleeps, so a counter ticks once per
  // stalled eval (one per cycle only while some other FSM keeps the
  // module awake); the stall DURATION shows up as scheduler asleep time.
  obs::MetricsRegistry* mreg_;
  obs::MetricsRegistry::Slot s_req_bp_;          // read_req channel full
  obs::MetricsRegistry::Slot s_dram_wait_;       // read_data not ready
  obs::MetricsRegistry::Slot s_kernel_bp_;       // kernel input full
  obs::MetricsRegistry::Slot s_wb_bp_;           // write_req channel full
  obs::MetricsRegistry::Slot s_gather_staging_;  // F>1 cell-fill cycles
  obs::MetricsRegistry::Slot s_wb_drain_;        // F>1 cell-drain cycles
};

}  // namespace smache::rtl

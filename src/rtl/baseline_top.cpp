#include "rtl/baseline_top.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace smache::rtl {

BaselineTop::BaselineTop(sim::Simulator& sim, const std::string& path,
                         std::size_t height, std::size_t width,
                         const grid::StencilShape& shape,
                         const grid::BoundarySpec& bc,
                         const KernelSpec& kernel_spec, mem::DramModel& dram,
                         std::size_t steps, std::size_t depth)
    : height_(height),
      width_(width),
      depth_(depth),
      cells_(height * width * depth),
      fields_(kernel_spec.fields()),
      words_(height * width * depth * kernel_spec.fields()),
      steps_(steps),
      shape_(shape),
      cases_(height, width, depth, shape),
      kernel_spec_(kernel_spec),
      dram_(dram),
      top_(sim, path + "/ctrl/top_fsm", Top::Run, 3),
      ctrl_(sim, Ctrl{},
            [&] {
              // col_elem counts tuple WORDS (taps * F); for F = 1 the list
              // is byte-identical to the original. F > 1 appends the
              // write-back staging a multi-word drain holds.
              const std::size_t f = kernel_spec.fields();
              std::vector<sim::RegGroup<Ctrl>::FieldCharge> charges = {
                  {path + "/ctrl/instance", smache::count_bits(steps)},
                  {path + "/ctrl/req_cell", smache::count_bits(cells_)},
                  {path + "/ctrl/req_elem", smache::count_bits(shape.size())},
                  {path + "/ctrl/col_cell", smache::count_bits(cells_)},
                  {path + "/ctrl/col_elem",
                   smache::count_bits(shape.size() * f)},
                  {path + "/ctrl/wb_count", smache::count_bits(cells_)}};
              if (f > 1) {
                charges.push_back(
                    {path + "/ctrl/wb_field", smache::count_bits(f)});
                charges.push_back(
                    {path + "/ctrl/wb_index", smache::count_bits(cells_)});
                charges.push_back(
                    {path + "/ctrl/wb_vals",
                     static_cast<std::uint32_t>((f - 1) * kWordBits)});
              }
              return charges;
            }()),
      tuple_regs_(sim, path + "/datapath/tuple_regs",
                  shape.size() * kernel_spec.fields(), 0, kWordBits),
      mreg_(&sim.metrics()),
      s_req_bp_(mreg_->slot(path, "/stall/request_backpressure",
                            obs::MetricKind::Counter)),
      s_dram_wait_(
          mreg_->slot(path, "/stall/dram_wait", obs::MetricKind::Counter)),
      s_wb_bp_(mreg_->slot(path, "/stall/writeback_backpressure",
                           obs::MetricKind::Counter)),
      s_wb_drain_(mreg_->slot(path, "/writeback_drain_cycles",
                              obs::MetricKind::Counter)) {
  SMACHE_REQUIRE(steps >= 1);
  set_obs_name(path);
  SMACHE_REQUIRE(dram.size_words() >= 2 * words_);
  scratch_.resize(shape.size() * fields_);
  // Activity gating: the requester stalls only on request-channel space,
  // the collector only on data arrival / write-channel space — all channel
  // commits we can subscribe to.
  dram.read_req().set_producer(this);
  dram.read_data().set_consumer(this);
  dram.write_req().set_producer(this);

  // Build the per-case source table (the baseline's address/mask logic).
  const std::size_t n_cases = cases_.case_count();
  sources_.assign(n_cases, std::vector<Source>(shape.size()));
  for (std::size_t zs = 0; zs < cases_.slices().count(); ++zs) {
  for (std::size_t zr = 0; zr < cases_.rows().count(); ++zr) {
    for (std::size_t zc = 0; zc < cases_.cols().count(); ++zc) {
      const std::size_t id = cases_.case_id(zs, zr, zc);
      const std::size_t s_rep = cases_.slices().representative(zs);
      const std::size_t r_rep = cases_.rows().representative(zr);
      const std::size_t c_rep = cases_.cols().representative(zc);
      for (std::size_t j = 0; j < shape.size(); ++j) {
        const grid::Offset2 o = shape.offsets()[j];
        const grid::Resolved res =
            grid::resolve(s_rep, r_rep, c_rep, o.ds, o.dr, o.dc, depth,
                          height, width, bc);
        Source& s = sources_[id][j];
        switch (res.kind) {
          case grid::Resolved::Kind::Missing:
            // Dummy read of the centre; masked out of the compute.
            s.is_data = false;
            break;
          case grid::Resolved::Kind::Constant:
            s.is_data = false;
            s.is_constant = true;
            s.constant = res.constant;
            break;
          case grid::Resolved::Kind::Cell:
            s.is_data = true;
            s.row_shift = static_cast<std::int64_t>(res.r) -
                          static_cast<std::int64_t>(r_rep);
            s.col_shift = static_cast<std::int64_t>(res.c) -
                          static_cast<std::int64_t>(c_rep);
            s.slice_shift = static_cast<std::int64_t>(res.s) -
                            static_cast<std::int64_t>(s_rep);
            s.lin_shift = (s.slice_shift * static_cast<std::int64_t>(height) +
                           s.row_shift) *
                              static_cast<std::int64_t>(width) +
                          s.col_shift;
            break;
        }
      }
    }
  }
  }
  sim.add_module(this);
}

bool BaselineTop::done() const noexcept { return top_.is(Top::Done); }

std::uint64_t BaselineTop::in_base() const noexcept {
  return (ctrl_.q().instance % 2 == 0) ? 0 : words_;
}
std::uint64_t BaselineTop::out_base() const noexcept {
  return (ctrl_.q().instance % 2 == 0) ? words_ : 0;
}
std::uint64_t BaselineTop::output_base() const noexcept {
  return (steps_ % 2 == 0) ? 0 : words_;
}

std::uint64_t BaselineTop::element_addr(std::uint64_t cell,
                                        const Source& s) const {
  // Dummy read of the centre cell's words.
  if (!s.is_data) return in_base() + cell * fields_;
  // (r + row_shift) * W + (c + col_shift) == cell + lin_shift; the zone
  // resolution that produced the shifts guarantees the target stays inside
  // the grid for every cell of the case. Cell addresses scale by F words.
  const std::int64_t addr = static_cast<std::int64_t>(cell) + s.lin_shift;
  SMACHE_ASSERT(addr >= 0 &&
                addr < static_cast<std::int64_t>(cells_));
  return in_base() + static_cast<std::uint64_t>(addr) * fields_;
}

void BaselineTop::eval_run() {
  const std::size_t tuple = shape_.size();
  const std::size_t tuple_words = tuple * fields_;
  const Ctrl& c = ctrl_.q();
  bool did_work = false;

  // -- requester: one read request per tuple element per cycle (an F-word
  //    burst: the whole cell of the addressed grid point) --
  if (c.req_cell < cells_) {
    if (dram_.read_req().can_push()) {
      const std::size_t case_id = case_of_cell_[c.req_cell];
      const Source& s = sources_[case_id][c.req_elem];
      dram_.read_req().push(
          mem::DramReadReq{element_addr(c.req_cell, s),
                           static_cast<std::uint32_t>(fields_)});
      if (c.req_elem + 1 == tuple) {
        ctrl_.d().req_elem = 0;
        ctrl_.d().req_cell = c.req_cell + 1;
      } else {
        ctrl_.d().req_elem = c.req_elem + 1;
      }
      did_work = true;
    } else {
      mreg_->count(s_req_bp_);
    }
  }

  // -- collector: one data word per cycle; kernel + write on the last --
  if (fields_ > 1 && c.wb_field > 0) {
    // F > 1: drain the staged result cell (one word per cycle) before
    // collecting further tuple words; field 0 went out on the pop cycle.
    if (dram_.write_req().can_push()) {
      dram_.write_req().push(
          mem::DramWriteReq{out_base() + c.wb_index * fields_ + c.wb_field,
                            c.wb_vals[c.wb_field]});
      mreg_->count(s_wb_drain_);
      did_work = true;
      if (c.wb_field + 1 == static_cast<std::uint32_t>(fields_)) {
        ctrl_.d().wb_field = 0;
        ctrl_.d().wb_count = c.wb_count + 1;
        if (c.wb_count + 1 == cells_) {
          top_.go(c.instance + 1 == steps_ ? Top::Done : Top::Gap);
        }
      } else {
        ctrl_.d().wb_field = c.wb_field + 1;
      }
    } else {
      mreg_->count(s_wb_bp_);
    }
  } else if (c.col_cell < cells_ && !dram_.read_data().can_pop()) {
    mreg_->count(s_dram_wait_);
  } else if (c.col_cell < cells_) {
    const bool last = c.col_elem + 1 == tuple_words;
    // On the final word the write must be postable in the same cycle.
    if (!last || dram_.write_req().can_push()) {
      const word_t v = dram_.read_data().pop();
      did_work = true;
      if (!last) {
        tuple_regs_.d(c.col_elem, v);
        ctrl_.d().col_elem = c.col_elem + 1;
      } else {
        const std::uint64_t cell = c.col_cell;
        const std::size_t case_id = case_of_cell_[cell];
        for (std::size_t j = 0; j < tuple; ++j) {
          const Source& s = sources_[case_id][j];
          for (std::size_t f = 0; f < fields_; ++f) {
            const std::size_t w = j * fields_ + f;
            const word_t raw = w + 1 == tuple_words ? v : tuple_regs_.q(w);
            if (s.is_data) scratch_[w] = grid::TupleElem{raw, true};
            else if (s.is_constant)
              scratch_[w] = grid::TupleElem{s.constant, true};
            else
              scratch_[w] = grid::TupleElem{0, false};
          }
        }
        std::array<word_t, kMaxFields> out{};
        apply_kernel_cells(kernel_spec_, scratch_, fields_, out.data());
        dram_.write_req().push(
            mem::DramWriteReq{out_base() + cell * fields_, out[0]});
        ctrl_.d().col_elem = 0;
        ctrl_.d().col_cell = cell + 1;
        if (fields_ == 1) {
          ctrl_.d().wb_count = c.wb_count + 1;
          if (c.wb_count + 1 == cells_) {
            top_.go(c.instance + 1 == steps_ ? Top::Done : Top::Gap);
          }
        } else {
          // Stage fields 1..F-1 for the following cycles' drain.
          ctrl_.d().wb_index = cell;
          ctrl_.d().wb_vals = out;
          ctrl_.d().wb_field = 1;
        }
      }
    } else {
      mreg_->count(s_wb_bp_);
    }
  }

  // Starved: both FSMs are blocked on channel conditions subscribed to in
  // the constructor (request/write space frees, data arrives).
  if (!did_work) sleep();
}

void BaselineTop::eval() {
  if (case_of_cell_.empty())
    case_of_cell_ = build_case_table(cases_, height_, width_, depth_);
  switch (top_.state()) {
    case Top::Run:
      eval_run();
      break;
    case Top::Gap:
      // Memory fence between instances: the next instance reads the
      // region the writes are still draining into.
      if (dram_.write_req().empty() && dram_.idle()) {
        const Ctrl& c = ctrl_.q();
        Ctrl& d = ctrl_.d();
        d.instance = c.instance + 1;
        d.req_cell = 0;
        d.req_elem = 0;
        d.col_cell = 0;
        d.col_elem = 0;
        d.wb_count = 0;
        d.wb_field = 0;
        top_.go(Top::Run);
      } else {
        // Sound lower bound on the first cycle the fence can pass; write
        // drains also wake us early via the write_req subscription.
        sleep_for(dram_.min_cycles_to_idle());
      }
      break;
    case Top::Done:
      // Terminal: nothing can ever change again.
      sleep();
      break;
  }
}

}  // namespace smache::rtl

#include "rtl/baseline_top.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace smache::rtl {

BaselineTop::BaselineTop(sim::Simulator& sim, const std::string& path,
                         std::size_t height, std::size_t width,
                         const grid::StencilShape& shape,
                         const grid::BoundarySpec& bc,
                         const KernelSpec& kernel_spec, mem::DramModel& dram,
                         std::size_t steps)
    : height_(height),
      width_(width),
      cells_(height * width),
      steps_(steps),
      shape_(shape),
      cases_(height, width, shape),
      kernel_spec_(kernel_spec),
      dram_(dram),
      top_(sim, path + "/ctrl/top_fsm", Top::Run, 3),
      ctrl_(sim, Ctrl{},
            {{path + "/ctrl/instance", smache::count_bits(steps)},
             {path + "/ctrl/req_cell", smache::count_bits(cells_)},
             {path + "/ctrl/req_elem", smache::count_bits(shape.size())},
             {path + "/ctrl/col_cell", smache::count_bits(cells_)},
             {path + "/ctrl/col_elem", smache::count_bits(shape.size())},
             {path + "/ctrl/wb_count", smache::count_bits(cells_)}}),
      tuple_regs_(sim, path + "/datapath/tuple_regs", shape.size(), 0,
                  kWordBits) {
  SMACHE_REQUIRE(steps >= 1);
  SMACHE_REQUIRE(dram.size_words() >= 2 * cells_);
  scratch_.resize(shape.size());
  // Activity gating: the requester stalls only on request-channel space,
  // the collector only on data arrival / write-channel space — all channel
  // commits we can subscribe to.
  dram.read_req().set_producer(this);
  dram.read_data().set_consumer(this);
  dram.write_req().set_producer(this);

  // Build the per-case source table (the baseline's address/mask logic).
  const std::size_t n_cases = cases_.case_count();
  sources_.assign(n_cases, std::vector<Source>(shape.size()));
  for (std::size_t zr = 0; zr < cases_.rows().count(); ++zr) {
    for (std::size_t zc = 0; zc < cases_.cols().count(); ++zc) {
      const std::size_t id = cases_.case_id(zr, zc);
      const std::size_t r_rep = cases_.rows().representative(zr);
      const std::size_t c_rep = cases_.cols().representative(zc);
      for (std::size_t j = 0; j < shape.size(); ++j) {
        const grid::Offset2 o = shape.offsets()[j];
        const grid::Resolved res =
            grid::resolve(r_rep, c_rep, o.dr, o.dc, height, width, bc);
        Source& s = sources_[id][j];
        switch (res.kind) {
          case grid::Resolved::Kind::Missing:
            // Dummy read of the centre; masked out of the compute.
            s.is_data = false;
            break;
          case grid::Resolved::Kind::Constant:
            s.is_data = false;
            s.is_constant = true;
            s.constant = res.constant;
            break;
          case grid::Resolved::Kind::Cell:
            s.is_data = true;
            s.row_shift = static_cast<std::int64_t>(res.r) -
                          static_cast<std::int64_t>(r_rep);
            s.col_shift = static_cast<std::int64_t>(res.c) -
                          static_cast<std::int64_t>(c_rep);
            s.lin_shift =
                s.row_shift * static_cast<std::int64_t>(width) + s.col_shift;
            break;
        }
      }
    }
  }
  sim.add_module(this);
}

bool BaselineTop::done() const noexcept { return top_.is(Top::Done); }

std::uint64_t BaselineTop::in_base() const noexcept {
  return (ctrl_.q().instance % 2 == 0) ? 0 : cells_;
}
std::uint64_t BaselineTop::out_base() const noexcept {
  return (ctrl_.q().instance % 2 == 0) ? cells_ : 0;
}
std::uint64_t BaselineTop::output_base() const noexcept {
  return (steps_ % 2 == 0) ? 0 : cells_;
}

std::uint64_t BaselineTop::element_addr(std::uint64_t cell,
                                        const Source& s) const {
  if (!s.is_data) return in_base() + cell;  // dummy read of the centre
  // (r + row_shift) * W + (c + col_shift) == cell + lin_shift; the zone
  // resolution that produced the shifts guarantees the target stays inside
  // the grid for every cell of the case.
  const std::int64_t addr = static_cast<std::int64_t>(cell) + s.lin_shift;
  SMACHE_ASSERT(addr >= 0 &&
                addr < static_cast<std::int64_t>(cells_));
  return in_base() + static_cast<std::uint64_t>(addr);
}

void BaselineTop::eval_run() {
  const std::size_t tuple = shape_.size();
  const Ctrl& c = ctrl_.q();
  bool did_work = false;

  // -- requester: one single-word read request per cycle --
  if (c.req_cell < cells_ && dram_.read_req().can_push()) {
    const std::size_t case_id = case_of_cell_[c.req_cell];
    const Source& s = sources_[case_id][c.req_elem];
    dram_.read_req().push(mem::DramReadReq{element_addr(c.req_cell, s), 1});
    if (c.req_elem + 1 == tuple) {
      ctrl_.d().req_elem = 0;
      ctrl_.d().req_cell = c.req_cell + 1;
    } else {
      ctrl_.d().req_elem = c.req_elem + 1;
    }
    did_work = true;
  }

  // -- collector: one data word per cycle; kernel + write on the last --
  if (c.col_cell < cells_ && dram_.read_data().can_pop()) {
    const bool last = c.col_elem + 1 == tuple;
    // On the final element the write must be postable in the same cycle.
    if (!last || dram_.write_req().can_push()) {
      const word_t v = dram_.read_data().pop();
      did_work = true;
      if (!last) {
        tuple_regs_.d(c.col_elem, v);
        ctrl_.d().col_elem = c.col_elem + 1;
      } else {
        const std::uint64_t cell = c.col_cell;
        const std::size_t case_id = case_of_cell_[cell];
        for (std::size_t j = 0; j < tuple; ++j) {
          const Source& s = sources_[case_id][j];
          const word_t raw = j + 1 == tuple ? v : tuple_regs_.q(j);
          if (s.is_data) scratch_[j] = grid::TupleElem{raw, true};
          else if (s.is_constant)
            scratch_[j] = grid::TupleElem{s.constant, true};
          else
            scratch_[j] = grid::TupleElem{0, false};
        }
        const word_t out = apply_kernel(kernel_spec_, scratch_);
        dram_.write_req().push(mem::DramWriteReq{out_base() + cell, out});
        ctrl_.d().col_elem = 0;
        ctrl_.d().col_cell = cell + 1;
        ctrl_.d().wb_count = c.wb_count + 1;
        if (c.wb_count + 1 == cells_) {
          top_.go(c.instance + 1 == steps_ ? Top::Done : Top::Gap);
        }
      }
    }
  }

  // Starved: both FSMs are blocked on channel conditions subscribed to in
  // the constructor (request/write space frees, data arrives).
  if (!did_work) sleep();
}

void BaselineTop::eval() {
  if (case_of_cell_.empty())
    case_of_cell_ = build_case_table(cases_, height_, width_);
  switch (top_.state()) {
    case Top::Run:
      eval_run();
      break;
    case Top::Gap:
      // Memory fence between instances: the next instance reads the
      // region the writes are still draining into.
      if (dram_.write_req().empty() && dram_.idle()) {
        const Ctrl& c = ctrl_.q();
        Ctrl& d = ctrl_.d();
        d.instance = c.instance + 1;
        d.req_cell = 0;
        d.req_elem = 0;
        d.col_cell = 0;
        d.col_elem = 0;
        d.wb_count = 0;
        top_.go(Top::Run);
      } else {
        // Sound lower bound on the first cycle the fence can pass; write
        // drains also wake us early via the write_req subscription.
        sleep_for(dram_.min_cycles_to_idle());
      }
      break;
    case Top::Done:
      // Terminal: nothing can ever change again.
      sleep();
      break;
  }
}

}  // namespace smache::rtl

#include "rtl/baseline_top.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace smache::rtl {

BaselineTop::BaselineTop(sim::Simulator& sim, const std::string& path,
                         std::size_t height, std::size_t width,
                         const grid::StencilShape& shape,
                         const grid::BoundarySpec& bc,
                         const KernelSpec& kernel_spec, mem::DramModel& dram,
                         std::size_t steps)
    : height_(height),
      width_(width),
      cells_(height * width),
      steps_(steps),
      shape_(shape),
      cases_(height, width, shape),
      kernel_spec_(kernel_spec),
      dram_(dram),
      top_(sim, path + "/ctrl/top_fsm", Top::Run, 3),
      instance_(sim, path + "/ctrl/instance", 0u,
                smache::count_bits(steps)),
      req_cell_(sim, path + "/ctrl/req_cell", 0,
                smache::count_bits(cells_)),
      req_elem_(sim, path + "/ctrl/req_elem", 0u,
                smache::count_bits(shape.size())),
      col_cell_(sim, path + "/ctrl/col_cell", 0,
                smache::count_bits(cells_)),
      col_elem_(sim, path + "/ctrl/col_elem", 0u,
                smache::count_bits(shape.size())),
      tuple_regs_(sim, path + "/datapath/tuple_regs", shape.size(), 0,
                  kWordBits),
      wb_count_(sim, path + "/ctrl/wb_count", 0,
                smache::count_bits(cells_)) {
  SMACHE_REQUIRE(steps >= 1);
  SMACHE_REQUIRE(dram.size_words() >= 2 * cells_);
  scratch_.resize(shape.size());

  // Build the per-case source table (the baseline's address/mask logic).
  const std::size_t n_cases = cases_.case_count();
  sources_.assign(n_cases, std::vector<Source>(shape.size()));
  for (std::size_t zr = 0; zr < cases_.rows().count(); ++zr) {
    for (std::size_t zc = 0; zc < cases_.cols().count(); ++zc) {
      const std::size_t id = cases_.case_id(zr, zc);
      const std::size_t r_rep = cases_.rows().representative(zr);
      const std::size_t c_rep = cases_.cols().representative(zc);
      for (std::size_t j = 0; j < shape.size(); ++j) {
        const grid::Offset2 o = shape.offsets()[j];
        const grid::Resolved res =
            grid::resolve(r_rep, c_rep, o.dr, o.dc, height, width, bc);
        Source& s = sources_[id][j];
        switch (res.kind) {
          case grid::Resolved::Kind::Missing:
            // Dummy read of the centre; masked out of the compute.
            s.is_data = false;
            break;
          case grid::Resolved::Kind::Constant:
            s.is_data = false;
            s.is_constant = true;
            s.constant = res.constant;
            break;
          case grid::Resolved::Kind::Cell:
            s.is_data = true;
            s.row_shift = static_cast<std::int64_t>(res.r) -
                          static_cast<std::int64_t>(r_rep);
            s.col_shift = static_cast<std::int64_t>(res.c) -
                          static_cast<std::int64_t>(c_rep);
            s.lin_shift =
                s.row_shift * static_cast<std::int64_t>(width) + s.col_shift;
            break;
        }
      }
    }
  }
  sim.add_module(this);
}

bool BaselineTop::done() const noexcept { return top_.is(Top::Done); }

std::uint64_t BaselineTop::in_base() const noexcept {
  return (instance_.q() % 2 == 0) ? 0 : cells_;
}
std::uint64_t BaselineTop::out_base() const noexcept {
  return (instance_.q() % 2 == 0) ? cells_ : 0;
}
std::uint64_t BaselineTop::output_base() const noexcept {
  return (steps_ % 2 == 0) ? 0 : cells_;
}

std::uint64_t BaselineTop::element_addr(std::uint64_t cell,
                                        const Source& s) const {
  if (!s.is_data) return in_base() + cell;  // dummy read of the centre
  // (r + row_shift) * W + (c + col_shift) == cell + lin_shift; the zone
  // resolution that produced the shifts guarantees the target stays inside
  // the grid for every cell of the case.
  const std::int64_t addr = static_cast<std::int64_t>(cell) + s.lin_shift;
  SMACHE_ASSERT(addr >= 0 &&
                addr < static_cast<std::int64_t>(cells_));
  return in_base() + static_cast<std::uint64_t>(addr);
}

void BaselineTop::eval_run() {
  const std::size_t tuple = shape_.size();

  // -- requester: one single-word read request per cycle --
  if (req_cell_.q() < cells_ && dram_.read_req().can_push()) {
    const std::size_t case_id = case_of_cell_[req_cell_.q()];
    const Source& s = sources_[case_id][req_elem_.q()];
    dram_.read_req().push(
        mem::DramReadReq{element_addr(req_cell_.q(), s), 1});
    if (req_elem_.q() + 1 == tuple) {
      req_elem_.d(0);
      req_cell_.d(req_cell_.q() + 1);
    } else {
      req_elem_.d(req_elem_.q() + 1);
    }
  }

  // -- collector: one data word per cycle; kernel + write on the last --
  if (col_cell_.q() < cells_ && dram_.read_data().can_pop()) {
    const bool last = col_elem_.q() + 1 == tuple;
    // On the final element the write must be postable in the same cycle.
    if (!last || dram_.write_req().can_push()) {
      const word_t v = dram_.read_data().pop();
      if (!last) {
        tuple_regs_.d(col_elem_.q(), v);
        col_elem_.d(col_elem_.q() + 1);
      } else {
        const std::uint64_t cell = col_cell_.q();
        const std::size_t case_id = case_of_cell_[cell];
        for (std::size_t j = 0; j < tuple; ++j) {
          const Source& s = sources_[case_id][j];
          const word_t raw = j + 1 == tuple ? v : tuple_regs_.q(j);
          if (s.is_data) scratch_[j] = grid::TupleElem{raw, true};
          else if (s.is_constant)
            scratch_[j] = grid::TupleElem{s.constant, true};
          else
            scratch_[j] = grid::TupleElem{0, false};
        }
        const word_t out = apply_kernel(kernel_spec_, scratch_);
        dram_.write_req().push(mem::DramWriteReq{out_base() + cell, out});
        col_elem_.d(0);
        col_cell_.d(cell + 1);
        wb_count_.d(wb_count_.q() + 1);
        if (wb_count_.q() + 1 == cells_) {
          top_.go(instance_.q() + 1 == steps_ ? Top::Done : Top::Gap);
        }
      }
    }
  }
}

void BaselineTop::eval() {
  if (case_of_cell_.empty())
    case_of_cell_ = build_case_table(cases_, height_, width_);
  switch (top_.state()) {
    case Top::Run:
      eval_run();
      break;
    case Top::Gap:
      // Memory fence between instances: the next instance reads the
      // region the writes are still draining into.
      if (dram_.write_req().empty() && dram_.idle()) {
        instance_.d(instance_.q() + 1);
        req_cell_.d(0);
        req_elem_.d(0);
        col_cell_.d(0);
        col_elem_.d(0);
        wb_count_.d(0);
        top_.go(Top::Run);
      }
      break;
    case Top::Done:
      break;
  }
}

}  // namespace smache::rtl

// CascadeTop — temporal blocking: several work-instances computed in ONE
// pass over the DRAM stream.
//
// The paper's related-work section describes processing "multiple time
// steps in one pass" ([2] Fu et al., [4] Nacci et al.) as pertinent but
// orthogonal to Smache's off-chip optimisation. This module implements
// that extension on top of the same substrate: K stencil stages are
// chained on chip,
//
//   DRAM read -> window_0 -> kernel_0 -> window_1 -> kernel_1 -> ...
//             -> kernel_{K-1} -> DRAM write
//
// so K time steps cost ONE grid read and ONE grid write instead of K each —
// the DRAM traffic drops by ~K while the cycle count stays ~N + K*fill.
//
// Restriction (fundamental, not an implementation shortcut): stage k+1
// consumes stage k's output in stream order, so a stencil element may only
// reference data already produced — which is violated by periodic
// boundaries whose wrap needs the END of the grid at its start. Smache
// solves that across instances with double-buffered static buffers; within
// one fused pass the value does not exist yet. Cascading therefore
// supports Open/Mirror/Constant boundaries (the classic temporal-blocking
// setting) and rejects Periodic ones; use SmacheTop for those.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/word.hpp"
#include "mem/dram.hpp"
#include "model/planner.hpp"
#include "rtl/kernel_pipeline.hpp"
#include "rtl/stream_buffer.hpp"
#include "rtl/top_support.hpp"
#include "sim/fifo.hpp"
#include "sim/fsm.hpp"
#include "sim/reg.hpp"
#include "sim/simulator.hpp"

namespace smache::rtl {

class CascadeTop : public sim::Module {
 public:
  /// `depth` = time steps fused per pass; `passes` = number of passes, so
  /// the run computes depth*passes work-instances in total. The plan must
  /// have no static buffers (enforced: open/mirror/constant boundaries).
  CascadeTop(sim::Simulator& sim, const std::string& path,
             const model::BufferPlan& plan, const KernelSpec& kernel_spec,
             mem::DramModel& dram, std::size_t depth, std::size_t passes);

  bool done() const noexcept;
  std::uint64_t output_base() const noexcept;
  std::size_t depth() const noexcept { return stages_.size(); }

  /// Cycle at which the cascade pipeline first produced a DRAM writeback
  /// (0 until then): the fill latency of the K chained windows/kernels —
  /// the cascade's analogue of SmacheTop's static-prefetch warm-up, and
  /// what RunResult::warmup_cycles reports for cascade runs. Grows with
  /// depth; recorded once, on the first pass.
  std::uint64_t warmup_end_cycle() const noexcept { return warmup_end_; }

  /// Lower bound on cycles until done() can become true, for
  /// Simulator::run_until_done (see outstanding_writeback_bound; the last
  /// stage posts at most one DRAM write per cycle).
  std::uint64_t min_cycles_to_done() const noexcept {
    if (top_.is(Top::Done)) return 0;
    return outstanding_writeback_bound(passes_, ctrl_.q().pass, cells_,
                                       ctrl_.q().wb_count);
  }

  void eval() override;

 private:
  enum class Top : std::uint8_t { Run, Gap, Done };

  /// Per-stage gather progress counters, one state element per stage (a
  /// single commit instead of one per counter; see sim::RegGroup). The
  /// in_* staging fields are stage 0's DRAM word-to-cell assembly and are
  /// only exercised — and only charged — for F > 1 cell layouts.
  struct StageCtrl {
    std::uint64_t shifts = 0;
    std::uint64_t emit_next = 0;
    std::uint32_t in_fill = 0;
    std::array<word_t, kMaxFields> in_cell{};
  };

  /// One cell on the inter-stage channel: F words, moved as one message
  /// (the channel charges kWordBits * F per slot — for F = 1 exactly the
  /// original word-wide FIFO).
  struct CellMsg {
    std::array<word_t, kMaxFields> w{};
  };

  /// One fused time step: a window fed from the previous stage plus its
  /// kernel and gather progress counters.
  struct Stage {
    std::unique_ptr<StreamBuffer> window;
    std::unique_ptr<KernelPipeline> kernel;
    std::unique_ptr<sim::RegGroup<StageCtrl>> ctrl;
    // Between-stage channel carrying the previous kernel's output cells in
    // cell order (stage 0 reads DRAM directly).
    std::unique_ptr<sim::Fifo<CellMsg>> input;
  };

  /// Pass-level controller registers, one state element (see sim::RegGroup).
  /// The wb_* staging fields drain an F-word result cell to DRAM one word
  /// per cycle; F = 1 never touches (or charges) them.
  struct Ctrl {
    std::uint64_t wb_count = 0;
    std::uint32_t pass = 0;
    bool req_issued = false;
    std::uint32_t wb_field = 0;
    std::uint64_t wb_index = 0;
    std::array<word_t, kMaxFields> wb_vals{};
  };

  std::uint64_t in_base() const noexcept;
  std::uint64_t out_base() const noexcept;
  /// Returns true if the stage made observable progress this cycle.
  bool eval_stage(std::size_t k);

  const model::BufferPlan plan_;
  mem::DramModel& dram_;
  std::size_t cells_;
  std::size_t fields_;  // words per cell (kernel spec's layout)
  std::size_t words_;   // cells_ * fields_ (one DRAM region)
  std::size_t passes_;
  sim::Simulator& sim_;

  std::vector<Stage> stages_;
  // cell -> case id, precomputed (behavioural lookup, nothing charged):
  // every stage resolves the emitted cell's case every cycle.
  std::vector<std::uint32_t> case_of_cell_;
  // case id -> pre-resolved gather ops (rtl::EmitOp), shared by all
  // stages (identical window layouts — same plan; never any statics).
  std::vector<CasePlan> case_plans_;
  sim::FsmState<Top> top_;
  sim::RegGroup<Ctrl> ctrl_;
  // Behavioural observability only (like SmacheTop::warmup_end_): not a
  // hardware register, never charged to the ledger.
  std::uint64_t warmup_end_ = 0;

  // -- observability: stalled-eval / staging-cycle counters, aggregated
  // across stages (see SmacheTop for episode-vs-cycle semantics) --
  obs::MetricsRegistry* mreg_;
  obs::MetricsRegistry::Slot s_req_bp_;          // read_req channel full
  obs::MetricsRegistry::Slot s_dram_wait_;       // stage-0 data not ready
  obs::MetricsRegistry::Slot s_kernel_bp_;       // a stage kernel in full
  obs::MetricsRegistry::Slot s_interstage_bp_;   // next stage's input full
  obs::MetricsRegistry::Slot s_wb_bp_;           // write_req channel full
  obs::MetricsRegistry::Slot s_gather_staging_;  // F>1 cell-fill cycles
  obs::MetricsRegistry::Slot s_wb_drain_;        // F>1 cell-drain cycles
};

}  // namespace smache::rtl

#include "rtl/kernel_pipeline.hpp"

#include "common/assert.hpp"

namespace smache::rtl {

KernelPipeline::KernelPipeline(sim::Simulator& sim, const std::string& path,
                               KernelSpec spec, std::size_t tuple_size,
                               std::size_t grid_cells, std::uint32_t latency)
    : spec_(spec),
      tuple_size_(tuple_size),
      latency_(latency),
      in_(sim, path + "/in", 2,
          static_cast<std::uint32_t>(tuple_size * 33 +
                                     smache::count_bits(grid_cells))),
      out_(sim, path + "/out", 2,
           32 + smache::count_bits(grid_cells)) {
  SMACHE_REQUIRE(latency >= 1);
  SMACHE_REQUIRE(tuple_size >= 1 && tuple_size <= kMaxTuple);
  const std::uint32_t idx_bits = smache::count_bits(grid_cells);
  for (std::uint32_t s = 0; s < latency; ++s) {
    // Stage 0 still holds the tuple-wide partial state; later stages carry
    // a narrowing payload down to one word.
    const std::uint32_t payload_bits =
        s == 0 ? static_cast<std::uint32_t>(tuple_size * 33)
               : (s == 1 ? 64u : 32u);
    stage_storage_.push_back(std::make_unique<sim::Reg<Stage>>(
        sim, path + "/stage" + std::to_string(s), Stage{},
        payload_bits + idx_bits + 1));
    stages_.push_back(stage_storage_.back().get());
  }
  sim.add_module(this);
}

bool KernelPipeline::empty() const noexcept {
  if (!in_.empty() || !out_.empty()) return false;
  for (const auto* s : stages_)
    if (s->q().valid) return false;
  return true;
}

void KernelPipeline::eval() {
  // Idle fast path: no valid tuple in any stage and nothing to accept.
  // Advancing would only shift bubbles into bubbles — the committed state
  // after such a cycle is bit-identical to not scheduling the writes at
  // all, so skip them (and their dirty-list commits).
  if (occupancy_ == 0 && in_.empty()) return;

  // All-or-nothing advance: the pipeline only moves when its tail can
  // retire into the output FIFO (or the tail is a bubble).
  const Stage& tail = stages_.back()->q();
  const bool can_retire = !tail.valid || out_.can_push();
  if (!can_retire) return;

  if (tail.valid) {
    out_.push(ResultMsg{tail.index, tail.value});
    --occupancy_;
  }

  // Shift interior stages.
  for (std::size_t s = stages_.size(); s-- > 1;)
    stages_[s]->d(stages_[s - 1]->q());

  // Head stage: accept a new tuple if available; the arithmetic result is
  // computed here and carried through the remaining stages (the stage regs
  // charge the bits a real pipeline would hold).
  if (in_.can_pop()) {
    const TupleMsg& msg = in_.front();  // valid until the commit phase
    SMACHE_ASSERT(msg.count <= tuple_size_);
    Stage head;
    head.valid = true;
    head.index = msg.index;
    head.value = apply_kernel(spec_, TupleView{msg.elems.data(), msg.count});
    stages_[0]->d(head);
    in_.drop();
    ++occupancy_;
  } else {
    stages_[0]->d(Stage{});
  }
}

}  // namespace smache::rtl

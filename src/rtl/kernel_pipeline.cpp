#include "rtl/kernel_pipeline.hpp"

#include "common/assert.hpp"

namespace smache::rtl {

KernelPipeline::KernelPipeline(sim::Simulator& sim, const std::string& path,
                               KernelSpec spec, std::size_t tuple_size,
                               std::size_t grid_cells, std::uint32_t latency)
    : spec_(spec),
      tuple_size_(tuple_size),
      fields_(spec.fields()),
      latency_(latency),
      in_(sim, path + "/in", 2,
          static_cast<std::uint32_t>(tuple_size * spec.fields() * 33 +
                                     smache::count_bits(grid_cells))),
      out_(sim, path + "/out", 2,
           static_cast<std::uint32_t>(32 * spec.fields()) +
               smache::count_bits(grid_cells)),
      pipe_(sim, latency),
      mreg_(&sim.metrics()),
      s_out_bp_(mreg_->slot(path, "/stall/out_backpressure",
                            obs::MetricKind::Counter)) {
  SMACHE_REQUIRE(latency >= 1);
  set_obs_name(path);
  SMACHE_REQUIRE(tuple_size >= 1 && tuple_size * fields_ <= kMaxTuple);
  const std::uint32_t idx_bits = smache::count_bits(grid_cells);
  const auto f32 = static_cast<std::uint32_t>(fields_);
  for (std::uint32_t s = 0; s < latency; ++s) {
    // Stage 0 still holds the tuple-wide partial state; later stages carry
    // a narrowing payload down to one cell (F words, plus the wide partial
    // accumulator in stage 1). Charged per stage exactly like the discrete
    // stage registers the StagePipe replaces; F = 1 keeps the original
    // widths bit-for-bit.
    const std::uint32_t payload_bits =
        s == 0 ? static_cast<std::uint32_t>(tuple_size * fields_ * 33)
               : (s == 1 ? 64u * f32 : 32u * f32);
    sim.ledger().add(path + "/stage" + std::to_string(s),
                     sim::ResKind::RegisterBits, payload_bits + idx_bits + 1);
  }
  // Activity gating: a push committing on `in` is the only event that can
  // end emptiness; a pop committing on `out` is the only event that can end
  // a full-output freeze.
  in_.set_consumer(this);
  out_.set_producer(this);
  sim.add_module(this);
}

bool KernelPipeline::empty() const noexcept {
  if (!in_.empty() || !out_.empty()) return false;
  for (std::uint32_t s = 0; s < latency_; ++s)
    if (pipe_.q(s).valid) return false;
  return true;
}

void KernelPipeline::eval() {
  // Quiescent: no valid tuple in any stage and nothing to accept. Advancing
  // would only shift bubbles into bubbles — the committed state after such
  // a cycle is bit-identical to not scheduling the writes at all, so sleep
  // until the input channel commits a push.
  if (occupancy_ == 0 && in_.empty()) {
    sleep();
    return;
  }

  // All-or-nothing advance: the pipeline only moves when its tail can
  // retire into the output FIFO (or the tail is a bubble). A freeze is
  // quiescent too — nothing changes until the output channel commits a pop.
  const Stage& tail = pipe_.q(latency_ - 1);
  const bool can_retire = !tail.valid || out_.can_push();
  if (!can_retire) {
    mreg_->count(s_out_bp_);
    sleep();
    return;
  }

  if (tail.valid) {
    ResultMsg& res = out_.push_slot();  // staged in place, no copy
    res.index = tail.index;
    res.values = tail.value;
    --occupancy_;
  }

  // Whole-pipe shift, scheduled as one write and committed as one copy.
  Stage* next = pipe_.next_all();
  for (std::size_t s = latency_; s-- > 1;) next[s] = pipe_.q(s - 1);

  // Head stage: accept a new tuple if available; the arithmetic result is
  // computed here and carried through the remaining stages (the stage regs
  // charge the bits a real pipeline would hold).
  if (in_.can_pop()) {
    const TupleMsg& msg = in_.front();  // valid until the commit phase
    SMACHE_ASSERT(msg.count <= tuple_size_ * fields_);
    Stage head;
    head.valid = true;
    head.index = msg.index;
    apply_kernel_cells(spec_, TupleView{msg.elems.data(), msg.count},
                       fields_, head.value.data());
    next[0] = head;
    in_.drop();
    ++occupancy_;
  } else {
    next[0] = Stage{};
  }
}

}  // namespace smache::rtl

// BaselineTop — the paper's comparison design: NO stencil buffering. Every
// grid point reads its full tuple from global memory (word-granularity,
// effectively random accesses), computes, and writes the result back. As in
// the paper's accounting, a read is issued for every tuple element of every
// point — elements masked by open boundaries issue a dummy read of the
// centre cell (the traffic is what the paper counts: tuple-size words per
// point).
//
// Two concurrent FSMs decoupled by the DRAM channels:
//   requester — walks cells and tuple elements, issuing one single-word
//               read request per cycle;
//   collector — pulls data words, assembles the tuple with the per-case
//               validity mask, applies the kernel, and posts the write.
//
// The design drives a SINGLE shared memory port (the natural naive
// memory-mapped master): the engine configures the DRAM with shared_bus,
// making writes contend with reads — tuple+1 issue slots per point.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/word.hpp"
#include "grid/boundary.hpp"
#include "grid/stencil.hpp"
#include "grid/zones.hpp"
#include "mem/dram.hpp"
#include "rtl/kernel.hpp"
#include "rtl/top_support.hpp"
#include "sim/fsm.hpp"
#include "sim/reg.hpp"
#include "sim/simulator.hpp"

namespace smache::rtl {

class BaselineTop : public sim::Module {
 public:
  /// `depth` = slice extent of the grid (1 = 2D, the original design).
  BaselineTop(sim::Simulator& sim, const std::string& path,
              std::size_t height, std::size_t width,
              const grid::StencilShape& shape, const grid::BoundarySpec& bc,
              const KernelSpec& kernel_spec, mem::DramModel& dram,
              std::size_t steps, std::size_t depth = 1);

  bool done() const noexcept;
  std::uint64_t output_base() const noexcept;

  /// Lower bound on cycles until done() can become true, for
  /// Simulator::run_until_done (see outstanding_writeback_bound; the
  /// collector posts at most one write per cycle, on each tuple's final
  /// element).
  std::uint64_t min_cycles_to_done() const noexcept {
    if (top_.is(Top::Done)) return 0;
    return outstanding_writeback_bound(steps_, ctrl_.q().instance, cells_,
                                       ctrl_.q().wb_count);
  }

  void eval() override;

 private:
  enum class Top : std::uint8_t { Run, Gap, Done };

  /// How one tuple element of one case is served. Addressing is uniform:
  /// address = ((s + slice_shift) * H + r + row_shift) * W + (c +
  /// col_shift). Shifts are computed against the case's representative
  /// cell; exact (boundary) zones pin the coordinate, so the shifted
  /// address is exact for every cell of the case, wrapped or not.
  struct Source {
    bool is_data = false;      // a DRAM word participates in the tuple
    bool is_constant = false;  // constant halo value instead
    word_t constant = 0;
    std::int64_t row_shift = 0;
    std::int64_t col_shift = 0;
    std::int64_t slice_shift = 0;
    // (slice_shift * H + row_shift) * W + col_shift: with slice-major
    // addressing the shifted address is simply cell + lin_shift, saving
    // the requester a div/mod chain every cycle.
    std::int64_t lin_shift = 0;
  };

  /// All controller registers as one state element (single commit per
  /// cycle); ledger charges stay per field (see sim::RegGroup). For F > 1
  /// cell layouts the requester reads F-word cells (one burst request per
  /// tuple element), col_elem counts tuple WORDS (taps * F), and the wb_*
  /// staging drains the F-word result cell one word per cycle; F = 1 never
  /// touches (or charges) the staging fields.
  struct Ctrl {
    std::uint64_t req_cell = 0;
    std::uint64_t col_cell = 0;
    std::uint64_t wb_count = 0;
    std::uint32_t instance = 0;
    std::uint32_t req_elem = 0;
    std::uint32_t col_elem = 0;
    std::uint32_t wb_field = 0;
    std::uint64_t wb_index = 0;
    std::array<word_t, kMaxFields> wb_vals{};
  };

  std::uint64_t in_base() const noexcept;
  std::uint64_t out_base() const noexcept;
  std::uint64_t element_addr(std::uint64_t cell, const Source& s) const;
  void eval_run();

  std::size_t height_, width_, depth_, cells_, fields_, words_, steps_;
  grid::StencilShape shape_;
  grid::CaseMap cases_;
  KernelSpec kernel_spec_;
  mem::DramModel& dram_;

  // sources_[case_id][element]
  std::vector<std::vector<Source>> sources_;
  // cell -> case id, precomputed: case_of() resolves zones with a per-axis
  // walk, far too slow to repeat for every request and collect of every
  // cycle. Behavioural lookup only — charges nothing to the ledger, exactly
  // like sources_. Built lazily on the first eval (see eval()).
  std::vector<std::uint32_t> case_of_cell_;

  sim::FsmState<Top> top_;
  sim::RegGroup<Ctrl> ctrl_;
  sim::RegArray<word_t> tuple_regs_;

  std::vector<grid::TupleElem> scratch_;

  // -- observability: stalled-eval / drain-cycle counters (see SmacheTop
  // for the episode-vs-cycle counting semantics under gating) --
  obs::MetricsRegistry* mreg_;
  obs::MetricsRegistry::Slot s_req_bp_;    // read_req channel full
  obs::MetricsRegistry::Slot s_dram_wait_; // read_data not ready
  obs::MetricsRegistry::Slot s_wb_bp_;     // write_req channel full
  obs::MetricsRegistry::Slot s_wb_drain_;  // F>1 cell-drain cycles
};

}  // namespace smache::rtl

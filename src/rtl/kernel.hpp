// Computation kernels. The SAME functor is applied by the golden reference
// executor and by the simulated hardware pipeline, which is what makes
// bit-exact equivalence testing possible. Kernels operate on a gathered
// tuple (values + validity flags, in stencil-offset order) and produce one
// output word.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/word.hpp"
#include "grid/stencil.hpp"

namespace smache::rtl {

/// Element type interpretation of the 32-bit datapath word.
enum class ValueType : std::uint8_t { Int32, Float32 };

enum class KernelKind : std::uint8_t {
  /// Mean of the valid tuple elements (the paper's 4-point averaging
  /// filter; elements masked by open boundaries are excluded).
  Average,
  /// Sum of the valid tuple elements.
  Sum,
  /// Maximum of the valid tuple elements (morphological dilate).
  Max,
  /// Pass the first tuple element through unchanged (plumbing tests).
  Identity,
  /// Explicit diffusion step: out = t0 + alpha * (sum(t1..) - n*t0), where
  /// t0 must be the centre. Used by the heat example (Float32).
  Diffusion,
  /// First-order upwind advection: out = t0 - cx*(t0-t1) - cy*(t0-t2),
  /// with tuple order {centre, west, north}. Used by the ocean example.
  Upwind,
  /// Fixed-point 3x3 Gaussian blur (weights 1-2-1/2-4-2/1-2-1, >>4) over
  /// a Moore-ordered tuple; missing elements reuse the centre (edge
  /// extension), matching common image-filter hardware.
  Gaussian3x3,
  /// 3x3 Laplacian edge detect (centre*8 - neighbours) over a
  /// Moore-ordered tuple; missing elements reuse the centre so flat
  /// borders report zero response.
  Laplacian3x3,
  /// Jacobi relaxation: out = mean of the VALID non-centre neighbours
  /// (the centre value where no neighbour is valid). Centre-first tuple,
  /// Float32, one field.
  Jacobi,
  /// Hotspot thermal step over {temperature, power} cells (F = 2):
  ///   t' = t + alpha * sum_valid(t_n - t) + beta * p,   p' = p.
  /// Centre-first tuple; the power field is the per-cell dissipation map
  /// and streams through unchanged (the SASA/Casper hotspot port).
  Hotspot,
  /// 2D scalar-wave FDTD over {u, u_prev, c2} cells (F = 3):
  ///   u' = 2u - u_prev + alpha * c2 * sum_valid(u_n - u),
  ///   u_prev' = u,   c2' = c2.
  /// Centre-first tuple; c2 is the per-cell material (squared wave speed)
  /// field, so heterogeneous media ride in the cell layout.
  FdtdWave,
};

struct KernelSpec {
  KernelKind kind = KernelKind::Average;
  ValueType value_type = ValueType::Int32;
  /// Coefficients for Diffusion (alpha) and Upwind (alpha=cx, beta=cy).
  float alpha = 0.0f;
  float beta = 0.0f;

  static KernelSpec average_int() {
    return {KernelKind::Average, ValueType::Int32, 0.0f, 0.0f};
  }
  static KernelSpec average_float() {
    return {KernelKind::Average, ValueType::Float32, 0.0f, 0.0f};
  }
  static KernelSpec diffusion(float alpha) {
    return {KernelKind::Diffusion, ValueType::Float32, alpha, 0.0f};
  }
  static KernelSpec upwind(float cx, float cy) {
    return {KernelKind::Upwind, ValueType::Float32, cx, cy};
  }
  static KernelSpec gaussian3x3() {
    return {KernelKind::Gaussian3x3, ValueType::Int32, 0.0f, 0.0f};
  }
  static KernelSpec laplacian3x3() {
    return {KernelKind::Laplacian3x3, ValueType::Int32, 0.0f, 0.0f};
  }
  static KernelSpec jacobi() {
    return {KernelKind::Jacobi, ValueType::Float32, 0.0f, 0.0f};
  }
  static KernelSpec hotspot(float alpha, float beta) {
    return {KernelKind::Hotspot, ValueType::Float32, alpha, beta};
  }
  static KernelSpec fdtd_wave(float alpha) {
    return {KernelKind::FdtdWave, ValueType::Float32, alpha, 0.0f};
  }

  std::string name() const;

  /// Words per cell this kernel consumes and produces (CellLayout fields).
  /// 1 for every classic kernel — the original word-per-cell datapath.
  std::size_t fields() const noexcept {
    switch (kind) {
      case KernelKind::Hotspot: return 2;
      case KernelKind::FdtdWave: return 3;
      default: return 1;
    }
  }

  /// Whether the kernel's semantics require tuple element 0 to be the
  /// centre cell (offset {0,0}); ProblemSpec::validate and the sweep
  /// registry enforce the pairing. Only the application kernels opt in:
  /// Diffusion/Upwind historically read tuple[0] as the centre without
  /// validating the stencil (reference and RTL agree bit-for-bit either
  /// way), and tightening them now would reject long-standing pairings.
  bool needs_center_first() const noexcept {
    switch (kind) {
      case KernelKind::Jacobi:
      case KernelKind::Hotspot:
      case KernelKind::FdtdWave:
        return true;
      default:
        return false;
    }
  }

  /// Arithmetic operations per application, for the MOPS metric. The paper
  /// counts one op per stencil point (4 for its 4-point filter), so we
  /// count one op per tuple element.
  std::uint64_t ops_per_point(std::size_t tuple_size) const {
    return tuple_size;
  }
};

/// Lightweight non-owning view of a gathered tuple — hot callers (the
/// kernel pipeline, the baseline collector) hand over their message buffer
/// directly instead of copying into a vector first.
struct TupleView {
  const grid::TupleElem* data = nullptr;
  std::size_t count = 0;

  std::size_t size() const noexcept { return count; }
  bool empty() const noexcept { return count == 0; }
  const grid::TupleElem& operator[](std::size_t i) const { return data[i]; }
  const grid::TupleElem* begin() const noexcept { return data; }
  const grid::TupleElem* end() const noexcept { return data + count; }
};

/// Apply the kernel to one gathered tuple. Total: invalid elements are
/// skipped; an all-invalid tuple yields 0. Single-field kernels only —
/// multi-field kinds (Hotspot, FdtdWave) must go through
/// apply_kernel_cells.
word_t apply_kernel(const KernelSpec& spec, TupleView tuple);
inline word_t apply_kernel(const KernelSpec& spec,
                           const std::vector<grid::TupleElem>& tuple) {
  return apply_kernel(spec, TupleView{tuple.data(), tuple.size()});
}

/// Cell-wide kernel application: `tuple` is tap-major with F fields per
/// tap (tuple.size() == taps * fields), `out` receives the output cell's
/// F words. F = 1 delegates to apply_kernel, so every classic kernel is
/// bit-identical through this entry point.
void apply_kernel_cells(const KernelSpec& spec, TupleView tuple,
                        std::size_t fields, word_t* out);
inline void apply_kernel_cells(const KernelSpec& spec,
                               const std::vector<grid::TupleElem>& tuple,
                               std::size_t fields, word_t* out) {
  apply_kernel_cells(spec, TupleView{tuple.data(), tuple.size()}, fields,
                     out);
}

}  // namespace smache::rtl

// Verilog-2001 export of a planned Smache instance.
//
// The paper's future work includes "completely automate the creation of
// the Smache architecture given a problem with a particular stencil shape
// and boundary conditions" and integration with FPGA tooling. The Planner
// does the first; this module does the bridge to tooling: it emits a
// synthesisable structural/behavioural Verilog module that mirrors the
// simulated microarchitecture one-for-one —
//
//   * the window: one `reg [31:0]` per register-mapped age, BRAM FIFO
//     segments as inferred block RAM (read-before-write, registered
//     output) with wrap-around pointers;
//   * static buffers: ping/pong copies per replica with an active-select
//     bit, write-through port, and synchronous reads;
//   * the gather unit: zone comparators on the row/column counters and a
//     per-case `case` mux assembling the tuple with validity bits;
//   * an AXI4-Stream-style stall interface (tvalid/tready/tdata).
//
// The emitted text is deterministic for a given plan, so tests can check
// its structure. It has NOT been run through vendor synthesis in this
// environment (no FPGA tools); resource-relevant structure is the point.
#pragma once

#include <string>

#include "model/planner.hpp"
#include "rtl/kernel.hpp"

namespace smache::rtl {

struct VerilogOptions {
  std::string module_name = "smache_top";
  /// Emit `// trace:` comments mapping lines back to the plan.
  bool annotate = true;
};

/// Render the complete Verilog module for a plan.
std::string export_verilog(const model::BufferPlan& plan,
                           const VerilogOptions& options = {});

/// Structural self-check used by tests and by export_verilog's
/// postcondition: balanced begin/end, module/endmodule pairing, and no
/// unresolved placeholders. Returns an empty string when clean, otherwise
/// a description of the first problem.
std::string lint_verilog(const std::string& text);

}  // namespace smache::rtl

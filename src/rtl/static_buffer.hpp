// Static buffers (the paper's §III "Static Buffers"): on-chip banks that
// hold a FIXED set of grid elements — one whole row per bank here — instead
// of a moving window, making their footprint independent of the stencil's
// reach. Each bank is transparently double-buffered:
//
//   active copy — read by the gather unit; holds rows of the CURRENT input
//                 grid (work-instance k);
//   shadow copy — written through by FSM-3 as the kernel emits the output
//                 grid (work-instance k+1);
//   swap()      — a 1-bit flip at each work-instance boundary, making the
//                 freshly captured rows the next instance's inputs.
//
// Multi-tap cases (several stencil offsets landing in the same bank in the
// same cycle) are served by replicating the bank — matching the paper's
// note that concurrent BRAM reads synthesise into multiple identical BRAMs.
// Every replica carries both copies; warm-up and write-through update all
// replicas in lock-step from the single write stream (one write port each).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/word.hpp"
#include "mem/bram.hpp"
#include "model/planner.hpp"
#include "sim/reg.hpp"
#include "sim/simulator.hpp"

namespace smache::rtl {

class StaticBufferBank {
 public:
  /// `fields` widens every stored element to an F-word cell, realised as
  /// one BRAM bank per field (per replica, per phase) sharing the
  /// active/shadow select. Word-indexed entry points interpret an index
  /// as cell * F + field, so F = 1 keeps every call site bit-identical.
  StaticBufferBank(sim::Simulator& sim, const std::string& path,
                   const model::StaticBufferSpec& spec,
                   std::size_t fields = 1);

  const model::StaticBufferSpec& spec() const noexcept { return spec_; }
  std::size_t fields() const noexcept { return fields_; }

  /// Issue a synchronous read of CELL `index` on the ACTIVE copy of one
  /// replica (all F field banks read in lock-step); field f is available
  /// from rdata(replica, f) next cycle.
  void read(std::size_t replica, std::size_t index);
  word_t rdata(std::size_t replica, std::size_t field = 0) const;

  /// FSM-3 write-through: store one output-grid WORD (cell * F + field)
  /// into the SHADOW copy of every replica.
  void shadow_write(std::size_t index, word_t value);

  /// Cell-wide shadow write: all F words of `cell` at cell `cell_index`.
  void shadow_write_cell(std::size_t cell_index, const word_t* cell);

  /// FSM-1 warm-up / prefetch: store one input-grid WORD (cell * F +
  /// field — DRAM order) into the ACTIVE copy of every replica.
  void active_write(std::size_t index, word_t value);

  /// Flip active/shadow at a work-instance boundary (takes effect next
  /// cycle, like any register).
  void swap();

  /// Test backdoor: committed WORD (cell * F + field) of the active copy
  /// of replica 0.
  word_t peek_active(std::size_t index) const;

 private:
  // copies_[(replica*2 + phase) * fields + field]; phase selected by
  // active_.
  mem::BramBank& bank(std::size_t replica, bool shadow,
                      std::size_t field) const;

  model::StaticBufferSpec spec_;
  std::size_t fields_;
  sim::Reg<bool> active_;
  std::vector<std::unique_ptr<mem::BramBank>> copies_;
};

/// The full static-buffer set of a plan, built under `<path>/static/...`.
class StaticBufferSet {
 public:
  StaticBufferSet(sim::Simulator& sim, const std::string& path,
                  const model::BufferPlan& plan, std::size_t fields = 1);

  std::size_t count() const noexcept { return banks_.size(); }
  StaticBufferBank& bank(std::size_t i);
  const StaticBufferBank& bank(std::size_t i) const;

  /// Banks whose grid_row matches `row` receive this output element via
  /// write-through (FSM-3 capture path). Single-field form.
  void capture_output(std::size_t row, std::size_t col, word_t value);

  /// Cell-wide capture: all F words of the output cell at (row, col).
  void capture_output_cell(std::size_t row, std::size_t col,
                           const word_t* cell);

  void swap_all();

 private:
  std::vector<std::unique_ptr<StaticBufferBank>> banks_;
};

}  // namespace smache::rtl

// Static buffers (the paper's §III "Static Buffers"): on-chip banks that
// hold a FIXED set of grid elements — one whole row per bank here — instead
// of a moving window, making their footprint independent of the stencil's
// reach. Each bank is transparently double-buffered:
//
//   active copy — read by the gather unit; holds rows of the CURRENT input
//                 grid (work-instance k);
//   shadow copy — written through by FSM-3 as the kernel emits the output
//                 grid (work-instance k+1);
//   swap()      — a 1-bit flip at each work-instance boundary, making the
//                 freshly captured rows the next instance's inputs.
//
// Multi-tap cases (several stencil offsets landing in the same bank in the
// same cycle) are served by replicating the bank — matching the paper's
// note that concurrent BRAM reads synthesise into multiple identical BRAMs.
// Every replica carries both copies; warm-up and write-through update all
// replicas in lock-step from the single write stream (one write port each).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/word.hpp"
#include "mem/bram.hpp"
#include "model/planner.hpp"
#include "sim/reg.hpp"
#include "sim/simulator.hpp"

namespace smache::rtl {

class StaticBufferBank {
 public:
  StaticBufferBank(sim::Simulator& sim, const std::string& path,
                   const model::StaticBufferSpec& spec);

  const model::StaticBufferSpec& spec() const noexcept { return spec_; }

  /// Issue a synchronous read on the ACTIVE copy of one replica; the value
  /// is available from rdata(replica) next cycle.
  void read(std::size_t replica, std::size_t index);
  word_t rdata(std::size_t replica) const;

  /// FSM-3 write-through: store an output-grid element into the SHADOW
  /// copy of every replica.
  void shadow_write(std::size_t index, word_t value);

  /// FSM-1 warm-up / prefetch: store an input-grid element into the ACTIVE
  /// copy of every replica.
  void active_write(std::size_t index, word_t value);

  /// Flip active/shadow at a work-instance boundary (takes effect next
  /// cycle, like any register).
  void swap();

  /// Test backdoor: committed contents of the active copy of replica 0.
  word_t peek_active(std::size_t index) const;

 private:
  // copies_[replica][phase]; phase 0/1 selected by active_.
  mem::BramBank& bank(std::size_t replica, bool shadow) const;

  model::StaticBufferSpec spec_;
  sim::Reg<bool> active_;
  std::vector<std::unique_ptr<mem::BramBank>> copies_;
};

/// The full static-buffer set of a plan, built under `<path>/static/...`.
class StaticBufferSet {
 public:
  StaticBufferSet(sim::Simulator& sim, const std::string& path,
                  const model::BufferPlan& plan);

  std::size_t count() const noexcept { return banks_.size(); }
  StaticBufferBank& bank(std::size_t i);
  const StaticBufferBank& bank(std::size_t i) const;

  /// Banks whose grid_row matches `row` receive this output element via
  /// write-through (FSM-3 capture path).
  void capture_output(std::size_t row, std::size_t col, word_t value);

  void swap_all();

 private:
  std::vector<std::unique_ptr<StaticBufferBank>> banks_;
};

}  // namespace smache::rtl

// The stream (window) buffer with hybrid register/BRAM implementation —
// the paper's §III "Stream Buffers and Hybrid use of registers and BRAM".
//
// Logically this is a delay line of window_len elements; age 1 is the
// newest element, age window_len the oldest. Physically, positions the
// gather unit must see in the same cycle (the stencil taps, plus the entry
// and exit stages) are registers; long runs between taps are BRAM FIFO
// segments bounded by in/out stage registers:
//
//   reg(in_stage) -> BRAM circular buffer (bram_len slots) -> reg(out_stage)
//
// The BRAM pointer discipline gives a fixed residence of bram_len shifts
// per value using one read and one write port per cycle:
//
//   per shift: out_stage.d(bram.rdata());           // read issued last shift
//              bram.write(ptr, in_stage.q());
//              bram.read((ptr + 1) % bram_len);     // for the next shift
//              ptr <- (ptr + 1) % bram_len
//
// bram_len >= 2 is required so the read and write of one shift never touch
// the same slot; the planner guarantees >= 3.
//
// Case-R (RegisterOnly plans) degenerates to all positions in registers.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/word.hpp"
#include "mem/bram.hpp"
#include "model/planner.hpp"
#include "sim/reg.hpp"
#include "sim/simulator.hpp"

namespace smache::rtl {

class StreamBuffer {
 public:
  StreamBuffer(sim::Simulator& sim, const std::string& path,
               const model::BufferPlan& plan);

  std::size_t window_len() const noexcept { return window_len_; }

  /// Schedule one shift: `in` enters at age 1, every stored element ages by
  /// one. Must be called at most once per cycle.
  void shift(word_t in);

  /// Combinational read of a register-mapped age (taps, stages). Ages
  /// inside BRAM segments are not readable — the planner never taps them.
  word_t tap(std::size_t age) const;

  /// True if `age` is register-mapped (readable via tap()).
  bool is_reg_age(std::size_t age) const {
    return reg_index_.count(age) != 0;
  }

 private:
  struct Segment {
    std::size_t in_stage_age;
    std::size_t out_stage_age;
    std::size_t bram_len;
    std::unique_ptr<mem::BramBank> bram;
    std::unique_ptr<sim::Reg<std::uint32_t>> ptr;
  };

  std::size_t window_len_;
  // Register-mapped ages, stored compactly: reg_index_[age] -> slot in regs_.
  std::map<std::size_t, std::size_t> reg_index_;
  std::unique_ptr<sim::RegArray<word_t>> regs_;
  std::vector<std::size_t> reg_ages_;  // slot -> age (sorted ascending)
  std::vector<Segment> segments_;
  // For each register slot: where its next value comes from during a shift.
  enum class Feed : std::uint8_t { Input, PrevReg, Bram };
  struct FeedSpec {
    Feed kind = Feed::Input;
    std::size_t arg = 0;  // PrevReg: source slot; Bram: segment index
  };
  std::vector<FeedSpec> feeds_;
};

}  // namespace smache::rtl

// The stream (window) buffer with hybrid register/BRAM implementation —
// the paper's §III "Stream Buffers and Hybrid use of registers and BRAM".
//
// Logically this is a delay line of window_len elements; age 1 is the
// newest element, age window_len the oldest. Physically, positions the
// gather unit must see in the same cycle (the stencil taps, plus the entry
// and exit stages) are registers; long runs between taps are BRAM FIFO
// segments bounded by in/out stage registers:
//
//   reg(in_stage) -> BRAM circular buffer (bram_len slots) -> reg(out_stage)
//
// The BRAM pointer discipline gives a fixed residence of bram_len shifts
// per value using one read and one write port per cycle:
//
//   per shift: out_stage.d(bram.rdata());           // read issued last shift
//              bram.write(ptr, in_stage.q());
//              bram.read((ptr + 1) % bram_len);     // for the next shift
//              ptr <- (ptr + 1) % bram_len
//
// bram_len >= 2 is required so the read and write of one shift never touch
// the same slot; the planner guarantees >= 3.
//
// Case-R (RegisterOnly plans) degenerates to all positions in registers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/word.hpp"
#include "mem/bram.hpp"
#include "model/planner.hpp"
#include "sim/reg.hpp"
#include "sim/simulator.hpp"

namespace smache::rtl {

class StreamBuffer {
 public:
  /// `fields` widens every window position to an F-word cell (interleaved
  /// in the backing register file and per-field BRAM segment banks); the
  /// plan's geometry stays in cell-unit ages. F = 1 reproduces the
  /// original word-per-cell buffer bit-for-bit, ledger included.
  StreamBuffer(sim::Simulator& sim, const std::string& path,
               const model::BufferPlan& plan, std::size_t fields = 1);

  std::size_t window_len() const noexcept { return window_len_; }
  std::size_t fields() const noexcept { return fields_; }

  /// Schedule one shift: `in` enters at age 1, every stored element ages by
  /// one. Must be called at most once per cycle. Single-field form.
  void shift(word_t in);

  /// Cell-wide shift: `cell` points at the entering cell's F words.
  void shift_cell(const word_t* cell);

  /// Combinational read of a register-mapped age (taps, stages) — field 0.
  /// Ages inside BRAM segments are not readable — the planner never taps
  /// them.
  word_t tap(std::size_t age) const;

  /// WORD slot backing a register-mapped age (the base of the cell's F
  /// consecutive words; field f lives at slot + f). Gather units that emit
  /// the same stencil cases millions of times resolve ages to slots ONCE
  /// (per case, at table-build time) and then read via tap_slot().
  std::size_t slot_of_age(std::size_t age) const {
    SMACHE_REQUIRE_MSG(is_reg_age(age),
                       "slot_of_age on a non-register window position");
    return age_to_slot_[age] * fields_;
  }

  /// Combinational read by precomputed WORD slot (see slot_of_age).
  word_t tap_slot(std::size_t slot) const { return regs_->q(slot); }

  /// True if `age` is register-mapped (readable via tap()).
  bool is_reg_age(std::size_t age) const {
    return age < age_to_slot_.size() && age_to_slot_[age] != kNoSlot;
  }

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  struct Segment {
    std::size_t in_stage_age;
    std::size_t out_stage_age;
    std::size_t bram_len;
    std::size_t in_slot;  // WORD slot of in_stage_age (precomputed)
    /// One BRAM bank per cell field (width stays within the 64-bit bank
    /// limit for any F); all banks share one pointer register, like a
    /// hardware design sharing the address generator across field lanes.
    std::vector<std::unique_ptr<mem::BramBank>> brams;
    std::unique_ptr<sim::Reg<std::uint32_t>> ptr;
  };

  std::size_t window_len_;
  std::size_t fields_;
  // Register-mapped ages: age_to_slot_[age] -> slot in regs_, or kNoSlot.
  // A flat table, not a map — tap() runs once per stencil element per
  // cycle, squarely in the simulation hot loop.
  std::vector<std::size_t> age_to_slot_;
  std::unique_ptr<sim::RegArray<word_t>> regs_;
  std::vector<std::size_t> reg_ages_;  // slot -> age (sorted ascending)
  std::vector<Segment> segments_;
  // For each register slot: where its next value comes from during a shift.
  enum class Feed : std::uint8_t { Input, PrevReg, Bram };
  struct FeedSpec {
    Feed kind = Feed::Input;
    std::size_t arg = 0;  // PrevReg: source slot; Bram: segment index
  };
  std::vector<FeedSpec> feeds_;
  // Run-compressed view of feeds_: because reg slots are sorted by age and
  // distinct, every PrevReg feed is exactly next[slot] = q[slot - 1], so
  // the slots partition into maximal chains, each headed by the shift
  // input or a BRAM segment output and followed by `len - 1` consecutive
  // previous-register copies. A shift is then one head write plus one
  // memcpy per chain (1 + #segments chains) instead of a per-slot switch.
  struct Chain {
    std::size_t start = 0;    // first slot of the chain
    std::size_t len = 0;      // slots in the chain
    std::size_t segment = 0;  // feeding segment (head != Input)
    bool from_input = false;  // head is the shift input
  };
  std::vector<Chain> chains_;
};

}  // namespace smache::rtl

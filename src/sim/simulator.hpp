// The cycle scheduler. See clocked.hpp for the two-phase semantics.
//
// Both phases are activity-gated:
//   * eval — modules that declared quiescence (Module::sleep/sleep_for) are
//     dropped from the active list and not called at all; they return on a
//     wake event (FIFO commit, timer expiry, explicit wake()). When NOTHING
//     is active and nothing is pending commit, whole idle stretches are
//     fast-forwarded in O(1) (cycle numbering is unchanged — the skipped
//     cycles provably had no state change).
//   * commit — state elements that scheduled a write sit on a retained
//     commit set; elements that keep writing pay one flag store per cycle
//     (no queue churn), elements that go quiet are dropped by the next
//     sweep.
// Gating is an optimisation bound by a correctness contract (a sleeping
// module's eval must be observable-state-neutral); set_force_eval_all(true)
// runs every module every cycle so tests can cross-check the two modes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "sim/clocked.hpp"
#include "sim/resources.hpp"
#include "sim/trace.hpp"

namespace smache::sim {

/// Single-clock, two-phase cycle simulator. Non-owning: the test bench or
/// engine owns modules and state elements; they register themselves here on
/// construction and must outlive the Simulator's last step().
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current cycle number (count of completed steps).
  std::uint64_t now() const noexcept { return cycle_; }

  /// Register a behavioural module; evaluated in registration order on
  /// every cycle it is awake (order is irrelevant for correctness, fixed
  /// for determinism — the active list preserves registration order).
  void add_module(Module* m) {
    SMACHE_REQUIRE(m != nullptr);
    SMACHE_REQUIRE_MSG(m->sched_ == nullptr || m->sched_ == this,
                       "module already registered with another simulator");
    m->sched_ = this;
    modules_.push_back(m);
    active_stale_ = true;
    if (spans_on_) init_span_state(m, modules_.size() - 1);
  }

  /// Register a state element. Only elements that schedule a write in a
  /// cycle (they enqueue themselves via Clocked::mark_dirty) are committed.
  void register_clocked(Clocked* c) {
    SMACHE_REQUIRE(c != nullptr);
    SMACHE_REQUIRE_MSG(c->sim_ == nullptr || c->sim_ == this,
                       "state element already registered with another "
                       "simulator");
    c->sim_ = this;
    clocked_.push_back(c);
    // The commit set can never exceed the registered population; sizing it
    // up front keeps mark_dirty a pure append in the hot loop.
    commit_set_.reserve(clocked_.capacity());
  }

  /// Number of registered state elements (reporting/tests).
  std::size_t clocked_count() const noexcept { return clocked_.size(); }

  /// Number of registered modules currently awake (reporting/tests).
  std::size_t awake_module_count() const noexcept {
    std::size_t n = 0;
    for (const Module* m : modules_) n += m->asleep_ ? 0 : 1;
    return n;
  }

  /// Disable activity gating: every module is evaluated every cycle and
  /// sleep()/sleep_for() become no-ops. The equivalence property suite runs
  /// every configuration in both modes and demands bit-identical results.
  void set_force_eval_all(bool on) noexcept {
    force_eval_all_ = on;
    if (on) {
      for (Module* m : modules_) m->wake();
    }
  }
  bool force_eval_all() const noexcept { return force_eval_all_; }

  /// Whether modules are currently allowed to sleep. Trace rows are
  /// observable state sampled inside eval(), so an enabled tracer disables
  /// gating too (enable tracing before the first step for complete traces —
  /// modules already asleep stay asleep until their next wake).
  bool gating_allowed() const noexcept {
    return !force_eval_all_ && !tracer_.enabled();
  }

  /// Resource accounting shared by every primitive built on this simulator.
  ResourceLedger& ledger() noexcept { return ledger_; }
  const ResourceLedger& ledger() const noexcept { return ledger_; }

  /// Shared signal tracer (disabled by default; modules sample through it
  /// unconditionally, which is near-free when disabled).
  Tracer& tracer() noexcept { return tracer_; }
  const Tracer& tracer() const noexcept { return tracer_; }

  /// Shared metrics registry (disabled by default — instrumented code
  /// registers slots unconditionally but every touch is one branch while
  /// disabled, the Tracer contract).
  obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// Module-activity / DRAM-transaction span log for trace export.
  obs::SpanLog& spans() noexcept { return spans_; }
  const obs::SpanLog& spans() const noexcept { return spans_; }

  /// Turn on cycle attribution and the metrics registry. Unlike tracing,
  /// profiling does NOT disable activity gating: attribution classifies
  /// the gated schedule itself (awake / asleep / fast-forwarded), so the
  /// simulated results stay bit-identical to an unprofiled run.
  void enable_profiling() noexcept {
    prof_ = true;
    metrics_.set_enabled(true);
    prof_anchor_ = cycle_;
  }
  bool profiling() const noexcept { return prof_; }

  /// Turn on span recording (module activity intervals; modules with span
  /// sources of their own, e.g. DramModel, key off this flag too). Also
  /// does not affect gating or results.
  void enable_spans() {
    spans_on_ = true;
    spans_.set_enabled(true);
    for (std::size_t i = 0; i < modules_.size(); ++i)
      init_span_state(modules_[i], i);
  }
  bool spans_enabled() const noexcept { return spans_on_; }

  /// End-of-run bookkeeping: close still-open activity spans and fold the
  /// scheduler's attribution counters into the metrics registry —
  ///   sched/cycles/{total,eval,idle,fastforward}
  ///   sched/wakes/{channel,timer,explicit}
  ///   sched/module/<name>/{awake,asleep,fastforward}
  /// Invariants (asserted by tests): eval+idle+fastforward == total, and
  /// per module awake+asleep+fastforward == total. Call once, after the
  /// last step.
  void finalize_observability() {
    if (spans_on_) {
      for (Module* m : modules_)
        if (!m->asleep_) spans_.add(m->obs_lane_, m->obs_awake_since_, cycle_);
    }
    if (!prof_) return;
    const std::uint64_t total = cycle_ - prof_anchor_;
    auto put = [&](const std::string& path, std::uint64_t v) {
      metrics_.set_path(path, obs::MetricKind::Counter, v);
    };
    put("sched/cycles/total", total);
    put("sched/cycles/eval", prof_eval_cycles_);
    put("sched/cycles/idle", prof_idle_cycles_);
    put("sched/cycles/fastforward", prof_ff_cycles_);
    // wake() transitions split into channel (FIFO commit) and explicit;
    // timer wakes bypass wake() and are counted at the firing site.
    put("sched/wakes/channel", wakes_channel_);
    put("sched/wakes/timer", wakes_timer_);
    put("sched/wakes/explicit", wake_transitions_ - wakes_channel_);
    for (std::size_t i = 0; i < modules_.size(); ++i) {
      const Module* m = modules_[i];
      const std::string name = module_obs_name(m, i);
      const std::uint64_t awake = m->obs_awake_cycles_;
      // Fast-forwarded stretches skip every module; a module neither
      // evaluated nor fast-forwarded was asleep (idle-commit cycles
      // included). Clamped only against modules registered mid-profile.
      const std::uint64_t asleep =
          total >= awake + prof_ff_cycles_ ? total - awake - prof_ff_cycles_
                                           : 0;
      put("sched/module/" + name + "/awake", awake);
      put("sched/module/" + name + "/asleep", asleep);
      put("sched/module/" + name + "/fastforward", prof_ff_cycles_);
    }
  }

  /// Advance exactly one cycle: eval phase (awake modules only) then commit
  /// phase (elements with writes scheduled this cycle only). A dedicated
  /// body (no burst bookkeeping, no idle fast-forward — a single idle cycle
  /// IS the fast-forward) keeps the testbench-driven single-step loops of
  /// the primitive benches lean.
  void step() {
    if (modules_.empty()) {
      // Testbench-driven fast path: with no modules registered there can be
      // no timers to fire and no active list to maintain — the cycle is
      // exactly the commit of whatever the testbench scheduled directly on
      // FIFOs/BRAMs/registers. The primitive microbenches live here.
      if (!commit_set_.empty()) commit_retained();
      if (prof_) ++prof_idle_cycles_;
      ++cycle_;
      return;
    }
    if (next_timer_wake_ <= cycle_ || active_stale_) refresh_schedule();
    if (active_.empty()) {
      // Every module is asleep (and no timer is due): evals are provably
      // state-neutral, so only the scheduled commits can do work.
      if (!commit_set_.empty()) commit_retained();
      if (prof_) ++prof_idle_cycles_;
      ++cycle_;
      return;
    }
    Module* const* mods = active_.data();
    const std::size_t m = active_.size();
    for (std::size_t i = 0; i < m; ++i) mods[i]->eval();
    if (prof_) {
      ++prof_eval_cycles_;
      for (std::size_t i = 0; i < m; ++i) ++mods[i]->obs_awake_cycles_;
    }
    commit_retained();
    ++cycle_;
  }

  /// Step until `done()` returns true (checked after each cycle) or
  /// `max_cycles` elapse. Returns the number of cycles stepped.
  /// Throws if the budget is exhausted before completion — a hang in the
  /// simulated design is a bug, never silent.
  std::uint64_t run_until(const std::function<bool()>& done,
                          std::uint64_t max_cycles) {
    return run_until_done(done, [] { return std::uint64_t{1}; }, max_cycles);
  }

  /// Batched completion polling: step in bursts, checking `done()` only
  /// when completion is possible. `min_cycles_to_done()` must return a
  /// LOWER BOUND on the number of further cycles before `done()` can first
  /// become true (0 and 1 both mean "check after the next cycle") — e.g.
  /// outstanding write-backs, DRAM words in flight, or pipeline fill, each
  /// of which retires at most one per cycle. Every cycle is still
  /// evaluated/committed normally (tracing, stats and waveforms see all of
  /// them); only the predicate checks are skipped, so with a sound bound
  /// the results — including the returned cycle count — are bit-identical
  /// to checking after every cycle, while the done/bound callables run
  /// O(completions) instead of O(cycles) times.
  ///
  /// Exactness argument: suppose done() first becomes true after cycle t*.
  /// A sound bound computed at any check cycle c < t* never schedules the
  /// next check beyond t* (that would certify done() false at t*), so the
  /// first check at-or-after t* lands exactly on t* and no cycle beyond t*
  /// is ever stepped. Soundness is the caller's contract; the equivalence
  /// suite (tests/test_sim_equivalence.cpp) pins the engine's bounds to
  /// golden per-cycle-checked counts.
  template <typename Done, typename Bound>
  std::uint64_t run_until_done(Done&& done, Bound&& min_cycles_to_done,
                               std::uint64_t max_cycles) {
    const std::uint64_t start = cycle_;
    for (;;) {
      const std::uint64_t elapsed = cycle_ - start;
      if (elapsed >= max_cycles) break;
      std::uint64_t burst = min_cycles_to_done();
      if (burst < 1) burst = 1;
      const std::uint64_t budget = max_cycles - elapsed;
      if (burst > budget) burst = budget;
      step_burst(burst);
      if (done()) return cycle_ - start;
    }
    throw contract_error("simulation exceeded max_cycles=" +
                         std::to_string(max_cycles) +
                         " without reaching completion");
  }

 private:
  /// Advance `n` cycles. Per cycle: fire due timer wakes, refresh the
  /// active list if membership changed, eval the awake modules, commit the
  /// written state elements. When no module is awake and nothing is pending
  /// commit, the remaining idle cycles up to the next timer wake (or burst
  /// end) are skipped in one jump — provably nothing can change during
  /// them, so this is pure wall-clock savings with identical cycle numbers.
  void step_burst(std::uint64_t n) {
    for (std::uint64_t k = 0; k < n; ++k) {
      if (next_timer_wake_ <= cycle_ || active_stale_) refresh_schedule();
      if (active_.empty() && commit_set_.empty()) {
        std::uint64_t idle = n - k;
        if (next_timer_wake_ != Module::kNoWake)
          idle = std::min(idle, next_timer_wake_ - cycle_);
        if (prof_) prof_ff_cycles_ += idle;
        cycle_ += idle;
        k += idle - 1;
        continue;
      }
      Module* const* mods = active_.data();
      const std::size_t m = active_.size();
      for (std::size_t i = 0; i < m; ++i) mods[i]->eval();
      if (prof_) {
        if (m == 0) {
          ++prof_idle_cycles_;  // commit-only cycle, no module awake
        } else {
          ++prof_eval_cycles_;
          for (std::size_t i = 0; i < m; ++i) ++mods[i]->obs_awake_cycles_;
        }
      }
      commit_retained();
      ++cycle_;
    }
  }

  void commit_retained() {
    // commit() must not schedule new writes, so the set cannot grow here
    // (waking modules during a FIFO commit only flips scheduling flags).
    // The switch executes the three dominant commit shapes inline (see
    // clocked.hpp) — only irregular elements pay a virtual dispatch.
    // Elements that stopped writing are compacted out in the same sweep.
    Clocked** set = commit_set_.data();
    const std::size_t n = commit_set_.size();
    std::size_t keep = 0;
    for (std::size_t i = 0; i < n; ++i) {
      Clocked* c = set[i];
      if (!c->wrote_) {  // went quiet since last sweep: drop, commit nothing
        c->queued_ = false;
        continue;
      }
      c->wrote_ = false;
      if (keep != i) set[keep] = c;
      ++keep;
      switch (c->fast_kind_) {
        case Clocked::FastCommit::Copy:
          // Single-word registers (the common Reg<T> widths) commit with
          // one inline move; only block elements (RegArray/RegGroup/stage
          // pipes) go through memcpy.
          switch (c->fast_bytes_) {
            case 1:
              *static_cast<std::uint8_t*>(c->fast_a_) =
                  *static_cast<const std::uint8_t*>(c->fast_b_);
              break;
            case 4:
              std::memcpy(c->fast_a_, c->fast_b_, 4);
              break;
            case 8:
              std::memcpy(c->fast_a_, c->fast_b_, 8);
              break;
            default:
              std::memcpy(c->fast_a_, c->fast_b_, c->fast_bytes_);
              break;
          }
          break;
        case Clocked::FastCommit::Fifo: {
          auto* f = static_cast<Clocked::FifoCommitCtl*>(c->fast_a_);
          if (*f->pop_pending) {
            *f->head = *f->head + 1 == f->capacity ? 0 : *f->head + 1;
            --*f->size;
            *f->pop_pending = false;
            if (f->producer != nullptr) {
              if (prof_ && f->producer->asleep_) ++wakes_channel_;
              f->producer->wake();
            }
          }
          if (*f->push_pending) {
            ++*f->size;
            *f->push_pending = false;
            if (f->consumer != nullptr) {
              if (prof_ && f->consumer->asleep_) ++wakes_channel_;
              f->consumer->wake();
            }
          }
          break;
        }
        case Clocked::FastCommit::Bram: {
          auto* b = static_cast<Clocked::BramCommitCtl*>(c->fast_a_);
          if (b->read_pending) {
            b->rdata = b->store[b->read_addr];
            b->read_pending = false;
          }
          if (b->write_pending) {
            b->store[b->write_addr] = b->write_value;
            b->write_pending = false;
          }
          break;
        }
        case Clocked::FastCommit::None:
          c->commit();
          break;
      }
    }
    if (keep != n) commit_set_.resize(keep);
  }

  /// Cold path of the per-cycle prologue: fire due timer wakes, then
  /// refresh the active list if membership changed.
  void refresh_schedule() {
    if (next_timer_wake_ <= cycle_) fire_timer_wakes();
    if (active_stale_) rebuild_active();
  }

  void rebuild_active() {
    active_.clear();
    for (Module* m : modules_)
      if (!m->asleep_) active_.push_back(m);
    active_stale_ = false;
  }

  /// Wake every timed sleeper whose deadline arrived; stale entries
  /// (event-woken earlier) are compacted out; the next deadline is the min
  /// of what remains.
  void fire_timer_wakes() {
    std::uint64_t next = Module::kNoWake;
    std::size_t keep = 0;
    for (Module* m : timed_) {
      if (!m->asleep_ || m->wake_at_ == Module::kNoWake) {
        m->timed_queued_ = false;  // already woken by an event
        continue;
      }
      if (m->wake_at_ <= cycle_) {
        m->timed_queued_ = false;
        m->wake_at_ = Module::kNoWake;
        m->asleep_ = false;
        active_stale_ = true;
        if (prof_) ++wakes_timer_;
        // A timer fires at the START of cycle_, so the module evals this
        // very cycle (unlike event wakes, which take effect next cycle).
        if (spans_on_) m->obs_awake_since_ = cycle_;
      } else {
        timed_[keep++] = m;
        next = std::min(next, m->wake_at_);
      }
    }
    timed_.resize(keep);
    next_timer_wake_ = next;
  }

  void note_timed_sleep(Module* m) {
    if (!m->timed_queued_) {
      m->timed_queued_ = true;
      timed_.push_back(m);
    }
    next_timer_wake_ = std::min(next_timer_wake_, m->wake_at_);
  }

  std::string module_obs_name(const Module* m, std::size_t idx) const {
    if (m->obs_path_ != nullptr) return *m->obs_path_;
    return "module" + std::to_string(idx);
  }

  void init_span_state(Module* m, std::size_t idx) {
    m->obs_lane_ = spans_.lane(module_obs_name(m, idx), "awake");
    if (!m->asleep_) m->obs_awake_since_ = cycle_;
  }

  friend class Clocked;  // mark_dirty() appends to commit_set_
  friend class Module;   // sleep/sleep_for/wake flip scheduling state

  std::uint64_t cycle_ = 0;
  std::vector<Module*> modules_;   // all registered, registration order
  std::vector<Module*> active_;    // awake subset, registration order
  std::vector<Module*> timed_;     // sleepers with a wake-at deadline
  std::uint64_t next_timer_wake_ = Module::kNoWake;
  bool active_stale_ = true;
  bool force_eval_all_ = false;
  std::vector<Clocked*> clocked_;
  std::vector<Clocked*> commit_set_;  // retained across cycles
  ResourceLedger ledger_;
  Tracer tracer_;

  // -- observability (enable_profiling / enable_spans) --
  obs::MetricsRegistry metrics_;
  obs::SpanLog spans_;
  bool prof_ = false;
  bool spans_on_ = false;
  std::uint64_t prof_anchor_ = 0;      // cycle profiling was enabled at
  std::uint64_t prof_eval_cycles_ = 0; // >=1 module evaluated
  std::uint64_t prof_idle_cycles_ = 0; // stepped, no module awake
  std::uint64_t prof_ff_cycles_ = 0;   // skipped by the idle fast-forward
  std::uint64_t wakes_channel_ = 0;    // FIFO-commit wakes (asleep targets)
  std::uint64_t wakes_timer_ = 0;      // sleep_for deadline firings
  std::uint64_t wake_transitions_ = 0; // all wake() asleep->awake flips
};

inline void Clocked::mark_dirty() {
  wrote_ = true;
  if (queued_) return;
  SMACHE_ASSERT_MSG(sim_ != nullptr,
                    "state element wrote before registering with a "
                    "Simulator");
  queued_ = true;
  sim_->commit_set_.push_back(this);
}

inline void Module::wake() noexcept {
  if (!asleep_) return;
  asleep_ = false;
  wake_at_ = kNoWake;
  sched_->active_stale_ = true;
  if (sched_->prof_) ++sched_->wake_transitions_;
  // Event wakes take effect for the NEXT eval sweep.
  if (sched_->spans_on_) obs_awake_since_ = sched_->cycle_ + 1;
}

inline void Module::sleep() noexcept {
  if (sched_ == nullptr || !sched_->gating_allowed()) return;
  if (sched_->spans_on_ && !asleep_)
    sched_->spans_.add(obs_lane_, obs_awake_since_, sched_->cycle_ + 1);
  asleep_ = true;
  wake_at_ = kNoWake;
  sched_->active_stale_ = true;
}

inline void Module::sleep_for(std::uint64_t n) noexcept {
  if (sched_ == nullptr || !sched_->gating_allowed()) return;
  if (sched_->spans_on_ && !asleep_)
    sched_->spans_.add(obs_lane_, obs_awake_since_, sched_->cycle_ + 1);
  if (n == 0) n = 1;
  asleep_ = true;
  wake_at_ = sched_->now() + n;
  sched_->active_stale_ = true;
  sched_->note_timed_sleep(this);
}

inline void Module::set_obs_name(std::string_view name) {
  obs_path_ = obs::intern_path(name);
}

}  // namespace smache::sim

// The cycle scheduler. See clocked.hpp for the two-phase semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "sim/clocked.hpp"
#include "sim/resources.hpp"
#include "sim/trace.hpp"

namespace smache::sim {

/// Single-clock, two-phase cycle simulator. Non-owning: the test bench or
/// engine owns modules and state elements; they register themselves here on
/// construction and must outlive the Simulator's last step().
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current cycle number (count of completed steps).
  std::uint64_t now() const noexcept { return cycle_; }

  /// Register a behavioural module; evaluated every cycle in registration
  /// order (order is irrelevant for correctness, fixed for determinism).
  void add_module(Module* m) {
    SMACHE_REQUIRE(m != nullptr);
    modules_.push_back(m);
  }

  /// Register a state element; committed every cycle after all evals.
  void register_clocked(Clocked* c) {
    SMACHE_REQUIRE(c != nullptr);
    clocked_.push_back(c);
  }

  /// Resource accounting shared by every primitive built on this simulator.
  ResourceLedger& ledger() noexcept { return ledger_; }
  const ResourceLedger& ledger() const noexcept { return ledger_; }

  /// Shared signal tracer (disabled by default; modules sample through it
  /// unconditionally, which is near-free when disabled).
  Tracer& tracer() noexcept { return tracer_; }
  const Tracer& tracer() const noexcept { return tracer_; }

  /// Advance exactly one cycle: eval phase then commit phase.
  void step() {
    for (Module* m : modules_) m->eval();
    for (Clocked* c : clocked_) c->commit();
    ++cycle_;
  }

  /// Step until `done()` returns true (checked after each cycle) or
  /// `max_cycles` elapse. Returns the number of cycles stepped.
  /// Throws if the budget is exhausted before completion — a hang in the
  /// simulated design is a bug, never silent.
  std::uint64_t run_until(const std::function<bool()>& done,
                          std::uint64_t max_cycles) {
    const std::uint64_t start = cycle_;
    while (cycle_ - start < max_cycles) {
      step();
      if (done()) return cycle_ - start;
    }
    throw contract_error("simulation exceeded max_cycles=" +
                         std::to_string(max_cycles) +
                         " without reaching completion");
  }

 private:
  std::uint64_t cycle_ = 0;
  std::vector<Module*> modules_;
  std::vector<Clocked*> clocked_;
  ResourceLedger ledger_;
  Tracer tracer_;
};

}  // namespace smache::sim

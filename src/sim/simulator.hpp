// The cycle scheduler. See clocked.hpp for the two-phase semantics.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "sim/clocked.hpp"
#include "sim/resources.hpp"
#include "sim/trace.hpp"

namespace smache::sim {

/// Single-clock, two-phase cycle simulator. Non-owning: the test bench or
/// engine owns modules and state elements; they register themselves here on
/// construction and must outlive the Simulator's last step().
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current cycle number (count of completed steps).
  std::uint64_t now() const noexcept { return cycle_; }

  /// Register a behavioural module; evaluated every cycle in registration
  /// order (order is irrelevant for correctness, fixed for determinism).
  /// Modules live in one flat array walked directly each cycle — for the
  /// common case of a handful of tops this is a short, branch-predictable
  /// loop with no per-cycle allocation.
  void add_module(Module* m) {
    SMACHE_REQUIRE(m != nullptr);
    modules_.push_back(m);
  }

  /// Register a state element. Only elements that schedule a write in a
  /// cycle (they enqueue themselves via Clocked::mark_dirty) are committed.
  void register_clocked(Clocked* c) {
    SMACHE_REQUIRE(c != nullptr);
    SMACHE_REQUIRE_MSG(c->sim_ == nullptr || c->sim_ == this,
                       "state element already registered with another "
                       "simulator");
    c->sim_ = this;
    clocked_.push_back(c);
  }

  /// Number of registered state elements (reporting/tests).
  std::size_t clocked_count() const noexcept { return clocked_.size(); }

  /// Resource accounting shared by every primitive built on this simulator.
  ResourceLedger& ledger() noexcept { return ledger_; }
  const ResourceLedger& ledger() const noexcept { return ledger_; }

  /// Shared signal tracer (disabled by default; modules sample through it
  /// unconditionally, which is near-free when disabled).
  Tracer& tracer() noexcept { return tracer_; }
  const Tracer& tracer() const noexcept { return tracer_; }

  /// Advance exactly one cycle: eval phase then commit phase. The commit
  /// phase visits only elements that scheduled a write this cycle.
  void step() {
    Module* const* mods = modules_.data();
    const std::size_t n = modules_.size();
    for (std::size_t i = 0; i < n; ++i) mods[i]->eval();
    commit_dirty();
    ++cycle_;
  }

  /// Step until `done()` returns true (checked after each cycle) or
  /// `max_cycles` elapse. Returns the number of cycles stepped.
  /// Throws if the budget is exhausted before completion — a hang in the
  /// simulated design is a bug, never silent.
  std::uint64_t run_until(const std::function<bool()>& done,
                          std::uint64_t max_cycles) {
    return run_until_done(done, [] { return std::uint64_t{1}; }, max_cycles);
  }

  /// Batched completion polling: step in bursts, checking `done()` only
  /// when completion is possible. `min_cycles_to_done()` must return a
  /// LOWER BOUND on the number of further cycles before `done()` can first
  /// become true (0 and 1 both mean "check after the next cycle") — e.g.
  /// outstanding write-backs, DRAM words in flight, or pipeline fill, each
  /// of which retires at most one per cycle. Every cycle is still
  /// evaluated/committed normally (tracing, stats and waveforms see all of
  /// them); only the predicate checks are skipped, so with a sound bound
  /// the results — including the returned cycle count — are bit-identical
  /// to checking after every cycle, while the done/bound callables run
  /// O(completions) instead of O(cycles) times.
  ///
  /// Exactness argument: suppose done() first becomes true after cycle t*.
  /// A sound bound computed at any check cycle c < t* never schedules the
  /// next check beyond t* (that would certify done() false at t*), so the
  /// first check at-or-after t* lands exactly on t* and no cycle beyond t*
  /// is ever stepped. Soundness is the caller's contract; the equivalence
  /// suite (tests/test_sim_equivalence.cpp) pins the engine's bounds to
  /// golden per-cycle-checked counts.
  template <typename Done, typename Bound>
  std::uint64_t run_until_done(Done&& done, Bound&& min_cycles_to_done,
                               std::uint64_t max_cycles) {
    const std::uint64_t start = cycle_;
    for (;;) {
      const std::uint64_t elapsed = cycle_ - start;
      if (elapsed >= max_cycles) break;
      std::uint64_t burst = min_cycles_to_done();
      if (burst < 1) burst = 1;
      const std::uint64_t budget = max_cycles - elapsed;
      if (burst > budget) burst = budget;
      step_burst(burst);
      if (done()) return cycle_ - start;
    }
    throw contract_error("simulation exceeded max_cycles=" +
                         std::to_string(max_cycles) +
                         " without reaching completion");
  }

 private:
  /// Advance `n` cycles with the loop-invariant loads (module array base
  /// and length) hoisted out of the per-cycle work.
  void step_burst(std::uint64_t n) {
    Module* const* mods = modules_.data();
    const std::size_t m = modules_.size();
    for (std::uint64_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < m; ++i) mods[i]->eval();
      commit_dirty();
      ++cycle_;
    }
  }

  void commit_dirty() {
    // commit() must not schedule new writes, so dirty_ cannot grow here.
    // The switch executes the three dominant commit shapes inline (see
    // clocked.hpp) — only irregular elements pay a virtual dispatch.
    for (Clocked* c : dirty_) {
      c->queued_ = false;
      switch (c->fast_kind_) {
        case Clocked::FastCommit::Copy:
          std::memcpy(c->fast_a_, c->fast_b_, c->fast_bytes_);
          break;
        case Clocked::FastCommit::Fifo: {
          auto* f = static_cast<Clocked::FifoCommitCtl*>(c->fast_a_);
          if (*f->pop_pending) {
            *f->head = *f->head + 1 == f->capacity ? 0 : *f->head + 1;
            --*f->size;
            *f->pop_pending = false;
          }
          if (*f->push_pending) {
            ++*f->size;
            *f->push_pending = false;
          }
          break;
        }
        case Clocked::FastCommit::Bram: {
          auto* b = static_cast<Clocked::BramCommitCtl*>(c->fast_a_);
          if (b->read_pending) {
            b->rdata = b->store[b->read_addr];
            b->read_pending = false;
          }
          if (b->write_pending) {
            b->store[b->write_addr] = b->write_value;
            b->write_pending = false;
          }
          break;
        }
        case Clocked::FastCommit::None:
          c->commit();
          break;
      }
    }
    dirty_.clear();
  }

  friend class Clocked;  // mark_dirty() appends to dirty_

  std::uint64_t cycle_ = 0;
  std::vector<Module*> modules_;
  std::vector<Clocked*> clocked_;
  std::vector<Clocked*> dirty_;
  ResourceLedger ledger_;
  Tracer tracer_;
};

inline void Clocked::mark_dirty() {
  if (queued_) return;
  SMACHE_ASSERT_MSG(sim_ != nullptr,
                    "state element wrote before registering with a "
                    "Simulator");
  queued_ = true;
  sim_->dirty_.push_back(this);
}

}  // namespace smache::sim

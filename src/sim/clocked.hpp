// Interfaces of the two-phase (eval/commit) cycle simulator.
//
// The substrate mimics an HDL simulator with exclusively non-blocking
// assignment: during a cycle every Module::eval reads only *committed* state
// and schedules next-state writes; after all modules evaluated, every Clocked
// element with a pending write commits atomically. Consequences:
//   * module evaluation order never affects results (like well-formed RTL);
//   * a value written at cycle t is visible at cycle t+1, exactly one
//     flip-flop stage.
//
// Commit scheduling is activity-based: scheduling a write enqueues the
// element on the owning Simulator's per-cycle dirty list (via mark_dirty()),
// and the commit phase walks only that list. Most registered elements are
// idle in any given cycle — a large design registers thousands of state
// elements but touches dozens per cycle — so commits cost O(writes), not
// O(elements). Because commits are non-blocking and each element only
// mutates its own state, dirty-list order (write-scheduling order) cannot
// affect results.
#pragma once

#include <cstddef>
#include <cstdint>

namespace smache::sim {

class Simulator;

/// A state element participating in the clock edge. Implementations must be
/// registered with the Simulator (construction does this), must call
/// mark_dirty() whenever a next-state write is scheduled, and must only
/// mutate observable state inside commit(). commit() is invoked only on
/// cycles where the element marked itself dirty.
class Clocked {
 public:
  // Non-copyable: an element is registered with one simulator, and the
  // inline-commit records below point back into the element itself — a
  // copy would alias the original's registration and dangle its records.
  Clocked() = default;
  Clocked(const Clocked&) = delete;
  Clocked& operator=(const Clocked&) = delete;
  virtual ~Clocked() = default;
  /// Apply all next-state writes scheduled during the eval phase.
  virtual void commit() = 0;

 protected:
  /// Enqueue this element on the owning simulator's dirty list (idempotent
  /// within a cycle). Defined in simulator.hpp, next to the queue it feeds.
  void mark_dirty();

  // -- Inline-commit fast paths ---------------------------------------
  // The commit loop's virtual dispatch is megamorphic (many element types
  // alternate every cycle), so each call risks an indirect-branch miss.
  // The three commit shapes that dominate dirty lists — plain register
  // copy, FIFO pointer update, BRAM port apply — are described by small
  // POD records the loop can execute inline through a predictable switch.
  // commit() must stay equivalent for users that invoke it directly.

  /// Commit record of a FIFO: pop advances head, push publishes the value
  /// already staged in its ring slot. All fields point into the element.
  struct FifoCommitCtl {
    std::size_t* head;
    std::size_t* size;
    std::size_t capacity;
    bool* push_pending;
    bool* pop_pending;
  };

  /// Commit record of a 1R1W synchronous RAM: latch read data (before the
  /// write lands — read-before-write), then apply the write.
  struct BramCommitCtl {
    std::uint64_t* store;
    std::size_t read_addr;
    std::uint64_t rdata;
    std::size_t write_addr;
    std::uint64_t write_value;
    bool read_pending;
    bool write_pending;
  };

  /// A commit that is exactly "copy `bytes` from `src` to `dst`" (a plain
  /// register's q_ <- next_).
  void set_copy_commit(void* dst, const void* src,
                       std::uint32_t bytes) noexcept {
    fast_kind_ = FastCommit::Copy;
    fast_a_ = dst;
    fast_b_ = src;
    fast_bytes_ = bytes;
  }
  void set_fifo_commit(FifoCommitCtl* ctl) noexcept {
    fast_kind_ = FastCommit::Fifo;
    fast_a_ = ctl;
  }
  void set_bram_commit(BramCommitCtl* ctl) noexcept {
    fast_kind_ = FastCommit::Bram;
    fast_a_ = ctl;
  }

 private:
  friend class Simulator;
  enum class FastCommit : std::uint8_t { None, Copy, Fifo, Bram };

  Simulator* sim_ = nullptr;  // set by Simulator::register_clocked
  bool queued_ = false;       // already on this cycle's dirty list
  FastCommit fast_kind_ = FastCommit::None;
  void* fast_a_ = nullptr;
  const void* fast_b_ = nullptr;
  std::uint32_t fast_bytes_ = 0;
};

/// A behavioural block evaluated once per cycle. eval() may read committed
/// state anywhere and schedule writes on Regs/Fifos/Brams; it must not
/// observe its own same-cycle writes.
class Module {
 public:
  virtual ~Module() = default;
  virtual void eval() = 0;
};

}  // namespace smache::sim

// Interfaces of the two-phase (eval/commit) cycle simulator.
//
// The substrate mimics an HDL simulator with exclusively non-blocking
// assignment: during a cycle every Module::eval reads only *committed* state
// and schedules next-state writes; after all modules evaluated, every Clocked
// element with a pending write commits atomically. Consequences:
//   * module evaluation order never affects results (like well-formed RTL);
//   * a value written at cycle t is visible at cycle t+1, exactly one
//     flip-flop stage.
//
// Commit scheduling is activity-based: scheduling a write enqueues the
// element on the owning Simulator's RETAINED commit set (via mark_dirty()),
// and the commit phase walks only that set. Most registered elements are
// idle in any given cycle — a large design registers thousands of state
// elements but touches dozens per cycle — so commits cost O(writes), not
// O(elements). The set is retained across cycles: an element that keeps
// writing stays enqueued (the steady-state hot path is one flag store per
// write, no queue churn), and an element that goes quiet is dropped during
// the first commit sweep that finds it unwritten. Because commits are
// non-blocking and each element only mutates its own state, commit order
// cannot affect results — and committing is skipped entirely for retained
// elements that scheduled nothing this cycle.
//
// Eval scheduling is activity-gated the same way (see Module below): a
// module that declares quiescence is removed from the Simulator's active
// list and its eval() is not called again until a wake event — a FIFO
// commit it subscribed to, a wake-at-cycle timer, or an explicit wake().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace smache::sim {

class Simulator;
class Module;

/// A state element participating in the clock edge. Implementations must be
/// registered with the Simulator (construction does this), must call
/// mark_dirty() whenever a next-state write is scheduled, and must only
/// mutate observable state inside commit(). commit() is invoked only on
/// cycles where the element marked itself dirty (the retained commit set
/// may hold an element one sweep past its last write, but its commit is
/// not re-run).
class Clocked {
 public:
  // Non-copyable: an element is registered with one simulator, and the
  // inline-commit records below point back into the element itself — a
  // copy would alias the original's registration and dangle its records.
  Clocked() = default;
  Clocked(const Clocked&) = delete;
  Clocked& operator=(const Clocked&) = delete;
  virtual ~Clocked() = default;
  /// Apply all next-state writes scheduled during the eval phase.
  virtual void commit() = 0;

 protected:
  /// Enqueue this element on the owning simulator's dirty list (idempotent
  /// within a cycle). Defined in simulator.hpp, next to the queue it feeds.
  void mark_dirty();

  // -- Inline-commit fast paths ---------------------------------------
  // The commit loop's virtual dispatch is megamorphic (many element types
  // alternate every cycle), so each call risks an indirect-branch miss.
  // The three commit shapes that dominate dirty lists — plain register
  // copy, FIFO pointer update, BRAM port apply — are described by small
  // POD records the loop can execute inline through a predictable switch.
  // commit() must stay equivalent for users that invoke it directly.

  /// Commit record of a FIFO: pop advances head, push publishes the value
  /// already staged in its ring slot. All fields point into the element.
  /// `consumer`/`producer` are the commit-time wake targets of the channel
  /// (see Fifo::set_consumer/set_producer): a committed push wakes the
  /// consumer exactly when the data becomes poppable, a committed pop wakes
  /// the producer exactly when the space becomes pushable.
  struct FifoCommitCtl {
    std::size_t* head;
    std::size_t* size;
    std::size_t capacity;
    bool* push_pending;
    bool* pop_pending;
    Module* consumer = nullptr;
    Module* producer = nullptr;
  };

  /// Commit record of a 1R1W synchronous RAM: latch read data (before the
  /// write lands — read-before-write), then apply the write.
  struct BramCommitCtl {
    std::uint64_t* store;
    std::size_t read_addr;
    std::uint64_t rdata;
    std::size_t write_addr;
    std::uint64_t write_value;
    bool read_pending;
    bool write_pending;
  };

  /// A commit that is exactly "copy `bytes` from `src` to `dst`" (a plain
  /// register's q_ <- next_).
  void set_copy_commit(void* dst, const void* src,
                       std::uint32_t bytes) noexcept {
    fast_kind_ = FastCommit::Copy;
    fast_a_ = dst;
    fast_b_ = src;
    fast_bytes_ = bytes;
  }
  void set_fifo_commit(FifoCommitCtl* ctl) noexcept {
    fast_kind_ = FastCommit::Fifo;
    fast_a_ = ctl;
  }
  void set_bram_commit(BramCommitCtl* ctl) noexcept {
    fast_kind_ = FastCommit::Bram;
    fast_a_ = ctl;
  }

 private:
  friend class Simulator;
  enum class FastCommit : std::uint8_t { None, Copy, Fifo, Bram };

  Simulator* sim_ = nullptr;  // set by Simulator::register_clocked
  bool queued_ = false;       // on the simulator's retained commit set
  bool wrote_ = false;        // scheduled a write THIS cycle
  FastCommit fast_kind_ = FastCommit::None;
  void* fast_a_ = nullptr;
  const void* fast_b_ = nullptr;
  std::uint32_t fast_bytes_ = 0;
};

/// A behavioural block evaluated once per cycle while AWAKE. eval() may read
/// committed state anywhere and schedule writes on Regs/Fifos/Brams; it must
/// not observe its own same-cycle writes.
///
/// Activity gating: a module that can prove it is quiescent — its eval()
/// would change NO observable state (registers, FIFOs, BRAMs, DRAM stats,
/// trace rows) until some event — may call sleep() / sleep_for() from inside
/// its eval(). The simulator then skips the module entirely until a wake:
///   * a FIFO the module registered on (Fifo::set_consumer/set_producer)
///     commits a push/pop — fired at COMMIT time, i.e. exactly the cycle
///     boundary where the data/space becomes visible to the module;
///   * the wake-at-cycle timer from sleep_for(n) expires (the module evals
///     again exactly n cycles after the eval that called sleep_for);
///   * any code calls wake() explicitly.
/// Sleeping is always a pure optimisation, never a semantic: the quiescence
/// claim is the module's contract, and Simulator::set_force_eval_all(true)
/// (or an enabled tracer, whose per-cycle sample rows are observable)
/// disables gating so property tests can cross-check the two modes
/// bit-for-bit.
class Module {
 public:
  virtual ~Module() = default;
  virtual void eval() = 0;

  /// True while the scheduler is skipping this module.
  bool asleep() const noexcept { return asleep_; }

  /// Cancel a sleep (idempotent, cheap when awake). Takes effect for the
  /// next eval sweep: a module woken during cycle t's eval or commit phase
  /// is evaluated from cycle t+1 on. Defined in simulator.hpp.
  void wake() noexcept;

  /// Name this module for observability output: per-module cycle
  /// attribution metrics ("sched/module/<name>/...") and span lanes use it
  /// instead of the positional "module<N>" default. Call from the module's
  /// constructor (the name is interned once). Defined in simulator.hpp.
  void set_obs_name(std::string_view name);

 protected:
  /// Declare quiescence until a registered wake event (defined in
  /// simulator.hpp). No-op unless the owning simulator allows gating.
  void sleep() noexcept;

  /// Declare quiescence for AT MOST `n` cycles (n >= 1): the module is
  /// re-evaluated at now()+n even if no event fires earlier. Use with a
  /// sound lower bound on the cycles until the module can next act to get
  /// exact re-check scheduling (same argument as run_until_done).
  void sleep_for(std::uint64_t n) noexcept;

 private:
  friend class Simulator;
  static constexpr std::uint64_t kNoWake = ~std::uint64_t{0};

  Simulator* sched_ = nullptr;     // set by Simulator::add_module
  std::uint64_t wake_at_ = kNoWake;
  bool asleep_ = false;
  bool timed_queued_ = false;  // on the simulator's timed-sleeper list

  // -- observability (see Simulator::enable_profiling/enable_spans; all
  // fields are scheduler-maintained and cost nothing when disabled) --
  const std::string* obs_path_ = nullptr;  // interned display name
  std::uint64_t obs_awake_cycles_ = 0;     // cycles this module evaluated
  std::uint64_t obs_awake_since_ = 0;      // open activity-span start
  std::uint32_t obs_lane_ = 0;             // span lane id
};

}  // namespace smache::sim

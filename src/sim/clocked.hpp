// Interfaces of the two-phase (eval/commit) cycle simulator.
//
// The substrate mimics an HDL simulator with exclusively non-blocking
// assignment: during a cycle every Module::eval reads only *committed* state
// and schedules next-state writes; after all modules evaluated, every Clocked
// element commits atomically. Consequences:
//   * module evaluation order never affects results (like well-formed RTL);
//   * a value written at cycle t is visible at cycle t+1, exactly one
//     flip-flop stage.
#pragma once

#include <cstdint>

namespace smache::sim {

class Simulator;

/// A state element participating in the clock edge. Implementations must be
/// registered with the Simulator (construction does this) and must only
/// mutate observable state inside commit().
class Clocked {
 public:
  virtual ~Clocked() = default;
  /// Apply all next-state writes scheduled during the eval phase.
  virtual void commit() = 0;
};

/// A behavioural block evaluated once per cycle. eval() may read committed
/// state anywhere and schedule writes on Regs/Fifos/Brams; it must not
/// observe its own same-cycle writes.
class Module {
 public:
  virtual ~Module() = default;
  virtual void eval() = 0;
};

}  // namespace smache::sim

#include "sim/vcd.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

namespace smache::sim {

namespace {

/// VCD identifier codes: short printable strings '!', '"', ... '!!', ...
std::string id_code(std::size_t index) {
  std::string code;
  do {
    code += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index != 0);
  return code;
}

std::string to_binary(std::uint64_t value) {
  if (value == 0) return "0";
  std::string bits;
  while (value != 0) {
    bits += static_cast<char>('0' + (value & 1));
    value >>= 1;
  }
  std::reverse(bits.begin(), bits.end());
  return bits;
}

}  // namespace

std::string to_vcd(const Tracer& tracer, const VcdOptions& options) {
  // Collect the signal set and group by scope (text before the first '.').
  struct SignalInfo {
    std::string scope;
    std::string name;
    std::string code;
  };
  std::map<std::string, SignalInfo> signals;
  for (const auto& row : tracer.rows()) {
    if (signals.count(row.signal)) continue;
    const auto dot = row.signal.find('.');
    SignalInfo info;
    info.scope = dot == std::string::npos ? "top" : row.signal.substr(0, dot);
    info.name =
        dot == std::string::npos ? row.signal : row.signal.substr(dot + 1);
    info.code = id_code(signals.size());
    signals.emplace(row.signal, std::move(info));
  }

  std::ostringstream out;
  out << "$date smache simulation $end\n";
  out << "$version smache tracer $end\n";
  out << "$timescale " << options.timescale << " $end\n";

  // Scope declarations grouped by module.
  std::map<std::string, std::vector<const SignalInfo*>> by_scope;
  std::map<std::string, const SignalInfo*> ordered;
  for (const auto& [full, info] : signals) ordered[full] = &info;
  for (const auto& [full, info] : ordered) by_scope[info->scope].push_back(info);
  for (const auto& [scope, sigs] : by_scope) {
    out << "$scope module " << scope << " $end\n";
    for (const SignalInfo* s : sigs)
      out << "$var wire " << options.width << ' ' << s->code << ' '
          << s->name << " $end\n";
    out << "$upscope $end\n";
  }
  out << "$enddefinitions $end\n";

  // Change-only dump, rows replayed in cycle order (the tracer appends in
  // simulation order, but group identical timestamps together).
  std::map<std::string, std::uint64_t> last_value;
  std::uint64_t current_time = ~std::uint64_t{0};
  for (const auto& row : tracer.rows()) {
    const auto it = last_value.find(row.signal);
    if (it != last_value.end() && it->second == row.value) continue;
    last_value[row.signal] = row.value;
    if (row.cycle != current_time) {
      out << '#' << row.cycle << '\n';
      current_time = row.cycle;
    }
    out << 'b' << to_binary(row.value) << ' '
        << signals.at(row.signal).code << '\n';
  }
  return out.str();
}

}  // namespace smache::sim

// Optional cycle trace: modules sample named signals each cycle; the trace
// renders to CSV for debugging pipelines. Disabled tracers are near-free
// (one branch per sample), so RTL modules can sample unconditionally.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace smache::sim {

class Tracer {
 public:
  /// A disabled tracer drops samples.
  explicit Tracer(bool enabled = false) : enabled_(enabled) {}

  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  void sample(std::uint64_t cycle, const char* signal, std::uint64_t value) {
    if (!enabled_) return;
    rows_.push_back(Row{cycle, signal, value});
  }

  struct Row {
    std::uint64_t cycle;
    std::string signal;
    std::uint64_t value;
  };

  const std::vector<Row>& rows() const noexcept { return rows_; }
  std::string to_csv() const;
  void clear() noexcept { rows_.clear(); }

 private:
  bool enabled_;
  std::vector<Row> rows_;
};

}  // namespace smache::sim

// Clocked FIFO channel — the only way modules communicate in this substrate.
//
// Semantics (all hardware-like):
//   * at most one push and one pop per cycle (one write port, one read port);
//   * a value pushed at cycle t becomes poppable at cycle t+1;
//   * can_push() is based on committed occupancy plus this cycle's pending
//     push, NOT on this cycle's pop — like a FIFO whose `full` flag is
//     registered. This makes producer/consumer evaluation order irrelevant;
//   * capacity must be >= 1.
//
// Resource accounting: FIFOs charge `capacity * bits_each` register bits
// plus head/tail pointers. Design-level FIFOs that should synthesise into
// BRAM use mem::BramBank-based structures instead; this class models the
// small register-based skid/channel FIFOs.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "sim/clocked.hpp"
#include "sim/simulator.hpp"
#include "sim/reg.hpp"

namespace smache::sim {

template <typename T>
class Fifo : public Clocked {
 public:
  Fifo(Simulator& sim, std::string path, std::size_t capacity,
       std::uint32_t bits_each = default_bits<T>())
      : capacity_(capacity) {
    SMACHE_REQUIRE(capacity >= 1);
    sim.register_clocked(this);
    const std::uint64_t ptr_bits = 2ull * (addr_bits(capacity) + 1);
    sim.ledger().add(std::move(path), ResKind::RegisterBits,
                     static_cast<std::uint64_t>(capacity) * bits_each +
                         ptr_bits);
  }

  std::size_t capacity() const noexcept { return capacity_; }
  /// Committed occupancy (start-of-cycle view).
  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }

  /// True iff a push this cycle is accepted. Ignores this cycle's pop by
  /// design (registered-full semantics).
  bool can_push() const noexcept {
    return !push_pending_ && items_.size() < capacity_;
  }

  /// Schedule a push; the value is visible to the consumer next cycle.
  void push(const T& v) {
    SMACHE_REQUIRE_MSG(can_push(), "fifo overflow or double push in a cycle");
    pending_value_ = v;
    push_pending_ = true;
  }

  /// True iff a pop this cycle would return data.
  bool can_pop() const noexcept { return !pop_pending_ && !items_.empty(); }

  /// Committed front element; valid only when can_pop().
  const T& front() const {
    SMACHE_REQUIRE(!items_.empty());
    return items_.front();
  }

  /// Schedule a pop of the front element and return it.
  T pop() {
    SMACHE_REQUIRE_MSG(can_pop(), "fifo underflow or double pop in a cycle");
    pop_pending_ = true;
    return items_.front();
  }

  void commit() override {
    if (pop_pending_) {
      items_.pop_front();
      pop_pending_ = false;
    }
    if (push_pending_) {
      items_.push_back(pending_value_);
      push_pending_ = false;
    }
  }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
  T pending_value_{};
  bool push_pending_ = false;
  bool pop_pending_ = false;
};

}  // namespace smache::sim

// Clocked FIFO channel — the only way modules communicate in this substrate.
//
// Semantics (all hardware-like):
//   * at most one push and one pop per cycle (one write port, one read port);
//   * a value pushed at cycle t becomes poppable at cycle t+1;
//   * can_push() is based on committed occupancy plus this cycle's pending
//     push, NOT on this cycle's pop — like a FIFO whose `full` flag is
//     registered. This makes producer/consumer evaluation order irrelevant;
//   * capacity must be >= 1.
//
// Storage is a fixed-capacity inline ring buffer (sim::RingBuffer): the
// depth is known at construction, exactly like the synthesised FIFO, so
// occupancy changes are pointer arithmetic on one flat allocation — no
// per-push heap traffic in the cycle hot loop.
//
// Resource accounting: FIFOs charge `capacity * bits_each` register bits
// plus head/tail pointers. Design-level FIFOs that should synthesise into
// BRAM use mem::BramBank-based structures instead; this class models the
// small register-based skid/channel FIFOs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "sim/clocked.hpp"
#include "sim/simulator.hpp"
#include "sim/reg.hpp"
#include "sim/ring_buffer.hpp"

namespace smache::sim {

template <typename T>
class Fifo : public Clocked {
 public:
  Fifo(Simulator& sim, std::string_view path, std::size_t capacity,
       std::uint32_t bits_each = default_bits<T>())
      : items_(capacity),
        commit_ctl_{items_.head_ptr(), items_.size_ptr(), capacity,
                    &push_pending_, &pop_pending_, nullptr, nullptr} {
    SMACHE_REQUIRE(capacity >= 1);
    sim.register_clocked(this);
    set_fifo_commit(&commit_ctl_);
    const std::uint64_t ptr_bits = 2ull * (addr_bits(capacity) + 1);
    sim.ledger().add(path, ResKind::RegisterBits,
                     static_cast<std::uint64_t>(capacity) * bits_each +
                         ptr_bits);
    mreg_ = &sim.metrics();
    hwm_slot_ = mreg_->slot(path, "/hwm", obs::MetricKind::MaxWatermark);
  }

  /// Register the module that consumes this channel: a committed push
  /// wakes it on exactly the cycle boundary where the data becomes
  /// poppable. Commit-time (not schedule-time) firing is what makes the
  /// sleep protocol race-free: a consumer that checks can_pop(), sees
  /// nothing, and sleeps in the same cycle a producer pushes is still
  /// woken — by the commit that publishes the value.
  void set_consumer(Module* m) noexcept { commit_ctl_.consumer = m; }
  /// Register the module that produces into this channel: a committed pop
  /// wakes it when the freed slot becomes pushable (back-pressure relief).
  void set_producer(Module* m) noexcept { commit_ctl_.producer = m; }

  std::size_t capacity() const noexcept { return items_.capacity(); }
  /// Committed occupancy (start-of-cycle view).
  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }

  /// True iff a push this cycle is accepted. Ignores this cycle's pop by
  /// design (registered-full semantics).
  bool can_push() const noexcept { return !push_pending_ && !items_.full(); }

  /// Schedule a push; the value is visible to the consumer next cycle.
  /// The value is staged directly in its final ring slot (readers only see
  /// committed occupancy, and the slot index survives a same-cycle pop), so
  /// commit() publishes it without a second copy.
  void push(const T& v) { push_slot() = v; }

  /// Zero-copy variant of push() for wide messages: schedules the push and
  /// returns the staging slot for the producer to fill in place before the
  /// end of its eval. The slot holds stale bytes from an earlier occupant —
  /// the producer owns writing every field the consumer will read.
  T& push_slot() {
    SMACHE_REQUIRE_MSG(can_push(), "fifo overflow or double push in a cycle");
    push_pending_ = true;
    mark_dirty();
    // Occupancy high-water mark (<path>/hwm): committed size plus the push
    // being scheduled. The occupancy math stays behind the enabled check
    // so the disabled path is one branch, not a computation.
    if (mreg_->enabled())
      mreg_->watermark(hwm_slot_,
                       static_cast<std::uint64_t>(items_.size()) + 1);
    return items_.staging_back();
  }

  /// True iff a pop this cycle would return data.
  bool can_pop() const noexcept { return !pop_pending_ && !items_.empty(); }

  /// Committed front element; valid only when can_pop().
  const T& front() const { return items_.front(); }

  /// Schedule a pop of the front element and return it.
  T pop() {
    SMACHE_REQUIRE_MSG(can_pop(), "fifo underflow or double pop in a cycle");
    pop_pending_ = true;
    mark_dirty();
    return items_.front();
  }

  /// Zero-copy variant of pop() for wide messages: schedules the pop
  /// without returning the element. Pair with front(), whose reference
  /// stays valid until the commit phase.
  void drop() {
    SMACHE_REQUIRE_MSG(can_pop(), "fifo underflow or double pop in a cycle");
    pop_pending_ = true;
    mark_dirty();
  }

  void commit() override {
    // Kept equivalent to the Simulator's inline FIFO fast path, including
    // the commit-time wake notifications.
    if (pop_pending_) {
      items_.pop_front();
      pop_pending_ = false;
      if (commit_ctl_.producer != nullptr) commit_ctl_.producer->wake();
    }
    if (push_pending_) {
      items_.commit_back();
      push_pending_ = false;
      if (commit_ctl_.consumer != nullptr) commit_ctl_.consumer->wake();
    }
  }

 private:
  RingBuffer<T> items_;
  bool push_pending_ = false;
  bool pop_pending_ = false;
  FifoCommitCtl commit_ctl_;
  obs::MetricsRegistry* mreg_ = nullptr;  // owned by the Simulator
  obs::MetricsRegistry::Slot hwm_slot_ = 0;
};

}  // namespace smache::sim

#include "sim/resources.hpp"

#include <deque>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <sstream>

namespace smache::sim {

namespace {

/// Process-wide path pool. A deque gives stable element addresses, so the
/// map's string_view keys (and every pointer handed out) stay valid as the
/// pool grows. Entries are never freed: the population is the set of
/// distinct hierarchy paths the process ever elaborates, which is fixed by
/// the design structures, not by how many runs execute.
struct PathPool {
  std::shared_mutex mu;
  std::deque<std::string> storage;
  std::unordered_map<std::string_view, const std::string*> map;
};

PathPool& pool() {
  static PathPool p;
  return p;
}

}  // namespace

const std::string* intern_path(std::string_view path) {
  PathPool& p = pool();
  {
    // After the first elaboration of a design shape, every lookup hits —
    // concurrent sweep workers share the pool read-side, so interning is
    // not a serialization point for parallel elaborations.
    std::shared_lock<std::shared_mutex> read(p.mu);
    const auto it = p.map.find(path);
    if (it != p.map.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> write(p.mu);
  const auto it = p.map.find(path);  // re-check: raced inserts are benign
  if (it != p.map.end()) return it->second;
  p.storage.emplace_back(path);
  const std::string* interned = &p.storage.back();
  p.map.emplace(std::string_view(*interned), interned);
  return interned;
}

void ResourceLedger::add(std::string_view path, ResKind kind,
                         std::uint64_t amount) {
  const std::string* interned = intern_path(path);
  auto [it, inserted] = index_.try_emplace(
      interned, static_cast<std::uint32_t>(slots_.size()));
  if (inserted) slots_.push_back(Slot{interned, {}});
  slots_[it->second].amount[static_cast<std::size_t>(kind)] += amount;
}

bool ResourceLedger::prefix_matches(std::string_view path,
                                    std::string_view prefix) {
  if (prefix.empty()) return true;
  if (path.size() < prefix.size()) return false;
  if (path.substr(0, prefix.size()) != prefix) return false;
  // Segment-aware: the character after the prefix must be a separator or
  // end-of-string, so "a/b" does not match "a/bc".
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

std::uint64_t ResourceLedger::total(ResKind kind,
                                    std::string_view prefix) const {
  const std::size_t k = static_cast<std::size_t>(kind);
  std::uint64_t sum = 0;
  for (const auto& s : slots_)
    if (s.amount[k] != 0 && prefix_matches(*s.path, prefix))
      sum += s.amount[k];
  return sum;
}

std::vector<ResEntry> ResourceLedger::entries(std::string_view prefix) const {
  std::vector<ResEntry> out;
  for (const auto& s : slots_) {
    if (!prefix_matches(*s.path, prefix)) continue;
    for (std::size_t k = 0; k < kResKindCount; ++k)
      if (s.amount[k] != 0)
        out.push_back(
            ResEntry{*s.path, static_cast<ResKind>(k), s.amount[k]});
  }
  return out;
}

std::string ResourceLedger::report() const {
  // Aggregate by first path segment.
  struct Sums {
    std::uint64_t reg = 0, bram = 0, blocks = 0;
  };
  std::map<std::string, Sums, std::less<>> groups;
  for (const auto& slot : slots_) {
    const std::string_view path = *slot.path;
    const auto slash = path.find('/');
    const std::string_view head =
        slash == std::string_view::npos ? path : path.substr(0, slash);
    auto it = groups.find(head);
    if (it == groups.end())
      it = groups.emplace(std::string(head), Sums{}).first;
    auto& s = it->second;
    s.reg += slot.amount[static_cast<std::size_t>(ResKind::RegisterBits)];
    s.bram += slot.amount[static_cast<std::size_t>(ResKind::BramBits)];
    s.blocks += slot.amount[static_cast<std::size_t>(ResKind::BramBlocks)];
  }
  std::ostringstream out;
  out << "resource report (bits):\n";
  for (const auto& [name, s] : groups) {
    out << "  " << name << ": registers=" << s.reg << " bram=" << s.bram;
    if (s.blocks) out << " m20k=" << s.blocks;
    out << '\n';
  }
  return out.str();
}

void ResourceLedger::clear() {
  slots_.clear();
  index_.clear();
}

}  // namespace smache::sim

#include "sim/resources.hpp"

#include <map>
#include <sstream>

#include "obs/metrics.hpp"

namespace smache::sim {

// The process-wide path pool moved to the observability layer so ledger
// paths and metric paths intern into ONE pool (a module's stall counter
// "smache/stall/dram_wait" shares the "smache" spelling with its ledger
// charges). This forwarder keeps the historical sim-layer entry point.
const std::string* intern_path(std::string_view path) {
  return obs::intern_path(path);
}

void ResourceLedger::add(std::string_view path, ResKind kind,
                         std::uint64_t amount) {
  const std::string* interned = intern_path(path);
  auto [it, inserted] = index_.try_emplace(
      interned, static_cast<std::uint32_t>(slots_.size()));
  if (inserted) slots_.push_back(Slot{interned, {}});
  slots_[it->second].amount[static_cast<std::size_t>(kind)] += amount;
}

bool ResourceLedger::prefix_matches(std::string_view path,
                                    std::string_view prefix) {
  if (prefix.empty()) return true;
  if (path.size() < prefix.size()) return false;
  if (path.substr(0, prefix.size()) != prefix) return false;
  // Segment-aware: the character after the prefix must be a separator or
  // end-of-string, so "a/b" does not match "a/bc".
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

std::uint64_t ResourceLedger::total(ResKind kind,
                                    std::string_view prefix) const {
  const std::size_t k = static_cast<std::size_t>(kind);
  std::uint64_t sum = 0;
  for (const auto& s : slots_)
    if (s.amount[k] != 0 && prefix_matches(*s.path, prefix))
      sum += s.amount[k];
  return sum;
}

std::vector<ResEntry> ResourceLedger::entries(std::string_view prefix) const {
  std::vector<ResEntry> out;
  for (const auto& s : slots_) {
    if (!prefix_matches(*s.path, prefix)) continue;
    for (std::size_t k = 0; k < kResKindCount; ++k)
      if (s.amount[k] != 0)
        out.push_back(
            ResEntry{*s.path, static_cast<ResKind>(k), s.amount[k]});
  }
  return out;
}

std::string ResourceLedger::report() const {
  // Aggregate by first path segment.
  struct Sums {
    std::uint64_t reg = 0, bram = 0, blocks = 0;
  };
  std::map<std::string, Sums, std::less<>> groups;
  for (const auto& slot : slots_) {
    const std::string_view path = *slot.path;
    const auto slash = path.find('/');
    const std::string_view head =
        slash == std::string_view::npos ? path : path.substr(0, slash);
    auto it = groups.find(head);
    if (it == groups.end())
      it = groups.emplace(std::string(head), Sums{}).first;
    auto& s = it->second;
    s.reg += slot.amount[static_cast<std::size_t>(ResKind::RegisterBits)];
    s.bram += slot.amount[static_cast<std::size_t>(ResKind::BramBits)];
    s.blocks += slot.amount[static_cast<std::size_t>(ResKind::BramBlocks)];
  }
  std::ostringstream out;
  out << "resource report (bits):\n";
  for (const auto& [name, s] : groups) {
    out << "  " << name << ": registers=" << s.reg << " bram=" << s.bram;
    if (s.blocks) out << " m20k=" << s.blocks;
    out << '\n';
  }
  return out.str();
}

void ResourceLedger::clear() {
  slots_.clear();
  index_.clear();
}

}  // namespace smache::sim

#include "sim/resources.hpp"

#include <map>
#include <sstream>

namespace smache::sim {

void ResourceLedger::add(std::string path, ResKind kind,
                         std::uint64_t amount) {
  entries_.push_back(ResEntry{std::move(path), kind, amount});
}

bool ResourceLedger::prefix_matches(std::string_view path,
                                    std::string_view prefix) {
  if (prefix.empty()) return true;
  if (path.size() < prefix.size()) return false;
  if (path.substr(0, prefix.size()) != prefix) return false;
  // Segment-aware: the character after the prefix must be a separator or
  // end-of-string, so "a/b" does not match "a/bc".
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

std::uint64_t ResourceLedger::total(ResKind kind,
                                    std::string_view prefix) const {
  std::uint64_t sum = 0;
  for (const auto& e : entries_)
    if (e.kind == kind && prefix_matches(e.path, prefix)) sum += e.amount;
  return sum;
}

std::vector<ResEntry> ResourceLedger::entries(std::string_view prefix) const {
  std::vector<ResEntry> out;
  for (const auto& e : entries_)
    if (prefix_matches(e.path, prefix)) out.push_back(e);
  return out;
}

std::string ResourceLedger::report() const {
  // Aggregate by first path segment.
  struct Sums {
    std::uint64_t reg = 0, bram = 0, blocks = 0;
  };
  std::map<std::string, Sums> groups;
  for (const auto& e : entries_) {
    const auto slash = e.path.find('/');
    const std::string head =
        slash == std::string::npos ? e.path : e.path.substr(0, slash);
    auto& s = groups[head];
    switch (e.kind) {
      case ResKind::RegisterBits: s.reg += e.amount; break;
      case ResKind::BramBits: s.bram += e.amount; break;
      case ResKind::BramBlocks: s.blocks += e.amount; break;
    }
  }
  std::ostringstream out;
  out << "resource report (bits):\n";
  for (const auto& [name, s] : groups) {
    out << "  " << name << ": registers=" << s.reg << " bram=" << s.bram;
    if (s.blocks) out << " m20k=" << s.blocks;
    out << '\n';
  }
  return out.str();
}

void ResourceLedger::clear() { entries_.clear(); }

}  // namespace smache::sim

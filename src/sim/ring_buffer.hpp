// Fixed-capacity inline ring buffer — the storage behind sim::Fifo and the
// DRAM transit pipe. Capacity is known at construction (hardware FIFOs have
// a synthesised depth), so the backing store is one flat allocation made
// once; push/pop are two or three scalar ops with no pointer chasing, unlike
// the chunked std::deque they replace in the simulation hot loop.
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.hpp"

namespace smache::sim {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    SMACHE_REQUIRE(capacity >= 1);
  }

  std::size_t capacity() const noexcept { return buf_.size(); }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == buf_.size(); }

  const T& front() const {
    SMACHE_REQUIRE(size_ > 0);
    return buf_[head_];
  }

  void push_back(const T& v) {
    SMACHE_REQUIRE(size_ < buf_.size());
    buf_[wrap(head_ + size_)] = v;
    ++size_;
  }

  void pop_front() {
    SMACHE_REQUIRE(size_ > 0);
    head_ = wrap(head_ + 1);
    --size_;
  }

  /// The slot just past the back — writable staging space for a two-phase
  /// producer: fill it any time before commit_back(), which publishes it as
  /// the new back element. The slot index is invariant under a same-phase
  /// pop_front() (head and size move in lockstep), so a FIFO can stage its
  /// pending push here during eval and commit pop-then-push safely.
  T& staging_back() {
    SMACHE_REQUIRE(size_ < buf_.size());
    return buf_[wrap(head_ + size_)];
  }
  void commit_back() {
    SMACHE_REQUIRE(size_ < buf_.size());
    ++size_;
  }

  /// Element `i` positions behind the front (i == 0 is the front).
  const T& at(std::size_t i) const {
    SMACHE_REQUIRE(i < size_);
    return buf_[wrap(head_ + i)];
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

  /// Raw pointer access to the cursor fields, for owners that register an
  /// inline-commit record (sim::Clocked::FifoCommitCtl) over this buffer.
  std::size_t* head_ptr() noexcept { return &head_; }
  std::size_t* size_ptr() noexcept { return &size_; }

 private:
  std::size_t wrap(std::size_t i) const noexcept {
    // One conditional subtract instead of a divide: i < 2 * capacity here.
    return i >= buf_.size() ? i - buf_.size() : i;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace smache::sim

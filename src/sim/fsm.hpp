// Small helper for finite-state machines: wraps a Reg<Enum> with readable
// state queries and a transition log that tests can assert on. The Smache
// controller's three concurrent FSMs (prefetch / gather / write-back) are
// built on this.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/bits.hpp"
#include "sim/reg.hpp"
#include "sim/simulator.hpp"

namespace smache::sim {

template <typename Enum>
class FsmState {
 public:
  /// `state_count` sizes the synthesis width (one-hot would be state_count
  /// bits; we charge the denser binary encoding, matching how Quartus maps
  /// small FSMs under register pressure).
  FsmState(Simulator& sim, std::string_view path, Enum initial,
           std::uint32_t state_count)
      : sim_(sim),
        state_(sim, path, initial, smache::addr_bits(state_count)) {}

  Enum state() const noexcept { return state_.q(); }
  bool is(Enum s) const noexcept { return state_.q() == s; }

  /// Schedule a transition for the next cycle; records it in the log.
  void go(Enum s) {
    state_.d(s);
    if (log_enabled_)
      log_.push_back(Transition{sim_.now(), state_.q(), s});
  }

  struct Transition {
    std::uint64_t cycle;
    Enum from;
    Enum to;
  };

  void enable_log(bool on = true) noexcept { log_enabled_ = on; }
  const std::vector<Transition>& log() const noexcept { return log_; }
  void clear_log() noexcept { log_.clear(); }

 private:
  Simulator& sim_;
  Reg<Enum> state_;
  bool log_enabled_ = false;
  std::vector<Transition> log_;
};

}  // namespace smache::sim

#include "sim/trace.hpp"

namespace smache::sim {

namespace {

// RFC-4180 quoting, matching sweep::emit_csv: quote only when the field
// contains a comma, quote or newline; embedded quotes double.
void append_csv_field(std::string& out, const std::string& s) {
  const bool needs = s.find_first_of(",\"\n") != std::string::npos;
  if (!needs) {
    out += s;
    return;
  }
  out += '"';
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
}

}  // namespace

std::string Tracer::to_csv() const {
  std::string out;
  // Rows are "cycle,signal,value\n"; ~24 bytes covers typical numeric
  // widths, so one up-front reservation absorbs the append loop.
  out.reserve(16 + rows_.size() * 24);
  out += "cycle,signal,value\n";
  for (const auto& r : rows_) {
    out += std::to_string(r.cycle);
    out += ',';
    append_csv_field(out, r.signal);
    out += ',';
    out += std::to_string(r.value);
    out += '\n';
  }
  return out;
}

}  // namespace smache::sim

#include "sim/trace.hpp"

#include <sstream>

namespace smache::sim {

std::string Tracer::to_csv() const {
  std::ostringstream out;
  out << "cycle,signal,value\n";
  for (const auto& r : rows_)
    out << r.cycle << ',' << r.signal << ',' << r.value << '\n';
  return out.str();
}

}  // namespace smache::sim

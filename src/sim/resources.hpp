// Hierarchical resource accounting — the simulator's equivalent of a
// synthesis report. Every hardware primitive (register, BRAM bank) registers
// the bits it would occupy on the FPGA under a hierarchical path such as
// "smache/stream_buffer/taps". Reports then aggregate by path prefix, which
// is how the Table I benchmark splits static-buffer (sc) from
// stream-buffer (sm) contributions.
//
// Paths are INTERNED in a process-wide pool: the first elaboration that
// charges "smache/ctrl/instance" stores the string once, and every later
// charge — same run or any later Engine run — resolves to the same pointer
// without allocating. Charges to the same (path, kind) accumulate in a
// compact per-ledger slot table, so a ledger holds one slot per distinct
// path instead of one heap string per add() call. This removed the
// per-run elaboration allocation churn that cost ~5% of
// BM_EngineCyclesPerSecond (ROADMAP PR-3 follow-up b).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace smache::sim {

/// Kinds of accountable resources. RegisterBits and BramBits correspond to
/// the paper's R and B columns; BramBlocks is the M20K block count derived
/// by the device model.
enum class ResKind { RegisterBits, BramBits, BramBlocks };

inline constexpr std::size_t kResKindCount = 3;

struct ResEntry {
  std::string path;
  ResKind kind;
  std::uint64_t amount;
};

/// Intern `path` in the process-wide path pool and return its canonical
/// string (stable for the process lifetime). Thread-safe; the pool is
/// bounded by the number of DISTINCT hierarchy paths ever charged, not by
/// the number of runs.
const std::string* intern_path(std::string_view path);

class ResourceLedger {
 public:
  /// Record `amount` units of `kind` under `path`. Amounts accumulate; the
  /// same path may be charged repeatedly (e.g. one entry per register).
  void add(std::string_view path, ResKind kind, std::uint64_t amount);

  /// Sum of all amounts of `kind` whose path starts with `prefix`
  /// ("" sums everything). Prefix matching is segment-aware: "a/b" matches
  /// "a/b" and "a/b/c" but not "a/bc".
  std::uint64_t total(ResKind kind, std::string_view prefix = "") const;

  /// All accumulated (path, kind) sums under a prefix, one entry per pair,
  /// in first-charge path order (for detailed reports).
  std::vector<ResEntry> entries(std::string_view prefix = "") const;

  /// Multi-line human-readable report of totals per top-level group.
  std::string report() const;

  void clear();

 private:
  /// One distinct path with its per-kind accumulated amounts.
  struct Slot {
    const std::string* path;
    std::array<std::uint64_t, kResKindCount> amount{};
  };

  static bool prefix_matches(std::string_view path, std::string_view prefix);
  std::vector<Slot> slots_;  // first-charge order
  std::unordered_map<const std::string*, std::uint32_t> index_;
};

}  // namespace smache::sim

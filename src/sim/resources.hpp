// Hierarchical resource accounting — the simulator's equivalent of a
// synthesis report. Every hardware primitive (register, BRAM bank) registers
// the bits it would occupy on the FPGA under a hierarchical path such as
// "smache/stream_buffer/taps". Reports then aggregate by path prefix, which
// is how the Table I benchmark splits static-buffer (sc) from
// stream-buffer (sm) contributions.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace smache::sim {

/// Kinds of accountable resources. RegisterBits and BramBits correspond to
/// the paper's R and B columns; BramBlocks is the M20K block count derived
/// by the device model.
enum class ResKind { RegisterBits, BramBits, BramBlocks };

struct ResEntry {
  std::string path;
  ResKind kind;
  std::uint64_t amount;
};

class ResourceLedger {
 public:
  /// Record `amount` units of `kind` under `path`. Amounts accumulate; the
  /// same path may be charged repeatedly (e.g. one entry per register).
  void add(std::string path, ResKind kind, std::uint64_t amount);

  /// Sum of all amounts of `kind` whose path starts with `prefix`
  /// ("" sums everything). Prefix matching is segment-aware: "a/b" matches
  /// "a/b" and "a/b/c" but not "a/bc".
  std::uint64_t total(ResKind kind, std::string_view prefix = "") const;

  /// All entries under a prefix (for detailed reports).
  std::vector<ResEntry> entries(std::string_view prefix = "") const;

  /// Multi-line human-readable report of totals per top-level group.
  std::string report() const;

  void clear();

 private:
  static bool prefix_matches(std::string_view path, std::string_view prefix);
  std::vector<ResEntry> entries_;
};

}  // namespace smache::sim

// VCD (Value Change Dump) rendering of a Tracer capture, so simulated
// controller behaviour can be inspected in GTKWave & friends — the
// debugging workflow an RTL engineer would expect from this substrate.
#pragma once

#include <string>

#include "sim/trace.hpp"

namespace smache::sim {

struct VcdOptions {
  /// Timescale string for the header (one simulator cycle = one tick).
  std::string timescale = "1ns";
  /// Width of every dumped vector (signals are stored as uint64 samples).
  unsigned width = 64;
};

/// Render the tracer's rows as a VCD document: one module scope per
/// dotted-path prefix ("smache.shifts" lands in scope "smache" as signal
/// "shifts"), with change-only emission per timestamp.
std::string to_vcd(const Tracer& tracer, const VcdOptions& options = {});

}  // namespace smache::sim

// Flip-flop primitives: Reg<T> (a single register) and RegArray<T> (a block
// of registers with one commit). Both charge their bit counts to the
// ResourceLedger so elaborated designs produce synthesis-style reports.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"
#include "sim/clocked.hpp"
#include "sim/simulator.hpp"

namespace smache::sim {

/// Default resource width for a register holding T. Override per-register
/// for packed fields (FSM states, flags, counters) via the `bits` argument.
template <typename T>
constexpr std::uint32_t default_bits() noexcept {
  if constexpr (std::is_same_v<T, bool>) return 1;
  else return static_cast<std::uint32_t>(sizeof(T) * 8);
}

/// A single clocked register. q() reads the committed value; d() schedules
/// the next value. If d() is not called in a cycle the register holds (and
/// the register never appears on that cycle's dirty list).
template <typename T>
class Reg : public Clocked {
 public:
  /// `bits` is the synthesis width charged to the ledger (e.g. a 7-bit
  /// counter stored in an int should pass 7).
  Reg(Simulator& sim, std::string_view path, T init,
      std::uint32_t bits = default_bits<T>())
      : q_(init), next_(init) {
    sim.register_clocked(this);
    if constexpr (std::is_trivially_copyable_v<T>)
      set_copy_commit(&q_, &next_, sizeof(T));
    sim.ledger().add(path, ResKind::RegisterBits, bits);
  }

  const T& q() const noexcept { return q_; }
  void d(const T& v) {
    next_ = v;
    mark_dirty();
  }

  void commit() override { q_ = next_; }

 private:
  T q_;
  T next_;
};

/// A GROUP of logically separate registers committed as one state element:
/// S is a trivially copyable struct whose fields are the grouped registers
/// (e.g. a top-level controller's counters). One mark_dirty/one block-copy
/// commit per cycle replaces a dirty-list entry and a commit per field,
/// which is what makes the tops' per-cycle bookkeeping cheap.
///
/// Semantics match one Reg per field exactly: fields assigned through d()
/// take the scheduled value at the clock edge, untouched fields hold (the
/// next-state struct always carries the committed value for them, so the
/// block copy republishes it unchanged). Ledger charges are passed per
/// field — paths and widths identical to the discrete Regs they replace —
/// so synthesis-style reports cannot tell the difference.
template <typename S>
class RegGroup : public Clocked {
 public:
  struct FieldCharge {
    std::string path;
    std::uint32_t bits;
  };

  RegGroup(Simulator& sim, const S& init,
           std::initializer_list<FieldCharge> fields)
      : RegGroup(sim, init,
                 std::vector<FieldCharge>(fields.begin(), fields.end())) {}

  /// Vector overload for callers whose charge list is built conditionally
  /// (e.g. extra staging registers only present for multi-field cells).
  RegGroup(Simulator& sim, const S& init,
           const std::vector<FieldCharge>& fields)
      : q_(init), next_(init) {
    static_assert(std::is_trivially_copyable_v<S>,
                  "RegGroup needs a trivially copyable state struct");
    sim.register_clocked(this);
    set_copy_commit(&q_, &next_, sizeof(S));
    for (const FieldCharge& f : fields)
      sim.ledger().add(f.path, ResKind::RegisterBits, f.bits);
  }

  /// Committed state (start-of-cycle view).
  const S& q() const noexcept { return q_; }

  /// Next-state struct for field writes; everything not assigned holds.
  S& d() {
    mark_dirty();
    return next_;
  }

  void commit() override { q_ = next_; }

 private:
  S q_;
  S next_;
};

/// A block of N registers committed together (e.g. a shift window). One
/// Clocked registration regardless of N keeps large windows fast to commit.
template <typename T>
class RegArray : public Clocked {
 public:
  RegArray(Simulator& sim, std::string_view path, std::size_t count, T init,
           std::uint32_t bits_each = default_bits<T>())
      : q_(count, init), next_(count, init) {
    sim.register_clocked(this);
    // The commit is always a whole-array block copy: every commit
    // re-establishes q_ == next_, so unwritten slots republish their held
    // value — a per-index write set would commit the identical bytes. For
    // trivially copyable T that is the simulator's inline memcpy fast
    // path; no virtual dispatch, no per-index bookkeeping.
    if constexpr (std::is_trivially_copyable_v<T>)
      set_copy_commit(q_.data(), next_.data(),
                      static_cast<std::uint32_t>(count * sizeof(T)));
    sim.ledger().add(path, ResKind::RegisterBits,
                     static_cast<std::uint64_t>(count) * bits_each);
  }

  std::size_t size() const noexcept { return q_.size(); }

  const T& q(std::size_t i) const {
    SMACHE_REQUIRE(i < q_.size());
    return q_[i];
  }

  /// Whole committed array (bulk readers that shift runs of registers).
  const T* q_data() const noexcept { return q_.data(); }

  void d(std::size_t i, const T& v) {
    SMACHE_REQUIRE(i < next_.size());
    next_[i] = v;
    mark_dirty();
  }

  /// Schedule a one-position shift toward higher indices with `in` entering
  /// at index 0 (the canonical stream-buffer move). Equivalent to
  /// d(i+1, q(i)) for all i plus d(0, in), but in one pass — and committed
  /// as one whole-array copy instead of a per-index walk.
  void shift_in(const T& in) {
    for (std::size_t i = next_.size(); i-- > 1;) next_[i] = q_[i - 1];
    next_[0] = in;
    mark_dirty();
  }

  /// Whole-array write access for producers that update every element each
  /// cycle (e.g. a hybrid window shift): returns the next-state array to
  /// fill in place — every element the reader will observe must be written
  /// (unwritten slots republish their previous next-state, which after any
  /// earlier commit equals the held value). Committed as one block copy.
  T* next_all() {
    mark_dirty();
    return next_.data();
  }

  void commit() override { q_ = next_; }

 private:
  std::vector<T> q_;
  std::vector<T> next_;
};

}  // namespace smache::sim

// Observability metrics — named counters, gauges and max-watermarks that
// instrumented code touches from cycle hot loops.
//
// The registry follows the resource ledger's two cost disciplines:
//   * paths are INTERNED in the process-wide pool (shared with
//     sim::intern_path, which forwards here): registering the same metric
//     path across thousands of Engine elaborations allocates once, ever;
//   * the hot API is slot-based: instrumentation resolves a path to a
//     dense Slot id at construction time, and every per-cycle touch is one
//     enabled-flag branch plus one indexed add/compare — the same
//     "near-free when disabled" contract as sim::Tracer.
//
// Slots register unconditionally (elaboration-time, cheap); the enabled
// flag gates only VALUE updates. That keeps the key set of a snapshot a
// deterministic function of the design shape, not of when profiling was
// switched on. Snapshots are sorted by path, so two runs of the same
// scenario emit byte-identical metric maps.
//
// The registry is deliberately not thread-safe: one registry belongs to
// one Simulator, and a Simulator is single-threaded by construction (the
// sweep executor gives every scenario its own engine + simulator).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace smache::obs {

enum class MetricKind : std::uint8_t { Counter, Gauge, MaxWatermark };

const char* to_string(MetricKind kind) noexcept;

/// One snapshotted metric: a stable path, its kind, and the value at
/// snapshot time.
struct MetricSample {
  std::string path;
  MetricKind kind = MetricKind::Counter;
  std::uint64_t value = 0;
};

/// Intern `path` in the process-wide path pool and return its canonical
/// string (stable for the process lifetime). Thread-safe; the pool is
/// bounded by the number of DISTINCT paths ever interned, not by run
/// count. sim::intern_path forwards here so ledger paths and metric paths
/// share one pool.
const std::string* intern_path(std::string_view path);

class MetricsRegistry {
 public:
  using Slot = std::uint32_t;

  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  /// Resolve `path` to a dense slot id, registering it with `kind` on
  /// first sight. Re-registering the same path returns the same slot; the
  /// kind must match (contract violation otherwise). Registration happens
  /// whether or not the registry is enabled.
  Slot slot(std::string_view path, MetricKind kind);
  /// Two-part variant for construction sites that would otherwise build a
  /// temporary `base + suffix` string (FIFO watermarks etc.).
  Slot slot(std::string_view base, std::string_view suffix, MetricKind kind);

  // -- hot API: one branch per touch when disabled --
  void count(Slot s, std::uint64_t n = 1) noexcept {
    if (enabled_) slots_[s].value += n;
  }
  void set(Slot s, std::uint64_t v) noexcept {
    if (enabled_) slots_[s].value = v;
  }
  void watermark(Slot s, std::uint64_t v) noexcept {
    if (enabled_ && v > slots_[s].value) slots_[s].value = v;
  }

  // -- cold API: path-addressed, for one-off folds (scheduler attribution) --
  void count_path(std::string_view path, std::uint64_t n = 1);
  void set_path(std::string_view path, MetricKind kind, std::uint64_t v);

  std::uint64_t value(Slot s) const noexcept { return slots_[s].value; }
  /// 0 when the path was never registered.
  std::uint64_t value(std::string_view path) const;

  std::size_t slot_count() const noexcept { return slots_.size(); }

  /// Every registered metric (zero-valued slots included), sorted by path
  /// — the deterministic key→value map reports and tests consume.
  std::vector<MetricSample> snapshot() const;

  /// Zero every value, keep registrations (slot ids stay valid).
  void clear_values() noexcept;

 private:
  struct Entry {
    const std::string* path;
    MetricKind kind;
    std::uint64_t value = 0;
  };

  bool enabled_ = false;
  std::vector<Entry> slots_;  // registration order
  std::unordered_map<const std::string*, Slot> index_;
};

/// Merge `from` into `into` by path: Counters sum, MaxWatermarks and
/// Gauges take the max — the deterministic aggregation run_tiled uses to
/// fold per-tile snapshots (tile order never matters for these folds).
/// `into` stays sorted by path.
void merge_samples(std::vector<MetricSample>& into,
                   const std::vector<MetricSample>& from);

}  // namespace smache::obs

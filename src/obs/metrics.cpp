#include "obs/metrics.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <mutex>
#include <shared_mutex>

#include "common/assert.hpp"

namespace smache::obs {

namespace {

// Process-wide path pool (moved here from sim/resources.cpp so metric and
// ledger paths share one pool). Interning is the ONLY place that
// allocates for path storage; lookups take a shared lock. The deque keeps
// element addresses stable across growth.
struct PathPool {
  std::shared_mutex mu;
  std::deque<std::string> storage;
  std::unordered_map<std::string_view, const std::string*> index;
};

PathPool& pool() {
  static PathPool p;
  return p;
}

}  // namespace

const char* to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::MaxWatermark: return "max";
  }
  return "?";
}

const std::string* intern_path(std::string_view path) {
  PathPool& p = pool();
  {
    std::shared_lock lock(p.mu);
    auto it = p.index.find(path);
    if (it != p.index.end()) return it->second;
  }
  std::unique_lock lock(p.mu);
  auto it = p.index.find(path);  // re-check: another thread may have won
  if (it != p.index.end()) return it->second;
  p.storage.emplace_back(path);
  const std::string* stored = &p.storage.back();
  p.index.emplace(std::string_view(*stored), stored);
  return stored;
}

MetricsRegistry::Slot MetricsRegistry::slot(std::string_view path,
                                            MetricKind kind) {
  const std::string* interned = intern_path(path);
  auto [it, inserted] =
      index_.try_emplace(interned, static_cast<Slot>(slots_.size()));
  if (inserted) {
    slots_.push_back(Entry{interned, kind, 0});
  } else {
    SMACHE_REQUIRE_MSG(slots_[it->second].kind == kind,
                       "metric re-registered with a different kind: " +
                           *interned);
  }
  return it->second;
}

MetricsRegistry::Slot MetricsRegistry::slot(std::string_view base,
                                            std::string_view suffix,
                                            MetricKind kind) {
  std::string joined;
  joined.reserve(base.size() + suffix.size());
  joined.append(base);
  joined.append(suffix);
  return slot(joined, kind);
}

void MetricsRegistry::count_path(std::string_view path, std::uint64_t n) {
  count(slot(path, MetricKind::Counter), n);
}

void MetricsRegistry::set_path(std::string_view path, MetricKind kind,
                               std::uint64_t v) {
  const Slot s = slot(path, kind);
  if (enabled_) slots_[s].value = v;
}

std::uint64_t MetricsRegistry::value(std::string_view path) const {
  const std::string* interned = intern_path(path);
  auto it = index_.find(interned);
  return it == index_.end() ? 0 : slots_[it->second].value;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> out;
  out.reserve(slots_.size());
  for (const Entry& e : slots_) {
    out.push_back(MetricSample{*e.path, e.kind, e.value});
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.path < b.path;
            });
  return out;
}

void MetricsRegistry::clear_values() noexcept {
  for (Entry& e : slots_) e.value = 0;
}

void merge_samples(std::vector<MetricSample>& into,
                   const std::vector<MetricSample>& from) {
  if (from.empty()) return;
  std::map<std::string, MetricSample> merged;
  for (const MetricSample& s : into) merged.emplace(s.path, s);
  for (const MetricSample& s : from) {
    auto [it, inserted] = merged.emplace(s.path, s);
    if (inserted) continue;
    if (s.kind == MetricKind::Counter) {
      it->second.value += s.value;
    } else {
      it->second.value = std::max(it->second.value, s.value);
    }
  }
  into.clear();
  into.reserve(merged.size());
  for (auto& [path, sample] : merged) into.push_back(std::move(sample));
}

}  // namespace smache::obs

#include "obs/perfetto.hpp"

#include <cstdio>

namespace smache::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

std::string to_trace_json(const SpanLog& log) {
  std::string out;
  out.reserve(128 + log.lanes().size() * 96 + log.spans().size() * 80);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  out += "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, "
         "\"args\": {\"name\": \"smache-sim\"}}";
  first = false;
  for (std::size_t i = 0; i < log.lanes().size(); ++i) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": ";
    append_u64(out, i + 1);
    out += ", \"args\": {\"name\": \"";
    append_escaped(out, log.lanes()[i].thread);
    out += "\"}}";
  }
  for (const Span& s : log.spans()) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\": \"X\", \"cat\": \"sim\", \"name\": \"";
    append_escaped(out, log.lanes()[s.lane].event);
    out += "\", \"pid\": 1, \"tid\": ";
    append_u64(out, s.lane + 1);
    out += ", \"ts\": ";
    append_u64(out, s.begin);
    out += ", \"dur\": ";
    append_u64(out, s.end - s.begin);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace smache::obs

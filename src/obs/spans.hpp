// SpanLog — half-open [begin, end) cycle intervals on named lanes, the
// intermediate form between simulator instrumentation and trace-event
// export (obs/perfetto.hpp).
//
// A lane is (thread name, event name): module activity uses one lane per
// module ("smache" / "awake"), DRAM transaction lifetimes use a lane per
// channel ("dram" / "read txn"). Lanes register eagerly at enable time;
// adding a span when the log is disabled is a no-op behind one branch.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace smache::obs {

struct Span {
  std::uint32_t lane = 0;
  std::uint64_t begin = 0;  // cycle, inclusive
  std::uint64_t end = 0;    // cycle, exclusive
};

class SpanLog {
 public:
  struct Lane {
    std::string thread;  // groups lanes in the trace viewer (tid name)
    std::string event;   // span name rendered on the lane
  };

  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  /// Register a lane (always, independent of enabled); returns its id.
  /// Re-registering the same (thread, event) pair returns the same id.
  std::uint32_t lane(std::string_view thread, std::string_view event);

  void add(std::uint32_t lane_id, std::uint64_t begin, std::uint64_t end) {
    if (enabled_ && end > begin) spans_.push_back(Span{lane_id, begin, end});
  }

  const std::vector<Lane>& lanes() const noexcept { return lanes_; }
  const std::vector<Span>& spans() const noexcept { return spans_; }

  void clear() noexcept {
    lanes_.clear();
    spans_.clear();
  }

 private:
  bool enabled_ = false;
  std::vector<Lane> lanes_;
  std::vector<Span> spans_;
};

}  // namespace smache::obs

#include "obs/spans.hpp"

namespace smache::obs {

std::uint32_t SpanLog::lane(std::string_view thread, std::string_view event) {
  for (std::uint32_t i = 0; i < lanes_.size(); ++i) {
    if (lanes_[i].thread == thread && lanes_[i].event == event) return i;
  }
  lanes_.push_back(Lane{std::string(thread), std::string(event)});
  return static_cast<std::uint32_t>(lanes_.size() - 1);
}

}  // namespace smache::obs

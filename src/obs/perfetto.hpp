// Chrome trace-event export: render a SpanLog as the JSON object format
// both chrome://tracing and Perfetto's trace viewer load directly.
//
// Mapping: one process (pid 1, "smache-sim"), one trace-viewer thread per
// lane (tid = lane id + 1, named by the lane's thread string via "M"
// metadata events), one "X" complete event per span with ts/dur in
// microseconds where 1 simulated cycle == 1 us. Output is byte-
// deterministic: lanes in registration order, spans in insertion order.
#pragma once

#include <string>

#include "obs/spans.hpp"

namespace smache::obs {

std::string to_trace_json(const SpanLog& log);

}  // namespace smache::obs

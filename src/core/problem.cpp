#include "core/problem.hpp"

#include <limits>
#include <sstream>

#include "common/assert.hpp"
#include "grid/grid.hpp"
#include "rtl/kernel_pipeline.hpp"

namespace smache {

void ProblemSpec::validate() const {
  SMACHE_REQUIRE_MSG(height >= 1 && width >= 1 && depth >= 1,
                     "grid must be at least 1x1x1");
  // cells() computes height * width * depth without a guard; reject a
  // product that would wrap std::size_t before anything downstream sizes a
  // buffer by it (checked_cells applies the same per-factor guards).
  grid::Grid<word_t>::checked_cells(height, width, depth);
  SMACHE_REQUIRE_MSG(steps >= 1, "at least one work-instance required");
  // Multi-field cells widen everything downstream by the kernel's field
  // count: the gathered tuple carries taps * F words, and every buffer
  // sized in cells is sized in cells * F words.
  const std::size_t fields = kernel.fields();
  SMACHE_REQUIRE_MSG(shape.size() * fields <= rtl::kMaxTuple,
                     "stencil arity x cell fields exceeds kMaxTuple");
  SMACHE_REQUIRE_MSG(
      cells() <= std::numeric_limits<std::size_t>::max() / fields,
      "cells x fields overflows std::size_t");
  if (kernel.needs_center_first()) {
    SMACHE_REQUIRE_MSG(!shape.offsets().empty() &&
                           shape.offsets()[0].ds == 0 &&
                           shape.offsets()[0].dr == 0 &&
                           shape.offsets()[0].dc == 0,
                       "kernel requires a centre-first stencil (tuple "
                       "element 0 must be offset {0,0,0})");
  }
  // The zone construction needs the grid to exceed the stencil's span.
  // A 1-row grid with a row-free stencil is a valid 1D problem.
  const auto rspan = static_cast<std::size_t>(shape.dr_max() -
                                              shape.dr_min());
  const auto cspan = static_cast<std::size_t>(shape.dc_max() -
                                              shape.dc_min());
  const auto sspan = static_cast<std::size_t>(shape.ds_max() -
                                              shape.ds_min());
  SMACHE_REQUIRE_MSG(height > rspan,
                     "grid height must exceed the stencil's row span");
  SMACHE_REQUIRE_MSG(width > cspan,
                     "grid width must exceed the stencil's column span");
  SMACHE_REQUIRE_MSG(depth > sspan,
                     "grid depth must exceed the stencil's slice span");
}

std::string ProblemSpec::describe() const {
  std::ostringstream out;
  out << height << "x" << width;
  if (depth > 1) out << "x" << depth;
  out << " grid, stencil " << shape.name()
      << " (" << shape.size() << " points), rows "
      << grid::to_string(bc.rows.kind) << ", cols "
      << grid::to_string(bc.cols.kind);
  if (depth > 1) out << ", slices " << grid::to_string(bc.slices.kind);
  out << ", kernel " << kernel.name();
  if (kernel.fields() > 1)
    out << " (" << kernel.fields() << " fields/cell)";
  out << ", " << steps << " work-instance(s)";
  return out.str();
}

}  // namespace smache

// The public problem description: what to compute, on what grid, under
// which boundary conditions, for how many work-instances.
#pragma once

#include <cstdint>
#include <string>

#include "grid/boundary.hpp"
#include "grid/stencil.hpp"
#include "rtl/kernel.hpp"

namespace smache {

struct ProblemSpec {
  std::size_t height = 0;
  std::size_t width = 0;
  /// Slice extent of the grid (1 = the original 2D problem). 3D grids
  /// stream slice-major: element (s,r,c) at global row s*height + r.
  std::size_t depth = 1;
  grid::StencilShape shape = grid::StencilShape::von_neumann4();
  grid::BoundarySpec bc = grid::BoundarySpec::paper_example();
  rtl::KernelSpec kernel = rtl::KernelSpec::average_int();
  /// Number of work-instances (time steps); output of step k feeds k+1.
  std::size_t steps = 1;

  std::size_t cells() const noexcept { return height * width * depth; }

  /// The paper's evaluation problem: 11x11 grid, 4-point averaging filter,
  /// circular top/bottom + open left/right boundaries, 100 work-instances.
  static ProblemSpec paper_example() {
    ProblemSpec p;
    p.height = 11;
    p.width = 11;
    p.shape = grid::StencilShape::von_neumann4();
    p.bc = grid::BoundarySpec::paper_example();
    p.kernel = rtl::KernelSpec::average_int();
    p.steps = 100;
    return p;
  }

  /// Throws contract_error with a descriptive message if inconsistent.
  void validate() const;

  std::string describe() const;
};

}  // namespace smache

#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "grid/reference.hpp"
#include "grid/tiling.hpp"
#include "mem/dram.hpp"
#include "obs/perfetto.hpp"
#include "rtl/baseline_top.hpp"
#include "rtl/cascade_top.hpp"
#include "rtl/smache_top.hpp"
#include "sim/simulator.hpp"

namespace smache {

namespace {

/// Read a finished work-instance's output region back through the DRAM
/// test-bench backdoor — one bulk span instead of a peek() (with its
/// per-call range check) per cell.
grid::Grid<word_t> read_output_grid(const mem::DramModel& dram,
                                    std::uint64_t base, std::size_t height,
                                    std::size_t width, std::size_t depth,
                                    CellLayout layout) {
  const std::size_t words = height * width * depth * layout.fields;
  const word_t* span = dram.peek_span(base, words);
  return grid::Grid<word_t>::from_words(
      height, width, depth, layout, std::vector<word_t>(span, span + words));
}

/// Internal signal for an expired wall deadline; converted to
/// engine_timeout (with the partial result attached) by the callers.
struct wall_expired {};

/// Wall-clock watchdog deadline: disarmed when timeout_ms == 0. The check
/// runs once per completion-polling batch (the done/bound callables run
/// O(completions) times, so a runaway design — whose outstanding-work
/// bounds stay small — is checked frequently without taxing the hot loop).
class WallDeadline {
 public:
  explicit WallDeadline(std::uint32_t timeout_ms) {
    if (timeout_ms != 0)
      at_ = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(timeout_ms);
  }
  void check() const {
    if (at_ && std::chrono::steady_clock::now() >= *at_) throw wall_expired{};
  }

 private:
  std::optional<std::chrono::steady_clock::time_point> at_;
};

/// Drive the simulation to completion with batched predicate polling: the
/// burst bound combines the top's outstanding work with the DRAM drain
/// (both retire at most one unit per cycle), which run_until_done turns
/// into the exact per-cycle-checked completion cycle.
template <typename Top>
void run_to_completion(sim::Simulator& sim, const Top& top,
                       const mem::DramModel& dram,
                       std::uint64_t max_cycles,
                       const WallDeadline& deadline) {
  sim.run_until_done(
      [&] { return top.done() && dram.idle(); },
      [&] {
        deadline.check();
        return std::max(top.min_cycles_to_done(), dram.min_cycles_to_idle());
      },
      max_cycles);
}

}  // namespace

const char* to_string(Architecture arch) noexcept {
  return arch == Architecture::Smache ? "smache" : "baseline";
}

std::string RunResult::summary() const {
  std::ostringstream out;
  out << to_string(arch) << ": cycles=" << cycles
      << " fmax=" << timing.fmax_mhz
      << "MHz dram_read=" << dram.bytes_read()
      << "B dram_write=" << dram.bytes_written()
      << "B time=" << exec_time_us << "us mops=" << mops;
  return out.str();
}

model::BufferPlan Engine::plan_only(const ProblemSpec& problem) const {
  problem.validate();
  model::PlannerOptions popts;
  popts.stream_impl = options_.stream_impl;
  popts.bram_segment_threshold = options_.bram_segment_threshold;
  return model::Planner(popts).plan(problem.height, problem.width,
                                    problem.depth, problem.shape,
                                    problem.bc);
}

RunResult Engine::run(const ProblemSpec& problem,
                      const grid::Grid<word_t>& initial) const {
  SMACHE_REQUIRE(initial.height() == problem.height &&
                 initial.width() == problem.width &&
                 initial.depth() == problem.depth);
  SMACHE_REQUIRE_MSG(initial.fields() == problem.kernel.fields(),
                     "initial grid's cell layout must match the kernel's");
  return execute(problem, &initial);
}

RunResult Engine::elaborate_only(const ProblemSpec& problem) const {
  return execute(problem, nullptr);
}

RunResult Engine::execute(const ProblemSpec& problem,
                          const grid::Grid<word_t>* initial) const {
  problem.validate();
  const std::size_t cells = problem.cells();
  const CellLayout layout{problem.kernel.fields()};
  // Validated against size_t wrap before anything sizes a buffer by it.
  const std::size_t grid_words = grid::Grid<word_t>::checked_words(
      problem.height, problem.width, problem.depth, layout.fields);

  sim::Simulator sim;
  sim.set_force_eval_all(options_.force_eval_all);
  // Observability is switched on before any module registers so span lanes
  // and metric slots appear in construction order — deterministic output.
  if (options_.profile) sim.enable_profiling();
  if (options_.trace) sim.enable_spans();
  mem::DramConfig dcfg = options_.dram;
  if (options_.auto_bus)
    dcfg.shared_bus = options_.arch == Architecture::Baseline;
  mem::DramModel dram(sim, "dram", 2 * grid_words, dcfg);

  if (initial != nullptr) {
    const auto words = initial->to_words();
    for (std::size_t i = 0; i < words.size(); ++i)
      dram.poke(i, words[i]);
  }

  RunResult result;
  result.arch = options_.arch;

  // Wall-clock watchdog: on expiry, surface the progress made (cycles and
  // DRAM counters at abort) through the exception's partial result.
  const WallDeadline deadline(options_.wall_timeout_ms);
  const auto guarded_run = [&](const auto& top) {
    try {
      run_to_completion(sim, top, dram, options_.max_cycles, deadline);
    } catch (const wall_expired&) {
      result.cycles = sim.now();
      result.dram = dram.stats();
      result.timed_out = true;
      throw engine_timeout(options_.wall_timeout_ms, std::move(result));
    }
  };

  if (options_.arch == Architecture::Smache) {
    model::BufferPlan plan = plan_only(problem);
    rtl::SmacheTop top(sim, "smache", plan, problem.kernel, dram,
                       problem.steps);
    result.estimate = cost::estimate_memory(
        plan, static_cast<std::uint32_t>(kWordBits * layout.fields));
    result.timing = cost::estimate_smache_timing(plan);
    if (initial != nullptr) {
      guarded_run(top);
      result.cycles = sim.now();
      result.warmup_cycles = top.warmup_end_cycle();
      result.output = read_output_grid(dram, top.output_base(),
                                       problem.height, problem.width,
                                       problem.depth, layout);
    }
    result.resources = cost::measure_actual(sim.ledger(), "smache");
    result.plan = std::move(plan);
  } else {
    rtl::BaselineTop top(sim, "baseline", problem.height, problem.width,
                         problem.shape, problem.bc, problem.kernel, dram,
                         problem.steps, problem.depth);
    result.timing = cost::estimate_baseline_timing(
        problem.shape.size(),
        grid::CaseMap(problem.height, problem.width, problem.depth,
                      problem.shape)
            .case_count());
    if (initial != nullptr) {
      guarded_run(top);
      result.cycles = sim.now();
      result.output = read_output_grid(dram, top.output_base(),
                                       problem.height, problem.width,
                                       problem.depth, layout);
    }
    result.resources = cost::measure_actual(sim.ledger(), "baseline");
  }

  if (options_.profile || options_.trace) {
    sim.finalize_observability();
    if (options_.profile) result.metrics = sim.metrics().snapshot();
    if (options_.trace) result.trace_json = obs::to_trace_json(sim.spans());
  }
  result.dram = dram.stats();
  result.ops =
      static_cast<std::uint64_t>(cells) * problem.steps *
      problem.kernel.ops_per_point(problem.shape.size() * layout.fields);
  if (result.timing.fmax_mhz > 0.0 && result.cycles > 0) {
    result.exec_time_us =
        static_cast<double>(result.cycles) / result.timing.fmax_mhz;
    result.mops = static_cast<double>(result.ops) / result.exec_time_us;
  }
  return result;
}

RunResult Engine::run_cascade(const ProblemSpec& problem,
                              const grid::Grid<word_t>& initial,
                              std::size_t depth) const {
  problem.validate();
  SMACHE_REQUIRE(initial.height() == problem.height &&
                 initial.width() == problem.width &&
                 initial.depth() == problem.depth);
  SMACHE_REQUIRE_MSG(initial.fields() == problem.kernel.fields(),
                     "initial grid's cell layout must match the kernel's");
  SMACHE_REQUIRE_MSG(depth >= 1 && problem.steps % depth == 0,
                     "steps must be a multiple of the cascade depth");
  const std::size_t cells = problem.cells();
  const CellLayout layout{problem.kernel.fields()};
  const std::size_t grid_words = grid::Grid<word_t>::checked_words(
      problem.height, problem.width, problem.depth, layout.fields);
  const std::size_t passes = problem.steps / depth;

  sim::Simulator sim;
  sim.set_force_eval_all(options_.force_eval_all);
  if (options_.profile) sim.enable_profiling();
  if (options_.trace) sim.enable_spans();
  mem::DramConfig dcfg = options_.dram;
  if (options_.auto_bus) dcfg.shared_bus = false;
  mem::DramModel dram(sim, "dram", 2 * grid_words, dcfg);
  const auto words = initial.to_words();
  for (std::size_t i = 0; i < words.size(); ++i) dram.poke(i, words[i]);

  model::BufferPlan plan = plan_only(problem);
  rtl::CascadeTop top(sim, "cascade", plan, problem.kernel, dram, depth,
                      passes);

  RunResult result;
  result.arch = Architecture::Smache;
  result.estimate = cost::estimate_memory(
      plan, static_cast<std::uint32_t>(kWordBits * layout.fields));
  // The cascade replicates the stream buffer per fused step.
  result.estimate->r_stream *= depth;
  result.estimate->b_stream *= depth;
  result.timing = cost::estimate_smache_timing(plan);
  const WallDeadline deadline(options_.wall_timeout_ms);
  try {
    run_to_completion(sim, top, dram, options_.max_cycles, deadline);
  } catch (const wall_expired&) {
    result.cycles = sim.now();
    result.dram = dram.stats();
    result.timed_out = true;
    throw engine_timeout(options_.wall_timeout_ms, std::move(result));
  }
  result.cycles = sim.now();
  result.warmup_cycles = top.warmup_end_cycle();
  result.output =
      read_output_grid(dram, top.output_base(), problem.height,
                       problem.width, problem.depth, layout);
  if (options_.profile || options_.trace) {
    sim.finalize_observability();
    if (options_.profile) result.metrics = sim.metrics().snapshot();
    if (options_.trace) result.trace_json = obs::to_trace_json(sim.spans());
  }
  result.resources = cost::measure_actual(sim.ledger(), "cascade");
  result.plan = std::move(plan);
  result.dram = dram.stats();
  result.ops =
      static_cast<std::uint64_t>(cells) * problem.steps *
      problem.kernel.ops_per_point(problem.shape.size() * layout.fields);
  if (result.timing.fmax_mhz > 0.0 && result.cycles > 0) {
    result.exec_time_us =
        static_cast<double>(result.cycles) / result.timing.fmax_mhz;
    result.mops = static_cast<double>(result.ops) / result.exec_time_us;
  }
  return result;
}

RunResult Engine::run_tiled(const ProblemSpec& problem,
                            const grid::Grid<word_t>& initial,
                            const TilingSpec& tiling) const {
  problem.validate();
  SMACHE_REQUIRE(initial.height() == problem.height &&
                 initial.width() == problem.width &&
                 initial.depth() == problem.depth);
  SMACHE_REQUIRE_MSG(initial.fields() == problem.kernel.fields(),
                     "initial grid's cell layout must match the kernel's");
  SMACHE_REQUIRE_MSG(tiling.depth >= 1 && problem.steps % tiling.depth == 0,
                     "steps must be a multiple of the tiling depth");
  if (tiling.tiles_r == 1 && tiling.tiles_c == 1 && tiling.tiles_s == 1)
    return tiling.depth > 1 ? run_cascade(problem, initial, tiling.depth)
                            : run(problem, initial);
  SMACHE_REQUIRE_MSG(!options_.trace,
                     "span/trace export is per-simulator; tiled runs do not "
                     "support it (metrics profiling folds fine)");

  const grid::TilingLayout layout = grid::plan_tiling(
      problem.height, problem.width, problem.depth, tiling.tiles_r,
      tiling.tiles_c, tiling.tiles_s, problem.shape, problem.bc,
      tiling.depth);
  const std::size_t passes = problem.steps / tiling.depth;
  const std::size_t n = layout.tiles.size();

  grid::Grid<word_t> state = initial;
  RunResult agg;
  agg.arch = options_.arch;
  std::vector<RunResult> tile_runs(n);

  for (std::size_t pass = 0; pass < passes; ++pass) {
    grid::Grid<word_t> next(problem.height, problem.width, problem.depth,
                            initial.layout(), 0);
    // Workers only touch index-owned slots plus disjoint interiors of
    // `next`; `state` is read-only until the pass drains.
    parallel_for_index(n, tiling.threads, [&](std::size_t i) {
      const grid::TileGeometry& t = layout.tiles[i];
      ProblemSpec sub = problem;
      sub.height = t.sub_height();
      sub.width = t.sub_width();
      sub.depth = t.sub_depth();
      sub.bc = t.sub_bc;
      sub.steps = tiling.depth;
      const grid::Grid<word_t> fed = grid::gather_tile(state, t, problem.bc);
      tile_runs[i] = tiling.depth > 1 ? run_cascade(sub, fed, tiling.depth)
                                      : run(sub, fed);
      grid::stitch_interior(next, t, tile_runs[i].output.value());
      tile_runs[i].output.reset();  // the stitch consumed it
    });
    state = std::move(next);

    // Deterministic aggregation in tile order: a pass is as slow as its
    // slowest tile, DRAM traffic sums over every tile-run (halo redundancy
    // is charged honestly), and the replicated datapaths are accounted once
    // from the first pass — resources sum, timing is the slowest tile's.
    std::uint64_t pass_cycles = 0;
    for (const RunResult& r : tile_runs) {
      pass_cycles = std::max(pass_cycles, r.cycles);
      // Counter samples sum across tiles and passes (stall totals over the
      // whole scenario); watermarks keep the max (see merge_samples).
      if (options_.profile) obs::merge_samples(agg.metrics, r.metrics);
      agg.dram.read_requests += r.dram.read_requests;
      agg.dram.words_read += r.dram.words_read;
      agg.dram.words_written += r.dram.words_written;
      agg.dram.row_hits += r.dram.row_hits;
      agg.dram.row_misses += r.dram.row_misses;
      agg.dram.injected_stall_cycles += r.dram.injected_stall_cycles;
      agg.dram.read_busy_cycles += r.dram.read_busy_cycles;
    }
    agg.cycles += pass_cycles;
    if (pass == 0) {
      for (const RunResult& r : tile_runs) {
        agg.warmup_cycles = std::max(agg.warmup_cycles, r.warmup_cycles);
        agg.resources.r_static += r.resources.r_static;
        agg.resources.b_static += r.resources.b_static;
        agg.resources.r_stream += r.resources.r_stream;
        agg.resources.b_stream += r.resources.b_stream;
        agg.resources.r_total += r.resources.r_total;
        agg.resources.b_total += r.resources.b_total;
        agg.resources.m20k_blocks += r.resources.m20k_blocks;
        if (r.estimate) {
          if (!agg.estimate) agg.estimate.emplace();
          agg.estimate->r_static += r.estimate->r_static;
          agg.estimate->b_static += r.estimate->b_static;
          agg.estimate->r_stream += r.estimate->r_stream;
          agg.estimate->b_stream += r.estimate->b_stream;
        }
        if (agg.timing.fmax_mhz == 0.0 ||
            r.timing.fmax_mhz < agg.timing.fmax_mhz)
          agg.timing = r.timing;
      }
      agg.plan = tile_runs[0].plan;
    }
  }

  agg.output = std::move(state);
  // Logical work only — the redundant halo compute is a cost, not output.
  agg.ops = static_cast<std::uint64_t>(problem.cells()) * problem.steps *
            problem.kernel.ops_per_point(problem.shape.size() *
                                         problem.kernel.fields());
  if (agg.timing.fmax_mhz > 0.0 && agg.cycles > 0) {
    agg.exec_time_us = static_cast<double>(agg.cycles) / agg.timing.fmax_mhz;
    agg.mops = static_cast<double>(agg.ops) / agg.exec_time_us;
  }
  return agg;
}

grid::Grid<word_t> reference_run(const ProblemSpec& problem,
                                 const grid::Grid<word_t>& initial) {
  problem.validate();
  SMACHE_REQUIRE(initial.height() == problem.height &&
                 initial.width() == problem.width &&
                 initial.depth() == problem.depth);
  SMACHE_REQUIRE_MSG(initial.fields() == problem.kernel.fields(),
                     "initial grid's cell layout must match the kernel's");
  const std::size_t fields = problem.kernel.fields();
  const auto kernel = [&](const std::vector<grid::TupleElem>& tuple,
                          word_t* out) {
    rtl::apply_kernel_cells(problem.kernel, tuple, fields, out);
  };
  return grid::run_steps_cells(initial, problem.shape, problem.bc, kernel,
                               problem.steps);
}

}  // namespace smache

#include "core/report.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace smache {

std::string format_fig2(const RunResult& baseline, const RunResult& smache) {
  TextTable t({"Metric", "Baseline", "Smache", "Smache/Baseline"});
  auto row = [&](const std::string& name, double b, double s,
                 int precision) {
    t.begin_row();
    t.add_cell(name);
    t.add_cell(b, precision);
    t.add_cell(s, precision);
    t.add_cell(safe_ratio(s, b), 3);
  };
  row("Cycle-count", static_cast<double>(baseline.cycles),
      static_cast<double>(smache.cycles), 0);
  row("Freq (MHz)", baseline.timing.fmax_mhz, smache.timing.fmax_mhz, 1);
  row("DRAM Traffic (KiB)",
      static_cast<double>(baseline.dram.total_bytes()) / 1024.0,
      static_cast<double>(smache.dram.total_bytes()) / 1024.0, 1);
  row("Sim. Exec. Time (us)", baseline.exec_time_us, smache.exec_time_us, 1);
  row("Performance (MOPS)", baseline.mops, smache.mops, 2);

  std::ostringstream out;
  out << t.to_ascii();
  out << "overall simulated speed-up (baseline time / smache time): "
      << format_fixed(safe_ratio(baseline.exec_time_us, smache.exec_time_us),
                      2)
      << "x\n";
  return out.str();
}

std::string format_table1_rows(const std::string& label,
                               const RunResult& result) {
  SMACHE_REQUIRE_MSG(result.estimate.has_value(),
                     "Table I rows need a Smache result with an estimate");
  const auto& e = *result.estimate;
  const auto& a = result.resources;
  TextTable t({"Problem", "", "Rsc", "Bsc", "Rsm", "Bsm", "Rtotal",
               "Btotal"});
  t.begin_row();
  t.add_cell(label);
  t.add_cell(std::string("Estimate"));
  t.add_cell(e.r_static);
  t.add_cell(e.b_static);
  t.add_cell(e.r_stream);
  t.add_cell(e.b_stream);
  t.add_cell(e.r_total());
  t.add_cell(e.b_total());
  t.begin_row();
  t.add_cell(label);
  t.add_cell(std::string("Actual"));
  t.add_cell(a.r_static);
  t.add_cell(a.b_static);
  t.add_cell(a.r_stream);
  t.add_cell(a.b_stream);
  t.add_cell(a.r_total);
  t.add_cell(a.b_total);
  return t.to_ascii();
}

}  // namespace smache

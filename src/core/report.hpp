// Paper-style report formatting: the Figure 2 metric table and the Table I
// resource rows, shared by the bench binaries and examples.
#pragma once

#include <string>

#include "core/engine.hpp"

namespace smache {

/// Figure-2-style comparison block for a (baseline, smache) result pair:
/// absolute rows plus the normalised-against-baseline ratios.
std::string format_fig2(const RunResult& baseline, const RunResult& smache);

/// One Table-I-style row set (estimate vs actual) for a Smache result.
/// `label` is e.g. "11x11r" or "1024x1024h".
std::string format_table1_rows(const std::string& label,
                               const RunResult& result);

}  // namespace smache

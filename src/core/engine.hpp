// The Engine — the library's front door. It elaborates a design (Smache or
// the unbuffered baseline) onto the simulation substrate, runs the
// requested work-instances cycle by cycle against the DRAM model, and
// returns cycles, DRAM traffic, elaborated resources, predicted Fmax and
// the derived Figure-2 metrics, together with the output grid for
// verification.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "cost/cost_model.hpp"
#include "cost/timing.hpp"
#include "grid/grid.hpp"
#include "mem/dram_config.hpp"
#include "model/planner.hpp"
#include "obs/metrics.hpp"

namespace smache {

enum class Architecture { Smache, Baseline };

const char* to_string(Architecture arch) noexcept;

struct EngineOptions {
  Architecture arch = Architecture::Smache;
  model::StreamImpl stream_impl = model::StreamImpl::Hybrid;
  mem::DramConfig dram = mem::DramConfig::functional();
  /// When true (default), the bus topology follows the architecture: the
  /// baseline drives a single shared memory port, Smache uses independent
  /// AXI-style read/write channels. Set false to use `dram.shared_bus`
  /// exactly as given (for the bus-topology ablation).
  bool auto_bus = true;
  /// Hybrid split threshold forwarded to the planner.
  std::size_t bram_segment_threshold = 4;
  /// Simulation watchdog (cycles); generous default. Exceeding it throws
  /// contract_error — fully deterministic (the trip point is a cycle
  /// count), so a sweep that captures it is bit-reproducible.
  std::uint64_t max_cycles = 200'000'000;
  /// Opt-in wall-clock watchdog (0 = off): abandon a run whose REAL time
  /// exceeds this many milliseconds, throwing engine_timeout with the
  /// partial result. Unlike max_cycles the trip point is inherently
  /// nondeterministic — batch drivers must treat a tripped run as
  /// non-reusable (the sweep store never caches one). Each engine
  /// invocation gets its own deadline, so a tiled scenario bounds every
  /// tile-pass rather than the whole scenario.
  std::uint32_t wall_timeout_ms = 0;
  /// Disable activity-gated eval scheduling: every module is evaluated on
  /// every cycle. Results are bit-identical either way (the equivalence
  /// property suite enforces it); force mode exists for that cross-check
  /// and for debugging a suspect quiescence declaration.
  bool force_eval_all = false;
  /// Collect the cycle-attribution profile and stall/occupancy metrics
  /// into RunResult::metrics. Unlike tracing, profiling does NOT disable
  /// activity gating — it classifies the gated schedule itself — so the
  /// simulated results stay bit-identical to an unprofiled run.
  bool profile = false;
  /// Record module-activity and DRAM-transaction spans and export them as
  /// Chrome trace-event JSON in RunResult::trace_json (load in
  /// chrome://tracing / Perfetto). Also leaves results bit-identical.
  /// Per-simulator, so tiled runs reject it.
  bool trace = false;

  static EngineOptions smache(model::StreamImpl impl =
                                  model::StreamImpl::Hybrid) {
    EngineOptions o;
    o.arch = Architecture::Smache;
    o.stream_impl = impl;
    return o;
  }
  static EngineOptions baseline() {
    EngineOptions o;
    o.arch = Architecture::Baseline;
    return o;
  }
};

/// Intra-scenario spatial decomposition: split the grid into tiles_r x
/// tiles_c halo-padded tiles and simulate each tile as an independent
/// engine instance, exchanging halos between passes. Output is
/// bit-identical to the untiled run for every supported pairing (see
/// grid/tiling.hpp for which pairings tile and why).
struct TilingSpec {
  std::size_t tiles_r = 1;
  std::size_t tiles_c = 1;
  /// Worker threads for the per-pass tile loop (0 = hardware_threads(),
  /// 1 = serial). Results are bit-identical for any value.
  std::size_t threads = 1;
  /// Time steps fused on chip between halo exchanges (each tile sub-run is
  /// a depth-deep cascade). problem.steps must be a multiple of depth.
  std::size_t depth = 1;
  /// Tile count on the slice (depth) axis of a 3D problem; must stay 1
  /// for 2D grids. Declared last so every pre-3D positional initialiser
  /// keeps its meaning.
  std::size_t tiles_s = 1;
};

struct RunResult {
  Architecture arch = Architecture::Smache;
  std::uint64_t cycles = 0;
  /// Smache static-prefetch phase for run() (0 for the baseline and for
  /// plans with nothing to prefetch); the cascade's pipeline fill
  /// (first-writeback cycle) for run_cascade(); the slowest pass-0 tile's
  /// warmup for run_tiled(). Different quantities — do not compare across
  /// paths.
  std::uint64_t warmup_cycles = 0;
  mem::DramStats dram;
  /// Final grid state; empty for elaborate_only() and when a batch driver
  /// has deliberately dropped it (SweepExecutor with keep_outputs=false).
  std::optional<grid::Grid<word_t>> output;

  /// Elaborated ("actual") resources from the ledger.
  cost::MemoryActual resources;
  /// Analytic estimate (Smache only; meaningless for the baseline).
  std::optional<cost::MemoryEstimate> estimate;
  std::optional<model::BufferPlan> plan;  // Smache only

  // Timing-model outputs and the paper's derived Figure-2 metrics.
  cost::DesignTiming timing;
  std::uint64_t ops = 0;          // tuple elements processed
  double exec_time_us = 0.0;      // cycles / fmax
  double mops = 0.0;              // ops / exec_time

  /// True when the run was abandoned by the wall-clock watchdog: `cycles`
  /// and `dram` hold the progress at abort (diagnostics only — they are as
  /// nondeterministic as the trip itself), `output` is empty.
  bool timed_out = false;

  /// Deterministic metric snapshot (EngineOptions::profile): cycle
  /// attribution per module, wake reasons, stall counters, FIFO high-water
  /// marks — sorted by path, zero-valued entries included. Tiled runs fold
  /// per-tile snapshots (counters sum, watermarks max). Empty when
  /// profiling is off.
  std::vector<obs::MetricSample> metrics;
  /// Chrome trace-event JSON (EngineOptions::trace); empty when off.
  std::string trace_json;

  std::string summary() const;
};

/// Thrown when EngineOptions::wall_timeout_ms expires mid-run. Carries the
/// partial RunResult (timed_out=true, counters at abort, no output) so
/// drivers can report how far the runaway got. Deliberately NOT a
/// contract_error: a wall timeout is an environmental event, not a
/// precondition violation, and batch drivers classify it differently
/// (never cached, never retried as transient).
class engine_timeout : public std::runtime_error {
 public:
  engine_timeout(std::uint32_t timeout_ms, RunResult partial_result)
      : std::runtime_error("wall-clock watchdog: run exceeded " +
                           std::to_string(timeout_ms) + " ms"),
        partial(std::move(partial_result)) {}
  RunResult partial;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {}) : options_(options) {}

  const EngineOptions& options() const noexcept { return options_; }

  /// Run `problem` starting from `initial` (row-major words). The returned
  /// output grid is read back from the final DRAM region.
  RunResult run(const ProblemSpec& problem,
                const grid::Grid<word_t>& initial) const;

  /// Plan without simulating (resource studies over huge grids).
  model::BufferPlan plan_only(const ProblemSpec& problem) const;

  /// Temporal-blocking extension (the "multiple time steps in one pass"
  /// direction the paper cites as complementary work): fuse `depth` time
  /// steps on chip per DRAM pass, cutting traffic by ~depth. Requires
  /// problem.steps to be a multiple of depth and boundaries that resolve
  /// in-stream (open/mirror/constant — periodic wraps need the
  /// double-buffered static buffers of the per-instance engine).
  RunResult run_cascade(const ProblemSpec& problem,
                        const grid::Grid<word_t>& initial,
                        std::size_t depth) const;

  /// Spatially-tiled execution: each pass gathers every tile's halo-padded
  /// subgrid from the current state, simulates the tiles concurrently
  /// (tiling.threads workers) as independent engine instances advancing
  /// tiling.depth steps, and stitches the interiors into the next state.
  /// The output grid is bit-identical to run()/run_cascade() for any tile
  /// and thread count; unsupported boundary/stencil/depth pairings throw a
  /// descriptive contract_error (never silently diverge). Cycles are
  /// max-per-pass over tiles (tiles run concurrently); DRAM traffic sums
  /// every tile-run, charging halo redundancy honestly; resources/timing
  /// sum/min over the replicated pass-0 datapaths.
  RunResult run_tiled(const ProblemSpec& problem,
                      const grid::Grid<word_t>& initial,
                      const TilingSpec& tiling) const;

  /// Elaborate the design and report resources without running a single
  /// cycle (Table I's 1024x1024 rows).
  RunResult elaborate_only(const ProblemSpec& problem) const;

 private:
  RunResult execute(const ProblemSpec& problem,
                    const grid::Grid<word_t>* initial) const;
  EngineOptions options_;
};

/// Golden software run of the same problem (the oracle for tests).
grid::Grid<word_t> reference_run(const ProblemSpec& problem,
                                 const grid::Grid<word_t>& initial);

}  // namespace smache

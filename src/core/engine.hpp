// The Engine — the library's front door. It elaborates a design (Smache or
// the unbuffered baseline) onto the simulation substrate, runs the
// requested work-instances cycle by cycle against the DRAM model, and
// returns cycles, DRAM traffic, elaborated resources, predicted Fmax and
// the derived Figure-2 metrics, together with the output grid for
// verification.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "cost/cost_model.hpp"
#include "cost/timing.hpp"
#include "grid/grid.hpp"
#include "mem/dram_config.hpp"
#include "model/planner.hpp"

namespace smache {

enum class Architecture { Smache, Baseline };

const char* to_string(Architecture arch) noexcept;

struct EngineOptions {
  Architecture arch = Architecture::Smache;
  model::StreamImpl stream_impl = model::StreamImpl::Hybrid;
  mem::DramConfig dram = mem::DramConfig::functional();
  /// When true (default), the bus topology follows the architecture: the
  /// baseline drives a single shared memory port, Smache uses independent
  /// AXI-style read/write channels. Set false to use `dram.shared_bus`
  /// exactly as given (for the bus-topology ablation).
  bool auto_bus = true;
  /// Hybrid split threshold forwarded to the planner.
  std::size_t bram_segment_threshold = 4;
  /// Simulation watchdog (cycles); generous default.
  std::uint64_t max_cycles = 200'000'000;
  /// Disable activity-gated eval scheduling: every module is evaluated on
  /// every cycle. Results are bit-identical either way (the equivalence
  /// property suite enforces it); force mode exists for that cross-check
  /// and for debugging a suspect quiescence declaration.
  bool force_eval_all = false;

  static EngineOptions smache(model::StreamImpl impl =
                                  model::StreamImpl::Hybrid) {
    EngineOptions o;
    o.arch = Architecture::Smache;
    o.stream_impl = impl;
    return o;
  }
  static EngineOptions baseline() {
    EngineOptions o;
    o.arch = Architecture::Baseline;
    return o;
  }
};

struct RunResult {
  Architecture arch = Architecture::Smache;
  std::uint64_t cycles = 0;
  /// Smache static-prefetch phase for run() (0 for the baseline and for
  /// plans with nothing to prefetch); the cascade's pipeline fill
  /// (first-writeback cycle) for run_cascade(). Two different
  /// quantities — do not compare across the two paths.
  std::uint64_t warmup_cycles = 0;
  mem::DramStats dram;
  grid::Grid<word_t> output{1, 1};

  /// Elaborated ("actual") resources from the ledger.
  cost::MemoryActual resources;
  /// Analytic estimate (Smache only; meaningless for the baseline).
  std::optional<cost::MemoryEstimate> estimate;
  std::optional<model::BufferPlan> plan;  // Smache only

  // Timing-model outputs and the paper's derived Figure-2 metrics.
  cost::DesignTiming timing;
  std::uint64_t ops = 0;          // tuple elements processed
  double exec_time_us = 0.0;      // cycles / fmax
  double mops = 0.0;              // ops / exec_time

  std::string summary() const;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {}) : options_(options) {}

  const EngineOptions& options() const noexcept { return options_; }

  /// Run `problem` starting from `initial` (row-major words). The returned
  /// output grid is read back from the final DRAM region.
  RunResult run(const ProblemSpec& problem,
                const grid::Grid<word_t>& initial) const;

  /// Plan without simulating (resource studies over huge grids).
  model::BufferPlan plan_only(const ProblemSpec& problem) const;

  /// Temporal-blocking extension (the "multiple time steps in one pass"
  /// direction the paper cites as complementary work): fuse `depth` time
  /// steps on chip per DRAM pass, cutting traffic by ~depth. Requires
  /// problem.steps to be a multiple of depth and boundaries that resolve
  /// in-stream (open/mirror/constant — periodic wraps need the
  /// double-buffered static buffers of the per-instance engine).
  RunResult run_cascade(const ProblemSpec& problem,
                        const grid::Grid<word_t>& initial,
                        std::size_t depth) const;

  /// Elaborate the design and report resources without running a single
  /// cycle (Table I's 1024x1024 rows).
  RunResult elaborate_only(const ProblemSpec& problem) const;

 private:
  RunResult execute(const ProblemSpec& problem,
                    const grid::Grid<word_t>* initial) const;
  EngineOptions options_;
};

/// Golden software run of the same problem (the oracle for tests).
grid::Grid<word_t> reference_run(const ProblemSpec& problem,
                                 const grid::Grid<word_t>& initial);

}  // namespace smache

// Analytic timing (Fmax) model.
//
// We cannot run Quartus here, so Figure 2's frequency row comes from a
// structural critical-path estimate: each design contributes paths built
// from documented per-primitive delays, and Fmax = 1000 / longest-path-ns.
// The two free families of constants were calibrated ONCE against the two
// synthesis points the paper reports for the 11x11 4-point problem
// (baseline 372.9 MHz, Smache 235.3 MHz); everything else — how paths grow
// with case count, tap count, window size — follows from structure. See
// DESIGN.md §2 for why this substitution preserves the experiment.
#pragma once

#include <cstddef>
#include <string>

#include "model/planner.hpp"

namespace smache::cost {

struct TimingParams {
  double ff_clk_to_q_ns = 0.20;
  double ff_setup_ns = 0.12;
  double lut_level_ns = 0.40;    // one 6-LUT level incl. local routing
  double carry32_ns = 0.95;      // 32-bit carry-chain add/compare
  double mux_level_ns = 0.40;    // one 4:1 mux level
  double zone_compare_ns = 0.50; // small counter-vs-bound compare
  double stall_gate_ns = 0.60;   // valid/ready handshake gating
  double fanout_ns_per_log2 = 0.08;  // shift-enable net, per log2(loads)
  double bram_clk_to_out_ns = 1.30;  // M20K registered output
};

struct DesignTiming {
  double critical_path_ns = 0.0;
  double fmax_mhz = 0.0;
  std::string critical_path;  // which path dominated (for reports)
};

/// The shared arithmetic kernel path: adder tree over the tuple followed by
/// the divide/normalise mux.
double kernel_path_ns(std::size_t tuple_size, const TimingParams& p);

/// Baseline design: kernel path vs. address-generation path.
DesignTiming estimate_baseline_timing(std::size_t tuple_size,
                                      std::size_t case_count,
                                      const TimingParams& p = {});

/// Smache design: kernel path vs. gather path (case select + tap mux +
/// handshake + shift-enable fanout) vs. BRAM output path.
DesignTiming estimate_smache_timing(const model::BufferPlan& plan,
                                    const TimingParams& p = {});

}  // namespace smache::cost

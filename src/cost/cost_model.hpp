// Analytic memory-resource cost model (the paper's §III "Memory Utilization
// Cost Model for Design-Space Exploration").
//
// Given a BufferPlan this predicts the register bits and BRAM bits the
// design will occupy, split the same way Table I reports them: `sc` (static
// buffers) and `sm` (stream buffer). The estimate deliberately ignores
// physical BRAM rounding and control/FSM registers — exactly like the
// paper's Estimate rows — so the gap between estimate and elaborated
// "actual" is meaningful and can be asserted on in tests.
#pragma once

#include <cstdint>

#include "model/planner.hpp"
#include "sim/resources.hpp"

namespace smache::cost {

/// R/B split in the style of Table I. All quantities are bits.
struct MemoryEstimate {
  std::uint64_t r_static = 0;  // Rsc: registers used by static buffers
  std::uint64_t b_static = 0;  // Bsc: BRAM bits used by static buffers
  std::uint64_t r_stream = 0;  // Rsm: registers in the stream buffer
  std::uint64_t b_stream = 0;  // Bsm: BRAM bits in the stream buffer

  std::uint64_t r_total() const noexcept { return r_static + r_stream; }
  std::uint64_t b_total() const noexcept { return b_static + b_stream; }
};

/// Predict the memory footprint of a planned Smache instance.
///  Rsm = word_bits * (#window register stages)
///  Bsm = word_bits * (#window BRAM elements)
///  Bsc = word_bits * sum_banks(2 copies * length * replicas)
///  Rsc = 0 (static buffers always map to BRAM in this architecture)
MemoryEstimate estimate_memory(const model::BufferPlan& plan,
                               std::uint32_t word_bits = 32);

/// The same split measured from an elaborated design's ResourceLedger.
/// `design_prefix` is the hierarchy root (e.g. "smache"); static and stream
/// contributions are read from "<root>/static" and "<root>/stream".
struct MemoryActual {
  std::uint64_t r_static = 0;
  std::uint64_t b_static = 0;
  std::uint64_t r_stream = 0;
  std::uint64_t b_stream = 0;
  std::uint64_t r_total = 0;  // includes controller/kernel-interface regs
  std::uint64_t b_total = 0;
  std::uint64_t m20k_blocks = 0;
};

MemoryActual measure_actual(const sim::ResourceLedger& ledger,
                            const std::string& design_prefix);

}  // namespace smache::cost

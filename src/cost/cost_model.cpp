#include "cost/cost_model.hpp"

namespace smache::cost {

MemoryEstimate estimate_memory(const model::BufferPlan& plan,
                               std::uint32_t word_bits) {
  MemoryEstimate e;
  e.r_stream = static_cast<std::uint64_t>(plan.reg_window_elems()) * word_bits;
  e.b_stream =
      static_cast<std::uint64_t>(plan.bram_window_elems()) * word_bits;
  for (const auto& b : plan.static_buffers())
    e.b_static += 2ull * b.length * b.replicas * word_bits;
  e.r_static = 0;
  return e;
}

MemoryActual measure_actual(const sim::ResourceLedger& ledger,
                            const std::string& design_prefix) {
  MemoryActual a;
  const std::string st = design_prefix + "/static";
  const std::string sm = design_prefix + "/stream";
  a.r_static = ledger.total(sim::ResKind::RegisterBits, st);
  a.b_static = ledger.total(sim::ResKind::BramBits, st);
  a.r_stream = ledger.total(sim::ResKind::RegisterBits, sm);
  a.b_stream = ledger.total(sim::ResKind::BramBits, sm);
  a.r_total = ledger.total(sim::ResKind::RegisterBits, design_prefix);
  a.b_total = ledger.total(sim::ResKind::BramBits, design_prefix);
  a.m20k_blocks = ledger.total(sim::ResKind::BramBlocks, design_prefix);
  return a;
}

}  // namespace smache::cost

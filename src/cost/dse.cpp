#include "cost/dse.hpp"

#include <algorithm>

namespace smache::cost {

std::string DsePoint::label() const {
  if (impl == model::StreamImpl::RegisterOnly) return "Case-R";
  return "Case-H/t" + std::to_string(bram_segment_threshold);
}

std::vector<DsePoint> explore(const DseRequest& request) {
  std::vector<DsePoint> points;

  auto add_point = [&](model::StreamImpl impl, std::size_t threshold) {
    model::PlannerOptions opts;
    opts.stream_impl = impl;
    opts.bram_segment_threshold = threshold;
    const model::Planner planner(opts);
    const model::BufferPlan plan =
        planner.plan(request.height, request.width, request.shape,
                     request.bc);
    DsePoint p;
    p.impl = impl;
    p.bram_segment_threshold = threshold;
    p.memory = estimate_memory(plan);
    p.timing = estimate_smache_timing(plan);
    p.fit = check_fit(request.device, p.memory.r_total(), p.memory.b_total());
    points.push_back(std::move(p));
  };

  add_point(model::StreamImpl::RegisterOnly, 4);
  for (std::size_t t : request.thresholds)
    add_point(model::StreamImpl::Hybrid, t);

  // Pareto marking on (register bits, BRAM bits): a point is dominated if
  // another point is <= on both axes and < on at least one.
  for (auto& p : points) {
    p.pareto = true;
    for (const auto& q : points) {
      const bool le = q.memory.r_total() <= p.memory.r_total() &&
                      q.memory.b_total() <= p.memory.b_total();
      const bool lt = q.memory.r_total() < p.memory.r_total() ||
                      q.memory.b_total() < p.memory.b_total();
      if (le && lt) {
        p.pareto = false;
        break;
      }
    }
  }
  return points;
}

}  // namespace smache::cost

#include "cost/dse.hpp"

#include <algorithm>

#include "common/parallel.hpp"

namespace smache::cost {

std::string DsePoint::label() const {
  if (impl == model::StreamImpl::RegisterOnly) return "Case-R";
  return "Case-H/t" + std::to_string(bram_segment_threshold);
}

std::vector<DsePoint> explore(const DseRequest& request) {
  // Enumerate the configurations first, then evaluate them concurrently —
  // every point is an independent planner + cost-model run, and each worker
  // writes only its own index, so the point vector is identical for any
  // thread count.
  struct Config {
    model::StreamImpl impl;
    std::size_t threshold;
  };
  std::vector<Config> configs;
  configs.push_back({model::StreamImpl::RegisterOnly, 4});
  for (std::size_t t : request.thresholds)
    configs.push_back({model::StreamImpl::Hybrid, t});

  std::vector<DsePoint> points(configs.size());
  parallel_for_index(configs.size(), request.threads, [&](std::size_t i) {
    model::PlannerOptions opts;
    opts.stream_impl = configs[i].impl;
    opts.bram_segment_threshold = configs[i].threshold;
    const model::Planner planner(opts);
    const model::BufferPlan plan =
        planner.plan(request.height, request.width, request.shape,
                     request.bc);
    DsePoint& p = points[i];
    p.impl = configs[i].impl;
    p.bram_segment_threshold = configs[i].threshold;
    p.memory = estimate_memory(plan);
    p.timing = estimate_smache_timing(plan);
    p.fit = check_fit(request.device, p.memory.r_total(), p.memory.b_total());
  });

  // Pareto marking on (register bits, BRAM bits): a point is dominated if
  // another point is <= on both axes and < on at least one.
  for (auto& p : points) {
    p.pareto = true;
    for (const auto& q : points) {
      const bool le = q.memory.r_total() <= p.memory.r_total() &&
                      q.memory.b_total() <= p.memory.b_total();
      const bool lt = q.memory.r_total() < p.memory.r_total() ||
                      q.memory.b_total() < p.memory.b_total();
      if (le && lt) {
        p.pareto = false;
        break;
      }
    }
  }
  return points;
}

}  // namespace smache::cost

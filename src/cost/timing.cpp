#include "cost/timing.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"

namespace smache::cost {

namespace {
DesignTiming pick(std::initializer_list<std::pair<const char*, double>>
                      paths) {
  DesignTiming t;
  for (const auto& [name, ns] : paths) {
    if (ns > t.critical_path_ns) {
      t.critical_path_ns = ns;
      t.critical_path = name;
    }
  }
  t.fmax_mhz = t.critical_path_ns > 0 ? 1000.0 / t.critical_path_ns : 0.0;
  return t;
}

double log2d(std::size_t n) { return n <= 1 ? 0.0 : std::log2(double(n)); }
}  // namespace

double kernel_path_ns(std::size_t tuple_size, const TimingParams& p) {
  // Adder tree of depth ceil(log2(n)) on the carry chains, then the
  // divide-by-valid-count mux (shift for 2/4, small multiply-add for 3).
  const double tree =
      static_cast<double>(smache::ceil_log2(std::max<std::size_t>(
          tuple_size, 1))) *
      p.carry32_ns;
  return p.ff_clk_to_q_ns + tree + p.mux_level_ns + p.ff_setup_ns;
}

DesignTiming estimate_baseline_timing(std::size_t tuple_size,
                                      std::size_t case_count,
                                      const TimingParams& p) {
  const double kernel = kernel_path_ns(tuple_size, p);
  // Address generation: cell counter add + wrap mux + small case decode.
  const double addr = p.ff_clk_to_q_ns + p.carry32_ns + p.mux_level_ns +
                      p.lut_level_ns * log2d(case_count) * 0.25 +
                      p.ff_setup_ns;
  return pick({{"kernel adder tree", kernel}, {"address generation", addr}});
}

DesignTiming estimate_smache_timing(const model::BufferPlan& plan,
                                    const TimingParams& p) {
  const double kernel = kernel_path_ns(plan.shape().size(), p);
  // Gather path: row/col zone compares -> case-select mux over all cases ->
  // validity masking -> stall gate, with the shift-enable net fanning out
  // to every window register stage.
  const std::size_t cases = plan.cases().case_count();
  const double gather =
      p.ff_clk_to_q_ns + 2.0 * p.zone_compare_ns +
      static_cast<double>(smache::ceil_log2(cases)) * p.mux_level_ns +
      p.lut_level_ns + p.stall_gate_ns +
      p.fanout_ns_per_log2 * log2d(plan.reg_window_elems()) + p.ff_setup_ns;
  // Static-buffer read: M20K output register through the source mux into
  // the kernel input register.
  const double bram = p.bram_clk_to_out_ns + 2.0 * p.mux_level_ns +
                      p.ff_setup_ns;
  return pick({{"kernel adder tree", kernel},
               {"gather case mux", gather},
               {"static buffer read", bram}});
}

}  // namespace smache::cost

#include "cost/device.hpp"

#include "common/bits.hpp"

namespace smache::cost {

FitReport check_fit(const DeviceModel& device, std::uint64_t register_bits,
                    std::uint64_t bram_bits) {
  FitReport r;
  r.m20k_needed = smache::ceil_div(bram_bits, mem::kM20kBits);
  r.register_utilisation = device.registers == 0
                               ? 1.0
                               : static_cast<double>(register_bits) /
                                     static_cast<double>(device.registers);
  r.bram_utilisation = device.bram_bits() == 0
                           ? 1.0
                           : static_cast<double>(bram_bits) /
                                 static_cast<double>(device.bram_bits());
  r.fits = register_bits <= device.registers &&
           r.m20k_needed <= device.m20k_blocks;
  return r;
}

}  // namespace smache::cost

// FPGA device capacity model — enough geometry to turn bit counts into
// block counts and check that a plan fits the part, in the spirit of the
// paper's Stratix-V target.
#pragma once

#include <cstdint>
#include <string>

#include "mem/bram.hpp"

namespace smache::cost {

struct DeviceModel {
  std::string name;
  std::uint64_t alms = 0;
  std::uint64_t registers = 0;    // dedicated flip-flops
  std::uint64_t m20k_blocks = 0;  // 20 Kbit BRAM blocks
  std::uint64_t bram_bits() const noexcept {
    return m20k_blocks * mem::kM20kBits;
  }

  /// Stratix V GX A7 — the class of device the paper synthesised for.
  static DeviceModel stratix_v() {
    return DeviceModel{"Stratix V GX A7", 234720, 938880, 2560};
  }
  /// A small device, useful for exercising budget failures in tests.
  static DeviceModel small_device() {
    return DeviceModel{"small-test-device", 8000, 32000, 16};
  }
};

/// Whether a (register bits, BRAM bits) footprint fits the device.
struct FitReport {
  bool fits = false;
  double register_utilisation = 0.0;  // fraction of device registers
  double bram_utilisation = 0.0;      // fraction of device BRAM bits
  std::uint64_t m20k_needed = 0;
};

FitReport check_fit(const DeviceModel& device, std::uint64_t register_bits,
                    std::uint64_t bram_bits);

}  // namespace smache::cost

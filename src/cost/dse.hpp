// Design-space exploration over the stream-buffer implementation knobs —
// the exercise the paper's cost model exists to enable: trading register
// bits against BRAM bits while watching predicted Fmax.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cost/cost_model.hpp"
#include "cost/device.hpp"
#include "cost/timing.hpp"
#include "grid/boundary.hpp"
#include "grid/stencil.hpp"
#include "model/planner.hpp"

namespace smache::cost {

/// One explored configuration with its predicted costs.
struct DsePoint {
  model::StreamImpl impl = model::StreamImpl::Hybrid;
  std::size_t bram_segment_threshold = 4;
  MemoryEstimate memory;
  DesignTiming timing;
  FitReport fit;
  bool pareto = false;  // not dominated on (register bits, bram bits)
  std::string label() const;
};

struct DseRequest {
  std::size_t height = 0;
  std::size_t width = 0;
  grid::StencilShape shape = grid::StencilShape::von_neumann4();
  grid::BoundarySpec bc = grid::BoundarySpec::paper_example();
  DeviceModel device = DeviceModel::stratix_v();
  /// Thresholds to sweep for the hybrid split (>= 3 each).
  std::vector<std::size_t> thresholds = {3, 4, 8, 16, 32};
  /// Worker threads for the point evaluations (0 = hardware threads).
  /// Results are index-collated: any thread count returns the identical
  /// point vector the serial sweep produces.
  std::size_t threads = 1;
};

/// Sweep Case-R plus Case-H at each threshold; marks the register/BRAM
/// Pareto frontier. Points are planned/costed concurrently on
/// `request.threads` workers (each point is an independent planner run).
std::vector<DsePoint> explore(const DseRequest& request);

}  // namespace smache::cost

// The Planner turns a stencil problem into a concrete buffer architecture
// (BufferPlan): the window geometry (register/BRAM layout and tap
// positions), the set of static buffers, and the per-case gather table that
// tells the hardware where every tuple element comes from.
//
// This is the paper's "two-layer architecture customization" (§III): the
// *number and identity of static buffers* comes from static analysis
// (layer 1), and the remaining parameters (taps, shifts, constants) are
// configuration (layer 2). The window/static trade is decided with the
// Algorithm 1 objective: a far element joins the window only if extending
// the window span costs fewer on-chip elements than a (double-buffered)
// static row buffer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/word.hpp"
#include "grid/boundary.hpp"
#include "grid/stencil.hpp"
#include "grid/zones.hpp"

namespace smache::model {

/// Stream-buffer implementation style (the paper's Case-R / Case-H).
enum class StreamImpl { RegisterOnly, Hybrid };

const char* to_string(StreamImpl impl) noexcept;

struct PlannerOptions {
  StreamImpl stream_impl = StreamImpl::Hybrid;
  /// Minimum interior gap between register positions that is worth a BRAM
  /// FIFO segment; smaller gaps stay in registers. 4 reproduces the
  /// microarchitecture the paper synthesised (see DESIGN.md §5).
  std::size_t bram_segment_threshold = 4;
  /// Optional feasibility check: total planned on-chip bits must fit.
  std::optional<std::uint64_t> onchip_budget_bits;
};

/// A static buffer: one on-chip bank per far grid row, double-buffered.
struct StaticBufferSpec {
  std::string name;       // e.g. "rowT0", "rowB10"
  std::size_t grid_row;   // input-grid row held by the active copy
  std::size_t length;     // elements (= grid width)
  std::size_t replicas;   // read-port replication (>= 1)
  /// True: maintained by FSM-3 write-through from the kernel output (and
  /// filled once by the FSM-1 warm-up). False: re-prefetched by FSM-1
  /// every work-instance.
  bool write_through = true;
};

/// Where one (case, tuple-element) pair is gathered from.
enum class SourceKind : std::uint8_t { Window, Static, Constant, Skip };

struct GatherSource {
  SourceKind kind = SourceKind::Skip;
  /// Window: the tap's age (1 = newest register stage).
  std::uint32_t window_age = 0;
  /// Static: buffer index, replica to read, and the column shift such that
  /// element index = cell_col + col_shift (always lands in [0, width)).
  std::uint32_t static_index = 0;
  std::uint32_t replica = 0;
  std::int64_t col_shift = 0;
  /// Constant: halo value.
  word_t constant = 0;
};

/// A BRAM FIFO segment of the hybrid window: values flow
/// reg(in_stage_age) -> BRAM(bram_len elements) -> reg(out_stage_age).
struct FifoSegment {
  std::size_t in_stage_age = 0;
  std::size_t bram_len = 0;
  std::size_t out_stage_age = 0;
};

class BufferPlan {
 public:
  BufferPlan(std::size_t height, std::size_t width,
             grid::StencilShape shape, grid::BoundarySpec bc);
  /// 3D plan: the stream is the slice-major linearisation, so a depth-D
  /// grid plans like a 2D grid of D*height global rows (static banks hold
  /// global rows; window distances use the 3D linear stream distance).
  BufferPlan(std::size_t height, std::size_t width, std::size_t depth,
             grid::StencilShape shape, grid::BoundarySpec bc);

  std::size_t height() const noexcept { return height_; }
  std::size_t width() const noexcept { return width_; }
  std::size_t depth() const noexcept { return depth_; }
  /// Cell count of the planned grid (height * width * depth).
  std::size_t cells() const noexcept { return height_ * width_ * depth_; }
  /// Rows of the streamed image: depth * height.
  std::size_t global_rows() const noexcept { return depth_ * height_; }
  const grid::StencilShape& shape() const noexcept { return shape_; }
  const grid::BoundarySpec& bc() const noexcept { return bc_; }
  const grid::CaseMap& cases() const noexcept { return cases_; }
  StreamImpl stream_impl() const noexcept { return stream_impl_; }

  /// Window geometry. Ages run 1 (newest) .. window_len (oldest); the
  /// element at `center_age` is the cell currently being produced.
  std::size_t window_len() const noexcept { return window_len_; }
  std::size_t center_age() const noexcept { return center_age_; }
  const std::vector<std::size_t>& reg_ages() const noexcept {
    return reg_ages_;
  }
  const std::vector<FifoSegment>& fifo_segments() const noexcept {
    return fifo_segments_;
  }
  const std::vector<std::size_t>& tap_ages() const noexcept {
    return tap_ages_;
  }

  const std::vector<StaticBufferSpec>& static_buffers() const noexcept {
    return static_buffers_;
  }

  /// gather(case_id) -> one GatherSource per stencil offset, in order.
  const std::vector<GatherSource>& gather(std::size_t case_id) const;

  // Derived counts used by the cost model.
  std::size_t reg_window_elems() const noexcept { return reg_ages_.size(); }
  std::size_t bram_window_elems() const noexcept;
  std::size_t num_taps() const noexcept { return tap_ages_.size(); }
  bool needs_warmup() const noexcept;

  /// Pretty multi-line description for reports/examples.
  std::string describe() const;

 private:
  friend class Planner;

  std::size_t height_;
  std::size_t width_;
  std::size_t depth_;
  grid::StencilShape shape_;
  grid::BoundarySpec bc_;
  grid::CaseMap cases_;
  StreamImpl stream_impl_ = StreamImpl::Hybrid;

  std::size_t window_len_ = 0;
  std::size_t center_age_ = 0;
  std::vector<std::size_t> reg_ages_;
  std::vector<FifoSegment> fifo_segments_;
  std::vector<std::size_t> tap_ages_;
  std::vector<StaticBufferSpec> static_buffers_;
  std::vector<std::vector<GatherSource>> gather_;
};

class Planner {
 public:
  explicit Planner(PlannerOptions opts = {}) : opts_(opts) {}

  /// Derive the buffer architecture for a problem. Throws contract_error
  /// with a descriptive message when the problem is infeasible (grid too
  /// small for the stencil, or over the on-chip budget).
  BufferPlan plan(std::size_t height, std::size_t width,
                  const grid::StencilShape& shape,
                  const grid::BoundarySpec& bc) const;

  /// Depth-aware overload; the 2D form is this one with depth = 1.
  BufferPlan plan(std::size_t height, std::size_t width, std::size_t depth,
                  const grid::StencilShape& shape,
                  const grid::BoundarySpec& bc) const;

 private:
  PlannerOptions opts_;
};

}  // namespace smache::model

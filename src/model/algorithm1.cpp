#include "model/algorithm1.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace smache::model {

namespace {

std::uint64_t reach_of(const std::vector<std::int64_t>& sorted) {
  if (sorted.empty()) return 0;
  return static_cast<std::uint64_t>(sorted.back() - sorted.front());
}

RangeSplit make_split(std::vector<std::int64_t> kept,
                      std::vector<std::int64_t> moved,
                      std::uint64_t range_len) {
  std::sort(kept.begin(), kept.end());
  std::sort(moved.begin(), moved.end());
  RangeSplit s;
  s.stream_reach = reach_of(kept);
  s.static_elems = moved.size() * range_len;
  s.stream_offsets = std::move(kept);
  s.static_offsets = std::move(moved);
  return s;
}

RangeSplit paper_prefix(const RangeSpec& range) {
  // Sort by |offset| descending: the farthest elements are moved to static
  // buffers first, exactly matching the trade the paper's loop explores
  // (static_i = i * R_j after moving i elements).
  std::vector<std::int64_t> by_distance = range.tuple.offsets;
  std::stable_sort(by_distance.begin(), by_distance.end(),
                   [](std::int64_t a, std::int64_t b) {
                     const auto aa = a < 0 ? -a : a;
                     const auto bb = b < 0 ? -b : b;
                     return aa > bb;
                   });
  const std::size_t n = by_distance.size();
  std::uint64_t best_total = std::numeric_limits<std::uint64_t>::max();
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Move the i farthest offsets to static buffers; keep the rest.
    std::vector<std::int64_t> kept(by_distance.begin() +
                                       static_cast<std::ptrdiff_t>(i),
                                   by_distance.end());
    std::sort(kept.begin(), kept.end());
    const std::uint64_t total = reach_of(kept) + i * range.length;
    if (total < best_total) {
      best_total = total;
      best_i = i;
    }
  }
  std::vector<std::int64_t> moved(
      by_distance.begin(),
      by_distance.begin() + static_cast<std::ptrdiff_t>(best_i));
  std::vector<std::int64_t> kept(
      by_distance.begin() + static_cast<std::ptrdiff_t>(best_i),
      by_distance.end());
  return make_split(std::move(kept), std::move(moved), range.length);
}

RangeSplit optimal_interval(const RangeSpec& range) {
  std::vector<std::int64_t> sorted = range.tuple.offsets;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  std::uint64_t best_total = std::numeric_limits<std::uint64_t>::max();
  std::size_t best_a = 0, best_b = 0;
  bool best_empty = true;
  // Empty kept-set: everything static, reach 0.
  best_total = n * range.length;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a; b < n; ++b) {
      const std::uint64_t reach =
          static_cast<std::uint64_t>(sorted[b] - sorted[a]);
      const std::uint64_t moved = n - (b - a + 1);
      const std::uint64_t total = reach + moved * range.length;
      // Strict < keeps the smallest interval on ties, preferring more
      // static buffering only when it genuinely wins.
      if (total < best_total) {
        best_total = total;
        best_a = a;
        best_b = b;
        best_empty = false;
      }
    }
  }
  std::vector<std::int64_t> kept, moved;
  for (std::size_t i = 0; i < n; ++i) {
    if (!best_empty && i >= best_a && i <= best_b)
      kept.push_back(sorted[i]);
    else
      moved.push_back(sorted[i]);
  }
  return make_split(std::move(kept), std::move(moved), range.length);
}

}  // namespace

RangeSplit calc_opt_sz(const RangeSpec& range, Algo1Mode mode) {
  SMACHE_REQUIRE(!range.tuple.offsets.empty());
  SMACHE_REQUIRE(range.length >= 1);
  return mode == Algo1Mode::PaperPrefix ? paper_prefix(range)
                                        : optimal_interval(range);
}

RangeSplit exhaustive_best_split(const RangeSpec& range) {
  const auto& offs = range.tuple.offsets;
  const std::size_t n = offs.size();
  SMACHE_REQUIRE_MSG(n <= 20, "exhaustive oracle limited to 20 offsets");
  std::uint64_t best_total = std::numeric_limits<std::uint64_t>::max();
  std::uint32_t best_mask = 0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::int64_t lo = 0, hi = 0;
    bool any = false;
    std::uint64_t moved = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        if (!any) {
          lo = hi = offs[i];
          any = true;
        } else {
          lo = std::min(lo, offs[i]);
          hi = std::max(hi, offs[i]);
        }
      } else {
        ++moved;
      }
    }
    const std::uint64_t reach = any ? static_cast<std::uint64_t>(hi - lo) : 0;
    const std::uint64_t total = reach + moved * range.length;
    if (total < best_total) {
      best_total = total;
      best_mask = mask;
    }
  }
  std::vector<std::int64_t> kept, moved_v;
  for (std::size_t i = 0; i < n; ++i) {
    if (best_mask & (1u << i)) kept.push_back(offs[i]);
    else moved_v.push_back(offs[i]);
  }
  return [&] {
    std::sort(kept.begin(), kept.end());
    std::sort(moved_v.begin(), moved_v.end());
    RangeSplit s;
    s.stream_reach = kept.empty()
                         ? 0
                         : static_cast<std::uint64_t>(kept.back() -
                                                      kept.front());
    s.static_elems = moved_v.size() * range.length;
    s.stream_offsets = std::move(kept);
    s.static_offsets = std::move(moved_v);
    return s;
  }();
}

BufferSizes optimal_buffer_sizes(const std::vector<RangeSpec>& ranges,
                                 Algo1Mode mode) {
  SMACHE_REQUIRE(!ranges.empty());
  BufferSizes out;
  for (const auto& r : ranges) {
    RangeSplit s = calc_opt_sz(r, mode);
    out.stream_buffer_reach =
        std::max(out.stream_buffer_reach, s.stream_reach);
    out.static_total_elems += s.static_elems;
    out.per_range.push_back(std::move(s));
  }
  return out;
}

}  // namespace smache::model

// The paper's formal model (§II): streams over a memory vector, stream
// tuples, and the two quantities that size buffers — *range* (how many
// stream elements a computation covers) and *reach* (max minus min offset
// within a tuple).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/word.hpp"
#include "model/iteration.hpp"

namespace smache::model {

/// A read-only view of a memory vector through an iteration pattern:
/// s[i] = m[p(i)]. Mirrors the paper's definition exactly.
class StreamView {
 public:
  StreamView(const std::vector<word_t>& m, const IterationPattern& p)
      : m_(&m), p_(&p) {
    // Every pattern index must land inside the memory.
    for (std::uint64_t i = 0; i < p.size(); ++i)
      SMACHE_REQUIRE_MSG(p.at(i) < m.size(),
                         "iteration pattern escapes the memory vector");
  }

  std::uint64_t size() const noexcept { return p_->size(); }
  word_t at(std::uint64_t i) const {
    SMACHE_REQUIRE(i < p_->size());
    return (*m_)[p_->at(i)];
  }

 private:
  const std::vector<word_t>* m_;
  const IterationPattern* p_;
};

/// A stream tuple: the set of stream offsets a computation touches around
/// each element (e.g. {-k,-1,0,+1,+k}).
struct TupleSpec {
  std::vector<std::int64_t> offsets;

  std::int64_t min_offset() const {
    SMACHE_REQUIRE(!offsets.empty());
    std::int64_t lo = offsets[0];
    for (auto o : offsets) lo = lo < o ? lo : o;
    return lo;
  }
  std::int64_t max_offset() const {
    SMACHE_REQUIRE(!offsets.empty());
    std::int64_t hi = offsets[0];
    for (auto o : offsets) hi = hi > o ? hi : o;
    return hi;
  }
  /// Paper: reach = max offset - min offset.
  std::int64_t reach() const { return max_offset() - min_offset(); }
  std::size_t size() const noexcept { return offsets.size(); }
};

/// One of the k non-overlapping ranges the streams are divided into: a
/// contiguous span of stream indices sharing a tuple shape.
struct RangeSpec {
  std::uint64_t start = 0;
  std::uint64_t length = 0;  // R_j in the paper
  TupleSpec tuple;
};

}  // namespace smache::model

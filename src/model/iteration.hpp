// Iteration patterns — the paper's p_i / p_o: an ordered subset of a
// permutation of 0..N-1 describing how a computation walks memory. Streams
// are accesses through a pattern: s[i] = m[p(i)].
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace smache::model {

class IterationPattern {
 public:
  /// Identity pattern 0..n-1 (contiguous streaming — the pattern Smache is
  /// designed to preserve).
  static IterationPattern contiguous(std::uint64_t n) {
    IterationPattern p;
    p.kind_ = Kind::Affine;
    p.start_ = 0;
    p.stride_ = 1;
    p.count_ = n;
    return p;
  }

  /// Affine pattern start, start+stride, ... (stride >= 1).
  static IterationPattern strided(std::uint64_t start, std::uint64_t stride,
                                  std::uint64_t count) {
    SMACHE_REQUIRE(stride >= 1);
    IterationPattern p;
    p.kind_ = Kind::Affine;
    p.start_ = start;
    p.stride_ = stride;
    p.count_ = count;
    return p;
  }

  /// Arbitrary explicit pattern (general ordered subset of a permutation).
  static IterationPattern permutation(std::vector<std::uint64_t> indices) {
    IterationPattern p;
    p.kind_ = Kind::Explicit;
    p.count_ = indices.size();
    p.indices_ = std::move(indices);
    return p;
  }

  std::uint64_t size() const noexcept { return count_; }

  /// p(i): the memory index touched at stream position i.
  std::uint64_t at(std::uint64_t i) const {
    SMACHE_REQUIRE(i < count_);
    return kind_ == Kind::Affine ? start_ + stride_ * i : indices_[i];
  }

  bool is_contiguous() const noexcept {
    return kind_ == Kind::Affine && stride_ == 1;
  }
  bool is_affine() const noexcept { return kind_ == Kind::Affine; }
  std::uint64_t stride() const noexcept {
    return kind_ == Kind::Affine ? stride_ : 0;
  }

 private:
  enum class Kind { Affine, Explicit };
  Kind kind_ = Kind::Affine;
  std::uint64_t start_ = 0;
  std::uint64_t stride_ = 1;
  std::uint64_t count_ = 0;
  std::vector<std::uint64_t> indices_;
};

}  // namespace smache::model

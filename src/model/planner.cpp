#include "model/planner.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/assert.hpp"

namespace smache::model {

const char* to_string(StreamImpl impl) noexcept {
  return impl == StreamImpl::RegisterOnly ? "register-only (Case-R)"
                                          : "hybrid (Case-H)";
}

BufferPlan::BufferPlan(std::size_t height, std::size_t width,
                       grid::StencilShape shape, grid::BoundarySpec bc)
    : BufferPlan(height, width, 1, std::move(shape), bc) {}

BufferPlan::BufferPlan(std::size_t height, std::size_t width,
                       std::size_t depth, grid::StencilShape shape,
                       grid::BoundarySpec bc)
    : height_(height),
      width_(width),
      depth_(depth),
      shape_(std::move(shape)),
      bc_(bc),
      cases_(height, width, depth, shape_) {}

const std::vector<GatherSource>& BufferPlan::gather(
    std::size_t case_id) const {
  SMACHE_REQUIRE(case_id < gather_.size());
  return gather_[case_id];
}

std::size_t BufferPlan::bram_window_elems() const noexcept {
  std::size_t n = 0;
  for (const auto& s : fifo_segments_) n += s.bram_len;
  return n;
}

bool BufferPlan::needs_warmup() const noexcept {
  for (const auto& b : static_buffers_)
    if (b.write_through) return true;
  return false;
}

std::string BufferPlan::describe() const {
  std::ostringstream out;
  out << "BufferPlan " << height_ << "x" << width_;
  // Depth is spelled only for 3D plans so every 2D description — some are
  // golden-compared in tests — is byte-identical.
  if (depth_ > 1) out << "x" << depth_;
  out << " stencil="
      << shape_.name() << " rows=" << grid::to_string(bc_.rows.kind)
      << " cols=" << grid::to_string(bc_.cols.kind);
  if (depth_ > 1)
    out << " slices=" << grid::to_string(bc_.slices.kind);
  out << "\n";
  out << "  stream impl: " << to_string(stream_impl_) << "\n";
  out << "  window: " << window_len_ << " elements (centre age "
      << center_age_ << "), " << reg_ages_.size() << " in registers, "
      << bram_window_elems() << " in BRAM across " << fifo_segments_.size()
      << " FIFO segment(s)\n";
  out << "  taps at ages:";
  for (auto a : tap_ages_) out << ' ' << a;
  out << "\n  static buffers: " << static_buffers_.size() << "\n";
  for (const auto& b : static_buffers_)
    out << "    " << b.name << " holds grid row " << b.grid_row << " ("
        << b.length << " elems, x" << b.replicas << " replica(s), "
        << (b.write_through ? "write-through" : "prefetch") << ")\n";
  out << "  cases: " << cases_.case_count() << "\n";
  return out.str();
}

namespace {

/// Intermediate resolution for one (case, offset): what resolve() said,
/// plus the linear stream distance for Cell targets and whether the target
/// GLOBAL row (slice * height + row) is pinned to an exact value (required
/// for static buffering — a bank holds one concrete stream row).
struct Entry {
  grid::Resolved resolved;
  std::int64_t d = 0;       // linear stream distance for Cell kind
  bool row_exact = false;   // target global row known exactly for this case
  std::size_t target_row = 0;  // global row
  // decision:
  bool use_static = false;
};

}  // namespace

BufferPlan Planner::plan(std::size_t height, std::size_t width,
                         const grid::StencilShape& shape,
                         const grid::BoundarySpec& bc) const {
  return plan(height, width, 1, shape, bc);
}

BufferPlan Planner::plan(std::size_t height, std::size_t width,
                         std::size_t depth,
                         const grid::StencilShape& shape,
                         const grid::BoundarySpec& bc) const {
  SMACHE_REQUIRE_MSG(opts_.bram_segment_threshold >= 3,
                     "bram_segment_threshold must be >= 3 so every BRAM "
                     "FIFO is deep enough for its pointer discipline");
  BufferPlan plan(height, width, depth, shape, bc);
  plan.stream_impl_ = opts_.stream_impl;

  const auto& cases = plan.cases();
  const auto W = static_cast<std::int64_t>(width);
  const auto H = static_cast<std::int64_t>(height);
  const std::size_t n_cases = cases.case_count();
  const std::size_t n_off = shape.size();

  // ---- Pass 1: resolve every (case, offset) pair ----
  std::vector<std::vector<Entry>> entries(n_cases,
                                          std::vector<Entry>(n_off));
  for (std::size_t zs = 0; zs < cases.slices().count(); ++zs) {
  for (std::size_t zr = 0; zr < cases.rows().count(); ++zr) {
    for (std::size_t zc = 0; zc < cases.cols().count(); ++zc) {
      const std::size_t id = cases.case_id(zs, zr, zc);
      const std::size_t s_rep = cases.slices().representative(zs);
      const std::size_t r_rep = cases.rows().representative(zr);
      const std::size_t c_rep = cases.cols().representative(zc);
      for (std::size_t j = 0; j < n_off; ++j) {
        const grid::Offset2 o = shape.offsets()[j];
        Entry& e = entries[id][j];
        e.resolved = grid::resolve(s_rep, r_rep, c_rep, o.ds, o.dr, o.dc,
                                   depth, height, width, bc);
        if (e.resolved.kind == grid::Resolved::Kind::Cell) {
          // Linear stream distance on the slice-major stream: element
          // (s, r, c) streams at ((s*H + r)*W + c).
          e.d = ((static_cast<std::int64_t>(e.resolved.s) -
                  static_cast<std::int64_t>(s_rep)) *
                     H +
                 (static_cast<std::int64_t>(e.resolved.r) -
                  static_cast<std::int64_t>(r_rep))) *
                    W +
                (static_cast<std::int64_t>(e.resolved.c) -
                 static_cast<std::int64_t>(c_rep));
          // The target global row is exact when the cell's own row zone is
          // exact (non Mid) AND — for 3D plans — its slice zone is exact;
          // Mid zones never wrap by zone construction, so their targets
          // are relative. For depth == 1 the single slice zone is Mid and
          // pinned by construction, so the 2D decision is unchanged.
          const bool slice_pinned =
              depth == 1 || cases.slices().is_exact(zs);
          e.row_exact = slice_pinned && cases.rows().is_exact(zr);
          e.target_row = e.resolved.s * height + e.resolved.r;
        }
      }
    }
  }
  }

  // ---- Pass 2: base window span from the all-Mid case ----
  // The span always includes 0 (the pass-through position), which also
  // guarantees a well-formed window for pure-future or pure-past shapes.
  const std::size_t mid_case =
      cases.case_id(cases.slices().mid(), cases.rows().mid(),
                    cases.cols().mid());
  std::int64_t d_lo = 0, d_hi = 0;
  for (std::size_t j = 0; j < n_off; ++j) {
    const Entry& e = entries[mid_case][j];
    if (e.resolved.kind != grid::Resolved::Kind::Cell) continue;
    d_lo = std::min(d_lo, e.d);
    d_hi = std::max(d_hi, e.d);
  }

  // ---- Pass 3: window-vs-static decision for out-of-span targets ----
  // Algorithm 1 objective applied greedily, nearest distance first: extend
  // the window iff the extra window elements cost less than a new
  // double-buffered static row bank (reusing an existing bank is free).
  struct Far {
    std::size_t case_id, off;
    std::int64_t d;
  };
  std::vector<Far> far;
  for (std::size_t id = 0; id < n_cases; ++id)
    for (std::size_t j = 0; j < n_off; ++j) {
      const Entry& e = entries[id][j];
      if (e.resolved.kind == grid::Resolved::Kind::Cell &&
          (e.d < d_lo || e.d > d_hi))
        far.push_back(Far{id, j, e.d});
    }
  // Total order (ties broken on case/offset) so plans — and therefore
  // bank numbering and generated Verilog — are identical on every
  // platform.
  std::sort(far.begin(), far.end(), [](const Far& a, const Far& b) {
    const auto aa = a.d < 0 ? -a.d : a.d;
    const auto bb = b.d < 0 ? -b.d : b.d;
    if (aa != bb) return aa < bb;
    if (a.case_id != b.case_id) return a.case_id < b.case_id;
    return a.off < b.off;
  });

  std::map<std::size_t, std::size_t> bank_of_row;  // grid row -> bank index
  for (const Far& f : far) {
    Entry& e = entries[f.case_id][f.off];
    if (e.d >= d_lo && e.d <= d_hi) continue;  // earlier extension covered it
    const std::uint64_t extend_cost =
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, e.d - d_hi)) +
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, d_lo - e.d));
    if (e.row_exact) {
      const bool bank_exists = bank_of_row.count(e.target_row) != 0;
      const std::uint64_t static_cost = bank_exists ? 0 : 2 * width;
      if (static_cost < extend_cost) {
        e.use_static = true;
        if (!bank_exists) {
          const std::size_t idx = bank_of_row.size();
          bank_of_row.emplace(e.target_row, idx);
        }
        continue;
      }
    }
    // Extend the window (ties also land here: fewer moving parts).
    d_lo = std::min(d_lo, e.d);
    d_hi = std::max(d_hi, e.d);
  }

  // ---- Pass 4: window geometry ----
  // Ages: 1 = entry register (newest). The element for output index i sits
  // at center_age when the tap for the farthest future distance d_hi sits
  // at age 2 (one stage after entry). Oldest needed tap age + 1 exit stage.
  plan.center_age_ = static_cast<std::size_t>(d_hi + 2);
  plan.window_len_ = static_cast<std::size_t>(d_hi - d_lo + 3);

  // ---- Pass 5: static buffer list & gather table ----
  std::vector<StaticBufferSpec> banks(bank_of_row.size());
  for (const auto& [row, idx] : bank_of_row) {
    StaticBufferSpec b;
    b.grid_row = row;
    b.length = width;
    b.replicas = 1;
    b.write_through = true;
    b.name = "row" + std::to_string(row);
    banks[idx] = std::move(b);
  }

  plan.gather_.assign(n_cases, std::vector<GatherSource>(n_off));
  for (std::size_t zs = 0; zs < cases.slices().count(); ++zs) {
  for (std::size_t zr = 0; zr < cases.rows().count(); ++zr) {
    for (std::size_t zc = 0; zc < cases.cols().count(); ++zc) {
      const std::size_t id = cases.case_id(zs, zr, zc);
      const std::size_t c_rep = cases.cols().representative(zc);
      std::map<std::size_t, std::size_t> reads_per_bank;
      for (std::size_t j = 0; j < n_off; ++j) {
        const Entry& e = entries[id][j];
        GatherSource& g = plan.gather_[id][j];
        switch (e.resolved.kind) {
          case grid::Resolved::Kind::Missing:
            g.kind = SourceKind::Skip;
            break;
          case grid::Resolved::Kind::Constant:
            g.kind = SourceKind::Constant;
            g.constant = e.resolved.constant;
            break;
          case grid::Resolved::Kind::Cell:
            if (e.use_static) {
              const std::size_t bank = bank_of_row.at(e.target_row);
              g.kind = SourceKind::Static;
              g.static_index = static_cast<std::uint32_t>(bank);
              g.col_shift = static_cast<std::int64_t>(e.resolved.c) -
                            static_cast<std::int64_t>(c_rep);
              const std::size_t replica = reads_per_bank[bank]++;
              g.replica = static_cast<std::uint32_t>(replica);
              banks[bank].replicas =
                  std::max(banks[bank].replicas, replica + 1);
            } else {
              g.kind = SourceKind::Window;
              const std::int64_t age =
                  static_cast<std::int64_t>(plan.center_age_) - e.d;
              SMACHE_ASSERT(age >= 2 &&
                            age <= static_cast<std::int64_t>(
                                       plan.window_len_) -
                                       1);
              g.window_age = static_cast<std::uint32_t>(age);
            }
            break;
        }
      }
    }
  }
  }
  plan.static_buffers_ = std::move(banks);

  // ---- Pass 6: tap ages and register/BRAM layout ----
  std::vector<std::size_t> taps;
  for (const auto& row : plan.gather_)
    for (const auto& g : row)
      if (g.kind == SourceKind::Window) taps.push_back(g.window_age);
  std::sort(taps.begin(), taps.end());
  taps.erase(std::unique(taps.begin(), taps.end()), taps.end());
  plan.tap_ages_ = taps;

  std::vector<std::size_t> regs;
  std::vector<FifoSegment> segments;
  if (opts_.stream_impl == StreamImpl::RegisterOnly) {
    regs.resize(plan.window_len_);
    for (std::size_t a = 1; a <= plan.window_len_; ++a) regs[a - 1] = a;
  } else {
    std::vector<std::size_t> anchors = taps;
    anchors.push_back(1);
    anchors.push_back(plan.window_len_);
    std::sort(anchors.begin(), anchors.end());
    anchors.erase(std::unique(anchors.begin(), anchors.end()),
                  anchors.end());
    regs = anchors;
    for (std::size_t k = 0; k + 1 < anchors.size(); ++k) {
      const std::size_t p = anchors[k], q = anchors[k + 1];
      const std::size_t gap = q - p - 1;
      if (gap == 0) continue;
      if (gap <= opts_.bram_segment_threshold) {
        for (std::size_t a = p + 1; a < q; ++a) regs.push_back(a);
      } else {
        segments.push_back(FifoSegment{p + 1, gap - 2, q - 1});
        regs.push_back(p + 1);
        regs.push_back(q - 1);
      }
    }
    std::sort(regs.begin(), regs.end());
    regs.erase(std::unique(regs.begin(), regs.end()), regs.end());
  }
  plan.reg_ages_ = std::move(regs);
  plan.fifo_segments_ = std::move(segments);

  // ---- Pass 7: feasibility ----
  if (opts_.onchip_budget_bits) {
    std::uint64_t static_elems = 0;
    for (const auto& b : plan.static_buffers_)
      static_elems += 2ull * b.length * b.replicas;
    const std::uint64_t bits =
        32ull * (plan.reg_window_elems() + plan.bram_window_elems() +
                 static_elems);
    SMACHE_REQUIRE_MSG(bits <= *opts_.onchip_budget_bits,
                       "planned buffers exceed the on-chip budget: " +
                           std::to_string(bits) + " bits needed");
  }
  return plan;
}

}  // namespace smache::model

// Algorithm 1 of the paper: optimal buffer size calculation.
//
// For each range j with tuple t_j of n_j offsets and length R_j, decide how
// many tuple elements stay in the stream (window) buffer and how many move
// to static buffers. The objective per range is
//
//     total_i = stream_i + static_i
//   = reach(kept offsets) + (#moved offsets) * R_j
//
// and across ranges the footprint is max_j(stream_j) + sum_j(static_j),
// because a single stream buffer (the one with the largest reach) serves
// every range.
//
// Two variants are provided:
//  * PaperPrefix — the literal reading of the paper's pseudocode: offsets
//    sorted by |offset| descending are moved to static buffers one at a
//    time (static_i = i * R_j), the remaining nearest offsets stay in the
//    stream (stream_i = their reach);
//  * OptimalInterval — observes that an optimal kept-set is always a
//    contiguous value-interval of the sorted offsets (moving anything
//    strictly inside the interval to static cannot reduce the reach but
//    costs R_j), and enumerates all intervals. This is provably optimal
//    over all subsets; tests verify it against exhaustive enumeration.
#pragma once

#include <cstdint>
#include <vector>

#include "model/stream_model.hpp"

namespace smache::model {

enum class Algo1Mode { PaperPrefix, OptimalInterval };

/// The split decision for one range.
struct RangeSplit {
  std::vector<std::int64_t> stream_offsets;  // kept in the window (sorted)
  std::vector<std::int64_t> static_offsets;  // moved to static buffers
  /// reach of the kept set (0 when empty — the stream still passes through).
  std::uint64_t stream_reach = 0;
  /// total static elements: |static_offsets| * R_j.
  std::uint64_t static_elems = 0;

  std::uint64_t total() const noexcept { return stream_reach + static_elems; }
};

/// Paper's calc_opt_sz for one range.
RangeSplit calc_opt_sz(const RangeSpec& range, Algo1Mode mode);

/// Exhaustive oracle (2^n subsets) for validation; n must be <= 20.
RangeSplit exhaustive_best_split(const RangeSpec& range);

/// The outer loop of Algorithm 1 over all ranges.
struct BufferSizes {
  std::vector<RangeSplit> per_range;
  std::uint64_t stream_buffer_reach = 0;  // max_j stream_reach
  std::uint64_t static_total_elems = 0;   // sum_j static_elems
  /// tot = max_j(stream) + sum_j(static) — the paper's objective.
  std::uint64_t total() const noexcept {
    return stream_buffer_reach + static_total_elems;
  }
};

BufferSizes optimal_buffer_sizes(const std::vector<RangeSpec>& ranges,
                                 Algo1Mode mode);

}  // namespace smache::model

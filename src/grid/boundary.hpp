// Boundary conditions per grid axis and neighbour resolution.
//
// The paper's example uses circular (periodic) boundaries on the horizontal
// edges (rows wrap vertically) and open boundaries on the vertical edges.
// This module generalises to any per-axis combination of:
//   Open     — the neighbour does not exist; the kernel sees an invalid
//              tuple element;
//   Periodic — wrap around (the circular boundary of the paper; offsets may
//              reach across the whole grid);
//   Mirror   — reflect about the edge cell (no repeated edge);
//   Constant — a fixed value supplied by the problem (Dirichlet halo).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bits.hpp"
#include "common/word.hpp"

namespace smache::grid {

enum class BoundaryKind : std::uint8_t { Open, Periodic, Mirror, Constant };

const char* to_string(BoundaryKind kind) noexcept;

struct AxisBoundary {
  BoundaryKind kind = BoundaryKind::Open;
  /// Halo value for Constant boundaries (raw word).
  word_t constant = 0;

  static AxisBoundary open() { return {BoundaryKind::Open, 0}; }
  static AxisBoundary periodic() { return {BoundaryKind::Periodic, 0}; }
  static AxisBoundary mirror() { return {BoundaryKind::Mirror, 0}; }
  static AxisBoundary constant_halo(word_t v) {
    return {BoundaryKind::Constant, v};
  }

  friend bool operator==(const AxisBoundary&, const AxisBoundary&) = default;
};

/// Boundary specification per grid axis: rows = vertical axis (top/bottom
/// edges), cols = horizontal axis (left/right edges), slices = the depth
/// axis (front/back faces of a 3D grid). `slices` is a third member with
/// an Open default so every 2D `{rows, cols}` brace initialiser keeps its
/// meaning; a D=1 grid never consults it.
struct BoundarySpec {
  AxisBoundary rows;
  AxisBoundary cols;
  // The default member initialiser (not just AxisBoundary's own defaults)
  // is load-bearing: it lets every pre-3D two-member brace initialiser
  // compile unchanged under -Werror=missing-field-initializers.
  AxisBoundary slices = AxisBoundary::open();

  /// The paper's configuration: circular top/bottom, open left/right.
  static BoundarySpec paper_example() {
    return {AxisBoundary::periodic(), AxisBoundary::open(),
            AxisBoundary::open()};
  }
  static BoundarySpec all_periodic() {
    return {AxisBoundary::periodic(), AxisBoundary::periodic(),
            AxisBoundary::periodic()};
  }
  static BoundarySpec all_open() {
    return {AxisBoundary::open(), AxisBoundary::open(),
            AxisBoundary::open()};
  }
  static BoundarySpec all_mirror() {
    return {AxisBoundary::mirror(), AxisBoundary::mirror(),
            AxisBoundary::mirror()};
  }

  friend bool operator==(const BoundarySpec&, const BoundarySpec&) = default;
};

/// Result of resolving one stencil offset from one cell: either a concrete
/// in-grid cell, a constant halo value, or nothing (open boundary).
struct Resolved {
  enum class Kind : std::uint8_t { Cell, Constant, Missing } kind;
  std::size_t r = 0, c = 0;  // valid when kind == Cell
  word_t constant = 0;       // valid when kind == Constant
  std::size_t s = 0;         // slice, valid when kind == Cell (0 in 2D)
};

/// Resolve coordinate `x + dx` on an axis of extent `n` under `b`.
/// Returns the folded coordinate, the constant marker, or nothing.
struct AxisResolved {
  enum class Kind : std::uint8_t { Coord, Constant, Missing } kind;
  std::size_t coord = 0;
};

AxisResolved resolve_axis(std::int64_t x, std::int64_t dx, std::size_t n,
                          const AxisBoundary& b) noexcept;

/// Full 2D resolution. If either axis resolves to Constant the result is the
/// Constant of that axis (row axis takes precedence when both are constant).
Resolved resolve(std::size_t r, std::size_t c, std::int64_t dr,
                 std::int64_t dc, std::size_t height, std::size_t width,
                 const BoundarySpec& bc) noexcept;

/// Full 3D resolution. Missing on any axis wins; among Constant axes the
/// outermost takes precedence (slices, then rows, then cols — consistent
/// with the 2D rows-before-cols rule). Identical to the 2D overload when
/// depth == 1 and ds == 0.
Resolved resolve(std::size_t s, std::size_t r, std::size_t c,
                 std::int64_t ds, std::int64_t dr, std::int64_t dc,
                 std::size_t depth, std::size_t height, std::size_t width,
                 const BoundarySpec& bc) noexcept;

}  // namespace smache::grid

#include "grid/tiling.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace smache::grid {

namespace {

/// One axis of the decomposition, planned independently: rows and cols obey
/// the same cut/halo/boundary rules, just with different reaches.
struct AxisCut {
  std::size_t lo = 0;       // interior start on this axis
  std::size_t extent = 0;   // interior length
  std::size_t halo_lo = 0;  // halo toward index 0
  std::size_t halo_hi = 0;  // halo toward index n-1
  AxisBoundary sub;         // boundary the padded sub-problem sees
};

[[noreturn]] void reject(const std::string& msg) {
  throw contract_error("plan_tiling: " + msg);
}

/// reach_lo/reach_hi are the per-step dependency reaches toward index 0 and
/// index n-1 (asymmetric stencils have different reaches per direction);
/// span = reach_lo + reach_hi is the stencil's extent on this axis.
std::vector<AxisCut> plan_axis(const char* axis, std::size_t n,
                               std::size_t k, std::size_t reach_lo,
                               std::size_t reach_hi, const AxisBoundary& ab,
                               std::size_t depth) {
  SMACHE_REQUIRE_MSG(k >= 1, "tile counts must be >= 1");
  if (k > n) {
    std::ostringstream msg;
    msg << axis << " axis: " << k << " tiles over " << n << " cells";
    reject(msg.str());
  }
  if (k == 1) {
    // No cuts: the tile keeps the global boundary and needs no halo. A
    // periodic wrap on an uncut axis would have to be resolved by the tile
    // datapath itself, which the cascade cannot do — except on an axis of
    // extent 1 (a 2D grid's slice axis), where the wrap is the identity
    // and no offset can reach it anyway (validate requires the extent to
    // exceed the stencil's span).
    if (ab.kind == BoundaryKind::Periodic && depth > 1 && n > 1) {
      std::ostringstream msg;
      msg << "depth " << depth << " cannot fuse across an unsplit periodic "
          << axis << " axis (the wrap needs the per-instance engine's "
          << "double-buffered static buffers); split the axis into >= 2 "
          << "tiles so the wrap becomes halo exchange, or use depth 1";
      reject(msg.str());
    }
    return {AxisCut{0, n, 0, 0, ab}};
  }

  const std::size_t need_lo = depth * reach_lo;
  const std::size_t need_hi = depth * reach_hi;
  const std::size_t span = reach_lo + reach_hi;
  const std::size_t base = n / k;
  const std::size_t rem = n % k;

  std::vector<AxisCut> cuts;
  cuts.reserve(k);
  std::size_t lo = 0;
  for (std::size_t i = 0; i < k; ++i) {
    AxisCut cut;
    cut.lo = lo;
    cut.extent = base + (i < rem ? 1 : 0);
    lo += cut.extent;
    if (ab.kind == BoundaryKind::Periodic) {
      // Full halos on both sides, materialised by wrapping at gather time.
      // The sub-problem sees an open axis: its (wrong) edge resolution
      // only ever touches halo cells, which the stitch discards.
      cut.halo_lo = need_lo;
      cut.halo_hi = need_hi;
      cut.sub = AxisBoundary::open();
    } else {
      // Clip at the true grid edge so a subgrid edge coincides with the
      // global edge exactly where open/mirror/constant must resolve.
      cut.halo_lo = std::min(need_lo, cut.lo);
      cut.halo_hi = std::min(need_hi, n - (cut.lo + cut.extent));
      cut.sub = ab;
    }

    const std::size_t sub_extent = cut.halo_lo + cut.extent + cut.halo_hi;
    if (sub_extent <= span) {
      std::ostringstream msg;
      msg << axis << " tile " << i << ": padded extent " << sub_extent
          << " does not exceed the stencil's span " << span
          << "; use fewer tiles";
      reject(msg.str());
    }

    if (ab.kind == BoundaryKind::Mirror) {
      // A fold at a coinciding true edge reads up to `reach` cells back
      // into the subgrid; the cut on the opposite side taints cells at a
      // rate of the opposing reach per step. The reflected read must stay
      // ahead of that error front for all `depth` steps:
      //   sub_extent > reach_toward_edge + (depth-1) * reach_from_cut.
      // (A tile whose subgrid touches both true edges has no cut on this
      // axis and needs no condition; a tile touching neither edge never
      // folds inside its kept dependency cone.)
      const bool at_lo = cut.lo == cut.halo_lo;
      const bool at_hi = cut.lo + cut.extent + cut.halo_hi == n;
      const std::size_t min_lo = reach_lo + (depth - 1) * reach_hi;
      const std::size_t min_hi = reach_hi + (depth - 1) * reach_lo;
      if ((at_lo && !at_hi && sub_extent <= min_lo) ||
          (at_hi && !at_lo && sub_extent <= min_hi)) {
        std::ostringstream msg;
        msg << axis << " tile " << i << ": mirror boundary needs a padded "
            << "extent greater than " << (at_lo && !at_hi ? min_lo : min_hi)
            << " (reflected reach at depth " << depth
            << "), got " << sub_extent
            << "; use fewer tiles or a smaller depth";
        reject(msg.str());
      }
    }
    cuts.push_back(cut);
  }
  return cuts;
}

std::size_t reach_neg(std::int64_t d_min) {
  return d_min < 0 ? static_cast<std::size_t>(-d_min) : 0;
}
std::size_t reach_pos(std::int64_t d_max) {
  return d_max > 0 ? static_cast<std::size_t>(d_max) : 0;
}

}  // namespace

TilingLayout plan_tiling(std::size_t height, std::size_t width,
                         std::size_t tiles_r, std::size_t tiles_c,
                         const StencilShape& shape, const BoundarySpec& bc,
                         std::size_t depth) {
  return plan_tiling(height, width, 1, tiles_r, tiles_c, 1, shape, bc,
                     depth);
}

TilingLayout plan_tiling(std::size_t height, std::size_t width,
                         std::size_t grid_depth, std::size_t tiles_r,
                         std::size_t tiles_c, std::size_t tiles_s,
                         const StencilShape& shape, const BoundarySpec& bc,
                         std::size_t depth) {
  SMACHE_REQUIRE_MSG(depth >= 1, "tiling depth must be >= 1");
  grid::Grid<word_t>::checked_cells(height, width, grid_depth);

  const auto slice_cuts =
      plan_axis("slice", grid_depth, tiles_s, reach_neg(shape.ds_min()),
                reach_pos(shape.ds_max()), bc.slices, depth);
  const auto row_cuts =
      plan_axis("row", height, tiles_r, reach_neg(shape.dr_min()),
                reach_pos(shape.dr_max()), bc.rows, depth);
  const auto col_cuts =
      plan_axis("column", width, tiles_c, reach_neg(shape.dc_min()),
                reach_pos(shape.dc_max()), bc.cols, depth);

  TilingLayout layout;
  layout.height = height;
  layout.width = width;
  layout.grid_depth = grid_depth;
  layout.tiles_r = tiles_r;
  layout.tiles_c = tiles_c;
  layout.tiles_s = tiles_s;
  layout.depth = depth;
  layout.tiles.reserve(tiles_r * tiles_c * tiles_s);
  for (const AxisCut& sc : slice_cuts) {
    for (const AxisCut& rc : row_cuts) {
      for (const AxisCut& cc : col_cuts) {
        TileGeometry t;
        t.r0 = rc.lo;
        t.c0 = cc.lo;
        t.s0 = sc.lo;
        t.rows = rc.extent;
        t.cols = cc.extent;
        t.slices = sc.extent;
        t.halo_top = rc.halo_lo;
        t.halo_bottom = rc.halo_hi;
        t.halo_left = cc.halo_lo;
        t.halo_right = cc.halo_hi;
        t.halo_front = sc.halo_lo;
        t.halo_back = sc.halo_hi;
        t.sub_bc = BoundarySpec{rc.sub, cc.sub, sc.sub};
        layout.tiles.push_back(t);
      }
    }
  }
  return layout;
}

Grid<word_t> gather_tile(const Grid<word_t>& global, const TileGeometry& tile,
                         const BoundarySpec& bc) {
  const auto h = static_cast<std::int64_t>(global.height());
  const auto w = static_cast<std::int64_t>(global.width());
  const auto d = static_cast<std::int64_t>(global.depth());
  const std::size_t fields = global.fields();
  Grid<word_t> sub(tile.sub_height(), tile.sub_width(), tile.sub_depth(),
                   global.layout());
  for (std::size_t ss = 0; ss < sub.depth(); ++ss) {
    std::int64_t gs = tile.origin_s() + static_cast<std::int64_t>(ss);
    if (gs < 0 || gs >= d) {
      // plan_tiling clips halos at every non-periodic edge, so an
      // out-of-range halo cell can only mean a wrapped periodic axis.
      SMACHE_REQUIRE_MSG(bc.slices.kind == BoundaryKind::Periodic,
                         "tile halo escapes a non-periodic slice face");
      gs = floor_mod(gs, d);
    }
    for (std::size_t sr = 0; sr < sub.height(); ++sr) {
      std::int64_t gr = tile.origin_r() + static_cast<std::int64_t>(sr);
      if (gr < 0 || gr >= h) {
        SMACHE_REQUIRE_MSG(bc.rows.kind == BoundaryKind::Periodic,
                           "tile halo escapes a non-periodic row edge");
        gr = floor_mod(gr, h);
      }
      for (std::size_t sc = 0; sc < sub.width(); ++sc) {
        std::int64_t gc = tile.origin_c() + static_cast<std::int64_t>(sc);
        if (gc < 0 || gc >= w) {
          SMACHE_REQUIRE_MSG(bc.cols.kind == BoundaryKind::Periodic,
                             "tile halo escapes a non-periodic column edge");
          gc = floor_mod(gc, w);
        }
        const word_t* src = global.cell(static_cast<std::size_t>(gs),
                                        static_cast<std::size_t>(gr),
                                        static_cast<std::size_t>(gc));
        word_t* dst = sub.cell(ss, sr, sc);
        for (std::size_t f = 0; f < fields; ++f) dst[f] = src[f];
      }
    }
  }
  return sub;
}

void stitch_interior(Grid<word_t>& global, const TileGeometry& tile,
                     const Grid<word_t>& sub) {
  SMACHE_REQUIRE(sub.height() == tile.sub_height() &&
                 sub.width() == tile.sub_width() &&
                 sub.depth() == tile.sub_depth());
  SMACHE_REQUIRE(sub.fields() == global.fields());
  SMACHE_REQUIRE(tile.r0 + tile.rows <= global.height() &&
                 tile.c0 + tile.cols <= global.width() &&
                 tile.s0 + tile.slices <= global.depth());
  const std::size_t fields = global.fields();
  for (std::size_t s = 0; s < tile.slices; ++s)
    for (std::size_t r = 0; r < tile.rows; ++r)
      for (std::size_t c = 0; c < tile.cols; ++c) {
        const word_t* src = sub.cell(tile.halo_front + s, tile.halo_top + r,
                                     tile.halo_left + c);
        word_t* dst = global.cell(tile.s0 + s, tile.r0 + r, tile.c0 + c);
        for (std::size_t f = 0; f < fields; ++f) dst[f] = src[f];
      }
}

}  // namespace smache::grid

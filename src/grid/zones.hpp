// Boundary-case enumeration (the paper's "nine different stencil cases",
// generalised).
//
// Cells are classified per axis into zones: each row within the stencil's
// upward reach of the top edge is its own zone (row 0, row 1, …), likewise
// near the bottom edge, and everything else is the single Mid zone. The
// same applies to columns. A cell's *case* is the (row zone, column zone)
// pair; every cell in a case resolves all its stencil offsets identically,
// which is what lets the hardware select gather sources with a small case
// mux instead of per-cell address logic.
//
// For the paper's 4-point stencil on any grid this yields 3×3 = 9 cases:
// 4 corners, 4 edges, 1 interior — exactly Figure 1(a).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/stencil.hpp"

namespace smache::grid {

/// Zone classification for one axis.
class AxisZones {
 public:
  /// `lo_span` = number of individual zones hugging the low edge
  /// (= max(0, -min_offset)); `hi_span` likewise for the high edge
  /// (= max(0, max_offset)); `extent` = axis length.
  AxisZones(std::size_t extent, std::int64_t min_offset,
            std::int64_t max_offset);

  std::size_t extent() const noexcept { return extent_; }
  std::size_t lo_span() const noexcept { return lo_span_; }
  std::size_t hi_span() const noexcept { return hi_span_; }

  /// Total number of zones on this axis (lo_span + 1 + hi_span).
  std::size_t count() const noexcept { return lo_span_ + 1 + hi_span_; }
  /// Index of the Mid zone.
  std::size_t mid() const noexcept { return lo_span_; }

  /// Zone of coordinate x.
  std::size_t zone_of(std::size_t x) const;

  /// True if the zone pins the coordinate to one exact value.
  bool is_exact(std::size_t zone) const;
  /// The exact coordinate of a non-Mid zone.
  std::size_t exact_coord(std::size_t zone) const;

  /// A representative coordinate for any zone (centre of the axis for Mid).
  std::size_t representative(std::size_t zone) const;

  /// Number of cells falling in this zone.
  std::size_t population(std::size_t zone) const;

 private:
  std::size_t extent_;
  std::size_t lo_span_;
  std::size_t hi_span_;
};

/// Combined case map for a grid + stencil. Carries a slice (depth) axis;
/// the 2D constructor pins it to one Mid-only zone, so every 2D case id,
/// count and label is unchanged (the slice zone index is always 0).
class CaseMap {
 public:
  CaseMap(std::size_t height, std::size_t width, const StencilShape& shape);
  /// 3D case map: slice zones from the shape's ds extents. A 3D shape on
  /// depth == 1 is rejected by AxisZones ("axis too short").
  CaseMap(std::size_t height, std::size_t width, std::size_t depth,
          const StencilShape& shape);

  const AxisZones& rows() const noexcept { return rows_; }
  const AxisZones& cols() const noexcept { return cols_; }
  const AxisZones& slices() const noexcept { return slices_; }

  /// Total number of cases (slices.count() * rows.count() * cols.count()).
  std::size_t case_count() const noexcept {
    return slices_.count() * rows_.count() * cols_.count();
  }

  /// Case id of a cell (slice 0 — the only slice of a 2D map).
  std::size_t case_of(std::size_t r, std::size_t c) const {
    return rows_.zone_of(r) * cols_.count() + cols_.zone_of(c);
  }
  /// Slice-major case id: with one slice zone this reduces to the 2D id.
  std::size_t case_of(std::size_t s, std::size_t r, std::size_t c) const {
    return (slices_.zone_of(s) * rows_.count() + rows_.zone_of(r)) *
               cols_.count() +
           cols_.zone_of(c);
  }

  std::size_t case_id(std::size_t zone_r, std::size_t zone_c) const;
  std::size_t case_id(std::size_t zone_s, std::size_t zone_r,
                      std::size_t zone_c) const;
  std::size_t zone_s_of(std::size_t case_id) const;
  std::size_t zone_r_of(std::size_t case_id) const;
  std::size_t zone_c_of(std::size_t case_id) const;

  /// Human-readable label, e.g. "row0/colMid" (for reports and tests).
  /// A "sliceK/" prefix appears only when the map has slice zones.
  std::string label(std::size_t case_id) const;

  /// Number of cells in a case.
  std::size_t population(std::size_t case_id) const;

 private:
  AxisZones slices_;
  AxisZones rows_;
  AxisZones cols_;
};

}  // namespace smache::grid

// Stencil shapes: ordered sets of (row, column) offsets around a centre
// cell. The order is significant — it defines the tuple layout handed to
// the computation kernel, and must match between the reference executor and
// the simulated hardware.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace smache::grid {

struct Offset2 {
  std::int64_t dr = 0;
  std::int64_t dc = 0;
  /// Slice (depth-axis) component. Third member with a zero default so
  /// every 2D `{dr, dc}` brace initialiser keeps its meaning; a 3D shape
  /// spells all three components explicitly.
  std::int64_t ds = 0;
  friend bool operator==(const Offset2&, const Offset2&) = default;
};

/// One gathered stencil element: the raw word plus a validity flag (open
/// boundaries produce invalid elements the kernel must ignore).
struct TupleElem {
  std::uint32_t value = 0;
  bool valid = false;
};

class StencilShape {
 public:
  StencilShape(std::string name, std::vector<Offset2> offsets);

  const std::string& name() const noexcept { return name_; }
  const std::vector<Offset2>& offsets() const noexcept { return offsets_; }
  std::size_t size() const noexcept { return offsets_.size(); }

  // Extents of the shape (inclusive bounds over the offsets).
  std::int64_t dr_min() const noexcept { return dr_min_; }
  std::int64_t dr_max() const noexcept { return dr_max_; }
  std::int64_t dc_min() const noexcept { return dc_min_; }
  std::int64_t dc_max() const noexcept { return dc_max_; }
  std::int64_t ds_min() const noexcept { return ds_min_; }
  std::int64_t ds_max() const noexcept { return ds_max_; }

  /// True if any offset leaves the slice plane (3D shape).
  bool is_3d() const noexcept { return ds_min_ != 0 || ds_max_ != 0; }

  /// Paper §II: the reach of the linearised tuple on a row-major grid of
  /// row width `w` — max linear offset minus min linear offset. Ignores
  /// the slice component; use reach3 for 3D shapes.
  std::int64_t reach(std::size_t w) const noexcept;

  /// 3D reach on a slice-major grid: element (s, r, c) streams at linear
  /// position (s*h + r)*w + c, so an offset's stream distance is
  /// (ds*h + dr)*w + dc. Equals reach(w) for 2D shapes regardless of h.
  std::int64_t reach3(std::size_t w, std::size_t h) const noexcept;

  /// True if the shape contains the given offset.
  bool contains(Offset2 o) const noexcept;

  // ---- factories for common shapes ----
  /// 4-point von Neumann cross WITHOUT the centre — the paper's example
  /// (N, W, E, S order).
  static StencilShape von_neumann4();
  /// 5-point plus: centre + von Neumann.
  static StencilShape plus5();
  /// 9-point Moore neighbourhood including centre (row-major order).
  static StencilShape moore9();
  /// Long-range cross: {(-k,0),(0,-k),(0,0),(0,k),(k,0)}.
  static StencilShape cross(std::int64_t k);
  /// Asymmetric upwind shape used in advection examples:
  /// {(0,0),(0,-1),(-1,0)}.
  static StencilShape upwind3();
  /// 7-point 3D star (centre + the six face neighbours), centre first and
  /// the rest in stream order: front slice, north, west, east, south,
  /// back slice.
  static StencilShape star7();
  /// Arbitrary custom shape.
  static StencilShape custom(std::string name, std::vector<Offset2> offsets);

 private:
  std::string name_;
  std::vector<Offset2> offsets_;
  std::int64_t dr_min_ = 0, dr_max_ = 0, dc_min_ = 0, dc_max_ = 0;
  std::int64_t ds_min_ = 0, ds_max_ = 0;
};

}  // namespace smache::grid

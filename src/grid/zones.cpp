#include "grid/zones.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace smache::grid {

AxisZones::AxisZones(std::size_t extent, std::int64_t min_offset,
                     std::int64_t max_offset)
    : extent_(extent),
      lo_span_(static_cast<std::size_t>(std::max<std::int64_t>(
          0, -min_offset))),
      hi_span_(static_cast<std::size_t>(std::max<std::int64_t>(
          0, max_offset))) {
  SMACHE_REQUIRE_MSG(lo_span_ + hi_span_ < extent,
                     "axis too short for the stencil's reach: zones overlap");
}

std::size_t AxisZones::zone_of(std::size_t x) const {
  SMACHE_REQUIRE(x < extent_);
  if (x < lo_span_) return x;
  if (x >= extent_ - hi_span_) return lo_span_ + 1 + (x - (extent_ - hi_span_));
  return mid();
}

bool AxisZones::is_exact(std::size_t zone) const {
  SMACHE_REQUIRE(zone < count());
  return zone != mid();
}

std::size_t AxisZones::exact_coord(std::size_t zone) const {
  SMACHE_REQUIRE(zone < count());
  SMACHE_REQUIRE_MSG(zone != mid(), "Mid zone has no exact coordinate");
  if (zone < lo_span_) return zone;
  return extent_ - hi_span_ + (zone - lo_span_ - 1);
}

std::size_t AxisZones::representative(std::size_t zone) const {
  SMACHE_REQUIRE(zone < count());
  if (zone == mid()) return lo_span_ + (extent_ - lo_span_ - hi_span_) / 2;
  return exact_coord(zone);
}

std::size_t AxisZones::population(std::size_t zone) const {
  SMACHE_REQUIRE(zone < count());
  if (zone == mid()) return extent_ - lo_span_ - hi_span_;
  return 1;
}

CaseMap::CaseMap(std::size_t height, std::size_t width,
                 const StencilShape& shape)
    : CaseMap(height, width, 1, shape) {}

CaseMap::CaseMap(std::size_t height, std::size_t width, std::size_t depth,
                 const StencilShape& shape)
    : slices_(depth, shape.ds_min(), shape.ds_max()),
      rows_(height, shape.dr_min(), shape.dr_max()),
      cols_(width, shape.dc_min(), shape.dc_max()) {}

std::size_t CaseMap::case_id(std::size_t zone_r, std::size_t zone_c) const {
  SMACHE_REQUIRE(zone_r < rows_.count() && zone_c < cols_.count());
  return zone_r * cols_.count() + zone_c;
}

std::size_t CaseMap::case_id(std::size_t zone_s, std::size_t zone_r,
                             std::size_t zone_c) const {
  SMACHE_REQUIRE(zone_s < slices_.count() && zone_r < rows_.count() &&
                 zone_c < cols_.count());
  return (zone_s * rows_.count() + zone_r) * cols_.count() + zone_c;
}

std::size_t CaseMap::zone_s_of(std::size_t case_id) const {
  SMACHE_REQUIRE(case_id < case_count());
  return case_id / (rows_.count() * cols_.count());
}

std::size_t CaseMap::zone_r_of(std::size_t case_id) const {
  SMACHE_REQUIRE(case_id < case_count());
  return (case_id / cols_.count()) % rows_.count();
}

std::size_t CaseMap::zone_c_of(std::size_t case_id) const {
  SMACHE_REQUIRE(case_id < case_count());
  return case_id % cols_.count();
}

namespace {
std::string zone_label(const AxisZones& z, std::size_t zone,
                       const char* axis) {
  if (zone == z.mid()) return std::string(axis) + "Mid";
  return std::string(axis) + std::to_string(z.exact_coord(zone));
}
}  // namespace

std::string CaseMap::label(std::size_t id) const {
  std::string out;
  if (slices_.count() > 1)
    out = zone_label(slices_, zone_s_of(id), "slice") + "/";
  return out + zone_label(rows_, zone_r_of(id), "row") + "/" +
         zone_label(cols_, zone_c_of(id), "col");
}

std::size_t CaseMap::population(std::size_t id) const {
  return slices_.population(zone_s_of(id)) *
         rows_.population(zone_r_of(id)) * cols_.population(zone_c_of(id));
}

}  // namespace smache::grid

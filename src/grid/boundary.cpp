#include "grid/boundary.hpp"

namespace smache::grid {

const char* to_string(BoundaryKind kind) noexcept {
  switch (kind) {
    case BoundaryKind::Open: return "open";
    case BoundaryKind::Periodic: return "periodic";
    case BoundaryKind::Mirror: return "mirror";
    case BoundaryKind::Constant: return "constant";
  }
  return "?";
}

AxisResolved resolve_axis(std::int64_t x, std::int64_t dx, std::size_t n,
                          const AxisBoundary& b) noexcept {
  const std::int64_t target = x + dx;
  const auto extent = static_cast<std::int64_t>(n);
  if (target >= 0 && target < extent)
    return {AxisResolved::Kind::Coord, static_cast<std::size_t>(target)};
  switch (b.kind) {
    case BoundaryKind::Open:
      return {AxisResolved::Kind::Missing, 0};
    case BoundaryKind::Periodic:
      return {AxisResolved::Kind::Coord,
              static_cast<std::size_t>(smache::floor_mod(target, extent))};
    case BoundaryKind::Mirror:
      return {AxisResolved::Kind::Coord,
              static_cast<std::size_t>(smache::mirror_index(target, extent))};
    case BoundaryKind::Constant:
      return {AxisResolved::Kind::Constant, 0};
  }
  return {AxisResolved::Kind::Missing, 0};
}

Resolved resolve(std::size_t r, std::size_t c, std::int64_t dr,
                 std::int64_t dc, std::size_t height, std::size_t width,
                 const BoundarySpec& bc) noexcept {
  const AxisResolved rr = resolve_axis(static_cast<std::int64_t>(r), dr,
                                       height, bc.rows);
  const AxisResolved cc = resolve_axis(static_cast<std::int64_t>(c), dc,
                                       width, bc.cols);
  if (rr.kind == AxisResolved::Kind::Missing ||
      cc.kind == AxisResolved::Kind::Missing)
    return {Resolved::Kind::Missing, 0, 0, 0, 0};
  if (rr.kind == AxisResolved::Kind::Constant)
    return {Resolved::Kind::Constant, 0, 0, bc.rows.constant, 0};
  if (cc.kind == AxisResolved::Kind::Constant)
    return {Resolved::Kind::Constant, 0, 0, bc.cols.constant, 0};
  return {Resolved::Kind::Cell, rr.coord, cc.coord, 0, 0};
}

Resolved resolve(std::size_t s, std::size_t r, std::size_t c,
                 std::int64_t ds, std::int64_t dr, std::int64_t dc,
                 std::size_t depth, std::size_t height, std::size_t width,
                 const BoundarySpec& bc) noexcept {
  const AxisResolved ss = resolve_axis(static_cast<std::int64_t>(s), ds,
                                       depth, bc.slices);
  const AxisResolved rr = resolve_axis(static_cast<std::int64_t>(r), dr,
                                       height, bc.rows);
  const AxisResolved cc = resolve_axis(static_cast<std::int64_t>(c), dc,
                                       width, bc.cols);
  if (ss.kind == AxisResolved::Kind::Missing ||
      rr.kind == AxisResolved::Kind::Missing ||
      cc.kind == AxisResolved::Kind::Missing)
    return {Resolved::Kind::Missing, 0, 0, 0, 0};
  if (ss.kind == AxisResolved::Kind::Constant)
    return {Resolved::Kind::Constant, 0, 0, bc.slices.constant, 0};
  if (rr.kind == AxisResolved::Kind::Constant)
    return {Resolved::Kind::Constant, 0, 0, bc.rows.constant, 0};
  if (cc.kind == AxisResolved::Kind::Constant)
    return {Resolved::Kind::Constant, 0, 0, bc.cols.constant, 0};
  return {Resolved::Kind::Cell, rr.coord, cc.coord, 0, ss.coord};
}

}  // namespace smache::grid

// 2D grid container with row-major storage — the data the stencil pipeline
// streams. Deliberately minimal: indexing, bounds checking, and conversion
// to/from the raw word vectors the simulated DRAM holds.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/assert.hpp"
#include "common/word.hpp"

namespace smache::grid {

template <typename T>
class Grid {
 public:
  /// Validated cell count. Rejects degenerate axes and any height*width
  /// that would wrap std::size_t — a wrapped product allocates a short
  /// vector while at()'s per-axis checks still pass, indexing out of range.
  /// Runs before the vector is sized, so no allocation happens on reject.
  static std::size_t checked_cells(std::size_t height, std::size_t width) {
    SMACHE_REQUIRE(height >= 1 && width >= 1);
    SMACHE_REQUIRE_MSG(
        width <= std::numeric_limits<std::size_t>::max() / height,
        "grid dimensions overflow std::size_t");
    return height * width;
  }

  Grid(std::size_t height, std::size_t width, T fill = T{})
      : height_(height),
        width_(width),
        data_(checked_cells(height, width), fill) {}

  std::size_t height() const noexcept { return height_; }
  std::size_t width() const noexcept { return width_; }
  std::size_t size() const noexcept { return data_.size(); }

  T& at(std::size_t r, std::size_t c) {
    SMACHE_REQUIRE(r < height_ && c < width_);
    return data_[r * width_ + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    SMACHE_REQUIRE(r < height_ && c < width_);
    return data_[r * width_ + c];
  }

  T& operator[](std::size_t i) {
    SMACHE_REQUIRE(i < data_.size());
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    SMACHE_REQUIRE(i < data_.size());
    return data_[i];
  }

  std::size_t linear(std::size_t r, std::size_t c) const {
    SMACHE_REQUIRE(r < height_ && c < width_);
    return r * width_ + c;
  }
  std::size_t row_of(std::size_t i) const {
    SMACHE_REQUIRE(i < data_.size());
    return i / width_;
  }
  std::size_t col_of(std::size_t i) const {
    SMACHE_REQUIRE(i < data_.size());
    return i % width_;
  }

  const std::vector<T>& data() const noexcept { return data_; }
  std::vector<T>& data() noexcept { return data_; }

  /// Pack into raw datapath words (bit-cast per element).
  std::vector<word_t> to_words() const {
    std::vector<word_t> out(data_.size());
    for (std::size_t i = 0; i < data_.size(); ++i) out[i] = to_word(data_[i]);
    return out;
  }

  static Grid from_words(std::size_t height, std::size_t width,
                         const std::vector<word_t>& words) {
    SMACHE_REQUIRE(words.size() == checked_cells(height, width));
    Grid g(height, width);
    for (std::size_t i = 0; i < words.size(); ++i)
      g.data_[i] = from_word<T>(words[i]);
    return g;
  }

  bool operator==(const Grid& other) const {
    return height_ == other.height_ && width_ == other.width_ &&
           data_ == other.data_;
  }

 private:
  std::size_t height_;
  std::size_t width_;
  std::vector<T> data_;
};

}  // namespace smache::grid

// 2D grid container with row-major storage — the data the stencil pipeline
// streams. Deliberately minimal: indexing, bounds checking, and conversion
// to/from the raw word vectors the simulated DRAM holds. Each cell holds
// F >= 1 fields (CellLayout), stored interleaved: element (r, c, f) lives
// at (r * width + c) * F + f. F=1 is the original word-per-cell layout and
// the default for every constructor.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/assert.hpp"
#include "common/word.hpp"

namespace smache::grid {

template <typename T>
class Grid {
 public:
  /// Validated cell count. Rejects degenerate axes and any height*width
  /// that would wrap std::size_t — a wrapped product allocates a short
  /// vector while at()'s per-axis checks still pass, indexing out of range.
  /// Runs before the vector is sized, so no allocation happens on reject.
  static std::size_t checked_cells(std::size_t height, std::size_t width) {
    SMACHE_REQUIRE(height >= 1 && width >= 1);
    SMACHE_REQUIRE_MSG(
        width <= std::numeric_limits<std::size_t>::max() / height,
        "grid dimensions overflow std::size_t");
    return height * width;
  }

  /// Validated word count for an F-field grid: checked_cells extended by
  /// the cells x F product, which must not wrap std::size_t either (the
  /// same silent-short-allocation hazard, one multiply later). Also clamps
  /// F to [1, kMaxFields] — RTL message payloads are sized by kMaxFields.
  static std::size_t checked_words(std::size_t height, std::size_t width,
                                   std::size_t fields) {
    const std::size_t cells = checked_cells(height, width);
    SMACHE_REQUIRE_MSG(fields >= 1 && fields <= kMaxFields,
                       "cell field count out of [1, kMaxFields]");
    SMACHE_REQUIRE_MSG(
        fields <= std::numeric_limits<std::size_t>::max() / cells,
        "cells x fields overflows std::size_t");
    return cells * fields;
  }

  Grid(std::size_t height, std::size_t width, T fill = T{})
      : height_(height),
        width_(width),
        fields_(1),
        data_(checked_cells(height, width), fill) {}

  Grid(std::size_t height, std::size_t width, CellLayout layout, T fill = T{})
      : height_(height),
        width_(width),
        fields_(layout.fields),
        data_(checked_words(height, width, layout.fields), fill) {}

  std::size_t height() const noexcept { return height_; }
  std::size_t width() const noexcept { return width_; }
  std::size_t fields() const noexcept { return fields_; }
  CellLayout layout() const noexcept { return CellLayout{fields_}; }
  std::size_t cells() const noexcept { return height_ * width_; }
  /// Total element (word) count: cells() * fields().
  std::size_t size() const noexcept { return data_.size(); }

  T& at(std::size_t r, std::size_t c, std::size_t f = 0) {
    SMACHE_REQUIRE(r < height_ && c < width_ && f < fields_);
    return data_[(r * width_ + c) * fields_ + f];
  }
  const T& at(std::size_t r, std::size_t c, std::size_t f = 0) const {
    SMACHE_REQUIRE(r < height_ && c < width_ && f < fields_);
    return data_[(r * width_ + c) * fields_ + f];
  }

  /// Pointer to a cell's F contiguous fields (the cell-span view).
  T* cell(std::size_t r, std::size_t c) {
    SMACHE_REQUIRE(r < height_ && c < width_);
    return &data_[(r * width_ + c) * fields_];
  }
  const T* cell(std::size_t r, std::size_t c) const {
    SMACHE_REQUIRE(r < height_ && c < width_);
    return &data_[(r * width_ + c) * fields_];
  }

  T& operator[](std::size_t i) {
    SMACHE_REQUIRE(i < data_.size());
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    SMACHE_REQUIRE(i < data_.size());
    return data_[i];
  }

  /// Linear CELL index (not word index) of (r, c).
  std::size_t linear(std::size_t r, std::size_t c) const {
    SMACHE_REQUIRE(r < height_ && c < width_);
    return r * width_ + c;
  }
  std::size_t row_of(std::size_t i) const {
    SMACHE_REQUIRE(i < cells());
    return i / width_;
  }
  std::size_t col_of(std::size_t i) const {
    SMACHE_REQUIRE(i < cells());
    return i % width_;
  }

  const std::vector<T>& data() const noexcept { return data_; }
  std::vector<T>& data() noexcept { return data_; }

  /// Pack into raw datapath words (bit-cast per element, interleaved
  /// field order — exactly the DRAM image).
  std::vector<word_t> to_words() const {
    std::vector<word_t> out(data_.size());
    for (std::size_t i = 0; i < data_.size(); ++i) out[i] = to_word(data_[i]);
    return out;
  }

  static Grid from_words(std::size_t height, std::size_t width,
                         const std::vector<word_t>& words) {
    return from_words(height, width, CellLayout{}, words);
  }

  static Grid from_words(std::size_t height, std::size_t width,
                         CellLayout layout,
                         const std::vector<word_t>& words) {
    SMACHE_REQUIRE(words.size() == checked_words(height, width,
                                                 layout.fields));
    Grid g(height, width, layout);
    for (std::size_t i = 0; i < words.size(); ++i)
      g.data_[i] = from_word<T>(words[i]);
    return g;
  }

  bool operator==(const Grid& other) const {
    return height_ == other.height_ && width_ == other.width_ &&
           fields_ == other.fields_ && data_ == other.data_;
  }

 private:
  std::size_t height_;
  std::size_t width_;
  std::size_t fields_;
  std::vector<T> data_;
};

}  // namespace smache::grid

// Grid container with slice-major row-major storage — the data the stencil
// pipeline streams. Deliberately minimal: indexing, bounds checking, and
// conversion to/from the raw word vectors the simulated DRAM holds. Each
// cell holds F >= 1 fields (CellLayout), stored interleaved, and a grid
// carries D >= 1 slices (the depth axis): element (s, r, c, f) lives at
// ((s * height + r) * width + c) * F + f. A 3D grid therefore streams
// exactly like a 2D grid of D*height "global rows" — the 2-coordinate
// accessors below accept global rows, so D=1 (the default for every 2D
// constructor) is the original layout verbatim.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/assert.hpp"
#include "common/word.hpp"

namespace smache::grid {

template <typename T>
class Grid {
 public:
  /// Validated cell count. Rejects degenerate axes and any height*width
  /// that would wrap std::size_t — a wrapped product allocates a short
  /// vector while at()'s per-axis checks still pass, indexing out of range.
  /// Runs before the vector is sized, so no allocation happens on reject.
  static std::size_t checked_cells(std::size_t height, std::size_t width) {
    SMACHE_REQUIRE(height >= 1 && width >= 1);
    SMACHE_REQUIRE_MSG(
        width <= std::numeric_limits<std::size_t>::max() / height,
        "grid dimensions overflow std::size_t");
    return height * width;
  }

  /// Three-axis cell count: the 2D product extended by the depth axis,
  /// with the same wrap check one multiply later. Runs before allocation.
  static std::size_t checked_cells(std::size_t height, std::size_t width,
                                   std::size_t depth) {
    const std::size_t plane = checked_cells(height, width);
    SMACHE_REQUIRE(depth >= 1);
    SMACHE_REQUIRE_MSG(
        depth <= std::numeric_limits<std::size_t>::max() / plane,
        "grid dimensions overflow std::size_t");
    return plane * depth;
  }

  /// Validated word count for an F-field grid: checked_cells extended by
  /// the cells x F product, which must not wrap std::size_t either (the
  /// same silent-short-allocation hazard, one multiply later). Also clamps
  /// F to [1, kMaxFields] — RTL message payloads are sized by kMaxFields.
  static std::size_t checked_words(std::size_t height, std::size_t width,
                                   std::size_t fields) {
    return checked_words(height, width, 1, fields);
  }

  /// h*w*d*F word count, every partial product wrap-checked before any
  /// allocation happens.
  static std::size_t checked_words(std::size_t height, std::size_t width,
                                   std::size_t depth, std::size_t fields) {
    const std::size_t cells = checked_cells(height, width, depth);
    SMACHE_REQUIRE_MSG(fields >= 1 && fields <= kMaxFields,
                       "cell field count out of [1, kMaxFields]");
    SMACHE_REQUIRE_MSG(
        fields <= std::numeric_limits<std::size_t>::max() / cells,
        "cells x fields overflows std::size_t");
    return cells * fields;
  }

  Grid(std::size_t height, std::size_t width, T fill = T{})
      : height_(height),
        width_(width),
        depth_(1),
        fields_(1),
        data_(checked_cells(height, width), fill) {}

  Grid(std::size_t height, std::size_t width, CellLayout layout, T fill = T{})
      : height_(height),
        width_(width),
        depth_(1),
        fields_(layout.fields),
        data_(checked_words(height, width, layout.fields), fill) {}

  /// 3D constructor. The CellLayout argument is mandatory — with a default
  /// it would be ambiguous against Grid(h, w, fill).
  Grid(std::size_t height, std::size_t width, std::size_t depth,
       CellLayout layout, T fill = T{})
      : height_(height),
        width_(width),
        depth_(depth),
        fields_(layout.fields),
        data_(checked_words(height, width, depth, layout.fields), fill) {}

  std::size_t height() const noexcept { return height_; }
  std::size_t width() const noexcept { return width_; }
  std::size_t depth() const noexcept { return depth_; }
  std::size_t fields() const noexcept { return fields_; }
  CellLayout layout() const noexcept { return CellLayout{fields_}; }
  std::size_t cells() const noexcept { return height_ * width_ * depth_; }
  /// Rows of the streamed (slice-major) image: depth() * height().
  std::size_t global_rows() const noexcept { return depth_ * height_; }
  /// Total element (word) count: cells() * fields().
  std::size_t size() const noexcept { return data_.size(); }

  /// 2-coordinate accessors take a GLOBAL row in [0, depth*height) — for
  /// D=1 that is the plain row, so all 2D call sites are unchanged.
  T& at(std::size_t r, std::size_t c, std::size_t f = 0) {
    SMACHE_REQUIRE(r < global_rows() && c < width_ && f < fields_);
    return data_[(r * width_ + c) * fields_ + f];
  }
  const T& at(std::size_t r, std::size_t c, std::size_t f = 0) const {
    SMACHE_REQUIRE(r < global_rows() && c < width_ && f < fields_);
    return data_[(r * width_ + c) * fields_ + f];
  }

  /// Slice-explicit element access. All four coordinates are required —
  /// a defaulted f would let at(s, r, c) silently bind the 2D overload's
  /// (r, c, f) instead.
  T& at(std::size_t s, std::size_t r, std::size_t c, std::size_t f) {
    SMACHE_REQUIRE(s < depth_ && r < height_);
    return at(s * height_ + r, c, f);
  }
  const T& at(std::size_t s, std::size_t r, std::size_t c,
              std::size_t f) const {
    SMACHE_REQUIRE(s < depth_ && r < height_);
    return at(s * height_ + r, c, f);
  }

  /// Pointer to a cell's F contiguous fields (the cell-span view).
  /// `r` is a global row, like at().
  T* cell(std::size_t r, std::size_t c) {
    SMACHE_REQUIRE(r < global_rows() && c < width_);
    return &data_[(r * width_ + c) * fields_];
  }
  const T* cell(std::size_t r, std::size_t c) const {
    SMACHE_REQUIRE(r < global_rows() && c < width_);
    return &data_[(r * width_ + c) * fields_];
  }
  T* cell(std::size_t s, std::size_t r, std::size_t c) {
    SMACHE_REQUIRE(s < depth_ && r < height_);
    return cell(s * height_ + r, c);
  }
  const T* cell(std::size_t s, std::size_t r, std::size_t c) const {
    SMACHE_REQUIRE(s < depth_ && r < height_);
    return cell(s * height_ + r, c);
  }

  T& operator[](std::size_t i) {
    SMACHE_REQUIRE(i < data_.size());
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    SMACHE_REQUIRE(i < data_.size());
    return data_[i];
  }

  /// Linear CELL index (not word index) of global row r, column c.
  std::size_t linear(std::size_t r, std::size_t c) const {
    SMACHE_REQUIRE(r < global_rows() && c < width_);
    return r * width_ + c;
  }
  std::size_t row_of(std::size_t i) const {
    SMACHE_REQUIRE(i < cells());
    return i / width_;
  }
  std::size_t col_of(std::size_t i) const {
    SMACHE_REQUIRE(i < cells());
    return i % width_;
  }

  const std::vector<T>& data() const noexcept { return data_; }
  std::vector<T>& data() noexcept { return data_; }

  /// Pack into raw datapath words (bit-cast per element, interleaved
  /// field order — exactly the DRAM image).
  std::vector<word_t> to_words() const {
    std::vector<word_t> out(data_.size());
    for (std::size_t i = 0; i < data_.size(); ++i) out[i] = to_word(data_[i]);
    return out;
  }

  static Grid from_words(std::size_t height, std::size_t width,
                         const std::vector<word_t>& words) {
    return from_words(height, width, CellLayout{}, words);
  }

  static Grid from_words(std::size_t height, std::size_t width,
                         CellLayout layout,
                         const std::vector<word_t>& words) {
    return from_words(height, width, 1, layout, words);
  }

  static Grid from_words(std::size_t height, std::size_t width,
                         std::size_t depth, CellLayout layout,
                         const std::vector<word_t>& words) {
    SMACHE_REQUIRE(words.size() ==
                   checked_words(height, width, depth, layout.fields));
    Grid g(height, width, depth, layout);
    for (std::size_t i = 0; i < words.size(); ++i)
      g.data_[i] = from_word<T>(words[i]);
    return g;
  }

  bool operator==(const Grid& other) const {
    return height_ == other.height_ && width_ == other.width_ &&
           depth_ == other.depth_ && fields_ == other.fields_ &&
           data_ == other.data_;
  }

 private:
  std::size_t height_;
  std::size_t width_;
  std::size_t depth_;
  std::size_t fields_;
  std::vector<T> data_;
};

}  // namespace smache::grid

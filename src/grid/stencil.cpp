#include "grid/stencil.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace smache::grid {

StencilShape::StencilShape(std::string name, std::vector<Offset2> offsets)
    : name_(std::move(name)), offsets_(std::move(offsets)) {
  SMACHE_REQUIRE_MSG(!offsets_.empty(), "a stencil needs at least one offset");
  // Duplicate offsets would silently double-count in kernels.
  for (std::size_t i = 0; i < offsets_.size(); ++i)
    for (std::size_t j = i + 1; j < offsets_.size(); ++j)
      SMACHE_REQUIRE_MSG(!(offsets_[i] == offsets_[j]),
                         "duplicate stencil offset");
  dr_min_ = dr_max_ = offsets_[0].dr;
  dc_min_ = dc_max_ = offsets_[0].dc;
  ds_min_ = ds_max_ = offsets_[0].ds;
  for (const auto& o : offsets_) {
    dr_min_ = std::min(dr_min_, o.dr);
    dr_max_ = std::max(dr_max_, o.dr);
    dc_min_ = std::min(dc_min_, o.dc);
    dc_max_ = std::max(dc_max_, o.dc);
    ds_min_ = std::min(ds_min_, o.ds);
    ds_max_ = std::max(ds_max_, o.ds);
  }
}

std::int64_t StencilShape::reach3(std::size_t w, std::size_t h)
    const noexcept {
  std::int64_t lo = 0, hi = 0;
  bool first = true;
  for (const auto& o : offsets_) {
    const std::int64_t lin =
        (o.ds * static_cast<std::int64_t>(h) + o.dr) *
            static_cast<std::int64_t>(w) +
        o.dc;
    if (first) {
      lo = hi = lin;
      first = false;
    } else {
      lo = std::min(lo, lin);
      hi = std::max(hi, lin);
    }
  }
  return hi - lo;
}

std::int64_t StencilShape::reach(std::size_t w) const noexcept {
  std::int64_t lo = 0, hi = 0;
  bool first = true;
  for (const auto& o : offsets_) {
    const std::int64_t lin = o.dr * static_cast<std::int64_t>(w) + o.dc;
    if (first) {
      lo = hi = lin;
      first = false;
    } else {
      lo = std::min(lo, lin);
      hi = std::max(hi, lin);
    }
  }
  return hi - lo;
}

bool StencilShape::contains(Offset2 o) const noexcept {
  return std::find(offsets_.begin(), offsets_.end(), o) != offsets_.end();
}

StencilShape StencilShape::von_neumann4() {
  return StencilShape("von_neumann4",
                      {{-1, 0}, {0, -1}, {0, 1}, {1, 0}});
}

StencilShape StencilShape::plus5() {
  return StencilShape("plus5", {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
}

StencilShape StencilShape::moore9() {
  std::vector<Offset2> o;
  for (std::int64_t dr = -1; dr <= 1; ++dr)
    for (std::int64_t dc = -1; dc <= 1; ++dc) o.push_back({dr, dc});
  return StencilShape("moore9", std::move(o));
}

StencilShape StencilShape::cross(std::int64_t k) {
  SMACHE_REQUIRE(k >= 1);
  return StencilShape("cross" + std::to_string(k),
                      {{-k, 0}, {0, -k}, {0, 0}, {0, k}, {k, 0}});
}

StencilShape StencilShape::upwind3() {
  return StencilShape("upwind3", {{0, 0}, {0, -1}, {-1, 0}});
}

StencilShape StencilShape::star7() {
  return StencilShape("star7", {{0, 0, 0},
                                {0, 0, -1},
                                {-1, 0, 0},
                                {0, -1, 0},
                                {0, 1, 0},
                                {1, 0, 0},
                                {0, 0, 1}});
}

StencilShape StencilShape::custom(std::string name,
                                  std::vector<Offset2> offsets) {
  return StencilShape(std::move(name), std::move(offsets));
}

}  // namespace smache::grid

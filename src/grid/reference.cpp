#include "grid/reference.hpp"

#include "common/assert.hpp"

namespace smache::grid {

std::vector<TupleElem> gather_tuple(const Grid<word_t>& in,
                                    const StencilShape& shape,
                                    const BoundarySpec& bc, std::size_t r,
                                    std::size_t c) {
  SMACHE_REQUIRE_MSG(in.depth() == 1,
                     "2D gather_tuple on a 3D grid: pass the slice");
  return gather_tuple(in, shape, bc, 0, r, c);
}

std::vector<TupleElem> gather_tuple(const Grid<word_t>& in,
                                    const StencilShape& shape,
                                    const BoundarySpec& bc, std::size_t s,
                                    std::size_t r, std::size_t c) {
  std::vector<TupleElem> tuple;
  tuple.reserve(shape.size());
  for (const Offset2& o : shape.offsets()) {
    const Resolved res = resolve(s, r, c, o.ds, o.dr, o.dc, in.depth(),
                                 in.height(), in.width(), bc);
    switch (res.kind) {
      case Resolved::Kind::Cell:
        tuple.push_back(
            TupleElem{in.at(res.s * in.height() + res.r, res.c), true});
        break;
      case Resolved::Kind::Constant:
        tuple.push_back(TupleElem{res.constant, true});
        break;
      case Resolved::Kind::Missing:
        tuple.push_back(TupleElem{0, false});
        break;
    }
  }
  return tuple;
}

std::vector<TupleElem> gather_cell_tuple(const Grid<word_t>& in,
                                         const StencilShape& shape,
                                         const BoundarySpec& bc,
                                         std::size_t r, std::size_t c) {
  SMACHE_REQUIRE_MSG(in.depth() == 1,
                     "2D gather_cell_tuple on a 3D grid: pass the slice");
  return gather_cell_tuple(in, shape, bc, 0, r, c);
}

std::vector<TupleElem> gather_cell_tuple(const Grid<word_t>& in,
                                         const StencilShape& shape,
                                         const BoundarySpec& bc,
                                         std::size_t s, std::size_t r,
                                         std::size_t c) {
  const std::size_t fields = in.fields();
  std::vector<TupleElem> tuple;
  tuple.reserve(shape.size() * fields);
  for (const Offset2& o : shape.offsets()) {
    const Resolved res = resolve(s, r, c, o.ds, o.dr, o.dc, in.depth(),
                                 in.height(), in.width(), bc);
    for (std::size_t f = 0; f < fields; ++f) {
      switch (res.kind) {
        case Resolved::Kind::Cell:
          tuple.push_back(TupleElem{
              in.at(res.s * in.height() + res.r, res.c, f), true});
          break;
        case Resolved::Kind::Constant:
          tuple.push_back(TupleElem{res.constant, true});
          break;
        case Resolved::Kind::Missing:
          tuple.push_back(TupleElem{0, false});
          break;
      }
    }
  }
  return tuple;
}

}  // namespace smache::grid

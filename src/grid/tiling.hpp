// Spatial tiling geometry for intra-scenario parallelism: split a grid into
// a tiles_r x tiles_c mesh of interior rectangles, each padded with a halo
// wide enough that `depth` fused time steps computed independently on the
// padded subgrid leave the interior bit-identical to the untiled run (the
// classic ghost-zone / redundant-computation scheme).
//
// Halo width per side = depth * per-direction stencil reach: the error
// front introduced at a tile cut advances by at most the per-step reach
// each step, so after `depth` steps it has consumed exactly the halo and
// the interior is still exact. Boundary families interact with cuts
// per-axis:
//
//   unsplit axis   — no cuts, no halo; the tile keeps the global boundary
//                    (any family, including periodic).
//   split periodic — full un-clipped halos on both sides of every tile,
//                    materialised by wrapping at gather time; the tile
//                    itself sees an *open* axis (whatever wrong values the
//                    open sub-boundary produces land only in halo cells
//                    that are discarded by the stitch). This is also what
//                    lets depth>1 cascades run across a periodic axis:
//                    the wrap is resolved by the exchange, not the
//                    datapath.
//   split open / mirror / constant — halos are clipped at the true grid
//                    edge so a subgrid edge coincides with the global edge
//                    exactly where the family must resolve; the tile keeps
//                    the global family. Mirror additionally requires the
//                    subgrid extent to exceed the reflected reach (see
//                    plan_tiling) or the fold would read cells the halo
//                    error front has already consumed — those pairings are
//                    rejected with a descriptive error, never silently
//                    diverged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/word.hpp"
#include "grid/boundary.hpp"
#include "grid/grid.hpp"
#include "grid/stencil.hpp"

namespace smache::grid {

/// One tile: an interior box of the global grid (owned cells, written
/// back by the stitch) plus per-side halo widths (read-only ghost cells).
/// The slice axis mirrors rows/cols: s0/slices interior, front = toward
/// slice 0, back = toward slice D-1. 2D tiles keep slices = 1 with zero
/// slice halos, so every 2D geometry is unchanged.
struct TileGeometry {
  std::size_t r0 = 0, c0 = 0;      ///< interior origin, global coordinates
  std::size_t rows = 0, cols = 0;  ///< interior extent
  std::size_t s0 = 0;              ///< interior origin on the slice axis
  std::size_t slices = 1;          ///< interior slice extent
  std::size_t halo_top = 0, halo_bottom = 0;
  std::size_t halo_left = 0, halo_right = 0;
  std::size_t halo_front = 0, halo_back = 0;
  /// Boundary spec of the padded sub-problem (split periodic axes become
  /// open; everything else keeps the global family).
  BoundarySpec sub_bc;

  std::size_t sub_height() const noexcept {
    return halo_top + rows + halo_bottom;
  }
  std::size_t sub_width() const noexcept {
    return halo_left + cols + halo_right;
  }
  std::size_t sub_depth() const noexcept {
    return halo_front + slices + halo_back;
  }
  /// Global coordinate of subgrid cell (0,0); negative when a periodic
  /// halo wraps past the grid origin.
  std::int64_t origin_r() const noexcept {
    return static_cast<std::int64_t>(r0) - static_cast<std::int64_t>(halo_top);
  }
  std::int64_t origin_c() const noexcept {
    return static_cast<std::int64_t>(c0) -
           static_cast<std::int64_t>(halo_left);
  }
  std::int64_t origin_s() const noexcept {
    return static_cast<std::int64_t>(s0) -
           static_cast<std::int64_t>(halo_front);
  }
};

/// A full decomposition: tiles in slice-major row-major tile order,
/// interiors disjoint and covering the grid exactly.
struct TilingLayout {
  std::size_t height = 0, width = 0;
  std::size_t tiles_r = 1, tiles_c = 1;
  std::size_t depth = 1;
  std::size_t grid_depth = 1;  ///< slice extent of the tiled grid
  std::size_t tiles_s = 1;     ///< tile count on the slice axis
  std::vector<TileGeometry> tiles;
};

/// Plan a tiles_r x tiles_c decomposition of a height x width grid for
/// `depth` fused steps of `shape` under `bc`. Tile extents are balanced
/// (earlier tiles take the remainder). Throws contract_error with a
/// descriptive message for pairings that cannot tile exactly:
///   - more tiles than cells on an axis;
///   - a padded subgrid no larger than the stencil span;
///   - a split mirror axis whose edge tiles are too small for the
///     reflected reach at this depth;
///   - depth > 1 with an *unsplit* periodic axis (the wrap would need the
///     per-instance engine's double-buffered static buffers; splitting the
///     axis turns the wrap into halo exchange and is supported).
TilingLayout plan_tiling(std::size_t height, std::size_t width,
                         std::size_t tiles_r, std::size_t tiles_c,
                         const StencilShape& shape, const BoundarySpec& bc,
                         std::size_t depth);

/// Three-axis overload: tiles_r x tiles_c x tiles_s mesh over an
/// h x w x grid_depth grid (`grid_depth` = slice extent; `depth` keeps its
/// meaning of fused time steps). The slice axis obeys exactly the same
/// cut/halo/boundary rules as rows and columns. The 2D overload is this
/// one with grid_depth = tiles_s = 1.
TilingLayout plan_tiling(std::size_t height, std::size_t width,
                         std::size_t grid_depth, std::size_t tiles_r,
                         std::size_t tiles_c, std::size_t tiles_s,
                         const StencilShape& shape, const BoundarySpec& bc,
                         std::size_t depth);

/// Materialise a tile's padded subgrid from the current global state.
/// Halo cells past a true grid edge occur only on split periodic axes (by
/// construction of plan_tiling) and are filled by wrapping.
Grid<word_t> gather_tile(const Grid<word_t>& global, const TileGeometry& tile,
                         const BoundarySpec& bc);

/// Copy a finished tile's interior back into the global grid. Interiors of
/// distinct tiles are disjoint, so concurrent stitches of different tiles
/// into the same grid never touch the same cell.
void stitch_interior(Grid<word_t>& global, const TileGeometry& tile,
                     const Grid<word_t>& sub);

}  // namespace smache::grid

// Golden software reference executor. This is the semantic oracle: the
// simulated hardware must produce bit-identical grids. It performs the
// naive gather per cell through boundary resolution and applies the same
// kernel functor the hardware pipeline uses.
#pragma once

#include <cstdint>
#include <vector>

#include "common/word.hpp"
#include "grid/boundary.hpp"
#include "grid/grid.hpp"
#include "grid/stencil.hpp"

namespace smache::grid {

/// Gather the stencil tuple for cell (r, c). Elements keep the stencil's
/// offset order; invalid elements (open boundary) carry valid = false.
std::vector<TupleElem> gather_tuple(const Grid<word_t>& in,
                                    const StencilShape& shape,
                                    const BoundarySpec& bc, std::size_t r,
                                    std::size_t c);

/// Slice-explicit gather for cell (s, r, c) of a 3D grid. Reduces to the
/// 2D overload when in.depth() == 1, s == 0 and the shape is 2D.
std::vector<TupleElem> gather_tuple(const Grid<word_t>& in,
                                    const StencilShape& shape,
                                    const BoundarySpec& bc, std::size_t s,
                                    std::size_t r, std::size_t c);

/// F-field gather: tap-major tuple of size shape.size() * in.fields(),
/// tuple[t * F + f] = field f of the cell at offset t. Boundary resolution
/// happens once per CELL; validity and the constant halo value replicate
/// across that cell's fields. Identical to gather_tuple for F = 1.
std::vector<TupleElem> gather_cell_tuple(const Grid<word_t>& in,
                                         const StencilShape& shape,
                                         const BoundarySpec& bc,
                                         std::size_t r, std::size_t c);

/// Slice-explicit F-field gather (3D counterpart of gather_cell_tuple).
std::vector<TupleElem> gather_cell_tuple(const Grid<word_t>& in,
                                         const StencilShape& shape,
                                         const BoundarySpec& bc,
                                         std::size_t s, std::size_t r,
                                         std::size_t c);

/// Apply one stencil step: out(r,c) = kernel(tuple(r,c)). The kernel is any
/// callable word_t(const std::vector<TupleElem>&).
template <typename Kernel>
Grid<word_t> apply_stencil(const Grid<word_t>& in, const StencilShape& shape,
                           const BoundarySpec& bc, Kernel&& kernel) {
  Grid<word_t> out(in.height(), in.width(), in.depth(), CellLayout{});
  for (std::size_t s = 0; s < in.depth(); ++s)
    for (std::size_t r = 0; r < in.height(); ++r)
      for (std::size_t c = 0; c < in.width(); ++c)
        out.at(s * in.height() + r, c) =
            kernel(gather_tuple(in, shape, bc, s, r, c));
  return out;
}

/// Run `steps` work-instances (output of step k feeds step k+1), matching
/// the hardware's ping-pong DRAM regions.
template <typename Kernel>
Grid<word_t> run_steps(Grid<word_t> state, const StencilShape& shape,
                       const BoundarySpec& bc, Kernel&& kernel,
                       std::size_t steps) {
  for (std::size_t s = 0; s < steps; ++s)
    state = apply_stencil(state, shape, bc, kernel);
  return state;
}

/// Cell-wide stencil step: the kernel is any callable
/// void(const std::vector<TupleElem>&, word_t* out) that reads the
/// tap-major F-field tuple and writes the output cell's F words.
template <typename KernelCells>
Grid<word_t> apply_stencil_cells(const Grid<word_t>& in,
                                 const StencilShape& shape,
                                 const BoundarySpec& bc,
                                 KernelCells&& kernel) {
  Grid<word_t> out(in.height(), in.width(), in.depth(), in.layout());
  for (std::size_t s = 0; s < in.depth(); ++s)
    for (std::size_t r = 0; r < in.height(); ++r)
      for (std::size_t c = 0; c < in.width(); ++c)
        kernel(gather_cell_tuple(in, shape, bc, s, r, c),
               out.cell(s * in.height() + r, c));
  return out;
}

template <typename KernelCells>
Grid<word_t> run_steps_cells(Grid<word_t> state, const StencilShape& shape,
                             const BoundarySpec& bc, KernelCells&& kernel,
                             std::size_t steps) {
  for (std::size_t s = 0; s < steps; ++s)
    state = apply_stencil_cells(state, shape, bc, kernel);
  return state;
}

}  // namespace smache::grid

// Tiny command-line flag parser for the example and bench binaries.
// Supports `--name value`, `--name=value` and boolean `--name` flags; every
// binary must also run with no arguments (the bench harness invokes them
// bare), so all flags have defaults.
//
// Parsing rules:
//   * `--name=value` always binds `value`, even for boolean flags.
//   * `--name value` binds the next token UNLESS `name` was declared in the
//     constructor's boolean-flag set — declared booleans never consume the
//     token after them, so `--verbose out.json` keeps `out.json` positional.
//   * Numeric getters parse strictly (whole token, overflow checked): a
//     malformed or out-of-range value logs a warning through smache::Log
//     and returns the fallback instead of silently truncating — the
//     binaries' contract is "run with defaults rather than crash", but
//     never "invent a number the user did not write".
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace smache {

class CliArgs {
 public:
  /// `bool_flags` declares presence-only flags: they never bind the token
  /// that follows them (see header comment).
  CliArgs(int argc, const char* const* argv,
          std::initializer_list<std::string_view> bool_flags = {});

  /// True if the flag was present at all (with or without a value).
  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  /// Strict integer parse; warns and returns `fallback` on malformed input
  /// or overflow. A valueless presence flag also yields the fallback.
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  /// Strict floating parse; warns and returns `fallback` on malformed
  /// input or overflow. A valueless presence flag also yields the fallback.
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace smache

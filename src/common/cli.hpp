// Tiny command-line flag parser for the example and bench binaries.
// Supports `--name value`, `--name=value` and boolean `--name` flags; every
// binary must also run with no arguments (the bench harness invokes them
// bare), so all flags have defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace smache {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True if the flag was present at all (with or without a value).
  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace smache

// Streaming statistics accumulators used by the benchmark harnesses and the
// DRAM model's traffic counters.
#pragma once

#include <cstdint>
#include <limits>

namespace smache {

/// Online mean/min/max/variance accumulator (Welford). Cheap enough to keep
/// per-channel inside the simulator.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Ratio helper that guards against division by zero: returns 0 when the
/// denominator is 0 (used for normalised figure rows).
constexpr double safe_ratio(double num, double den) noexcept {
  return den == 0.0 ? 0.0 : num / den;
}

}  // namespace smache

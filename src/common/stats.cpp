#include "common/stats.hpp"

// RunningStats is header-only; this file exists so the common library has a
// stable archive member for it and future out-of-line additions.
namespace smache {
static_assert(safe_ratio(1.0, 0.0) == 0.0);
static_assert(safe_ratio(6.0, 3.0) == 2.0);
}  // namespace smache

#include "common/parallel.hpp"

#include <atomic>
#include <charconv>
#include <cstdlib>
#include <exception>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/log.hpp"

namespace smache {

std::size_t hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t threads_from_env(const char* var, std::size_t fallback) {
  const char* value = std::getenv(var);
  if (value == nullptr || value[0] == '\0') return fallback;
  const std::string_view token(value);
  std::size_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), parsed);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    Log::warn(std::string(var) + "=" + value +
              " is not a thread count; using the default");
    return fallback;
  }
  return parsed == 0 ? hardware_threads() : parsed;
}

void parallel_for_index(std::size_t n, std::size_t threads,
                        const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads == 0) threads = hardware_threads();
  if (threads > n) threads = n;

  if (threads <= 1) {
    // Same exception contract as the threaded path: every index runs,
    // failures are captured, and the lowest-index failure is rethrown —
    // fn's side effects cannot depend on the thread count.
    std::exception_ptr first;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::vector<std::exception_ptr> errors(n);
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (auto& t : pool) t.join();

  // Rethrow the lowest-index failure: the error the serial loop would have
  // hit first, whatever order the workers actually ran in.
  for (std::size_t i = 0; i < n; ++i)
    if (errors[i]) std::rethrow_exception(errors[i]);
}

}  // namespace smache

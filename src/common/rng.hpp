// Deterministic random number generation for tests, workload generators and
// failure injection. A fixed, documented algorithm (SplitMix64 seeding a
// xoshiro256**-like core) guarantees bit-identical workloads across
// platforms, which std::mt19937 distributions do not.
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace smache {

/// Deterministic 64-bit PRNG (splitmix64). Small state, good diffusion,
/// reproducible everywhere.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    SMACHE_REQUIRE(bound > 0);
    // Rejection sampling to avoid modulo bias; the loop terminates quickly
    // because the acceptance probability is > 1/2.
    const std::uint64_t limit = bound * ((~std::uint64_t{0}) / bound);
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return v % bound;
  }

  /// Uniform value in the inclusive range [lo, hi].
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    SMACHE_REQUIRE(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;  // may wrap to 0 at full range
    if (span == 0) return static_cast<std::int64_t>(next_u64());
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Bernoulli draw with probability p_num / p_den.
  bool chance(std::uint64_t p_num, std::uint64_t p_den) {
    SMACHE_REQUIRE(p_den > 0);
    return next_below(p_den) < p_num;
  }

  /// Uniform double in [0, 1).
  double next_unit() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace smache

// Bit-level arithmetic helpers used throughout the resource and address
// calculations. All functions are constexpr and total (defined for every
// input) so they can be used in static contexts and property tests.
#pragma once

#include <cstdint>

namespace smache {

/// Number of bits needed to represent values 0..n-1 (i.e. an address width
/// for a memory of n entries). By convention `addr_bits(0) == 0` and
/// `addr_bits(1) == 1` (a 1-deep memory still needs a degenerate address).
constexpr std::uint32_t addr_bits(std::uint64_t n) noexcept {
  if (n <= 1) return n == 0 ? 0u : 1u;
  std::uint32_t bits = 0;
  std::uint64_t v = n - 1;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

/// Number of bits needed to *count* 0..n inclusive (counter width).
constexpr std::uint32_t count_bits(std::uint64_t n) noexcept {
  return addr_bits(n + 1);
}

/// ceil(log2(n)) for n >= 1; 0 for n in {0, 1}.
constexpr std::uint32_t ceil_log2(std::uint64_t n) noexcept {
  if (n <= 1) return 0;
  std::uint32_t bits = 0;
  std::uint64_t v = n - 1;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

/// True iff n is a power of two (n > 0).
constexpr bool is_pow2(std::uint64_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n (n = 0 maps to 1).
constexpr std::uint64_t next_pow2(std::uint64_t n) noexcept {
  if (n <= 1) return 1;
  std::uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Round n up to the next multiple of m (m > 0).
constexpr std::uint64_t round_up(std::uint64_t n, std::uint64_t m) noexcept {
  if (m == 0) return n;
  const std::uint64_t r = n % m;
  return r == 0 ? n : n + (m - r);
}

/// Integer ceiling division.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return b == 0 ? 0 : (a + b - 1) / b;
}

/// Floored modulo that is always in [0, m) even for negative a. Used for
/// periodic (circular) boundary wrapping.
constexpr std::int64_t floor_mod(std::int64_t a, std::int64_t m) noexcept {
  if (m <= 0) return 0;
  std::int64_t r = a % m;
  return r < 0 ? r + m : r;
}

/// Mirror (reflective, non-repeating-edge) fold of coordinate a into [0, m).
/// Pattern for m = 4: ... 2 1 | 0 1 2 3 | 2 1 0 1 ...
constexpr std::int64_t mirror_index(std::int64_t a, std::int64_t m) noexcept {
  if (m <= 1) return 0;
  const std::int64_t period = 2 * (m - 1);
  std::int64_t r = floor_mod(a, period);
  return r < m ? r : period - r;
}

}  // namespace smache

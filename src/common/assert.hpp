// Lightweight contract checking for the Smache library.
//
// SMACHE_REQUIRE / SMACHE_ENSURE follow the C++ Core Guidelines (I.6, I.8)
// precondition/postcondition idiom. They are always on: this library is a
// simulator whose value is correctness, and the checks are cheap relative to
// cycle evaluation. Violations throw `smache::contract_error` so tests can
// assert on them instead of aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace smache {

/// Thrown when a precondition, postcondition, or internal invariant fails.
class contract_error : public std::logic_error {
 public:
  explicit contract_error(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::string full = std::string(kind) + " failed: " + expr + " at " + file +
                     ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw contract_error(full);
}
}  // namespace detail

}  // namespace smache

#define SMACHE_REQUIRE(expr)                                                 \
  do {                                                                       \
    if (!(expr))                                                             \
      ::smache::detail::contract_fail("precondition", #expr, __FILE__,       \
                                      __LINE__, "");                         \
  } while (false)

#define SMACHE_REQUIRE_MSG(expr, msg)                                        \
  do {                                                                       \
    if (!(expr))                                                             \
      ::smache::detail::contract_fail("precondition", #expr, __FILE__,       \
                                      __LINE__, (msg));                      \
  } while (false)

#define SMACHE_ENSURE(expr)                                                  \
  do {                                                                       \
    if (!(expr))                                                             \
      ::smache::detail::contract_fail("postcondition", #expr, __FILE__,      \
                                      __LINE__, "");                         \
  } while (false)

#define SMACHE_ASSERT(expr)                                                  \
  do {                                                                       \
    if (!(expr))                                                             \
      ::smache::detail::contract_fail("invariant", #expr, __FILE__,          \
                                      __LINE__, "");                         \
  } while (false)

#define SMACHE_ASSERT_MSG(expr, msg)                                         \
  do {                                                                       \
    if (!(expr))                                                             \
      ::smache::detail::contract_fail("invariant", #expr, __FILE__,          \
                                      __LINE__, (msg));                      \
  } while (false)

// ASCII / CSV table rendering for benchmark harness output.
//
// Every bench binary prints the same rows the paper reports; this small
// formatter keeps those tables aligned and lets them also be dumped as CSV
// for downstream plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace smache {

/// Column alignment inside an ASCII table.
enum class Align { Left, Right };

/// A simple row/column text table. Cells are strings; numeric helpers format
/// with fixed precision. Rendering pads columns to the widest cell.
class TextTable {
 public:
  /// Create a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Number of columns.
  std::size_t columns() const noexcept { return headers_.size(); }
  /// Number of data rows added so far.
  std::size_t rows() const noexcept { return rows_.size(); }

  /// Begin a new row; subsequent add_cell calls fill it left to right.
  void begin_row();
  /// Append one cell to the current row. Throws if the row would overflow.
  void add_cell(std::string text);
  /// Convenience: numeric cells.
  void add_cell(double value, int precision = 2);
  void add_cell(std::uint64_t value);
  void add_cell(std::int64_t value);

  /// Add a fully-formed row at once (must match the column count).
  void add_row(std::vector<std::string> cells);

  /// Set per-column alignment (defaults: first column Left, rest Right).
  void set_align(std::size_t column, Align align);

  /// Render as an aligned ASCII table with a header rule.
  std::string to_ascii() const;
  /// Render as CSV (RFC-4180-style quoting for commas/quotes).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> align_;
};

/// Format a double with fixed precision (no locale surprises).
std::string format_fixed(double value, int precision);

/// Format bytes as a human-readable KiB string with 1 decimal, matching the
/// paper's "KB" reporting (which is KiB arithmetic: 242000 B -> 236.3).
std::string format_kib(std::uint64_t bytes);

}  // namespace smache

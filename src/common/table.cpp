#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"

namespace smache {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SMACHE_REQUIRE(!headers_.empty());
  align_.assign(headers_.size(), Align::Right);
  align_[0] = Align::Left;
}

void TextTable::begin_row() { rows_.emplace_back(); }

void TextTable::add_cell(std::string text) {
  SMACHE_REQUIRE_MSG(!rows_.empty(), "begin_row before add_cell");
  SMACHE_REQUIRE_MSG(rows_.back().size() < headers_.size(),
                     "row has more cells than headers");
  rows_.back().push_back(std::move(text));
}

void TextTable::add_cell(double value, int precision) {
  add_cell(format_fixed(value, precision));
}

void TextTable::add_cell(std::uint64_t value) {
  add_cell(std::to_string(value));
}

void TextTable::add_cell(std::int64_t value) {
  add_cell(std::to_string(value));
}

void TextTable::add_row(std::vector<std::string> cells) {
  SMACHE_REQUIRE(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::set_align(std::size_t column, Align align) {
  SMACHE_REQUIRE(column < align_.size());
  align_[column] = align;
}

std::string TextTable::to_ascii() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](std::ostringstream& out,
                      const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string cell = c < cells.size() ? cells[c] : "";
      const std::size_t pad = width[c] - cell.size();
      if (c != 0) out << "  ";
      if (align_[c] == Align::Right) out << std::string(pad, ' ') << cell;
      else out << cell << std::string(pad, ' ');
    }
    out << '\n';
  };

  std::ostringstream out;
  emit_row(out, headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c == 0 ? 0 : 2);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(out, row);
  return out.str();
}

std::string TextTable::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    q += '"';
    return q;
  };
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out << (c ? "," : "") << quote(headers_[c]);
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      out << (c ? "," : "") << quote(row[c]);
    out << '\n';
  }
  return out.str();
}

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string format_kib(std::uint64_t bytes) {
  return format_fixed(static_cast<double>(bytes) / 1024.0, 1);
}

}  // namespace smache

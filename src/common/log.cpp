#include "common/log.hpp"

#include <cstdio>

namespace smache {

namespace {
LogLevel g_level = LogLevel::Warn;
Log::Sink g_sink;  // empty -> default stderr sink

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void Log::set_level(LogLevel level) noexcept { g_level = level; }
LogLevel Log::level() noexcept { return g_level; }
void Log::set_sink(Sink sink) { g_sink = std::move(sink); }

void Log::write(LogLevel level, const std::string& message) {
  if (level < g_level || g_level == LogLevel::Off) return;
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fprintf(stderr, "[smache %s] %s\n", level_name(level), message.c_str());
}

}  // namespace smache

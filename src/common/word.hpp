// The machine word flowing through the simulated datapaths. The paper's
// prototype uses 32-bit grid elements; all RTL-level modules move raw
// 32-bit words, and typed kernels bit-cast at the boundary (see
// rtl/kernel.hpp). A cell is F consecutive words (CellLayout); the
// single-field layout (F=1) is the paper's datapath and the default
// everywhere.
#pragma once

#include <cstdint>
#include <cstring>

namespace smache {

using word_t = std::uint32_t;
inline constexpr std::uint32_t kWordBits = 32;
inline constexpr std::uint32_t kWordBytes = 4;

/// Upper bound on fields per cell. Small on purpose: RTL-side messages
/// (KernelPipeline results, cascade inter-stage cells) carry fixed
/// std::array<word_t, kMaxFields> payloads so they stay trivially
/// copyable, and every registered application fits in 3 fields.
inline constexpr std::size_t kMaxFields = 4;

/// How a logical cell maps onto datapath words: F fields, stored
/// interleaved (field-major within the cell) in grids, DRAM rows, stream
/// and static buffer slots. F=1 reproduces the original word-per-cell
/// datapath bit-for-bit.
struct CellLayout {
  std::size_t fields = 1;
  constexpr bool single() const noexcept { return fields == 1; }
  friend constexpr bool operator==(const CellLayout&,
                                   const CellLayout&) = default;
};

/// Bit-cast between the raw datapath word and a typed value (int32_t,
/// float, uint32_t). memcpy is the defined-behaviour idiom; compilers
/// lower it to a register move.
template <typename T>
word_t to_word(T value) noexcept {
  static_assert(sizeof(T) == sizeof(word_t));
  word_t w;
  std::memcpy(&w, &value, sizeof w);
  return w;
}

template <typename T>
T from_word(word_t w) noexcept {
  static_assert(sizeof(T) == sizeof(word_t));
  T value;
  std::memcpy(&value, &w, sizeof value);
  return value;
}

}  // namespace smache

// The machine word flowing through the simulated datapaths. The paper's
// prototype uses 32-bit grid elements; all RTL-level modules move raw
// 32-bit words, and typed kernels bit-cast at the boundary (see
// rtl/kernel.hpp).
#pragma once

#include <cstdint>
#include <cstring>

namespace smache {

using word_t = std::uint32_t;
inline constexpr std::uint32_t kWordBits = 32;
inline constexpr std::uint32_t kWordBytes = 4;

/// Bit-cast between the raw datapath word and a typed value (int32_t,
/// float, uint32_t). memcpy is the defined-behaviour idiom; compilers
/// lower it to a register move.
template <typename T>
word_t to_word(T value) noexcept {
  static_assert(sizeof(T) == sizeof(word_t));
  word_t w;
  std::memcpy(&w, &value, sizeof w);
  return w;
}

template <typename T>
T from_word(word_t w) noexcept {
  static_assert(sizeof(T) == sizeof(word_t));
  T value;
  std::memcpy(&value, &w, sizeof value);
  return value;
}

}  // namespace smache

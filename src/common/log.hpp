// Minimal leveled logging. The simulator is library code, so logging is off
// by default and routed through a single sink that tests can capture.
#pragma once

#include <functional>
#include <string>

namespace smache {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log configuration. Not thread-safe by design: the simulator is
/// single-threaded (an HDL-like two-phase scheduler), and the benches set
/// the level once at startup.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static void set_level(LogLevel level) noexcept;
  static LogLevel level() noexcept;
  /// Replace the sink (default writes to stderr). Pass nullptr to restore
  /// the default.
  static void set_sink(Sink sink);

  static void write(LogLevel level, const std::string& message);

  static void debug(const std::string& m) { write(LogLevel::Debug, m); }
  static void info(const std::string& m) { write(LogLevel::Info, m); }
  static void warn(const std::string& m) { write(LogLevel::Warn, m); }
  static void error(const std::string& m) { write(LogLevel::Error, m); }
};

}  // namespace smache

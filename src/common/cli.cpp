#include "common/cli.hpp"

#include <cerrno>
#include <cstdlib>

#include "common/log.hpp"

namespace smache {

CliArgs::CliArgs(int argc, const char* const* argv,
                 std::initializer_list<std::string_view> bool_flags) {
  const std::set<std::string_view> booleans(bool_flags);
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` form: consume the next token iff it is not a flag and
    // `name` is not a declared boolean — declared booleans must never
    // swallow the positional that happens to follow them.
    if (booleans.count(body) == 0 && i + 1 < argc &&
        std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";  // boolean presence flag
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  const char* text = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    Log::warn("--" + name + "=" + it->second +
              " is not a valid integer; using default " +
              std::to_string(fallback));
    return fallback;
  }
  return value;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  const char* text = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE) {
    Log::warn("--" + name + "=" + it->second +
              " is not a valid number; using default " +
              std::to_string(fallback));
    return fallback;
  }
  return value;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty() || it->second == "1" || it->second == "true" ||
      it->second == "yes" || it->second == "on")
    return true;
  return false;
}

}  // namespace smache

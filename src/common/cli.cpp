#include "common/cli.hpp"

#include <cstdlib>

namespace smache {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` form: consume the next token iff it is not a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";  // boolean presence flag
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty() || it->second == "1" || it->second == "true" ||
      it->second == "yes" || it->second == "on")
    return true;
  return false;
}

}  // namespace smache

// bits.hpp is header-only; this translation unit pins the static asserts so
// they are checked exactly once per build.
#include "common/bits.hpp"

namespace smache {

static_assert(addr_bits(0) == 0);
static_assert(addr_bits(1) == 1);
static_assert(addr_bits(2) == 1);
static_assert(addr_bits(3) == 2);
static_assert(addr_bits(1024) == 10);
static_assert(addr_bits(1025) == 11);
static_assert(count_bits(121) == 7);
static_assert(ceil_log2(1) == 0);
static_assert(ceil_log2(9) == 4);
static_assert(is_pow2(1) && is_pow2(4096) && !is_pow2(12));
static_assert(next_pow2(7) == 8);
static_assert(next_pow2(1021) == 1024);
static_assert(round_up(11, 4) == 12);
static_assert(ceil_div(121, 8) == 16);
static_assert(floor_mod(-1, 11) == 10);
static_assert(mirror_index(-1, 4) == 1);
static_assert(mirror_index(4, 4) == 2);

}  // namespace smache

// Deterministic index-space parallelism for batch drivers (the sweep
// executor, the DSE explorer): run fn(0..n) on a small worker pool and give
// the CALLER full control of where each result lands — workers write into
// index-addressed slots, so collation order is independent of completion
// order and a run with N threads is bit-identical to the serial run.
#pragma once

#include <cstddef>
#include <functional>

namespace smache {

/// Number of hardware threads (>= 1 even when the runtime reports 0).
std::size_t hardware_threads() noexcept;

/// Worker count from an environment variable (e.g. SMACHE_SWEEP_THREADS):
/// unset/empty -> `fallback`, "0" -> hardware_threads(), a positive
/// integer -> itself. A malformed value warns through smache::Log and
/// returns `fallback` — never a silently-guessed count.
std::size_t threads_from_env(const char* var, std::size_t fallback);

/// Invoke `fn(i)` for every i in [0, n), distributed over `threads` workers
/// (0 = hardware_threads(); the calling thread always participates, so
/// `threads == 1` is a plain serial loop with no thread spawned). Work is
/// handed out through an atomic cursor — any worker may run any index, so
/// `fn` must only touch index-owned state (e.g. results[i]).
///
/// Exceptions thrown by `fn` are captured per index and rethrown after all
/// workers drain, lowest index first — deterministic regardless of thread
/// count or scheduling.
void parallel_for_index(std::size_t n, std::size_t threads,
                        const std::function<void(std::size_t)>& fn);

}  // namespace smache

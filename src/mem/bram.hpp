// On-chip block RAM primitive (an M20K-style bank).
//
// Hardware model:
//   * one synchronous read port: read(addr) at cycle t makes the data
//     available from rdata() at cycle t+1 (the bank has a registered output
//     stage — this is also why physical depth gains one word, see below);
//   * one write port: write(addr, v) commits at the clock edge;
//   * read-during-write to the same address returns OLD data
//     (read-before-write mode, the safe default on Intel devices);
//   * at most one read and one write per cycle.
//
// Physical rounding ("synthesis"): logical capacity is what the design
// asked for; the bank that actually gets stitched out of device RAM is
// bigger. Calibrated against the reference Quartus/Stratix-V results the
// paper reports (Table I "Actual" rows):
//   * Mode::Ram  — physical depth = depth + 1 (output register stage):
//                  11 -> 12, 1024 -> 1025;
//   * Mode::Fifo — FIFO pointer logic additionally aligns the depth:
//                  physical depth = round_up(depth + 1, 4):
//                  7 -> 8, 1020 -> 1024.
// Both rules are documented substitutions for real synthesis (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "sim/clocked.hpp"
#include "sim/simulator.hpp"

namespace smache::mem {

/// Bits per M20K block on Stratix-V-class devices.
inline constexpr std::uint64_t kM20kBits = 20480;

class BramBank : public sim::Clocked {
 public:
  enum class Mode { Ram, Fifo };

  BramBank(sim::Simulator& sim, std::string_view path, std::size_t depth,
           std::uint32_t width_bits, Mode mode)
      : depth_(depth), width_bits_(width_bits), mode_(mode),
        store_(depth, 0),
        ctl_{store_.data(), 0, 0, 0, 0, false, false} {
    SMACHE_REQUIRE(depth >= 1);
    SMACHE_REQUIRE(width_bits >= 1 && width_bits <= 64);
    sim.register_clocked(this);
    set_bram_commit(&ctl_);
    const std::uint64_t bits = physical_bits();
    sim.ledger().add(path, sim::ResKind::BramBits, bits);
    sim.ledger().add(path, sim::ResKind::BramBlocks,
                     smache::ceil_div(bits, kM20kBits));
  }

  std::size_t depth() const noexcept { return depth_; }
  std::uint32_t width_bits() const noexcept { return width_bits_; }

  /// Synthesis-rounded depth (see header comment).
  std::size_t physical_depth() const noexcept {
    const std::size_t with_output_stage = depth_ + 1;
    return mode_ == Mode::Ram
               ? with_output_stage
               : static_cast<std::size_t>(
                     smache::round_up(with_output_stage, 4));
  }

  std::uint64_t physical_bits() const noexcept {
    return static_cast<std::uint64_t>(physical_depth()) * width_bits_;
  }

  /// Issue a synchronous read; rdata() returns the value next cycle.
  void read(std::size_t addr) {
    SMACHE_REQUIRE(addr < depth_);
    SMACHE_REQUIRE_MSG(!ctl_.read_pending,
                       "two reads in one cycle on 1R port");
    ctl_.read_addr = addr;
    ctl_.read_pending = true;
    mark_dirty();
  }

  /// Registered read data from the most recent read(). Holds its value
  /// until the next read completes.
  std::uint64_t rdata() const noexcept { return ctl_.rdata; }

  /// Issue a write, applied at the clock edge.
  void write(std::size_t addr, std::uint64_t value) {
    SMACHE_REQUIRE(addr < depth_);
    SMACHE_REQUIRE_MSG(!ctl_.write_pending,
                       "two writes in one cycle on 1W port");
    ctl_.write_addr = addr;
    ctl_.write_value = value & mask();
    ctl_.write_pending = true;
    mark_dirty();
  }

  /// Test-bench backdoor (NOT hardware): inspect committed contents.
  std::uint64_t peek(std::size_t addr) const {
    SMACHE_REQUIRE(addr < depth_);
    return store_[addr];
  }
  /// Test-bench backdoor (NOT hardware): set committed contents.
  void poke(std::size_t addr, std::uint64_t value) {
    SMACHE_REQUIRE(addr < depth_);
    store_[addr] = value & mask();
  }

  void commit() override {
    // Read samples the array before this cycle's write lands:
    // read-before-write semantics. Normally executed inline by the commit
    // loop via the registered BramCommitCtl; kept equivalent here for
    // direct callers.
    if (ctl_.read_pending) {
      ctl_.rdata = store_[ctl_.read_addr];
      ctl_.read_pending = false;
    }
    if (ctl_.write_pending) {
      store_[ctl_.write_addr] = ctl_.write_value;
      ctl_.write_pending = false;
    }
  }

 private:
  std::uint64_t mask() const noexcept {
    return width_bits_ >= 64 ? ~std::uint64_t{0}
                             : ((std::uint64_t{1} << width_bits_) - 1);
  }

  std::size_t depth_;
  std::uint32_t width_bits_;
  Mode mode_;
  std::vector<std::uint64_t> store_;
  BramCommitCtl ctl_;
};

}  // namespace smache::mem

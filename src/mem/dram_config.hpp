// DRAM timing configuration and presets.
#pragma once

#include <cstdint>

namespace smache::mem {

/// Timing/behaviour knobs for DramModel. Two presets:
///
/// functional() — 1 word/cycle, small fixed latency, no row-buffer model.
///   This matches the memory interface implied by the paper's simulation
///   numbers (its baseline spends ~5.3 cycles per 5 accesses per grid
///   point, i.e. a fully pipelined 1-access/cycle interface).
///
/// ddr_like() — adds a row-buffer: accesses that hit the open row stream at
///   1 word/cycle; switching rows costs an activation penalty. Sequential
///   bursts amortise activations; random single-word accesses pay one per
///   access. Used by the ablation bench to show the Smache gap *widening*
///   under realistic memory (the paper's MP-STREAM argument [11]).
struct DramConfig {
  /// Cycles between accepting a read request and the first data word.
  std::uint32_t read_latency = 2;
  /// Words per DRAM row; 0 disables the row-buffer model.
  std::uint32_t row_words = 0;
  /// Extra cycles charged when an access opens a different row.
  std::uint32_t row_miss_cycles = 0;
  /// Channel queue depths (request, read-data, write).
  std::uint32_t req_queue_depth = 4;
  std::uint32_t data_queue_depth = 8;
  std::uint32_t write_queue_depth = 8;
  /// When true, a write drain consumes the same issue slot as read data
  /// (single shared bus); default gives AXI-style independent channels.
  bool shared_bus = false;
  /// Failure injection: after every `stall_every` data words, insert
  /// `stall_cycles` idle cycles (0 disables). Correctness must not depend
  /// on DRAM pacing; tests rely on this hook.
  std::uint32_t stall_every = 0;
  std::uint32_t stall_cycles = 0;
  /// Fault injection, storm flavour: after every `storm_every` issued
  /// words, freeze the read path for `storm_cycles` cycles (0 disables).
  /// Composes additively with the periodic `stall_every` hook — a plan can
  /// impose storms on top of a DRAM family's own pacing. Storms drain
  /// through the same stall counter and are charged to
  /// DramStats::injected_stall_cycles.
  std::uint32_t storm_every = 0;
  std::uint32_t storm_cycles = 0;
  /// Fault injection, delayed-completion flavour: hold every
  /// `delay_every`-th word at the head of the transit line for
  /// `delay_cycles` extra cycles before delivering it (0 disables). Unlike
  /// a stall, the delay models a slow *completion*: the word was fetched on
  /// time but arrives late. Charged to DramStats::injected_delay_cycles.
  std::uint32_t delay_every = 0;
  std::uint32_t delay_cycles = 0;

  static DramConfig functional() {
    DramConfig c;
    c.read_latency = 2;
    c.row_words = 0;
    c.row_miss_cycles = 0;
    return c;
  }

  static DramConfig ddr_like() {
    DramConfig c;
    c.read_latency = 6;
    c.row_words = 1024;       // 4 KiB rows of 32-bit words
    c.row_miss_cycles = 12;   // activate+precharge, in controller cycles
    return c;
  }
};

/// Traffic and behaviour counters maintained by DramModel. `words_read`
/// counts data words delivered to the chip; `words_written` counts words
/// accepted from it — multiply by kWordBytes for the paper's KB numbers.
struct DramStats {
  std::uint64_t read_requests = 0;
  std::uint64_t words_read = 0;
  std::uint64_t words_written = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t injected_stall_cycles = 0;
  std::uint64_t injected_delay_cycles = 0;
  std::uint64_t read_busy_cycles = 0;

  std::uint64_t bytes_read() const noexcept { return words_read * 4; }
  std::uint64_t bytes_written() const noexcept { return words_written * 4; }
  std::uint64_t total_bytes() const noexcept {
    return bytes_read() + bytes_written();
  }
};

}  // namespace smache::mem

// Off-chip DRAM model with AXI-style channels.
//
// Channels (all sim::Fifo, so all communication is properly clocked):
//   read_req   : design -> DRAM   {start address, burst length}
//   read_data  : DRAM  -> design  one word per cycle while streaming
//   write_req  : design -> DRAM   {address, data}, posted writes
//
// The read path is a pipelined controller: an ISSUE stage fetches one word
// per cycle (from the current burst, or from a freshly popped request —
// back-to-back single-word requests sustain one word per cycle), and a
// TRANSIT line of `read_latency` stages carries fetched words to the
// read_data channel. Latency is therefore pipelined, not per-request
// occupancy. Row-buffer penalties (ddr_like preset) stall the issue stage:
// an access that opens a new row waits `row_miss_cycles` before issuing,
// which is what makes random word-granularity access patterns slow while
// sequential bursts stream at full rate — the paper's motivation.
//
// Writes are posted and drain one per cycle. With `shared_bus` set, a write
// drain consumes the issue slot of that cycle (single shared memory port, a
// naive memory-mapped master); with it clear, channels are independent
// (AXI-style streaming).
//
// The model is a behavioural leaf device: its private scheduling state is
// updated directly inside eval() (legal because no other module observes
// it; all externally visible effects go through the clocked FIFOs).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/word.hpp"
#include "mem/dram_config.hpp"
#include "sim/clocked.hpp"
#include "sim/fifo.hpp"
#include "sim/ring_buffer.hpp"
#include "sim/simulator.hpp"

namespace smache::mem {

struct DramReadReq {
  std::uint64_t addr = 0;   // word address
  std::uint32_t burst = 1;  // number of consecutive words
};

struct DramWriteReq {
  std::uint64_t addr = 0;  // word address
  word_t data = 0;
};

class DramModel : public sim::Module {
 public:
  DramModel(sim::Simulator& sim, const std::string& path,
            std::size_t size_words, const DramConfig& config);

  // Channel endpoints for the design under test.
  sim::Fifo<DramReadReq>& read_req() noexcept { return read_req_; }
  sim::Fifo<word_t>& read_data() noexcept { return read_data_; }
  sim::Fifo<DramWriteReq>& write_req() noexcept { return write_req_; }

  const DramConfig& config() const noexcept { return config_; }
  const DramStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = DramStats{}; }

  std::size_t size_words() const noexcept { return store_.size(); }

  /// Test-bench backdoors for loading/checking grid contents.
  word_t peek(std::uint64_t addr) const {
    SMACHE_REQUIRE(addr < store_.size());
    return store_[addr];
  }
  void poke(std::uint64_t addr, word_t value) {
    SMACHE_REQUIRE(addr < store_.size());
    store_[addr] = value;
  }
  /// Bulk backdoor: a pointer to `count` committed words starting at
  /// `addr` (valid until the next poke/eval — copy out before stepping).
  const word_t* peek_span(std::uint64_t addr, std::uint64_t count) const {
    SMACHE_REQUIRE(addr + count <= store_.size());
    return store_.data() + addr;
  }

  /// True when nothing is queued or in flight — used by completion
  /// predicates.
  bool idle() const noexcept {
    return burst_left_ == 0 && inflight_words_ == 0 && read_req_.empty() &&
           write_req_.empty();
  }

  /// Lower bound on cycles until idle() can become true, for
  /// Simulator::run_until_done batching: posted writes drain at most one
  /// per cycle, the issue stage retires at most one burst word or queued
  /// request per cycle, and at most one in-flight word leaves the transit
  /// line per cycle. These retire concurrently, so the bound is their max.
  std::uint64_t min_cycles_to_idle() const noexcept {
    const std::uint64_t issue_backlog =
        static_cast<std::uint64_t>(burst_left_) + read_req_.size();
    return std::max({static_cast<std::uint64_t>(write_req_.size()),
                     static_cast<std::uint64_t>(inflight_words_),
                     issue_backlog});
  }

  void eval() override;

 private:
  bool row_model_on() const noexcept { return config_.row_words != 0; }
  std::uint64_t row_of(std::uint64_t addr) const noexcept {
    return addr / config_.row_words;
  }
  /// Charge latency for touching `addr`; updates the open row.
  void charge_row(std::uint64_t addr);

  DramConfig config_;
  std::vector<word_t> store_;
  DramStats stats_;

  sim::Fifo<DramReadReq> read_req_;
  sim::Fifo<word_t> read_data_;
  sim::Fifo<DramWriteReq> write_req_;

  // Behavioural scheduling state (private to eval()).
  std::uint64_t cur_addr_ = 0;
  std::uint32_t burst_left_ = 0;
  std::uint32_t wait_issue_ = 0;
  std::uint32_t stall_left_ = 0;
  std::uint64_t words_since_stall_ = 0;
  std::uint64_t words_since_storm_ = 0;
  // Delayed-completion fault state: cycles the current head word is still
  // held, delivered words since the last injected delay, and whether the
  // current head word already took its delay decision (so a held word is
  // counted exactly once, however many cycles it waits).
  std::uint32_t delay_left_ = 0;
  std::uint64_t words_since_delay_ = 0;
  bool head_delay_decided_ = false;
  std::int64_t open_row_ = -1;
  // TRANSIT line: one slot per latency stage, at most `read_latency` deep —
  // a fixed ring buffer, not a deque, since the depth never changes.
  sim::RingBuffer<std::optional<word_t>> transit_;
  std::uint32_t inflight_words_ = 0;

  // -- observability --
  sim::Simulator& sim_;
  obs::MetricsRegistry* mreg_;
  obs::MetricsRegistry::Slot s_backpressure_;  // <path>/stall/backpressure
  obs::MetricsRegistry::Slot s_row_wait_;      // <path>/stall/row_wait
  obs::SpanLog* slog_;
  std::uint32_t read_lane_;  // "<path> / read txn" span lane
  // Read transactions in issue order (requests are served strictly FIFO,
  // words deliver in order), so span close is a front-of-queue decrement.
  // Only populated while span recording is enabled.
  struct PendingRead {
    std::uint64_t begin;
    std::uint32_t words_left;
  };
  std::deque<PendingRead> pending_reads_;
};

}  // namespace smache::mem

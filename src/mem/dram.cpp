#include "mem/dram.hpp"

namespace smache::mem {

DramModel::DramModel(sim::Simulator& sim, const std::string& path,
                     std::size_t size_words, const DramConfig& config)
    : config_(config),
      store_(size_words, 0),
      read_req_(sim, path + "/read_req", config.req_queue_depth),
      read_data_(sim, path + "/read_data", config.data_queue_depth),
      write_req_(sim, path + "/write_req", config.write_queue_depth),
      transit_(config.read_latency >= 1 ? config.read_latency : 1),
      sim_(sim),
      mreg_(&sim.metrics()),
      s_backpressure_(
          mreg_->slot(path, "/stall/backpressure",
                      obs::MetricKind::Counter)),
      s_row_wait_(
          mreg_->slot(path, "/stall/row_wait", obs::MetricKind::Counter)),
      slog_(&sim.spans()),
      read_lane_(slog_->lane(path, "read txn")) {
  SMACHE_REQUIRE(size_words >= 1);
  SMACHE_REQUIRE_MSG(config.read_latency >= 1,
                     "read_latency must be >= 1 (transit stage count)");
  set_obs_name(path);
  // Activity gating: while inert the model sleeps; a committed push on
  // either request channel is new work, and a committed pop on read_data
  // is what releases a full-channel back-pressure freeze.
  read_req_.set_consumer(this);
  write_req_.set_consumer(this);
  read_data_.set_producer(this);
  sim.add_module(this);
}

void DramModel::charge_row(std::uint64_t addr) {
  if (!row_model_on()) return;
  const auto row = static_cast<std::int64_t>(row_of(addr));
  if (row != open_row_) {
    wait_issue_ += config_.row_miss_cycles;
    open_row_ = row;
    ++stats_.row_misses;
  } else {
    ++stats_.row_hits;
  }
}

void DramModel::eval() {
  // Inert: nothing queued, nothing in flight, no stall burst draining. A
  // full eval would only rotate empty transit slots, which is unobservable
  // — delivery latency is set by the transit line LENGTH, not its fill
  // level (a word entering with s slots ahead waits (latency - s - 1)
  // growth cycles plus s + 1 drains = latency cycles regardless of s), so
  // freezing the line while inert is exact — and so is sleeping until a
  // request channel commits a push. (An injected stall burst keeps the
  // model awake: it counts injected_stall_cycles per cycle, which is
  // observable through stats().)
  if (stall_left_ == 0 && idle()) {
    sleep();
    return;
  }

  // ---- write engine (posted, one per cycle) ----
  bool wrote = false;
  if (write_req_.can_pop()) {
    const DramWriteReq w = write_req_.pop();
    SMACHE_REQUIRE_MSG(w.addr < store_.size(),
                       "DRAM write request out of range");
    store_[w.addr] = w.data;
    ++stats_.words_written;
    wrote = true;
  }

  // ---- injected stall: freeze the read path this cycle ----
  if (stall_left_ > 0) {
    --stall_left_;
    ++stats_.injected_stall_cycles;
    return;
  }

  // ---- delivery stage: head of the transit line -> read_data ----
  const bool line_full = transit_.size() >= config_.read_latency;
  if (line_full && !transit_.empty()) {
    const bool head_valid = transit_.front().has_value();
    if (head_valid && !read_data_.can_push()) {
      mreg_->count(s_backpressure_);
      // Back-pressure from the design: the whole read pipe holds. With no
      // posted writes left to drain this state is fully frozen — every
      // future cycle is a no-op until the design commits a read_data pop
      // (space) or a write_req push (new drain work), both of which wake
      // us.
      if (write_req_.empty()) sleep();
      return;
    }
    // Delayed-completion fault: the head word was fetched on time but
    // completes late. The decision is taken once per head word (however
    // many cycles it then waits); while held, the whole in-order read pipe
    // holds — exactly like design back-pressure, so correctness cannot
    // depend on it. The model stays awake throughout: inflight_words_ > 0
    // keeps idle() false, and the per-cycle injected_delay_cycles count is
    // observable through stats().
    if (head_valid && !head_delay_decided_ && config_.delay_every != 0) {
      head_delay_decided_ = true;
      if (++words_since_delay_ >= config_.delay_every) {
        words_since_delay_ = 0;
        delay_left_ = config_.delay_cycles;
      }
    }
    if (head_valid && delay_left_ > 0) {
      --delay_left_;
      ++stats_.injected_delay_cycles;
      return;
    }
    if (head_valid) {
      read_data_.push(*transit_.front());
      ++stats_.words_read;
      ++stats_.read_busy_cycles;
      --inflight_words_;
      head_delay_decided_ = false;
      if (slog_->enabled() && !pending_reads_.empty()) {
        // The delivered word always belongs to the oldest open
        // transaction (strict FIFO service); closing it here stamps the
        // full request-pop -> last-word-delivered lifetime.
        PendingRead& p = pending_reads_.front();
        if (--p.words_left == 0) {
          slog_->add(read_lane_, p.begin, sim_.now() + 1);
          pending_reads_.pop_front();
        }
      }
    }
    transit_.pop_front();
  }

  // ---- issue stage: one word per cycle when the bus is free ----
  std::optional<word_t> issued;
  const bool bus_free = !config_.shared_bus || !wrote;
  if (wait_issue_ > 0) {
    --wait_issue_;
    mreg_->count(s_row_wait_);
  } else if (bus_free) {
    if (burst_left_ == 0 && read_req_.can_pop()) {
      const DramReadReq req = read_req_.pop();
      SMACHE_REQUIRE_MSG(req.burst >= 1, "zero-length DRAM burst");
      SMACHE_REQUIRE_MSG(req.addr + req.burst <= store_.size(),
                         "DRAM read request out of range");
      cur_addr_ = req.addr;
      burst_left_ = req.burst;
      ++stats_.read_requests;
      charge_row(cur_addr_);
      if (slog_->enabled())
        pending_reads_.push_back(PendingRead{sim_.now(), req.burst});
    }
    if (burst_left_ > 0 && wait_issue_ == 0) {
      issued = store_[cur_addr_];
      ++inflight_words_;
      --burst_left_;
      ++cur_addr_;
      // Mid-burst row crossing charges an activation before the next word.
      if (burst_left_ > 0 && row_model_on() &&
          cur_addr_ % config_.row_words == 0) {
        charge_row(cur_addr_);
      }
      // Failure injection: periodic stall bursts.
      if (config_.stall_every != 0 &&
          ++words_since_stall_ >= config_.stall_every) {
        words_since_stall_ = 0;
        stall_left_ = config_.stall_cycles;
      }
      // Fault injection: stall storms compose ADDITIVELY with the periodic
      // hook above — a storm landing on a stall cycle extends it.
      if (config_.storm_every != 0 &&
          ++words_since_storm_ >= config_.storm_every) {
        words_since_storm_ = 0;
        stall_left_ += config_.storm_cycles;
      }
    }
  }
  transit_.push_back(issued);
}

}  // namespace smache::mem

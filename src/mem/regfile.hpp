// Distributed-RAM / register-file primitive: combinational (same-cycle)
// reads from any number of positions, one clocked write port. This is the
// "registers" half of the paper's hybrid BRAM/register proposal — tap
// positions that must all be visible in the same cycle live here.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/assert.hpp"
#include "sim/clocked.hpp"
#include "sim/simulator.hpp"

namespace smache::mem {

class RegFile : public sim::Clocked {
 public:
  RegFile(sim::Simulator& sim, std::string_view path, std::size_t depth,
          std::uint32_t width_bits)
      : depth_(depth), width_bits_(width_bits), store_(depth, 0) {
    SMACHE_REQUIRE(depth >= 1);
    SMACHE_REQUIRE(width_bits >= 1 && width_bits <= 64);
    sim.register_clocked(this);
    sim.ledger().add(path, sim::ResKind::RegisterBits,
                     static_cast<std::uint64_t>(depth) * width_bits);
  }

  std::size_t depth() const noexcept { return depth_; }

  /// Combinational read of committed state — any number per cycle
  /// (registers have unlimited read fan-out).
  std::uint64_t read(std::size_t addr) const {
    SMACHE_REQUIRE(addr < depth_);
    return store_[addr];
  }

  /// Clocked write (multiple per cycle allowed: each storage word is an
  /// independent register with its own enable).
  void write(std::size_t addr, std::uint64_t value) {
    SMACHE_REQUIRE(addr < depth_);
    writes_.push_back({addr, value & mask()});
    mark_dirty();
  }

  void commit() override {
    for (const auto& w : writes_) store_[w.addr] = w.value;
    writes_.clear();
  }

 private:
  std::uint64_t mask() const noexcept {
    return width_bits_ >= 64 ? ~std::uint64_t{0}
                             : ((std::uint64_t{1} << width_bits_) - 1);
  }

  struct Write {
    std::size_t addr;
    std::uint64_t value;
  };

  std::size_t depth_;
  std::uint32_t width_bits_;
  std::vector<std::uint64_t> store_;
  std::vector<Write> writes_;
};

}  // namespace smache::mem

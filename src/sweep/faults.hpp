// Deterministic fault-injection harness for crash-safe-sweep testing.
//
// Two fault surfaces, matching the two things a long sweep actually fears:
//
//  * DRAM misbehaviour — DramFault entries in a FaultPlan rewrite the DRAM
//    config of matching scenarios to inject stall storms (the issue path
//    freezes for a burst of cycles) and delayed completions (a fetched word
//    is held at the head of the read pipe). Both hooks live in the DRAM
//    model itself (mem/dram_config.hpp) and are fully deterministic: the
//    trip points are word counts, so an injected run is bit-reproducible
//    and its digest is stable — the harness tests that sweeps degrade
//    gracefully (more cycles, same output hash), not that chaos is chaotic.
//
//  * Store IO misbehaviour — FaultyFileIo wraps any FileIo and executes a
//    script of IoFaults against it: torn appends (a record cut mid-write,
//    as by SIGKILL), silent bit flips at exact offsets (disk rot), short
//    reads (truncated segment), and transient append failures (the retry
//    path's food). Faults are addressed by per-operation call index, so a
//    test can say "tear the 3rd append at byte 7" and get exactly that.
//
// FaultPlan::seeded() derives a plan from a single u64 via splitmix64 —
// the same seed always yields the same plan, so a randomized soak test is
// just a loop over seeds, and any failure reproduces from its seed alone.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mem/dram_config.hpp"
#include "sweep/store.hpp"

namespace smache::sweep {

/// One DRAM fault, applied to every scenario whose label contains
/// `label_contains` (empty matches every scenario). Non-zero fields
/// overwrite the scenario's DRAM config; zero fields leave it untouched.
/// Later matching faults win on overlap.
struct DramFault {
  std::string label_contains;
  /// Stall storm: every `storm_every` issued words, freeze the issue path
  /// for `storm_cycles` cycles (added on top of any configured stall).
  std::uint64_t storm_every = 0;
  std::uint64_t storm_cycles = 0;
  /// Delayed completion: every `delay_every` delivered words, hold the
  /// head of the read pipe for `delay_cycles` cycles.
  std::uint64_t delay_every = 0;
  std::uint64_t delay_cycles = 0;
};

struct FaultPlan {
  std::vector<DramFault> dram;

  bool empty() const noexcept { return dram.empty(); }

  /// Rewrite `config` with every fault matching `label`, in plan order.
  /// Returns true when at least one fault matched.
  bool apply(std::string_view label, mem::DramConfig* config) const;

  /// Deterministic plan from a seed: `count` match-everything faults with
  /// bounded periods (64..1087 words) and magnitudes (1..8 cycles),
  /// alternating storm/delay flavours. Same seed, same plan, always.
  static FaultPlan seeded(std::uint64_t seed, std::size_t count);
};

enum class IoFaultKind {
  /// append_file writes only the first `offset` bytes, then throws
  /// store_io_error — a SIGKILL mid-append, as seen by the next open.
  TornAppend,
  /// append_file throws before writing anything — a transient full/busy
  /// filesystem; the natural target of the executor's bounded retry.
  FailAppend,
  /// append_file XORs `mask` into byte `offset` of the record before
  /// writing it — silent corruption that only the checksum can catch.
  BitFlipAppend,
  /// read_file returns only the first `offset` bytes of the file — a
  /// truncated segment as seen at recovery time.
  ShortRead,
};

/// One scripted IO fault, addressed by the per-kind operation index (the
/// Nth append for append-kind faults, the Nth read for ShortRead — both
/// 0-based, counted per FaultyFileIo instance).
struct IoFault {
  IoFaultKind kind = IoFaultKind::FailAppend;
  std::uint64_t op_index = 0;
  std::uint64_t offset = 0;  // tear/truncation point, or flipped byte
  std::uint8_t mask = 0x01;  // BitFlipAppend XOR mask (must be non-zero)
};

/// FileIo shim executing a fault script against an inner implementation.
/// Operations not named in the script pass straight through. Not
/// thread-safe by itself — ResultStore serializes all IO under its mutex,
/// which is the only way the store ever drives a FileIo.
class FaultyFileIo final : public FileIo {
 public:
  explicit FaultyFileIo(FileIo& inner) : inner_(inner) {}

  void add(IoFault fault) { faults_.push_back(fault); }

  std::uint64_t appends() const noexcept { return append_count_; }
  std::uint64_t reads() const noexcept { return read_count_; }

  void create_directories(const std::string& dir) override;
  bool exists(const std::string& path) override;
  std::vector<std::string> list_files(const std::string& dir,
                                      std::string_view suffix) override;
  std::string read_file(const std::string& path) override;
  void append_file(const std::string& path, std::string_view bytes) override;
  void write_file_atomic(const std::string& path,
                         std::string_view bytes) override;
  void remove_file(const std::string& path) override;

 private:
  const IoFault* match(IoFaultKind kind, std::uint64_t index) const;

  FileIo& inner_;
  std::vector<IoFault> faults_;
  std::uint64_t append_count_ = 0;
  std::uint64_t read_count_ = 0;
};

}  // namespace smache::sweep

#include "sweep/spec.hpp"

#include <charconv>
#include <unordered_set>

#include "common/assert.hpp"
#include "sweep/workloads.hpp"

namespace smache::sweep {

const char* to_string(Mode mode) noexcept {
  return mode == Mode::Simulate ? "sim" : "elab";
}

std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

/// splitmix64 finalizer: diffuses the (base_seed, label-hash) fold so
/// near-identical labels still land on unrelated seeds.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t label_hash) {
  std::uint64_t z = base ^ label_hash;
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

const char* impl_tag(model::StreamImpl impl) noexcept {
  return impl == model::StreamImpl::RegisterOnly ? "reg" : "hyb";
}

}  // namespace

std::size_t SweepSpec::scenario_count() const {
  return archs.size() * impls.size() * thresholds.size() * grids.size() *
         drams.size() * steps.size() * depths.size() * tiles.size() *
         stencils.size() * boundaries.size() * kernels.size() *
         inputs.size();
}

Scenario SweepSpec::scenario_at(std::size_t index) const {
  SMACHE_REQUIRE_MSG(
      !archs.empty() && !impls.empty() && !thresholds.empty() &&
          !grids.empty() && !drams.empty() && !steps.empty() &&
          !depths.empty() && !tiles.empty() && !stencils.empty() &&
          !boundaries.empty() && !kernels.empty() && !inputs.empty(),
      "every sweep dimension needs at least one entry");
  SMACHE_REQUIRE_MSG(index < scenario_count(),
                     "scenario index out of range");

  // Mixed-radix decode, innermost (fastest-varying) dimension first. The
  // nesting order is part of the spec's contract: arch is outermost, input
  // innermost.
  std::size_t rest = index;
  const auto take = [&rest](std::size_t radix) {
    const std::size_t digit = rest % radix;
    rest /= radix;
    return digit;
  };
  const std::string& input_name = inputs[take(inputs.size())];
  const std::string& kernel_name = kernels[take(kernels.size())];
  const std::string& boundary_name = boundaries[take(boundaries.size())];
  const std::string& stencil_name = stencils[take(stencils.size())];
  const GridDim tiles_raw = tiles[take(tiles.size())];
  const std::size_t depth_raw = depths[take(depths.size())];
  const std::size_t step_count = steps[take(steps.size())];
  const std::string& dram_name = drams[take(drams.size())];
  const GridDim grid = grids[take(grids.size())];
  const std::size_t threshold = thresholds[take(thresholds.size())];
  const model::StreamImpl impl = impls[take(impls.size())];
  const Architecture arch = archs[take(archs.size())];

  SMACHE_REQUIRE_MSG(threshold >= 3,
                     "bram segment thresholds below 3 are unplannable");
  SMACHE_REQUIRE_MSG(step_count >= 1, "steps must be >= 1");
  SMACHE_REQUIRE_MSG(depth_raw >= 1, "cascade depth must be >= 1");
  SMACHE_REQUIRE_MSG(tiles_raw.height >= 1 && tiles_raw.width >= 1 &&
                         tiles_raw.depth >= 1,
                     "tile counts must be >= 1");
  // Statically knowable from the spec's dimensions (like steps % depth),
  // so reject the whole spec; geometry-dependent tiling failures (mirror
  // reach, padded extent vs. stencil span) stay per-scenario runtime
  // errors. A slice-axis tile count over a 2D grid is caught here too
  // (tiles 1x1x2 over 16x16 is 2 tiles over 1 slice).
  const auto dim_tag = [](const GridDim& g) {
    std::string s =
        std::to_string(g.height) + 'x' + std::to_string(g.width);
    if (g.depth > 1) s += 'x' + std::to_string(g.depth);
    return s;
  };
  SMACHE_REQUIRE_MSG(tiles_raw.height <= grid.height &&
                         tiles_raw.width <= grid.width &&
                         tiles_raw.depth <= grid.depth,
                     "tiles=" + dim_tag(tiles_raw) +
                         " exceeds the grid extent " + dim_tag(grid));
  // Checked on the RAW pairing, before aliasing: a spec that pairs an
  // indivisible steps/depth combination is malformed even where the depth
  // would be ignored — "reject loudly" beats "run something else".
  SMACHE_REQUIRE_MSG(
      step_count % depth_raw == 0,
      "steps=" + std::to_string(step_count) +
          " is not a multiple of cascade depth=" +
          std::to_string(depth_raw) +
          " (each pass fuses exactly `depth` time steps, so every steps x "
          "depths pairing in the sweep must divide evenly)");

  const KernelFamily& kernel = find_kernel(kernel_name);
  if (kernel.needs_moore9)
    SMACHE_REQUIRE_MSG(stencil_name == "moore9",
                       "kernel '" + kernel_name +
                           "' assumes the Moore-9 tuple layout; pair it "
                           "with stencil 'moore9'");
  // Cell layouts must agree end to end: a simulated scenario materialises
  // the input family's grid, whose words-per-cell count must match what
  // the kernel consumes. (Elaboration never builds an input, so any input
  // name aliases through.) Centre-first kernels are checked against the
  // materialised stencil by ProblemSpec::validate below.
  if (mode == Mode::Simulate) {
    const InputFamily& input = find_input(input_name);
    SMACHE_REQUIRE_MSG(
        input.fields == kernel.spec.fields(),
        "input family '" + input_name + "' produces " +
            std::to_string(input.fields) + "-field cells but kernel '" +
            kernel_name + "' consumes " +
            std::to_string(kernel.spec.fields()) +
            "-field cells; pair layouts exactly");
  }

  // Depth is a cascade-architecture knob: the baseline has no cascade and
  // elaboration runs no passes, so both alias every depth to 1 (the label
  // omits the segment and expand() collapses the duplicates).
  const std::size_t depth =
      (arch == Architecture::Smache && mode == Mode::Simulate) ? depth_raw
                                                               : 1;
  // Tiling is an execution knob: elaboration runs no cycles, so every mesh
  // aliases to the untiled point there. Both architectures tile.
  const GridDim tile_mesh =
      mode == Mode::Simulate ? tiles_raw : GridDim{1, 1, 1};

  Scenario s;
  s.index = index;
  s.mode = mode;
  s.stencil = stencil_name;
  s.boundary = boundary_name;
  s.kernel = kernel_name;
  s.input = input_name;
  s.dram = dram_name;
  s.depth = depth;
  s.tiles = tile_mesh;

  // Canonical label. Dimensions a configuration IGNORES are omitted, which
  // is exactly what lets expand() drop aliased points: the baseline has no
  // stream buffer (no impl/threshold) and no cascade (no depth), Case-R
  // has no BRAM segments (no threshold), and elaboration runs no cycles
  // (no DRAM model, no input, no depth). Depth 1 is the per-instance
  // engine, labelled exactly as before the dimension existed.
  s.label = to_string(mode);
  s.label += '/';
  s.label += to_string(arch);
  if (arch == Architecture::Smache) {
    s.label += '/';
    s.label += impl_tag(impl);
    if (impl == model::StreamImpl::Hybrid)
      s.label += "-t" + std::to_string(threshold);
  }
  if (depth > 1) s.label += "/d" + std::to_string(depth);
  // 1x1 is the untiled engine, labelled exactly as before the dimension
  // existed (and collapsed by expand() wherever tiling is aliased away).
  // Depth-1 grids and meshes omit the xD segment, so every 2D label — and
  // with it every store scenario_key — is byte-identical to before the
  // slice axis existed.
  if (tile_mesh.height > 1 || tile_mesh.width > 1 || tile_mesh.depth > 1)
    s.label += "/t" + dim_tag(tile_mesh);
  s.label += '/' + dim_tag(grid);
  if (mode == Mode::Simulate) s.label += '/' + dram_name;
  s.label += "/s" + std::to_string(step_count);
  s.label += '/' + stencil_name;
  s.label += '/' + boundary_name;
  s.label += '/' + kernel_name;
  if (mode == Mode::Simulate) s.label += '/' + input_name;

  // The seed is derived from the WORKLOAD identity only (grid, steps,
  // stencil, boundary, kernel, input family): scenarios that differ just
  // in architecture, stream impl, threshold, cascade depth, DRAM model or
  // mode share it,
  // so comparisons across those dimensions run the identical data — and a
  // seeded stencil family materialises from its own name alone, so e.g. a
  // threshold ablation over random8 sweeps ONE shape, not eight.
  const std::string workload_key =
      dim_tag(grid) + "/s" + std::to_string(step_count) + '/' +
      stencil_name + '/' + boundary_name + '/' + kernel_name + '/' +
      input_name;
  s.seed = mix_seed(base_seed, fnv1a(workload_key));

  s.problem.height = grid.height;
  s.problem.width = grid.width;
  s.problem.depth = grid.depth;
  s.problem.shape =
      make_stencil(stencil_name,
                   mix_seed(base_seed, fnv1a("stencil/" + stencil_name)));
  s.problem.bc = make_boundary(boundary_name);
  s.problem.kernel = kernel.spec;
  s.problem.steps = step_count;
  s.problem.validate();

  s.engine.arch = arch;
  s.engine.stream_impl = impl;
  s.engine.bram_segment_threshold = threshold;
  s.engine.dram = make_dram(dram_name);
  s.engine.max_cycles = max_cycles;
  return s;
}

std::vector<Scenario> SweepSpec::expand() const {
  const std::size_t n = scenario_count();
  std::vector<Scenario> out;
  out.reserve(n);
  std::unordered_set<std::string> seen;
  for (std::size_t i = 0; i < n; ++i) {
    Scenario s = scenario_at(i);
    if (!seen.insert(s.label).second) continue;  // alias of an earlier point
    out.push_back(std::move(s));
  }
  return out;
}

void SweepSpec::validate() const {
  const std::size_t n = scenario_count();
  SMACHE_REQUIRE_MSG(n >= 1,
                     "every sweep dimension needs at least one entry");
  for (std::size_t i = 0; i < n; ++i) (void)scenario_at(i);
}

std::vector<std::string> split_list(std::string_view csv) {
  std::vector<std::string> out;
  if (csv.empty()) return out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = csv.find(',', start);
    const std::string_view item =
        csv.substr(start, comma == std::string_view::npos ? csv.npos
                                                          : comma - start);
    SMACHE_REQUIRE_MSG(!item.empty(),
                       "empty item in list '" + std::string(csv) + "'");
    out.emplace_back(item);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

Architecture parse_arch(std::string_view token) {
  if (token == "smache") return Architecture::Smache;
  if (token == "baseline") return Architecture::Baseline;
  throw contract_error("unknown architecture '" + std::string(token) +
                       "' (smache | baseline)");
}

model::StreamImpl parse_impl(std::string_view token) {
  if (token == "hybrid") return model::StreamImpl::Hybrid;
  if (token == "reg" || token == "register-only")
    return model::StreamImpl::RegisterOnly;
  throw contract_error("unknown stream impl '" + std::string(token) +
                       "' (hybrid | reg)");
}

Mode parse_mode(std::string_view token) {
  if (token == "sim") return Mode::Simulate;
  if (token == "elab") return Mode::ElaborateOnly;
  throw contract_error("unknown sweep mode '" + std::string(token) +
                       "' (sim | elab)");
}

std::size_t parse_count(std::string_view token, const char* what) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size() || value == 0)
    throw contract_error("malformed " + std::string(what) + " '" +
                         std::string(token) +
                         "' (want a positive integer)");
  return value;
}

std::uint64_t parse_u64(std::string_view token, const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size())
    throw contract_error("malformed " + std::string(what) + " '" +
                         std::string(token) +
                         "' (want an unsigned 64-bit integer)");
  return value;
}

GridDim parse_grid(std::string_view token) {
  // Errors always name the FULL token: "16x0" must report '16x0', not the
  // bare '0' the axis parse saw — a sweep flag carries many tokens and the
  // user needs to know which one is malformed.
  const auto reject = [&](const char* why) -> std::size_t {
    throw contract_error("malformed grid size '" + std::string(token) +
                         "' (" + why + "; want H, HxW or HxWxD with every "
                         "axis a positive integer)");
  };
  const auto axis = [&](std::string_view part,
                        const char* what) -> std::size_t {
    std::size_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(part.data(), part.data() + part.size(), value);
    if (ec != std::errc{} || ptr != part.data() + part.size())
      return reject(what);
    if (value == 0) return reject("0 is not a valid axis extent");
    return value;
  };
  const std::size_t x1 = token.find('x');
  if (x1 == std::string_view::npos) {
    const std::size_t n = axis(token, "not an integer");
    return GridDim{n, n};
  }
  const std::size_t x2 = token.find('x', x1 + 1);
  const std::size_t h = axis(token.substr(0, x1), "bad height");
  if (x2 == std::string_view::npos)
    return GridDim{h, axis(token.substr(x1 + 1), "bad width")};
  if (token.find('x', x2 + 1) != std::string_view::npos)
    reject("too many axes");
  return GridDim{h, axis(token.substr(x1 + 1, x2 - x1 - 1), "bad width"),
                 axis(token.substr(x2 + 1), "bad depth")};
}

}  // namespace smache::sweep

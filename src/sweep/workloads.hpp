// Named workload registry: the catalogue of stencil shapes, boundary
// families, input-grid generators, kernels and DRAM models a sweep can draw
// from BY NAME. The paper's contribution is handling *arbitrary* boundaries
// and stencils; this registry is where "arbitrary" becomes concrete — a new
// scenario family is one entry here (name + factory + one-line summary),
// not a new hand-written driver binary.
//
// Everything is deterministic: seeded families (random stencils, random
// input grids) use the repo's fixed-algorithm Rng, so a (name, seed) pair
// produces bit-identical workloads on every platform and thread.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/word.hpp"
#include "grid/boundary.hpp"
#include "grid/grid.hpp"
#include "grid/stencil.hpp"
#include "mem/dram_config.hpp"
#include "rtl/kernel.hpp"

namespace smache::sweep {

/// One registered stencil family. `make(seed)` builds the shape; only the
/// seeded (random-K) families read the seed.
struct StencilFamily {
  std::string name;
  std::string summary;
  bool seeded = false;  // shape depends on the scenario seed
  grid::StencilShape (*make)(std::uint64_t seed);
};

/// One registered boundary family — a named per-axis combination with
/// documented semantics (rows = top/bottom edges, cols = left/right).
struct BoundaryFamily {
  std::string name;
  std::string summary;
  grid::BoundarySpec spec;
};

/// One registered input-grid generator. All generators are seeded; pattern
/// families fold the seed into offsets/values so every scenario gets a
/// distinct but reproducible grid. `fields` is the cell layout the
/// generator produces (words per cell); SweepSpec validation rejects
/// pairing a generator with a kernel of a different field count. Every
/// generator is depth-aware (3D grids); depth == 1 reproduces the 2D
/// grid and its Rng draw sequence byte-identically.
struct InputFamily {
  std::string name;
  std::string summary;
  grid::Grid<word_t> (*make)(std::size_t height, std::size_t width,
                             std::size_t depth, std::uint64_t seed);
  std::size_t fields = 1;
};

/// One registered computation kernel. `needs_moore9` marks kernels whose
/// weight layout assumes the Moore-ordered 9-tuple (the image filters);
/// SweepSpec validation rejects pairing them with any other shape.
struct KernelFamily {
  std::string name;
  std::string summary;
  bool needs_moore9 = false;
  rtl::KernelSpec spec;
};

/// One registered DRAM timing model.
struct DramFamily {
  std::string name;
  std::string summary;
  mem::DramConfig config;
};

// ---- catalogues (stable registration order, used by docs and --list) ----
const std::vector<StencilFamily>& stencil_catalogue();
const std::vector<BoundaryFamily>& boundary_catalogue();
const std::vector<InputFamily>& input_catalogue();
const std::vector<KernelFamily>& kernel_catalogue();
const std::vector<DramFamily>& dram_catalogue();

// ---- name -> instance resolution; throws contract_error on unknown ----
const StencilFamily& find_stencil(std::string_view name);
const BoundaryFamily& find_boundary(std::string_view name);
const InputFamily& find_input(std::string_view name);
const KernelFamily& find_kernel(std::string_view name);
const DramFamily& find_dram(std::string_view name);

grid::StencilShape make_stencil(std::string_view name,
                                std::uint64_t seed = 0);
grid::BoundarySpec make_boundary(std::string_view name);
grid::Grid<word_t> make_input(std::string_view name, std::size_t height,
                              std::size_t width, std::size_t depth,
                              std::uint64_t seed);
rtl::KernelSpec make_kernel(std::string_view name);
mem::DramConfig make_dram(std::string_view name);

}  // namespace smache::sweep

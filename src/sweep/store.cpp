#include "sweep/store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <type_traits>

#include "common/log.hpp"

namespace smache::sweep {

namespace fs = std::filesystem;

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
/// Upper bound on one record's payload: a record is a label + an error
/// string + ~30 scalars, so anything near this is corruption, not data.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

std::uint64_t fnv_bytes(std::uint64_t h, const void* data,
                        std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

// ---- fixed binary encoding (host byte order — a store directory is a
// per-machine artifact, like the build tree it is keyed to) ----

template <typename T>
void put_scalar(std::string& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  out.append(bytes, sizeof(T));
}

void put_string(std::string& out, std::string_view s) {
  put_scalar(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

/// Bounds-checked sequential reader over one payload; every underflow is a
/// store_io_error (the caller treats the record as corrupt).
class Reader {
 public:
  explicit Reader(std::string_view s) : s_(s) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    need(sizeof(T));
    T v;
    std::memcpy(&v, s_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string get_string() {
    const auto n = get<std::uint32_t>();
    need(n);
    std::string out(s_.substr(pos_, n));
    pos_ += n;
    return out;
  }

  bool exhausted() const noexcept { return pos_ == s_.size(); }

 private:
  void need(std::size_t n) const {
    if (s_.size() - pos_ < n)
      throw store_io_error("store record payload truncated");
  }
  std::string_view s_;
  std::size_t pos_ = 0;
};

[[noreturn]] void io_fail(const std::string& what, const std::string& path,
                          const std::error_code& ec) {
  throw store_io_error("result store: cannot " + what + " '" + path +
                       "': " + (ec ? ec.message() : "unknown error"));
}

}  // namespace

// ---- FileIo ---------------------------------------------------------------

void FileIo::create_directories(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) io_fail("create directory", dir, ec);
  // create_directories succeeds silently on an existing path even when it
  // is a file; a store rooted at a non-directory must fail loudly instead.
  const bool is_dir = fs::is_directory(dir, ec);
  if (ec || !is_dir)
    throw store_io_error("result store: '" + dir +
                         "' exists and is not a directory");
}

bool FileIo::exists(const std::string& path) {
  std::error_code ec;
  const bool found = fs::exists(path, ec);
  return !ec && found;
}

std::vector<std::string> FileIo::list_files(const std::string& dir,
                                            std::string_view suffix) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) io_fail("list directory", dir, ec);
  std::vector<std::string> out;
  for (const auto& entry : it) {
    std::error_code tec;
    if (!entry.is_regular_file(tec) || tec) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() >= suffix.size() &&
        std::string_view(name).substr(name.size() - suffix.size()) == suffix)
      out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string FileIo::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    io_fail("read", path,
            std::make_error_code(std::errc::no_such_file_or_directory));
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  if (in.bad()) io_fail("read", path, std::make_error_code(std::errc::io_error));
  return out;
}

void FileIo::append_file(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out)
    io_fail("open for append", path,
            std::make_error_code(std::errc::permission_denied));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) io_fail("append to", path, std::make_error_code(std::errc::io_error));
}

void FileIo::write_file_atomic(const std::string& path,
                               std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      io_fail("write", tmp,
              std::make_error_code(std::errc::permission_denied));
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) io_fail("write", tmp, std::make_error_code(std::errc::io_error));
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) io_fail("rename into place", path, ec);
}

void FileIo::remove_file(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) io_fail("remove", path, ec);
}

FileIo& real_file_io() {
  static FileIo io;
  return io;
}

// ---- encoding -------------------------------------------------------------

bool operator==(const StoredResult& a, const StoredResult& b) {
  return a.key == b.key && a.label == b.label && a.ok == b.ok &&
         a.error == b.error && a.cycles == b.cycles &&
         a.warmup_cycles == b.warmup_cycles &&
         a.dram.read_requests == b.dram.read_requests &&
         a.dram.words_read == b.dram.words_read &&
         a.dram.words_written == b.dram.words_written &&
         a.dram.row_hits == b.dram.row_hits &&
         a.dram.row_misses == b.dram.row_misses &&
         a.dram.injected_stall_cycles == b.dram.injected_stall_cycles &&
         a.dram.injected_delay_cycles == b.dram.injected_delay_cycles &&
         a.dram.read_busy_cycles == b.dram.read_busy_cycles &&
         a.output_hash == b.output_hash &&
         a.reference_checked == b.reference_checked &&
         a.reference_match == b.reference_match &&
         a.r_total == b.r_total && a.b_total == b.b_total &&
         a.r_static == b.r_static && a.b_static == b.b_static &&
         a.r_stream == b.r_stream && a.b_stream == b.b_stream &&
         a.m20k_blocks == b.m20k_blocks && a.fmax_mhz == b.fmax_mhz &&
         a.ops == b.ops && a.exec_time_us == b.exec_time_us &&
         a.mops == b.mops;
}

std::string ResultStore::encode(const StoredResult& r) {
  std::string out;
  out.reserve(128 + r.label.size() + r.error.size());
  put_scalar(out, r.key);
  put_string(out, r.label);
  put_scalar(out, static_cast<std::uint8_t>(r.ok));
  put_string(out, r.error);
  put_scalar(out, r.cycles);
  put_scalar(out, r.warmup_cycles);
  put_scalar(out, r.dram.read_requests);
  put_scalar(out, r.dram.words_read);
  put_scalar(out, r.dram.words_written);
  put_scalar(out, r.dram.row_hits);
  put_scalar(out, r.dram.row_misses);
  put_scalar(out, r.dram.injected_stall_cycles);
  put_scalar(out, r.dram.injected_delay_cycles);
  put_scalar(out, r.dram.read_busy_cycles);
  put_scalar(out, r.output_hash);
  put_scalar(out, static_cast<std::uint8_t>(r.reference_checked));
  put_scalar(out, static_cast<std::uint8_t>(r.reference_match));
  put_scalar(out, r.r_total);
  put_scalar(out, r.b_total);
  put_scalar(out, r.r_static);
  put_scalar(out, r.b_static);
  put_scalar(out, r.r_stream);
  put_scalar(out, r.b_stream);
  put_scalar(out, r.m20k_blocks);
  put_scalar(out, r.fmax_mhz);
  put_scalar(out, r.ops);
  put_scalar(out, r.exec_time_us);
  put_scalar(out, r.mops);
  return out;
}

StoredResult ResultStore::decode(std::string_view payload) {
  Reader in(payload);
  StoredResult r;
  r.key = in.get<std::uint64_t>();
  r.label = in.get_string();
  r.ok = in.get<std::uint8_t>() != 0;
  r.error = in.get_string();
  r.cycles = in.get<std::uint64_t>();
  r.warmup_cycles = in.get<std::uint64_t>();
  r.dram.read_requests = in.get<std::uint64_t>();
  r.dram.words_read = in.get<std::uint64_t>();
  r.dram.words_written = in.get<std::uint64_t>();
  r.dram.row_hits = in.get<std::uint64_t>();
  r.dram.row_misses = in.get<std::uint64_t>();
  r.dram.injected_stall_cycles = in.get<std::uint64_t>();
  r.dram.injected_delay_cycles = in.get<std::uint64_t>();
  r.dram.read_busy_cycles = in.get<std::uint64_t>();
  r.output_hash = in.get<std::uint64_t>();
  r.reference_checked = in.get<std::uint8_t>() != 0;
  r.reference_match = in.get<std::uint8_t>() != 0;
  r.r_total = in.get<std::uint64_t>();
  r.b_total = in.get<std::uint64_t>();
  r.r_static = in.get<std::uint64_t>();
  r.b_static = in.get<std::uint64_t>();
  r.r_stream = in.get<std::uint64_t>();
  r.b_stream = in.get<std::uint64_t>();
  r.m20k_blocks = in.get<std::uint64_t>();
  r.fmax_mhz = in.get<double>();
  r.ops = in.get<std::uint64_t>();
  r.exec_time_us = in.get<double>();
  r.mops = in.get<double>();
  if (!in.exhausted())
    throw store_io_error("store record payload has trailing bytes");
  return r;
}

std::string ResultStore::frame(const StoredResult& record) {
  const std::string payload = encode(record);
  std::string out;
  out.reserve(payload.size() + 12);
  put_scalar(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
  put_scalar(out, fnv_bytes(kFnvOffset, payload.data(), payload.size()));
  return out;
}

std::uint64_t ResultStore::scenario_key(const Scenario& scenario,
                                        bool verify_reference) {
  std::uint64_t h = kFnvOffset;
  const std::uint32_t version = kFormatVersion;
  h = fnv_bytes(h, &version, sizeof version);
  h = fnv_bytes(h, scenario.label.data(), scenario.label.size());
  const char sep = '\0';
  h = fnv_bytes(h, &sep, 1);
  h = fnv_bytes(h, &scenario.seed, sizeof scenario.seed);
  h = fnv_bytes(h, &scenario.engine.max_cycles,
                sizeof scenario.engine.max_cycles);
  const std::uint8_t verify = verify_reference ? 1 : 0;
  h = fnv_bytes(h, &verify, 1);
  // Cell layout, folded only for F > 1: the kernel name inside the label
  // already separates layouts, but an explicit fold keeps the key honest if
  // a future kernel family ever parameterises its field count — while every
  // single-field key (all pre-multi-field store segments) stays identical.
  if (scenario.problem.kernel.fields() > 1) {
    const std::uint64_t fields = scenario.problem.kernel.fields();
    h = fnv_bytes(h, &fields, sizeof fields);
  }
  // Slice axis, same contract: the label's xD grid segment already
  // separates 3D scenarios, the explicit fold is belt-and-braces — and
  // folding only for D > 1 keeps every 2D key (all pre-3D store segments)
  // byte-identical.
  if (scenario.problem.depth > 1) {
    const std::uint64_t slices = scenario.problem.depth;
    h = fnv_bytes(h, &slices, sizeof slices);
  }
  return h;
}

// ---- ResultStore ----------------------------------------------------------

ResultStore::ResultStore(std::string dir, StoreOptions options)
    : dir_(std::move(dir)),
      options_(options),
      io_(options.io != nullptr ? options.io : &real_file_io()) {
  io().create_directories(dir_);
  // A .tmp file is a rotation/compaction the crash interrupted before its
  // atomic rename: never observed by readers, safe to discard.
  for (const std::string& tmp : io().list_files(dir_, ".tmp"))
    io().remove_file(tmp);
  for (const std::string& path : io().list_files(dir_, ".smr")) {
    load_segment(path);
    segment_files_.push_back(path);
    // Segment numbering continues after the highest existing index; a
    // foreign filename just doesn't advance it.
    const std::string name = fs::path(path).filename().string();
    if (name.size() > 8 && name.compare(0, 4, "seg-") == 0) {
      std::uint64_t idx = 0;
      bool digits = false;
      for (std::size_t i = 4; i < name.size() - 4; ++i) {
        if (name[i] < '0' || name[i] > '9') {
          digits = false;
          break;
        }
        idx = idx * 10 + static_cast<std::uint64_t>(name[i] - '0');
        digits = true;
      }
      if (digits && idx >= next_segment_) next_segment_ = idx + 1;
    }
  }
}

std::string ResultStore::segment_path(std::uint64_t index) const {
  char name[32];
  std::snprintf(name, sizeof name, "seg-%06llu.smr",
                static_cast<unsigned long long>(index));
  return dir_ + "/" + name;
}

void ResultStore::load_segment(const std::string& path) {
  const std::string data = io().read_file(path);
  const std::size_t header = 8 + sizeof(std::uint32_t);
  std::uint32_t version = 0;
  if (data.size() >= header) std::memcpy(&version, data.data() + 8, 4);
  if (data.size() < header || std::memcmp(data.data(), kMagic, 8) != 0 ||
      version != kFormatVersion) {
    ++dropped_;
    Log::warn("result store: ignoring segment with foreign header: " + path);
    return;
  }
  std::size_t pos = header;
  std::size_t loaded = 0;
  while (pos < data.size()) {
    // Frame: u32 length, payload, u64 checksum. Anything that does not
    // parse cleanly poisons the REST of this segment: after a corrupt
    // record the framing itself is untrustworthy.
    std::uint32_t len = 0;
    if (data.size() - pos < sizeof len) break;  // torn length prefix
    std::memcpy(&len, data.data() + pos, sizeof len);
    if (len > kMaxPayloadBytes ||
        data.size() - pos - sizeof len < len + sizeof(std::uint64_t))
      break;  // implausible length or torn payload/checksum
    const std::string_view payload(data.data() + pos + sizeof len, len);
    std::uint64_t checksum = 0;
    std::memcpy(&checksum, data.data() + pos + sizeof len + len,
                sizeof checksum);
    if (fnv_bytes(kFnvOffset, payload.data(), payload.size()) != checksum)
      break;
    StoredResult record;
    try {
      record = decode(payload);
    } catch (const store_io_error&) {
      break;
    }
    index_[record.key] = std::move(record);  // last writer wins
    ++loaded;
    pos += sizeof len + len + sizeof checksum;
  }
  if (pos < data.size()) {
    ++dropped_;
    Log::warn("result store: dropped torn/corrupt tail of " + path + " (" +
              std::to_string(data.size() - pos) + " bytes after " +
              std::to_string(loaded) +
              " intact records) — affected scenarios will re-execute");
  }
}

std::size_t ResultStore::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

std::uint64_t ResultStore::dropped_records() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

bool ResultStore::contains(std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return index_.count(key) != 0;
}

bool ResultStore::find(std::uint64_t key, StoredResult* out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  if (out != nullptr) *out = it->second;
  return true;
}

StoreStats ResultStore::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  StoreStats s = stats_;
  s.dropped = dropped_;
  return s;
}

void ResultStore::note_retry() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.retries;
}

void ResultStore::rotate_locked() {
  const std::string path = segment_path(next_segment_++);
  std::string header(kMagic, 8);
  put_scalar(header, kFormatVersion);
  io().write_file_atomic(path, header);
  segment_files_.push_back(path);
  active_path_ = path;
  active_bytes_ = header.size();
}

void ResultStore::put(const StoredResult& record) {
  const std::string bytes = frame(record);
  const std::lock_guard<std::mutex> lock(mu_);
  if (active_path_.empty() || active_bytes_ >= options_.max_segment_bytes)
    rotate_locked();
  try {
    io().append_file(active_path_, bytes);
  } catch (...) {
    // The failed append may have left a torn tail; abandon this segment so
    // a retry starts a fresh one instead of appending after garbage (which
    // recovery would rightly refuse to read past).
    active_path_.clear();
    throw;
  }
  active_bytes_ += bytes.size();
  ++stats_.appends;
  index_[record.key] = record;
}

void ResultStore::compact() {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string buffer(kMagic, 8);
  put_scalar(buffer, kFormatVersion);
  for (const auto& [key, record] : index_) {
    (void)key;
    buffer += frame(record);
  }
  const std::string path = segment_path(next_segment_++);
  io().write_file_atomic(path, buffer);
  for (const std::string& old : segment_files_) io().remove_file(old);
  segment_files_ = {path};
  // The compacted segment is sealed; the next put() rotates a new one.
  active_path_.clear();
  active_bytes_ = 0;
}

}  // namespace smache::sweep

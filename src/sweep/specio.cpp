#include "sweep/specio.hpp"

#include <fstream>
#include <set>
#include <sstream>

#include "common/assert.hpp"

namespace smache::sweep {

namespace {

const char* impl_token(model::StreamImpl impl) noexcept {
  return impl == model::StreamImpl::RegisterOnly ? "reg" : "hybrid";
}

/// Registry names and mode/arch/impl tokens are plain identifiers, but the
/// emitter still guards its output: quote and backslash are escaped, and a
/// control character (which json_escape-style encoding could hide inside
/// an "exact round-trip" file) is rejected outright.
std::string quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    SMACHE_REQUIRE_MSG(static_cast<unsigned char>(c) >= 0x20,
                       "control character in spec token");
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

template <typename T, typename ToToken>
std::string string_array(const std::vector<T>& items, ToToken to_token) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ", ";
    out += quote(to_token(items[i]));
  }
  out += ']';
  return out;
}

std::string count_array(const std::vector<std::size_t>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(items[i]);
  }
  out += ']';
  return out;
}

/// Recursive-descent parser over the fixed spec schema. Tracks position
/// for error messages and refuses everything the schema does not name.
class SpecParser {
 public:
  explicit SpecParser(std::string_view src) : src_(src) {}

  SweepSpec parse() {
    SweepSpec spec;
    skip_ws();
    expect('{', "spec object");
    skip_ws();
    if (!consume('}')) {
      for (;;) {
        const std::string key = parse_string();
        SMACHE_REQUIRE_MSG(seen_.insert(key).second,
                           err("duplicate key '" + key + "'"));
        skip_ws();
        expect(':', "':' after key '" + key + "'");
        parse_value_for(key, spec);
        skip_ws();
        if (consume(',')) {
          skip_ws();
          continue;
        }
        expect('}', "',' or '}' after value of '" + key + "'");
        break;
      }
    }
    skip_ws();
    SMACHE_REQUIRE_MSG(pos_ == src_.size(),
                       err("trailing garbage after the spec object"));
    return spec;
  }

 private:
  std::string err(const std::string& why) const {
    return "malformed sweep spec at byte " + std::to_string(pos_) + ": " +
           why;
  }

  void skip_ws() {
    while (pos_ < src_.size() &&
           (src_[pos_] == ' ' || src_[pos_] == '\t' || src_[pos_] == '\n' ||
            src_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < src_.size() && src_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c, const std::string& what) {
    SMACHE_REQUIRE_MSG(consume(c), err("expected " + what));
  }

  std::string parse_string() {
    skip_ws();
    expect('"', "'\"' opening a string");
    std::string out;
    for (;;) {
      SMACHE_REQUIRE_MSG(pos_ < src_.size(), err("unterminated string"));
      const char c = src_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        SMACHE_REQUIRE_MSG(pos_ < src_.size(), err("unterminated escape"));
        const char e = src_[pos_++];
        SMACHE_REQUIRE_MSG(e == '"' || e == '\\',
                           err(std::string("unsupported escape '\\") + e +
                               "' (only \\\" and \\\\)"));
        out += e;
      } else {
        SMACHE_REQUIRE_MSG(static_cast<unsigned char>(c) >= 0x20,
                           err("control character in string"));
        out += c;
      }
    }
  }

  /// A bare decimal digit run — the only number form the schema uses (no
  /// signs, floats or exponents; the parse_* family rejects the rest).
  std::string parse_number_token() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < src_.size() && src_[pos_] >= '0' && src_[pos_] <= '9')
      ++pos_;
    SMACHE_REQUIRE_MSG(pos_ > start, err("expected an unsigned integer"));
    return std::string(src_.substr(start, pos_ - start));
  }

  template <typename Item>
  std::vector<Item> parse_array(Item (SpecParser::*element)()) {
    skip_ws();
    expect('[', "'[' opening an array");
    std::vector<Item> out;
    skip_ws();
    if (consume(']')) return out;
    for (;;) {
      out.push_back((this->*element)());
      skip_ws();
      if (consume(',')) continue;
      expect(']', "',' or ']' in array");
      return out;
    }
  }

  void parse_value_for(const std::string& key, SweepSpec& spec) {
    const auto strings = [this] {
      return parse_array<std::string>(&SpecParser::parse_string);
    };
    const auto counts = [this](const char* what) {
      std::vector<std::size_t> out;
      for (const std::string& tok :
           parse_array<std::string>(&SpecParser::parse_number_token))
        out.push_back(parse_count(tok, what));
      return out;
    };
    if (key == "smache_sweep_spec") {
      SMACHE_REQUIRE_MSG(parse_number_token() == "1",
                         err("unsupported spec version (want 1)"));
    } else if (key == "mode") {
      spec.mode = parse_mode(parse_string());
    } else if (key == "archs") {
      spec.archs.clear();
      for (const std::string& tok : strings())
        spec.archs.push_back(parse_arch(tok));
    } else if (key == "impls") {
      spec.impls.clear();
      for (const std::string& tok : strings())
        spec.impls.push_back(parse_impl(tok));
    } else if (key == "thresholds") {
      spec.thresholds = counts("threshold");
    } else if (key == "grids") {
      spec.grids.clear();
      for (const std::string& tok : strings())
        spec.grids.push_back(parse_grid(tok));
    } else if (key == "drams") {
      spec.drams = strings();
    } else if (key == "steps") {
      spec.steps = counts("step count");
    } else if (key == "depths") {
      spec.depths = counts("cascade depth");
    } else if (key == "tiles") {
      spec.tiles.clear();
      for (const std::string& tok : strings())
        spec.tiles.push_back(parse_grid(tok));
    } else if (key == "stencils") {
      spec.stencils = strings();
    } else if (key == "boundaries") {
      spec.boundaries = strings();
    } else if (key == "kernels") {
      spec.kernels = strings();
    } else if (key == "inputs") {
      spec.inputs = strings();
    } else if (key == "base_seed") {
      spec.base_seed = parse_u64(parse_number_token(), "base_seed");
    } else if (key == "max_cycles") {
      spec.max_cycles = parse_u64(parse_number_token(), "max_cycles");
      SMACHE_REQUIRE_MSG(spec.max_cycles >= 1,
                         err("max_cycles must be >= 1"));
    } else if (key == "store") {
      spec.store_dir = parse_string();
      SMACHE_REQUIRE_MSG(!spec.store_dir.empty(),
                         err("'store' must name a directory (omit the key "
                             "for no store)"));
    } else {
      throw contract_error(
          err("unknown key '" + key +
              "' (known: smache_sweep_spec, mode, archs, impls, "
              "thresholds, grids, drams, steps, depths, tiles, stencils, "
              "boundaries, kernels, inputs, base_seed, max_cycles, "
              "store)"));
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::set<std::string> seen_;
};

}  // namespace

std::string emit_spec_json(const SweepSpec& spec) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"smache_sweep_spec\": 1,\n";
  out << "  \"mode\": " << quote(to_string(spec.mode)) << ",\n";
  out << "  \"archs\": "
      << string_array(spec.archs,
                      [](Architecture a) { return to_string(a); })
      << ",\n";
  out << "  \"impls\": "
      << string_array(spec.impls,
                      [](model::StreamImpl i) { return impl_token(i); })
      << ",\n";
  out << "  \"thresholds\": " << count_array(spec.thresholds) << ",\n";
  // Depth-1 grids/meshes emit the 2D HxW token, so every spec saved before
  // the slice axis existed round-trips byte-exactly; parse_grid accepts
  // both forms.
  const auto grid_token = [](const GridDim& g) {
    std::string s = std::to_string(g.height) + 'x' + std::to_string(g.width);
    if (g.depth > 1) s += 'x' + std::to_string(g.depth);
    return s;
  };
  out << "  \"grids\": " << string_array(spec.grids, grid_token) << ",\n";
  out << "  \"drams\": "
      << string_array(spec.drams, [](const std::string& s) { return s; })
      << ",\n";
  out << "  \"steps\": " << count_array(spec.steps) << ",\n";
  out << "  \"depths\": " << count_array(spec.depths) << ",\n";
  out << "  \"tiles\": " << string_array(spec.tiles, grid_token) << ",\n";
  out << "  \"stencils\": "
      << string_array(spec.stencils, [](const std::string& s) { return s; })
      << ",\n";
  out << "  \"boundaries\": "
      << string_array(spec.boundaries,
                      [](const std::string& s) { return s; })
      << ",\n";
  out << "  \"kernels\": "
      << string_array(spec.kernels, [](const std::string& s) { return s; })
      << ",\n";
  out << "  \"inputs\": "
      << string_array(spec.inputs, [](const std::string& s) { return s; })
      << ",\n";
  out << "  \"base_seed\": " << spec.base_seed << ",\n";
  out << "  \"max_cycles\": " << spec.max_cycles;
  // Emitted only when set, so store-less specs round-trip byte-exactly
  // with files saved before the key existed.
  if (!spec.store_dir.empty())
    out << ",\n  \"store\": " << quote(spec.store_dir);
  out << "\n}\n";
  return out.str();
}

SweepSpec parse_spec_json(std::string_view json) {
  return SpecParser(json).parse();
}

SweepSpec load_spec_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SMACHE_REQUIRE_MSG(static_cast<bool>(in),
                     "cannot read sweep spec file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  SMACHE_REQUIRE_MSG(!in.bad(),
                     "error while reading sweep spec file '" + path + "'");
  try {
    return parse_spec_json(buf.str());
  } catch (const contract_error& e) {
    throw contract_error(path + ": " + e.what());
  }
}

void save_spec_file(const SweepSpec& spec, const std::string& path) {
  const std::string json = emit_spec_json(spec);
  std::ofstream out(path, std::ios::binary);
  SMACHE_REQUIRE_MSG(static_cast<bool>(out),
                     "cannot write sweep spec file '" + path + "'");
  out << json;
  out.flush();
  SMACHE_REQUIRE_MSG(static_cast<bool>(out),
                     "error while writing sweep spec file '" + path + "'");
}

}  // namespace smache::sweep

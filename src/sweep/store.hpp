// ResultStore — a persistent, content-addressed store of finished scenario
// outcomes, the durability layer under crash-safe sweeps (and the
// memoization cache the sweep-as-a-service direction needs): re-running any
// spec — including a widened one — skips every scenario whose key is
// already present and executes only the delta.
//
// Keying. A record is addressed by scenario_key(): an FNV-1a fold of the
// scenario's canonical label (which encodes mode, architecture, stream
// impl, threshold, grid, DRAM family, steps, depth, tile mesh, stencil,
// boundary, kernel and input family), its workload-derived seed, the
// engine's max_cycles watchdog, and whether golden-reference verification
// was on — everything that determines the deterministic result, and
// nothing that does not (thread counts, wall clocks). The key deliberately
// does NOT include the code version: a store directory is tied to a build
// of this repo, and kFormatVersion must be bumped whenever result
// semantics change (stale stores are then ignored wholesale, never
// half-trusted).
//
// Durability model. The store is an append-only journal of length-prefixed
// records, each carrying its own FNV-1a checksum, split across numbered
// segment files. Segments are created empty (header only) via atomic
// tmp+rename, then appended to with an fflush after every record — so a
// SIGKILL can lose at most the in-flight tail record, never a committed
// one, and a half-written tail is detected by its length/checksum and
// dropped at the next open. A checksum failure ANYWHERE in a segment
// abandons the rest of that segment (framing after a corrupt record is
// untrustworthy) but not other segments; every dropped record is counted
// and logged, and the affected scenarios simply re-execute. Within and
// across segments, the last record for a key wins, so re-putting a key is
// an ordinary append. compact() rewrites the live set into one fresh
// segment (atomic tmp+rename again) and deletes the old ones.
//
// All file IO goes through the FileIo seam so the fault-injection harness
// (sweep/faults.hpp) can script torn writes, short reads and bit flips at
// exact offsets; the default implementation uses std::filesystem's
// error_code overloads throughout — a read-only or vanished directory
// surfaces as store_io_error with a descriptive message, never as a
// filesystem exception escaping from deep inside the library.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "mem/dram_config.hpp"
#include "sweep/spec.hpp"

namespace smache::sweep {

/// A store/journal IO failure. Transient by classification: callers may
/// retry (the executor does, with bounded backoff) — in the worst case the
/// sweep continues with that result unpersisted, which only costs a
/// re-execution on resume.
class store_io_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// File-IO seam used by ResultStore. The default implementation
/// (real_file_io()) wraps std::filesystem and stdio with error_code
/// overloads; FaultyFileIo (sweep/faults.hpp) shims it to inject torn
/// writes, short reads, bit flips and transient append failures. Every
/// method throws store_io_error on failure.
class FileIo {
 public:
  virtual ~FileIo() = default;
  /// mkdir -p with error_code; rejects an existing non-directory path.
  virtual void create_directories(const std::string& dir);
  virtual bool exists(const std::string& path);
  /// Regular files directly inside `dir` whose names end with `suffix`,
  /// lexicographically sorted (segment order). Missing dir -> error.
  virtual std::vector<std::string> list_files(const std::string& dir,
                                              std::string_view suffix);
  /// Whole-file read (binary).
  virtual std::string read_file(const std::string& path);
  /// Append `bytes` to `path` (creating it if missing) and flush, so a
  /// process kill after return cannot lose the record to libc buffering.
  virtual void append_file(const std::string& path, std::string_view bytes);
  /// Write `bytes` to `path` atomically: write `path` + ".tmp", flush,
  /// rename over `path`. Readers never observe a half-written file.
  virtual void write_file_atomic(const std::string& path,
                                 std::string_view bytes);
  virtual void remove_file(const std::string& path);
};

/// Process-wide default FileIo (plain filesystem access).
FileIo& real_file_io();

struct StoreOptions {
  /// Rotate the active segment once it exceeds this many bytes. Small
  /// values are test knobs; the default keeps segment counts low while
  /// bounding how much one corrupt segment can invalidate.
  std::uint64_t max_segment_bytes = 8ull << 20;
  /// IO implementation; nullptr = real_file_io().
  FileIo* io = nullptr;
};

/// Structured lifetime counters for one ResultStore (telemetry only —
/// never part of digests or stored records).
struct StoreStats {
  std::uint64_t hits = 0;     // find() served a cached record
  std::uint64_t misses = 0;   // find() had no record for the key
  std::uint64_t appends = 0;  // records journaled by put()
  std::uint64_t retries = 0;  // failed put attempts the caller retried
                              // (reported via note_retry)
  std::uint64_t dropped = 0;  // corrupt/torn records dropped at open
};

/// One persisted scenario outcome: exactly the deterministic result fields
/// that participate in SweepExecutor::digest and report emission, so a
/// store hit reconstructs a ScenarioResult that is byte-identical in every
/// report. Fields outside the reports (full buffer plan, output grid,
/// timing breakdown strings) are deliberately not persisted.
struct StoredResult {
  std::uint64_t key = 0;
  std::string label;  // diagnostics/compaction listings only — key decides
  bool ok = false;
  std::string error;
  std::uint64_t cycles = 0;
  std::uint64_t warmup_cycles = 0;
  mem::DramStats dram;
  std::uint64_t output_hash = 0;
  bool reference_checked = false;
  bool reference_match = false;
  std::uint64_t r_total = 0, b_total = 0;
  std::uint64_t r_static = 0, b_static = 0;
  std::uint64_t r_stream = 0, b_stream = 0;
  std::uint64_t m20k_blocks = 0;
  double fmax_mhz = 0.0;
  std::uint64_t ops = 0;
  double exec_time_us = 0.0;
  double mops = 0.0;

  friend bool operator==(const StoredResult&, const StoredResult&);
};

class ResultStore {
 public:
  /// Record/segment format version; bump on ANY semantic change to results
  /// or encoding. Segments with a different version are ignored (counted
  /// as dropped), so a stale store degrades to a cold one.
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Open (creating the directory if needed) and scan every segment.
  /// Corrupt or torn records are dropped, counted and logged — never
  /// trusted. Leftover .tmp files from a crashed rotation are removed.
  /// Throws store_io_error when the directory cannot be created or read.
  explicit ResultStore(std::string dir, StoreOptions options = {});

  const std::string& dir() const noexcept { return dir_; }

  std::size_t size() const;
  /// Records dropped during open() recovery (torn tails, checksum
  /// failures, foreign-version or unreadable segments' remainders).
  std::uint64_t dropped_records() const;
  /// Lifetime telemetry counters (hits/misses/appends/retries/dropped).
  StoreStats stats() const;
  /// Count one retried put() attempt — called by drivers whose retry loop
  /// wraps put(), so the store's own telemetry sees the failures too.
  void note_retry();

  bool contains(std::uint64_t key) const;
  /// Copy-out lookup (thread-safe against concurrent put()).
  bool find(std::uint64_t key, StoredResult* out) const;

  /// Append one record (journal first, then index). Thread-safe. Throws
  /// store_io_error on IO failure; the active segment is abandoned after a
  /// failed append, so a retry lands in a fresh segment rather than after
  /// a possibly-torn tail.
  void put(const StoredResult& record);

  /// Rewrite the live record set into one fresh segment (atomic
  /// tmp+rename) and delete every older segment. Record order inside the
  /// compacted segment is key order — deterministic for tests.
  void compact();

  /// The content address of a scenario's deterministic outcome (see the
  /// header comment for what participates and why).
  static std::uint64_t scenario_key(const Scenario& scenario,
                                    bool verify_reference);

  // -- encoding, exposed so tests can frame/corrupt records surgically --
  static std::string encode(const StoredResult& record);
  /// Throws store_io_error on malformed payloads.
  static StoredResult decode(std::string_view payload);
  /// Full on-disk framing: length prefix + payload + FNV-1a checksum.
  static std::string frame(const StoredResult& record);
  static constexpr char kMagic[9] = "SMRSTOR1";  // 8 bytes + NUL

 private:
  FileIo& io() const noexcept { return *io_; }
  std::string segment_path(std::uint64_t index) const;
  void load_segment(const std::string& path);
  /// Start a fresh active segment (header via atomic tmp+rename).
  void rotate_locked();

  std::string dir_;
  StoreOptions options_;
  FileIo* io_ = nullptr;

  mutable std::mutex mu_;
  mutable StoreStats stats_;  // hit/miss counted inside const find()
  std::map<std::uint64_t, StoredResult> index_;
  std::vector<std::string> segment_files_;  // loaded + created, for compact
  std::uint64_t next_segment_ = 1;
  std::string active_path_;  // empty until the first put() after open
  std::uint64_t active_bytes_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace smache::sweep

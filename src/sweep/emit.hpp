// Machine-readable sweep reports: JSON (same artifact family as the
// BENCH_<target>.json files under bench/results/) and CSV for downstream
// plotting. Emission is deterministic — field order is fixed and every
// number formats identically across runs — so "N-thread report equals
// serial report" is a byte-level comparison. Wall-clock timings are the
// one nondeterministic field; they are emitted only when
// EmitOptions::include_wall is set and are never part of digests.
#pragma once

#include <string>
#include <vector>

#include "sweep/executor.hpp"

namespace smache::sweep {

struct EmitOptions {
  /// Include per-scenario wall_ms (and the report-level wall summary).
  /// Leave off for byte-identical cross-thread-count comparisons.
  bool include_wall = false;
  /// Include the store provenance as an explicit store_hit column instead
  /// of the old "wall_ms == 0" convention. Like wall_ms, never part of
  /// digests: a warm (store-served) rerun and a cold run differ here by
  /// construction, so byte-compare reports must leave it off.
  bool include_store_hit = false;
  /// Include each scenario's metric snapshot (ExecutorOptions::metrics):
  /// a JSON object / CSV "path=value;..." column. The snapshots themselves
  /// are deterministic, but store-served scenarios carry none — so this
  /// column is never digested and byte-compare reports leave it off too.
  bool include_metrics = false;
  /// Report name stamped into the JSON header.
  std::string name = "smache-sweep";
};

/// Full JSON report: header + one object per scenario result.
std::string emit_json(const std::vector<ScenarioResult>& results,
                      const EmitOptions& options = {});

/// CSV with one row per scenario result (RFC-4180-style quoting).
std::string emit_csv(const std::vector<ScenarioResult>& results,
                     const EmitOptions& options = {});

/// Shortest decimal string that round-trips to exactly the same double
/// (strtod(fmt_double(v)) == v for every finite v) — committed sweep
/// reports lose no bits. Exposed so tests can property-check the claim.
std::string fmt_double(double v);

}  // namespace smache::sweep

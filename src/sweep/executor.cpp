#include "sweep/executor.hpp"

#include <chrono>
#include <cstring>
#include <exception>

#include "common/parallel.hpp"
#include "sweep/workloads.hpp"

namespace smache::sweep {

namespace {

/// Fold one value's bytes into an FNV-1a accumulator.
template <typename T>
void mix(std::uint64_t& h, const T& value) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  for (const unsigned char b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
}

void mix_str(std::uint64_t& h, std::string_view s) noexcept {
  mix(h, s.size());
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
}

void run_one(const Scenario& scenario, const ExecutorOptions& options,
             ScenarioResult& out) {
  out.scenario = scenario;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    const Engine engine(scenario.engine);
    if (scenario.mode == Mode::ElaborateOnly) {
      out.run = engine.elaborate_only(scenario.problem);
    } else {
      const grid::Grid<word_t> init =
          make_input(scenario.input, scenario.problem.height,
                     scenario.problem.width, scenario.seed);
      // Depth 1 is the per-instance SmacheTop/BaselineTop engine; depth > 1
      // fuses that many time steps per DRAM pass through CascadeTop; a
      // non-trivial tile mesh routes through run_tiled (which folds the
      // depth into each tile's sub-cascade). The reference run below is
      // depth- and tiling-independent (same problem.steps), so
      // verification holds across fused passes and tile meshes.
      if (scenario.tiles.height > 1 || scenario.tiles.width > 1) {
        TilingSpec tiling;
        tiling.tiles_r = scenario.tiles.height;
        tiling.tiles_c = scenario.tiles.width;
        tiling.threads = options.tile_threads;
        tiling.depth = scenario.depth;
        out.run = engine.run_tiled(scenario.problem, init, tiling);
      } else {
        out.run = scenario.depth > 1
                      ? engine.run_cascade(scenario.problem, init,
                                           scenario.depth)
                      : engine.run(scenario.problem, init);
      }
      out.output_hash = hash_grid(*out.run.output);
      if (options.verify_reference) {
        const grid::Grid<word_t> golden =
            reference_run(scenario.problem, init);
        out.reference_checked = true;
        out.reference_match = golden == *out.run.output;
      }
    }
    if (!options.keep_outputs) {
      out.run.output.reset();
      out.run.plan.reset();
    }
    out.ok = true;
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
}

}  // namespace

std::uint64_t hash_grid(const grid::Grid<word_t>& g) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  const auto fold = [&h](std::uint64_t v) noexcept {
    h ^= v;
    h *= 1099511628211ull;
  };
  // Shape first: a 2x8 and an 8x2 grid with the same word sequence must
  // not collide (the word fold alone cannot tell them apart).
  fold(g.height());
  fold(g.width());
  for (std::size_t i = 0; i < g.size(); ++i)
    fold(static_cast<std::uint64_t>(g[i]));
  return h;
}

std::vector<ScenarioResult> SweepExecutor::run(const SweepSpec& spec) const {
  spec.validate();
  return run(spec.expand());
}

std::vector<ScenarioResult> SweepExecutor::run(
    std::vector<Scenario> scenarios) const {
  std::vector<ScenarioResult> results(scenarios.size());
  parallel_for_index(scenarios.size(), options_.threads,
                     [&](std::size_t i) {
                       run_one(scenarios[i], options_, results[i]);
                     });
  return results;
}

std::uint64_t SweepExecutor::digest(
    const std::vector<ScenarioResult>& results) {
  std::uint64_t h = 1469598103934665603ull;
  mix(h, results.size());
  for (const auto& r : results) {
    mix_str(h, r.scenario.label);
    mix(h, r.scenario.seed);
    mix(h, r.scenario.depth);
    mix(h, r.scenario.tiles.height);
    mix(h, r.scenario.tiles.width);
    mix(h, r.ok);
    mix_str(h, r.error);
    mix(h, r.run.cycles);
    mix(h, r.run.warmup_cycles);
    mix(h, r.run.dram.read_requests);
    mix(h, r.run.dram.words_read);
    mix(h, r.run.dram.words_written);
    mix(h, r.run.dram.row_hits);
    mix(h, r.run.dram.row_misses);
    mix(h, r.run.dram.injected_stall_cycles);
    mix(h, r.run.dram.read_busy_cycles);
    mix(h, r.output_hash);
    mix(h, r.reference_checked);
    mix(h, r.reference_match);
    mix(h, r.run.resources.r_total);
    mix(h, r.run.resources.b_total);
    mix(h, r.run.resources.r_static);
    mix(h, r.run.resources.b_static);
    mix(h, r.run.resources.r_stream);
    mix(h, r.run.resources.b_stream);
    mix(h, r.run.resources.m20k_blocks);
    mix(h, r.run.timing.fmax_mhz);
    mix(h, r.run.ops);
    mix(h, r.run.exec_time_us);
    mix(h, r.run.mops);
  }
  return h;
}

}  // namespace smache::sweep

#include "sweep/executor.hpp"

#include <chrono>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "sweep/faults.hpp"
#include "sweep/store.hpp"
#include "sweep/workloads.hpp"

namespace smache::sweep {

namespace {

/// Fold one value's bytes into an FNV-1a accumulator.
template <typename T>
void mix(std::uint64_t& h, const T& value) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  for (const unsigned char b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
}

void mix_str(std::uint64_t& h, std::string_view s) noexcept {
  mix(h, s.size());
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
}

void run_one(const Scenario& scenario, const ExecutorOptions& options,
             ScenarioResult& out) {
  out.scenario = scenario;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    const Engine engine(scenario.engine);
    if (scenario.mode == Mode::ElaborateOnly) {
      out.run = engine.elaborate_only(scenario.problem);
    } else {
      const grid::Grid<word_t> init =
          make_input(scenario.input, scenario.problem.height,
                     scenario.problem.width, scenario.problem.depth,
                     scenario.seed);
      // Depth 1 is the per-instance SmacheTop/BaselineTop engine; depth > 1
      // fuses that many time steps per DRAM pass through CascadeTop; a
      // non-trivial tile mesh routes through run_tiled (which folds the
      // depth into each tile's sub-cascade). The reference run below is
      // depth- and tiling-independent (same problem.steps), so
      // verification holds across fused passes and tile meshes.
      if (scenario.tiles.height > 1 || scenario.tiles.width > 1 ||
          scenario.tiles.depth > 1) {
        TilingSpec tiling;
        tiling.tiles_r = scenario.tiles.height;
        tiling.tiles_c = scenario.tiles.width;
        tiling.tiles_s = scenario.tiles.depth;
        tiling.threads = options.tile_threads;
        tiling.depth = scenario.depth;
        out.run = engine.run_tiled(scenario.problem, init, tiling);
      } else {
        out.run = scenario.depth > 1
                      ? engine.run_cascade(scenario.problem, init,
                                           scenario.depth)
                      : engine.run(scenario.problem, init);
      }
      out.output_hash = hash_grid(*out.run.output);
      if (options.verify_reference) {
        const grid::Grid<word_t> golden =
            reference_run(scenario.problem, init);
        out.reference_checked = true;
        out.reference_match = golden == *out.run.output;
      }
    }
    if (!options.keep_outputs) {
      out.run.output.reset();
      out.run.plan.reset();
    }
    out.ok = true;
  } catch (const engine_timeout& e) {
    // Wall-clock watchdog trip: keep the partial counters (timed_out=true,
    // cycles/DRAM at abort) for triage — the caller must treat them as
    // nondeterministic and never persist this result.
    out.ok = false;
    out.error = e.what();
    out.run = e.partial;
    if (!options.keep_outputs) {
      out.run.output.reset();
      out.run.plan.reset();
    }
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
}

/// ScenarioResult -> store record: exactly the deterministic fields that
/// participate in digest() and report emission.
StoredResult to_stored(const ScenarioResult& r, std::uint64_t key) {
  StoredResult s;
  s.key = key;
  s.label = r.scenario.label;
  s.ok = r.ok;
  s.error = r.error;
  s.cycles = r.run.cycles;
  s.warmup_cycles = r.run.warmup_cycles;
  s.dram = r.run.dram;
  s.output_hash = r.output_hash;
  s.reference_checked = r.reference_checked;
  s.reference_match = r.reference_match;
  s.r_total = r.run.resources.r_total;
  s.b_total = r.run.resources.b_total;
  s.r_static = r.run.resources.r_static;
  s.b_static = r.run.resources.b_static;
  s.r_stream = r.run.resources.r_stream;
  s.b_stream = r.run.resources.b_stream;
  s.m20k_blocks = r.run.resources.m20k_blocks;
  s.fmax_mhz = r.run.timing.fmax_mhz;
  s.ops = r.run.ops;
  s.exec_time_us = r.run.exec_time_us;
  s.mops = r.run.mops;
  return s;
}

/// Store record -> ScenarioResult, byte-identical to the executed original
/// in every deterministic report field (wall_ms is 0 — it is never part of
/// reports — and from_store marks the provenance).
void from_stored(const Scenario& scenario, const StoredResult& s,
                 ScenarioResult& out) {
  out.scenario = scenario;
  out.ok = s.ok;
  out.error = s.error;
  out.run.arch = scenario.engine.arch;
  out.run.cycles = s.cycles;
  out.run.warmup_cycles = s.warmup_cycles;
  out.run.dram = s.dram;
  out.output_hash = s.output_hash;
  out.reference_checked = s.reference_checked;
  out.reference_match = s.reference_match;
  out.run.resources.r_total = s.r_total;
  out.run.resources.b_total = s.b_total;
  out.run.resources.r_static = s.r_static;
  out.run.resources.b_static = s.b_static;
  out.run.resources.r_stream = s.r_stream;
  out.run.resources.b_stream = s.b_stream;
  out.run.resources.m20k_blocks = s.m20k_blocks;
  out.run.timing.fmax_mhz = s.fmax_mhz;
  out.run.ops = s.ops;
  out.run.exec_time_us = s.exec_time_us;
  out.run.mops = s.mops;
  out.from_store = true;
  out.wall_ms = 0.0;
}

/// Persist one record with bounded exponential backoff. Exhaustion is
/// logged and swallowed: the in-memory result is intact, so failing to
/// persist must not fail the sweep.
void put_with_retry(ResultStore& store, const StoredResult& record,
                    std::size_t attempts, std::uint32_t backoff_ms) {
  if (attempts == 0) attempts = 1;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      store.put(record);
      return;
    } catch (const store_io_error& e) {
      if (attempt + 1 >= attempts) {
        Log::warn(std::string("result store: giving up on '") + record.label +
                  "' after " + std::to_string(attempts) +
                  " attempts: " + e.what() +
                  " (result kept in memory; it will re-execute on resume)");
        return;
      }
      store.note_retry();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<std::uint64_t>(backoff_ms)
                                    << attempt));
    }
  }
}

}  // namespace

std::uint64_t hash_grid(const grid::Grid<word_t>& g) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  const auto fold = [&h](std::uint64_t v) noexcept {
    h ^= v;
    h *= 1099511628211ull;
  };
  // Shape first: a 2x8 and an 8x2 grid with the same word sequence must
  // not collide (the word fold alone cannot tell them apart). The cell
  // layout and the slice axis fold the same way — an F=2 grid and an F=1
  // grid of doubled width carry identical word sequences, as do 8x8x2 and
  // 8x16x1 — but only for F > 1 / D > 1, so every single-field 2D hash
  // (committed reports, store records) is unchanged.
  fold(g.height());
  fold(g.width());
  if (g.depth() > 1) fold(g.depth());
  if (g.fields() > 1) fold(g.fields());
  for (std::size_t i = 0; i < g.size(); ++i)
    fold(static_cast<std::uint64_t>(g[i]));
  return h;
}

std::vector<ScenarioResult> SweepExecutor::run(const SweepSpec& spec) const {
  spec.validate();
  return run(spec.expand());
}

std::vector<ScenarioResult> SweepExecutor::run(
    std::vector<Scenario> scenarios) const {
  SMACHE_REQUIRE_MSG(
      options_.store == nullptr || !options_.keep_outputs,
      "ExecutorOptions::store and keep_outputs are mutually exclusive: a "
      "store hit cannot reconstruct an output grid");
  SMACHE_REQUIRE_MSG(
      options_.store == nullptr || options_.fault_plan == nullptr ||
          options_.fault_plan->empty(),
      "ExecutorOptions::store and fault_plan are mutually exclusive: the "
      "scenario key does not encode injected DRAM faults, so a faulted "
      "result must never be journaled under (or served from) the unfaulted "
      "scenario's address");
  std::vector<ScenarioResult> results(scenarios.size());

  // Store-hit prefill (serial: lookups are in-memory map reads; a serial
  // pass keeps the hit/miss partition and all recovery logging ordered).
  std::vector<std::size_t> pending;
  if (options_.store != nullptr) {
    pending.reserve(scenarios.size());
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const std::uint64_t key = ResultStore::scenario_key(
          scenarios[i], options_.verify_reference);
      StoredResult hit;
      if (options_.store->find(key, &hit))
        from_stored(scenarios[i], hit, results[i]);
      else
        pending.push_back(i);
    }
  } else {
    pending.resize(scenarios.size());
    for (std::size_t i = 0; i < scenarios.size(); ++i) pending[i] = i;
  }

  // Progress telemetry: the callback fires serialised under prog_mu; the
  // wall-derived fields (elapsed/eta) never feed back into results.
  SweepProgress prog;
  prog.total = scenarios.size();
  prog.store_hits = scenarios.size() - pending.size();
  prog.done = prog.store_hits;
  std::mutex prog_mu;
  const auto exec_t0 = std::chrono::steady_clock::now();
  if (options_.progress) options_.progress(prog);
  const auto note_progress = [&](const ScenarioResult& out) {
    if (!options_.progress) return;
    const std::lock_guard<std::mutex> lock(prog_mu);
    if (out.skipped) {
      ++prog.skipped;
    } else {
      ++prog.executed;
      if (!out.ok) ++prog.failed;
    }
    ++prog.done;
    prog.elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - exec_t0)
                          .count();
    prog.eta_ms = prog.executed > 0
                      ? prog.elapsed_ms / static_cast<double>(prog.executed) *
                            static_cast<double>(prog.total - prog.done)
                      : 0.0;
    options_.progress(prog);
  };

  parallel_for_index(pending.size(), options_.threads, [&](std::size_t j) {
    const std::size_t i = pending[j];
    ScenarioResult& out = results[i];
    if (options_.stop != nullptr &&
        options_.stop->load(std::memory_order_relaxed)) {
      out.scenario = scenarios[i];
      out.skipped = true;
      out.ok = false;
      out.error = "skipped: stop requested before execution";
      note_progress(out);
      return;
    }
    Scenario scenario = scenarios[i];
    if (options_.fault_plan != nullptr)
      options_.fault_plan->apply(scenario.label, &scenario.engine.dram);
    if (options_.wall_timeout_ms != 0)
      scenario.engine.wall_timeout_ms = options_.wall_timeout_ms;
    if (options_.metrics) scenario.engine.profile = true;
    // Trace export is per-simulator; a tiled scenario fans out over many,
    // so it gets no trace rather than a misleading partial one.
    if (options_.trace && scenario.tiles.height == 1 &&
        scenario.tiles.width == 1 && scenario.tiles.depth == 1)
      scenario.engine.trace = true;
    run_one(scenario, options_, out);
    note_progress(out);
    // Journal the finished result — deterministic failures included (they
    // are results too, and resume must reproduce them byte-for-byte).
    // Wall-timeout abandons are the one exclusion: their counters depend
    // on machine load, so caching one would poison every later report.
    if (options_.store != nullptr && !out.run.timed_out) {
      put_with_retry(*options_.store,
                     to_stored(out, ResultStore::scenario_key(
                                        scenarios[i],
                                        options_.verify_reference)),
                     options_.store_retry_attempts,
                     options_.store_retry_backoff_ms);
    }
  });
  return results;
}

std::uint64_t SweepExecutor::digest(
    const std::vector<ScenarioResult>& results) {
  std::uint64_t h = 1469598103934665603ull;
  mix(h, results.size());
  for (const auto& r : results) {
    mix_str(h, r.scenario.label);
    mix(h, r.scenario.seed);
    mix(h, r.scenario.depth);
    mix(h, r.scenario.tiles.height);
    mix(h, r.scenario.tiles.width);
    // Cell layout and slice axis: folded only for F > 1 / D > 1 so
    // single-field 2D digests (every sweep that existed before those axes)
    // are byte-identical.
    if (r.scenario.problem.kernel.fields() > 1)
      mix(h, r.scenario.problem.kernel.fields());
    if (r.scenario.problem.depth > 1) mix(h, r.scenario.problem.depth);
    if (r.scenario.tiles.depth > 1) mix(h, r.scenario.tiles.depth);
    mix(h, r.ok);
    mix_str(h, r.error);
    mix(h, r.run.cycles);
    mix(h, r.run.warmup_cycles);
    mix(h, r.run.dram.read_requests);
    mix(h, r.run.dram.words_read);
    mix(h, r.run.dram.words_written);
    mix(h, r.run.dram.row_hits);
    mix(h, r.run.dram.row_misses);
    mix(h, r.run.dram.injected_stall_cycles);
    mix(h, r.run.dram.injected_delay_cycles);
    mix(h, r.run.dram.read_busy_cycles);
    mix(h, r.run.timed_out);
    mix(h, r.output_hash);
    mix(h, r.reference_checked);
    mix(h, r.reference_match);
    mix(h, r.run.resources.r_total);
    mix(h, r.run.resources.b_total);
    mix(h, r.run.resources.r_static);
    mix(h, r.run.resources.b_static);
    mix(h, r.run.resources.r_stream);
    mix(h, r.run.resources.b_stream);
    mix(h, r.run.resources.m20k_blocks);
    mix(h, r.run.timing.fmax_mhz);
    mix(h, r.run.ops);
    mix(h, r.run.exec_time_us);
    mix(h, r.run.mops);
  }
  return h;
}

}  // namespace smache::sweep

// SweepExecutor — runs the scenarios of a SweepSpec on a worker pool, one
// independent Engine instance per scenario (the Engine shares no mutable
// state between instances, so scenarios parallelise perfectly). Results
// land in index-addressed slots: collation order is the spec's cartesian
// order regardless of which worker finished first, and a run with N
// threads is bit-identical to the serial run — digest() makes that claim
// checkable.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sweep/spec.hpp"

namespace smache::sweep {

class ResultStore;
struct FaultPlan;

/// Progress snapshot handed to ExecutorOptions::progress — once after the
/// store-hit prefill, then after every scenario finishes. Wall-clock
/// derived fields are diagnostics only and never enter reports.
struct SweepProgress {
  std::size_t done = 0;        // store_hits + executed + skipped
  std::size_t total = 0;
  std::size_t store_hits = 0;  // served from the result store, not executed
  std::size_t executed = 0;
  std::size_t failed = 0;      // executed with ok=false
  std::size_t skipped = 0;     // stop flag observed before execution
  double elapsed_ms = 0.0;     // since execution began (prefill excluded)
  /// Linear extrapolation over executed scenarios; 0 until the first one
  /// completes.
  double eta_ms = 0.0;
};

struct ExecutorOptions {
  /// Worker count; 0 = hardware_threads(), 1 = serial on the caller.
  std::size_t threads = 1;
  /// Worker count for the per-pass tile loop INSIDE a tiled scenario
  /// (TilingSpec::threads; 0 = hardware_threads()). Orthogonal to
  /// `threads`: parallel_for_index spawns fresh workers per call, so
  /// nesting scenario x tile parallelism is safe; results are
  /// bit-identical for any combination.
  std::size_t tile_threads = 1;
  /// Also run the golden software reference for every simulated scenario
  /// and record whether the hardware output matched bit-for-bit.
  bool verify_reference = false;
  /// Keep each scenario's full output grid and buffer plan in its
  /// RunResult. Off by default: a sweep holds EVERY result until
  /// collation, so retaining grids costs O(scenarios x cells) memory
  /// while reporting only needs output_hash and the scalar stats.
  /// Mutually exclusive with `store` (a store hit cannot reconstruct an
  /// output grid, so the combination would silently under-deliver).
  bool keep_outputs = false;
  /// Persistent result store (crash-safe resume + memoization). When set,
  /// scenarios whose key is already present are reconstructed from the
  /// store without executing (from_store=true, byte-identical in every
  /// deterministic report field); every freshly-executed scenario —
  /// including deterministic failures, which are results too — is
  /// journaled as soon as it finishes, so a killed sweep resumes from its
  /// last completed scenario. Wall-timeout abandons are NEVER stored
  /// (their counters are nondeterministic).
  ResultStore* store = nullptr;
  /// Bounded retry for transient store IO failures (store_io_error):
  /// total attempts per record, with exponential backoff starting at
  /// `store_retry_backoff_ms`. Exhausting the retries never fails the
  /// scenario — the result stays in memory and the sweep continues; the
  /// only cost is a re-execution on resume.
  std::size_t store_retry_attempts = 4;
  std::uint32_t store_retry_backoff_ms = 1;
  /// Cooperative cancellation (the CLI's SIGINT handler flips it): a
  /// scenario observed after the flag turns true is marked skipped
  /// (ok=false, skipped=true) instead of executed, so the sweep drains
  /// quickly and completed results can still be flushed/persisted.
  const std::atomic<bool>* stop = nullptr;
  /// Per-scenario wall-clock watchdog, forwarded to
  /// EngineOptions::wall_timeout_ms (0 = off). A tripped scenario is
  /// captured as ok=false with timed_out=true and its partial counters —
  /// inherently nondeterministic, so such results are never stored and
  /// make the sweep digest non-reproducible (use for triage, not for
  /// golden reports).
  std::uint32_t wall_timeout_ms = 0;
  /// Deterministic fault injection: DRAM faults from the plan are applied
  /// to every matching scenario's DramConfig before execution (see
  /// sweep/faults.hpp). Injected runs stay bit-reproducible. Mutually
  /// exclusive with `store`: the scenario key does not encode injected
  /// faults, so mixing them would cross-contaminate faulted and clean
  /// results under one address.
  const FaultPlan* fault_plan = nullptr;
  /// Forward EngineOptions::profile to every executed scenario: each
  /// result carries its metric snapshot (cycle attribution, stall
  /// counters, FIFO high-water marks) in run.metrics. Profiling never
  /// alters the simulated results (digests stay identical on/off); the
  /// snapshots are opt-in report columns, never digested — a store-served
  /// scenario carries none.
  bool metrics = false;
  /// Forward EngineOptions::trace to every executed UNTILED scenario: the
  /// Chrome trace-event JSON lands in run.trace_json (tiled scenarios run
  /// many simulators, so they get no trace rather than a partial one).
  bool trace = false;
  /// Progress reporting; invoked serialised under an internal mutex from
  /// whichever worker finished — keep the callback cheap.
  std::function<void(const SweepProgress&)> progress = nullptr;
};

/// One scenario's outcome. A scenario that throws (contract violation,
/// watchdog exhaustion) is captured as ok=false with the error text — the
/// sweep always completes and stays deterministic.
struct ScenarioResult {
  Scenario scenario;
  bool ok = false;
  std::string error;
  /// Valid when ok. The output grid and buffer plan are cleared after
  /// hashing unless ExecutorOptions::keep_outputs is set — a dropped
  /// output is unambiguous (run.output is empty, never a placeholder).
  RunResult run;
  std::uint64_t output_hash = 0;    // FNV-1a of the output grid (sim only)
  bool reference_checked = false;   // verify_reference was on and ok
  bool reference_match = false;     // hardware output == golden reference
  bool from_store = false;          // reconstructed from the result store
                                    // (not executed); excluded from digest
                                    // so warm == cold byte-for-byte
  bool skipped = false;             // stop flag observed before execution
  double wall_ms = 0.0;             // wall-clock measurement; NEVER part of
                                    // digests or deterministic reports
};

class SweepExecutor {
 public:
  explicit SweepExecutor(ExecutorOptions options = {})
      : options_(options) {}

  const ExecutorOptions& options() const noexcept { return options_; }

  /// Validate + expand `spec`, run every distinct scenario, return results
  /// in cartesian order.
  std::vector<ScenarioResult> run(const SweepSpec& spec) const;

  /// Run an explicit scenario list (already expanded/deduped by the
  /// caller); results are collated in the list's order.
  std::vector<ScenarioResult> run(std::vector<Scenario> scenarios) const;

  /// Order-sensitive digest over every deterministic field of the result
  /// vector (labels, seeds, cycle counts, DRAM counters, output hashes,
  /// resources, timing-model outputs, errors — everything except wall_ms).
  /// Equal digests across thread counts is the executor's core contract.
  static std::uint64_t digest(const std::vector<ScenarioResult>& results);

 private:
  ExecutorOptions options_;
};

/// FNV-1a over a grid's shape AND words: transposed grids with the same
/// word sequence hash differently (this hash is the planned memoization
/// key for the sweep-as-a-service cache, so shape must participate).
std::uint64_t hash_grid(const grid::Grid<word_t>& g) noexcept;

}  // namespace smache::sweep

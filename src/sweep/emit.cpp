#include "sweep/emit.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace smache::sweep {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016" PRIx64, v);
  return buf;
}

std::string csv_quote(std::string_view s) {
  const bool needs =
      s.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs) return std::string(s);
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string fmt_double(double v) {
  // Shortest representation that round-trips: 15 significant digits
  // identify most doubles, 17 identify every finite one (DBL_DECIMAL_DIG),
  // so the loop always terminates with strtod(out) == v. Identical bit
  // patterns format identically, so emission stays deterministic.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string emit_json(const std::vector<ScenarioResult>& results,
                      const EmitOptions& options) {
  std::ostringstream out;
  out << "{\n  \"name\": \"" << json_escape(options.name) << "\",\n"
      << "  \"run_type\": \"sweep\",\n"
      << "  \"scenario_count\": " << results.size() << ",\n"
      << "  \"digest\": \"" << fmt_hex64(SweepExecutor::digest(results))
      << "\",\n  \"results\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    const Scenario& s = r.scenario;
    out << (i == 0 ? "\n" : ",\n") << "    {\"label\": \""
        << json_escape(s.label) << "\", \"mode\": \"" << to_string(s.mode)
        << "\", \"arch\": \"" << to_string(s.engine.arch)
        << "\", \"height\": " << s.problem.height
        << ", \"width\": " << s.problem.width
        << ", \"steps\": " << s.problem.steps
        << ", \"depth\": " << s.depth << ", \"tiles\": \"" << s.tiles.height
        << 'x' << s.tiles.width;
    if (s.tiles.depth > 1) out << 'x' << s.tiles.depth;
    out << "\", \"stencil\": \"" << json_escape(s.stencil)
        << "\", \"boundary\": \"" << json_escape(s.boundary)
        << "\", \"kernel\": \"" << json_escape(s.kernel) << "\"";
    // Multi-field cell layouts and 3D grids are the exception; single-word
    // cells and single-slice grids stay implicit so every pre-existing
    // F=1 2D report remains byte-identical. ("depth" above is the cascade
    // depth; the grid's slice extent emits as "slices".)
    if (s.problem.kernel.fields() > 1)
      out << ", \"fields\": " << s.problem.kernel.fields();
    if (s.problem.depth > 1) out << ", \"slices\": " << s.problem.depth;
    out << ", \"input\": \""
        << json_escape(s.input) << "\", \"dram\": \"" << json_escape(s.dram)
        << "\", \"seed\": \"" << fmt_hex64(s.seed) << "\", \"ok\": "
        << (r.ok ? "true" : "false");
    if (!r.ok) out << ", \"error\": \"" << json_escape(r.error) << "\"";
    if (r.ok) {
      out << ", \"cycles\": " << r.run.cycles
          << ", \"warmup_cycles\": " << r.run.warmup_cycles
          << ", \"read_requests\": " << r.run.dram.read_requests
          << ", \"dram_read_bytes\": " << r.run.dram.bytes_read()
          << ", \"dram_write_bytes\": " << r.run.dram.bytes_written()
          << ", \"row_hits\": " << r.run.dram.row_hits
          << ", \"row_misses\": " << r.run.dram.row_misses
          << ", \"output_hash\": \"" << fmt_hex64(r.output_hash)
          << "\", \"r_total\": " << r.run.resources.r_total
          << ", \"b_total\": " << r.run.resources.b_total
          << ", \"m20k\": " << r.run.resources.m20k_blocks
          << ", \"fmax_mhz\": " << fmt_double(r.run.timing.fmax_mhz)
          << ", \"ops\": " << r.run.ops
          << ", \"exec_time_us\": " << fmt_double(r.run.exec_time_us)
          << ", \"mops\": " << fmt_double(r.run.mops);
      if (r.reference_checked)
        out << ", \"reference_match\": "
            << (r.reference_match ? "true" : "false");
    }
    if (options.include_wall)
      out << ", \"wall_ms\": " << fmt_double(r.wall_ms);
    if (options.include_store_hit)
      out << ", \"store_hit\": " << (r.from_store ? "true" : "false");
    if (options.include_metrics) {
      out << ", \"metrics\": {";
      for (std::size_t m = 0; m < r.run.metrics.size(); ++m)
        out << (m == 0 ? "" : ", ") << "\""
            << json_escape(r.run.metrics[m].path)
            << "\": " << r.run.metrics[m].value;
      out << "}";
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

std::string emit_csv(const std::vector<ScenarioResult>& results,
                     const EmitOptions& options) {
  std::ostringstream out;
  // The fields / slices columns only appear when some scenario actually
  // uses a multi-word cell layout / a 3D grid, so the pinned header of
  // every F=1 2D sweep (including all committed reports) is unchanged.
  bool any_fields = false;
  bool any_slices = false;
  for (const ScenarioResult& r : results) {
    if (r.scenario.problem.kernel.fields() > 1) any_fields = true;
    if (r.scenario.problem.depth > 1) any_slices = true;
  }
  out << "label,mode,arch,height,width,steps,depth,tiles,stencil,boundary,"
         "kernel,"
         "input,dram,seed,ok,error,cycles,warmup_cycles,read_requests,"
         "dram_read_bytes,dram_write_bytes,row_hits,row_misses,output_hash,"
         "r_total,b_total,m20k,fmax_mhz,ops,exec_time_us,mops,"
         "reference_match";
  if (options.include_wall) out << ",wall_ms";
  if (options.include_store_hit) out << ",store_hit";
  if (options.include_metrics) out << ",metrics";
  if (any_fields) out << ",fields";
  if (any_slices) out << ",slices";
  out << '\n';
  for (const ScenarioResult& r : results) {
    const Scenario& s = r.scenario;
    // Every string-valued column goes through csv_quote — registry names
    // are plain identifiers today, but a future family containing a comma
    // or quote must corrupt nothing.
    out << csv_quote(s.label) << ',' << to_string(s.mode) << ','
        << to_string(s.engine.arch) << ',' << s.problem.height << ','
        << s.problem.width << ',' << s.problem.steps << ',' << s.depth
        << ','
        << csv_quote(std::to_string(s.tiles.height) + 'x' +
                     std::to_string(s.tiles.width) +
                     (s.tiles.depth > 1
                          ? 'x' + std::to_string(s.tiles.depth)
                          : std::string()))
        << ',' << csv_quote(s.stencil) << ',' << csv_quote(s.boundary)
        << ',' << csv_quote(s.kernel) << ',' << csv_quote(s.input) << ','
        << csv_quote(s.dram) << ',' << fmt_hex64(s.seed) << ','
        << (r.ok ? "true" : "false") << ',' << csv_quote(r.error) << ','
        << r.run.cycles << ',' << r.run.warmup_cycles << ','
        << r.run.dram.read_requests << ',' << r.run.dram.bytes_read() << ','
        << r.run.dram.bytes_written() << ',' << r.run.dram.row_hits << ','
        << r.run.dram.row_misses << ',' << fmt_hex64(r.output_hash) << ','
        << r.run.resources.r_total << ',' << r.run.resources.b_total << ','
        << r.run.resources.m20k_blocks << ','
        << fmt_double(r.run.timing.fmax_mhz) << ',' << r.run.ops << ','
        << fmt_double(r.run.exec_time_us) << ','
        << fmt_double(r.run.mops) << ','
        << (r.reference_checked ? (r.reference_match ? "true" : "false")
                                : "");
    if (options.include_wall) out << ',' << fmt_double(r.wall_ms);
    if (options.include_store_hit)
      out << ',' << (r.from_store ? "true" : "false");
    if (options.include_metrics) {
      // One cell of path=value pairs; ';' keeps it comma-free, csv_quote
      // guards the invariant anyway.
      std::string cell;
      for (std::size_t m = 0; m < r.run.metrics.size(); ++m) {
        if (m != 0) cell += ';';
        cell += r.run.metrics[m].path;
        cell += '=';
        cell += std::to_string(r.run.metrics[m].value);
      }
      out << ',' << csv_quote(cell);
    }
    if (any_fields) out << ',' << s.problem.kernel.fields();
    if (any_slices) out << ',' << s.problem.depth;
    out << '\n';
  }
  return out.str();
}

}  // namespace smache::sweep

// SweepSpec — a declarative description of a cartesian scenario space:
// architecture x stream implementation x hybrid threshold x grid size x
// DRAM model x step count x cascade depth x stencil family x boundary
// family x kernel x input generator. The spec expands into flat,
// self-contained Scenario
// records (cursor logic: any index in [0, scenario_count()) decodes to its
// scenario without materialising the rest), which is what the executor,
// the CLI and the bench drivers consume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/problem.hpp"

namespace smache::sweep {

/// What each scenario runs: a full simulation, or elaboration/cost-model
/// only (the Table-I-style resource studies — no cycles, no input data).
enum class Mode { Simulate, ElaborateOnly };

const char* to_string(Mode mode) noexcept;

/// Grid (or tile-mesh) dimensions. `depth` is the slice extent (grids) or
/// the slice-axis tile count (meshes); it is a third member with a 1
/// default so every 2D `{h, w}` brace initialiser keeps its meaning.
struct GridDim {
  std::size_t height = 0;
  std::size_t width = 0;
  std::size_t depth = 1;
  friend bool operator==(const GridDim&, const GridDim&) = default;
};

/// One fully-resolved point of the scenario space, ready to run.
struct Scenario {
  std::size_t index = 0;   // position in the cartesian order
  std::string label;       // canonical human/machine identifier
  Mode mode = Mode::Simulate;
  /// Deterministic seed derived from the workload identity (grid, steps,
  /// stencil, boundary, kernel, input family) and the spec's base_seed:
  /// scenarios differing only in architecture / stream impl / threshold /
  /// DRAM model / mode share the seed, so comparisons across those
  /// dimensions run the identical input data.
  std::uint64_t seed = 0;
  EngineOptions engine;
  ProblemSpec problem;     // shape/bc/kernel resolved from the registry
  std::string stencil;     // registry names, kept for reporting
  std::string boundary;
  std::string kernel;
  std::string input;       // input-family name (ignored by ElaborateOnly)
  std::string dram;
  /// Temporal-blocking (cascade) depth: time steps fused per DRAM pass.
  /// 1 = the per-instance Smache/baseline engine (Engine::run); > 1 routes
  /// through Engine::run_cascade. The decode aliases depth to 1 for the
  /// baseline architecture and for elaborate-only mode (neither has a
  /// cascade), so sweeping depths never duplicates those configurations.
  std::size_t depth = 1;
  /// Spatial tiling mesh (height = tile rows, width = tile cols). 1x1 is
  /// the untiled engine; anything else routes through Engine::run_tiled.
  /// Aliased to 1x1 for elaborate-only mode (no cycles to parallelise);
  /// output grids are bit-identical across tilings by construction.
  GridDim tiles{1, 1};
};

struct SweepSpec {
  Mode mode = Mode::Simulate;
  std::vector<Architecture> archs = {Architecture::Smache};
  std::vector<model::StreamImpl> impls = {model::StreamImpl::Hybrid};
  std::vector<std::size_t> thresholds = {4};
  std::vector<GridDim> grids = {{11, 11}};
  std::vector<std::string> drams = {"functional"};
  std::vector<std::size_t> steps = {1};
  /// Cascade depths (temporal blocking: fused time steps per DRAM pass).
  /// Every steps x depths pairing must divide evenly — validate() rejects
  /// the spec otherwise. Depth > 1 requires boundaries whose tuples
  /// resolve in-stream (open/mirror/constant); a periodic boundary paired
  /// with depth > 1 is captured as that scenario's runtime error.
  std::vector<std::size_t> depths = {1};
  /// Spatial tiling meshes (halo-exchange tiles, grid/tiling.hpp). Tile
  /// counts exceeding the grid extent are rejected by validate(); pairings
  /// the tiler cannot make exact (e.g. mirror tiles smaller than the
  /// reflected reach) surface as that scenario's deterministic runtime
  /// error, exactly like periodic x depth>1.
  std::vector<GridDim> tiles = {{1, 1}};
  std::vector<std::string> stencils = {"vn4"};
  std::vector<std::string> boundaries = {"paper"};
  std::vector<std::string> kernels = {"average"};
  std::vector<std::string> inputs = {"random"};
  /// Folded with each scenario's workload identity into its per-job seed:
  /// distinct workloads get distinct, reproducible seeds that do not
  /// depend on expansion order, thread count, or the other dimensions'
  /// contents (see Scenario::seed).
  std::uint64_t base_seed = 1;
  /// Simulation watchdog forwarded to EngineOptions.
  std::uint64_t max_cycles = 200'000'000;
  /// Result-store directory (crash-safe resume + memoization; see
  /// sweep/store.hpp). Empty = no store. Carried in the spec so a saved
  /// spec names its own durability location and a resumed run cannot pair
  /// the wrong store with the wrong sweep; the CLI's --store overrides it.
  std::string store_dir;

  /// Cartesian size (including aliased points that expand() collapses).
  std::size_t scenario_count() const;

  /// Decode one cartesian index (cursor logic — O(dims), no expansion).
  /// Throws contract_error if the spec is malformed or index out of range.
  Scenario scenario_at(std::size_t index) const;

  /// All DISTINCT scenarios in cartesian order: points whose label aliases
  /// an earlier one are dropped (the baseline ignores stream impl,
  /// threshold and cascade depth; Case-R ignores threshold; elaboration
  /// ignores the DRAM model, input family, cascade depth and tiling
  /// mesh), so sweeping those dimensions never runs the same
  /// configuration twice.
  std::vector<Scenario> expand() const;

  /// Throws contract_error with a descriptive message if any dimension is
  /// empty, a registry name is unknown, a kernel/stencil pairing is
  /// invalid, or any scenario's problem fails ProblemSpec::validate().
  void validate() const;
};

/// FNV-1a over a byte string (label hashing for per-scenario seeds).
std::uint64_t fnv1a(std::string_view bytes) noexcept;

// ---- strict spec parsing (the smache-sweep CLI and its tests) ----
// All parsers throw contract_error with a descriptive message on malformed
// input; none of them silently guess.

/// Split a comma-separated list; empty items (",," or a trailing comma)
/// are malformed. An empty string yields an empty vector.
std::vector<std::string> split_list(std::string_view csv);

Architecture parse_arch(std::string_view token);       // smache | baseline
model::StreamImpl parse_impl(std::string_view token);  // hybrid | reg
Mode parse_mode(std::string_view token);               // sim | elab
/// "16" (square), "16x32", or "16x32x8" (3D: HxWxD). Every axis must be a
/// positive integer; errors name the full offending token.
GridDim parse_grid(std::string_view token);
std::size_t parse_count(std::string_view token, const char* what);

/// Full-range unsigned 64-bit parse (0 allowed — seeds use the whole
/// domain). Rejects signs, leading/trailing junk and overflow.
std::uint64_t parse_u64(std::string_view token, const char* what);

}  // namespace smache::sweep

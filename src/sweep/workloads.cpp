#include "sweep/workloads.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace smache::sweep {

namespace {

// ---- stencil factories --------------------------------------------------

grid::StencilShape make_vn4(std::uint64_t) {
  return grid::StencilShape::von_neumann4();
}
grid::StencilShape make_plus5(std::uint64_t) {
  return grid::StencilShape::plus5();
}
grid::StencilShape make_moore9(std::uint64_t) {
  return grid::StencilShape::moore9();
}
grid::StencilShape make_cross3(std::uint64_t) {
  return grid::StencilShape::cross(3);
}
grid::StencilShape make_upwind3(std::uint64_t) {
  return grid::StencilShape::upwind3();
}

/// Centre-FIRST plus: the same point set as plus5, reordered so tuple
/// element 0 is offset {0,0} — the layout the application kernels
/// (jacobi, hotspot, fdtd) contractually require.
grid::StencilShape make_star5(std::uint64_t) {
  return grid::StencilShape::custom(
      "star5", {{0, 0}, {-1, 0}, {0, -1}, {0, 1}, {1, 0}});
}

/// 13-point diamond (|dr|+|dc| <= 2) in row-major order — the radius-2
/// von Neumann neighbourhood common in lattice-Boltzmann-style updates.
grid::StencilShape make_diamond13(std::uint64_t) {
  std::vector<grid::Offset2> offs;
  for (std::int64_t dr = -2; dr <= 2; ++dr)
    for (std::int64_t dc = -2; dc <= 2; ++dc)
      if (std::abs(dr) + std::abs(dc) <= 2) offs.push_back({dr, dc});
  return grid::StencilShape::custom("diamond13", std::move(offs));
}

/// Asymmetric far-reach shape: no symmetry axis at all, column reach of 5 —
/// exercises the planner's arbitrary-tuple sizing far from the paper's
/// cross example.
grid::StencilShape make_asym5(std::uint64_t) {
  return grid::StencilShape::custom(
      "asym5", {{-2, -1}, {0, -3}, {0, 0}, {0, 2}, {1, 1}});
}

/// Seeded random-K shape: centre plus k-1 distinct offsets drawn from the
/// radius-2 box via a seeded partial Fisher-Yates — bit-identical for a
/// given (k, seed) everywhere, different across seeds.
grid::StencilShape make_random_k(std::size_t k, std::uint64_t seed) {
  std::vector<grid::Offset2> candidates;
  for (std::int64_t dr = -2; dr <= 2; ++dr)
    for (std::int64_t dc = -2; dc <= 2; ++dc)
      if (dr != 0 || dc != 0) candidates.push_back({dr, dc});
  Rng rng(0xD1CEULL ^ seed);
  std::vector<grid::Offset2> offs{{0, 0}};
  for (std::size_t i = 0; i + 1 < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.next_below(candidates.size() - i));
    std::swap(candidates[i], candidates[j]);
    offs.push_back(candidates[i]);
  }
  return grid::StencilShape::custom("random" + std::to_string(k),
                                    std::move(offs));
}

grid::StencilShape make_random5(std::uint64_t seed) {
  return make_random_k(5, seed);
}
grid::StencilShape make_random8(std::uint64_t seed) {
  return make_random_k(8, seed);
}

/// Centre-first 3D 7-point star (the slice-axis extension of star5) — the
/// canonical 3D Jacobi / heat neighbourhood. Requires a depth > 1 grid.
grid::StencilShape make_star7(std::uint64_t) {
  return grid::StencilShape::star7();
}

// ---- input-grid generators ----------------------------------------------

// Every generator takes the slice extent `d`; d == 1 keeps the 2D grid
// AND its Rng draw sequence byte-identical (depth-dependent draws happen
// only when d > 1, after all the 2D draws).

grid::Grid<word_t> input_random(std::size_t h, std::size_t w, std::size_t d,
                                std::uint64_t seed) {
  Rng rng(seed);
  grid::Grid<word_t> g(h, w, d, CellLayout{});
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = static_cast<word_t>(rng.next_below(1000));
  return g;
}

grid::Grid<word_t> input_random_wide(std::size_t h, std::size_t w,
                                     std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  grid::Grid<word_t> g(h, w, d, CellLayout{});
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = static_cast<word_t>(rng.next_u64());
  return g;
}

grid::Grid<word_t> input_impulse(std::size_t h, std::size_t w, std::size_t d,
                                 std::uint64_t seed) {
  Rng rng(seed);
  grid::Grid<word_t> g(h, w, d, CellLayout{}, 0);
  const std::size_t at = static_cast<std::size_t>(rng.next_below(h * w * d));
  g[at] = 4096;
  return g;
}

grid::Grid<word_t> input_gradient(std::size_t h, std::size_t w, std::size_t d,
                                  std::uint64_t seed) {
  grid::Grid<word_t> g(h, w, d, CellLayout{});
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = static_cast<word_t>((i + seed) % 997);
  return g;
}

grid::Grid<word_t> input_checker(std::size_t h, std::size_t w, std::size_t d,
                                 std::uint64_t seed) {
  const word_t a = static_cast<word_t>(seed % 500);
  const word_t b = static_cast<word_t>(500 + (seed / 500) % 500);
  grid::Grid<word_t> g(h, w, d, CellLayout{});
  for (std::size_t r = 0; r < g.global_rows(); ++r)
    for (std::size_t c = 0; c < w; ++c)
      g.at(r, c) = ((r + c) % 2 == 0) ? a : b;
  return g;
}

// ---- application inputs (multi-field cell layouts) ----------------------

/// Jacobi relaxation start state: seeded float field in [0, 10) — a rough
/// potential surface the solver smooths toward its boundary values.
grid::Grid<word_t> input_jacobi_init(std::size_t h, std::size_t w,
                                     std::size_t d, std::uint64_t seed) {
  Rng rng(seed ^ 0x1AC0B1ull);
  grid::Grid<word_t> g(h, w, d, CellLayout{});
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = to_word(static_cast<float>(rng.next_below(1000)) * 0.01f);
  return g;
}

/// Hotspot chip state, F = 2 {temperature, power}: ambient temperature
/// everywhere plus a seeded rectangular hot block dissipating power — the
/// classic thermal-floorplan workload, with the power map riding in the
/// cell layout instead of a second DRAM image.
grid::Grid<word_t> input_hotspot_chip(std::size_t h, std::size_t w,
                                      std::size_t d, std::uint64_t seed) {
  Rng rng(seed ^ 0x407590ull);
  grid::Grid<word_t> g(h, w, d, CellLayout{2}, 0);
  const std::size_t br = static_cast<std::size_t>(rng.next_below(h));
  const std::size_t bc = static_cast<std::size_t>(rng.next_below(w));
  const std::size_t bh = 1 + static_cast<std::size_t>(rng.next_below(3));
  const std::size_t bw = 1 + static_cast<std::size_t>(rng.next_below(3));
  // 3D chips stack: the hot block occupies a seeded slice range (draws
  // happen after all 2D draws so d == 1 keeps the 2D sequence).
  std::size_t bs = 0, bd = 1;
  if (d > 1) {
    bs = static_cast<std::size_t>(rng.next_below(d));
    bd = 1 + static_cast<std::size_t>(rng.next_below(2));
  }
  for (std::size_t s = 0; s < d; ++s) {
    for (std::size_t r = 0; r < h; ++r) {
      for (std::size_t c = 0; c < w; ++c) {
        const bool hot = s >= bs && s < bs + bd && r >= br && r < br + bh &&
                         c >= bc && c < bc + bw;
        g.at(s, r, c, 0) = to_word(25.0f);
        g.at(s, r, c, 1) = to_word(hot ? 4.0f : 0.125f);
      }
    }
  }
  return g;
}

/// FDTD cavity state, F = 3 {u, u_prev, c2}: one seeded unit pulse at rest
/// (u == u_prev, zero initial velocity) in a two-material medium — a
/// horizontal slab of slower material crosses the cavity, so heterogeneous
/// wave speeds ride in the per-cell material field.
grid::Grid<word_t> input_fdtd_cavity(std::size_t h, std::size_t w,
                                     std::size_t d, std::uint64_t seed) {
  Rng rng(seed ^ 0xFD7Dull);
  grid::Grid<word_t> g(h, w, d, CellLayout{3}, 0);
  const std::size_t pr = static_cast<std::size_t>(rng.next_below(h));
  const std::size_t pc = static_cast<std::size_t>(rng.next_below(w));
  const std::size_t slab = static_cast<std::size_t>(rng.next_below(h));
  const std::size_t slab_end =
      slab + 1 + static_cast<std::size_t>(rng.next_below(3));
  // 3D cavities put the pulse in a seeded slice; the slab stays a
  // row-range crossing every slice (draw after all 2D draws, see above).
  std::size_t ps = 0;
  if (d > 1) ps = static_cast<std::size_t>(rng.next_below(d));
  for (std::size_t s = 0; s < d; ++s) {
    for (std::size_t r = 0; r < h; ++r) {
      for (std::size_t c = 0; c < w; ++c) {
        const float u = (s == ps && r == pr && c == pc) ? 1.0f : 0.0f;
        const float c2 = (r >= slab && r < slab_end) ? 0.0625f : 0.25f;
        g.at(s, r, c, 0) = to_word(u);
        g.at(s, r, c, 1) = to_word(u);
        g.at(s, r, c, 2) = to_word(c2);
      }
    }
  }
  return g;
}

// ---- catalogue construction ---------------------------------------------

std::vector<StencilFamily> build_stencils() {
  return {
      {"vn4", "4-point von Neumann cross, no centre (the paper's example)",
       false, &make_vn4},
      {"plus5", "5-point plus: centre + von Neumann", false, &make_plus5},
      {"moore9", "9-point Moore neighbourhood incl. centre, row-major",
       false, &make_moore9},
      {"diamond13", "13-point radius-2 diamond (|dr|+|dc| <= 2)", false,
       &make_diamond13},
      {"cross3", "far-reach cross {(-3,0),(0,-3),(0,0),(0,3),(3,0)}", false,
       &make_cross3},
      {"asym5", "asymmetric far-reach 5-point shape, no symmetry axis",
       false, &make_asym5},
      {"upwind3", "asymmetric upwind {(0,0),(0,-1),(-1,0)} (advection)",
       false, &make_upwind3},
      {"star5", "centre-first plus (plus5 reordered for application "
       "kernels)",
       false, &make_star5},
      {"star7", "centre-first 3D 7-point star (star5 + front/back slices; "
       "needs a 3D grid)",
       false, &make_star7},
      {"random5", "seeded random 5-point shape from the radius-2 box", true,
       &make_random5},
      {"random8", "seeded random 8-point shape from the radius-2 box", true,
       &make_random8},
  };
}

std::vector<BoundaryFamily> build_boundaries() {
  using grid::AxisBoundary;
  using grid::BoundarySpec;
  return {
      {"paper", "circular top/bottom + open left/right (the paper's map)",
       BoundarySpec::paper_example()},
      {"open", "open on every edge (truncated plane)",
       BoundarySpec::all_open()},
      {"circular", "periodic on both axes (torus)",
       BoundarySpec::all_periodic()},
      {"mirror", "mirror on both axes (fully reflecting box)",
       BoundarySpec::all_mirror()},
      {"island", "constant-0 halo on every axis (domain in a zero sea)",
       BoundarySpec{AxisBoundary::constant_halo(0),
                    AxisBoundary::constant_halo(0),
                    AxisBoundary::constant_halo(0)}},
      {"striped", "periodic rows + mirror cols (wrap one axis, reflect the "
       "other; open slices)",
       BoundarySpec{AxisBoundary::periodic(), AxisBoundary::mirror(),
                    AxisBoundary::open()}},
      {"quadrant", "mirror rows + open cols (symmetric half-domain, "
       "truncated sideways; open slices)",
       BoundarySpec{AxisBoundary::mirror(), AxisBoundary::open(),
                    AxisBoundary::open()}},
  };
}

std::vector<InputFamily> build_inputs() {
  return {
      {"random", "uniform words in [0, 1000) (the scaling bench's range)",
       &input_random},
      {"random-wide", "full-width 32-bit random words", &input_random_wide},
      {"impulse", "all zero except one seeded 4096 spike", &input_impulse},
      {"gradient", "linear ramp modulo 997, seed-offset", &input_gradient},
      {"checker", "two seed-derived values in a checkerboard",
       &input_checker},
      {"jacobi-init", "seeded float field in [0, 10) for jacobi relaxation",
       &input_jacobi_init},
      {"hotspot-chip", "F=2 {temperature, power}: ambient plate + seeded "
       "hot block",
       &input_hotspot_chip, 2},
      {"fdtd-cavity", "F=3 {u, u_prev, c2}: seeded pulse at rest in a "
       "two-material cavity",
       &input_fdtd_cavity, 3},
  };
}

std::vector<KernelFamily> build_kernels() {
  return {
      {"average", "mean of valid tuple elements (the paper's filter)", false,
       rtl::KernelSpec::average_int()},
      {"sum", "sum of valid tuple elements", false,
       {rtl::KernelKind::Sum, rtl::ValueType::Int32, 0.0f, 0.0f}},
      {"max", "max of valid tuple elements (morphological dilate)", false,
       {rtl::KernelKind::Max, rtl::ValueType::Int32, 0.0f, 0.0f}},
      {"identity", "pass the first tuple element through (plumbing)", false,
       {rtl::KernelKind::Identity, rtl::ValueType::Int32, 0.0f, 0.0f}},
      {"gaussian3x3", "fixed-point 3x3 Gaussian blur (Moore-9 tuple only)",
       true, rtl::KernelSpec::gaussian3x3()},
      {"laplacian3x3", "3x3 Laplacian edge detect (Moore-9 tuple only)",
       true, rtl::KernelSpec::laplacian3x3()},
      {"jacobi", "Jacobi relaxation: mean of valid neighbours "
       "(centre-first tuple)",
       false, rtl::KernelSpec::jacobi()},
      {"hotspot", "hotspot thermal step over {t, p} cells (F=2, "
       "centre-first)",
       false, rtl::KernelSpec::hotspot(0.05f, 0.1f)},
      {"fdtd", "2D scalar-wave FDTD over {u, u_prev, c2} cells (F=3, "
       "centre-first)",
       false, rtl::KernelSpec::fdtd_wave(0.1f)},
  };
}

std::vector<DramFamily> build_drams() {
  mem::DramConfig stall = mem::DramConfig::functional();
  stall.stall_every = 17;
  stall.stall_cycles = 5;
  return {
      {"functional", "1 word/cycle, fixed latency, no row-buffer model",
       mem::DramConfig::functional()},
      {"ddr", "row-buffer model: open-row streaming, activation penalties",
       mem::DramConfig::ddr_like()},
      {"stall", "functional + injected stalls (5 idle cycles every 17 "
       "words)",
       stall},
  };
}

template <typename Family>
const Family& find_in(const std::vector<Family>& catalogue,
                      std::string_view name, const char* what) {
  for (const auto& f : catalogue)
    if (f.name == name) return f;
  std::string known;
  for (const auto& f : catalogue)
    known += (known.empty() ? "" : ", ") + f.name;
  throw contract_error("unknown " + std::string(what) + " '" +
                       std::string(name) + "' (registered: " + known + ")");
}

}  // namespace

const std::vector<StencilFamily>& stencil_catalogue() {
  static const std::vector<StencilFamily> c = build_stencils();
  return c;
}
const std::vector<BoundaryFamily>& boundary_catalogue() {
  static const std::vector<BoundaryFamily> c = build_boundaries();
  return c;
}
const std::vector<InputFamily>& input_catalogue() {
  static const std::vector<InputFamily> c = build_inputs();
  return c;
}
const std::vector<KernelFamily>& kernel_catalogue() {
  static const std::vector<KernelFamily> c = build_kernels();
  return c;
}
const std::vector<DramFamily>& dram_catalogue() {
  static const std::vector<DramFamily> c = build_drams();
  return c;
}

const StencilFamily& find_stencil(std::string_view name) {
  return find_in(stencil_catalogue(), name, "stencil family");
}
const BoundaryFamily& find_boundary(std::string_view name) {
  return find_in(boundary_catalogue(), name, "boundary family");
}
const InputFamily& find_input(std::string_view name) {
  return find_in(input_catalogue(), name, "input family");
}
const KernelFamily& find_kernel(std::string_view name) {
  return find_in(kernel_catalogue(), name, "kernel family");
}
const DramFamily& find_dram(std::string_view name) {
  return find_in(dram_catalogue(), name, "dram family");
}

grid::StencilShape make_stencil(std::string_view name, std::uint64_t seed) {
  return find_stencil(name).make(seed);
}
grid::BoundarySpec make_boundary(std::string_view name) {
  return find_boundary(name).spec;
}
grid::Grid<word_t> make_input(std::string_view name, std::size_t height,
                              std::size_t width, std::size_t depth,
                              std::uint64_t seed) {
  return find_input(name).make(height, width, depth, seed);
}
rtl::KernelSpec make_kernel(std::string_view name) {
  return find_kernel(name).spec;
}
mem::DramConfig make_dram(std::string_view name) {
  return find_dram(name).config;
}

}  // namespace smache::sweep

#include "sweep/faults.hpp"

#include <algorithm>

namespace smache::sweep {

namespace {

/// splitmix64 — tiny, well-mixed, and stable across platforms; exactly the
/// right tool for "same seed, same plan".
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

bool FaultPlan::apply(std::string_view label, mem::DramConfig* config) const {
  bool matched = false;
  for (const DramFault& fault : dram) {
    if (!fault.label_contains.empty() &&
        label.find(fault.label_contains) == std::string_view::npos)
      continue;
    matched = true;
    if (fault.storm_every != 0) {
      config->storm_every = fault.storm_every;
      config->storm_cycles = fault.storm_cycles;
    }
    if (fault.delay_every != 0) {
      config->delay_every = fault.delay_every;
      config->delay_cycles = fault.delay_cycles;
    }
  }
  return matched;
}

FaultPlan FaultPlan::seeded(std::uint64_t seed, std::size_t count) {
  FaultPlan plan;
  plan.dram.reserve(count);
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t bits = splitmix64(state);
    DramFault fault;
    const std::uint64_t every = 64 + (bits & 1023);          // 64..1087
    const std::uint64_t cycles = 1 + ((bits >> 10) & 7);     // 1..8
    if (((bits >> 13) & 1) == 0) {
      fault.storm_every = every;
      fault.storm_cycles = cycles;
    } else {
      fault.delay_every = every;
      fault.delay_cycles = cycles;
    }
    plan.dram.push_back(fault);
  }
  return plan;
}

const IoFault* FaultyFileIo::match(IoFaultKind kind,
                                   std::uint64_t index) const {
  for (const IoFault& fault : faults_)
    if (fault.kind == kind && fault.op_index == index) return &fault;
  return nullptr;
}

void FaultyFileIo::create_directories(const std::string& dir) {
  inner_.create_directories(dir);
}

bool FaultyFileIo::exists(const std::string& path) {
  return inner_.exists(path);
}

std::vector<std::string> FaultyFileIo::list_files(const std::string& dir,
                                                  std::string_view suffix) {
  return inner_.list_files(dir, suffix);
}

std::string FaultyFileIo::read_file(const std::string& path) {
  const std::uint64_t index = read_count_++;
  std::string data = inner_.read_file(path);
  if (const IoFault* fault = match(IoFaultKind::ShortRead, index))
    data.resize(std::min<std::size_t>(data.size(),
                                      static_cast<std::size_t>(fault->offset)));
  return data;
}

void FaultyFileIo::append_file(const std::string& path,
                               std::string_view bytes) {
  const std::uint64_t index = append_count_++;
  if (match(IoFaultKind::FailAppend, index))
    throw store_io_error("injected transient append failure on '" + path +
                         "'");
  if (const IoFault* fault = match(IoFaultKind::TornAppend, index)) {
    const std::size_t cut = std::min<std::size_t>(
        bytes.size(), static_cast<std::size_t>(fault->offset));
    inner_.append_file(path, bytes.substr(0, cut));
    throw store_io_error("injected torn append on '" + path + "' after " +
                         std::to_string(cut) + " of " +
                         std::to_string(bytes.size()) + " bytes");
  }
  if (const IoFault* fault = match(IoFaultKind::BitFlipAppend, index)) {
    std::string corrupted(bytes);
    if (fault->offset < corrupted.size())
      corrupted[static_cast<std::size_t>(fault->offset)] ^=
          static_cast<char>(fault->mask);
    inner_.append_file(path, corrupted);
    return;
  }
  inner_.append_file(path, bytes);
}

void FaultyFileIo::write_file_atomic(const std::string& path,
                                     std::string_view bytes) {
  inner_.write_file_atomic(path, bytes);
}

void FaultyFileIo::remove_file(const std::string& path) {
  inner_.remove_file(path);
}

}  // namespace smache::sweep

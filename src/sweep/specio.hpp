// Sweep-spec save/load: a SweepSpec serialises to a small, human-editable
// JSON experiment file and parses back EXACTLY — emit(parse(emit(s))) is
// byte-identical to emit(s), and the parsed spec expands to the same
// labels, seeds and digests as the original. This is what turns
// `smache-sweep` invocations into reproducible experiment artifacts: a
// committed spec file plus a digest pins a whole sweep.
//
// The parser is strict in the spirit of the parse_* family in sweep/spec:
// unknown keys, duplicate keys, malformed numbers, bad escapes and
// trailing garbage all throw contract_error with a descriptive message —
// nothing is silently guessed. Keys may be OMITTED (the field keeps its
// SweepSpec default), so hand-written files can stay minimal; save_spec
// always emits every key in a fixed order.
#pragma once

#include <string>
#include <string_view>

#include "sweep/spec.hpp"

namespace smache::sweep {

/// Canonical JSON form of `spec` (fixed key order, 2-space indent,
/// trailing newline). Dimension tokens use the same spellings the
/// parse_* family accepts ("smache", "hybrid", "16x24", ...).
std::string emit_spec_json(const SweepSpec& spec);

/// Strict inverse of emit_spec_json; also accepts hand-written files with
/// keys omitted (defaults apply) or reordered. Throws contract_error on
/// any malformed input. Does NOT run SweepSpec::validate() — callers
/// decide when to pay the full cartesian check.
SweepSpec parse_spec_json(std::string_view json);

/// File front ends; throw contract_error when the file cannot be read or
/// written (parse errors propagate with the path prepended).
SweepSpec load_spec_file(const std::string& path);
void save_spec_file(const SweepSpec& spec, const std::string& path);

}  // namespace smache::sweep

// Ablation E10 (extension): temporal blocking — multiple time steps fused
// per DRAM pass. The paper cites this direction ([2] Fu et al., [4] Nacci
// et al.) as complementary to Smache's off-chip optimisation; this bench
// quantifies the combination on our substrate: traffic falls ~1/K with
// fused depth K, on-chip footprint rises ~K, cycles improve modestly
// (compute was already streaming-rate-bound).
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

int main() {
  std::printf("=== Ablation: temporal blocking (cascade extension) ===\n");
  std::printf("24x24 grid, 4-point stencil, OPEN boundaries, 24 time "
              "steps total\n");
  std::printf("(periodic boundaries cannot be fused within a pass — their "
              "wrap data does not exist yet; see DESIGN.md)\n\n");

  smache::ProblemSpec p;
  p.height = 24;
  p.width = 24;
  p.shape = smache::grid::StencilShape::von_neumann4();
  p.bc = smache::grid::BoundarySpec::all_open();
  p.kernel = smache::rtl::KernelSpec::average_int();
  p.steps = 24;

  smache::Rng rng(0xCA5C);
  smache::grid::Grid<smache::word_t> init(24, 24);
  for (std::size_t i = 0; i < init.size(); ++i)
    init[i] = static_cast<smache::word_t>(rng.next_below(4096));

  const auto expected = smache::reference_run(p, init);
  const smache::Engine engine(smache::EngineOptions::smache());

  smache::TextTable t({"fused depth K", "passes", "cycles",
                       "DRAM traffic KiB", "traffic vs K=1",
                       "on-chip window bits", "correct"});
  std::uint64_t base_traffic = 0;
  for (const std::size_t depth : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 24u}) {
    const auto res = engine.run_cascade(p, init, depth);
    if (depth == 1) base_traffic = res.dram.total_bytes();
    t.begin_row();
    t.add_cell(static_cast<std::uint64_t>(depth));
    t.add_cell(static_cast<std::uint64_t>(p.steps / depth));
    t.add_cell(res.cycles);
    t.add_cell(static_cast<double>(res.dram.total_bytes()) / 1024.0, 1);
    t.add_cell(static_cast<double>(res.dram.total_bytes()) /
                   static_cast<double>(base_traffic),
               3);
    t.add_cell(res.estimate->r_stream + res.estimate->b_stream);
    t.add_cell(std::string(res.output == expected ? "yes" : "NO"));
  }
  std::printf("%s\n", t.to_ascii().c_str());
  std::printf("expected shape: traffic scales as 1/K while on-chip bits "
              "scale as K — the classic temporal-blocking trade combined "
              "with Smache's streaming window.\n");
  return 0;
}
